// Chaos sweep (extension, docs/faults.md): fault intensity vs
// time-to-convergence of a cluster allreduce.
//
// Each sweep point runs an 8-worker, 2-rack allreduce under a scaled
// chaos schedule — Gilbert–Elliott burst loss on every host link, one
// trunk flap — with the hardened recovery path on (bounded exponential
// backoff, retry budgets, straggler aging). The top intensity also
// crashes one worker mid-allreduce, exercising the excluded-worker
// semantics: convergence is then over the 7 survivors. Every point is
// run twice and the fault-log digests compared, so the bench doubles as
// a determinism check.
//
//   fig_chaos [--quick] [--json-out=<file>]   # BENCH_chaos.json in CI
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"

namespace {

struct Point {
  double intensity;     // scales burst p_enter and the flap outage
  bool crash;           // also crash worker 5 mid-allreduce
};

struct Outcome {
  double convergence_us = 0;
  int finished = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t backoff_rearms = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t degraded_blocks = 0;
  std::uint64_t faults = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t digest = 0;
};

Outcome run_point(const Point& p, std::size_t blocks) {
  cluster::ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 1024;

  cluster::Cluster cl(spec);
  const int workers = spec.total_workers();
  for (int w = 0; w < workers; ++w) {
    cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(5),
                                            /*retry_budget=*/10,
                                            sim::Duration::millis(20));
  }
  cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));

  faults::FaultSchedule schedule;
  if (p.intensity > 0) {
    net::GilbertElliott ge;
    ge.p_enter = 0.01 * p.intensity;
    ge.p_exit = 0.2;
    schedule.burst_loss(sim::Time(), faults::FaultSchedule::host_link(
                                         faults::Target::kAll),
                        ge, sim::Duration::millis(2));
    schedule.flap(sim::Time() + sim::Duration::micros(30),
                  faults::FaultSchedule::fabric_link(0),
                  sim::Duration(std::int64_t(100'000 * p.intensity)));
  }
  if (p.crash) {
    schedule.crash(sim::Time() + sim::Duration::micros(50), 5);
  }

  faults::FaultInjector injector(cl.simulator(), nullptr);
  injector.bind(cl);
  injector.arm(schedule);

  const auto grads = cluster::patterned_gradients(
      workers, blocks * spec.grads_per_packet);
  const auto run = cluster::run_allreduce(
      cl, grads, /*gen_id=*/1, sim::Time(sim::Duration::millis(200).ns()));
  cl.stop_straggler_detection();

  Outcome out;
  out.convergence_us = run.duration_us();
  out.finished = run.finished;
  for (int w = 0; w < workers; ++w) {
    out.retransmits += cl.worker(w).retransmissions();
    out.backoff_rearms += cl.worker(w).backoff_rearms();
    out.budget_exhausted += cl.worker(w).retry_budget_exhausted();
  }
  for (const auto& r : run.results) out.degraded_blocks += r.degraded_blocks;
  out.faults = injector.faults_injected();
  out.recoveries = injector.recoveries();
  out.digest = injector.digest();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);
  const std::size_t blocks = quick ? 16 : 64;

  benchutil::banner(
      "Chaos sweep: fault intensity vs time-to-convergence",
      "extension of SS7 \"Packet loss in Trio-ML\" under injected faults");

  std::vector<Point> sweep = {
      {0.0, false}, {0.5, false}, {1.0, false}, {2.0, false}, {2.0, true},
  };
  if (quick) sweep = {{0.0, false}, {1.0, false}, {2.0, true}};

  benchutil::row({"intensity", "crash", "conv_us", "finished", "rexmits",
                  "backoffs", "degraded", "determ"});
  benchutil::JsonSeries series;
  int failures = 0;
  for (const Point& p : sweep) {
    const Outcome a = run_point(p, blocks);
    const Outcome b = run_point(p, blocks);
    const bool deterministic =
        a.digest == b.digest && a.convergence_us == b.convergence_us &&
        a.finished == b.finished && a.retransmits == b.retransmits;
    if (!deterministic) ++failures;
    const int expected = 8 - (p.crash ? 1 : 0);
    if (a.finished < expected) ++failures;

    benchutil::row({benchutil::fmt(p.intensity, 1), p.crash ? "yes" : "no",
                    benchutil::fmt(a.convergence_us),
                    std::to_string(a.finished) + "/8",
                    std::to_string(a.retransmits),
                    std::to_string(a.backoff_rearms),
                    std::to_string(a.degraded_blocks),
                    deterministic ? "yes" : "NO"});
    series.number("intensity", p.intensity)
        .boolean("crash", p.crash)
        .number("convergence_us", a.convergence_us)
        .number("finished", std::uint64_t(a.finished))
        .number("retransmits", a.retransmits)
        .number("backoff_rearms", a.backoff_rearms)
        .number("retry_budget_exhausted", a.budget_exhausted)
        .number("degraded_blocks", a.degraded_blocks)
        .number("faults_injected", a.faults)
        .number("recoveries", a.recoveries)
        .boolean("deterministic", deterministic)
        .end_row();
  }

  if (!json_out.empty() && series.write_file(json_out)) {
    std::printf("\nwrote %zu rows to %s\n", series.row_count(),
                json_out.c_str());
  }
  if (failures != 0) {
    std::printf("\n%d sweep point(s) failed determinism/convergence\n",
                failures);
    return 1;
  }
  return 0;
}
