// Noisy-neighbour tenancy sweep (extension, docs/jobs.md): tenant count x
// aggressor load vs the victim tenant's p99 block latency, with per-tenant
// fabric isolation on and off.
//
// Each sweep point admits one victim allreduce tenant (WDRR weight 4),
// zero or more co-tenant allreduce jobs (weight 1) and one best-effort
// aggressor offering the given fraction of every host link's line rate,
// onto one shared 2-rack cluster. With isolation on (hash-table key
// partitions + MQSS weighted per-tenant queues) the victim's p99 must
// stay within 2x of its solo-run baseline at every point; with isolation
// off the aggressor is free to degrade it. The 3-tenant point is run
// twice and the per-tenant golden digests compared, so the bench doubles
// as the multi-tenant determinism check, and every victim result is
// checked bit-identical to the solo run.
//
//   fig_tenancy [--quick] [--json-out=<file>]   # BENCH_tenancy.json in CI
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/tenant.hpp"

namespace {

struct Point {
  int allreduce_tenants;  // victim + co-tenants
  double load;            // aggressor offered load (0 = no aggressor)
  bool isolation;
};

struct Outcome {
  double victim_p99_us = 0;
  double victim_duration_us = 0;
  int victim_finished = 0;
  bool victim_bit_identical = false;
  std::vector<std::uint64_t> digests;  // admission order
};

constexpr jobs::TenantId kVictim = 2;

cluster::ClusterSpec tenancy_spec() {
  cluster::ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 1024;
  return spec;
}

jobs::TenantSpec victim_tenant() {
  jobs::TenantSpec t;
  t.id = kVictim;
  t.kind = jobs::TenantKind::kAllreduce;
  t.weight = 4;
  t.grads = 128 * 32;  // 32 blocks per worker
  t.window = 64;
  t.block_cnt_max = 256;
  return t;
}

double victim_p99(jobs::JobManager& mgr, int workers) {
  sim::Samples all;
  for (int w = 0; w < workers; ++w) {
    for (double v : mgr.tenant_worker(kVictim, w)->block_latency_us().values()) {
      all.add(v);
    }
  }
  return all.percentile(99);
}

Outcome run_point(const Point& p,
                  const std::vector<trioml::AllreduceResult>* solo_results) {
  cluster::Cluster cl(tenancy_spec());
  jobs::JobManager mgr(cl);
  if (!mgr.admit(victim_tenant()).admitted) return {};
  for (int t = 1; t < p.allreduce_tenants; ++t) {
    jobs::TenantSpec co = victim_tenant();
    co.id = jobs::TenantId(kVictim + t);
    co.weight = 1;
    if (!mgr.admit(co).admitted) return {};
  }
  if (p.load > 0) {
    jobs::TenantSpec aggressor;
    aggressor.id = jobs::TenantId(kVictim + p.allreduce_tenants);
    aggressor.kind = jobs::TenantKind::kBestEffort;
    aggressor.load = p.load;
    if (!mgr.admit(aggressor).admitted) return {};
  }
  if (p.isolation) mgr.enable_isolation();

  const auto run =
      mgr.run(/*gen_id=*/1, sim::Time(sim::Duration::millis(50).ns()));

  Outcome out;
  const jobs::TenantRun* victim = run.tenant(kVictim);
  if (victim == nullptr) return out;
  out.victim_p99_us = victim_p99(mgr, cl.num_workers());
  out.victim_duration_us = victim->duration_us();
  out.victim_finished = victim->finished;
  out.victim_bit_identical =
      solo_results != nullptr &&
      cluster::bit_identical(*solo_results, victim->results);
  for (const auto& tr : run.tenants) out.digests.push_back(tr.digest());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);

  benchutil::banner(
      "Tenancy sweep: tenant count x aggressor load vs victim p99",
      "extension of SS5 (in-network aggregation) to multi-tenant jobs, "
      "docs/jobs.md");

  // Solo baseline: the victim alone on an idle fabric.
  const Point solo_point{1, 0.0, false};
  const Outcome solo = run_point(solo_point, nullptr);
  cluster::Cluster probe(tenancy_spec());
  const int workers = probe.num_workers();
  if (solo.victim_finished < workers || solo.victim_p99_us <= 0) {
    std::fprintf(stderr, "solo baseline failed to converge\n");
    return 1;
  }
  std::printf("solo baseline: p99 %.2f us, allreduce %.2f us, %d/%d workers\n\n",
              solo.victim_p99_us, solo.victim_duration_us,
              solo.victim_finished, workers);
  // The per-worker results the multi-tenant victim must reproduce bit for
  // bit. Re-run to capture them (run_point does not keep results).
  std::vector<trioml::AllreduceResult> solo_results;
  {
    cluster::Cluster cl(tenancy_spec());
    jobs::JobManager mgr(cl);
    mgr.admit(victim_tenant());
    auto run = mgr.run(1, sim::Time(sim::Duration::millis(50).ns()));
    solo_results = run.tenant(kVictim)->results;
  }

  std::vector<int> tenant_counts = {2, 3};
  std::vector<double> loads = {0.3, 0.6, 0.9};
  if (quick) {
    tenant_counts = {2};
    loads = {0.9};
  }

  benchutil::row({"tenants", "load", "isolation", "p99_us", "ratio",
                  "finished", "bit_ident"}, 11);
  benchutil::JsonSeries series;
  int failures = 0;
  double top_load_ratio_on = 0, top_load_ratio_off = 0;
  for (int tenants : tenant_counts) {
    for (double load : loads) {
      for (bool isolation : {true, false}) {
        const Point p{tenants, load, isolation};
        const Outcome out = run_point(p, &solo_results);
        const double ratio = out.victim_p99_us / solo.victim_p99_us;
        // The headline bound: an admitted victim behind weighted queues
        // and partitioned buckets keeps p99 within 2x of its solo run.
        const bool bounded = ratio <= 2.0;
        if (isolation && (!bounded || out.victim_finished < workers ||
                          !out.victim_bit_identical)) {
          ++failures;
        }
        if (load == loads.back() && tenants == tenant_counts.back()) {
          (isolation ? top_load_ratio_on : top_load_ratio_off) = ratio;
        }
        benchutil::row(
            {std::to_string(tenants + (load > 0 ? 1 : 0)),
             benchutil::fmt(load, 1), isolation ? "on" : "off",
             benchutil::fmt(out.victim_p99_us), benchutil::fmt(ratio),
             std::to_string(out.victim_finished) + "/" +
                 std::to_string(workers),
             out.victim_bit_identical ? "yes" : "NO"},
            11);
        series.number("allreduce_tenants", std::uint64_t(tenants))
            .number("aggressor_load", load)
            .boolean("isolation", isolation)
            .number("victim_p99_us", out.victim_p99_us)
            .number("solo_p99_us", solo.victim_p99_us)
            .number("p99_ratio_vs_solo", ratio)
            .number("victim_allreduce_us", out.victim_duration_us)
            .number("victim_finished", std::uint64_t(out.victim_finished))
            .boolean("victim_bit_identical", out.victim_bit_identical)
            .end_row();
      }
    }
  }

  // 3-tenant golden digest: two victims-and-aggressor runs must agree on
  // every tenant's result fingerprint.
  const Point golden{2, 0.9, true};
  const Outcome g1 = run_point(golden, &solo_results);
  const Outcome g2 = run_point(golden, &solo_results);
  const bool deterministic = !g1.digests.empty() && g1.digests == g2.digests;
  if (!deterministic) ++failures;
  std::printf("\n3-tenant golden digests:");
  for (std::uint64_t d : g1.digests) {
    std::printf(" %016llx", static_cast<unsigned long long>(d));
  }
  std::printf(" (replay %s)\n", deterministic ? "identical" : "DIVERGED");
  series.string("check", "golden_digest_determinism")
      .boolean("deterministic", deterministic)
      .end_row();

  if (!quick && top_load_ratio_off <= top_load_ratio_on) {
    std::printf(
        "note: isolation-off p99 ratio %.2f not worse than isolated %.2f "
        "at top load\n",
        top_load_ratio_off, top_load_ratio_on);
  }

  if (!json_out.empty() && series.write_file(json_out)) {
    std::printf("\nwrote %zu rows to %s\n", series.row_count(),
                json_out.c_str());
  }
  if (failures != 0) {
    std::printf("\n%d sweep point(s) violated the isolation bound\n",
                failures);
    return 1;
  }
  return 0;
}
