// Figure 14: in-network timer-thread efficiency — straggler mitigation
// time as a function of the straggler timeout interval.
//
// Methodology (paper §6.2): for each timeout, a straggling source never
// contributes while the others send back-to-back aggregation packets; we
// report the time between sending an aggregation packet and receiving
// the corresponding (degraded) result. Paper result: servers recover
// within 2x the timeout interval.
//
// This bench runs at PACKET level on the simulated Trio router with
// N = 100 timer threads scanning the aggregation hash table.
#include <memory>

#include "bench_util.hpp"
#include "trioml/testbed.hpp"

using namespace trioml;

int main(int argc, char** argv) {
  const auto topts = benchutil::parse_telemetry_flags(argc, argv);
  benchutil::banner("Figure 14: straggler mitigation time vs timeout",
                    "paper Fig 14: mitigation within 2x timeout");

  benchutil::row({"timeout(ms)", "mitigation(ms)", "p95(ms)", "/timeout"}, 16);

  for (int timeout_ms : {1, 2, 5, 10, 15, 20}) {
    // Telemetry observes the 10 ms run (the paper's default timeout).
    std::unique_ptr<telemetry::Telemetry> telem;
    if (topts.any() && timeout_ms == 10) {
      telem = std::make_unique<telemetry::Telemetry>(topts.metrics_enabled(),
                                                     topts.trace_enabled());
    }
    TestbedConfig cfg;
    cfg.num_workers = 3;
    cfg.grads_per_packet = 1024;
    cfg.window = 20;  // "we send 20 back-to-back packets"
    cfg.telemetry = telem.get();
    Testbed tb(cfg);
    tb.start_straggler_detection(/*threads=*/100,
                                 sim::Duration::millis(timeout_ms));

    const std::size_t grads = 1024 * 20;  // 20 blocks
    int done = 0;
    for (int w = 0; w < 2; ++w) {  // worker 2 is the permanent straggler
      std::vector<std::uint32_t> g(grads, 1);
      tb.worker(w).start_allreduce(std::move(g), 1,
                                   [&](AllreduceResult) { ++done; });
    }
    tb.simulator().run_until(
        sim::Time(sim::Duration::millis(40 * timeout_ms + 200).ns()));
    auto& lat = tb.worker(0).block_latency_us();
    const double mean_ms = lat.mean() / 1000.0;
    const double p95_ms = lat.percentile(95) / 1000.0;
    benchutil::row({benchutil::fmt(timeout_ms, 0),
                    benchutil::fmt(mean_ms, 2), benchutil::fmt(p95_ms, 2),
                    benchutil::fmt(mean_ms / timeout_ms, 2) + "x"},
                   16);
    if (done != 2) std::printf("  WARNING: only %d/2 workers finished\n", done);
    if (telem) benchutil::write_telemetry(topts, *telem, tb.simulator().now());
  }
  std::printf("\nexpected shape: mitigation time grows linearly with the\n"
              "timeout and stays between 1x and 2x the timeout interval\n");
  return 0;
}
