// Scale-out extension of the paper's §4 cross-device aggregation: sweep
// declarative multi-rack clusters (racks x workers-per-rack) through a
// full allreduce over the two-level aggregation tree and report
// throughput and latency per topology. Every topology's results are
// checked bit-for-bit against a flat single-router Testbed aggregating
// the same worker gradients — the tree changes where addition happens,
// never what it produces.
//
// A second sweep holds the largest topology fixed and varies --shards:
// the parallel discrete-event engine (sim/shard.hpp) runs the same 8x8
// allreduce on 1, 2, 4 and 8 OS threads. The result digest must be
// bit-identical at every shard count (hard failure otherwise — that is
// the engine's determinism contract, docs/performance.md), and the JSON
// records the wall-clock speedup curve for multi-core CI.
//
//   fig17_scaleout [--json-out=<file>] [--metrics-out=<json>]
//                  [--trace-out=<json>]
//
// Telemetry flags apply to the largest topology in the sweep.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"

namespace {

struct Topology {
  int racks;
  int workers_per_rack;
};

constexpr std::size_t kBlocks = 32;
constexpr std::uint16_t kGradsPerPacket = 1024;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count() * 1e3;
}

/// FNV-1a over every worker's result gradients plus the completion count
/// and final simulated clock — the fingerprint the shard sweep compares.
std::uint64_t results_digest(const cluster::AllreduceRun& run,
                             sim::Time final_now) {
  std::uint64_t h = 1469598103934665603ull;
  const auto eat = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  eat(std::uint64_t(run.finished));
  eat(std::uint64_t(run.finish.ns()));
  eat(std::uint64_t(final_now.ns()));
  for (const trioml::AllreduceResult& r : run.results) {
    eat(r.grads.size());
    for (float g : r.grads) {
      std::uint32_t bits;
      __builtin_memcpy(&bits, &g, sizeof bits);
      eat(bits);
    }
  }
  return h;
}

cluster::ClusterSpec make_spec(const Topology& topo, int shards) {
  cluster::ClusterSpec spec;
  spec.racks = topo.racks;
  spec.workers_per_rack = topo.workers_per_rack;
  spec.grads_per_packet = kGradsPerPacket;
  spec.fabric_link.gbps = 400;  // spine trunks are faster than host links
  spec.fabric_link.latency = sim::Duration::micros(2);
  spec.shards = shards;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto telem_opts = benchutil::parse_telemetry_flags(argc, argv);
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);

  benchutil::banner(
      "Fig 17 (extension): multi-rack scale-out",
      "paper SS4 cross-device hierarchical aggregation, scaled to N racks");

  const std::vector<Topology> sweep = {
      {1, 4}, {2, 4}, {2, 8}, {4, 4}, {4, 8}, {8, 8},
  };

  benchutil::row({"racks", "wkr/rack", "workers", "time_us", "agg_gbps",
                  "per_wkr_gbps", "wall_ms", "Mev/s", "identical"},
                 /*width=*/12);
  benchutil::JsonSeries series;
  telemetry::Telemetry telem(telem_opts.metrics_enabled(),
                             telem_opts.trace_enabled());

  for (std::size_t t = 0; t < sweep.size(); ++t) {
    const Topology& topo = sweep[t];
    const bool last = t + 1 == sweep.size();

    cluster::ClusterSpec spec = make_spec(topo, /*shards=*/1);
    if (last && telem_opts.any()) spec.telemetry = &telem;

    const auto grads = cluster::patterned_gradients(
        spec.total_workers(), kBlocks * kGradsPerPacket);

    cluster::Cluster cl(spec);
    cl.sample_trace_counters();
    const auto wall_start = Clock::now();
    const cluster::AllreduceRun run = cluster::run_allreduce(cl, grads);
    const double wall_ms = ms_since(wall_start);
    cl.sample_trace_counters();
    const std::uint64_t events = cl.engine().events_executed();
    const double events_per_sec =
        wall_ms <= 0 ? 0 : double(events) / (wall_ms / 1e3);

    const bool identical =
        run.finished == spec.total_workers() &&
        cluster::bit_identical(run.results,
                               cluster::testbed_baseline(spec, grads));
    const double per_worker_gbps =
        run.duration_us() <= 0
            ? 0
            : double(grads[0].size() * 4) * 8.0 / (run.duration_us() * 1e3);

    std::uint64_t uplink_frames = 0;
    for (int r = 0; r < spec.racks; ++r) {
      uplink_frames += cl.fabric_link(r).a_to_b().frames_sent();
    }

    benchutil::row({std::to_string(topo.racks),
                    std::to_string(topo.workers_per_rack),
                    std::to_string(spec.total_workers()),
                    benchutil::fmt(run.duration_us()),
                    benchutil::fmt(run.goodput_gbps()),
                    benchutil::fmt(per_worker_gbps),
                    benchutil::fmt(wall_ms, 1),
                    benchutil::fmt(events_per_sec / 1e6, 2),
                    identical ? "yes" : "NO"},
                   /*width=*/12);

    series.number("racks", std::uint64_t(topo.racks))
        .number("workers_per_rack", std::uint64_t(topo.workers_per_rack))
        .number("workers", std::uint64_t(spec.total_workers()))
        .number("grads_per_worker", std::uint64_t(grads[0].size()))
        .number("duration_us", run.duration_us())
        .number("agg_goodput_gbps", run.goodput_gbps())
        .number("per_worker_goodput_gbps", per_worker_gbps);
    benchutil::perf_fields(series, wall_ms, events)
        .number("spine_blocks_completed",
                cl.spine_app().stats().blocks_completed)
        .number("uplink_frames", uplink_frames)
        .boolean("bit_identical_to_testbed", identical)
        .end_row();

    if (!identical) {
      std::fprintf(stderr,
                   "FAILED: %dx%d cluster results diverge from the flat "
                   "Testbed baseline\n",
                   topo.racks, topo.workers_per_rack);
      return 1;
    }
    if (last && telem_opts.any()) {
      benchutil::write_telemetry(telem_opts, telem, cl.simulator().now());
    }
  }

  // --- Shard sweep: same 8x8 job, 1..8 OS threads -------------------------
  std::printf("\n8x8 topology under the parallel engine (--shards sweep):\n");
  benchutil::row({"shards", "time_us", "wall_ms", "Mev/s", "speedup",
                  "rounds", "digest_ok"},
                 /*width=*/12);

  const Topology big{8, 8};
  const auto big_grads = cluster::patterned_gradients(
      big.racks * big.workers_per_rack, kBlocks * kGradsPerPacket);
  double wall_1 = 0;
  std::uint64_t digest_1 = 0;
  bool digests_ok = true;
  for (const int shards : {1, 2, 4, 8}) {
    cluster::Cluster cl(make_spec(big, shards));
    const auto wall_start = Clock::now();
    const cluster::AllreduceRun run = cluster::run_allreduce(cl, big_grads);
    const double wall_ms = ms_since(wall_start);
    const std::uint64_t events = cl.engine().events_executed();
    const std::uint64_t digest = results_digest(run, cl.engine().now());
    if (shards == 1) {
      wall_1 = wall_ms;
      digest_1 = digest;
    }
    const bool digest_ok = digest == digest_1;
    digests_ok = digests_ok && digest_ok;
    const double speedup = wall_ms <= 0 ? 0 : wall_1 / wall_ms;
    const double events_per_sec =
        wall_ms <= 0 ? 0 : double(events) / (wall_ms / 1e3);

    benchutil::row({std::to_string(cl.num_shards()),
                    benchutil::fmt(run.duration_us()),
                    benchutil::fmt(wall_ms, 1),
                    benchutil::fmt(events_per_sec / 1e6, 2),
                    benchutil::fmt(speedup, 2),
                    std::to_string(cl.engine().rounds()),
                    digest_ok ? "yes" : "NO"},
                   /*width=*/12);

    series.string("metric", "shard_sweep_8x8")
        .number("shards_requested", std::uint64_t(shards))
        .number("shards_effective", std::uint64_t(cl.num_shards()))
        .number("duration_us", run.duration_us());
    benchutil::perf_fields(series, wall_ms, events)
        .number("speedup_vs_1", speedup)
        .number("sync_rounds", cl.engine().rounds())
        .boolean("digest_matches_shards_1", digest_ok)
        .end_row();
  }
  if (!digests_ok) {
    // The determinism contract is absolute: any shard count must produce
    // the same gradients, completion count and final clock. Wall-clock
    // speedup depends on the host's core count and is recorded, not gated.
    std::fprintf(stderr,
                 "FAILED: 8x8 result digest differs across shard counts\n");
    return 1;
  }

  if (!json_out.empty()) {
    if (series.write_file(json_out)) {
      std::printf("\nwrote %zu rows to %s\n", series.row_count(),
                  json_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}
