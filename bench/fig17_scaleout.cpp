// Scale-out extension of the paper's §4 cross-device aggregation: sweep
// declarative multi-rack clusters (racks x workers-per-rack) through a
// full allreduce over the two-level aggregation tree and report
// throughput and latency per topology. Every topology's results are
// checked bit-for-bit against a flat single-router Testbed aggregating
// the same worker gradients — the tree changes where addition happens,
// never what it produces.
//
//   fig17_scaleout [--json-out=<file>] [--metrics-out=<json>]
//                  [--trace-out=<json>]
//
// Telemetry flags apply to the largest topology in the sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"

namespace {

struct Topology {
  int racks;
  int workers_per_rack;
};

constexpr std::size_t kBlocks = 32;
constexpr std::uint16_t kGradsPerPacket = 1024;

}  // namespace

int main(int argc, char** argv) {
  const auto telem_opts = benchutil::parse_telemetry_flags(argc, argv);
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);

  benchutil::banner(
      "Fig 17 (extension): multi-rack scale-out",
      "paper SS4 cross-device hierarchical aggregation, scaled to N racks");

  const std::vector<Topology> sweep = {
      {1, 4}, {2, 4}, {2, 8}, {4, 4}, {4, 8}, {8, 8},
  };

  benchutil::row({"racks", "wkr/rack", "workers", "time_us", "agg_gbps",
                  "per_wkr_gbps", "identical"});
  benchutil::JsonSeries series;
  telemetry::Telemetry telem(telem_opts.metrics_enabled(),
                             telem_opts.trace_enabled());

  for (std::size_t t = 0; t < sweep.size(); ++t) {
    const Topology& topo = sweep[t];
    const bool last = t + 1 == sweep.size();

    cluster::ClusterSpec spec;
    spec.racks = topo.racks;
    spec.workers_per_rack = topo.workers_per_rack;
    spec.grads_per_packet = kGradsPerPacket;
    spec.fabric_link.gbps = 400;  // spine trunks are faster than host links
    spec.fabric_link.latency = sim::Duration::micros(2);
    if (last && telem_opts.any()) spec.telemetry = &telem;

    const auto grads = cluster::patterned_gradients(
        spec.total_workers(), kBlocks * kGradsPerPacket);

    cluster::Cluster cl(spec);
    cl.sample_trace_counters();
    const cluster::AllreduceRun run = cluster::run_allreduce(cl, grads);
    cl.sample_trace_counters();

    const bool identical =
        run.finished == spec.total_workers() &&
        cluster::bit_identical(run.results,
                               cluster::testbed_baseline(spec, grads));
    const double per_worker_gbps =
        run.duration_us() <= 0
            ? 0
            : double(grads[0].size() * 4) * 8.0 / (run.duration_us() * 1e3);

    std::uint64_t uplink_frames = 0;
    for (int r = 0; r < spec.racks; ++r) {
      uplink_frames += cl.fabric_link(r).a_to_b().frames_sent();
    }

    benchutil::row({std::to_string(topo.racks),
                    std::to_string(topo.workers_per_rack),
                    std::to_string(spec.total_workers()),
                    benchutil::fmt(run.duration_us()),
                    benchutil::fmt(run.goodput_gbps()),
                    benchutil::fmt(per_worker_gbps),
                    identical ? "yes" : "NO"});

    series.number("racks", std::uint64_t(topo.racks))
        .number("workers_per_rack", std::uint64_t(topo.workers_per_rack))
        .number("workers", std::uint64_t(spec.total_workers()))
        .number("grads_per_worker", std::uint64_t(grads[0].size()))
        .number("duration_us", run.duration_us())
        .number("agg_goodput_gbps", run.goodput_gbps())
        .number("per_worker_goodput_gbps", per_worker_gbps)
        .number("spine_blocks_completed",
                cl.spine_app().stats().blocks_completed)
        .number("uplink_frames", uplink_frames)
        .boolean("bit_identical_to_testbed", identical)
        .end_row();

    if (!identical) {
      std::fprintf(stderr,
                   "FAILED: %dx%d cluster results diverge from the flat "
                   "Testbed baseline\n",
                   topo.racks, topo.workers_per_rack);
      return 1;
    }
    if (last && telem_opts.any()) {
      benchutil::write_telemetry(telem_opts, telem, cl.simulator().now());
    }
  }

  if (!json_out.empty()) {
    if (series.write_file(json_out)) {
      std::printf("\nwrote %zu topologies to %s\n", series.row_count(),
                  json_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}
