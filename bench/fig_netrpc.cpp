// In-network RPC aggregation & hot-key caching (extension, docs/netrpc.md):
// fan-out call latency and GET latency of the Trio NetRPC datapath against
// the two baselines the paper's architecture argument predicts it beats.
//
// Three systems run the same closed-loop client workload:
//   * trio      — the NetRpcApp datapath: responses merge in-flight at the
//                 rack-0 leaf PFE, hot-key GETs answer from the SMS cache,
//                 and the aging scan completes stalled fan-outs *degraded*;
//   * hostmerge — the same cluster with the PFE service removed: every
//                 RPC_RESP rides to the client, which reduces host-side
//                 (the end-host-only deployment);
//   * pisa      — the same protocol on a Tofino-style PISA pipeline
//                 (netrpc/baseline.hpp): merging works, but there are no
//                 data-plane timers (a straggling replica stalls the call
//                 until it answers; a crashed one wedges the slot forever)
//                 and majority merge is rejected structurally.
//
// Three scenarios: clean, one replica straggling (stalls 300us mid-run)
// and one replica crashed mid-run. The headline gates: trio's p99 call
// latency beats both baselines under the straggler, trio alone completes
// every call after the crash, cache-hit GETs run well under the full
// client-server RTT, a co-tenant Trio-ML allreduce stays bit-identical to
// its solo run, and every digest is replay-identical (determinism).
//
//   fig_netrpc [--quick] [--json-out=<file>]   # BENCH_netrpc.json in CI
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/tenant.hpp"
#include "netrpc/baseline.hpp"
#include "netrpc/wire_format.hpp"
#include "pisa/switch.hpp"

namespace {

constexpr jobs::TenantId kRpcTenant = 4;
constexpr jobs::TenantId kMlTenant = 2;

enum class Scenario { kClean, kStraggler, kCrash };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kClean: return "clean";
    case Scenario::kStraggler: return "straggler";
    case Scenario::kCrash: return "crash";
  }
  return "?";
}

// Fault timing shared by all three systems: the fault hits at 30us, a
// straggler holds its responses for 300us. Trio's aging scan (50us) must
// complete stalled fan-outs degraded well before the stall lifts.
// --quick halves the call count, so the fault moves to 15us to still
// land mid-run on the fast PISA pipeline (clean RTT ~11us).
sim::Duration kFaultAt = sim::Duration::micros(30);
const sim::Duration kStallLen = sim::Duration::micros(300);
const sim::Duration kAging = sim::Duration::micros(50);
const sim::Time kDeadline = sim::Time() + sim::Duration::millis(20);

cluster::ClusterSpec netrpc_spec() {
  cluster::ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 128;
  spec.slab_pool = 1024;
  return spec;
}

jobs::TenantSpec rpc_tenant(int calls, int gets, int puts) {
  jobs::TenantSpec t;
  t.id = kRpcTenant;
  t.kind = jobs::TenantKind::kNetRpc;
  t.rpc_policy = netrpc::MergePolicy::kSum;
  t.rpc_value_words = 8;
  t.rpc_servers = 3;
  t.rpc_clients = 1;
  t.rpc_window = 8;
  t.rpc_calls = std::uint32_t(calls);
  t.rpc_gets = std::uint32_t(gets);
  t.rpc_puts = std::uint32_t(puts);
  t.rpc_hot_keys = 4;
  return t;
}

jobs::TenantSpec ml_tenant() {
  jobs::TenantSpec t;
  t.id = kMlTenant;
  t.kind = jobs::TenantKind::kAllreduce;
  t.weight = 2;
  t.grads = 128 * 16;  // 16 blocks per worker
  t.window = 64;
  t.block_cnt_max = 256;
  return t;
}

struct TrioOutcome {
  std::uint64_t calls = 0, degraded = 0, gets = 0, cached = 0;
  int finished = 0;
  double p50_us = 0, p99_us = 0;
  double hit_us = 0, miss_us = 0;
  std::uint64_t digest = 0;
  std::uint64_t ctr_hit = 0, ctr_fill = 0, ctr_inval = 0;
  std::vector<std::uint64_t> all_digests;  // admission order
  std::vector<trioml::AllreduceResult> ml_results;
  int ml_finished = 0;
};

TrioOutcome run_trio(Scenario sc, bool host_merge, bool co_allreduce,
                     int calls, int gets, int puts) {
  cluster::Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  mgr.set_netrpc_aging(kAging);
  if (co_allreduce && !mgr.admit(ml_tenant()).admitted) return {};
  if (!mgr.admit(rpc_tenant(calls, gets, puts)).admitted) return {};
  mgr.enable_isolation();

  if (sc != Scenario::kClean) {
    // server_id 2 sits on the last host of rack 0.
    netrpc::RpcServer* srv =
        mgr.tenant_rpc_server(kRpcTenant, netrpc_spec().workers_per_rack - 1);
    if (srv == nullptr) return {};
    cl.simulator().schedule_at(sim::Time() + kFaultAt, [srv, sc] {
      if (sc == Scenario::kCrash) {
        srv->crash();
      } else {
        srv->stall_for(kStallLen);
      }
    });
  }
  // The end-host baseline: same hosts, same fabric, no PFE involvement —
  // bypassed frames plain-forward, so every RPC_RESP rides to the client
  // and is merged host-side.
  if (host_merge) mgr.netrpc_app()->set_bypass(kRpcTenant, true);

  const jobs::MultiTenantRun run = mgr.run(/*gen_id=*/1, kDeadline);

  TrioOutcome out;
  const jobs::TenantRun* tr = run.tenant(kRpcTenant);
  if (tr == nullptr) return out;
  out.calls = tr->netrpc.calls;
  out.degraded = tr->netrpc.degraded;
  out.gets = tr->netrpc.gets;
  out.cached = tr->netrpc.cached_gets;
  out.finished = tr->finished;
  out.digest = tr->digest();
  sim::Samples lat = tr->netrpc.call_latency_us;
  if (lat.count() > 0) {
    out.p50_us = lat.percentile(50);
    out.p99_us = lat.percentile(99);
  }
  sim::Samples hit = tr->netrpc.get_hit_latency_us;
  sim::Samples miss = tr->netrpc.get_miss_latency_us;
  if (hit.count() > 0) out.hit_us = hit.mean();
  if (miss.count() > 0) out.miss_us = miss.mean();
  if (!host_merge) {
    netrpc::NetRpcApp* app = mgr.netrpc_app();
    out.ctr_hit = app->counter_packets(kRpcTenant, netrpc::kCtrCacheHit);
    out.ctr_fill = app->counter_packets(kRpcTenant, netrpc::kCtrCacheFill);
    out.ctr_inval = app->counter_packets(kRpcTenant, netrpc::kCtrInvalidate);
  }
  for (const jobs::TenantRun& t : run.tenants) {
    out.all_digests.push_back(t.digest());
  }
  if (co_allreduce) {
    if (const jobs::TenantRun* ml = run.tenant(kMlTenant)) {
      out.ml_results = ml->results;
      out.ml_finished = ml->finished;
    }
  }
  return out;
}

struct PisaOutcome {
  std::uint64_t issued = 0, completed = 0;
  double p50_us = 0, p99_us = 0;
  bool majority_rejected = false;
};

// Closed-loop driver on the PISA baseline: one client, three replicas, the
// same window/service-time/fault schedule as the cluster runs. Servers are
// port sinks that answer after their service time; the switch merges.
PisaOutcome run_pisa(Scenario sc, int calls) {
  sim::Simulator sim;
  pisa::Switch sw(sim, pisa::SwitchConfig{});
  netrpc::PisaRpcConfig cfg;
  cfg.tenant = kRpcTenant;
  cfg.value_words = 8;
  cfg.policy = netrpc::MergePolicy::kSum;
  cfg.client_cnt = 1;
  const int client_port = 0;
  const std::vector<int> server_ports = {1, 2, 3};
  netrpc::PisaRpcSwitch rpc(sw, cfg, {client_port}, server_ports);

  // Per-hop wire latency sized so the clean round trip lands near the
  // cluster path's (~11 us vs ~17 us) and the run is still in flight when
  // the fault hits at kFaultAt.
  const sim::Duration wire = sim::Duration::micros(4);
  const sim::Duration service = sim::Duration::micros(2);
  const net::MacAddr client_mac{0x02, 0, 0, 0, 0, 1};
  const net::MacAddr server_mac{0x02, 0, 0, 0, 0, 0x10};
  const net::Ipv4Addr client_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
  auto server_ip = [](int s) {
    return net::Ipv4Addr::from_octets(10, 9, 1, std::uint8_t(1 + s));
  };

  PisaOutcome out;
  std::uint32_t next_rpc = 1, inflight = 0;
  std::unordered_map<std::uint32_t, sim::Time> issue_time;
  sim::Samples lat;

  std::function<void()> pump = [&] {
    while (out.issued < std::uint64_t(calls) && inflight < 8) {
      const std::uint32_t id = next_rpc++;
      issue_time[id] = sim.now();
      ++out.issued;
      ++inflight;
      for (std::uint8_t s = 0; s < 3; ++s) {
        netrpc::NetRpcHeader hdr;
        hdr.op = netrpc::Op::kRpcReq;
        hdr.tenant = kRpcTenant;
        hdr.client_id = 0;
        hdr.server_id = s;
        hdr.policy = cfg.policy;
        hdr.value_cnt = 8;
        hdr.server_cnt = 3;
        hdr.rpc_id = id;
        hdr.key = netrpc::make_key(kRpcTenant, 0);
        std::vector<std::uint32_t> args(8, id);
        const net::Buffer f = netrpc::build_netrpc_frame(
            client_mac, server_mac, client_ip, server_ip(s),
            netrpc::kRequestUdpPort, netrpc::kRequestUdpPort, hdr, args, 8);
        sim.schedule_in(wire,
                        [&sw, f] { sw.receive(net::Packet::make(f), 0); });
      }
    }
  };

  for (int s = 0; s < 3; ++s) {
    sw.attach_port_sink(server_ports[s], [&, s](net::PacketPtr pkt) {
      const net::Buffer& f = pkt->frame();
      if (!netrpc::is_netrpc_frame(f)) return;
      const netrpc::NetRpcHeader hdr =
          netrpc::NetRpcHeader::parse(f, netrpc::kNetRpcHdrOff);
      if (hdr.op != netrpc::Op::kRpcReq) return;
      sim::Time respond_at = sim.now() + service;
      if (s == 2 && sim.now() >= sim::Time() + kFaultAt) {
        if (sc == Scenario::kCrash) return;  // silent forever
        if (sc == Scenario::kStraggler &&
            sim.now() < sim::Time() + kFaultAt + kStallLen) {
          respond_at = std::max(respond_at,
                                sim::Time() + kFaultAt + kStallLen);
        }
      }
      netrpc::NetRpcHeader rh = hdr;
      rh.op = netrpc::Op::kRpcResp;
      std::vector<std::uint32_t> vals(8);
      for (std::size_t i = 0; i < vals.size(); ++i) {
        vals[i] = hdr.rpc_id * 31u + std::uint32_t(s) * 7u +
                  std::uint32_t(i);
      }
      const net::Buffer rf = netrpc::build_netrpc_frame(
          server_mac, client_mac, server_ip(s), client_ip,
          netrpc::kResponseUdpPort, netrpc::kResponseUdpPort, rh, vals, 8);
      const int port = server_ports[std::size_t(s)];
      sim.schedule_at(respond_at + wire, [&sw, rf, port] {
        sw.receive(net::Packet::make(rf), port);
      });
    });
  }
  sw.attach_port_sink(client_port, [&](net::PacketPtr pkt) {
    const net::Buffer& f = pkt->frame();
    if (!netrpc::is_netrpc_frame(f)) return;
    const netrpc::NetRpcHeader hdr =
        netrpc::NetRpcHeader::parse(f, netrpc::kNetRpcHdrOff);
    if (hdr.op != netrpc::Op::kMergedResp) return;
    auto it = issue_time.find(hdr.rpc_id);
    if (it == issue_time.end()) return;
    lat.add((sim.now() - it->second).us());
    issue_time.erase(it);
    ++out.completed;
    --inflight;
    pump();
  });

  pump();
  sim.run_until(kDeadline);
  if (lat.count() > 0) {
    out.p50_us = lat.percentile(50);
    out.p99_us = lat.percentile(99);
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool pisa_rejects_majority() {
  sim::Simulator sim;
  pisa::Switch sw(sim, pisa::SwitchConfig{});
  netrpc::PisaRpcConfig cfg;
  cfg.policy = netrpc::MergePolicy::kMajority;
  try {
    netrpc::PisaRpcSwitch rpc(sw, cfg, {0}, {1, 2, 3});
  } catch (const std::invalid_argument&) {
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);

  benchutil::banner(
      "NetRPC: in-network merge + hot-key cache vs end-host and PISA",
      "SS3.2/SS5 substrate carrying a second application (docs/netrpc.md)");

  const int calls = quick ? 24 : 48;
  const int gets = quick ? 24 : 48;
  const int puts = quick ? 4 : 8;
  if (quick) kFaultAt = sim::Duration::micros(15);

  benchutil::JsonSeries series;
  int failures = 0;

  // --- Call latency: scenario x system ------------------------------------
  benchutil::row({"scenario", "system", "completed", "degraded", "p50_us",
                  "p99_us"}, 12);
  struct Cell {
    double p99 = 0;
    std::uint64_t completed = 0;
  };
  std::map<std::string, Cell> cells;
  for (Scenario sc :
       {Scenario::kClean, Scenario::kStraggler, Scenario::kCrash}) {
    for (const char* system : {"trio", "hostmerge", "pisa"}) {
      std::uint64_t completed = 0, degraded = 0;
      double p50 = 0, p99 = 0;
      if (std::strcmp(system, "pisa") == 0) {
        const PisaOutcome p = run_pisa(sc, calls);
        completed = p.completed;
        p50 = p.p50_us;
        p99 = p.p99_us;
      } else {
        const TrioOutcome t = run_trio(
            sc, std::strcmp(system, "hostmerge") == 0, false, calls, 0, 0);
        completed = t.calls;
        degraded = t.degraded;
        p50 = t.p50_us;
        p99 = t.p99_us;
      }
      cells[std::string(scenario_name(sc)) + "/" + system] = {p99, completed};
      benchutil::row({scenario_name(sc), system,
                      std::to_string(completed) + "/" + std::to_string(calls),
                      std::to_string(degraded), benchutil::fmt(p50),
                      benchutil::fmt(p99)},
                     12);
      series.string("scenario", scenario_name(sc))
          .string("system", system)
          .number("calls", std::uint64_t(calls))
          .number("completed", completed)
          .number("degraded", degraded)
          .number("p50_us", p50)
          .number("p99_us", p99)
          .end_row();
    }
  }
  // Gates: under the straggler trio's aged degraded completion beats both
  // timer-less baselines on p99; after the crash only trio completes all.
  const Cell trio_strag = cells["straggler/trio"];
  const Cell host_strag = cells["straggler/hostmerge"];
  const Cell pisa_strag = cells["straggler/pisa"];
  if (!(trio_strag.p99 < host_strag.p99 && trio_strag.p99 < pisa_strag.p99 &&
        trio_strag.completed == std::uint64_t(calls))) {
    std::printf("FAIL: straggler p99 %.2f us not under baselines "
                "(%.2f / %.2f)\n",
                trio_strag.p99, host_strag.p99, pisa_strag.p99);
    ++failures;
  }
  if (!(cells["crash/trio"].completed == std::uint64_t(calls) &&
        cells["crash/hostmerge"].completed < std::uint64_t(calls) &&
        cells["crash/pisa"].completed < std::uint64_t(calls))) {
    std::printf("FAIL: crash completion %llu trio / %llu hostmerge / "
                "%llu pisa of %d\n",
                static_cast<unsigned long long>(cells["crash/trio"].completed),
                static_cast<unsigned long long>(
                    cells["crash/hostmerge"].completed),
                static_cast<unsigned long long>(cells["crash/pisa"].completed),
                calls);
    ++failures;
  }

  // --- Majority: structurally impossible on the PISA baseline -------------
  const bool majority_rejected = pisa_rejects_majority();
  std::printf("\nmajority merge on PISA: %s (Trio runs it in one pass)\n",
              majority_rejected ? "rejected at install" : "ACCEPTED?!");
  if (!majority_rejected) ++failures;
  series.string("check", "pisa_majority_rejected")
      .boolean("rejected", majority_rejected)
      .end_row();

  // --- Hot-key cache: hit latency vs full client-server RTT ---------------
  const TrioOutcome cache = run_trio(Scenario::kClean, false, false,
                                     calls, gets, puts);
  const TrioOutcome nocache = run_trio(Scenario::kClean, true, false,
                                       calls, gets, puts);
  const double hit_rate =
      cache.gets > 0 ? double(cache.cached) / double(cache.gets) : 0;
  std::printf("\nGET latency: cache hit %.2f us vs miss %.2f us "
              "(no-cache baseline %.2f us), hit rate %.0f%%\n",
              cache.hit_us, cache.miss_us, nocache.miss_us, 100 * hit_rate);
  std::printf("PFE cache counters: %llu hits, %llu fills, %llu invalidates\n",
              static_cast<unsigned long long>(cache.ctr_hit),
              static_cast<unsigned long long>(cache.ctr_fill),
              static_cast<unsigned long long>(cache.ctr_inval));
  if (!(cache.cached > 0 && cache.hit_us < 0.7 * cache.miss_us &&
        cache.hit_us < 0.7 * nocache.miss_us)) {
    std::printf("FAIL: cache hits not well under the full RTT\n");
    ++failures;
  }
  series.string("check", "hot_key_cache")
      .number("hit_us", cache.hit_us)
      .number("miss_us", cache.miss_us)
      .number("nocache_us", nocache.miss_us)
      .number("hit_rate", hit_rate)
      .number("cache_fills", cache.ctr_fill)
      .end_row();

  // --- Co-tenancy: the RPC service beside a Trio-ML allreduce -------------
  std::vector<trioml::AllreduceResult> ml_solo;
  {
    cluster::Cluster cl(netrpc_spec());
    jobs::JobManager mgr(cl);
    mgr.admit(ml_tenant());
    mgr.enable_isolation();
    const auto run = mgr.run(1, kDeadline);
    ml_solo = run.tenant(kMlTenant)->results;
  }
  const TrioOutcome co1 = run_trio(Scenario::kClean, false, true,
                                   calls, gets, puts);
  const TrioOutcome co2 = run_trio(Scenario::kClean, false, true,
                                   calls, gets, puts);
  const bool ml_identical = cluster::bit_identical(ml_solo, co1.ml_results);
  const bool co_deterministic =
      !co1.all_digests.empty() && co1.all_digests == co2.all_digests;
  std::printf("\nco-tenant allreduce: %d workers finished, results %s vs "
              "solo; rpc cache hits %llu\n",
              co1.ml_finished, ml_identical ? "bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(co1.cached));
  if (!ml_identical || !co_deterministic || co1.finished < 1 ||
      co1.cached == 0) {
    std::printf("FAIL: co-tenancy degraded the allreduce or the cache\n");
    ++failures;
  }
  series.string("check", "co_tenancy")
      .boolean("allreduce_bit_identical", ml_identical)
      .boolean("replay_identical", co_deterministic)
      .number("rpc_cached_gets", co1.cached)
      .number("ml_finished", std::uint64_t(co1.ml_finished))
      .end_row();

  // --- Golden digests + determinism self-check ----------------------------
  const TrioOutcome g1 = run_trio(Scenario::kClean, false, false,
                                  calls, gets, puts);
  const TrioOutcome g2 = run_trio(Scenario::kClean, false, false,
                                  calls, gets, puts);
  const TrioOutcome f1 = run_trio(Scenario::kCrash, false, false, calls, 0, 0);
  const TrioOutcome f2 = run_trio(Scenario::kCrash, false, false, calls, 0, 0);
  const bool deterministic = g1.digest == g2.digest && f1.digest == f2.digest;
  std::printf("\ngolden digests: clean %016llx, crash %016llx, co-tenant",
              static_cast<unsigned long long>(g1.digest),
              static_cast<unsigned long long>(f1.digest));
  for (std::uint64_t d : co1.all_digests) {
    std::printf(" %016llx", static_cast<unsigned long long>(d));
  }
  std::printf(" (replay %s)\n", deterministic && co_deterministic
                                    ? "identical"
                                    : "DIVERGED");
  if (!deterministic) ++failures;
  series.string("check", "golden_digest_determinism")
      .boolean("deterministic", deterministic && co_deterministic)
      .string("clean_digest", hex64(g1.digest))
      .string("crash_digest", hex64(f1.digest))
      .end_row();

  if (!json_out.empty() && series.write_file(json_out)) {
    std::printf("\nwrote %zu rows to %s\n", series.row_count(),
                json_out.c_str());
  }
  if (failures != 0) {
    std::printf("\n%d gate(s) failed\n", failures);
    return 1;
  }
  return 0;
}
