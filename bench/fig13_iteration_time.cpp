// Figure 13: average training iteration time (first 100 iterations) as a
// function of the straggling probability p, for Ideal / Trio-ML /
// SwitchML on three DNN models.
//
// Paper result: SwitchML's iteration time grows with p while Trio-ML
// stays close to Ideal; at p = 16% Trio-ML is 1.72x / 1.75x / 1.8x
// faster than SwitchML (ResNet50 / DenseNet161 / VGG11).
#include "bench_util.hpp"
#include "mltrain/model.hpp"
#include "mltrain/trainer.hpp"

using namespace mltrain;

int main() {
  benchutil::banner(
      "Figure 13: iteration time vs straggling probability",
      "paper Fig 13 (a)-(c): Trio-ML ~ Ideal; 1.72x/1.75x/1.8x at p=16%");

  const std::vector<double> probabilities = {0.0,  0.02, 0.04, 0.06,
                                             0.08, 0.10, 0.12, 0.14, 0.16};
  // Average over several seeds of 100-iteration runs, as the paper
  // averages "the first 100 iterations".
  const int seeds = 20;

  for (const auto& model : model_zoo()) {
    std::printf("%s (iteration time, ms)\n", model.name.c_str());
    benchutil::row({"  p(%)", "Ideal", "Trio-ML", "SwitchML", "speedup"}, 12);
    double speedup_at_16 = 0;
    for (double p : probabilities) {
      double sums[3] = {0, 0, 0};
      const Backend backends[3] = {Backend::kIdeal, Backend::kTrioML,
                                   Backend::kSwitchML};
      for (int b = 0; b < 3; ++b) {
        for (int s = 0; s < seeds; ++s) {
          TrainConfig cfg;
          cfg.straggle_probability = p;
          cfg.seed = static_cast<std::uint64_t>(s + 1);
          Trainer t(model, backends[b], cfg);
          sums[b] += t.run_iterations(100).mean_iteration_ms;
        }
        sums[b] /= seeds;
      }
      const double speedup = sums[2] / sums[1];
      if (p >= 0.159) speedup_at_16 = speedup;
      benchutil::row({"  " + benchutil::fmt(100 * p, 0),
                      benchutil::fmt(sums[0], 1), benchutil::fmt(sums[1], 1),
                      benchutil::fmt(sums[2], 1),
                      benchutil::fmt(speedup, 2) + "x"},
                     12);
    }
    std::printf("  at p=16%%: Trio-ML speedup over SwitchML = %.2fx "
                "(paper: %s)\n\n",
                speedup_at_16,
                model.name == "ResNet50"      ? "1.72x"
                : model.name == "DenseNet161" ? "1.75x"
                                              : "1.8x");
  }
  return 0;
}
