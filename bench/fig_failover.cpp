// Failover sweep (extension, docs/recovery.md): kill time vs
// time-to-recover of a self-healing cluster allreduce.
//
// Each sweep point runs an 8-worker, 2-rack allreduce with a standby
// spine and the recovery control plane armed (timer-thread heartbeats,
// phi-accrual failure detection, automatic failover), then hard-kills
// the primary spine at a different instant of the epoch. Reported per
// point: detection latency (kill -> death declaration), failover latency
// (death -> leaves re-homed), total recovery overhead (faulted finish -
// fault-free finish), and the bit-identity of the recovered result
// against the fault-free baseline. Every point runs twice and the
// fault + recovery log digests are compared, so the bench doubles as a
// determinism check; any non-finite recovery time, lost worker, broken
// bit-identity or digest mismatch exits non-zero.
//
//   fig_failover [--quick] [--json-out=<file>]   # BENCH_failover.json in CI
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "recovery/recovery.hpp"

namespace {

struct Outcome {
  double finish_us = 0;       // last result arrival
  double detect_us = 0;       // kill -> death declared
  double failover_us = 0;     // death declared -> leaves re-homed
  int finished = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t blocks_invalidated = 0;
  std::uint64_t failovers = 0;
  std::uint64_t degraded_blocks = 0;
  std::uint64_t result_digest = 0;
  std::uint64_t log_digest = 0;  // fault log folded with recovery log
};

// FNV-1a over every result's gradient bits (tests/recovery_test.cpp).
std::uint64_t digest_results(
    const std::vector<trioml::AllreduceResult>& results) {
  std::uint64_t h = 1469598103934665603ull;
  const auto eat = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : results) {
    eat(r.grads.size());
    for (float g : r.grads) {
      std::uint32_t bits;
      __builtin_memcpy(&bits, &g, sizeof bits);
      eat(bits);
    }
  }
  return h;
}

// kill_us < 0 runs the fault-free baseline.
Outcome run_point(double kill_us, std::size_t blocks) {
  cluster::ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 128;
  spec.slab_pool = 1024;
  spec.backup_spine = true;
  spec.host_link.gbps = 10.0;  // stretch the epoch across the kill sweep

  cluster::Cluster cl(spec);
  const int workers = spec.total_workers();
  for (int w = 0; w < workers; ++w) {
    cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(1),
                                            /*retry_budget=*/50,
                                            sim::Duration::millis(8));
  }

  recovery::RecoveryConfig rc;
  rc.heartbeat.period = sim::Duration::micros(20);
  rc.heartbeat.check_period = sim::Duration::micros(10);
  rc.heartbeat.phi_threshold = 4.0;
  recovery::RecoveryManager mgr(cl, rc);
  mgr.start();

  faults::FaultInjector injector(cl.simulator(), nullptr);
  injector.bind(cl);
  if (kill_us >= 0) {
    faults::FaultSchedule schedule;
    schedule.kill(sim::Time() + sim::Duration(std::int64_t(kill_us * 1000)),
                  faults::FaultSchedule::spine_router());
    injector.arm(schedule);
  }

  const auto grads = cluster::patterned_gradients(
      workers, blocks * spec.grads_per_packet);
  const auto run = cluster::run_allreduce(
      cl, grads, /*gen_id=*/1, sim::Time(sim::Duration::millis(100).ns()));
  mgr.stop();

  Outcome out;
  out.finish_us = (run.finish - run.start).us();
  out.finished = run.finished;
  for (int w = 0; w < workers; ++w) {
    out.retransmits += cl.worker(w).retransmissions();
  }
  for (const auto& r : run.results) out.degraded_blocks += r.degraded_blocks;
  out.blocks_invalidated =
      injector.blocks_invalidated() + mgr.blocks_invalidated();
  out.failovers = mgr.failovers();
  if (mgr.failovers() > 0) {
    const sim::Time killed = sim::Time() + sim::Duration(
        std::int64_t(kill_us * 1000));
    out.detect_us = (mgr.last_death_at() - killed).us();
    out.failover_us = (mgr.last_failover_at() - mgr.last_death_at()).us();
  }
  out.result_digest = digest_results(run.results);
  // Fold fault and recovery fingerprints into one replay digest.
  std::uint64_t h = injector.digest();
  const std::uint64_t r = mgr.digest();
  for (int i = 0; i < 8; ++i) {
    h ^= (r >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  out.log_digest = h;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);
  const std::size_t blocks = quick ? 128 : 256;

  benchutil::banner(
      "Failover sweep: spine kill time vs time-to-recover",
      "extension of SS5/SS7 — self-healing control plane under hard "
      "router loss");

  // Kill instants across the epoch; the heartbeat estimator primes by
  // ~40us, and the fault-free epoch spans several hundred us on 10G
  // access links.
  std::vector<double> kill_sweep_us = {50, 90, 130, 180, 300};
  if (quick) kill_sweep_us = {50, 90};

  const Outcome baseline = run_point(-1, blocks);
  std::printf("fault-free finish: %.1f us (finished %d/8)\n\n",
              baseline.finish_us, baseline.finished);

  benchutil::row({"kill_us", "detect_us", "failover_us", "recover_us",
                  "finish_us", "finished", "rexmits", "inval", "bitid",
                  "determ"},
                 12);
  benchutil::JsonSeries series;
  int failures = 0;
  if (baseline.finished != 8 || baseline.failovers != 0) ++failures;
  for (double kill_us : kill_sweep_us) {
    const Outcome a = run_point(kill_us, blocks);
    const Outcome b = run_point(kill_us, blocks);
    const bool deterministic = a.log_digest == b.log_digest &&
                               a.result_digest == b.result_digest &&
                               a.finish_us == b.finish_us;
    const bool bit_identical = a.result_digest == baseline.result_digest &&
                               a.degraded_blocks == 0;
    // Time-to-recover: extra wall-clock the failover cost the allreduce.
    // Finite by construction when every worker finished before the run
    // deadline; a worker that never converges leaves finish pinned at
    // the deadline and fails the `finished` check below.
    const double recover_us = a.finish_us - baseline.finish_us;
    const bool ok = deterministic && bit_identical && a.finished == 8 &&
                    a.failovers == 1 && a.finish_us < 100'000.0;
    if (!ok) ++failures;

    benchutil::row({benchutil::fmt(kill_us, 0), benchutil::fmt(a.detect_us, 1),
                    benchutil::fmt(a.failover_us, 1),
                    benchutil::fmt(recover_us, 1),
                    benchutil::fmt(a.finish_us, 1),
                    std::to_string(a.finished) + "/8",
                    std::to_string(a.retransmits),
                    std::to_string(a.blocks_invalidated),
                    bit_identical ? "yes" : "NO",
                    deterministic ? "yes" : "NO"},
                   12);
    series.number("kill_us", kill_us)
        .number("detect_us", a.detect_us)
        .number("failover_us", a.failover_us)
        .number("recover_us", recover_us)
        .number("finish_us", a.finish_us)
        .number("baseline_finish_us", baseline.finish_us)
        .number("finished", std::uint64_t(a.finished))
        .number("retransmits", a.retransmits)
        .number("blocks_invalidated", a.blocks_invalidated)
        .number("failovers", a.failovers)
        .number("degraded_blocks", a.degraded_blocks)
        .boolean("bit_identical", bit_identical)
        .boolean("deterministic", deterministic)
        .end_row();
  }

  if (!json_out.empty() && series.write_file(json_out)) {
    std::printf("\nwrote %zu rows to %s\n", series.row_count(),
                json_out.c_str());
  }
  if (failures != 0) {
    std::printf("\n%d sweep point(s) failed recovery/determinism checks\n",
                failures);
    return 1;
  }
  return 0;
}
