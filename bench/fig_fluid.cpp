// Hybrid-fidelity validation (docs/fluid.md): the fluid fast path must
// reproduce full packet-fidelity curves within a few percent at a large
// wall-clock speedup.
//
// Four parts, each a hard gate:
//
//   A. fig15-analog accuracy sweep — one allreduce burst against
//      background aggressors on every host at increasing offered load,
//      over a fixed simulated horizon, run twice per point: background
//      fluid vs background fully packet-simulated (the controller's own
//      re-materialised generators, byte-identical pacing). Gates: the
//      allreduce results are bit-identical, the allreduce duration and
//      the background goodput curves stay within kMaxCurveErr of full
//      fidelity, and the fluid run is kMinSpeedup x faster in wall-clock
//      terms (full mode, largest topology).
//   B. fig17-analog topology sweep — the same comparison across cluster
//      sizes at fixed load (full mode only).
//   C. Shard determinism — a fluid-enabled chaos run (burst-loss window
//      overlapping the allreduce) must produce bit-identical digests,
//      fluid byte counts and re-materialised frame counts at every
//      --shards count.
//   D. Chaos fidelity — with a fault window covering the whole horizon
//      every stream is re-materialised for the entire run, so the
//      fluid-mode digest (timing included) must equal the packet-mode
//      digest exactly: inside fault windows the fast path IS the packet
//      path.
//
//   fig_fluid [--quick] [--json-out=<file>]   # BENCH_fluid.json in CI
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "jobs/fluid.hpp"

namespace {

constexpr std::uint16_t kGradsPerPacket = 1024;
constexpr double kMaxCurveErr = 0.05;  // 5% vs full fidelity
constexpr double kMinSpeedup = 10.0;   // wall-clock, full mode on 8x8

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count() * 1e3;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// FNV-1a over results, completion count, finish time and final clock —
/// timing included, so scheduling divergence shows even when values agree.
std::uint64_t results_digest(const cluster::AllreduceRun& run,
                             sim::Time final_now) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv(h, std::uint64_t(run.finished));
  h = fnv(h, std::uint64_t(run.finish.ns()));
  h = fnv(h, std::uint64_t(final_now.ns()));
  for (const trioml::AllreduceResult& r : run.results) {
    h = fnv(h, r.grads.size());
    for (float g : r.grads) {
      std::uint32_t bits;
      __builtin_memcpy(&bits, &g, sizeof bits);
      h = fnv(h, bits);
    }
  }
  return h;
}

/// FNV-1a over result values only (the tenant-digest shape trio-run
/// reports): what the computation produced, independent of when.
std::uint64_t values_digest(const cluster::AllreduceRun& run) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv(h, std::uint64_t(run.finished));
  for (const trioml::AllreduceResult& r : run.results) {
    h = fnv(h, r.grads.size());
    for (float g : r.grads) {
      std::uint32_t bits;
      __builtin_memcpy(&bits, &g, sizeof bits);
      h = fnv(h, bits);
    }
  }
  return h;
}

cluster::ClusterSpec make_spec(int racks, int workers_per_rack, int shards) {
  cluster::ClusterSpec spec;
  spec.racks = racks;
  spec.workers_per_rack = workers_per_rack;
  spec.grads_per_packet = kGradsPerPacket;
  // Full-bisection fabric: the trunk matches the aggregate host bandwidth
  // of one rack. A thinner trunk is oversubscribed by the allreduce burst
  // alone (8 x 100G offered into 400G), and queue-dominated links are
  // outside the fluid eligibility envelope (docs/fluid.md).
  spec.fabric_link.gbps = 100.0 * workers_per_rack;
  spec.fabric_link.latency = sim::Duration::micros(2);
  // Spine-class processing: the eligibility envelope covers PFE packet
  // processing too, so the routers' effective PPE parallelism scales with
  // the fabric they front — one testbed (gen-5) PFE-equivalent per
  // 1.6 Tbps of host bandwidth (generation 6's per-PFE rating). A 6.4T
  // 8x8 fabric on unscaled gen-5 routers saturates the spine's dispatch
  // on background frames alone, and a processing-saturated comparator
  // measures its own diverging queues, not the fluid model.
  const double host_gbps = 100.0 * racks * workers_per_rack;
  const int pfe_equivalents =
      static_cast<int>((host_gbps + 1599.0) / 1600.0);
  if (pfe_equivalents > 1) spec.cal.ppes_per_pfe = 16 * pfe_equivalents;
  spec.shards = shards;
  return spec;
}

struct ModeResult {
  cluster::AllreduceRun run;
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  std::uint64_t bg_bytes = 0;  // background bytes carried (fluid + frames)
  std::uint64_t fluid_bytes = 0;
  std::uint64_t packet_frames = 0;
  std::uint64_t transitions = 0;
  bool identical = false;  // results match the flat Testbed baseline
};

/// One allreduce burst plus background streams on every host, simulated
/// to exactly `horizon` in both modes (the queue never drains: packet
/// emitters or fluid wakeups keep it busy, so run_allreduce returns at
/// the deadline — an identical driver for a fair wall-clock comparison).
ModeResult run_mode(const cluster::ClusterSpec& spec, double load,
                    bool forced_packet, const faults::FaultSchedule* schedule,
                    sim::Time horizon,
                    const std::vector<std::vector<std::uint32_t>>& grads) {
  cluster::Cluster cl(spec);
  // Lossy runs (parts C/D) need prompt retransmission; loss-free runs
  // (parts A/B) get the same machinery as a safety net with a period the
  // run can never reach — a 200us period would *fire spuriously* once
  // background contention pushes natural duration past it, and the
  // resulting retransmit storm measures the driver, not the fluid model.
  const sim::Duration retx = schedule != nullptr
                                 ? sim::Duration::micros(200)
                                 : sim::Duration(horizon.ns());
  for (int w = 0; w < cl.num_workers(); ++w) {
    cl.worker(w).enable_retransmit(retx);
  }
  jobs::FluidController fluid(cl);
  for (int h = 0; h < cl.num_workers(); ++h) {
    fluid.add_background_stream(h, /*tenant=*/9, load);
  }
  faults::FaultInjector injector(cl.simulator());
  if (schedule != nullptr) {
    injector.bind(cl);
    injector.arm(*schedule);
    fluid.observe(*schedule);
  }
  if (forced_packet) fluid.enter_packet_mode();

  ModeResult out;
  const auto wall_start = Clock::now();
  out.run = cluster::run_allreduce(cl, grads, /*gen_id=*/1, horizon);
  out.wall_ms = ms_since(wall_start);
  fluid.stop();

  out.events = cl.engine().events_executed();
  out.digest = results_digest(out.run, cl.engine().now());
  out.fluid_bytes = fluid.fluid_bytes();
  out.packet_frames = fluid.packet_frames();
  out.bg_bytes = fluid.fluid_bytes() + fluid.packet_bytes();
  out.transitions = fluid.transitions();
  out.identical = out.run.finished == spec.total_workers() &&
                  cluster::bit_identical(out.run.results,
                                         cluster::testbed_baseline(spec, grads));
  return out;
}

double rel_err(double approx, double exact) {
  return exact == 0 ? 0 : std::abs(approx - exact) / exact;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);

  benchutil::banner(
      "Hybrid fidelity: fluid background traffic vs full packet simulation",
      "docs/fluid.md — accuracy, speedup, shard determinism, chaos "
      "fidelity");

  const int racks = quick ? 2 : 8;
  const int wpr = quick ? 4 : 8;
  const std::size_t blocks = quick ? 8 : 32;
  const sim::Time horizon(
      (quick ? sim::Duration::millis(2) : sim::Duration::millis(10)).ns());
  // Loads stay inside the fluid eligibility envelope (docs/fluid.md):
  // combined offered load below every link's capacity — including the
  // full-bisection trunks (8 workers/rack x 0.4 x 100G = 320G < 800G) — so
  // full-fidelity queues stay bounded and the comparison is
  // apples-to-apples.
  std::vector<double> loads = {0.2, 0.3, 0.4};
  if (quick) loads = {0.35};

  benchutil::JsonSeries series;
  int failures = 0;

  // --- Part A: fig15-analog load sweep ----------------------------------
  std::printf("A. %dx%d allreduce vs background load (horizon %.0f us)\n",
              racks, wpr, double(horizon.ns()) / 1e3);
  benchutil::row({"load", "dur_pkt_us", "dur_fl_us", "err%", "bg_pkt_MB",
                  "bg_fl_MB", "err%", "wall_pkt", "wall_fl", "speedup",
                  "bitid"},
                 11);
  const auto grads = cluster::patterned_gradients(racks * wpr,
                                                  blocks * kGradsPerPacket);
  double best_speedup = 0;
  for (double load : loads) {
    const auto spec = make_spec(racks, wpr, 1);
    const ModeResult pkt = run_mode(spec, load, true, nullptr, horizon, grads);
    const ModeResult fl = run_mode(spec, load, false, nullptr, horizon, grads);
    const double dur_err = rel_err(fl.run.duration_us(), pkt.run.duration_us());
    const double bg_err = rel_err(double(fl.bg_bytes), double(pkt.bg_bytes));
    const double speedup = fl.wall_ms <= 0 ? 0 : pkt.wall_ms / fl.wall_ms;
    best_speedup = std::max(best_speedup, speedup);
    const bool ok = pkt.identical && fl.identical && dur_err <= kMaxCurveErr &&
                    bg_err <= kMaxCurveErr;
    if (!ok) ++failures;

    benchutil::row(
        {benchutil::fmt(load, 2), benchutil::fmt(pkt.run.duration_us(), 1),
         benchutil::fmt(fl.run.duration_us(), 1),
         benchutil::fmt(dur_err * 100, 2),
         benchutil::fmt(double(pkt.bg_bytes) / 1e6, 1),
         benchutil::fmt(double(fl.bg_bytes) / 1e6, 1),
         benchutil::fmt(bg_err * 100, 2), benchutil::fmt(pkt.wall_ms, 0),
         benchutil::fmt(fl.wall_ms, 0), benchutil::fmt(speedup, 1),
         (pkt.identical && fl.identical) ? "yes" : "NO"},
        11);
    series.string("metric", "load_sweep")
        .number("racks", std::uint64_t(racks))
        .number("workers_per_rack", std::uint64_t(wpr))
        .number("load", load)
        .number("duration_us_packet", pkt.run.duration_us())
        .number("duration_us_fluid", fl.run.duration_us())
        .number("duration_err", dur_err)
        .number("bg_bytes_packet", pkt.bg_bytes)
        .number("bg_bytes_fluid", fl.bg_bytes)
        .number("bg_err", bg_err)
        .number("wall_ms_packet", pkt.wall_ms)
        .number("wall_ms_fluid", fl.wall_ms)
        .number("events_packet", pkt.events)
        .number("events_fluid", fl.events)
        .number("speedup", speedup)
        .boolean("bit_identical", pkt.identical && fl.identical)
        .boolean("pass", ok)
        .end_row();
  }
  if (!quick && best_speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAILED: best fluid speedup %.1fx < %.0fx\n",
                 best_speedup, kMinSpeedup);
    ++failures;
  }
  series.string("metric", "speedup_gate")
      .number("best_speedup", best_speedup)
      .number("min_required", quick ? 0.0 : kMinSpeedup)
      .boolean("pass", quick || best_speedup >= kMinSpeedup)
      .end_row();

  // --- Part B: fig17-analog topology sweep (full mode only) --------------
  if (!quick) {
    std::printf("\nB. topology sweep at load 0.35\n");
    benchutil::row({"racks", "wkr/rack", "dur_pkt_us", "dur_fl_us", "err%",
                    "speedup", "bitid"},
                   11);
    const struct {
      int racks, wpr;
    } topos[] = {{2, 4}, {4, 4}, {8, 8}};
    for (const auto& t : topos) {
      const auto spec = make_spec(t.racks, t.wpr, 1);
      const auto tg = cluster::patterned_gradients(t.racks * t.wpr,
                                                   blocks * kGradsPerPacket);
      const ModeResult pkt = run_mode(spec, 0.35, true, nullptr, horizon, tg);
      const ModeResult fl = run_mode(spec, 0.35, false, nullptr, horizon, tg);
      const double dur_err =
          rel_err(fl.run.duration_us(), pkt.run.duration_us());
      const double speedup = fl.wall_ms <= 0 ? 0 : pkt.wall_ms / fl.wall_ms;
      const bool ok =
          pkt.identical && fl.identical && dur_err <= kMaxCurveErr;
      if (!ok) ++failures;
      benchutil::row({std::to_string(t.racks), std::to_string(t.wpr),
                      benchutil::fmt(pkt.run.duration_us(), 1),
                      benchutil::fmt(fl.run.duration_us(), 1),
                      benchutil::fmt(dur_err * 100, 2),
                      benchutil::fmt(speedup, 1),
                      (pkt.identical && fl.identical) ? "yes" : "NO"},
                     11);
      series.string("metric", "topology_sweep")
          .number("racks", std::uint64_t(t.racks))
          .number("workers_per_rack", std::uint64_t(t.wpr))
          .number("duration_us_packet", pkt.run.duration_us())
          .number("duration_us_fluid", fl.run.duration_us())
          .number("duration_err", dur_err)
          .number("speedup", speedup)
          .boolean("pass", ok)
          .end_row();
    }
  }

  // --- Part C: shard determinism of a fluid chaos run --------------------
  std::printf("\nC. fluid chaos run across --shards (digest must not move)\n");
  benchutil::row({"shards", "digest", "fluid_MB", "frames", "wall_ms", "ok"},
                 18);
  faults::FaultSchedule chaos;
  chaos.burst_loss(
      sim::Time(sim::Duration::micros(100).ns()),
      {faults::TargetKind::kFabricLink, 0, faults::LinkDir::kUp},
      net::GilbertElliott{0.05, 0.2, 0.0, 1.0}, sim::Duration::millis(1),
      /*seed=*/7);
  std::vector<int> shard_sweep = {1, 2, 4, 8};
  if (quick) shard_sweep = {1, 2};
  std::uint64_t digest_1 = 0, fluid_1 = 0, frames_1 = 0;
  for (const int shards : shard_sweep) {
    const auto spec = make_spec(racks, wpr, shards);
    const ModeResult r = run_mode(spec, 0.35, false, &chaos, horizon, grads);
    if (shards == 1) {
      digest_1 = r.digest;
      fluid_1 = r.fluid_bytes;
      frames_1 = r.packet_frames;
    }
    const bool ok = r.digest == digest_1 && r.fluid_bytes == fluid_1 &&
                    r.packet_frames == frames_1 && r.transitions >= 2;
    if (!ok) ++failures;
    char dig[20];
    std::snprintf(dig, sizeof dig, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    benchutil::row({std::to_string(shards), dig,
                    benchutil::fmt(double(r.fluid_bytes) / 1e6, 1),
                    std::to_string(r.packet_frames),
                    benchutil::fmt(r.wall_ms, 0), ok ? "yes" : "NO"},
                   18);
    series.string("metric", "shard_sweep")
        .number("shards", std::uint64_t(shards))
        .number("digest", r.digest)
        .number("fluid_bytes", r.fluid_bytes)
        .number("packet_frames", r.packet_frames)
        .number("wall_ms", r.wall_ms)
        .boolean("digest_matches_shards_1", ok)
        .end_row();
  }

  // --- Part D: chaos fidelity — full-horizon window ----------------------
  std::printf("\nD. fault window covering the whole run: fluid == packet\n");
  faults::FaultSchedule whole;
  whole.burst_loss(sim::Time(),
                   {faults::TargetKind::kFabricLink, 0, faults::LinkDir::kUp},
                   net::GilbertElliott{0.01, 0.1, 0.0, 1.0},
                   sim::Duration::zero(), /*seed=*/11);  // 0 = forever
  {
    // Inside the window the fluid run generates the same paced frame
    // streams as the forced-packet comparator, so the value digests must
    // match exactly and no byte may move in fluid mode. (The timing
    // digest is not compared here: a never-fluid run inserts its
    // generator events pre-run while the window path inserts them at the
    // t=0 global barrier, which permutes same-instant frame interleaving
    // — and with it which frames the loss model eats — without changing
    // what the allreduce computes. Timing determinism of the fluid path
    // itself is part C's gate.)
    const auto spec = make_spec(racks, wpr, 1);
    const ModeResult pkt = run_mode(spec, 0.35, true, &whole, horizon, grads);
    const ModeResult fl = run_mode(spec, 0.35, false, &whole, horizon, grads);
    const std::uint64_t pkt_values = values_digest(pkt.run);
    const std::uint64_t fl_values = values_digest(fl.run);
    const double dur_err =
        rel_err(fl.run.duration_us(), pkt.run.duration_us());
    const bool ok = pkt_values == fl_values && fl.fluid_bytes == 0 &&
                    fl.packet_frames == pkt.packet_frames &&
                    pkt.run.finished == spec.total_workers() &&
                    fl.run.finished == spec.total_workers();
    if (!ok) ++failures;
    std::printf("  value digest %016llx vs %016llx, frames %llu vs %llu, "
                "dur %.1f vs %.1f us (err %.2f%%), fluid bytes %llu -> %s\n",
                static_cast<unsigned long long>(pkt_values),
                static_cast<unsigned long long>(fl_values),
                static_cast<unsigned long long>(pkt.packet_frames),
                static_cast<unsigned long long>(fl.packet_frames),
                pkt.run.duration_us(), fl.run.duration_us(), dur_err * 100,
                static_cast<unsigned long long>(fl.fluid_bytes),
                ok ? "identical" : "MISMATCH");
    series.string("metric", "chaos_fidelity")
        .number("values_digest_packet", pkt_values)
        .number("values_digest_fluid", fl_values)
        .number("duration_us_packet", pkt.run.duration_us())
        .number("duration_us_fluid", fl.run.duration_us())
        .number("duration_err", dur_err)
        .number("packet_frames_packet", pkt.packet_frames)
        .number("packet_frames_fluid", fl.packet_frames)
        .number("fluid_bytes_fluid", fl.fluid_bytes)
        .boolean("pass", ok)
        .end_row();
  }

  if (!json_out.empty()) {
    if (series.write_file(json_out)) {
      std::printf("\nwrote %zu rows to %s\n", series.row_count(),
                  json_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "\n%d fluid fidelity gate(s) failed\n", failures);
    return 1;
  }
  return 0;
}
