// Figure 15: per-PFE aggregation latency and aggregation rate as a
// function of the number of gradients per packet, measured at PACKET
// level with window = 1 (one outstanding packet per server), four
// servers on one PFE — the §6.3 microbenchmark.
//
// Paper result: 30 us at 64 gradients/packet growing sub-linearly to
// ~200 us at 1024 (6.6x for 16x the gradients), with the aggregation
// rate (gradients/us) rising and starting to plateau at 512-1024.
// Absolute values here come from the calibrated software model; the
// shape (sub-linear latency, plateauing rate) is the reproduced result.
//
// Also prints the §6.3 Microcode program analysis counters: run-time
// instructions per gradient (paper: ~1.2 in the tail loop) and the
// RMW-engine add count.
#include <memory>

#include "bench_util.hpp"
#include "trioml/testbed.hpp"

using namespace trioml;

int main(int argc, char** argv) {
  const auto topts = benchutil::parse_telemetry_flags(argc, argv);
  benchutil::banner("Figure 15: per-PFE aggregation latency and rate",
                    "paper Fig 15 + the Microcode program analysis (§6.3)");

  benchutil::row({"grads/pkt", "latency(us)", "rate(grad/us)", "instr/grad",
                  "rmw adds"}, 15);

  const int blocks = 500;
  double lat64 = 0, lat1024 = 0;
  for (int grads_per_packet : {64, 128, 256, 512, 1024}) {
    // Telemetry observes the headline 1024-gradient run.
    std::unique_ptr<telemetry::Telemetry> telem;
    if (topts.any() && grads_per_packet == 1024) {
      telem = std::make_unique<telemetry::Telemetry>(topts.metrics_enabled(),
                                                     topts.trace_enabled());
    }
    TestbedConfig cfg;
    cfg.num_workers = 4;
    cfg.grads_per_packet = static_cast<std::uint16_t>(grads_per_packet);
    cfg.window = 1;  // "each server sends only one packet at a time"
    cfg.telemetry = telem.get();
    Testbed tb(cfg);

    const std::size_t grads =
        static_cast<std::size_t>(grads_per_packet) * blocks;
    int done = 0;
    for (int w = 0; w < 4; ++w) {
      std::vector<std::uint32_t> g(grads, 1);
      tb.worker(w).start_allreduce(std::move(g), 1,
                                   [&](AllreduceResult) { ++done; });
    }
    tb.simulator().run();

    auto& stats = tb.app(0).stats();
    const double latency_us = stats.packet_latency_us.mean();
    const double rate = grads_per_packet / latency_us;
    // Run-time instructions per gradient processed (the paper's ~1.2
    // figure counts every gradient of every source's packet).
    const double instr_per_grad =
        static_cast<double>(tb.router().pfe(0).instructions_issued()) /
        static_cast<double>(tb.router().pfe(0).sms().add32_ops());
    benchutil::row({std::to_string(grads_per_packet),
                    benchutil::fmt(latency_us, 1), benchutil::fmt(rate, 2),
                    benchutil::fmt(instr_per_grad, 2),
                    std::to_string(tb.router().pfe(0).sms().add32_ops())},
                   15);
    if (grads_per_packet == 64) lat64 = latency_us;
    if (grads_per_packet == 1024) lat1024 = latency_us;
    if (done != 4) std::printf("  WARNING: %d/4 workers finished\n", done);
    if (telem) benchutil::write_telemetry(topts, *telem, tb.simulator().now());
  }
  std::printf(
      "\nlatency(1024)/latency(64) = %.1fx for 16x the gradients "
      "(paper: 6.6x)\n",
      lat1024 / lat64);
  std::printf("paper Microcode analysis: ~60 instructions, ~1.2 run-time\n"
              "instructions/gradient, 12 RMW engines x 2-cycle adds @1 GHz\n"
              "= 6 Gops/s per PFE\n");
  return 0;
}
