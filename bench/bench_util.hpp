// Small table-printing helpers shared by the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace benchutil {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("    reproduces: %s\n\n", paper_ref.c_str());
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace benchutil
