// Small table-printing and telemetry-flag helpers shared by the
// figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace benchutil {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("    reproduces: %s\n\n", paper_ref.c_str());
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// `--metrics-out=<json>` / `--trace-out=<json>` destinations (empty =
/// telemetry off), accepted by every bench that calls parse_telemetry_flags.
struct TelemetryOptions {
  std::string metrics_out;
  std::string trace_out;
  bool metrics_enabled() const { return !metrics_out.empty(); }
  bool trace_enabled() const { return !trace_out.empty(); }
  bool any() const { return metrics_enabled() || trace_enabled(); }
};

/// Parses the telemetry flags (both `--flag=value` and `--flag value`
/// spellings); unrelated arguments are ignored.
inline TelemetryOptions parse_telemetry_flags(int argc, char** argv) {
  TelemetryOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) != 0) return nullptr;
      if (arg.size() > n && arg[n] == '=') return arg.c_str() + n + 1;
      if (arg.size() == n && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--metrics-out")) {
      opts.metrics_out = v;
    } else if (const char* v = value_of("--trace-out")) {
      opts.trace_out = v;
    }
  }
  return opts;
}

/// Writes whichever outputs were requested and reports where they went.
inline void write_telemetry(const TelemetryOptions& opts,
                            telemetry::Telemetry& telem, sim::Time now) {
  if (opts.metrics_enabled()) {
    if (telem.metrics.write_json_file(opts.metrics_out, now)) {
      std::printf("wrote metrics to %s (%zu metrics)\n",
                  opts.metrics_out.c_str(), telem.metrics.metric_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opts.metrics_out.c_str());
    }
  }
  if (opts.trace_enabled()) {
    if (telem.tracer.write_json_file(opts.trace_out)) {
      std::printf("wrote trace to %s (%zu events)\n", opts.trace_out.c_str(),
                  telem.tracer.event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_out.c_str());
    }
  }
}

}  // namespace benchutil
