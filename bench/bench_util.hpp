// Small table-printing and telemetry-flag helpers shared by the
// figure-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace benchutil {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("    reproduces: %s\n\n", paper_ref.c_str());
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Machine-readable counterpart of the printed table: one JSON object per
/// row, written as an array to the `--json-out=<file>` destination.
///
///   JsonSeries series;
///   series.number("racks", 4).number("goodput_gbps", g).end_row();
///   series.write_file(path);
class JsonSeries {
 public:
  JsonSeries& number(const std::string& key, double value) {
    std::ostringstream os;
    telemetry::json_string(os, key);
    os << ": ";
    telemetry::json_number(os, value);
    fields_.push_back(os.str());
    return *this;
  }
  JsonSeries& number(const std::string& key, std::uint64_t value) {
    return number(key, double(value));
  }
  JsonSeries& string(const std::string& key, const std::string& value) {
    std::ostringstream os;
    telemetry::json_string(os, key);
    os << ": ";
    telemetry::json_string(os, value);
    fields_.push_back(os.str());
    return *this;
  }
  JsonSeries& boolean(const std::string& key, bool value) {
    std::ostringstream os;
    telemetry::json_string(os, key);
    os << ": " << (value ? "true" : "false");
    fields_.push_back(os.str());
    return *this;
  }
  void end_row() {
    std::string row = "  {";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) row += ", ";
      row += fields_[i];
    }
    row += "}";
    rows_.push_back(std::move(row));
    fields_.clear();
  }
  std::size_t row_count() const { return rows_.size(); }

  void write(std::ostream& os) const {
    os << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "]\n";
  }
  bool write_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    write(os);
    return bool(os);
  }

 private:
  std::vector<std::string> fields_;
  std::vector<std::string> rows_;
};

/// Appends the standard host-performance triple — wall-clock milliseconds,
/// simulation events executed (the engine's monotonic events_executed()),
/// and events per wall-clock second — to the JSON row being built.
inline JsonSeries& perf_fields(JsonSeries& series, double wall_ms,
                               std::uint64_t sim_events) {
  const double per_sec = wall_ms > 0.0 ? double(sim_events) / (wall_ms / 1e3) : 0.0;
  return series.number("wall_ms", wall_ms)
      .number("sim_events", sim_events)
      .number("events_per_sec", per_sec);
}

/// Parses `--json-out=<file>` (or `--json-out <file>`); empty = not given.
inline std::string parse_json_out_flag(int argc, char** argv) {
  const std::string flag = "--json-out";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() > flag.size() && arg.compare(0, flag.size(), flag) == 0 &&
        arg[flag.size()] == '=') {
      return arg.substr(flag.size() + 1);
    }
    if (arg == flag && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

/// `--metrics-out=<json>` / `--trace-out=<json>` destinations (empty =
/// telemetry off), accepted by every bench that calls parse_telemetry_flags.
struct TelemetryOptions {
  std::string metrics_out;
  std::string trace_out;
  bool metrics_enabled() const { return !metrics_out.empty(); }
  bool trace_enabled() const { return !trace_out.empty(); }
  bool any() const { return metrics_enabled() || trace_enabled(); }
};

/// Parses the telemetry flags (both `--flag=value` and `--flag value`
/// spellings); unrelated arguments are ignored.
inline TelemetryOptions parse_telemetry_flags(int argc, char** argv) {
  TelemetryOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) != 0) return nullptr;
      if (arg.size() > n && arg[n] == '=') return arg.c_str() + n + 1;
      if (arg.size() == n && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--metrics-out")) {
      opts.metrics_out = v;
    } else if (const char* v = value_of("--trace-out")) {
      opts.trace_out = v;
    }
  }
  return opts;
}

/// Writes whichever outputs were requested and reports where they went.
inline void write_telemetry(const TelemetryOptions& opts,
                            telemetry::Telemetry& telem, sim::Time now) {
  if (opts.metrics_enabled()) {
    if (telem.metrics.write_json_file(opts.metrics_out, now)) {
      std::printf("wrote metrics to %s (%zu metrics)\n",
                  opts.metrics_out.c_str(), telem.metrics.metric_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opts.metrics_out.c_str());
    }
  }
  if (opts.trace_enabled()) {
    if (telem.tracer.write_json_file(opts.trace_out)) {
      std::printf("wrote trace to %s (%zu events)\n", opts.trace_out.c_str(),
                  telem.tracer.event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_out.c_str());
    }
  }
}

}  // namespace benchutil
