// Table 1: DNN models used in the experiments.
#include "bench_util.hpp"
#include "mltrain/model.hpp"

int main() {
  benchutil::banner("Table 1: DNN models used in our experiments",
                    "paper Table 1 (§6.1)");
  benchutil::row({"DNN Model", "Size", "Batch size/GPU", "Dataset",
                  "Gradients"}, 16);
  benchutil::row({"---------", "----", "--------------", "-------",
                  "---------"}, 16);
  for (const auto& m : mltrain::model_zoo()) {
    benchutil::row({m.name, benchutil::fmt(m.size_mb, 0) + " MB",
                    std::to_string(m.batch_size_per_gpu), m.dataset,
                    std::to_string(m.gradient_count())},
                   16);
  }
  std::printf("\npaper: ResNet50 98 MB/64, VGG11 507 MB/128, "
              "DenseNet161 109 MB/64, all ImageNet\n");
  return 0;
}
