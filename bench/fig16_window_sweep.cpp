// Figure 16: impact of the aggregation window size on per-PFE
// aggregation latency and throughput, for Trio-ML-512 and Trio-ML-1024
// (512 / 1024 gradients per packet), measured at PACKET level with four
// 100 Gbps servers on one PFE.
//
// Paper result: latency grows with the window (more simultaneous
// aggregation packets in flight), throughput grows and then saturates —
// higher for 1024-gradient packets (~150 Gbps) than for 512 — and
// window 4096 is a good latency/throughput balance.
#include "bench_util.hpp"
#include "trioml/testbed.hpp"

using namespace trioml;

namespace {

struct Point {
  double latency_us;
  double goodput_gbps;
};

Point run_config(int grads_per_packet, std::uint32_t window) {
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = static_cast<std::uint16_t>(grads_per_packet);
  cfg.window = window;
  cfg.slab_pool = 4 * (window + 64);
  Testbed tb(cfg);

  // Stream enough blocks to reach steady state: bounded by simulated
  // time, not by running dry.
  const auto sim_end = sim::Duration::millis(4);
  const auto warmup = sim::Duration::seconds(0) + sim::Duration::millis(1) + sim::Duration::micros(500);
  // Enough blocks that no worker runs dry before sim_end at saturation.
  const std::size_t blocks = grads_per_packet == 512 ? 40'000 : 20'000;
  const std::size_t grads = static_cast<std::size_t>(grads_per_packet) * blocks;
  for (int w = 0; w < 4; ++w) {
    std::vector<std::uint32_t> g(grads, 1);
    tb.worker(w).start_allreduce(std::move(g), 1, [](AllreduceResult) {});
  }
  tb.simulator().run_until(sim::Time(warmup.ns()));
  const std::uint64_t grads_at_warmup = tb.app(0).stats().gradients_aggregated;
  tb.simulator().run_until(sim::Time(sim_end.ns()));

  Point p;
  p.latency_us = tb.app(0).stats().packet_latency_us.mean();
  const double window_grads = static_cast<double>(
      tb.app(0).stats().gradients_aggregated - grads_at_warmup);
  // Aggregation goodput: aggregated gradient bits per second of steady
  // state, counting each result gradient once per contributing source
  // (the PFE absorbed 4x that from the wire).
  p.goodput_gbps = window_grads * 4 /*sources*/ * 32.0 /
                   static_cast<double>((sim_end - warmup).ns());
  return p;
}

}  // namespace

int main() {
  benchutil::banner("Figure 16: window size vs aggregation latency/throughput",
                    "paper Fig 16 (a)+(b): saturation ~150 Gbps, 1024 > 512");

  benchutil::row({"window", "512: lat(us)", "512: Gbps", "1024: lat(us)",
                  "1024: Gbps"}, 15);
  double plateau_512 = 0, plateau_1024 = 0;
  for (std::uint32_t window : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const Point a = run_config(512, window);
    const Point b = run_config(1024, window);
    benchutil::row({std::to_string(window), benchutil::fmt(a.latency_us, 1),
                    benchutil::fmt(a.goodput_gbps, 1),
                    benchutil::fmt(b.latency_us, 1),
                    benchutil::fmt(b.goodput_gbps, 1)},
                   15);
    plateau_512 = a.goodput_gbps;
    plateau_1024 = b.goodput_gbps;
  }
  std::printf(
      "\nsaturated throughput: Trio-ML-512 = %.0f Gbps, Trio-ML-1024 = "
      "%.0f Gbps (paper: 1024-gradient packets saturate higher, ~150 "
      "Gbps)\n",
      plateau_512, plateau_1024);
  std::printf("expected shape: latency rises with window; throughput rises\n"
              "then saturates; window 4096 balances the two\n");
  return 0;
}
