// Event-core microbenchmarks: how fast the simulator host runs, measured
// directly on the kernel hot paths this repo's every figure depends on
// (docs/performance.md).
//
//   core_schedule_run   steady-state schedule+run with a link-sized
//                       (40-byte) capture — the simulator's common case
//   core_cancel         schedule, truly cancel, reschedule — the timer-
//                       thread / retransmit-timer pattern
//   core_packet_churn   build_udp_frame + Packet::make + drop, recycling
//                       frames and packet cells through the pools
//   fig15_e2e           end-to-end fig15-style aggregation run: wall
//                       clock, simulated events, and host events/sec
//   cluster_pps         4x8 cluster allreduce at --shards 1 and at the
//                       hardware shard count: packets per wall-clock
//                       second, the headline the parallel engine moves
//
// Emits BENCH_core.json via --json-out=<file> so the perf trajectory of
// the event core is recorded per PR (the CI bench smoke job uploads it).
//
// Usage: micro_core [--quick] [--json-out=BENCH_core.json]
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "trioml/testbed.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A capture the size of the link-delivery closure (this + peer + port +
/// PacketPtr ~= 40 bytes): big enough that std::function would have heap-
/// allocated it, small enough to fit the inline-callback budget.
struct LinkSizedWork {
  std::uint64_t* sink;
  void* peer;
  int port;
  std::uint64_t a, b, c;
  void operator()() const { *sink += a + b + c + std::uint64_t(port); }
};

double bench_schedule_run(std::uint64_t events) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const LinkSizedWork work{&sink, nullptr, 3, 1, 2, 3};
  // Warm the queue's slot table and heap so the measurement sees the
  // steady state, not vector growth.
  constexpr int kBatch = 1024;
  for (int i = 0; i < kBatch; ++i) {
    sim.schedule_in(sim::Duration(i % 17), work);
  }
  sim.run();
  const auto start = Clock::now();
  std::uint64_t done = 0;
  while (done < events) {
    for (int i = 0; i < kBatch; ++i) {
      sim.schedule_in(sim::Duration(i % 17), work);
    }
    sim.run();
    done += kBatch;
  }
  const double secs = seconds_since(start);
  benchutil::row({"core_schedule_run", benchutil::fmt(done / secs / 1e6, 2),
                  benchutil::fmt(secs * 1e3, 1)});
  return done / secs;
}

double bench_cancel(std::uint64_t events) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const LinkSizedWork work{&sink, nullptr, 5, 4, 5, 6};
  constexpr int kBatch = 1024;
  std::vector<sim::EventId> ids(kBatch);
  const auto start = Clock::now();
  std::uint64_t done = 0;
  while (done < events) {
    // The timer-wheel/retransmit pattern: arm a sweep of timers, cancel
    // every one before it fires, re-arm half at a later deadline, drain.
    for (int i = 0; i < kBatch; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.schedule_in(sim::Duration(1000 + i % 13), work);
    }
    for (int i = 0; i < kBatch; ++i) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < kBatch / 2; ++i) {
      sim.schedule_in(sim::Duration(i % 7), work);
    }
    sim.run();
    done += kBatch;
  }
  const double secs = seconds_since(start);
  benchutil::row({"core_cancel", benchutil::fmt(done / secs / 1e6, 2),
                  benchutil::fmt(secs * 1e3, 1)});
  return done / secs;
}

double bench_packet_churn(std::uint64_t packets) {
  const std::vector<std::uint8_t> payload(1024, 0xab);
  const net::MacAddr src{1, 1, 1, 1, 1, 1};
  const net::MacAddr dst{2, 2, 2, 2, 2, 2};
  const auto ip_src = net::Ipv4Addr::from_octets(10, 0, 0, 1);
  const auto ip_dst = net::Ipv4Addr::from_octets(10, 0, 0, 2);
  // Warm the pools.
  for (int i = 0; i < 64; ++i) {
    auto p = net::Packet::make(
        net::build_udp_frame(src, dst, ip_src, ip_dst, 1, 2, payload));
  }
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < packets; ++i) {
    auto p = net::Packet::make(
        net::build_udp_frame(src, dst, ip_src, ip_dst, 1, 2, payload));
    // p drops here: the frame storage and the shared_ptr cell go back to
    // the thread's pools for the next iteration.
  }
  const double secs = seconds_since(start);
  benchutil::row({"core_packet_churn", benchutil::fmt(packets / secs / 1e6, 2),
                  benchutil::fmt(secs * 1e3, 1)});
  return packets / secs;
}

struct E2eResult {
  double wall_ms = 0;
  double events_per_sec = 0;
  std::uint64_t events = 0;
};

E2eResult bench_fig15_e2e(int blocks) {
  // The fig15 sweep: 4 workers, window 1, packet-level simulation on one
  // PFE, gradients/packet from 64 to 1024 — the same scenario the figure
  // bench reproduces, timed host-side.
  E2eResult r;
  const auto start = Clock::now();
  for (int grads_per_packet : {64, 128, 256, 512, 1024}) {
    trioml::TestbedConfig cfg;
    cfg.num_workers = 4;
    cfg.grads_per_packet = static_cast<std::uint16_t>(grads_per_packet);
    cfg.window = 1;
    trioml::Testbed tb(cfg);
    int done = 0;
    for (int w = 0; w < 4; ++w) {
      std::vector<std::uint32_t> g(
          static_cast<std::size_t>(grads_per_packet) * blocks, 1);
      tb.worker(w).start_allreduce(std::move(g), 1,
                                   [&](trioml::AllreduceResult) { ++done; });
    }
    tb.simulator().run();
    r.events += tb.simulator().events_executed();
    if (done != 4) std::printf("  WARNING: %d/4 workers finished\n", done);
  }
  const double secs = seconds_since(start);
  r.wall_ms = secs * 1e3;
  r.events_per_sec = static_cast<double>(r.events) / secs;
  benchutil::row({"fig15_e2e", benchutil::fmt(r.events_per_sec / 1e6, 2),
                  benchutil::fmt(r.wall_ms, 1)});
  return r;
}

struct ClusterPpsResult {
  double wall_ms = 0;
  double packets_per_sec = 0;
  double events_per_sec = 0;
  std::uint64_t packets = 0;
  std::uint64_t events = 0;
  int shards = 1;
};

ClusterPpsResult bench_cluster_pps(int blocks, int shards) {
  // A 4x8 cluster allreduce — the packets-per-wall-clock-second headline
  // for the parallel engine. `packets` counts every frame the simulation
  // pushed through a link (host uplinks/downlinks + fabric trunks), so
  // the metric survives event-granularity refactors.
  cluster::ClusterSpec spec;
  spec.racks = 4;
  spec.workers_per_rack = 8;
  spec.grads_per_packet = 1024;
  spec.fabric_link.gbps = 400;
  spec.fabric_link.latency = sim::Duration::micros(2);
  spec.shards = shards;
  cluster::Cluster cl(spec);
  const auto grads = cluster::patterned_gradients(
      spec.total_workers(), std::size_t(blocks) * spec.grads_per_packet);

  ClusterPpsResult r;
  r.shards = cl.num_shards();
  const auto start = Clock::now();
  const cluster::AllreduceRun run = cluster::run_allreduce(cl, grads);
  const double secs = seconds_since(start);
  if (run.finished != spec.total_workers()) {
    std::printf("  WARNING: %d/%d workers finished\n", run.finished,
                spec.total_workers());
  }
  for (int r2 = 0; r2 < spec.racks; ++r2) {
    r.packets += cl.fabric_link(r2).a_to_b().frames_sent() +
                 cl.fabric_link(r2).b_to_a().frames_sent();
  }
  for (int w = 0; w < spec.total_workers(); ++w) {
    r.packets += cl.link(w).a_to_b().frames_sent() +
                 cl.link(w).b_to_a().frames_sent();
  }
  r.events = cl.engine().events_executed();
  r.wall_ms = secs * 1e3;
  r.packets_per_sec = secs <= 0 ? 0 : double(r.packets) / secs;
  r.events_per_sec = secs <= 0 ? 0 : double(r.events) / secs;
  benchutil::row({"cluster_pps(s=" + std::to_string(r.shards) + ")",
                  benchutil::fmt(r.packets_per_sec / 1e6, 2),
                  benchutil::fmt(r.wall_ms, 1)});
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::string json_out = benchutil::parse_json_out_flag(argc, argv);

  benchutil::banner("Event-core microbenchmarks",
                    "simulator-host throughput (docs/performance.md)");
  benchutil::row({"benchmark", "Mitems/s", "wall(ms)"});

  const std::uint64_t n = quick ? 400'000 : 4'000'000;
  const double sched = bench_schedule_run(n);
  const double cancel = bench_cancel(n);
  const double packet = bench_packet_churn(quick ? 200'000 : 2'000'000);
  const E2eResult e2e = bench_fig15_e2e(quick ? 100 : 500);
  const int cluster_blocks = quick ? 8 : 32;
  const unsigned hw = std::thread::hardware_concurrency();
  const ClusterPpsResult pps1 = bench_cluster_pps(cluster_blocks, 1);
  const ClusterPpsResult ppsN =
      bench_cluster_pps(cluster_blocks, hw > 0 ? int(hw) : 1);

  if (!json_out.empty()) {
    benchutil::JsonSeries series;
    series.string("metric", "core_schedule_run")
        .number("items_per_sec", sched)
        .end_row();
    series.string("metric", "core_cancel")
        .number("items_per_sec", cancel)
        .end_row();
    series.string("metric", "core_packet_churn")
        .number("items_per_sec", packet)
        .end_row();
    series.string("metric", "fig15_e2e");
    benchutil::perf_fields(series, e2e.wall_ms, e2e.events).end_row();
    for (const ClusterPpsResult* r : {&pps1, &ppsN}) {
      series.string("metric", "cluster_pps")
          .number("shards", std::uint64_t(r->shards));
      benchutil::perf_fields(series, r->wall_ms, r->events)
          .number("packets", r->packets)
          .number("packets_per_sec", r->packets_per_sec)
          .end_row();
    }
    if (series.write_file(json_out)) {
      std::printf("\nwrote %s\n", json_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}
