// Figure 12: time-to-accuracy for ResNet50 / DenseNet161 / VGG11 at
// straggling probability p = 16%, Trio-ML vs SwitchML.
//
// Paper result: Trio-ML reaches the target top-5 validation accuracy
// 1.56x / 1.56x / 1.60x faster than SwitchML.
#include "bench_util.hpp"
#include "mltrain/model.hpp"
#include "mltrain/trainer.hpp"

using namespace mltrain;

int main() {
  benchutil::banner("Figure 12: time-to-accuracy at p = 16%",
                    "paper Fig 12 (a)-(c): speedups 1.56x / 1.56x / 1.60x");

  TrainConfig cfg;
  cfg.straggle_probability = 0.16;

  for (const auto& model : model_zoo()) {
    Trainer trio(model, Backend::kTrioML, cfg);
    Trainer sml(model, Backend::kSwitchML, cfg);
    const double max_minutes = 2500;
    const auto r_trio = trio.train_to_accuracy(model.target_acc, max_minutes);
    const auto r_sml = sml.train_to_accuracy(model.target_acc, max_minutes);

    std::printf("%s (target top-5 accuracy %.0f%%)\n", model.name.c_str(),
                model.target_acc);
    benchutil::row({"  system", "time-to-acc", "iterations", "degraded"}, 16);
    benchutil::row({"  Trio-ML",
                    benchutil::fmt(r_trio.time_to_target_minutes, 1) + " min",
                    std::to_string(r_trio.iterations),
                    benchutil::fmt(100 * r_trio.degraded_fraction, 1) + "%"},
                   16);
    benchutil::row({"  SwitchML",
                    benchutil::fmt(r_sml.time_to_target_minutes, 1) + " min",
                    std::to_string(r_sml.iterations),
                    benchutil::fmt(100 * r_sml.degraded_fraction, 1) + "%"},
                   16);
    const double speedup =
        r_sml.time_to_target_minutes / r_trio.time_to_target_minutes;
    std::printf("  Trio-ML speedup: %.2fx   (paper: %s)\n\n",
                speedup,
                model.name == "VGG11" ? "1.60x" : "1.56x");

    // Accuracy-vs-time curve samples (the plotted series), decimated.
    std::printf("  accuracy curve (minutes: Trio-ML / SwitchML %%):\n");
    const auto sample = [](const TrainResult& r, double minute) {
      double acc = 0;
      for (const auto& [t, a] : r.curve) {
        if (t <= minute) acc = a;
      }
      return acc;
    };
    const double end = r_sml.time_to_target_minutes;
    for (int i = 1; i <= 8; ++i) {
      const double t = end * i / 8;
      std::printf("    %7.1f min: %5.1f / %5.1f\n", t, sample(r_trio, t),
                  sample(r_sml, t));
    }
    std::printf("\n");
  }
  return 0;
}
