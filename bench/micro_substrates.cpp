// google-benchmark microbenchmarks of the substrates, including the
// ablations called out in DESIGN.md:
//   * RMW-offload vs conventional line-ownership access (§2.3 argument);
//   * single- vs multi-thread hash-table scanning (§5's 1/N partitioning);
//   * event-queue, SMS, hash, packet parse and Microcode dispatch costs
//     (simulator-host performance, i.e. how fast the simulation runs).
#include <benchmark/benchmark.h>

#include "microcode/compiler.hpp"
#include "microcode/interpreter.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "trio/hash_table.hpp"
#include "trio/router.hpp"
#include "trio/sms.hpp"
#include "trioml/testbed.hpp"
#include "trioml/wire_format.hpp"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(sim::Duration(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueScheduleRunCapture(benchmark::State& state) {
  // The simulator's real closures carry 24-88 byte captures (link
  // delivery: this + peer + port + PacketPtr ~= 40 B), which std::function
  // heap-allocated on every schedule. Steady-state: one simulator, the
  // slot table and heap are warm.
  sim::Simulator sim;
  std::uint64_t sink = 0;
  void* peer = &sim;
  const auto work = [&sink, peer, port = 3, a = 1ull, b = 2ull, c = 3ull] {
    sink += a + b + c + static_cast<std::uint64_t>(port);
  };
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(sim::Duration(i % 17), work);
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRunCapture);

void BM_EventQueueCancel(benchmark::State& state) {
  // The timer-thread / retransmit pattern: arm, cancel before firing,
  // re-arm. The indexed heap removes cancelled entries immediately
  // instead of tombstoning them through the pop path.
  sim::Simulator sim;
  std::uint64_t sink = 0;
  std::vector<sim::EventId> ids(1000);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.schedule_in(sim::Duration(1000 + i % 13), [&sink] { ++sink; });
    }
    for (int i = 0; i < 1000; ++i) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < 500; ++i) {
      sim.schedule_in(sim::Duration(i % 7), [&sink] { ++sink; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancel);

void BM_PacketMakeRecycle(benchmark::State& state) {
  // Steady-state packet churn: frame storage and the shared_ptr cell come
  // from the thread-local pools (net/buffer_pool.hpp), so the allocator
  // is out of the loop.
  const std::vector<std::uint8_t> payload(1024, 0xab);
  for (auto _ : state) {
    auto p = net::Packet::make(net::build_udp_frame(
        {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
        net::Ipv4Addr::from_octets(10, 0, 0, 1),
        net::Ipv4Addr::from_octets(10, 0, 0, 2), 1, 2, payload));
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketMakeRecycle);

void BM_SmsAddVec32(benchmark::State& state) {
  sim::Simulator sim;
  trio::SharedMemorySystem sms(sim, trio::Calibration{});
  trio::XtxnRequest add;
  add.op = trio::XtxnOp::kAddVec32;
  add.data.assign(64, 1);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    add.addr = addr;
    addr = (addr + 64) % (1 << 20);
    sms.issue(add, {});
  }
  state.SetItemsProcessed(state.iterations() * 16);  // adds per request
}
BENCHMARK(BM_SmsAddVec32);

void BM_SmsRmwVsLineOwnership(benchmark::State& state) {
  // arg 0: Trio RMW engines; arg 1: conventional line ownership. The
  // *simulated* completion time per op is reported as a counter.
  sim::Simulator sim;
  trio::SharedMemorySystem sms(sim, trio::Calibration{});
  sms.set_line_ownership_mode(state.range(0) == 1);
  trio::XtxnRequest add;
  add.op = trio::XtxnOp::kAddVec32;
  add.addr = 0;  // all on one bank: maximum contention
  add.data.assign(64, 1);
  sim::Time last;
  std::uint64_t n = 0;
  for (auto _ : state) {
    last = sms.issue(add, {});
    ++n;
  }
  state.counters["sim_ns_per_op"] =
      static_cast<double>(last.ns()) / static_cast<double>(n);
}
BENCHMARK(BM_SmsRmwVsLineOwnership)->Arg(0)->Arg(1);

void BM_HashTableLookup(benchmark::State& state) {
  sim::Simulator sim;
  trio::HwHashTable table(sim, trio::Calibration{}, 1 << 14);
  for (std::uint64_t k = 0; k < 10'000; ++k) table.insert(k, k);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(k));
    k = (k + 1) % 10'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableLookup);

void BM_HashScanPartitioned(benchmark::State& state) {
  // The §5 ablation: scanning a big table in 1 partition vs N. The work
  // per *thread* shrinks by N; total work stays the same.
  const auto parts = static_cast<std::uint32_t>(state.range(0));
  sim::Simulator sim;
  trio::HwHashTable table(sim, trio::Calibration{}, 1 << 14);
  for (std::uint64_t k = 0; k < 50'000; ++k) table.insert(k, k);
  for (auto _ : state) {
    for (std::uint32_t p = 0; p < parts; ++p) {
      benchmark::DoNotOptimize(table.scan_partition(p, parts, 1 << 20));
    }
  }
  state.counters["buckets_per_thread"] =
      static_cast<double>(table.partition_buckets(parts));
}
BENCHMARK(BM_HashScanPartitioned)->Arg(1)->Arg(10)->Arg(100);

void BM_PacketParse(benchmark::State& state) {
  std::vector<std::uint32_t> grads(256, 7);
  trioml::TrioMlHeader hdr;
  hdr.job_id = 1;
  auto frame = trioml::build_aggregation_frame(
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
      net::Ipv4Addr::from_octets(10, 0, 0, 1),
      net::Ipv4Addr::from_octets(10, 0, 0, 254), 20000, hdr, grads);
  for (auto _ : state) {
    const auto eth = net::EthernetHeader::parse(frame, 0);
    const auto ip =
        net::Ipv4Header::parse(frame, net::UdpFrameLayout::kIpOff);
    const auto udp =
        net::UdpHeader::parse(frame, net::UdpFrameLayout::kUdpOff);
    const auto ml = trioml::TrioMlHeader::parse(frame, trioml::kTrioMlHdrOff);
    benchmark::DoNotOptimize(eth);
    benchmark::DoNotOptimize(ip);
    benchmark::DoNotOptimize(udp);
    benchmark::DoNotOptimize(ml);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketParse);

void BM_MicrocodeFilterProgram(benchmark::State& state) {
  // End-to-end simulated cost of the §3.2 filter program per packet.
  static const char* kSrc = R"(
    struct ether_t { dmac : 48; smac : 48; etype : 16; };
    struct ipv4_t { ver : 4; ihl : 4; tos : 8; len : 16; };
    virtual const DROP_CNT_BASE = 64;
    memory ether_t *ether_ptr = 0;
    process_ether:
    begin
      ir0 = 0;
      if (ether_ptr->etype == 0x0800) { goto process_ip; }
      goto count_dropped;
    end
    process_ip:
    begin
      const ipv4_t *ipv4_addr = ether_ptr + sizeof(ether_t);
      ir0 = 1;
      if (ipv4_addr->ver == 4 && ipv4_addr->ihl == 5) { goto fwd; }
      goto count_dropped;
    end
    count_dropped:
    begin
      const : addr = DROP_CNT_BASE + ir0 * 2;
      CounterIncPhys(addr, r_work.pkt_len);
      goto drop;
    end
    fwd:
    begin
      Forward(0);
      Exit();
    end
    drop:
    begin
      Drop();
    end
  )";
  auto program = microcode::compile(kSrc);
  std::vector<std::uint8_t> payload(64, 0);
  auto frame = net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                    net::Ipv4Addr::from_octets(10, 0, 0, 1),
                                    net::Ipv4Addr::from_octets(10, 0, 0, 2),
                                    1, 2, payload);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    trio::Router router(sim, trio::Calibration{}, 1, 2);
    router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
    router.attach_port_sink(1, [](net::PacketPtr) {});
    router.pfe(0).set_program_factory(
        microcode::make_program_factory(program));
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) {
      router.receive(net::Packet::make(frame), 0);
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MicrocodeFilterProgram);

void BM_CompileMicrocode(benchmark::State& state) {
  static const char* kSrc = R"(
    struct h_t { a : 8; b : 8; };
    memory h_t *p = 0;
    main:
    begin
      ir0 = p->a;
      if (ir0 == 1) { goto other; }
      Exit();
    end
    other:
    begin
      ir1 = p->b;
      Exit();
    end
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(microcode::compile(kSrc));
  }
}
BENCHMARK(BM_CompileMicrocode);

void BM_TelemetryCounterInc(benchmark::State& state) {
  // The zero-overhead-when-disabled claim (docs/telemetry.md): a handle
  // from a disabled registry is a null pointer, so the instrumented hot
  // path pays one perfectly-predicted branch and touches no memory. The
  // enabled path is a pointer-chase + add. Compare Arg(0) (disabled)
  // against Arg(1) (enabled): the disabled row must not be slower.
  const bool enabled = state.range(0) == 1;
  telemetry::Registry registry(enabled);
  telemetry::Counter ctr = registry.counter("bench.hot_counter");
  telemetry::Histogram hist = registry.histogram("bench.hot_hist");
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      ctr.inc();
      hist.record(i);
    }
  }
  benchmark::DoNotOptimize(registry.counter_value("bench.hot_counter"));
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_TelemetryCounterInc)->Arg(0)->Arg(1);

void BM_TrioMlHeadVsTailSplit(benchmark::State& state) {
  // Ablation (DESIGN.md): the head/tail split. 32-gradient packets fit
  // entirely in the 192-byte head (zero tail XTXNs); 1024-gradient
  // packets stream ~97% of their gradients through the 64-byte tail-read
  // loop. The counter reports *simulated* time per gradient for each.
  const int grads_per_packet = static_cast<int>(state.range(0));
  double sim_ns_per_grad = 0;
  std::uint64_t tail_bytes = 0;
  for (auto _ : state) {
    trioml::TestbedConfig cfg;
    cfg.num_workers = 2;
    cfg.grads_per_packet = static_cast<std::uint16_t>(grads_per_packet);
    cfg.window = 1;
    cfg.slab_pool = 64;
    trioml::Testbed tb(cfg);
    const std::size_t blocks = 64;
    for (int w = 0; w < 2; ++w) {
      std::vector<std::uint32_t> g(
          static_cast<std::size_t>(grads_per_packet) * blocks, 1);
      tb.worker(w).start_allreduce(std::move(g), 1,
                                   [](trioml::AllreduceResult) {});
    }
    tb.simulator().run();
    sim_ns_per_grad =
        tb.app(0).stats().packet_latency_us.mean() * 1e3 / grads_per_packet;
    tail_bytes = tb.router().pfe(0).mqss().tail_bytes_read();
  }
  state.counters["sim_ns_per_grad"] = sim_ns_per_grad;
  state.counters["tail_bytes_read"] = static_cast<double>(tail_bytes);
}
BENCHMARK(BM_TrioMlHeadVsTailSplit)->Arg(32)->Arg(1024)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
