// In-network telemetry (paper §7, "Trio for in-network telemetry").
//
// Instead of sampling one packet in tens of thousands, the PPEs track
// EVERY flow in the hardware hash table + shared-memory counters, and
// timer threads periodically sweep the table to export per-flow summaries
// and evict idle flows (the same REF-flag aging used for straggler
// detection). The example detects heavy hitters in a synthetic mix.
//
//   $ ./telemetry
#include <algorithm>
#include <cstdio>
#include <map>

#include "sim/random.hpp"
#include "trio/hash.hpp"
#include "trio/router.hpp"

namespace {

/// Telemetry state shared between datapath threads and export threads.
struct TelemetryState {
  std::uint64_t counter_base = 0;     // per-flow Packet/Byte counters
  std::uint32_t next_slot = 0;        // bump allocator for counter slots
  std::uint32_t max_flows = 4096;
  // Control-plane view of exported summaries: flow key -> (packets, bytes).
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> exported;
  std::uint64_t flows_evicted = 0;
  std::uint64_t table_full_drops = 0;
};

/// Per-packet telemetry program: flow lookup -> counter update; unknown
/// flows allocate a counter slot and insert a record.
class TelemetryProgram : public trio::PpeProgram {
 public:
  TelemetryProgram(TelemetryState& state, trio::Router& router)
      : state_(state), router_(router) {}

  trio::Action step(trio::ThreadContext& ctx) override {
    switch (stage_) {
      case 0: {  // parse + flow hash + lookup
        const auto ip =
            net::Ipv4Header::parse(ctx.lmem, net::UdpFrameLayout::kIpOff);
        flow_ = trio::hash_pair(ip.src.value(), ip.dst.value());
        stage_ = 1;
        trio::ActSyncXtxn lu;
        lu.req.op = trio::XtxnOp::kHashLookup;
        lu.req.arg0 = flow_;
        lu.instructions = 14;
        return lu;
      }
      case 1: {
        if (ctx.reply.ok) {
          slot_addr_ = ctx.reply.value;
          stage_ = 3;
          return count(ctx);
        }
        // New flow: allocate a counter slot and insert the record.
        if (state_.next_slot >= state_.max_flows) {
          ++state_.table_full_drops;
          stage_ = 4;
          return trio::ActExit{2};
        }
        slot_addr_ = state_.counter_base + std::uint64_t(state_.next_slot++) * 16;
        stage_ = 2;
        trio::ActSyncXtxn ins;
        ins.req.op = trio::XtxnOp::kHashInsert;
        ins.req.arg0 = flow_;
        ins.req.arg1 = slot_addr_;
        ins.instructions = 6;
        return ins;
      }
      case 2:
        // Insert raced? Either way the slot is usable for this packet.
        stage_ = 3;
        return count(ctx);
      case 3: {
        // Counter updated; forward normally via the default route.
        stage_ = 4;
        const auto nh = router_.forwarding().lookup(
            net::Ipv4Header::parse(ctx.lmem, net::UdpFrameLayout::kIpOff).dst);
        if (!nh) return trio::ActExit{2};
        return trio::ActEmitPacket{ctx.packet, *nh, 4};
      }
      default:
        return trio::ActExit{1};
    }
  }

 private:
  trio::Action count(trio::ThreadContext& ctx) {
    trio::ActAsyncXtxn inc;
    inc.req.op = trio::XtxnOp::kCounterInc;
    inc.req.addr = slot_addr_;
    inc.req.arg0 = ctx.packet->size();
    inc.instructions = 2;
    return inc;
  }

  TelemetryState& state_;
  trio::Router& router_;
  int stage_ = 0;
  std::uint64_t flow_ = 0;
  std::uint64_t slot_addr_ = 0;
};

/// Timer-thread program: scans one partition, exports aged flows'
/// counters to the control plane and deletes their records.
class ExportProgram : public trio::PpeProgram {
 public:
  ExportProgram(TelemetryState& state, trio::Pfe& pfe, std::uint32_t part,
                std::uint32_t parts)
      : state_(state), pfe_(pfe), part_(part), parts_(parts) {}

  trio::Action step(trio::ThreadContext& ctx) override {
    switch (stage_) {
      case 0: {
        stage_ = 1;
        trio::ActSyncXtxn scan;
        scan.req.op = trio::XtxnOp::kHashScanStep;
        scan.req.arg0 = std::uint64_t(parts_) << 32 | part_;
        scan.req.arg1 = 64;
        scan.instructions = 4;
        return scan;
      }
      case 1: {
        if (!decoded_) {
          decoded_ = true;
          for (std::size_t off = 0; off + 8 <= ctx.reply.data.size();
               off += 8) {
            std::uint64_t k = 0;
            for (int i = 7; i >= 0; --i) {
              k = k << 8 | ctx.reply.data[off + static_cast<std::size_t>(i)];
            }
            aged_.push_back(k);
          }
        }
        if (next_ >= aged_.size()) return trio::ActExit{2};
        // Export = read the counter pair, record it, delete the flow.
        key_ = aged_[next_++];
        const auto slot = pfe_.hash_table().lookup(key_);
        if (slot) {
          auto& sms = pfe_.sms();
          state_.exported[key_] = {sms.peek_u64(*slot),
                                   sms.peek_u64(*slot + 8)};
          ++state_.flows_evicted;
        }
        stage_ = 2;
        trio::ActSyncXtxn del;
        del.req.op = trio::XtxnOp::kHashDelete;
        del.req.arg0 = key_;
        del.instructions = 4;
        return del;
      }
      case 2:
        stage_ = 1;
        return step(ctx);
      default:
        return trio::ActExit{1};
    }
  }

 private:
  TelemetryState& state_;
  trio::Pfe& pfe_;
  std::uint32_t part_;
  std::uint32_t parts_;
  int stage_ = 0;
  bool decoded_ = false;
  std::vector<std::uint64_t> aged_;
  std::size_t next_ = 0;
  std::uint64_t key_ = 0;
};

}  // namespace

int main() {
  std::printf("Trio in-network telemetry (paper §7)\n");
  std::printf("====================================\n\n");

  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 4);
  TelemetryState state;
  state.counter_base = router.pfe(0).sms().alloc_sram(4096 * 16, 64);

  const auto nh = router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
  router.forwarding().add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh);
  router.attach_port_sink(1, [](net::PacketPtr) {});

  router.pfe(0).set_program_factory(
      [&](const net::Packet&) -> std::unique_ptr<trio::PpeProgram> {
        return std::make_unique<TelemetryProgram>(state, router);
      });

  // Timer threads sweep the table every 2 ms in 20 partitions.
  router.pfe(0).timers().start(
      20, sim::Duration::millis(2),
      [&](std::uint32_t i) -> std::unique_ptr<trio::PpeProgram> {
        return std::make_unique<ExportProgram>(state, router.pfe(0), i, 20);
      });

  // Traffic: 200 mice flows plus 3 elephants.
  sim::Rng rng(7);
  auto send = [&](std::uint32_t src, std::uint32_t dst, std::size_t bytes) {
    std::vector<std::uint8_t> payload(bytes, 0);
    auto frame = net::build_udp_frame({2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2},
                                      net::Ipv4Addr(src), net::Ipv4Addr(dst),
                                      1000, 2000, payload);
    router.receive(net::Packet::make(std::move(frame)), 0);
  };
  const std::uint32_t kElephants[3] = {0x0a000001, 0x0a000002, 0x0a000003};
  for (int burst = 0; burst < 50; ++burst) {
    for (std::uint32_t e : kElephants) {
      for (int i = 0; i < 40; ++i) send(e, 0xc0a80001, 1400);
    }
    for (int m = 0; m < 200; ++m) {
      if (rng.bernoulli(0.2)) {
        send(0x0a010000 + static_cast<std::uint32_t>(m), 0xc0a80001, 120);
      }
    }
    sim.run_until(sim.now() + sim::Duration::micros(200));
  }
  // Let the flows idle so the export threads sweep them out.
  sim.run_until(sim.now() + sim::Duration::millis(10));
  router.pfe(0).timers().stop();
  sim.run();

  std::printf("tracked and exported %zu flows (%llu evictions), "
              "table-full drops: %llu\n\n",
              state.exported.size(),
              static_cast<unsigned long long>(state.flows_evicted),
              static_cast<unsigned long long>(state.table_full_drops));

  // Rank by bytes: the elephants must surface at the top.
  std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>>
      flows(state.exported.begin(), state.exported.end());
  std::sort(flows.begin(), flows.end(), [](const auto& a, const auto& b) {
    return a.second.second > b.second.second;
  });
  std::printf("top flows by bytes:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, flows.size()); ++i) {
    std::printf("  flow %016llx: %6llu packets %9llu bytes%s\n",
                static_cast<unsigned long long>(flows[i].first),
                static_cast<unsigned long long>(flows[i].second.first),
                static_cast<unsigned long long>(flows[i].second.second),
                i < 3 ? "   <- elephant" : "");
  }
  std::printf("\nevery packet was accounted — no sampling — because the\n"
              "RMW engines update counters at line rate near the memory.\n");
  return 0;
}
