// In-network straggler mitigation with Trio timer threads (paper §5).
//
// Six workers aggregate through the router; one of them repeatedly stalls
// (the Slow Worker Pattern). With straggler detection OFF, every worker
// is held hostage by the slowest one — the SwitchML failure mode. With
// N = 100 timer threads scanning the aggregation table, blocks touched
// only by the healthy workers age out within [timeout, 2*timeout] and a
// *degraded* partial result unblocks everyone.
//
//   $ ./straggler_mitigation
#include <cstdio>

#include "trioml/testbed.hpp"

using namespace trioml;

namespace {

struct RoundResult {
  double duration_ms;        // last worker (incl. the straggler itself)
  double healthy_done_ms;    // last of the five healthy workers
  int finished;
  std::uint64_t degraded_blocks;
};

/// One allreduce round in which worker 5 sleeps `stall` mid-stream.
RoundResult run_round(Testbed& tb, sim::Duration stall, std::uint16_t gen,
                      sim::Duration watchdog) {
  const std::size_t grads = 1024 * 512;  // 512 blocks
  RoundResult out{0, 0, 0, 0};
  const sim::Time start = tb.simulator().now();
  sim::Time last_finish = start;
  sim::Time healthy_finish = start;
  for (int w = 0; w < tb.num_workers(); ++w) {
    std::vector<std::uint32_t> g(grads, 1);
    tb.worker(w).start_allreduce(std::move(g), gen,
                                 [&, w](AllreduceResult r) {
      ++out.finished;
      if (w == 0) out.degraded_blocks = r.degraded_blocks;
      if (r.finish > last_finish) last_finish = r.finish;
      if (w != 5 && r.finish > healthy_finish) healthy_finish = r.finish;
    });
  }
  // The straggler: stalls shortly into its stream, with most blocks
  // still unsent.
  tb.simulator().run_until(tb.simulator().now() + sim::Duration::micros(50));
  tb.worker(5).stall_for(stall);
  tb.simulator().run_until(start + watchdog);
  out.duration_ms = (last_finish - start).ms();
  out.healthy_done_ms = (healthy_finish - start).ms();
  return out;
}

}  // namespace

int main() {
  std::printf("Trio in-network straggler mitigation (paper §5)\n");
  std::printf("===============================================\n\n");

  const auto stall = sim::Duration::millis(120);
  const auto watchdog = sim::Duration::millis(400);

  std::printf("scenario: 6 workers allreduce 512 blocks; worker 5 stalls "
              "for %s mid-stream\n\n", stall.to_string().c_str());

  {
    std::printf("1) without in-network mitigation (PISA-style behaviour):\n");
    TestbedConfig cfg;
    cfg.num_workers = 6;
    cfg.grads_per_packet = 1024;
    cfg.window = 256;
    Testbed tb(cfg);
    // No timer threads started.
    const auto r = run_round(tb, stall, 1, watchdog);
    std::printf("   %d/6 workers finished, round took %.1f ms — everyone"
                " waited out the %.0f ms stall\n",
                r.finished, r.duration_ms, stall.ms());
  }

  for (int timeout_ms : {5, 10, 20}) {
    std::printf("\n2) with %d ms timeout, N = 100 timer threads:\n",
                timeout_ms);
    TestbedConfig cfg;
    cfg.num_workers = 6;
    cfg.grads_per_packet = 1024;
    cfg.window = 256;
    Testbed tb(cfg);
    tb.start_straggler_detection(100, sim::Duration::millis(timeout_ms));
    const auto r = run_round(tb, stall, 1, watchdog);
    const auto& stats = tb.app(0).stats();
    std::printf("   healthy workers done at %.1f ms (vs %.0f ms without\n"
                "   mitigation); straggler itself done at %.1f ms; %llu\n"
                "   blocks aged out; worker 0 saw %llu degraded results\n",
                r.healthy_done_ms, stall.ms(), r.duration_ms,
                static_cast<unsigned long long>(stats.blocks_aged),
                static_cast<unsigned long long>(r.degraded_blocks));
    std::printf("   degraded results carry degraded=1 and src_cnt=5, so "
                "hosts rescale by the partial contributor count (§5)\n");
  }

  std::printf("\nthe timer threads are ordinary PPE threads launched by the\n"
              "chip's timers — no PPE is reserved, and each scans 1/N of\n"
              "the aggregation hash table using the REF-flag aging trick.\n");
  return 0;
}
