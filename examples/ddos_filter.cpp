// In-network DDoS mitigation (paper §7, "Trio for in-network security").
//
// Every source prefix gets a policer record in shared memory; the
// per-packet program charges each packet against its source's token
// bucket through the read-modify-write engines and drops non-conforming
// traffic, counting drops per source in Packet/Byte counters. A volumetric
// attacker is throttled to its policed rate while legitimate flows pass
// untouched — entirely in the dataplane, no control-plane round trips.
//
//   $ ./ddos_filter
#include <cstdio>

#include "trio/hash.hpp"
#include "trio/router.hpp"

namespace {

struct SecurityState {
  std::uint64_t policer_base = 0;  // one 32 B policer per /24
  std::uint64_t drop_counter_base = 0;
  static constexpr std::uint32_t kPrefixes = 256;
  std::uint64_t policer_addr(std::uint32_t src) const {
    return policer_base + (src >> 8 & 0xff) * 32;  // /24 bucket
  }
  std::uint64_t drop_counter_addr(std::uint32_t src) const {
    return drop_counter_base + (src >> 8 & 0xff) * 16;
  }
};

class DdosFilterProgram : public trio::PpeProgram {
 public:
  DdosFilterProgram(SecurityState& state, trio::Router& router)
      : state_(state), router_(router) {}

  trio::Action step(trio::ThreadContext& ctx) override {
    switch (stage_) {
      case 0: {
        const auto ip =
            net::Ipv4Header::parse(ctx.lmem, net::UdpFrameLayout::kIpOff);
        src_ = ip.src.value();
        dst_ = ip.dst;
        stage_ = 1;
        trio::ActSyncXtxn pol;
        pol.req.op = trio::XtxnOp::kPolicerCheck;
        pol.req.addr = state_.policer_addr(src_);
        pol.req.arg0 = ctx.packet->size();
        pol.instructions = 12;
        return pol;
      }
      case 1: {
        stage_ = 2;
        if (ctx.reply.value == 0) {
          // Exceeded the source's rate: drop and count.
          trio::ActAsyncXtxn cnt;
          cnt.req.op = trio::XtxnOp::kCounterInc;
          cnt.req.addr = state_.drop_counter_addr(src_);
          cnt.req.arg0 = ctx.packet->size();
          cnt.instructions = 3;
          dropped_ = true;
          return cnt;
        }
        const auto nh = router_.forwarding().lookup(dst_);
        if (!nh) return trio::ActExit{2};
        return trio::ActEmitPacket{ctx.packet, *nh, 4};
      }
      default:
        return trio::ActExit{dropped_ ? 2u : 1u};
    }
  }

 private:
  SecurityState& state_;
  trio::Router& router_;
  int stage_ = 0;
  std::uint32_t src_ = 0;
  net::Ipv4Addr dst_;
  bool dropped_ = false;
};

}  // namespace

int main() {
  std::printf("Trio in-network DDoS mitigation (paper §7)\n");
  std::printf("==========================================\n\n");

  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 4);
  auto& sms = router.pfe(0).sms();

  SecurityState state;
  state.policer_base = sms.alloc_sram(SecurityState::kPrefixes * 32, 64);
  state.drop_counter_base =
      sms.alloc_sram(SecurityState::kPrefixes * 16, 64);

  // Every /24 is policed to 20 Mbit/s with a 30 KB burst.
  trio::PolicerConfig pc;
  pc.rate_bytes_per_sec = 20'000'000 / 8;
  pc.burst_bytes = 30'000;
  for (std::uint32_t p = 0; p < SecurityState::kPrefixes; ++p) {
    sms.configure_policer(state.policer_base + p * 32, pc);
  }

  const auto nh = router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
  router.forwarding().add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh);
  std::uint64_t delivered_attack = 0, delivered_legit = 0;
  router.attach_port_sink(1, [&](net::PacketPtr pkt) {
    const auto ip =
        net::Ipv4Header::parse(pkt->frame(), net::UdpFrameLayout::kIpOff);
    if ((ip.src.value() >> 8 & 0xff) == 66) {
      ++delivered_attack;
    } else {
      ++delivered_legit;
    }
  });
  router.pfe(0).set_program_factory(
      [&](const net::Packet&) -> std::unique_ptr<trio::PpeProgram> {
        return std::make_unique<DdosFilterProgram>(state, router);
      });

  auto send = [&](std::uint32_t src, std::size_t bytes) {
    std::vector<std::uint8_t> payload(bytes, 0);
    auto frame = net::build_udp_frame({2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2},
                                      net::Ipv4Addr(src),
                                      net::Ipv4Addr::from_string("10.9.9.9"),
                                      1000, 2000, payload);
    router.receive(net::Packet::make(std::move(frame)), 0);
  };

  // 100 ms of traffic: the attacker (10.0.66.0/24) floods 1 Gbit/s;
  // twenty legitimate /24s send ~5 Mbit/s each.
  std::uint64_t sent_attack = 0, sent_legit = 0;
  for (int ms = 0; ms < 100; ++ms) {
    for (int i = 0; i < 89; ++i) {  // ~1 Gbps of 1400 B packets
      send(0x0a004200u + static_cast<std::uint32_t>(i % 250), 1400);
      ++sent_attack;
    }
    for (std::uint32_t s = 1; s <= 20; ++s) {
      send(0x0a000000u + (s << 8) + 1, 600);  // ~4.8 Mbps each
      ++sent_legit;
    }
    sim.run_until(sim.now() + sim::Duration::millis(1));
  }
  sim.run();

  const std::uint64_t attack_drops = sms.peek_u64(state.drop_counter_addr(0x0a004201));
  std::printf("attacker  (10.0.66.0/24): sent %llu, delivered %llu "
              "(%.1f%%), dropped %llu in the dataplane\n",
              static_cast<unsigned long long>(sent_attack),
              static_cast<unsigned long long>(delivered_attack),
              100.0 * delivered_attack / sent_attack,
              static_cast<unsigned long long>(attack_drops));
  std::printf("legit     (20 x /24):     sent %llu, delivered %llu "
              "(%.1f%%)\n",
              static_cast<unsigned long long>(sent_legit),
              static_cast<unsigned long long>(delivered_legit),
              100.0 * delivered_legit / sent_legit);

  const bool ok = delivered_legit == sent_legit &&
                  delivered_attack < sent_attack / 5;
  std::printf("\n%s\n",
              ok ? "OK: attack throttled to the policed rate; zero "
                   "legitimate loss"
                 : "MISMATCH: unexpected delivery counts");
  return ok ? 0 : 1;
}
