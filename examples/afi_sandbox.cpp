// Third-party programmability with the Advanced Forwarding Interface
// (paper §3.1): manage a section of the forwarding-path graph — add,
// remove and reorder operations for specific packets — without touching
// the router's Microcode image.
//
// Scenario: an operator delegates a sandbox for traffic from a tenant
// prefix. The tenant first installs accounting, then adds a policer in
// front of it during an incident, then reorders so accounting sees even
// the policed-away packets, and finally removes the policer.
//
//   $ ./afi_sandbox
#include <cstdio>

#include "trio/afi.hpp"
#include "trio/router.hpp"

namespace {

net::Buffer tenant_frame(std::size_t bytes = 600) {
  std::vector<std::uint8_t> payload(bytes, 0);
  return net::build_udp_frame({2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2},
                              net::Ipv4Addr::from_string("203.0.113.7"),
                              net::Ipv4Addr::from_string("10.7.7.7"), 5000,
                              5001, payload);
}

}  // namespace

int main() {
  std::printf("AFI sandbox: third-party forwarding-path programmability\n");
  std::printf("=========================================================\n\n");

  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 4);
  auto& sms = router.pfe(0).sms();

  const auto nh = router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
  router.forwarding().add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh);
  std::uint64_t delivered = 0;
  router.attach_port_sink(1, [&](net::PacketPtr) { ++delivered; });

  trio::afi::AfiHost host(router.pfe(0));
  trio::afi::Sandbox* sandbox = host.create_sandbox(
      "tenant-203.0.113.0/24", [](const net::Packet& pkt) {
        const auto ip = net::Ipv4Header::parse(pkt.frame(),
                                               net::UdpFrameLayout::kIpOff);
        return (ip.src.value() & 0xffffff00u) ==
               net::Ipv4Addr::from_string("203.0.113.0").value();
      });
  host.attach();

  auto run_burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      router.receive(net::Packet::make(tenant_frame()), 0);
    }
    sim.run();
  };

  // Phase 1: accounting only.
  const auto acct = sms.alloc_sram(16, 16);
  const auto acct_op = sandbox->add(trio::afi::CountOp{acct});
  run_burst(100);
  std::printf("phase 1 (count):              delivered %llu, counted %llu\n",
              (unsigned long long)delivered,
              (unsigned long long)sms.peek_u64(acct));

  // Phase 2: incident! insert a policer *before* the accounting node.
  const auto pol = sms.alloc_sram(32, 32);
  trio::PolicerConfig pc;
  pc.rate_bytes_per_sec = 10'000;  // trickle
  pc.burst_bytes = 650 * 10;       // ~10 frames
  sms.configure_policer(pol, pc);
  const auto pol_op =
      sandbox->insert_before(acct_op, trio::afi::PoliceOp{pol, 0});
  const auto delivered_before = delivered;
  run_burst(100);
  std::printf(
      "phase 2 (police->count):      delivered %llu more (dropped %llu), "
      "counted only %llu\n",
      (unsigned long long)(delivered - delivered_before),
      (unsigned long long)sandbox->drops(),
      (unsigned long long)sms.peek_u64(acct));

  // Phase 3: reorder so accounting runs first — visibility into the
  // attack traffic even when it is policed away.
  sandbox->reorder(acct_op, 0);
  const auto counted_before = sms.peek_u64(acct);
  run_burst(100);
  std::printf(
      "phase 3 (count->police):      counted all %llu new packets while "
      "still policing\n",
      (unsigned long long)(sms.peek_u64(acct) - counted_before));

  // Phase 4: incident over; remove the policer at runtime.
  sandbox->remove(pol_op);
  const auto delivered_before4 = delivered;
  run_burst(100);
  std::printf("phase 4 (policer removed):    delivered %llu/100 again\n",
              (unsigned long long)(delivered - delivered_before4));

  std::printf("\nsandbox totals: %llu packets, %llu drops — all managed at\n"
              "runtime through the AFI API, no image rebuild.\n",
              (unsigned long long)sandbox->packets(),
              (unsigned long long)sandbox->drops());
  return 0;
}
