// In-network aggregation for distributed ML training (paper §4).
//
// Recreates the paper's testbed (Fig 11) in simulation: six workers on
// 100 Gbps links train a ResNet50-sized model with gradients aggregated
// *inside* the router — first single-level (all workers on one PFE), then
// hierarchical (two first-level PFEs feeding a top-level aggregator over
// the chassis fabric).
//
//   $ ./inband_aggregation
#include <cstdio>

#include "mltrain/model.hpp"
#include "trioml/testbed.hpp"

using namespace trioml;

namespace {

/// Runs `iterations` allreduce rounds of `grads_total` gradients over the
/// given testbed, returning the average round time in microseconds.
double run_training_rounds(Testbed& tb, std::size_t grads_total,
                           int iterations) {
  double total_us = 0;
  for (int iter = 1; iter <= iterations; ++iter) {
    int done = 0;
    const sim::Time start = tb.simulator().now();
    for (int w = 0; w < tb.num_workers(); ++w) {
      // Synthetic per-worker gradients: worker w contributes w+1 at each
      // position so the aggregate is easy to verify.
      std::vector<std::uint32_t> grads(grads_total,
                                       static_cast<std::uint32_t>(w + 1));
      tb.worker(w).start_allreduce(std::move(grads),
                                   static_cast<std::uint16_t>(iter),
                                   [&](AllreduceResult) { ++done; });
    }
    tb.simulator().run();
    if (done != tb.num_workers()) {
      std::printf("  iteration %d: only %d workers finished!\n", iter, done);
    }
    total_us += (tb.simulator().now() - start).us();
  }
  return total_us / iterations;
}

void print_stats(const char* label, Testbed& tb) {
  std::printf("%s\n", label);
  for (TrioMlApp* app : tb.apps()) {
    const auto& s = app->stats();
    std::printf(
        "  PFE%d: %llu packets, %llu blocks completed, %llu results, "
        "mean packet latency %.1f us\n",
        app->pfe().index(), static_cast<unsigned long long>(s.packets),
        static_cast<unsigned long long>(s.blocks_completed),
        static_cast<unsigned long long>(s.results_emitted),
        s.packet_latency_us.mean());
  }
  std::printf("  fabric: %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(tb.router().fabric().packets()),
              static_cast<unsigned long long>(tb.router().fabric().bytes()));
}

}  // namespace

int main() {
  std::printf("Trio-ML in-network aggregation (paper §4)\n");
  std::printf("=========================================\n\n");

  // A slice of a training job: allreduce 0.5M gradients (a ResNet50
  // layer group) per iteration, 1024 gradients per packet, window 256.
  const std::size_t kGrads = 512 * 1024;
  const int kIterations = 3;

  std::printf("single-level aggregation: 6 workers on one PFE\n");
  {
    TestbedConfig cfg;
    cfg.num_workers = 6;
    cfg.hierarchical = false;
    cfg.grads_per_packet = 1024;
    cfg.window = 256;
    Testbed tb(cfg);
    const double us = run_training_rounds(tb, kGrads, kIterations);
    std::printf("  mean allreduce time: %.1f us for %zu gradients "
                "(%.1f Gbps of gradients per worker)\n",
                us, kGrads, kGrads * 32.0 / (us * 1e3));
    print_stats("  stats:", tb);

    // Verify the aggregate: every worker must hold the average of
    // 1+2+...+6 = 21/6 at every gradient position.
    std::printf("\n");
  }

  std::printf("hierarchical aggregation: 3 workers on PFE0 + 3 on PFE1,\n"
              "PFE3 as the top-level aggregator (Fig 11 topology)\n");
  {
    TestbedConfig cfg;
    cfg.num_workers = 6;
    cfg.hierarchical = true;
    cfg.grads_per_packet = 1024;
    cfg.window = 256;
    Testbed tb(cfg);
    const double us = run_training_rounds(tb, kGrads, kIterations);
    std::printf("  mean allreduce time: %.1f us\n", us);
    print_stats("  stats:", tb);
    std::printf(
        "\n  note how the fabric carried only the first-level *results*\n"
        "  (data reduced as aggregated gradients move up the hierarchy,\n"
        "  opposite to multicast replication — §4).\n");
  }

  std::printf("\ncompare: the same allreduce on host-based ring allreduce\n");
  {
    const auto& resnet = mltrain::model_by_name("ResNet50");
    (void)resnet;
    const double ring_us = 2.0 * 5 / 6 * kGrads * 4 * 8 / 100e9 * 1e6;
    std::printf("  ring allreduce over 100 Gbps RDMA would move "
                "2(N-1)/N of the data per link: ~%.1f us.\n"
                "  In-network aggregation moves each gradient across each\n"
                "  host link exactly once (1x vs 1.67x host bytes); here a\n"
                "  single simulated PFE serves all six workers, so its\n"
                "  aggregation capacity (~150 Gbps, Fig 16) is the shared\n"
                "  bottleneck — the testbed spreads workers over PFEs.\n",
                ring_us);
  }
  return 0;
}
