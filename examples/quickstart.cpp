// Quickstart: program a simulated Trio router with the paper's §3.2
// Microcode filter application and push traffic through it.
//
// The filter forwards IP packets without options and drops (and counts)
// everything else — the exact example the paper uses to introduce the
// Microcode language, compiled here by the TC-style compiler and executed
// on simulated PPE threads.
//
//   $ ./quickstart
#include <cstdio>

#include "microcode/compiler.hpp"
#include "microcode/interpreter.hpp"
#include "trio/router.hpp"

namespace {

const char* kFilterSource = R"(
// --- Packet header formats (paper §3.2) ------------------------------
struct ether_t {
  dmac : 48;
  smac : 48;
  etype : 16;
};

struct ipv4_t {
  ver : 4;
  ihl : 4;
  tos : 8;
  len : 16;
};

// --- Globals ----------------------------------------------------------
virtual const DROP_CNT_BASE = 64;  // Packet/Byte counter region (words)
virtual const FWD_NEXTHOP = 0;
memory ether_t *ether_ptr = 0;     // packet header starts at LMEM 0

// --- Instructions (one begin/end block = one VLIW instruction) --------
process_ether:
begin
  ir0 = 0;
  if (ether_ptr->etype == 0x0800) {
    goto process_ip;
  }
  goto count_dropped;
end

process_ip:
begin
  const ipv4_t *ipv4_addr = ether_ptr + sizeof(ether_t);
  ir0 = 1;
  if (ipv4_addr->ver == 4 && ipv4_addr->ihl == 5) {
    goto forward_packet;
  }
  goto count_dropped;
end

count_dropped:
begin
  const : addr = DROP_CNT_BASE + ir0 * 2;
  CounterIncPhys(addr, r_work.pkt_len);
  goto drop_packet;
end

forward_packet:
begin
  Forward(FWD_NEXTHOP);
  Exit();
end

drop_packet:
begin
  Drop();
end
)";

net::Buffer make_frame(std::uint16_t ether_type, std::uint8_t ihl) {
  std::vector<std::uint8_t> payload(100, 0xab);
  auto frame = net::build_udp_frame(
      {0x02, 0, 0, 0, 0, 1}, {0x02, 0, 0, 0, 0, 2},
      net::Ipv4Addr::from_string("192.168.1.10"),
      net::Ipv4Addr::from_string("192.168.2.20"), 5000, 5001, payload);
  frame.set_u16(12, ether_type);
  frame.set_u8(net::UdpFrameLayout::kIpOff,
               static_cast<std::uint8_t>(4 << 4 | ihl));
  return frame;
}

}  // namespace

int main() {
  std::printf("Trio quickstart: the paper's Microcode filter application\n");
  std::printf("==========================================================\n\n");

  // 1. Compile the Microcode program with the TC-style compiler. The
  //    compiler maps variables to thread registers / local memory and
  //    rejects instruction blocks that exceed the VLIW resource budget.
  auto program = microcode::compile(kFilterSource);
  std::printf("compiled %zu micro-instructions; LMEM used: %zu bytes\n",
              program->instruction_count(), program->lmem_used);
  for (const auto& block : program->module.blocks) {
    const auto& res = program->resources[program->labels.at(block.label)];
    std::printf("  %-16s reg reads %d, lmem reads %d, writes %d, ALU ops %d\n",
                block.label.c_str(), res.reg_reads, res.lmem_reads,
                res.writes, res.alu_ops);
  }

  // 2. Build a single-PFE router and install the program on its PPEs.
  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, /*pfes=*/1, /*ports=*/4);
  router.forwarding().add_nexthop(
      trio::NexthopUnicast{1, {0x02, 0, 0, 0, 0, 2}});
  router.pfe(0).set_program_factory(microcode::make_program_factory(program));

  int forwarded = 0;
  router.attach_port_sink(1, [&](net::PacketPtr) { ++forwarded; });

  // 3. Push a traffic mix through port 0.
  const int kEach = 1000;
  for (int i = 0; i < kEach; ++i) {
    router.receive(net::Packet::make(make_frame(0x0800, 5)), 0);  // clean IP
    router.receive(net::Packet::make(make_frame(0x0806, 5)), 0);  // ARP
    router.receive(net::Packet::make(make_frame(0x0800, 6)), 0);  // options
  }
  sim.run();

  // 4. Inspect the Packet/Byte counters the program maintained in the
  //    Shared Memory System.
  auto& sms = router.pfe(0).sms();
  const std::uint64_t non_ip_pkts = sms.peek_u64(64 * 8);
  const std::uint64_t non_ip_bytes = sms.peek_u64(64 * 8 + 8);
  const std::uint64_t opt_pkts = sms.peek_u64(66 * 8);
  const std::uint64_t opt_bytes = sms.peek_u64(66 * 8 + 8);

  std::printf("\nafter %d packets (simulated time %s):\n", 3 * kEach,
              sim.now().to_string().c_str());
  std::printf("  forwarded:            %d\n", forwarded);
  std::printf("  dropped non-IP:       %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(non_ip_pkts),
              static_cast<unsigned long long>(non_ip_bytes));
  std::printf("  dropped IP-options:   %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(opt_pkts),
              static_cast<unsigned long long>(opt_bytes));
  std::printf("  PPE instructions:     %llu\n",
              static_cast<unsigned long long>(
                  router.pfe(0).instructions_issued()));

  const bool ok = forwarded == kEach &&
                  non_ip_pkts == static_cast<std::uint64_t>(kEach) &&
                  opt_pkts == static_cast<std::uint64_t>(kEach);
  std::printf("\n%s\n", ok ? "OK: filter behaved exactly as §3.2 describes"
                           : "MISMATCH: unexpected counters");
  return ok ? 0 : 1;
}
