#include "trioml/host.hpp"

#include <algorithm>
#include <stdexcept>

namespace trioml {

TrioMlWorker::TrioMlWorker(sim::Simulator& simulator, Config config,
                           net::LinkEndpoint& tx)
    : sim_(simulator),
      config_(config),
      tx_(tx),
      rng_(config.rng_seed != 0
               ? config.rng_seed
               : 0x7f4a7c15ull + (std::uint64_t(config.src_id) << 8)) {
  if (config_.grads_per_packet == 0 ||
      config_.grads_per_packet > kMaxGradsPerPacket) {
    throw std::invalid_argument("TrioMlWorker: bad grads_per_packet");
  }
  if (config_.window == 0) {
    throw std::invalid_argument("TrioMlWorker: window must be >= 1");
  }
}

void TrioMlWorker::start_allreduce(std::vector<std::uint32_t> grads,
                                   std::uint16_t gen_id,
                                   std::function<void(AllreduceResult)> done) {
  if (done_) {
    throw std::logic_error("TrioMlWorker: allreduce already in progress");
  }
  if (crashed_) {
    throw std::logic_error("TrioMlWorker: host is crashed (restart() first)");
  }
  // New incarnation: any still-pending timer/pump event from a previous
  // allreduce (or a crashed one) now carries a stale epoch and no-ops.
  ++epoch_;
  pump_scheduled_ = false;
  grads_ = std::move(grads);
  gen_id_ = gen_id;
  done_ = std::move(done);
  num_blocks_ = static_cast<std::uint32_t>(
      (grads_.size() + config_.grads_per_packet - 1) /
      config_.grads_per_packet);
  next_block_ = 0;
  completed_blocks_ = 0;
  outstanding_.clear();
  exhausted_blocks_ = 0;
  give_up_armed_ = false;
  result_ = AllreduceResult{};
  result_.grads.assign(grads_.size(), 0.0f);
  result_.blocks = num_blocks_;
  result_.start = sim_.now();
  pump();
}

void TrioMlWorker::start_allreduce_float(
    const std::vector<float>& grads, std::uint16_t gen_id,
    std::function<void(AllreduceResult)> done) {
  std::vector<std::uint32_t> q(grads.size());
  for (std::size_t i = 0; i < grads.size(); ++i) {
    q[i] = static_cast<std::uint32_t>(quantize(grads[i]));
  }
  start_allreduce(std::move(q), gen_id, std::move(done));
}

void TrioMlWorker::stall_for(sim::Duration d) {
  const sim::Time until = sim_.now() + d;
  if (until > stalled_until_) stalled_until_ = until;
  if (done_ && !pump_scheduled_) {
    pump_scheduled_ = true;
    sim_.schedule_at(stalled_until_, [this, epoch = epoch_] {
      if (epoch != epoch_) return;  // belongs to a dead incarnation
      pump_scheduled_ = false;
      pump();
    });
  }
}

void TrioMlWorker::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crashes_;
  crash_ctr_.inc();
  for (auto& [block, out] : outstanding_) {
    sim_.cancel(out.retransmit_timer);
  }
  // Belt and braces: epoch bump invalidates any event that survived the
  // cancellation sweep (e.g. a pump armed by stall_for, which is not
  // tracked in outstanding_), so nothing can fire against freed block
  // state or against blocks a restarted incarnation re-creates under the
  // same ids.
  ++epoch_;
  pump_scheduled_ = false;
  stalled_until_ = sim_.now();  // the stall modelled the dead process
  sim_.cancel(give_up_timer_);
  give_up_armed_ = false;
  exhausted_blocks_ = 0;
  outstanding_.clear();
  grads_.clear();
  done_ = nullptr;  // the in-flight allreduce dies with the host
  num_blocks_ = next_block_ = completed_blocks_ = 0;
}

void TrioMlWorker::pump() {
  if (!done_ || crashed_) return;
  if (sim_.now() < stalled_until_) {
    if (!pump_scheduled_) {
      pump_scheduled_ = true;
      sim_.schedule_at(stalled_until_, [this, epoch = epoch_] {
        if (epoch != epoch_) return;
        pump_scheduled_ = false;
        pump();
      });
    }
    return;
  }
  while (next_block_ < num_blocks_ &&
         outstanding_.size() < config_.window) {
    send_block(next_block_++, /*is_retransmit=*/false);
  }
}

void TrioMlWorker::send_block(std::uint32_t block_id, bool is_retransmit) {
  if (crashed_) return;
  const std::size_t begin =
      std::size_t(block_id) * config_.grads_per_packet;
  const std::size_t count =
      std::min<std::size_t>(config_.grads_per_packet, grads_.size() - begin);

  TrioMlHeader hdr;
  hdr.job_id = config_.job_id;
  hdr.block_id = block_id;
  hdr.gen_id = gen_id_;
  hdr.src_id = config_.src_id;
  hdr.src_cnt = 1;  // a leaf worker contributes itself
  hdr.final_block = block_id + 1 == num_blocks_;

  net::Buffer frame = build_aggregation_frame(
      config_.mac, config_.agg_mac, config_.ip, config_.agg_ip,
      config_.udp_src_port, hdr,
      std::span<const std::uint32_t>(grads_.data() + begin, count));
  tx_.send(net::Packet::make(std::move(frame)));
  ++packets_sent_;
  if (is_retransmit) {
    ++retransmissions_;
    retransmits_ctr_.inc();
  }

  Outstanding& out = outstanding_[block_id];
  if (!is_retransmit) {
    out.sent = sim_.now();
    out.retries = 0;
  }
  out.grad_cnt = static_cast<std::uint16_t>(count);
  if (config_.retransmit) arm_retransmit(block_id, out);
}

void TrioMlWorker::arm_retransmit(std::uint32_t block_id, Outstanding& out) {
  sim_.cancel(out.retransmit_timer);
  if (config_.retry_budget != 0 && out.retries >= config_.retry_budget) {
    // Budget exhausted: stop resending. The block stays outstanding — an
    // aged (degraded) Result from upstream still completes it, so a dead
    // contributor degrades the answer instead of wedging the worker.
    ++retry_budget_exhausted_;
    budget_exhausted_ctr_.inc();
    if (!out.exhausted) {
      out.exhausted = true;
      ++exhausted_blocks_;
      maybe_arm_give_up();
    }
    return;
  }
  sim::Duration timeout = config_.retransmit_timeout;
  if (config_.retransmit_backoff && out.retries > 0) {
    double ns = static_cast<double>(timeout.ns());
    for (std::uint32_t k = 0;
         k < out.retries && ns < double(config_.backoff_max.ns()); ++k) {
      ns *= config_.backoff_factor;
    }
    ns = std::min(ns, static_cast<double>(config_.backoff_max.ns()));
    if (config_.backoff_jitter > 0.0) {
      ns *= 1.0 + config_.backoff_jitter * (2.0 * rng_.next_double() - 1.0);
    }
    timeout = sim::Duration(std::max<std::int64_t>(1, std::int64_t(ns)));
    ++backoff_rearms_;
    backoff_ctr_.inc();
  }
  out.retransmit_timer = sim_.schedule_in(timeout, [this, block_id,
                                                    epoch = epoch_] {
    // Epoch check first: block_id alone is ambiguous across incarnations
    // (a restarted allreduce re-creates the same ids), so a stale timer
    // must not charge retries against the new incarnation's block.
    if (epoch != epoch_ || crashed_) return;
    auto it = outstanding_.find(block_id);
    if (it == outstanding_.end()) return;
    ++it->second.retries;
    send_block(block_id, /*is_retransmit=*/true);
  });
}

void TrioMlWorker::receive(net::PacketPtr pkt, int) {
  if (crashed_) return;  // a crashed host hears nothing
  const net::Buffer& frame = pkt->frame();
  if (frame.size() < kGradOff) return;
  const auto udp = net::UdpHeader::parse(frame, net::UdpFrameLayout::kUdpOff);
  if (udp.dst_port != kTrioMlUdpPort && udp.src_port != kTrioMlUdpPort) {
    return;
  }
  const TrioMlHeader hdr = TrioMlHeader::parse(frame, kTrioMlHdrOff);
  if (hdr.job_id != config_.job_id) return;
  if (hdr.age_op >= 0xE) {
    // §5 classifier notification: record which source is straggling and
    // whether the network declared it permanent.
    straggler_notices_.push_back(StragglerNotice{
        hdr.src_id, hdr.age_op == 0xF, hdr.src_cnt, sim_.now()});
    return;
  }
  if (hdr.gen_id != gen_id_) return;
  on_result(hdr, frame);
}

void TrioMlWorker::on_result(const TrioMlHeader& hdr,
                             const net::Buffer& frame) {
  auto it = outstanding_.find(hdr.block_id);
  if (it == outstanding_.end()) return;  // duplicate result
  ++results_received_;
  block_latency_us_.add((sim_.now() - it->second.sent).us());

  // Servers that receive partial aggregation results divide the returned
  // gradient values by the number of aggregated sources (§5); complete
  // results divide by the full source count — both yield the average.
  const std::uint8_t denom_u8 =
      hdr.degraded ? hdr.src_cnt
                   : (config_.expected_sources != 0 ? config_.expected_sources
                                                    : hdr.src_cnt);
  const float denom = denom_u8 == 0 ? 1.0f : static_cast<float>(denom_u8);
  if (hdr.degraded) {
    ++degraded_results_;
    ++result_.degraded_blocks;
  }
  const std::size_t base = std::size_t(hdr.block_id) * config_.grads_per_packet;
  for (std::size_t i = 0; i < hdr.grad_cnt && base + i < result_.grads.size();
       ++i) {
    const auto sum = static_cast<std::int32_t>(read_gradient(frame, i));
    result_.grads[base + i] = dequantize(sum) / denom;
  }

  sim_.cancel(it->second.retransmit_timer);
  if (it->second.exhausted) --exhausted_blocks_;
  outstanding_.erase(it);
  if (give_up_armed_) {
    // A result got through: the aggregation path is alive after all.
    // Disarm and let a later exhaustion (or completion) re-evaluate.
    sim_.cancel(give_up_timer_);
    give_up_armed_ = false;
  }
  ++completed_blocks_;
  if (completed_blocks_ == num_blocks_) {
    complete();
  } else {
    pump();
    maybe_arm_give_up();
  }
}

void TrioMlWorker::maybe_arm_give_up() {
  // Arm only when the worker is fully wedged: nothing left to send, every
  // outstanding block has spent its retry budget, and nothing is armed
  // yet. Any arriving result disarms (see on_result).
  if (config_.give_up_grace == sim::Duration::zero() || give_up_armed_ ||
      !done_ || crashed_ || outstanding_.empty() ||
      next_block_ < num_blocks_ ||
      exhausted_blocks_ < outstanding_.size()) {
    return;
  }
  give_up_armed_ = true;
  give_up_timer_ =
      sim_.schedule_in(config_.give_up_grace, [this, epoch = epoch_] {
        if (epoch != epoch_) return;
        give_up_armed_ = false;
        give_up();
      });
}

void TrioMlWorker::give_up() {
  if (!done_ || crashed_ || outstanding_.empty()) return;
  for (auto& [block, out] : outstanding_) {
    sim_.cancel(out.retransmit_timer);
  }
  result_.abandoned_blocks += outstanding_.size();
  abandoned_blocks_ += outstanding_.size();
  ++abandoned_allreduces_;
  completed_blocks_ += static_cast<std::uint32_t>(outstanding_.size());
  outstanding_.clear();
  exhausted_blocks_ = 0;
  complete();
}

void TrioMlWorker::complete() {
  result_.finish = sim_.now();
  auto done = std::move(done_);
  done_ = nullptr;
  done(std::move(result_));
}

}  // namespace trioml
