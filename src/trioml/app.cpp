#include "trioml/app.hpp"

#include <algorithm>
#include <stdexcept>

#include "trio/router.hpp"
#include "trioml/advanced_straggler.hpp"
#include "trioml/aggregator.hpp"
#include "trioml/straggler.hpp"

namespace trioml {

TrioMlApp::TrioMlApp(trio::Pfe& pfe, Config config)
    : pfe_(pfe), config_(config) {
  // Pre-allocate the block slab pool: 64-byte records in on-chip SRAM
  // (hot, small), 4 KiB aggregation buffers in DMEM (large — §2.3 "data
  // structures to be placed in the type of memory that best matches
  // their capacity and bandwidth requirements").
  auto& sms = pfe_.sms();
  free_slabs_.reserve(config_.slab_pool);
  for (std::size_t i = 0; i < config_.slab_pool; ++i) {
    Slab slab;
    slab.record_addr = sms.alloc_sram(kBlockSlabBytes, 64);
    slab.buffer_addr =
        sms.alloc_dram(std::size_t(kMaxGradsPerPacket) * 4, 64);
    record_to_buffer_.emplace(slab.record_addr, slab.buffer_addr);
    buffer_to_record_.emplace(slab.buffer_addr, slab.record_addr);
    free_slabs_.push_back(slab);
  }
  auto& registry = pfe_.router().telemetry().metrics;
  const std::string prefix = pfe_.metric_prefix() + "trioml.";
  packet_latency_hist_ = registry.histogram(prefix + "packet_latency_ns");
  block_latency_hist_ = registry.histogram(prefix + "block_latency_ns");
}

void TrioMlApp::configure_job(const JobSetup& setup) {
  if (setup.src_ids.empty()) {
    throw std::invalid_argument("TrioMlApp: job needs at least one source");
  }
  JobRecord rec;
  rec.block_cnt_max = setup.block_cnt_max & 0xfff;
  rec.block_grad_max = setup.block_grad_max & 0xfff;
  rec.block_exp = setup.block_exp_ms;
  rec.out_src_addr = setup.out_src.value();
  rec.out_dst_addr = setup.out_dst.value();
  rec.out_nh_addr = setup.out_nh;
  rec.out_src_id = setup.out_src_id;
  rec.src_cnt = static_cast<std::uint8_t>(setup.src_ids.size());
  for (std::uint8_t src : setup.src_ids) {
    if (src >= 255) throw std::invalid_argument("source id out of range");
    rec.src_mask[src / 64] |= 1ull << (src % 64);
  }

  auto& sms = pfe_.sms();
  const std::uint64_t addr = sms.alloc_sram(JobRecord::kSize, 64);
  sms.poke_bytes(addr, rec.pack());
  // A Packet/Byte counter per job tracks completed blocks / gradient bytes.
  const std::uint64_t ctr = sms.alloc_sram(16, 16);
  const std::uint64_t active = sms.alloc_sram(8, 8);
  job_records_[setup.job_id] = addr;
  job_counters_[setup.job_id] = ctr;
  job_active_counters_[setup.job_id] = active;
  // Job records are control-plane state: pinned, so they survive the
  // generation bump a router kill triggers (invalidate_active_blocks).
  if (!pfe_.hash_table().insert(job_key(setup.job_id), addr,
                                /*pinned=*/true)) {
    throw std::invalid_argument("TrioMlApp: job already configured");
  }
}

void TrioMlApp::remove_job(std::uint8_t job_id) {
  pfe_.hash_table().erase(job_key(job_id));
  job_records_.erase(job_id);
}

std::vector<std::uint8_t> TrioMlApp::configured_jobs() const {
  std::vector<std::uint8_t> jobs;
  jobs.reserve(job_records_.size());
  for (const auto& [job, addr] : job_records_) jobs.push_back(job);
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

std::uint64_t TrioMlApp::job_worst_case_bytes(const JobSetup& setup) {
  const std::uint64_t control = JobRecord::kSize + 16 + 8;
  const std::uint64_t per_block =
      kBlockSlabBytes + std::uint64_t(kMaxGradsPerPacket) * 4;
  return control + std::uint64_t(setup.block_cnt_max & 0xfff) * per_block;
}

std::size_t TrioMlApp::drop_active_blocks(std::uint8_t job_id) {
  auto& hash = pfe_.hash_table();
  std::size_t dropped = 0;
  for (const auto& [key, record_addr] : hash.entries()) {
    if (is_job_key(key)) continue;
    std::uint8_t j;
    std::uint16_t gen;
    std::uint32_t block;
    split_key(key, j, gen, block);
    if (j != job_id) continue;
    // Co-tenant apps share the hash table: a foreign key (e.g. a netrpc
    // cache presence entry whose tenant id matches this job id) points at
    // SMS state that is not a block record — leave it alone.
    if (record_to_buffer_.find(record_addr) == record_to_buffer_.end()) {
      continue;
    }
    hash.erase(key);
    quarantine_slab(Slab{record_addr, buffer_of_record(record_addr)});
    ++dropped;
  }
  // Rewind the job's active-block count so block_cnt_max capping stays
  // accurate after the loss.
  const std::uint64_t active_addr = job_active_counter_addr(job_id);
  if (active_addr != 0 && dropped != 0) {
    auto& sms = pfe_.sms();
    const std::uint32_t active = sms.peek_u32(active_addr);
    sms.poke_u32(active_addr,
                 active >= dropped ? active - std::uint32_t(dropped) : 0);
  }
  stats_.blocks_lost_fault += dropped;
  return dropped;
}

std::size_t TrioMlApp::invalidate_active_blocks() {
  auto& hash = pfe_.hash_table();
  hash.bump_generation();
  std::unordered_map<std::uint8_t, std::uint32_t> per_job;
  std::size_t dropped = hash.sweep_stale(
      [this, &per_job](std::uint64_t key, std::uint64_t record_addr) {
        std::uint8_t j;
        std::uint16_t gen;
        std::uint32_t block;
        split_key(key, j, gen, block);
        // Swept foreign entries (a co-tenant app's keys — the kill took
        // their state too) have no slab to free here.
        if (record_to_buffer_.find(record_addr) == record_to_buffer_.end()) {
          return;
        }
        ++per_job[j];
        free_slab(Slab{record_addr, buffer_of_record(record_addr)});
      });
  auto& sms = pfe_.sms();
  for (const auto& [job_id, lost] : per_job) {
    const std::uint64_t active_addr = job_active_counter_addr(job_id);
    if (active_addr == 0) continue;
    const std::uint32_t active = sms.peek_u32(active_addr);
    sms.poke_u32(active_addr, active >= lost ? active - lost : 0);
  }
  stats_.blocks_lost_fault += dropped;
  return dropped;
}

bool TrioMlApp::retarget_job_output(std::uint8_t job_id,
                                    std::uint32_t out_nh) {
  const std::uint64_t addr = job_record_addr(job_id);
  if (addr == 0) return false;
  auto& sms = pfe_.sms();
  JobRecord rec = JobRecord::unpack(sms.peek_bytes(addr, JobRecord::kSize));
  rec.out_nh_addr = out_nh;
  sms.poke_bytes(addr, rec.pack());
  return true;
}

std::uint64_t TrioMlApp::job_counter_addr(std::uint8_t job_id) const {
  auto it = job_counters_.find(job_id);
  return it == job_counters_.end() ? 0 : it->second;
}

std::uint64_t TrioMlApp::job_active_counter_addr(std::uint8_t job_id) const {
  auto it = job_active_counters_.find(job_id);
  return it == job_active_counters_.end() ? 0 : it->second;
}

void TrioMlApp::install() {
  pfe_.set_program_factory(make_aggregation_factory(*this));
}

void TrioMlApp::start_straggler_detection(int threads,
                                          sim::Duration timeout) {
  // N phase-shifted timers with period == timeout; each scans its own
  // 1/N of the hash table, so every record is aged on a `timeout` cadence
  // while each thread only walks a slice (§5 "Multi-thread scanning of
  // large hash tables").
  pfe_.timers().start(
      threads, timeout,
      [this, threads](std::uint32_t timer_index)
          -> std::unique_ptr<trio::PpeProgram> {
        return std::make_unique<StragglerScanProgram>(
            *this, timer_index, static_cast<std::uint32_t>(threads));
      });
}

void TrioMlApp::stop_straggler_detection() { pfe_.timers().stop(); }

void TrioMlApp::enable_straggler_profiling(std::uint8_t job_id) {
  if (profiling_.contains(job_id)) return;
  Profiling p;
  p.events_base = pfe_.sms().alloc_sram(256 * 16, 64);
  p.state_base = pfe_.sms().alloc_sram(256 * 16, 64);
  profiling_.emplace(job_id, p);
}

bool TrioMlApp::profiling_enabled(std::uint8_t job_id) const {
  return profiling_.contains(job_id);
}

std::uint64_t TrioMlApp::straggler_event_counter_addr(
    std::uint8_t job_id, std::uint8_t src) const {
  auto it = profiling_.find(job_id);
  return it == profiling_.end() ? 0
                                : it->second.events_base + std::uint64_t(src) * 16;
}

std::uint64_t TrioMlApp::classifier_state_addr(std::uint8_t job_id,
                                               std::uint8_t src) const {
  auto it = profiling_.find(job_id);
  return it == profiling_.end() ? 0
                                : it->second.state_base + std::uint64_t(src) * 16;
}

std::uint64_t TrioMlApp::job_record_addr(std::uint8_t job_id) const {
  auto it = job_records_.find(job_id);
  return it == job_records_.end() ? 0 : it->second;
}

int TrioMlApp::start_straggler_classification(std::uint8_t job_id,
                                              sim::Duration period,
                                              int permanent_after_windows) {
  enable_straggler_profiling(job_id);
  ClassifierConfig cfg;
  cfg.permanent_after_windows = permanent_after_windows;
  // One infrequent timer: the classifier walks every source of the job.
  return pfe_.timers().start(
      1, period,
      [this, job_id, cfg](std::uint32_t) -> std::unique_ptr<trio::PpeProgram> {
        return std::make_unique<StragglerClassifierProgram>(*this, job_id,
                                                            cfg);
      });
}

std::optional<TrioMlApp::Slab> TrioMlApp::alloc_slab() {
  if (free_slabs_.empty()) {
    ++stats_.out_of_slabs;
    return std::nullopt;
  }
  Slab slab = free_slabs_.back();
  free_slabs_.pop_back();
  return slab;
}

void TrioMlApp::free_slab(const Slab& slab) {
  // Zero the aggregation buffer so the next block starts clean. In
  // hardware this is done by an init-on-allocate background engine; here
  // it is functional-only (no time charged) — see DESIGN.md.
  auto& sms = pfe_.sms();
  for (std::size_t off = 0; off < std::size_t(kMaxGradsPerPacket) * 4;
       off += 8) {
    if (sms.peek_u64(slab.buffer_addr + off) != 0) {
      sms.poke_u64(slab.buffer_addr + off, 0);
    }
  }
  free_slabs_.push_back(slab);
}

void TrioMlApp::quarantine_slab(const Slab& slab) {
  quarantined_slabs_.push_back(slab);
  schedule_slab_reclaim();
}

void TrioMlApp::schedule_slab_reclaim() {
  if (reclaim_scheduled_ || quarantined_slabs_.empty()) return;
  reclaim_scheduled_ = true;
  pfe_.router().simulator().schedule_in(
      sim::Duration::micros(10), [this] {
        reclaim_scheduled_ = false;
        if (pfe_.active_threads() == 0) {
          for (const Slab& slab : quarantined_slabs_) free_slab(slab);
          quarantined_slabs_.clear();
        } else {
          schedule_slab_reclaim();
        }
      });
}

void TrioMlApp::free_slab_by_buffer(std::uint64_t buffer_addr) {
  auto it = buffer_to_record_.find(buffer_addr);
  if (it == buffer_to_record_.end()) {
    throw std::logic_error("TrioMlApp: unknown aggregation buffer");
  }
  free_slab(Slab{it->second, buffer_addr});
}

std::uint64_t TrioMlApp::buffer_of_record(std::uint64_t record_addr) const {
  auto it = record_to_buffer_.find(record_addr);
  if (it == record_to_buffer_.end()) {
    throw std::logic_error("TrioMlApp: unknown block record");
  }
  return it->second;
}

}  // namespace trioml
