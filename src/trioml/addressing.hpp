// The address plan shared by the single-router Testbed and the multi-rack
// cluster builder (src/cluster/): deterministic worker/aggregator MAC and
// IPv4 addresses, keyed by (rack, worker-within-rack). The Testbed is the
// degenerate rack 0, so its historical addresses are unchanged.
//
// Plan: rack r occupies 10.r.0.0/24 — workers at .1.., its aggregator at
// .254 — and the spine aggregator sits alone at 10.255.0.254. Final
// results are multicast to 239.0.0.1. Rack numbers therefore stay below
// 255; job source masks cap them lower still (see cluster::ClusterSpec).
#pragma once

#include <cstdint>

#include "net/headers.hpp"

namespace trioml {

/// MAC of worker `i` in rack `rack` (the Testbed is rack 0).
inline net::MacAddr worker_mac(int rack, int i) {
  return net::MacAddr{0x02, 0x00, 0x00, static_cast<std::uint8_t>(rack), 0x01,
                      static_cast<std::uint8_t>(i + 1)};
}

/// IPv4 address of worker `i` in rack `rack`.
inline net::Ipv4Addr worker_ip(int rack, int i) {
  return net::Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(rack), 0,
                                    static_cast<std::uint8_t>(i + 1));
}

/// Aggregation address of rack `rack`'s aggregator (the Testbed router,
/// or a cluster leaf router).
inline net::Ipv4Addr aggregator_ip(int rack) {
  return net::Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(rack), 0,
                                    254);
}

inline net::MacAddr aggregator_mac(int rack) {
  return net::MacAddr{0x02, 0x00, 0x00, static_cast<std::uint8_t>(rack), 0x00,
                      0xfe};
}

/// The top-level (spine) aggregator of a multi-rack cluster.
inline net::Ipv4Addr spine_ip() {
  return net::Ipv4Addr::from_octets(10, 255, 0, 254);
}

inline net::MacAddr spine_mac() {
  return net::MacAddr{0x02, 0x00, 0x00, 0xff, 0x00, 0xfe};
}

/// The standby spine aggregator (src/recovery/ failover target). It
/// listens on the *same* aggregation address as the primary — spine_ip()
/// — so failover only rewrites leaf nexthops, never worker or leaf job
/// state; this management address and MAC are its own identity on the
/// backup trunk links.
inline net::Ipv4Addr backup_spine_ip() {
  return net::Ipv4Addr::from_octets(10, 255, 0, 253);
}

inline net::MacAddr backup_spine_mac() {
  return net::MacAddr{0x02, 0x00, 0x00, 0xff, 0x00, 0xfd};
}

/// Multicast group the final aggregation results are delivered to.
inline net::Ipv4Addr result_group() {
  return net::Ipv4Addr::from_octets(239, 0, 0, 1);
}

// --- Multi-tenant port plan (src/jobs/, docs/jobs.md) ----------------------
// All aggregation traffic shares UDP destination port 12000 and is told
// apart by the Trio-ML header's job id; the *source* port plan below keys
// the remaining tenant traffic so the egress classifier
// (wire_format.hpp's tenant_of_frame) never needs per-flow state.

/// UDP source port a tenant's aggregation workers send from: distinct per
/// tenant so captures and per-flow counters separate cleanly.
inline std::uint16_t worker_udp_src_port(std::uint8_t tenant) {
  return static_cast<std::uint16_t>(20000 + tenant);
}

/// Base of the best-effort (non-aggregation) tenant port range:
/// 30000 + t is tenant t's background traffic.
constexpr std::uint16_t kBestEffortPortBase = 30000;

inline std::uint16_t best_effort_src_port(std::uint8_t tenant) {
  return static_cast<std::uint16_t>(kBestEffortPortBase + tenant);
}

}  // namespace trioml
