// Advanced straggler mitigation (paper §5, "Advanced straggler
// mitigation"): two timer-thread types cooperate —
//
//   * the frequent type (StragglerScanProgram) detects straggler events
//     and, when profiling is enabled, charges each missing source's
//     per-source event counter in shared memory;
//   * the infrequent type (StragglerClassifierProgram, this file) reads
//     the per-source event counters, tracks how many consecutive
//     classification windows each source has been straggling, classifies
//     it as a *temporary* straggler (slowed down recently) or a
//     *permanent* one (straggling for many consecutive windows), and
//     notifies all workers with an in-band notification packet.
//
// Notification packets reuse the Trio-ML header with age_op = 0xE
// (temporary) or 0xF (permanent), src_id = the straggling source, and
// src_cnt = the number of consecutive straggling windows. Workers record
// them (TrioMlWorker::straggler_notices()).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "trio/program.hpp"
#include "trioml/app.hpp"
#include "trioml/records.hpp"

namespace trioml {

/// age_op markers distinguishing notifications from aggregation traffic.
constexpr std::uint8_t kAgeOpTemporaryStraggler = 0xE;
constexpr std::uint8_t kAgeOpPermanentStraggler = 0xF;

struct ClassifierConfig {
  /// Consecutive straggling windows after which a source is declared
  /// permanent.
  int permanent_after_windows = 3;
};

class StragglerClassifierProgram : public trio::PpeProgram {
 public:
  StragglerClassifierProgram(TrioMlApp& app, std::uint8_t job_id,
                             ClassifierConfig config)
      : app_(app), job_id_(job_id), config_(config) {}

  trio::Action step(trio::ThreadContext& ctx) override;

 private:
  enum class State {
    kReadJob,      // fetch the job record (source mask, nexthop)
    kJobLoaded,
    kReadEvents,   // per source: read its event counter
    kReadState,    // per source: read classifier state (last count, consec)
    kDecide,       // update state, maybe emit a notification
    kExit,
  };

  trio::Action do_step(trio::ThreadContext& ctx);
  trio::Action next_source(trio::ThreadContext& ctx);

  TrioMlApp& app_;
  std::uint8_t job_id_;
  ClassifierConfig config_;
  State state_ = State::kReadJob;
  JobRecord job_;
  std::vector<std::uint8_t> sources_;
  std::size_t next_ = 0;
  std::uint8_t src_ = 0;
  std::uint64_t events_now_ = 0;
  std::deque<trio::Action> pending_;
};

}  // namespace trioml
