// Builds the paper's testbed (Fig 11) in simulation: a Trio router with
// multiple PFEs, N GPU-server workers on 100 Gbps links, the Trio-ML
// application configured on the ingress PFEs — either single-level (all
// workers on one PFE) or hierarchical (workers split across two PFEs
// feeding a top-level aggregator PFE over the fabric).
#pragma once

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "trio/router.hpp"
#include "trioml/app.hpp"
#include "trioml/host.hpp"

namespace trioml {

struct TestbedConfig {
  int num_workers = 4;
  bool hierarchical = false;  // split workers across two PFEs + top level
  double link_gbps = 100.0;
  sim::Duration link_latency = sim::Duration::micros(1);
  std::uint16_t grads_per_packet = kMaxGradsPerPacket;
  std::uint32_t window = 4096;
  std::uint8_t job_id = 1;
  std::uint8_t block_exp_ms = 10;
  std::size_t slab_pool = 8192;
  trio::Calibration cal;
  /// When set, the router is built observed by this telemetry bundle
  /// (must outlive the Testbed) and the worker links register tx/rx/drop
  /// counters; when null the testbed runs un-instrumented.
  telemetry::Telemetry* telemetry = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  sim::Simulator& simulator() { return sim_; }
  trio::Router& router() { return *router_; }
  TrioMlWorker& worker(int i) { return *workers_.at(static_cast<std::size_t>(i)); }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// Worker i's link (a_to_b = worker->router) for loss injection etc.
  net::Link& link(int i) { return *links_.at(static_cast<std::size_t>(i)); }

  /// The aggregation app on PFE `pfe` (0/1 first level, 3 top level in
  /// hierarchical mode; 0 in single-level mode).
  TrioMlApp& app(int pfe);
  /// All aggregation apps (for stats aggregation).
  std::vector<TrioMlApp*> apps();

  /// Starts straggler detection on every aggregating PFE.
  void start_straggler_detection(int threads, sim::Duration timeout);

  const TestbedConfig& config() const { return config_; }

 private:
  TestbedConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<trio::Router> router_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<TrioMlWorker>> workers_;
  std::vector<std::unique_ptr<TrioMlApp>> apps_;  // indexed by PFE
};

}  // namespace trioml
