// In-network straggler detection and mitigation (paper §5).
//
// Each timer thread scans its 1/N partition of the aggregation hash
// table with a check-and-clear pass over the per-record 'Recently
// Referenced' flags. A block whose flag was already clear has not been
// touched for at least one timer period — its straggling sources are
// given up on: the thread claims the record (hash delete), reads the
// partial aggregation state, and emits a *degraded* Result packet
// carrying age_op, degraded=1 and src_cnt = the number of sources that
// did contribute, so the servers can rescale (§5 "Straggler mitigation").
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "trio/program.hpp"
#include "trioml/app.hpp"
#include "trioml/records.hpp"
#include "trioml/result_builder.hpp"

namespace trioml {

class StragglerScanProgram : public trio::PpeProgram {
 public:
  StragglerScanProgram(TrioMlApp& app, std::uint32_t partition,
                       std::uint32_t partitions)
      : app_(app), partition_(partition), partitions_(partitions) {}

  trio::Action step(trio::ThreadContext& ctx) override;

 private:
  enum class State {
    kScan,        // issue the partition scan
    kNextAged,    // take the next aged key (or exit)
    kClaim,       // hash-delete reply: do we own the block?
    kReadRecord,  // read the block slab
    kReadJob,     // read the job record
    kResult,      // run the shared result builder (degraded)
    kExit,
  };

  trio::Action do_step(trio::ThreadContext& ctx);

  TrioMlApp& app_;
  std::uint32_t partition_;
  std::uint32_t partitions_;
  State state_ = State::kScan;
  std::vector<std::uint64_t> aged_;
  std::size_t next_ = 0;
  std::uint64_t key_ = 0;
  std::uint64_t record_addr_ = 0;
  BlockRecord record_;
  std::uint8_t accum_src_cnt_ = 0;
  std::optional<ResultBuilder> builder_;
  std::deque<trio::Action> pending_;  // posted charges (§5 profiling)
};

}  // namespace trioml
