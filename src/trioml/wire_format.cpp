#include "trioml/wire_format.hpp"

#include <cmath>
#include <stdexcept>

#include "net/headers.hpp"
#include "netrpc/wire_format.hpp"
#include "trioml/addressing.hpp"

namespace trioml {

void TrioMlHeader::write(net::Buffer& buf, std::size_t off) const {
  if (grad_cnt > 0xfff) {
    throw std::invalid_argument("TrioMlHeader: grad_cnt exceeds 12 bits");
  }
  buf.set_u8(off, job_id);
  buf.set_u32(off + 1, block_id);
  // age_op:4 final:1 degraded:1 pad:2
  buf.set_u8(off + 5,
             static_cast<std::uint8_t>((age_op & 0xf) << 4 |
                                       (final_block ? 1 : 0) << 3 |
                                       (degraded ? 1 : 0) << 2));
  buf.set_u8(off + 6, src_id);
  buf.set_u8(off + 7, src_cnt);
  buf.set_u16(off + 8, gen_id);
  // pad:4 grad_cnt:12
  buf.set_u16(off + 10, static_cast<std::uint16_t>(grad_cnt & 0xfff));
}

TrioMlHeader TrioMlHeader::parse(const net::Buffer& buf, std::size_t off) {
  TrioMlHeader h;
  h.job_id = buf.u8(off);
  h.block_id = buf.u32(off + 1);
  const std::uint8_t flags = buf.u8(off + 5);
  h.age_op = flags >> 4;
  h.final_block = (flags >> 3 & 1) != 0;
  h.degraded = (flags >> 2 & 1) != 0;
  h.src_id = buf.u8(off + 6);
  h.src_cnt = buf.u8(off + 7);
  h.gen_id = buf.u16(off + 8);
  h.grad_cnt = static_cast<std::uint16_t>(buf.u16(off + 10) & 0xfff);
  return h;
}

net::Buffer build_aggregation_frame(const net::MacAddr& eth_src,
                                    const net::MacAddr& eth_dst,
                                    net::Ipv4Addr ip_src, net::Ipv4Addr ip_dst,
                                    std::uint16_t udp_src_port,
                                    const TrioMlHeader& hdr,
                                    std::span<const std::uint32_t> gradients) {
  if (gradients.size() > kMaxGradsPerPacket) {
    throw std::invalid_argument("too many gradients for one packet");
  }
  std::vector<std::uint8_t> payload(TrioMlHeader::kSize + gradients.size() * 4);
  net::Buffer frame = net::build_udp_frame(eth_src, eth_dst, ip_src, ip_dst,
                                           udp_src_port, kTrioMlUdpPort,
                                           payload);
  TrioMlHeader h = hdr;
  h.grad_cnt = static_cast<std::uint16_t>(gradients.size());
  h.write(frame, kTrioMlHdrOff);
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    frame.set_u32le(kGradOff + i * 4, gradients[i]);
  }
  return frame;
}

std::uint32_t read_gradient(const net::Buffer& frame, std::size_t i) {
  return frame.u32le(kGradOff + i * 4);
}

void write_gradient(net::Buffer& frame, std::size_t i, std::uint32_t v) {
  frame.set_u32le(kGradOff + i * 4, v);
}

std::int32_t quantize(float value, float scale) {
  const float scaled = value * scale;
  if (scaled >= 2147483647.0f) return 2147483647;
  if (scaled <= -2147483648.0f) return -2147483647 - 1;
  return static_cast<std::int32_t>(std::lround(scaled));
}

float dequantize(std::int32_t value, float scale) {
  return static_cast<float>(value) / scale;
}

std::uint8_t tenant_of_frame(const net::Buffer& frame) {
  if (frame.size() < net::UdpFrameLayout::kPayloadOff) return 0;
  const auto eth = net::EthernetHeader::parse(frame, 0);
  if (eth.ether_type != net::EthernetHeader::kEtherTypeIpv4) return 0;
  const auto ip = net::Ipv4Header::parse(frame, net::UdpFrameLayout::kIpOff);
  if (ip.protocol != net::Ipv4Header::kProtoUdp) return 0;
  const auto udp = net::UdpHeader::parse(frame, net::UdpFrameLayout::kUdpOff);
  if (udp.dst_port == kTrioMlUdpPort &&
      frame.size() >= kTrioMlHdrOff + TrioMlHeader::kSize) {
    return frame.u8(kTrioMlHdrOff);  // TrioMlHeader.job_id
  }
  if (udp.src_port >= kBestEffortPortBase &&
      udp.src_port < kBestEffortPortBase + 256) {
    return static_cast<std::uint8_t>(udp.src_port - kBestEffortPortBase);
  }
  // NetRPC traffic (src/netrpc/wire_format.hpp): requests on dst 12100,
  // responses on dst 12101, tenant id one byte into the NetRPC header.
  if ((udp.dst_port == netrpc::kRequestUdpPort ||
       udp.dst_port == netrpc::kResponseUdpPort) &&
      frame.size() >= netrpc::kNetRpcHdrOff + netrpc::NetRpcHeader::kSize) {
    return frame.u8(netrpc::kNetRpcHdrOff + 1);
  }
  return 0;
}

}  // namespace trioml
