// Trio-ML packet wire format (paper Figs 7 & 8).
//
// An aggregation packet is Ethernet / IPv4 / UDP (destination port 12000)
// followed by the 12-byte Trio-ML header and up to 4096 bytes of gradients
// (1024 32-bit integers, ATP-style scaled fixed point, little-endian).
#pragma once

#include <cstdint>

#include "net/buffer.hpp"
#include "net/packet.hpp"

namespace trioml {

/// Pre-defined aggregation UDP port (paper §4: "e.g., 12000").
constexpr std::uint16_t kTrioMlUdpPort = 12000;

/// Maximum gradients per packet (paper Fig 7: up to 4096 bytes).
constexpr std::uint32_t kMaxGradsPerPacket = 1024;

/// Offset of the Trio-ML header within a frame (after Eth/IP/UDP).
constexpr std::size_t kTrioMlHdrOff = net::UdpFrameLayout::kPayloadOff;  // 42
/// Offset of the first gradient.
constexpr std::size_t kGradOff = kTrioMlHdrOff + 12;

/// Fig 8, bit-exact 12-byte layout (fields MSB-first):
///   job_id:8  block_id:32  age_op:4  final:1  degraded:1  pad:2
///   src_id:8  src_cnt:8  gen_id:16  pad:4  grad_cnt:12
struct TrioMlHeader {
  static constexpr std::size_t kSize = 12;

  std::uint8_t job_id = 0;
  std::uint32_t block_id = 0;
  std::uint8_t age_op = 0;    // nonzero when the block aged out (§5)
  bool final_block = false;   // last block of the job
  bool degraded = false;      // aggregation is partial (§5)
  std::uint8_t src_id = 0;    // sender id
  std::uint8_t src_cnt = 0;   // number of sources contributing
  std::uint16_t gen_id = 0;   // generation (training iteration)
  std::uint16_t grad_cnt = 0; // gradients in this packet (12 bits)

  void write(net::Buffer& buf, std::size_t off) const;
  static TrioMlHeader parse(const net::Buffer& buf, std::size_t off);
};

/// Builds a complete aggregation frame: Eth/IP/UDP + header + gradients.
net::Buffer build_aggregation_frame(const net::MacAddr& eth_src,
                                    const net::MacAddr& eth_dst,
                                    net::Ipv4Addr ip_src, net::Ipv4Addr ip_dst,
                                    std::uint16_t udp_src_port,
                                    const TrioMlHeader& hdr,
                                    std::span<const std::uint32_t> gradients);

/// Reads gradient `i` (little-endian int32) from an aggregation frame.
std::uint32_t read_gradient(const net::Buffer& frame, std::size_t i);
void write_gradient(net::Buffer& frame, std::size_t i, std::uint32_t v);

/// ATP-style fixed-point quantisation (paper §4: "gradients are 32-bit
/// integers converted from floating-point using the scaling approach
/// proposed by ATP").
std::int32_t quantize(float value, float scale = 1 << 16);
float dequantize(std::int32_t value, float scale = 1 << 16);

/// Stateless tenant classification for the MQSS egress scheduler
/// (trio::TenantClassifier): the Trio-ML job id for aggregation frames
/// (UDP dst port 12000), the port-plan tenant for best-effort frames
/// (UDP src port 30000+t — addressing.hpp), the NetRPC header's tenant
/// byte for RPC frames (UDP dst port 12100/12101 —
/// netrpc/wire_format.hpp), 0 (default class) for everything else
/// including non-IP and malformed frames.
std::uint8_t tenant_of_frame(const net::Buffer& frame);

}  // namespace trioml
