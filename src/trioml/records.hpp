// Trio-ML job and block records (paper Appendix A.1, Figs 17 & 18),
// bit-exact 58-byte layouts stored in the Shared Memory System.
//
// Job records are created by the control plane at job configuration time
// and persist for the job's lifetime; block records are created by the
// datapath when the first packet of a block arrives and deleted when the
// block's result has been generated.
//
// Storage convention: scalar fields are packed MSB-first at the bit
// offsets implied by the struct definitions; the source bitmask fields
// (src_mask_*/rcvd_mask_*) are stored as little-endian u64 words because
// the datapath updates them in place with FetchOr64 RMW operations.
#pragma once

#include <cstdint>
#include <vector>

#include "net/buffer.hpp"

namespace trioml {

/// Fig 17: trio_ml_job_ctx_t, 58 bytes.
struct JobRecord {
  static constexpr std::size_t kSize = 58;

  std::uint16_t block_curr_cnt = 0;   // current number of active blocks
  std::uint16_t block_cnt_max = 0;    // max concurrent blocks (12 bits)
  std::uint16_t block_grad_max = 0;   // max gradients per block (12 bits)
  std::uint8_t block_exp = 0;         // block timeout (ms)
  std::uint32_t block_total_cnt = 0;  // cumulative block count
  std::uint32_t out_src_addr = 0;     // result packet source IP
  std::uint32_t out_dst_addr = 0;     // result packet destination IP
  std::uint32_t out_nh_addr = 0;      // pointer to egress forward chain
  /// Source id stamped on Result packets (stored in the record's 24-bit
  /// padding). 0 for a single-level / top-level aggregator; a first-level
  /// PFE in hierarchical mode uses its own id so the top-level aggregator
  /// sees lower-level PFEs as individual sources (§4).
  std::uint8_t out_src_id = 0;
  std::uint8_t src_cnt = 0;           // number of ML sources in the job
  std::uint64_t src_mask[4] = {0, 0, 0, 0};  // participating sources

  std::vector<std::uint8_t> pack() const;
  static JobRecord unpack(const std::vector<std::uint8_t>& bytes);
};

/// Fig 18: trio_ml_block_ctx_t, 58 bytes.
struct BlockRecord {
  static constexpr std::size_t kSize = 58;
  /// Byte offsets of the fields the datapath RMWs in place.
  static constexpr std::size_t kRcvdCntOff = 25;
  static constexpr std::size_t kRcvdMask0Off = 26;

  std::uint8_t block_exp = 0;          // timeout interval (ms)
  std::uint8_t block_age = 0;          // age of the block
  std::uint64_t block_start_time = 0;  // ns
  std::uint32_t job_ctx_paddr = 0;     // pointer to the job record
  std::uint32_t aggr_paddr = 0;        // pointer to the aggregation buffer
  std::uint16_t grad_cnt = 0;          // gradients in the block (12 bits)
  std::uint8_t rcvd_cnt = 0;           // sources received so far
  std::uint64_t rcvd_mask[4] = {0, 0, 0, 0};

  std::vector<std::uint8_t> pack() const;
  static BlockRecord unpack(const std::vector<std::uint8_t>& bytes);
};

/// A block *slab* is the datapath allocation unit: the 58-byte record
/// rounded up to 64 bytes, with the padding used as implementation
/// scratch for hierarchical aggregation (accumulated contributor count
/// and degraded flag — see aggregator.cpp).
constexpr std::size_t kBlockSlabBytes = 64;
constexpr std::size_t kSrcCntAccumOff = 58;  // u32, FetchAdd32'd
constexpr std::size_t kDegradedFlagOff = 62;  // u8

/// Hash-table keys: (job_id, gen_id, block_id) for blocks; job records use
/// block_id = 0xffffffff ("BLOCK_ID = -1" in Fig 9) and gen 0.
std::uint64_t block_key(std::uint8_t job_id, std::uint16_t gen_id,
                        std::uint32_t block_id);
std::uint64_t job_key(std::uint8_t job_id);
/// True when a hash key addresses a job record rather than a block.
bool is_job_key(std::uint64_t key);
/// Decomposes a block key.
void split_key(std::uint64_t key, std::uint8_t& job_id, std::uint16_t& gen_id,
               std::uint32_t& block_id);

}  // namespace trioml
