#include "trioml/testbed.hpp"

#include <stdexcept>

#include "trioml/addressing.hpp"

namespace trioml {

namespace {

// The Testbed is rack 0 of the shared address plan (trioml/addressing.hpp).
net::MacAddr worker_mac(int i) { return trioml::worker_mac(0, i); }
net::Ipv4Addr worker_ip(int i) { return trioml::worker_ip(0, i); }

}  // namespace

Testbed::Testbed(TestbedConfig config) : config_(config) {
  const net::Ipv4Addr router_ip = aggregator_ip(0);
  const net::Ipv4Addr mcast_group = result_group();

  const int num_pfes = config_.hierarchical ? 6 : 1;
  const int ports_per_pfe =
      std::max(8, (config_.num_workers + num_pfes - 1));
  if (config_.telemetry != nullptr) {
    router_ = std::make_unique<trio::Router>(sim_, config_.cal, num_pfes,
                                             ports_per_pfe, *config_.telemetry,
                                             "mx480");
  } else {
    router_ = std::make_unique<trio::Router>(sim_, config_.cal, num_pfes,
                                             ports_per_pfe, "mx480");
  }
  apps_.resize(static_cast<std::size_t>(num_pfes));

  // --- Attach workers -------------------------------------------------------
  // Single level: all on PFE0. Hierarchical (Fig 11): first half on PFE0,
  // second half on PFE1, PFE3 configured as the top-level aggregator.
  std::vector<int> worker_port(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    int port;
    if (!config_.hierarchical) {
      port = i;
    } else {
      const int half = (config_.num_workers + 1) / 2;
      port = i < half ? i : ports_per_pfe + (i - half);
    }
    worker_port[static_cast<std::size_t>(i)] = port;
  }

  // --- Multicast group for result delivery ---------------------------------
  auto& fwd = router_->forwarding();
  std::uint32_t group_nh = 0;
  for (int i = 0; i < config_.num_workers; ++i) {
    const std::uint32_t member = fwd.add_nexthop(trio::NexthopUnicast{
        worker_port[static_cast<std::size_t>(i)], worker_mac(i)});
    group_nh = fwd.join_group(mcast_group, member);
    // Unicast /32 route to the worker, for completeness.
    fwd.add_route(worker_ip(i), 32, member);
  }

  // --- Jobs -----------------------------------------------------------------
  auto make_app = [&](int pfe) -> TrioMlApp& {
    auto& slot = apps_[static_cast<std::size_t>(pfe)];
    if (!slot) {
      TrioMlApp::Config app_config;
      app_config.slab_pool = config_.slab_pool;
      slot = std::make_unique<TrioMlApp>(router_->pfe(pfe), app_config);
      slot->set_aggregation_address(router_ip);
      slot->install();
    }
    return *slot;
  };

  if (!config_.hierarchical) {
    TrioMlApp& app0 = make_app(0);
    TrioMlApp::JobSetup job;
    job.job_id = config_.job_id;
    for (int i = 0; i < config_.num_workers; ++i) {
      job.src_ids.push_back(static_cast<std::uint8_t>(i));
    }
    job.block_grad_max = config_.grads_per_packet;
    job.block_exp_ms = config_.block_exp_ms;
    job.out_src = router_ip;
    job.out_dst = mcast_group;
    job.out_nh = group_nh;
    app0.configure_job(job);
  } else {
    const int half = (config_.num_workers + 1) / 2;
    const int top_pfe = 3;
    const std::uint32_t to_top =
        fwd.add_nexthop(trio::NexthopToPfe{top_pfe});

    // First-level aggregators: PFE0 serves workers [0, half), PFE1 the
    // rest. Their results feed the top-level PFE directly over the
    // fabric, stamped with the PFE's own source id.
    for (int level = 0; level < 2; ++level) {
      TrioMlApp& app = make_app(level);
      TrioMlApp::JobSetup job;
      job.job_id = config_.job_id;
      const int begin = level == 0 ? 0 : half;
      const int end = level == 0 ? half : config_.num_workers;
      for (int i = begin; i < end; ++i) {
        job.src_ids.push_back(static_cast<std::uint8_t>(i));
      }
      job.block_grad_max = config_.grads_per_packet;
      job.block_exp_ms = config_.block_exp_ms;
      job.out_src = router_ip;
      job.out_dst = router_ip;  // unused: fabric delivery bypasses IP
      job.out_nh = to_top;
      job.out_src_id = static_cast<std::uint8_t>(level);
      app.configure_job(job);
    }

    // Top-level aggregator: sees the two first-level PFEs as sources 0
    // and 1 and multicasts the final result to every worker.
    TrioMlApp& top = make_app(top_pfe);
    TrioMlApp::JobSetup job;
    job.job_id = config_.job_id;
    job.src_ids = {0, 1};
    job.block_grad_max = config_.grads_per_packet;
    job.block_exp_ms = config_.block_exp_ms;
    job.out_src = router_ip;
    job.out_dst = mcast_group;
    job.out_nh = group_nh;
    top.configure_job(job);
  }

  // --- Links and workers ----------------------------------------------------
  for (int i = 0; i < config_.num_workers; ++i) {
    auto link = std::make_unique<net::Link>(sim_, config_.link_gbps,
                                            config_.link_latency);
    TrioMlWorker::Config wc;
    wc.job_id = config_.job_id;
    wc.src_id = static_cast<std::uint8_t>(i);
    wc.ip = worker_ip(i);
    wc.mac = worker_mac(i);
    wc.agg_ip = router_ip;
    wc.window = config_.window;
    wc.grads_per_packet = config_.grads_per_packet;
    wc.expected_sources = static_cast<std::uint8_t>(config_.num_workers);
    auto worker = std::make_unique<TrioMlWorker>(sim_, wc, link->a_to_b());
    link->attach(*worker, 0, *router_, worker_port[static_cast<std::size_t>(i)]);
    if (config_.telemetry != nullptr) {
      link->instrument(config_.telemetry->metrics,
                       "link.worker" + std::to_string(i) + ".");
      worker->instrument(config_.telemetry->metrics, "worker.");
    }
    router_->attach_port(worker_port[static_cast<std::size_t>(i)],
                         link->b_to_a());
    links_.push_back(std::move(link));
    workers_.push_back(std::move(worker));
  }
}

TrioMlApp& Testbed::app(int pfe) {
  auto& slot = apps_.at(static_cast<std::size_t>(pfe));
  if (!slot) throw std::out_of_range("Testbed: no app on that PFE");
  return *slot;
}

std::vector<TrioMlApp*> Testbed::apps() {
  std::vector<TrioMlApp*> out;
  for (auto& a : apps_) {
    if (a) out.push_back(a.get());
  }
  return out;
}

void Testbed::start_straggler_detection(int threads, sim::Duration timeout) {
  for (TrioMlApp* app : apps()) {
    app->start_straggler_detection(threads, timeout);
  }
}

}  // namespace trioml
