#include "trioml/result_builder.hpp"

#include "trio/router.hpp"

namespace trioml {

ResultBuilder::ResultBuilder(TrioMlApp& app, Inputs inputs)
    : app_(app), in_(std::move(inputs)) {
  grad_bytes_ = std::size_t(in_.record.grad_cnt) * 4;
  // Pre-build the result packet's head: Eth/IP/UDP and the Trio-ML header
  // are reconstructed from the block and job records (paper §4 "Result
  // packet"). Gradients are appended chunk by chunk as they are read back
  // from the aggregation buffer.
  std::uint8_t job_id;
  std::uint16_t gen_id;
  std::uint32_t block_id;
  split_key(in_.key, job_id, gen_id, block_id);

  TrioMlHeader hdr;
  hdr.job_id = job_id;
  hdr.block_id = block_id;
  hdr.gen_id = gen_id;
  hdr.grad_cnt = in_.record.grad_cnt;
  hdr.src_id = in_.job.out_src_id;  // the aggregator's own source id
  hdr.src_cnt = in_.src_cnt;
  hdr.degraded = in_.degraded;
  hdr.age_op = in_.age_op;
  hdr.final_block = in_.final_block;

  const net::MacAddr router_mac{0x02, 0x00, 0x00, 0x00, 0x00, 0xfe};
  const net::MacAddr mcast_mac{0x01, 0x00, 0x5e, 0x00, 0x00, 0x01};
  frame_ = build_aggregation_frame(
      router_mac, mcast_mac, net::Ipv4Addr(in_.job.out_src_addr),
      net::Ipv4Addr(in_.job.out_dst_addr), kTrioMlUdpPort, hdr,
      std::span<const std::uint32_t>{});
  // Reserve space for the gradients (zero-filled until chunks land).
  frame_.resize(kGradOff + grad_bytes_);
  // build_aggregation_frame stamps grad_cnt from the (empty) span; the
  // result header must advertise the block's gradient count.
  hdr.grad_cnt = in_.record.grad_cnt;
  hdr.write(frame_, kTrioMlHdrOff);
  // The frame length fields must cover the gradients.
  net::Ipv4Header ip = net::Ipv4Header::parse(frame_, net::UdpFrameLayout::kIpOff);
  ip.total_length = static_cast<std::uint16_t>(
      net::Ipv4Header::kSize + net::UdpHeader::kSize + TrioMlHeader::kSize +
      grad_bytes_);
  ip.write(frame_, net::UdpFrameLayout::kIpOff);
  net::UdpHeader udp = net::UdpHeader::parse(frame_, net::UdpFrameLayout::kUdpOff);
  udp.length = static_cast<std::uint16_t>(net::UdpHeader::kSize +
                                          TrioMlHeader::kSize + grad_bytes_);
  udp.write(frame_, net::UdpFrameLayout::kUdpOff);
}

std::optional<trio::Action> ResultBuilder::step(trio::ThreadContext& ctx) {
  switch (state_) {
    case State::kReadChunk: {
      if (chunk_outstanding_) {
        // A chunk of aggregated gradients arrived: copy into the frame
        // and write it to the packet buffer (PMEM) as the new tail.
        frame_.write(kGradOff + offset_, ctx.reply.data);
        trio::ActAsyncXtxn pmem;
        pmem.req.op = trio::XtxnOp::kPmemWrite;
        pmem.req.data = ctx.reply.data;
        pmem.instructions = 4;
        offset_ += ctx.reply.data.size();
        chunk_outstanding_ = false;
        return pmem;
      }
      if (offset_ >= grad_bytes_) {
        state_ = State::kEmit;
        return step(ctx);
      }
      const std::size_t len =
          std::min<std::size_t>(256, grad_bytes_ - offset_);
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = in_.record.aggr_paddr + offset_;
      rd.req.len = static_cast<std::uint32_t>(len);
      // The copy loop is cheap — "it uses less processing time, because it
      // is executed once per block" (§6.3).
      rd.instructions = 8;
      chunk_outstanding_ = true;
      return rd;
    }
    case State::kEmit: {
      // Free the slab (control-plane bookkeeping; the hash record was
      // deleted by the caller before result generation began).
      app_.free_slab_by_buffer(in_.record.aggr_paddr);

      ++app_.stats().results_emitted;
      app_.stats().gradients_aggregated += in_.record.grad_cnt;

      trio::ActEmitPacket emit;
      emit.pkt = net::Packet::make(frame_);
      emit.nexthop_id = in_.job.out_nh_addr;
      emit.instructions = 10;
      state_ = State::kDone;
      return emit;
    }
    case State::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace trioml
