#include "trioml/aggregator.hpp"

#include <bit>

#include "trio/router.hpp"

namespace trioml {

namespace {

std::uint32_t le32(const std::vector<std::uint8_t>& v, std::size_t off) {
  return std::uint32_t(v[off]) | std::uint32_t(v[off + 1]) << 8 |
         std::uint32_t(v[off + 2]) << 16 | std::uint32_t(v[off + 3]) << 24;
}

}  // namespace

bool is_aggregation_frame(const net::Buffer& frame) {
  if (frame.size() < kGradOff) return false;
  const auto eth = net::EthernetHeader::parse(frame, 0);
  if (eth.ether_type != net::EthernetHeader::kEtherTypeIpv4) return false;
  const auto ip = net::Ipv4Header::parse(frame, net::UdpFrameLayout::kIpOff);
  if (ip.protocol != net::Ipv4Header::kProtoUdp || ip.ihl != 5) return false;
  const auto udp = net::UdpHeader::parse(frame, net::UdpFrameLayout::kUdpOff);
  return udp.dst_port == kTrioMlUdpPort;
}

trio::ProgramFactory make_aggregation_factory(TrioMlApp& app) {
  return [&app](const net::Packet& pkt) -> std::unique_ptr<trio::PpeProgram> {
    if (is_aggregation_frame(pkt.frame())) {
      const auto& addr = app.aggregation_address();
      if (!addr || net::Ipv4Header::parse(pkt.frame(),
                                          net::UdpFrameLayout::kIpOff)
                           .dst == *addr) {
        return std::make_unique<AggregationProgram>(app);
      }
      // Aggregation-port traffic addressed elsewhere (e.g. an upstream
      // aggregator's multicast result in transit) is plain forwarding.
    }
    return app.pfe().router().make_forwarding_program(pkt);
  };
}

// Queue discipline: synchronous actions are only ever queued as the LAST
// element of pending_, so when a sync reply re-enters step() the queue is
// empty and do_step() handles the reply for the current state.

trio::Action AggregationProgram::step(trio::ThreadContext& ctx) {
  if (!pending_.empty()) {
    trio::Action a = std::move(pending_.front());
    pending_.pop_front();
    return a;
  }
  return do_step(ctx);
}

trio::Action AggregationProgram::pop_pending() {
  trio::Action a = std::move(pending_.front());
  pending_.pop_front();
  return a;
}

trio::Action AggregationProgram::finish(trio::ThreadContext& ctx,
                                        std::uint32_t instructions) {
  // "Time each aggregation packet spends in Trio" (§6.3): arrival at the
  // PFE to thread completion.
  const sim::Time now = app_.pfe().router().simulator().now();
  const sim::Duration in_trio = now - ctx.packet->arrival_time();
  app_.stats().packet_latency_us.add(in_trio.us());
  app_.packet_latency_hist().record(in_trio.ns());
  state_ = State::kExit;
  return trio::ActExit{instructions};
}

void AggregationProgram::queue_add_slices(std::size_t grad_byte_off,
                                          std::span<const std::uint8_t> data,
                                          std::uint32_t instructions) {
  // The RMW engines sum 32-bit gradients into the aggregation buffer; the
  // adds are sliced at the 64-byte bank-interleave granule so consecutive
  // slices land on different engines and proceed in parallel (§2.3).
  const std::uint64_t base = record_.aggr_paddr + grad_byte_off;
  std::size_t off = 0;
  bool first = true;
  while (off < data.size()) {
    const std::uint64_t addr = base + off;
    const std::size_t to_boundary = 64 - static_cast<std::size_t>(addr % 64);
    const std::size_t len = std::min(to_boundary, data.size() - off);
    trio::ActAsyncXtxn add;
    add.req.op = trio::XtxnOp::kAddVec32;
    add.req.addr = addr;
    add.req.data.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                        data.begin() + static_cast<std::ptrdiff_t>(off + len));
    add.instructions = first ? instructions : 1;
    first = false;
    pending_.push_back(std::move(add));
    off += len;
  }
}

trio::Action AggregationProgram::claim_source(trio::ThreadContext& ctx) {
  // Claim this source BEFORE aggregating. The rcvd_mask bit is only set
  // after the adds drain (completion depends on that order), so two
  // threads for the same source — a retransmission racing the original,
  // e.g. released together by a router-stall replay — can both pass the
  // snapshot check above and double the contribution. The slab's unused
  // rcvd_mask_1 word (fast path serves <= 64 sources) is the claim mask:
  // exactly one FetchOr64 per source sees its bit clear.
  if (hdr_.src_id / 64 != 0) return begin_aggregation(ctx);
  trio::ActSyncXtxn claim;
  claim.req.op = trio::XtxnOp::kFetchOr64;
  claim.req.addr = record_addr_ + BlockRecord::kRcvdMask0Off + 8;
  claim.req.arg0 = 1ull << (hdr_.src_id % 64);
  claim.instructions = 2;
  state_ = State::kClaimReply;
  return claim;
}

trio::Action AggregationProgram::begin_aggregation(trio::ThreadContext& ctx) {
  grad_bytes_ = std::size_t(hdr_.grad_cnt) * 4;
  const std::size_t head_size = ctx.packet->head_size();
  const std::size_t head_avail =
      head_size > kGradOff ? std::min(grad_bytes_, head_size - kGradOff) : 0;
  // Gradients may straddle the head/tail split (the head holds 192-54 =
  // 138 gradient bytes — not 32-bit aligned). Aggregate whole gradients
  // from the head; the straddling bytes are carried into the first tail
  // chunk.
  const std::size_t head_aligned = head_avail & ~std::size_t{3};
  carry_.clear();
  stream_pos_ = head_aligned;
  tail_off_ = 0;
  tail_total_ = grad_bytes_ - head_avail;
  if (head_avail > head_aligned) {
    const auto straddle =
        ctx.lmem.view(kGradOff + head_aligned, head_avail - head_aligned);
    carry_.assign(straddle.begin(), straddle.end());
  }

  if (head_aligned > 0) {
    // Phase one: gradients already in LMEM with the head (Fig 10).
    const auto head_grads = ctx.lmem.view(kGradOff, head_aligned);
    const auto instr = static_cast<std::uint32_t>(
        head_aligned / 4 * 12 / 10 + 4);  // ~1.2 instr/gradient
    queue_add_slices(0, head_grads, instr);
  }
  return next_tail_action(ctx);
}

trio::Action AggregationProgram::next_tail_action(trio::ThreadContext&) {
  if (!pending_.empty()) {
    state_ = State::kAggregate;
    return pop_pending();
  }
  if (tail_off_ < tail_total_) {
    // Phase two: read the next 64-byte chunk of the tail into LMEM.
    const auto& cal = app_.pfe().cal();
    const std::size_t len =
        std::min(cal.tail_chunk_bytes, tail_total_ - tail_off_);
    trio::ActSyncXtxn rd;
    rd.req.op = trio::XtxnOp::kTailRead;
    rd.req.addr = tail_off_;  // gradients are the last bytes of the frame
    rd.req.len = static_cast<std::uint32_t>(len);
    rd.instructions = 2;
    state_ = State::kTailChunk;
    return rd;
  }
  // All gradient adds issued: wait for the RMW engines to drain before
  // accounting this source (result correctness depends on this order).
  state_ = State::kJoined;
  return trio::ActJoinAsync{2};
}

trio::Action AggregationProgram::do_step(trio::ThreadContext& ctx) {
  switch (state_) {
    case State::kParse: {
      hdr_ = TrioMlHeader::parse(ctx.lmem, kTrioMlHdrOff);
      if (hdr_.age_op >= 0xE) {
        // Classifier notification packets share the port but carry no
        // gradients; they are not aggregation traffic.
        ++app_.stats().notices_ignored;
        return finish(ctx, 2);
      }
      key_ = block_key(hdr_.job_id, hdr_.gen_id, hdr_.block_id);
      ++app_.stats().packets;
      trio::ActSyncXtxn lu;
      lu.req.op = trio::XtxnOp::kHashLookup;
      lu.req.arg0 = key_;
      lu.instructions = 12;  // parse + key formation
      state_ = State::kBlockLookup;
      return lu;
    }

    case State::kRetryLookup: {
      if (ctx.reply.ok) {
        record_addr_ = ctx.reply.value;
        trio::ActSyncXtxn rd;
        rd.req.op = trio::XtxnOp::kRead;
        rd.req.addr = record_addr_;
        rd.req.len = kBlockSlabBytes;
        rd.instructions = 3;
        state_ = State::kReadBlock;
        return rd;
      }
      return finish(ctx, 2);  // truly no memory for a new block
    }

    case State::kBlockLookup: {
      if (ctx.reply.ok) {
        record_addr_ = ctx.reply.value;
        trio::ActSyncXtxn rd;
        rd.req.op = trio::XtxnOp::kRead;
        rd.req.addr = record_addr_;
        rd.req.len = kBlockSlabBytes;
        rd.instructions = 3;
        state_ = State::kReadBlock;
        return rd;
      }
      trio::ActSyncXtxn lu;
      lu.req.op = trio::XtxnOp::kHashLookup;
      lu.req.arg0 = job_key(hdr_.job_id);
      lu.instructions = 4;
      state_ = State::kJobLookup;
      return lu;
    }

    case State::kReadBlock: {
      record_ = BlockRecord::unpack(ctx.reply.data);
      job_addr_ = record_.job_ctx_paddr;
      job_src_cnt_ = ctx.reply.data[63];
      const std::uint64_t bit = 1ull << (hdr_.src_id % 64);
      if ((record_.rcvd_mask[hdr_.src_id / 64] & bit) != 0) {
        // Retransmission: this source already contributed (§4 "recognize
        // retransmissions by the servers").
        ++app_.stats().duplicates;
        return finish(ctx, 4);
      }
      return claim_source(ctx);
    }

    case State::kJobLookup: {
      if (!ctx.reply.ok) {
        ++app_.stats().dropped_no_job;
        return finish(ctx, 2);
      }
      job_addr_ = ctx.reply.value;
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = job_addr_;
      rd.req.len = JobRecord::kSize;
      rd.instructions = 3;
      state_ = State::kReadJob;
      return rd;
    }

    case State::kReadJob: {
      job_ = JobRecord::unpack(ctx.reply.data);
      have_job_ = true;
      job_src_cnt_ = job_.src_cnt;
      if (hdr_.grad_cnt > job_.block_grad_max) {
        ++app_.stats().dropped_no_job;
        return finish(ctx, 2);
      }
      // Enforce the job's concurrent-block cap before claiming memory
      // (Fig 17 block_cnt_max): atomically take an active-block slot.
      trio::ActSyncXtxn take;
      take.req.op = trio::XtxnOp::kFetchAdd32;
      take.req.addr = app_.job_active_counter_addr(hdr_.job_id);
      take.req.arg0 = 1;
      take.instructions = 2;
      state_ = State::kCapCheck;
      return take;
    }

    case State::kCapCheck: {
      if (ctx.reply.value >= job_.block_cnt_max) {
        // Over the cap: release the slot and drop (the sender's
        // retransmission recovers once blocks complete or age out).
        trio::ActAsyncXtxn giveback;
        giveback.req.op = trio::XtxnOp::kWrite;  // placeholder, replaced below
        giveback.req.op = trio::XtxnOp::kAddVec32;
        giveback.req.addr = app_.job_active_counter_addr(hdr_.job_id);
        giveback.req.data = {0xff, 0xff, 0xff, 0xff};  // += -1 (mod 2^32)
        giveback.instructions = 1;
        pending_.push_back(std::move(giveback));
        ++app_.stats().blocks_capped;
        state_ = State::kFinish;
        return pop_pending();
      }
      auto slab = app_.alloc_slab();
      if (!slab) {
        // Out of slabs — most commonly because a concurrent creator of
        // THIS block took the last one. Give back the active slot and
        // retry the lookup once; if the block genuinely doesn't exist,
        // drop (the sender's retransmission recovers).
        trio::ActAsyncXtxn dec;
        dec.req.op = trio::XtxnOp::kAddVec32;
        dec.req.addr = app_.job_active_counter_addr(hdr_.job_id);
        dec.req.data = {0xff, 0xff, 0xff, 0xff};
        dec.instructions = 1;
        pending_.push_back(std::move(dec));
        if (!retried_create_) {
          retried_create_ = true;
          trio::ActSyncXtxn lu;
          lu.req.op = trio::XtxnOp::kHashLookup;
          lu.req.arg0 = key_;
          lu.instructions = 2;
          pending_.push_back(std::move(lu));
          state_ = State::kRetryLookup;
          return pop_pending();
        }
        state_ = State::kFinish;
        return pop_pending();
      }
      record_addr_ = slab->record_addr;

      record_ = BlockRecord{};
      record_.block_exp = job_.block_exp;
      record_.block_start_time = static_cast<std::uint64_t>(
          app_.pfe().router().simulator().now().ns());
      record_.job_ctx_paddr = static_cast<std::uint32_t>(job_addr_);
      record_.aggr_paddr = static_cast<std::uint32_t>(slab->buffer_addr);
      record_.grad_cnt = hdr_.grad_cnt & 0xfff;

      auto bytes = record_.pack();
      bytes.resize(kBlockSlabBytes, 0);
      bytes[63] = job_.src_cnt;  // scratch: expected contributor count
      trio::ActAsyncXtxn wr;
      wr.req.op = trio::XtxnOp::kWrite;
      wr.req.addr = record_addr_;
      wr.req.data = std::move(bytes);
      wr.instructions = 12;
      pending_.push_back(std::move(wr));

      trio::ActSyncXtxn ins;
      ins.req.op = trio::XtxnOp::kHashInsert;
      ins.req.arg0 = key_;
      ins.req.arg1 = record_addr_;
      ins.instructions = 4;
      pending_.push_back(std::move(ins));
      state_ = State::kInsert;
      return pop_pending();
    }

    case State::kInsert: {
      if (!ctx.reply.ok) {
        // Lost the creation race: another thread inserted this block
        // concurrently. Release our slab and active-block slot, then
        // take the found path.
        app_.free_slab(TrioMlApp::Slab{
            record_addr_, app_.buffer_of_record(record_addr_)});
        trio::ActAsyncXtxn dec;
        dec.req.op = trio::XtxnOp::kAddVec32;
        dec.req.addr = app_.job_active_counter_addr(hdr_.job_id);
        dec.req.data = {0xff, 0xff, 0xff, 0xff};
        dec.instructions = 1;
        pending_.push_back(std::move(dec));
        trio::ActSyncXtxn lu;
        lu.req.op = trio::XtxnOp::kHashLookup;
        lu.req.arg0 = key_;
        lu.instructions = 2;
        pending_.push_back(std::move(lu));
        state_ = State::kBlockLookup;
        return pop_pending();
      }
      ++app_.stats().blocks_created;
      return claim_source(ctx);
    }

    case State::kClaimReply: {
      if ((ctx.reply.value & (1ull << (hdr_.src_id % 64))) != 0) {
        // Lost the claim race: a concurrent thread for this same source
        // is already aggregating (or finished after our record snapshot).
        ++app_.stats().duplicates;
        return finish(ctx, 2);
      }
      return begin_aggregation(ctx);
    }

    case State::kAggregate:
      return next_tail_action(ctx);

    case State::kTailChunk: {
      // Chunk landed in LMEM: add its gradients into the aggregation
      // buffer (~1.2 run-time instructions per gradient, §6.3). Any
      // bytes carried over from the head/previous chunk are prepended so
      // adds stay 32-bit aligned.
      tail_off_ += ctx.reply.data.size();
      carry_.insert(carry_.end(), ctx.reply.data.begin(),
                    ctx.reply.data.end());
      const std::size_t aligned = carry_.size() & ~std::size_t{3};
      if (aligned > 0) {
        const auto instr =
            static_cast<std::uint32_t>(aligned / 4 * 12 / 10 + 1);
        queue_add_slices(stream_pos_,
                         std::span<const std::uint8_t>(carry_.data(), aligned),
                         instr);
        stream_pos_ += aligned;
        carry_.erase(carry_.begin(),
                     carry_.begin() + static_cast<std::ptrdiff_t>(aligned));
      }
      return next_tail_action(ctx);
    }

    case State::kJoined: {
      // All adds drained. Accumulate the contributor count (hierarchical
      // aggregation sums child src_cnts; leaf workers send src_cnt = 1),
      // then take this source's bit in the received mask.
      if (hdr_.degraded) {
        trio::ActAsyncXtxn dg;
        dg.req.op = trio::XtxnOp::kWrite;
        dg.req.addr = record_addr_ + kDegradedFlagOff;
        dg.req.data = {1};
        dg.instructions = 1;
        pending_.push_back(std::move(dg));
      }
      trio::ActSyncXtxn add;
      add.req.op = trio::XtxnOp::kFetchAdd32;
      add.req.addr = record_addr_ + kSrcCntAccumOff;
      add.req.arg0 = hdr_.src_cnt == 0 ? 1 : hdr_.src_cnt;
      add.instructions = 2;
      pending_.push_back(std::move(add));
      state_ = State::kAccumReply;
      return pop_pending();
    }

    case State::kAccumReply: {
      trio::ActSyncXtxn orq;
      orq.req.op = trio::XtxnOp::kFetchOr64;
      orq.req.addr = record_addr_ + BlockRecord::kRcvdMask0Off +
                     std::uint64_t(hdr_.src_id / 64) * 8;
      orq.req.arg0 = 1ull << (hdr_.src_id % 64);
      orq.instructions = 2;
      state_ = State::kMaskReply;
      return orq;
    }

    case State::kMaskReply: {
      const std::uint64_t new_mask =
          ctx.reply.value | (1ull << (hdr_.src_id % 64));
      const int count = std::popcount(new_mask);
      // Keep the record's rcvd_cnt field current (posted byte write).
      trio::ActAsyncXtxn cnt;
      cnt.req.op = trio::XtxnOp::kWrite;
      cnt.req.addr = record_addr_ + BlockRecord::kRcvdCntOff;
      cnt.req.data = {static_cast<std::uint8_t>(count)};
      cnt.instructions = 1;
      pending_.push_back(std::move(cnt));

      // Jobs with more than 64 sources would consult rcvd_mask_1..3; the
      // datapath fast path serves <= 64 sources (masks 1..3 stay zero).
      if (hdr_.src_id / 64 != 0 || count < job_src_cnt_) {
        state_ = State::kFinish;
        return pop_pending();
      }
      // Complete: atomically claim the block by deleting its hash record
      // (an aging timer thread may race us — exactly one side wins). The
      // value guard keeps a thread whose record was dropped by a fault
      // from deleting a block re-created under the same key.
      trio::ActSyncXtxn del;
      del.req.op = trio::XtxnOp::kHashDelete;
      del.req.arg0 = key_;
      del.req.arg1 = record_addr_;
      del.instructions = 3;
      pending_.push_back(std::move(del));
      state_ = State::kDeleted;
      return pop_pending();
    }

    case State::kDeleted: {
      if (!ctx.reply.ok) {
        // A timer thread aged the block concurrently and owns it now.
        return finish(ctx, 2);
      }
      ++app_.stats().blocks_completed;
      {
        // Release the job's active-block slot (posted decrement).
        trio::ActAsyncXtxn dec;
        dec.req.op = trio::XtxnOp::kAddVec32;
        dec.req.addr = app_.job_active_counter_addr(hdr_.job_id);
        dec.req.data = {0xff, 0xff, 0xff, 0xff};
        dec.instructions = 1;
        pending_.push_back(std::move(dec));
      }
      const sim::Time now = app_.pfe().router().simulator().now();
      const sim::Duration block_age =
          now - sim::Time(static_cast<std::int64_t>(record_.block_start_time));
      app_.stats().block_latency_us.add(block_age.us());
      app_.block_latency_hist().record(block_age.ns());
      if (have_job_) {
        state_ = State::kScratch;
      } else {
        state_ = State::kJobForResult;
        trio::ActSyncXtxn rd;
        rd.req.op = trio::XtxnOp::kRead;
        rd.req.addr = job_addr_;
        rd.req.len = JobRecord::kSize;
        rd.instructions = 2;
        return rd;
      }
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = record_addr_ + 56;
      rd.req.len = 8;
      rd.instructions = 2;
      return rd;
    }

    case State::kJobForResult: {
      job_ = JobRecord::unpack(ctx.reply.data);
      have_job_ = true;
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = record_addr_ + 56;
      rd.req.len = 8;
      rd.instructions = 2;
      state_ = State::kScratch;
      return rd;
    }

    case State::kScratch: {
      accum_src_cnt_ = static_cast<std::uint8_t>(le32(ctx.reply.data, 2));
      scratch_degraded_ = ctx.reply.data[6] != 0;

      // Per-job Packet/Byte counter: one block completed, grad bytes.
      trio::ActAsyncXtxn ctr;
      ctr.req.op = trio::XtxnOp::kCounterInc;
      ctr.req.addr = app_.job_counter_addr(hdr_.job_id);
      ctr.req.arg0 = std::uint64_t(record_.grad_cnt) * 4;
      ctr.instructions = 1;
      pending_.push_back(std::move(ctr));

      ResultBuilder::Inputs in;
      in.key = key_;
      in.record = record_;
      in.job = job_;
      in.src_cnt = accum_src_cnt_;
      in.degraded = scratch_degraded_;
      in.age_op = 0;
      in.final_block = hdr_.final_block;
      builder_.emplace(app_, std::move(in));
      state_ = State::kResult;
      return pop_pending();
    }

    case State::kResult: {
      auto action = builder_->step(ctx);
      if (action) return std::move(*action);
      return finish(ctx, 2);
    }

    case State::kFinish:
      return finish(ctx, 2);

    case State::kExit:
      return trio::ActExit{1};
  }
  return trio::ActExit{1};
}

}  // namespace trioml
