// TrioMlApp: the per-PFE in-network aggregation application (paper §4-§5).
//
// Owns the control-plane side — job records written into the Shared
// Memory System and the hash table, the pre-allocated pool of block slabs
// (record + aggregation buffer), straggler-detection timer threads — and
// hands the PFE a program factory whose threads execute the aggregation
// workflow of Fig 10 packet by packet.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/headers.hpp"
#include "sim/stats.hpp"
#include "telemetry/metrics.hpp"
#include "trio/pfe.hpp"
#include "trioml/records.hpp"
#include "trioml/wire_format.hpp"

namespace trioml {

class TrioMlApp {
 public:
  struct Config {
    /// Slabs pre-allocated for the datapath (each = 64 B record slab +
    /// a 4 KiB aggregation buffer in DMEM).
    std::size_t slab_pool = 8192;
  };

  explicit TrioMlApp(trio::Pfe& pfe) : TrioMlApp(pfe, Config()) {}
  TrioMlApp(trio::Pfe& pfe, Config config);

  /// One aggregation job (paper Fig 9 "Control Plane Job Records").
  struct JobSetup {
    std::uint8_t job_id = 1;
    std::vector<std::uint8_t> src_ids;  // bit positions in src_mask
    std::uint16_t block_grad_max = kMaxGradsPerPacket;
    std::uint16_t block_cnt_max = 4095;
    std::uint8_t block_exp_ms = 10;
    net::Ipv4Addr out_src;   // result packet source IP
    net::Ipv4Addr out_dst;   // result destination (usually multicast group)
    std::uint32_t out_nh = 0;  // nexthop id ("pointer to egress chain")
    std::uint8_t out_src_id = 0;  // src_id stamped on results (hierarchical)
  };

  /// Writes the job record into SMS + hash table. Call before traffic.
  void configure_job(const JobSetup& setup);
  /// Removes the job (records of in-flight blocks are left to age out).
  void remove_job(std::uint8_t job_id);

  /// Job ids currently configured on this app, ascending. The failover
  /// path iterates this to re-home *every* tenant (docs/jobs.md).
  std::vector<std::uint8_t> configured_jobs() const;
  bool has_job(std::uint8_t job_id) const {
    return job_records_.count(job_id) != 0;
  }

  /// Worst-case SMS bytes the job can occupy on one PFE: its control
  /// records plus block_cnt_max full slabs. The JobManager charges this
  /// against the tenant's SMS quota at admission, so an admitted job can
  /// never be starved of memory mid-run (docs/jobs.md).
  static std::uint64_t job_worst_case_bytes(const JobSetup& setup);

  /// Fault hook (src/faults/, docs/faults.md): models loss of the
  /// aggregation-bucket state — every active block record of `job_id` is
  /// dropped from the hash table, its slab freed (and the buffer zeroed,
  /// so re-created blocks start clean) and the job's active-block counter
  /// rewound. Contributions already absorbed into the dropped buckets are
  /// gone; workers whose blocks never complete recover by retransmitting,
  /// which re-creates the buckets from scratch. Returns the number of
  /// blocks dropped (also counted in Stats::blocks_lost_fault).
  std::size_t drop_active_blocks(std::uint8_t job_id);

  // --- Recovery hooks (src/recovery/, docs/recovery.md) ------------------
  /// Models hard state loss (router kill / power loss): bumps the hash
  /// table's generation — the O(1) hardware invalidation point, after
  /// which no datapath thread can look up or claim a pre-kill block — then
  /// sweeps the stale records, freeing their slabs and rewinding each
  /// job's active-block counter. Job records are pinned and survive.
  /// Returns the number of blocks invalidated (counted in
  /// Stats::blocks_lost_fault).
  std::size_t invalidate_active_blocks();

  /// Failover re-homing: patches the job record's egress nexthop in SMS
  /// without touching anything else, so the job keeps running and even
  /// blocks already aggregating emit their results via the new nexthop
  /// (the record is read at result-emission time). Returns false if the
  /// job is unknown.
  bool retarget_job_output(std::uint8_t job_id, std::uint32_t out_nh);

  /// Installs the aggregation program factory on the PFE. Non-aggregation
  /// packets fall back to the router's IP forwarding program.
  void install();

  /// Aggregation packets are "addressed to the router" (§4): when set,
  /// only UDP/12000 packets whose destination IP equals this address are
  /// aggregated; everything else (e.g. a multicast result transiting from
  /// an upstream aggregator) takes the forwarding path. Unset = match on
  /// the UDP port alone.
  void set_aggregation_address(net::Ipv4Addr addr) { agg_addr_ = addr; }
  const std::optional<net::Ipv4Addr>& aggregation_address() const {
    return agg_addr_;
  }

  /// Launches `threads` straggler-detection timer threads; each scans
  /// 1/threads of the hash table, giving an aging timeout of `timeout`
  /// (detection happens within [timeout, 2*timeout] of the last packet).
  void start_straggler_detection(int threads, sim::Duration timeout);
  void stop_straggler_detection();

  // --- §5 advanced mitigation: per-source profiling + classification ----
  /// Allocates per-source straggler event counters and classifier state
  /// for the job; the detection scan then charges missing sources on
  /// every aged block.
  void enable_straggler_profiling(std::uint8_t job_id);
  bool profiling_enabled(std::uint8_t job_id) const;
  /// 16-byte Packet/Byte event counter for (job, src); 0 when disabled.
  std::uint64_t straggler_event_counter_addr(std::uint8_t job_id,
                                             std::uint8_t src) const;
  /// 16-byte classifier window state for (job, src); 0 when disabled.
  std::uint64_t classifier_state_addr(std::uint8_t job_id,
                                      std::uint8_t src) const;
  std::uint64_t job_record_addr(std::uint8_t job_id) const;
  /// Starts the infrequent classification timer group; returns its id.
  int start_straggler_classification(std::uint8_t job_id,
                                     sim::Duration period,
                                     int permanent_after_windows = 3);

  // --- Datapath services (used by the aggregation / scan programs) -------
  struct Slab {
    std::uint64_t record_addr = 0;
    std::uint64_t buffer_addr = 0;
  };
  std::optional<Slab> alloc_slab();
  std::size_t free_slab_count() const { return free_slabs_.size(); }
  std::size_t slab_pool_size() const { return config_.slab_pool; }
  void free_slab(const Slab& slab);
  /// Frees via the aggregation-buffer address (slabs are paired 1:1).
  void free_slab_by_buffer(std::uint64_t buffer_addr);
  /// Fault-path free (bucket drops): in-flight PPE threads may still
  /// hold this slab's addresses, so it only rejoins the free pool once
  /// the PFE has drained to zero active threads — immediate reuse would
  /// let a stale thread's RMWs corrupt the next block allocated here.
  void quarantine_slab(const Slab& slab);
  /// Buffer address belonging to a record address (slabs are paired).
  std::uint64_t buffer_of_record(std::uint64_t record_addr) const;

  trio::Pfe& pfe() { return pfe_; }
  std::uint64_t job_counter_addr(std::uint8_t job_id) const;
  /// Word holding the job's current number of active blocks; the
  /// datapath FetchAdd32s it to enforce block_cnt_max (Fig 17: "control
  /// memory sharing across jobs by capping the maximum number of
  /// concurrent aggregation blocks").
  std::uint64_t job_active_counter_addr(std::uint8_t job_id) const;

  // --- Statistics ----------------------------------------------------------
  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t dropped_no_job = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t out_of_slabs = 0;
    std::uint64_t blocks_capped = 0;  // dropped: job at block_cnt_max
    std::uint64_t blocks_created = 0;
    std::uint64_t blocks_completed = 0;
    std::uint64_t blocks_aged = 0;
    std::uint64_t blocks_lost_fault = 0;  // dropped by drop_active_blocks
    std::uint64_t results_emitted = 0;
    std::uint64_t gradients_aggregated = 0;
    std::uint64_t straggler_events = 0;        // per-source charges (§5)
    std::uint64_t straggler_notices_sent = 0;  // classifier notifications
    std::uint64_t notices_ignored = 0;         // notifications seen by the
                                               // aggregation datapath
    sim::Samples packet_latency_us;  // time each aggregation packet spends in Trio
    sim::Samples block_latency_us;   // first packet -> result emitted
  };
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// Registry histograms mirroring the latency Samples above
  /// (`pfe<N>.trioml.packet_latency_ns` / `.block_latency_ns`); live only
  /// when the router's registry is enabled.
  telemetry::Histogram packet_latency_hist() { return packet_latency_hist_; }
  telemetry::Histogram block_latency_hist() { return block_latency_hist_; }

 private:
  void schedule_slab_reclaim();

  trio::Pfe& pfe_;
  Config config_;
  std::vector<Slab> free_slabs_;
  std::vector<Slab> quarantined_slabs_;
  bool reclaim_scheduled_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> record_to_buffer_;
  std::unordered_map<std::uint64_t, std::uint64_t> buffer_to_record_;
  std::unordered_map<std::uint8_t, std::uint64_t> job_records_;
  std::unordered_map<std::uint8_t, std::uint64_t> job_counters_;
  std::unordered_map<std::uint8_t, std::uint64_t> job_active_counters_;
  struct Profiling {
    std::uint64_t events_base = 0;
    std::uint64_t state_base = 0;
  };
  std::unordered_map<std::uint8_t, Profiling> profiling_;
  std::optional<net::Ipv4Addr> agg_addr_;
  Stats stats_;
  telemetry::Histogram packet_latency_hist_;
  telemetry::Histogram block_latency_hist_;
};

}  // namespace trioml
