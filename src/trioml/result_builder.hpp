// Shared result-generation sub-machine (paper Fig 10, right side): builds
// an aggregation Result packet by looping over the DMEM aggregation
// buffer in 256-byte chunks — each iteration reads a chunk into LMEM and
// writes it out to the new packet's tail in the Packet Buffer (PMEM) —
// then hands the finished packet to forwarding via the job's nexthop.
//
// Used by both the per-packet aggregation program (block complete) and
// the timer-thread straggler scan (block aged out, degraded result).
#pragma once

#include <cstdint>
#include <optional>

#include "trio/program.hpp"
#include "trioml/app.hpp"
#include "trioml/records.hpp"

namespace trioml {

class ResultBuilder {
 public:
  struct Inputs {
    std::uint64_t key = 0;          // hash key of the block
    BlockRecord record;             // block record (already read)
    JobRecord job;                  // job record (already read)
    std::uint8_t src_cnt = 0;       // contributors (slab scratch accumulator)
    bool degraded = false;
    std::uint8_t age_op = 0;
    bool final_block = false;
  };

  ResultBuilder(TrioMlApp& app, Inputs inputs);

  /// Advances the builder. Returns the next action while running; nullopt
  /// once the result packet has been emitted (and the slab freed).
  std::optional<trio::Action> step(trio::ThreadContext& ctx);

  bool done() const { return state_ == State::kDone; }

 private:
  enum class State { kReadChunk, kEmit, kDone };

  TrioMlApp& app_;
  Inputs in_;
  State state_ = State::kReadChunk;
  std::size_t grad_bytes_ = 0;
  std::size_t offset_ = 0;  // bytes of gradients copied so far
  net::Buffer frame_;
  bool chunk_outstanding_ = false;
};

}  // namespace trioml
