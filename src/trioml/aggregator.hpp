// The Trio-ML aggregation program (paper Fig 10), one thread per packet.
//
// Workflow: parse -> look up the block record by (job_id, gen_id,
// block_id) -> create it on first packet (via the job record) -> aggregate
// gradients from the packet head, then from the tail in 64-byte chunks
// read from the MQSS -> join the outstanding RMW adds -> atomically OR
// this source into the received mask -> if this packet completed the
// block, delete the record and generate the Result packet.
//
// This is the native (C++) rendering of the ~60-instruction Microcode
// program described in §6.3; the instruction counts charged per action
// reproduce its measured cost structure (~1.2 run-time instructions per
// gradient in the tail loop).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "trio/program.hpp"
#include "trioml/app.hpp"
#include "trioml/records.hpp"
#include "trioml/result_builder.hpp"
#include "trioml/wire_format.hpp"

namespace trioml {

class AggregationProgram : public trio::PpeProgram {
 public:
  explicit AggregationProgram(TrioMlApp& app) : app_(app) {}

  trio::Action step(trio::ThreadContext& ctx) override;

 private:
  enum class State {
    kParse,
    kBlockLookup,
    kReadBlock,
    kJobLookup,
    kReadJob,
    kCapCheck,
    kRetryLookup,
    kInsert,
    kClaimReply,
    kAggregate,
    kTailChunk,
    kJoined,
    kAccumReply,
    kMaskReply,
    kDeleted,
    kJobForResult,
    kScratch,
    kResult,
    kFinish,
    kExit,
  };

  trio::Action do_step(trio::ThreadContext& ctx);
  trio::Action pop_pending();
  trio::Action claim_source(trio::ThreadContext& ctx);
  trio::Action begin_aggregation(trio::ThreadContext& ctx);
  trio::Action next_tail_action(trio::ThreadContext& ctx);
  trio::Action finish(trio::ThreadContext& ctx, std::uint32_t instructions);
  void queue_add_slices(std::size_t grad_byte_off,
                        std::span<const std::uint8_t> data,
                        std::uint32_t instructions);

  TrioMlApp& app_;
  State state_ = State::kParse;
  std::deque<trio::Action> pending_;

  TrioMlHeader hdr_;
  std::uint64_t key_ = 0;
  std::uint64_t record_addr_ = 0;
  std::uint64_t job_addr_ = 0;
  BlockRecord record_;
  JobRecord job_;
  bool have_job_ = false;
  std::uint8_t job_src_cnt_ = 0;  // slab scratch byte 63
  std::size_t grad_bytes_ = 0;
  std::size_t stream_pos_ = 0;   // gradient byte offset of the next add
  std::size_t tail_off_ = 0;     // tail bytes read so far
  std::size_t tail_total_ = 0;   // total tail bytes to read
  std::vector<std::uint8_t> carry_;  // bytes straddling chunk boundaries
  std::uint8_t accum_src_cnt_ = 0;
  bool scratch_degraded_ = false;
  bool retried_create_ = false;
  std::optional<ResultBuilder> builder_;
};

/// Program factory: Trio-ML aggregation for UDP port 12000, the router's
/// standard forwarding path for everything else.
trio::ProgramFactory make_aggregation_factory(TrioMlApp& app);

/// True when the frame is a Trio-ML aggregation packet.
bool is_aggregation_frame(const net::Buffer& frame);

}  // namespace trioml
