#include "trioml/records.hpp"

#include <stdexcept>

#include "microcode/bitfield.hpp"

namespace trioml {

namespace {

void put_le64(std::vector<std::uint8_t>& v, std::size_t off,
              std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    v[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(x >> (8 * i));
  }
}

std::uint64_t get_le64(const std::vector<std::uint8_t>& v, std::size_t off) {
  std::uint64_t x = 0;
  for (int i = 7; i >= 0; --i) {
    x = x << 8 | v[off + static_cast<std::size_t>(i)];
  }
  return x;
}

}  // namespace

std::vector<std::uint8_t> JobRecord::pack() const {
  net::Buffer buf(kSize);
  using microcode::write_bits;
  write_bits(buf, 0, 16, block_curr_cnt);
  write_bits(buf, 16, 12, block_cnt_max);
  write_bits(buf, 28, 12, block_grad_max);
  write_bits(buf, 40, 8, block_exp);
  write_bits(buf, 48, 32, block_total_cnt);
  write_bits(buf, 80, 32, out_src_addr);
  write_bits(buf, 112, 32, out_dst_addr);
  write_bits(buf, 144, 32, out_nh_addr);
  write_bits(buf, 176, 8, out_src_id);  // stored in the 24-bit padding
  write_bits(buf, 200, 8, src_cnt);
  std::vector<std::uint8_t> out(buf.bytes().begin(), buf.bytes().end());
  for (int i = 0; i < 4; ++i) {
    put_le64(out, 26 + static_cast<std::size_t>(i) * 8, src_mask[i]);
  }
  return out;
}

JobRecord JobRecord::unpack(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kSize) {
    throw std::invalid_argument("JobRecord::unpack: short buffer");
  }
  net::Buffer buf(std::vector<std::uint8_t>(bytes.begin(),
                                            bytes.begin() + kSize));
  using microcode::read_bits;
  JobRecord r;
  r.block_curr_cnt = static_cast<std::uint16_t>(read_bits(buf, 0, 16));
  r.block_cnt_max = static_cast<std::uint16_t>(read_bits(buf, 16, 12));
  r.block_grad_max = static_cast<std::uint16_t>(read_bits(buf, 28, 12));
  r.block_exp = static_cast<std::uint8_t>(read_bits(buf, 40, 8));
  r.block_total_cnt = static_cast<std::uint32_t>(read_bits(buf, 48, 32));
  r.out_src_addr = static_cast<std::uint32_t>(read_bits(buf, 80, 32));
  r.out_dst_addr = static_cast<std::uint32_t>(read_bits(buf, 112, 32));
  r.out_nh_addr = static_cast<std::uint32_t>(read_bits(buf, 144, 32));
  r.out_src_id = static_cast<std::uint8_t>(read_bits(buf, 176, 8));
  r.src_cnt = static_cast<std::uint8_t>(read_bits(buf, 200, 8));
  for (int i = 0; i < 4; ++i) {
    r.src_mask[i] = get_le64(bytes, 26 + static_cast<std::size_t>(i) * 8);
  }
  return r;
}

std::vector<std::uint8_t> BlockRecord::pack() const {
  net::Buffer buf(kSize);
  using microcode::write_bits;
  write_bits(buf, 0, 8, block_exp);
  write_bits(buf, 8, 8, block_age);
  write_bits(buf, 16, 64, block_start_time);
  write_bits(buf, 80, 32, job_ctx_paddr);
  write_bits(buf, 112, 32, aggr_paddr);
  // 20 pad bits at 144.
  write_bits(buf, 164, 12, grad_cnt);
  // 24 pad bits at 176.
  write_bits(buf, 200, 8, rcvd_cnt);
  std::vector<std::uint8_t> out(buf.bytes().begin(), buf.bytes().end());
  for (int i = 0; i < 4; ++i) {
    put_le64(out, kRcvdMask0Off + static_cast<std::size_t>(i) * 8,
             rcvd_mask[i]);
  }
  return out;
}

BlockRecord BlockRecord::unpack(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kSize) {
    throw std::invalid_argument("BlockRecord::unpack: short buffer");
  }
  net::Buffer buf(std::vector<std::uint8_t>(bytes.begin(),
                                            bytes.begin() + kSize));
  using microcode::read_bits;
  BlockRecord r;
  r.block_exp = static_cast<std::uint8_t>(read_bits(buf, 0, 8));
  r.block_age = static_cast<std::uint8_t>(read_bits(buf, 8, 8));
  r.block_start_time = read_bits(buf, 16, 64);
  r.job_ctx_paddr = static_cast<std::uint32_t>(read_bits(buf, 80, 32));
  r.aggr_paddr = static_cast<std::uint32_t>(read_bits(buf, 112, 32));
  r.grad_cnt = static_cast<std::uint16_t>(read_bits(buf, 164, 12));
  r.rcvd_cnt = static_cast<std::uint8_t>(read_bits(buf, 200, 8));
  for (int i = 0; i < 4; ++i) {
    r.rcvd_mask[i] =
        get_le64(bytes, kRcvdMask0Off + static_cast<std::size_t>(i) * 8);
  }
  return r;
}

std::uint64_t block_key(std::uint8_t job_id, std::uint16_t gen_id,
                        std::uint32_t block_id) {
  return std::uint64_t(job_id) << 48 | std::uint64_t(gen_id) << 32 | block_id;
}

std::uint64_t job_key(std::uint8_t job_id) {
  return std::uint64_t(job_id) << 48 | 0xffffffffull;
}

bool is_job_key(std::uint64_t key) {
  return (key & 0xffffffffull) == 0xffffffffull;
}

void split_key(std::uint64_t key, std::uint8_t& job_id, std::uint16_t& gen_id,
               std::uint32_t& block_id) {
  job_id = static_cast<std::uint8_t>(key >> 48);
  gen_id = static_cast<std::uint16_t>(key >> 32);
  block_id = static_cast<std::uint32_t>(key);
}

}  // namespace trioml
