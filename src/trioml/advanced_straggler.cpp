#include "trioml/advanced_straggler.hpp"

#include "trio/router.hpp"
#include "trioml/wire_format.hpp"

namespace trioml {

namespace {

std::uint64_t le64(const std::vector<std::uint8_t>& v, std::size_t off) {
  std::uint64_t x = 0;
  for (int i = 7; i >= 0; --i) {
    x = x << 8 | (off + static_cast<std::size_t>(i) < v.size()
                      ? v[off + static_cast<std::size_t>(i)]
                      : 0);
  }
  return x;
}

}  // namespace

trio::Action StragglerClassifierProgram::step(trio::ThreadContext& ctx) {
  if (!pending_.empty()) {
    trio::Action a = std::move(pending_.front());
    pending_.pop_front();
    return a;
  }
  return do_step(ctx);
}

trio::Action StragglerClassifierProgram::next_source(
    trio::ThreadContext& ctx) {
  if (next_ >= sources_.size()) {
    state_ = State::kExit;
    return trio::ActExit{2};
  }
  src_ = sources_[next_++];
  trio::ActSyncXtxn rd;
  rd.req.op = trio::XtxnOp::kRead;
  rd.req.addr = app_.straggler_event_counter_addr(job_id_, src_);
  rd.req.len = 8;
  rd.instructions = 3;
  state_ = State::kReadEvents;
  (void)ctx;
  return rd;
}

trio::Action StragglerClassifierProgram::do_step(trio::ThreadContext& ctx) {
  switch (state_) {
    case State::kReadJob: {
      const std::uint64_t addr = app_.job_record_addr(job_id_);
      if (addr == 0) {
        state_ = State::kExit;
        return trio::ActExit{2};
      }
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = addr;
      rd.req.len = JobRecord::kSize;
      rd.instructions = 4;
      state_ = State::kJobLoaded;
      return rd;
    }

    case State::kJobLoaded: {
      job_ = JobRecord::unpack(ctx.reply.data);
      for (int s = 0; s < 64; ++s) {
        if (job_.src_mask[0] >> s & 1) {
          sources_.push_back(static_cast<std::uint8_t>(s));
        }
      }
      return next_source(ctx);
    }

    case State::kReadEvents: {
      events_now_ = le64(ctx.reply.data, 0);
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = app_.classifier_state_addr(job_id_, src_);
      rd.req.len = 16;
      rd.instructions = 2;
      state_ = State::kDecide;
      return rd;
    }

    case State::kDecide: {
      const std::uint64_t last_count = le64(ctx.reply.data, 0);
      std::uint8_t consec = ctx.reply.data.size() > 8 ? ctx.reply.data[8] : 0;
      const bool straggled_this_window = events_now_ > last_count;
      const std::uint8_t prev_consec = consec;
      consec = straggled_this_window
                   ? static_cast<std::uint8_t>(
                         consec < 255 ? consec + 1 : consec)
                   : 0;

      // Persist the window state (posted).
      trio::ActAsyncXtxn wr;
      wr.req.op = trio::XtxnOp::kWrite;
      wr.req.addr = app_.classifier_state_addr(job_id_, src_);
      wr.req.data.resize(16, 0);
      for (int i = 0; i < 8; ++i) {
        wr.req.data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(events_now_ >> (8 * i));
      }
      wr.req.data[8] = consec;
      wr.instructions = 3;
      pending_.push_back(std::move(wr));

      // Notify on a fresh burst (temporary) and once when the source
      // crosses the permanent threshold (§5: "notify all other workers
      // accordingly").
      std::optional<std::uint8_t> marker;
      if (straggled_this_window && prev_consec == 0) {
        marker = kAgeOpTemporaryStraggler;
      }
      if (consec == config_.permanent_after_windows &&
          prev_consec < config_.permanent_after_windows) {
        marker = kAgeOpPermanentStraggler;
      }
      if (marker) {
        TrioMlHeader hdr;
        hdr.job_id = job_id_;
        hdr.block_id = 0;
        hdr.gen_id = 0;
        hdr.age_op = *marker;
        hdr.src_id = src_;
        hdr.src_cnt = consec;
        const net::MacAddr router_mac{0x02, 0, 0, 0, 0, 0xfe};
        const net::MacAddr mcast_mac{0x01, 0x00, 0x5e, 0, 0, 1};
        net::Buffer frame = build_aggregation_frame(
            router_mac, mcast_mac, net::Ipv4Addr(job_.out_src_addr),
            net::Ipv4Addr(job_.out_dst_addr), kTrioMlUdpPort, hdr, {});
        trio::ActEmitPacket emit;
        emit.pkt = net::Packet::make(std::move(frame));
        emit.nexthop_id = job_.out_nh_addr;
        emit.instructions = 8;
        pending_.push_back(std::move(emit));
        ++app_.stats().straggler_notices_sent;
      }
      // Queue discipline: the next source's synchronous read (or the
      // exit) must be the LAST pending action.
      pending_.push_back(next_source(ctx));
      trio::Action first = std::move(pending_.front());
      pending_.pop_front();
      return first;
    }

    case State::kExit:
    default:
      return trio::ActExit{1};
  }
}

}  // namespace trioml
