// A Trio-ML end-host worker: streams a model's gradient blocks to the
// aggregator with a bounded window of outstanding packets (paper §4
// "Window-based streaming aggregation"), receives multicast Result
// packets, recognises degraded (partial) results and rescales by src_cnt
// (§5), and reports per-block latency.
//
// Matches the testbed configuration of §6.1: DPDK-style UDP send path,
// 1024 gradients per packet and window 4096 by default, optional 1 ms
// retransmission (disabled in the paper's straggler experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "trioml/wire_format.hpp"

namespace trioml {

struct AllreduceResult {
  /// Per-gradient average over the sources that contributed.
  std::vector<float> grads;
  std::uint64_t degraded_blocks = 0;
  std::uint64_t blocks = 0;
  /// Blocks abandoned by the give-up path (docs/faults.md "Degraded
  /// completion"): every retry budget exhausted and no result within the
  /// grace window — the aggregation path is durably gone (e.g. the
  /// worker's leaf router killed with no standby). Their gradients stay
  /// zero; > 0 marks the result as a degraded completion.
  std::uint64_t abandoned_blocks = 0;
  sim::Time start;
  sim::Time finish;
};

class TrioMlWorker : public net::Node {
 public:
  struct Config {
    std::uint8_t job_id = 1;
    std::uint8_t src_id = 0;
    net::Ipv4Addr ip;
    net::MacAddr mac{0x02, 0, 0, 0, 0, 1};
    net::Ipv4Addr agg_ip;            // aggregation destination address
    net::MacAddr agg_mac{0x02, 0, 0, 0, 0, 0xfe};
    std::uint16_t udp_src_port = 20000;
    std::uint32_t window = 4096;     // outstanding packets (paper default)
    std::uint16_t grads_per_packet = kMaxGradsPerPacket;
    std::uint8_t expected_sources = 0;  // full-aggregation contributor count
    bool retransmit = false;            // disabled in the paper's evaluation
    sim::Duration retransmit_timeout = sim::Duration::millis(1);

    // --- Hardened loss recovery (docs/faults.md) -------------------------
    /// Per-block retransmit budget; 0 = unbounded. When a block exhausts
    /// its budget the worker stops resending it and waits for the aged
    /// (degraded) Result — graceful degradation instead of a retransmit
    /// storm against a dead aggregator or crashed peer.
    std::uint32_t retry_budget = 0;
    /// Exponential backoff on consecutive retransmits of the same block:
    /// timeout_k = min(retransmit_timeout * backoff_factor^k, backoff_max),
    /// jittered by ±backoff_jitter (drawn from the worker's sim::Rng).
    /// Backoff makes the "retransmit period must exceed the aging window"
    /// constraint self-resolving: a few retries in, the interval outgrows
    /// any aging window and orphaned upstream blocks can expire.
    bool retransmit_backoff = false;
    double backoff_factor = 2.0;
    sim::Duration backoff_max = sim::Duration::millis(50);
    double backoff_jitter = 0.2;
    /// Jitter stream seed; 0 derives a per-worker seed from src_id.
    std::uint64_t rng_seed = 0;
    /// Degraded-completion grace (docs/faults.md): once *every*
    /// outstanding block has exhausted its retry budget and nothing more
    /// can be sent, wait this long for a (possibly aged) Result, then
    /// abandon the remaining blocks and complete degraded instead of
    /// wedging until the run deadline. Zero = disabled (legacy: wait
    /// forever). Requires a nonzero retry_budget to ever trigger.
    sim::Duration give_up_grace = sim::Duration::zero();
  };

  TrioMlWorker(sim::Simulator& simulator, Config config,
               net::LinkEndpoint& tx);

  /// Starts an allreduce over quantized gradients; `done` fires when every
  /// block's result arrived.
  void start_allreduce(std::vector<std::uint32_t> grads, std::uint16_t gen_id,
                       std::function<void(AllreduceResult)> done);

  /// Convenience float API: quantizes, allreduces, dequantizes+averages.
  void start_allreduce_float(const std::vector<float>& grads,
                             std::uint16_t gen_id,
                             std::function<void(AllreduceResult)> done);

  // --- net::Node (result packets arrive here) -----------------------------
  void receive(net::PacketPtr pkt, int port) override;
  std::string name() const override {
    return "worker-" + std::to_string(config_.src_id);
  }

  /// Artificial transmission stall: the worker pauses sending for `d`
  /// (used by the straggler generator; in-flight packets still fly).
  void stall_for(sim::Duration d);

  /// Turns on loss recovery: unanswered blocks are retransmitted after
  /// `timeout` (the aggregator recognises duplicates by src_id — §4).
  void enable_retransmit(sim::Duration timeout) {
    config_.retransmit = true;
    config_.retransmit_timeout = timeout;
  }

  /// Loss recovery hardened for injected faults (docs/faults.md): fixed
  /// initial timeout, then bounded exponential backoff with jitter and a
  /// per-block retry budget.
  void enable_hardened_retransmit(sim::Duration initial_timeout,
                                  std::uint32_t retry_budget,
                                  sim::Duration backoff_max,
                                  double jitter = 0.2) {
    enable_retransmit(initial_timeout);
    config_.retry_budget = retry_budget;
    config_.retransmit_backoff = true;
    config_.backoff_max = backoff_max;
    config_.backoff_jitter = jitter;
  }

  /// Turns on the degraded-completion path (Config::give_up_grace): a
  /// worker whose every remaining block has exhausted its retry budget
  /// abandons them after `grace` and completes with a partial result
  /// rather than wedging against a durably-dead aggregation path.
  void enable_give_up(sim::Duration grace) { config_.give_up_grace = grace; }

  /// Reseeds the backoff-jitter stream (trio-run --seed plumbing).
  void reseed_jitter(std::uint64_t seed) { rng_.reseed(seed); }

  // --- Fault hooks (src/faults/) -----------------------------------------
  /// Host crash: all worker-side allreduce state vanishes — outstanding
  /// blocks, retransmit timers and the in-flight completion callback (the
  /// allreduce is abandoned; run drivers count the worker as unfinished).
  /// In-flight frames still fly; a crashed worker ignores everything it
  /// receives and sends nothing.
  void crash();
  /// Restart after a crash: the worker comes back cold (no allreduce in
  /// progress) and may start a fresh allreduce.
  void restart() { crashed_ = false; }
  bool crashed() const { return crashed_; }

  /// Registers the worker's recovery counters (`<prefix>retransmits`,
  /// `<prefix>backoff_rearms`, `<prefix>retry_budget_exhausted`,
  /// `<prefix>crashes`). Same prefix across workers = shared tier totals,
  /// like LinkEndpoint::instrument.
  void instrument(telemetry::Registry& registry, const std::string& prefix) {
    retransmits_ctr_ = registry.counter(prefix + "retransmits");
    backoff_ctr_ = registry.counter(prefix + "backoff_rearms");
    budget_exhausted_ctr_ = registry.counter(prefix + "retry_budget_exhausted");
    crash_ctr_ = registry.counter(prefix + "crashes");
  }

  bool busy() const { return done_ != nullptr; }
  const Config& config() const { return config_; }

  /// Allreduce incarnation counter: bumped by start_allreduce() and
  /// crash(), captured by every timer/pump callback the worker schedules.
  /// A callback whose epoch no longer matches belongs to a dead
  /// incarnation and must not touch (re-created) block state — see the
  /// crash-teardown regression in tests/recovery_test.cpp.
  std::uint64_t allreduce_epoch() const { return epoch_; }

  /// §5 advanced mitigation: straggler notifications received from the
  /// classifier timer threads.
  struct StragglerNotice {
    std::uint8_t src = 0;
    bool permanent = false;
    std::uint8_t consecutive_windows = 0;
    sim::Time at;
  };
  const std::vector<StragglerNotice>& straggler_notices() const {
    return straggler_notices_;
  }

  // --- Statistics ----------------------------------------------------------
  sim::Samples& block_latency_us() { return block_latency_us_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t results_received() const { return results_received_; }
  std::uint64_t degraded_results() const { return degraded_results_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t backoff_rearms() const { return backoff_rearms_; }
  std::uint64_t retry_budget_exhausted() const {
    return retry_budget_exhausted_;
  }
  std::uint64_t crashes() const { return crashes_; }
  /// Allreduces completed degraded by the give-up path, and the blocks
  /// they abandoned (diagnostics for trio-run / the vigil invariants).
  std::uint64_t abandoned_allreduces() const { return abandoned_allreduces_; }
  std::uint64_t abandoned_blocks() const { return abandoned_blocks_; }
  /// Blocks still outstanding (sent, no result). Zero whenever the worker
  /// is idle — the vigil no-orphan-timer invariant (docs/vigil.md).
  std::size_t outstanding_blocks() const { return outstanding_.size(); }

 private:
  struct Outstanding {
    sim::Time sent;
    std::uint16_t grad_cnt;
    std::uint32_t retries = 0;
    bool exhausted = false;  // retry budget spent; waiting on aging
    sim::EventId retransmit_timer;
  };

  void pump();
  void send_block(std::uint32_t block_id, bool is_retransmit);
  void arm_retransmit(std::uint32_t block_id, Outstanding& out);
  void on_result(const TrioMlHeader& hdr, const net::Buffer& frame);
  void complete();
  void maybe_arm_give_up();
  void give_up();

  sim::Simulator& sim_;
  Config config_;
  net::LinkEndpoint& tx_;

  std::vector<std::uint32_t> grads_;
  std::uint16_t gen_id_ = 0;
  std::function<void(AllreduceResult)> done_;
  AllreduceResult result_;
  std::uint32_t num_blocks_ = 0;
  std::uint32_t next_block_ = 0;
  std::uint32_t completed_blocks_ = 0;
  std::unordered_map<std::uint32_t, Outstanding> outstanding_;
  sim::Time stalled_until_;
  bool pump_scheduled_ = false;
  std::uint64_t epoch_ = 0;
  std::size_t exhausted_blocks_ = 0;
  bool give_up_armed_ = false;
  sim::EventId give_up_timer_{};

  bool crashed_ = false;
  sim::Rng rng_;  // backoff jitter (per-worker deterministic stream)

  std::vector<StragglerNotice> straggler_notices_;
  sim::Samples block_latency_us_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t results_received_ = 0;
  std::uint64_t degraded_results_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t backoff_rearms_ = 0;
  std::uint64_t retry_budget_exhausted_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t abandoned_allreduces_ = 0;
  std::uint64_t abandoned_blocks_ = 0;
  telemetry::Counter retransmits_ctr_;
  telemetry::Counter backoff_ctr_;
  telemetry::Counter budget_exhausted_ctr_;
  telemetry::Counter crash_ctr_;
};

}  // namespace trioml
