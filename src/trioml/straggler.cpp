#include "trioml/straggler.hpp"

namespace trioml {

trio::Action StragglerScanProgram::step(trio::ThreadContext& ctx) {
  if (!pending_.empty()) {
    trio::Action a = std::move(pending_.front());
    pending_.pop_front();
    return a;
  }
  return do_step(ctx);
}

trio::Action StragglerScanProgram::do_step(trio::ThreadContext& ctx) {
  switch (state_) {
    case State::kScan: {
      trio::ActSyncXtxn scan;
      scan.req.op = trio::XtxnOp::kHashScanStep;
      scan.req.arg0 = std::uint64_t(partitions_) << 32 | partition_;
      scan.req.arg1 = 64;  // bound the per-thread report
      scan.instructions = 4;
      state_ = State::kNextAged;
      return scan;
    }

    case State::kNextAged: {
      if (aged_.empty() && next_ == 0 && !ctx.reply.data.empty()) {
        // First entry after the scan reply: decode the aged keys and skip
        // job records (block_id == -1 entries are referenced rarely by
        // design and are not aggregation state).
        for (std::size_t off = 0; off + 8 <= ctx.reply.data.size(); off += 8) {
          std::uint64_t k = 0;
          for (int i = 7; i >= 0; --i) {
            k = k << 8 | ctx.reply.data[off + static_cast<std::size_t>(i)];
          }
          // Skip job records, and skip foreign keys entirely: with key
          // partitions off, co-tenant apps on this PFE (netrpc's hot-key
          // cache) share the hash table, and their aged keys must not be
          // claimed as if they were aggregation blocks.
          if (!is_job_key(k) &&
              app_.has_job(static_cast<std::uint8_t>(k >> 48))) {
            aged_.push_back(k);
          }
        }
      }
      if (next_ >= aged_.size()) {
        state_ = State::kExit;
        return trio::ActExit{2};
      }
      key_ = aged_[next_++];
      // Claim the aged block. A completing packet thread may race us; the
      // hash delete decides ownership atomically.
      trio::ActSyncXtxn del;
      del.req.op = trio::XtxnOp::kHashDelete;
      del.req.arg0 = key_;
      del.instructions = 4;
      state_ = State::kClaim;
      return del;
    }

    case State::kClaim: {
      if (!ctx.reply.ok) {
        state_ = State::kNextAged;
        return do_step(ctx);
      }
      record_addr_ = 0;  // filled from the hash value? the delete reply has none
      // The hash value (record address) was returned by the scan via the
      // key; re-derive it: block records are slab-allocated, so the app
      // can map key -> record only through the hash. We read it before
      // the delete in hardware; here the scan reply carried keys only, so
      // the claim is followed by a slab read via the app's pairing.
      // (The original lookup value is recovered from the delete reply.)
      record_addr_ = ctx.reply.value;
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = record_addr_;
      rd.req.len = kBlockSlabBytes;
      rd.instructions = 3;
      state_ = State::kReadRecord;
      return rd;
    }

    case State::kReadRecord: {
      record_ = BlockRecord::unpack(ctx.reply.data);
      accum_src_cnt_ = ctx.reply.data[kSrcCntAccumOff];
      if (accum_src_cnt_ == 0) {
        // Nothing was ever aggregated (cannot normally happen: the
        // creator contributes before the record can age). Recycle.
        app_.free_slab_by_buffer(record_.aggr_paddr);
        state_ = State::kNextAged;
        return do_step(ctx);
      }
      trio::ActSyncXtxn rd;
      rd.req.op = trio::XtxnOp::kRead;
      rd.req.addr = record_.job_ctx_paddr;
      rd.req.len = JobRecord::kSize;
      rd.instructions = 2;
      state_ = State::kReadJob;
      return rd;
    }

    case State::kReadJob: {
      const JobRecord job = JobRecord::unpack(ctx.reply.data);
      ++app_.stats().blocks_aged;
      // §5 advanced mitigation: charge each missing source's straggler
      // event counter so the slow classifier threads can profile it.
      std::uint8_t job_id;
      std::uint16_t gen_id;
      std::uint32_t block_id;
      split_key(key_, job_id, gen_id, block_id);
      {
        // Release the job's active-block slot (the aged block's memory
        // is being reclaimed).
        trio::ActAsyncXtxn dec;
        dec.req.op = trio::XtxnOp::kAddVec32;
        dec.req.addr = app_.job_active_counter_addr(job_id);
        dec.req.data = {0xff, 0xff, 0xff, 0xff};
        dec.instructions = 1;
        pending_.push_back(std::move(dec));
      }
      if (app_.profiling_enabled(job_id)) {
        const std::uint64_t missing =
            job.src_mask[0] & ~record_.rcvd_mask[0];
        for (int s = 0; s < 64; ++s) {
          if (missing >> s & 1) {
            trio::ActAsyncXtxn inc;
            inc.req.op = trio::XtxnOp::kCounterInc;
            inc.req.addr = app_.straggler_event_counter_addr(
                job_id, static_cast<std::uint8_t>(s));
            inc.req.arg0 = record_.grad_cnt;
            inc.instructions = 1;
            pending_.push_back(std::move(inc));
            ++app_.stats().straggler_events;
          }
        }
      }
      ResultBuilder::Inputs in;
      in.key = key_;
      in.record = record_;
      in.job = job;
      in.src_cnt = accum_src_cnt_;
      in.degraded = true;  // partial aggregation (§5)
      in.age_op = 1;
      builder_.emplace(app_, std::move(in));
      state_ = State::kResult;
      return do_step(ctx);
    }

    case State::kResult: {
      auto action = builder_->step(ctx);
      if (action) return std::move(*action);
      builder_.reset();
      state_ = State::kNextAged;
      return do_step(ctx);
    }

    case State::kExit:
      return trio::ActExit{1};
  }
  return trio::ActExit{1};
}

}  // namespace trioml
