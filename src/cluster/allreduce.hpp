// Cluster-wide allreduce driving: start every worker, run the simulation,
// collect per-worker results and throughput — plus the single-router
// Testbed baseline the cluster's results must match bit-for-bit (integer
// gradient addition is associative, so a two-level tree and a flat
// aggregation of the same contributions are bit-identical), and the
// Slow-Worker-Pattern bridge that lets the mltrain straggler generator
// drive an N-rack topology unmodified.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "mltrain/straggler_gen.hpp"
#include "trioml/host.hpp"

namespace cluster {

struct AllreduceRun {
  /// Per-worker results, rack-major global order; empty grads for workers
  /// that did not finish before the deadline.
  std::vector<trioml::AllreduceResult> results;
  int finished = 0;          // workers whose final result arrived
  sim::Time start;
  sim::Time finish;          // last result arrival (or the deadline)
  std::uint64_t gradient_bytes = 0;  // payload pushed by all workers

  double duration_us() const { return (finish - start).us(); }
  /// Aggregate allreduce goodput: gradient payload from every worker over
  /// the run's duration.
  double goodput_gbps() const {
    const double ns = double((finish - start).ns());
    return ns <= 0 ? 0 : double(gradient_bytes) * 8.0 / ns;
  }
};

/// Starts an allreduce of `grads[w]` on every worker `w` (size must equal
/// Cluster::num_workers()) and runs the simulation until the event queue
/// drains, or until `deadline` when timer threads (straggler detection,
/// trace sampling) keep the queue non-empty.
AllreduceRun run_allreduce(Cluster& cluster,
                           const std::vector<std::vector<std::uint32_t>>& grads,
                           std::uint16_t gen_id = 1,
                           sim::Time deadline = sim::Time::max());

/// Deterministic per-worker gradient vectors (worker-dependent values) for
/// equivalence checks and benches.
std::vector<std::vector<std::uint32_t>> patterned_gradients(
    int workers, std::size_t grads_per_worker);

/// Runs the same per-worker gradients through a single-router
/// trioml::Testbed with the cluster's job parameters — the flat baseline
/// a multi-rack run is compared against.
std::vector<trioml::AllreduceResult> testbed_baseline(
    const ClusterSpec& spec,
    const std::vector<std::vector<std::uint32_t>>& grads,
    std::uint16_t gen_id = 1);

/// True when every worker's result gradients match bit-for-bit.
bool bit_identical(const std::vector<trioml::AllreduceResult>& a,
                   const std::vector<trioml::AllreduceResult>& b);

/// Applies one iteration of the Slow Worker Pattern (paper §6.1) to the
/// cluster's workers: each drawn delay becomes a transmission stall on
/// the corresponding global worker. Returns the per-worker delays in ms.
std::vector<double> inject_stragglers(Cluster& cluster,
                                      mltrain::SlowWorkerPattern& pattern);

}  // namespace cluster
