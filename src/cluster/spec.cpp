#include "cluster/spec.hpp"

#include <stdexcept>
#include <string>

namespace cluster {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("ClusterSpec: " + what);
}

void validate_link(const LinkSpec& link, const char* tier) {
  if (link.gbps <= 0) fail(std::string(tier) + " link rate must be > 0");
  if (link.latency < sim::Duration::zero()) {
    fail(std::string(tier) + " link latency must be >= 0");
  }
  if (link.loss < 0 || link.loss >= 1) {
    fail(std::string(tier) + " link loss must be in [0, 1)");
  }
  if (link.queue_frames == 0) {
    fail(std::string(tier) + " link needs a transmit queue");
  }
}

}  // namespace

void ClusterSpec::validate() const {
  if (racks < 1) fail("need at least one rack");
  if (workers_per_rack < 1) fail("need at least one worker per rack");
  // Each aggregation level tracks its contributors in the job record's
  // fast-path source mask (64 bits): workers-per-rack at the leaves,
  // racks at the spine.
  if (workers_per_rack > 64) fail("more than 64 workers per rack");
  if (racks > 64) fail("more than 64 racks");
  // Workers divide full results by expected_sources, a uint8 on the wire.
  if (total_workers() > 254) fail("more than 254 workers");
  if (grads_per_packet == 0 || grads_per_packet > trioml::kMaxGradsPerPacket) {
    fail("grads_per_packet out of range");
  }
  if (window == 0) fail("window must be >= 1");
  if (slab_pool == 0) fail("slab pool must be non-empty");
  validate_link(host_link, "host");
  validate_link(fabric_link, "fabric");
}

}  // namespace cluster
