// Materializes a ClusterSpec into a running multi-rack testbed: one leaf
// Trio router per rack with its workers on host links, a spine Trio
// router one tier up on fabric links, IP routes, the final-result
// multicast group, and Trio-ML jobs forming the two-level aggregation
// tree of cluster/tree.hpp. The runtime API mirrors trioml::Testbed
// (per-worker / per-link accessors, straggler detection across every
// aggregating router) so Testbed workloads run unmodified on N racks.
#pragma once

#include <memory>
#include <vector>

#include "cluster/spec.hpp"
#include "cluster/tree.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "trio/router.hpp"
#include "trioml/app.hpp"
#include "trioml/host.hpp"

namespace cluster {

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  /// Shard 0's simulator. run()/run_until() on it drive the whole engine
  /// (all shards), so single-simulator call sites work unmodified.
  sim::Simulator& simulator() { return engine_.shard(0); }
  /// The parallel discrete-event engine executing this cluster
  /// (docs/performance.md). One simulation domain per router: leaf r is
  /// domain r, the spine is domain `racks`, the standby spine (when
  /// built) domain `racks + 1`; workers and host links live in their
  /// leaf's domain.
  sim::ShardedSimulator& engine() { return engine_; }
  /// Shards actually running (after clamping spec.shards).
  int num_shards() const { return int(engine_.num_shards()); }
  const ClusterSpec& spec() const { return spec_; }
  const AggregationTree& tree() const { return tree_; }

  int num_racks() const { return spec_.racks; }
  int workers_per_rack() const { return spec_.workers_per_rack; }
  int num_workers() const { return spec_.total_workers(); }

  // --- Topology accessors (workers are rack-major: global = rack*W+i) ----
  trio::Router& leaf(int rack) { return *leaves_.at(std::size_t(rack)); }
  trio::Router& spine() { return *spine_; }
  bool has_backup_spine() const { return backup_spine_ != nullptr; }
  /// The standby spine (spec.backup_spine; throws when absent).
  trio::Router& backup_spine() { return *backup_spine_; }
  trioml::TrioMlWorker& worker(int global) {
    return *workers_.at(std::size_t(global));
  }
  trioml::TrioMlWorker& worker(int rack, int local) {
    return worker(rack * spec_.workers_per_rack + local);
  }
  /// Worker `global`'s host link (a_to_b = worker -> leaf), for loss
  /// injection and telemetry — mirrors Testbed::link.
  net::Link& link(int global) { return *host_links_.at(std::size_t(global)); }
  /// Rack `rack`'s trunk (a_to_b = leaf -> spine).
  net::Link& fabric_link(int rack) {
    return *fabric_links_.at(std::size_t(rack));
  }

  trioml::TrioMlApp& leaf_app(int rack) {
    return *leaf_apps_.at(std::size_t(rack));
  }
  trioml::TrioMlApp& spine_app() { return *spine_app_; }
  trioml::TrioMlApp& backup_spine_app() { return *backup_spine_app_; }
  /// Rack `rack`'s standby trunk (a_to_b = leaf -> backup spine).
  net::Link& backup_fabric_link(int rack) {
    return *backup_fabric_links_.at(std::size_t(rack));
  }
  /// Every aggregation app, leaves first then the spine(s) (stats
  /// rollups); the backup spine's app is last when one exists.
  std::vector<trioml::TrioMlApp*> apps();

  // --- Aggregation-tree plumbing (src/jobs/ instantiates per-tenant
  // jobs over the same physical tree; docs/jobs.md) -----------------------
  /// Leaf `rack`'s nexthop onto the primary / standby spine trunk.
  std::uint32_t to_spine_nexthop(int rack) const {
    return to_spine_nh_.at(std::size_t(rack));
  }
  std::uint32_t to_backup_spine_nexthop(int rack) const {
    return to_backup_spine_nh_.at(std::size_t(rack));
  }
  /// The spine's (and standby spine's) result-multicast group nexthop.
  std::uint32_t spine_result_nexthop() const { return spine_group_nh_; }
  std::uint32_t backup_spine_result_nexthop() const {
    return backup_spine_group_nh_;
  }

  // --- Failover (src/recovery/, docs/recovery.md) ------------------------
  /// Re-homes the aggregation tree's top level onto the standby spine:
  /// every leaf's spine route and its job record's egress nexthop are
  /// rewritten to the backup trunk. In-flight blocks on the leaves are
  /// untouched — even their Results go to the backup, because the job
  /// record is consulted at result-emission time. Requires
  /// spec.backup_spine; idempotent.
  void fail_over_to_backup();
  /// Points the leaves back at the primary spine (post-revival rejoin).
  void restore_primary_spine();
  /// True while the leaves are homed on the backup spine.
  bool on_backup_spine() const { return on_backup_spine_; }

  /// Starts straggler detection on every aggregating router — each leaf
  /// and the spine run their own timer-thread scans (paper §5).
  void start_straggler_detection(int threads, sim::Duration timeout);
  void stop_straggler_detection();

  // --- Per-rack trace rows (docs/telemetry.md "Cluster telemetry") -------
  /// Emits one sample of the per-rack counter tracks (uplink tx bytes /
  /// drops, leaf blocks completed) plus the spine row. No-op untraced.
  void sample_trace_counters();
  /// Recurring sampling on the simulated clock. The recurring event keeps
  /// the simulator's queue non-empty — pair with run_until() +
  /// stop_trace_sampling(), like registry snapshots.
  void start_trace_sampling(sim::Duration period);
  void stop_trace_sampling();

  /// Trace pids: router r's PFEs live at r*kPidStride + pfe + 1, the
  /// spine's at racks*kPidStride + pfe + 1 (trio::TelemetryScope), and
  /// the per-rack summary rows at kSummaryPidBase + rack (the spine
  /// summary row is kSummaryPidBase + racks).
  static constexpr int kPidStride = 32;
  static constexpr int kSummaryPidBase = 100'000;

 private:
  void build_rack(const RackNode& node);
  void rehome_spine_tier(bool to_backup);
  int trunk_port() const { return spec_.workers_per_rack; }
  int backup_trunk_port() const { return spec_.workers_per_rack + 1; }

  std::uint32_t spine_domain() const { return std::uint32_t(spec_.racks); }
  std::uint32_t backup_spine_domain() const {
    return std::uint32_t(spec_.racks + 1);
  }
  /// The simulator executing domain `d`'s events.
  sim::Simulator& dsim(std::uint32_t d) { return engine_.domain_sim(d); }
  static std::uint32_t num_domains(const ClusterSpec& spec) {
    return std::uint32_t(spec.racks + 1 + (spec.backup_spine ? 1 : 0));
  }
  static std::uint32_t effective_shards(const ClusterSpec& spec);

  ClusterSpec spec_;
  AggregationTree tree_;
  sim::ShardedSimulator engine_;
  std::unique_ptr<trio::Router> spine_;
  std::unique_ptr<trio::Router> backup_spine_;
  std::vector<std::unique_ptr<trio::Router>> leaves_;
  std::vector<std::unique_ptr<net::Link>> fabric_links_;   // by rack
  std::vector<std::unique_ptr<net::Link>> backup_fabric_links_;  // by rack
  std::vector<std::unique_ptr<net::Link>> host_links_;     // by global worker
  std::vector<std::unique_ptr<trioml::TrioMlWorker>> workers_;
  std::vector<std::unique_ptr<trioml::TrioMlApp>> leaf_apps_;
  std::unique_ptr<trioml::TrioMlApp> spine_app_;
  std::unique_ptr<trioml::TrioMlApp> backup_spine_app_;
  std::uint32_t spine_group_nh_ = 0;
  std::uint32_t backup_spine_group_nh_ = 0;
  std::vector<std::uint32_t> to_spine_nh_;         // per rack
  std::vector<std::uint32_t> to_backup_spine_nh_;  // per rack
  bool on_backup_spine_ = false;

  bool trace_sampling_ = false;
  sim::Duration trace_period_ = sim::Duration::zero();
  sim::EventId trace_event_{};
};

}  // namespace cluster
