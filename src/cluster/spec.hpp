// Declarative description of a multi-rack Trio-ML cluster (paper §4:
// "Hierarchical aggregation can be extended to work across multiple
// devices by setting the destination IP of the Result packet to the IP
// address of the next-level aggregator"): racks of workers behind leaf
// Trio routers, a spine Trio router one tier up, and per-tier link
// parameters. cluster::Cluster materializes a spec into routers, links,
// forwarding state, multicast groups and the two-level aggregation tree;
// cluster::build_aggregation_tree derives the tree alone (the
// testable construction rules, docs/cluster.md).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/calibration.hpp"
#include "trioml/wire_format.hpp"

namespace cluster {

/// Link parameters for one topology tier.
struct LinkSpec {
  double gbps = 100.0;
  sim::Duration latency = sim::Duration::micros(1);
  /// i.i.d. frame loss probability injected on both directions (models
  /// transient congestion drops elsewhere in the fabric, paper §7).
  double loss = 0.0;
  std::uint64_t loss_seed = 1;
  std::size_t queue_frames = 4096;
};

struct ClusterSpec {
  int racks = 2;
  int workers_per_rack = 2;

  LinkSpec host_link;    // worker <-> leaf router (rack tier)
  LinkSpec fabric_link;  // leaf <-> spine router (inter-rack tier)

  // --- Trio-ML job parameters (mirror trioml::TestbedConfig) -------------
  std::uint8_t job_id = 1;
  std::uint16_t grads_per_packet = trioml::kMaxGradsPerPacket;
  std::uint32_t window = 4096;
  std::uint8_t block_exp_ms = 10;
  std::size_t slab_pool = 8192;
  trio::Calibration cal;

  /// Builds a standby spine router ("spine-b") wired to every leaf over
  /// its own trunk tier, running the same top-level aggregation job on
  /// the same aggregation address as the primary. Idle until
  /// Cluster::fail_over_to_backup() (usually driven by
  /// recovery::RecoveryManager) re-homes the leaves onto it —
  /// docs/recovery.md.
  bool backup_spine = false;

  /// Number of parallel simulation shards (docs/performance.md "Parallel
  /// discrete-event core"). Each router and its hosts form one simulation
  /// domain; domains are packed round-robin onto this many OS threads,
  /// synchronised conservatively with the fabric-link latency as
  /// lookahead. Results and digests are bit-identical at any value.
  /// Clamped to [1, number of routers]; forced to 1 when the fabric
  /// latency is zero or Chrome tracing is enabled (the tracer is
  /// single-threaded).
  int shards = 1;

  /// When set, every router is built observed by this bundle (which must
  /// outlive the Cluster) under a per-router trio::TelemetryScope
  /// ("rackN.*" / "spine.*"), and the links register per-tier counters
  /// (docs/telemetry.md "Cluster telemetry").
  telemetry::Telemetry* telemetry = nullptr;

  int total_workers() const { return racks * workers_per_rack; }

  /// Throws std::invalid_argument when the spec cannot materialize:
  /// workers must fit the fast-path source mask (<= 64 sources per
  /// aggregation level), the uint8 contributor counts, and the address
  /// plan of trioml/addressing.hpp.
  void validate() const;
};

}  // namespace cluster
