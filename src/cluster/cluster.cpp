#include "cluster/cluster.hpp"

#include <stdexcept>
#include <string>

#include "trioml/addressing.hpp"

namespace cluster {

namespace {

std::string rack_name(int r) { return "rack" + std::to_string(r); }

}  // namespace

std::uint32_t Cluster::effective_shards(const ClusterSpec& spec) {
  int s = spec.shards;
  if (s < 1) s = 1;
  const int domains = int(num_domains(spec));
  if (s > domains) s = domains;
  // The conservative window protocol needs positive lookahead, and the
  // Chrome tracer is single-threaded — both degrade gracefully to the
  // serial engine (same event order, so same digests).
  if (spec.fabric_link.latency <= sim::Duration::zero()) s = 1;
  if (spec.telemetry != nullptr && spec.telemetry->tracer.enabled()) s = 1;
  return std::uint32_t(s);
}

Cluster::Cluster(ClusterSpec spec)
    : spec_(std::move(spec)),
      tree_(build_aggregation_tree(spec_)),
      engine_(num_domains(spec_), effective_shards(spec_),
              spec_.fabric_link.latency) {
  const int racks = spec_.racks;
  const int wpr = spec_.workers_per_rack;

  // --- Routers --------------------------------------------------------------
  // One PFE per router; each leaf has a front-panel port per worker plus
  // the trunk (port `wpr`), the spine one trunk port per rack. The pid
  // slot doubles as the router's simulation-domain id.
  auto make_router = [&](int pid_router, const std::string& name,
                         int ports) -> std::unique_ptr<trio::Router> {
    sim::Simulator& rsim = dsim(std::uint32_t(pid_router));
    if (spec_.telemetry == nullptr) {
      return std::make_unique<trio::Router>(rsim, spec_.cal, 1, ports, name);
    }
    trio::TelemetryScope scope;
    scope.trace_pid_base = pid_router * kPidStride;
    scope.metric_prefix = name + ".";
    scope.process_prefix = name + ".";
    return std::make_unique<trio::Router>(rsim, spec_.cal, 1, ports,
                                          *spec_.telemetry, scope, name);
  };
  spine_ = make_router(racks, "spine", std::max(1, racks));
  // The standby spine gets the pid slot after the primary; each leaf gets
  // one extra front-panel port for its standby trunk.
  if (spec_.backup_spine) {
    backup_spine_ = make_router(racks + 1, "spine-b", std::max(1, racks));
  }
  const int leaf_ports = wpr + 1 + (spec_.backup_spine ? 1 : 0);
  leaves_.reserve(std::size_t(racks));
  for (int r = 0; r < racks; ++r) {
    leaves_.push_back(make_router(r, rack_name(r), leaf_ports));
  }

  // --- Spine: top-level job over one source per rack --------------------
  auto& spine_fwd = spine_->forwarding();
  for (int r = 0; r < racks; ++r) {
    const std::uint32_t member = spine_fwd.add_nexthop(
        trio::NexthopUnicast{r, trioml::aggregator_mac(r)});
    spine_group_nh_ = spine_fwd.join_group(tree_.result_group, member);
    spine_fwd.add_route(tree_.racks[std::size_t(r)].agg_ip, 32, member);
  }
  {
    trioml::TrioMlApp::Config app_config;
    app_config.slab_pool = spec_.slab_pool;
    spine_app_ =
        std::make_unique<trioml::TrioMlApp>(spine_->pfe(0), app_config);
    spine_app_->set_aggregation_address(tree_.spine_ip);
    spine_app_->install();
    trioml::TrioMlApp::JobSetup job;
    job.job_id = spec_.job_id;
    job.src_ids = tree_.spine_src_ids;
    job.block_grad_max = spec_.grads_per_packet;
    job.block_exp_ms = spec_.block_exp_ms;
    job.out_src = tree_.spine_ip;
    job.out_dst = tree_.result_group;
    job.out_nh = spine_group_nh_;
    spine_app_->configure_job(job);
  }

  // --- Standby spine: identical top-level job, its own trunks ------------
  if (spec_.backup_spine) {
    auto& bfwd = backup_spine_->forwarding();
    std::uint32_t backup_group_nh = 0;
    for (int r = 0; r < racks; ++r) {
      const std::uint32_t member = bfwd.add_nexthop(
          trio::NexthopUnicast{r, trioml::aggregator_mac(r)});
      backup_group_nh = bfwd.join_group(tree_.result_group, member);
      bfwd.add_route(tree_.racks[std::size_t(r)].agg_ip, 32, member);
    }
    backup_spine_group_nh_ = backup_group_nh;
    trioml::TrioMlApp::Config app_config;
    app_config.slab_pool = spec_.slab_pool;
    backup_spine_app_ =
        std::make_unique<trioml::TrioMlApp>(backup_spine_->pfe(0), app_config);
    // Same aggregation address as the primary: failover rewrites leaf
    // nexthops only, the partial-Result destination IP never changes.
    backup_spine_app_->set_aggregation_address(tree_.spine_ip);
    backup_spine_app_->install();
    trioml::TrioMlApp::JobSetup job;
    job.job_id = spec_.job_id;
    job.src_ids = tree_.spine_src_ids;
    job.block_grad_max = spec_.grads_per_packet;
    job.block_exp_ms = spec_.block_exp_ms;
    job.out_src = tree_.spine_ip;
    job.out_dst = tree_.result_group;
    job.out_nh = backup_group_nh;
    backup_spine_app_->configure_job(job);
  }

  // --- Racks ----------------------------------------------------------------
  to_spine_nh_.reserve(std::size_t(racks));
  to_backup_spine_nh_.reserve(std::size_t(racks));
  leaf_apps_.reserve(std::size_t(racks));
  host_links_.reserve(std::size_t(racks * wpr));
  workers_.reserve(std::size_t(racks * wpr));
  fabric_links_.reserve(std::size_t(racks));
  for (const RackNode& node : tree_.racks) build_rack(node);

  // --- Per-rack trace summary rows ---------------------------------------
  if (spec_.telemetry != nullptr && spec_.telemetry->tracer.enabled()) {
    auto& tracer = spec_.telemetry->tracer;
    for (int r = 0; r < racks; ++r) {
      tracer.set_process_name(kSummaryPidBase + r, rack_name(r));
    }
    tracer.set_process_name(kSummaryPidBase + racks, "spine");
  }
}

void Cluster::build_rack(const RackNode& node) {
  const int r = node.rack;
  const int wpr = spec_.workers_per_rack;
  trio::Router& leaf = *leaves_[std::size_t(r)];
  auto& fwd = leaf.forwarding();

  // Trunk to the spine: partial Results ride ordinary IP forwarding up
  // (paper §4), the final multicast comes back down the same link. The
  // trunk spans two simulation domains, so each direction's transmit
  // machinery runs on its sender's shard and the receive crosses through
  // the engine's delivery band — bound unconditionally (also at 1 shard)
  // so event order is a property of the topology, not the shard count.
  auto trunk = std::make_unique<net::Link>(
      dsim(std::uint32_t(r)), dsim(spine_domain()), spec_.fabric_link.gbps,
      spec_.fabric_link.latency, spec_.fabric_link.queue_frames);
  trunk->bind_boundary(engine_, std::uint32_t(r), spine_domain());
  trunk->attach(leaf, trunk_port(), *spine_, r);
  leaf.attach_port(trunk_port(), trunk->a_to_b());
  spine_->attach_port(r, trunk->b_to_a());
  if (spec_.fabric_link.loss > 0) {
    trunk->set_loss(spec_.fabric_link.loss,
                    spec_.fabric_link.loss_seed + std::uint64_t(r));
  }
  if (spec_.telemetry != nullptr) {
    // Tier counters share one registry cell across all fabric links, so
    // "cluster.tier.fabric.up.tx_frames" is the tier total.
    trunk->a_to_b().instrument(spec_.telemetry->metrics,
                               "cluster.tier.fabric.up.");
    trunk->b_to_a().instrument(spec_.telemetry->metrics,
                               "cluster.tier.fabric.down.");
  }
  const std::uint32_t to_spine = fwd.add_nexthop(
      trio::NexthopUnicast{trunk_port(), trioml::spine_mac()});
  fwd.add_route(tree_.spine_ip, 32, to_spine);
  fabric_links_.push_back(std::move(trunk));
  to_spine_nh_.push_back(to_spine);

  // Standby trunk to the backup spine, pre-wired but unused until
  // fail_over_to_backup() rewrites the spine route onto it.
  if (spec_.backup_spine) {
    auto backup_trunk = std::make_unique<net::Link>(
        dsim(std::uint32_t(r)), dsim(backup_spine_domain()),
        spec_.fabric_link.gbps, spec_.fabric_link.latency,
        spec_.fabric_link.queue_frames);
    backup_trunk->bind_boundary(engine_, std::uint32_t(r),
                                backup_spine_domain());
    backup_trunk->attach(leaf, backup_trunk_port(), *backup_spine_, r);
    leaf.attach_port(backup_trunk_port(), backup_trunk->a_to_b());
    backup_spine_->attach_port(r, backup_trunk->b_to_a());
    if (spec_.fabric_link.loss > 0) {
      backup_trunk->set_loss(
          spec_.fabric_link.loss,
          spec_.fabric_link.loss_seed + 0x10000 + std::uint64_t(r));
    }
    if (spec_.telemetry != nullptr) {
      backup_trunk->a_to_b().instrument(spec_.telemetry->metrics,
                                        "cluster.tier.fabric_backup.up.");
      backup_trunk->b_to_a().instrument(spec_.telemetry->metrics,
                                        "cluster.tier.fabric_backup.down.");
    }
    to_backup_spine_nh_.push_back(fwd.add_nexthop(trio::NexthopUnicast{
        backup_trunk_port(), trioml::backup_spine_mac()}));
    backup_fabric_links_.push_back(std::move(backup_trunk));
  }

  // Leaf aggregation job: local workers in, partial Results up, stamped
  // with the rack's uplink source id.
  trioml::TrioMlApp::Config app_config;
  app_config.slab_pool = spec_.slab_pool;
  auto app = std::make_unique<trioml::TrioMlApp>(leaf.pfe(0), app_config);
  app->set_aggregation_address(node.agg_ip);
  app->install();
  trioml::TrioMlApp::JobSetup job;
  job.job_id = spec_.job_id;
  job.src_ids = node.worker_src_ids;
  job.block_grad_max = spec_.grads_per_packet;
  job.block_exp_ms = spec_.block_exp_ms;
  job.out_src = node.agg_ip;
  job.out_dst = tree_.spine_ip;
  job.out_nh = to_spine;
  job.out_src_id = node.uplink_src_id;
  app->configure_job(job);
  leaf_apps_.push_back(std::move(app));

  // Workers and host links; the leaf forwards the final-result multicast
  // group to every local worker port.
  for (int i = 0; i < wpr; ++i) {
    const std::uint32_t member =
        fwd.add_nexthop(trio::NexthopUnicast{i, trioml::worker_mac(r, i)});
    fwd.join_group(tree_.result_group, member);
    fwd.add_route(trioml::worker_ip(r, i), 32, member);

    // Worker and host link live in the leaf's domain: intra-domain
    // traffic never crosses shards, so the host tier keeps the cheap
    // single-simulator path.
    auto link = std::make_unique<net::Link>(dsim(std::uint32_t(r)),
                                            spec_.host_link.gbps,
                                            spec_.host_link.latency,
                                            spec_.host_link.queue_frames);
    trioml::TrioMlWorker::Config wc;
    wc.job_id = spec_.job_id;
    wc.src_id = node.worker_src_ids[std::size_t(i)];
    wc.ip = trioml::worker_ip(r, i);
    wc.mac = trioml::worker_mac(r, i);
    wc.agg_ip = node.agg_ip;
    wc.agg_mac = trioml::aggregator_mac(r);
    wc.window = spec_.window;
    wc.grads_per_packet = spec_.grads_per_packet;
    wc.expected_sources = tree_.expected_sources;
    auto worker = std::make_unique<trioml::TrioMlWorker>(
        dsim(std::uint32_t(r)), wc, link->a_to_b());
    link->attach(*worker, 0, leaf, i);
    leaf.attach_port(i, link->b_to_a());
    if (spec_.host_link.loss > 0) {
      link->set_loss(spec_.host_link.loss,
                     spec_.host_link.loss_seed +
                         std::uint64_t(r * wpr + i) * 2 + 1);
    }
    if (spec_.telemetry != nullptr) {
      link->a_to_b().instrument(spec_.telemetry->metrics,
                                "cluster.tier.host.up.");
      link->b_to_a().instrument(spec_.telemetry->metrics,
                                "cluster.tier.host.down.");
      // Shared across workers: tier totals of the recovery-path counters
      // (retransmits, backoff re-arms, exhausted budgets, crashes).
      worker->instrument(spec_.telemetry->metrics, "cluster.worker.");
    }
    host_links_.push_back(std::move(link));
    workers_.push_back(std::move(worker));
  }
}

std::vector<trioml::TrioMlApp*> Cluster::apps() {
  std::vector<trioml::TrioMlApp*> out;
  out.reserve(leaf_apps_.size() + 2);
  for (auto& app : leaf_apps_) out.push_back(app.get());
  out.push_back(spine_app_.get());
  if (backup_spine_app_) out.push_back(backup_spine_app_.get());
  return out;
}

void Cluster::rehome_spine_tier(bool to_backup) {
  const auto& nhs = to_backup ? to_backup_spine_nh_ : to_spine_nh_;
  for (int r = 0; r < spec_.racks; ++r) {
    // add_route overwrites the existing /32, so partial Results taking
    // the IP-forwarding path re-home instantly...
    leaves_[std::size_t(r)]->forwarding().add_route(tree_.spine_ip, 32,
                                                    nhs[std::size_t(r)]);
    // ...and patching the job records re-homes the leaf app's own Result
    // emissions, including blocks already aggregating (the record's
    // egress nexthop is read at result time). Every configured job moves:
    // a failover re-homes all tenants, not just the cluster's primary
    // job (docs/jobs.md).
    for (std::uint8_t job : leaf_apps_[std::size_t(r)]->configured_jobs()) {
      leaf_apps_[std::size_t(r)]->retarget_job_output(job,
                                                      nhs[std::size_t(r)]);
    }
  }
  on_backup_spine_ = to_backup;
}

void Cluster::fail_over_to_backup() {
  if (!has_backup_spine()) {
    throw std::logic_error("Cluster: no backup spine configured");
  }
  rehome_spine_tier(/*to_backup=*/true);
}

void Cluster::restore_primary_spine() {
  if (!has_backup_spine()) return;
  rehome_spine_tier(/*to_backup=*/false);
}

void Cluster::start_straggler_detection(int threads, sim::Duration timeout) {
  for (trioml::TrioMlApp* app : apps()) {
    app->start_straggler_detection(threads, timeout);
  }
}

void Cluster::stop_straggler_detection() {
  for (trioml::TrioMlApp* app : apps()) app->stop_straggler_detection();
}

void Cluster::sample_trace_counters() {
  if (spec_.telemetry == nullptr || !spec_.telemetry->tracer.enabled()) return;
  auto& tracer = spec_.telemetry->tracer;
  const sim::Time now = simulator().now();
  for (int r = 0; r < spec_.racks; ++r) {
    const int pid = kSummaryPidBase + r;
    auto& up = fabric_links_[std::size_t(r)]->a_to_b();
    tracer.counter(pid, "uplink", "tx_bytes", now, double(up.bytes_sent()));
    tracer.counter(pid, "uplink", "drops", now, double(up.frames_dropped()));
    tracer.counter(pid, "aggregation", "blocks_completed", now,
                   double(leaf_apps_[std::size_t(r)]->stats().blocks_completed));
  }
  tracer.counter(kSummaryPidBase + spec_.racks, "aggregation",
                 "blocks_completed", now,
                 double(spine_app_->stats().blocks_completed));
}

void Cluster::start_trace_sampling(sim::Duration period) {
  stop_trace_sampling();
  if (spec_.telemetry == nullptr || !spec_.telemetry->tracer.enabled()) return;
  trace_sampling_ = true;
  trace_period_ = period;
  sample_trace_counters();
  trace_event_ = simulator().schedule_in(period, [this] {
    if (!trace_sampling_) return;
    trace_sampling_ = false;
    start_trace_sampling(trace_period_);
  });
}

void Cluster::stop_trace_sampling() {
  if (!trace_sampling_) return;
  trace_sampling_ = false;
  simulator().cancel(trace_event_);
  sample_trace_counters();  // closing sample so the tracks reach the end
}

}  // namespace cluster
