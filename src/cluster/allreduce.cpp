#include "cluster/allreduce.hpp"

#include <cstring>
#include <stdexcept>

#include "trioml/testbed.hpp"

namespace cluster {

AllreduceRun run_allreduce(Cluster& cluster,
                           const std::vector<std::vector<std::uint32_t>>& grads,
                           std::uint16_t gen_id, sim::Time deadline) {
  const int n = cluster.num_workers();
  if (static_cast<int>(grads.size()) != n) {
    throw std::invalid_argument("run_allreduce: one gradient vector per worker");
  }
  AllreduceRun run;
  run.results.resize(std::size_t(n));
  run.start = cluster.simulator().now();
  run.finish = run.start;
  for (int w = 0; w < n; ++w) {
    run.gradient_bytes += std::uint64_t(grads[std::size_t(w)].size()) * 4;
    // The completion callback runs on worker w's shard thread; it touches
    // only its own results element (disjoint writes, published by the
    // engine's end-of-run synchronisation). The rollups happen below,
    // after run() returns.
    cluster.worker(w).start_allreduce(
        grads[std::size_t(w)], gen_id, [&run, w](trioml::AllreduceResult r) {
          run.results[std::size_t(w)] = std::move(r);
        });
  }
  if (deadline == sim::Time::max()) {
    cluster.simulator().run();
  } else {
    cluster.simulator().run_until(deadline);
  }
  for (const auto& r : run.results) {
    if (!r.grads.empty()) ++run.finished;
    if (r.finish > run.finish) run.finish = r.finish;
  }
  return run;
}

std::vector<std::vector<std::uint32_t>> patterned_gradients(
    int workers, std::size_t grads_per_worker) {
  std::vector<std::vector<std::uint32_t>> out(
      static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto& g = out[std::size_t(w)];
    g.resize(grads_per_worker);
    for (std::size_t j = 0; j < grads_per_worker; ++j) {
      g[j] = std::uint32_t(w * 37 + int(j % 11) + 1);
    }
  }
  return out;
}

std::vector<trioml::AllreduceResult> testbed_baseline(
    const ClusterSpec& spec,
    const std::vector<std::vector<std::uint32_t>>& grads,
    std::uint16_t gen_id) {
  trioml::TestbedConfig cfg;
  cfg.num_workers = spec.total_workers();
  cfg.link_gbps = spec.host_link.gbps;
  cfg.link_latency = spec.host_link.latency;
  cfg.grads_per_packet = spec.grads_per_packet;
  cfg.window = spec.window;
  cfg.job_id = spec.job_id;
  cfg.block_exp_ms = spec.block_exp_ms;
  cfg.slab_pool = spec.slab_pool;
  cfg.cal = spec.cal;
  trioml::Testbed tb(cfg);
  std::vector<trioml::AllreduceResult> results(grads.size());
  for (int w = 0; w < cfg.num_workers; ++w) {
    tb.worker(w).start_allreduce(
        grads[std::size_t(w)], gen_id,
        [&results, w](trioml::AllreduceResult r) {
          results[std::size_t(w)] = std::move(r);
        });
  }
  tb.simulator().run();
  return results;
}

bool bit_identical(const std::vector<trioml::AllreduceResult>& a,
                   const std::vector<trioml::AllreduceResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ga = a[i].grads;
    const auto& gb = b[i].grads;
    if (ga.size() != gb.size()) return false;
    if (!ga.empty() &&
        std::memcmp(ga.data(), gb.data(), ga.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

std::vector<double> inject_stragglers(Cluster& cluster,
                                      mltrain::SlowWorkerPattern& pattern) {
  const std::vector<double> delays = pattern.next_iteration_delays();
  const int n = std::min<int>(cluster.num_workers(),
                              static_cast<int>(delays.size()));
  for (int w = 0; w < n; ++w) {
    if (delays[std::size_t(w)] > 0) {
      cluster.worker(w).stall_for(sim::Duration(
          std::int64_t(delays[std::size_t(w)] * 1e6)));
    }
  }
  return delays;
}

}  // namespace cluster
