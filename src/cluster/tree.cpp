#include "cluster/tree.hpp"

#include "trioml/addressing.hpp"

namespace cluster {

AggregationTree build_aggregation_tree(const ClusterSpec& spec) {
  spec.validate();
  AggregationTree tree;
  tree.spine_ip = trioml::spine_ip();
  tree.result_group = trioml::result_group();
  tree.expected_sources = static_cast<std::uint8_t>(spec.total_workers());
  tree.racks.reserve(static_cast<std::size_t>(spec.racks));
  tree.spine_src_ids.reserve(static_cast<std::size_t>(spec.racks));
  for (int r = 0; r < spec.racks; ++r) {
    RackNode node;
    node.rack = r;
    node.agg_ip = trioml::aggregator_ip(r);
    node.uplink_src_id = static_cast<std::uint8_t>(r);
    node.worker_src_ids.reserve(static_cast<std::size_t>(spec.workers_per_rack));
    for (int i = 0; i < spec.workers_per_rack; ++i) {
      node.worker_src_ids.push_back(static_cast<std::uint8_t>(i));
    }
    tree.racks.push_back(std::move(node));
    tree.spine_src_ids.push_back(static_cast<std::uint8_t>(r));
  }
  return tree;
}

}  // namespace cluster
