// The hierarchical aggregation tree derived from a ClusterSpec — the
// declarative middle step between "racks x workers" and the materialized
// routers. Construction rules (docs/cluster.md):
//
//   * workers carry per-rack-local source ids 0..W-1 (ids only need to be
//     unique within one aggregation level, which is what lets the tree
//     scale past 64 total workers);
//   * rack r's leaf aggregator presents itself to the spine as source r
//     and unicasts its partial Results to the spine's IP;
//   * the spine aggregates one source per rack and multicasts the final
//     Result to a group whose members are the per-rack trunks; each leaf
//     forwards the group on to its local workers;
//   * workers rescale full results by expected_sources = total workers
//     (degraded results carry their own contributor count, paper §5).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/spec.hpp"
#include "net/headers.hpp"

namespace cluster {

/// One rack-level (leaf) aggregator.
struct RackNode {
  int rack = 0;
  net::Ipv4Addr agg_ip;                       // leaf aggregation address
  std::vector<std::uint8_t> worker_src_ids;   // local ids, 0..W-1
  std::uint8_t uplink_src_id = 0;             // this rack as the spine sees it
};

struct AggregationTree {
  std::vector<RackNode> racks;
  net::Ipv4Addr spine_ip;                     // top-level aggregation address
  std::vector<std::uint8_t> spine_src_ids;    // = rack ids
  net::Ipv4Addr result_group;                 // final-result multicast group
  std::uint8_t expected_sources = 0;          // denominator for full results
};

/// Applies the construction rules above. The spec must validate().
AggregationTree build_aggregation_tree(const ClusterSpec& spec);

}  // namespace cluster
