#include "sim/stats.hpp"

#include <cmath>

namespace sim {

double Summary::stddev() const { return std::sqrt(variance()); }

double Samples::percentile(double p) {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values_.size())));
  return values_[rank == 0 ? 0 : rank - 1];
}

}  // namespace sim
