#include "sim/logging.hpp"

namespace sim {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, Time t, const std::string& msg) {
  std::fprintf(stderr, "[%s %12s] %s\n", level_name(level),
               t.to_string().c_str(), msg.c_str());
}
}  // namespace detail

}  // namespace sim
