#include "sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/shard.hpp"

namespace sim {
namespace {

// Rates below this are treated as zero when computing completion times:
// 1e-9 Gbps is one byte per ~8 simulated seconds, far beyond any run
// horizon, and guarding here keeps ceil(remaining / rate) finite.
constexpr double kMinRateGbps = 1e-9;

}  // namespace

FluidEngine::FluidEngine(Simulator& simulator, ShardedSimulator* engine)
    : FluidEngine(simulator, engine, Config{}) {}

FluidEngine::FluidEngine(Simulator& simulator, ShardedSimulator* engine,
                         Config config)
    : sim_(simulator),
      engine_(engine),
      config_(config),
      last_advance_(simulator.now()),
      last_probe_(simulator.now()) {}

Time FluidEngine::now() const { return engine_ ? engine_->now() : sim_.now(); }

FluidEngine::LinkId FluidEngine::add_link(double capacity_gbps) {
  LinkState ls;
  ls.capacity_gbps = capacity_gbps;
  links_.push_back(std::move(ls));
  return LinkId(links_.size() - 1);
}

void FluidEngine::set_packet_probe(LinkId link,
                                   std::function<std::uint64_t()> probe) {
  links_[link].probe_last = probe ? probe() : 0;
  links_[link].probe = std::move(probe);
}

void FluidEngine::set_rate_observer(
    LinkId link,
    std::function<void(double fluid_gbps, std::uint64_t fluid_bytes)> obs) {
  links_[link].observer = std::move(obs);
}

FluidEngine::FlowId FluidEngine::add_flow(FlowSpec spec) {
  advance_to_now();
  FlowState fs;
  fs.route = std::move(spec.route);
  fs.demand_gbps = spec.demand_gbps;
  fs.total_bytes = spec.total_bytes;
  fs.on_complete = std::move(spec.on_complete);
  fs.in_use = true;
  // Reuse a retired slot if one exists so long sweeps don't grow the
  // table without bound; ids of live flows are stable.
  FlowId id = kInvalidFlow;
  for (FlowId i = 0; i < flows_.size(); ++i) {
    if (!flows_[i].in_use) {
      id = i;
      break;
    }
  }
  if (id == kInvalidFlow) {
    id = FlowId(flows_.size());
    flows_.push_back(std::move(fs));
  } else {
    flows_[id] = std::move(fs);
  }
  update();
  return id;
}

void FluidEngine::remove_flow(FlowId id) {
  advance_to_now();
  flows_[id] = FlowState{};
  update();
}

void FluidEngine::pause_flow(FlowId id) {
  FlowState& f = flows_[id];
  if (f.paused || f.done || !f.in_use) return;
  advance_to_now();
  f.paused = true;
  f.rate_gbps = 0;
  f.complete_at = Time::max();
  update();
}

void FluidEngine::resume_flow(FlowId id) {
  FlowState& f = flows_[id];
  if (!f.paused || f.done || !f.in_use) return;
  advance_to_now();
  f.paused = false;
  update();
}

void FluidEngine::credit_flow(FlowId id, std::uint64_t bytes) {
  FlowState& f = flows_[id];
  if (f.done || !f.in_use) return;
  advance_to_now();
  f.carried += bytes;
  if (f.total_bytes > 0 && f.carried >= f.total_bytes) {
    f.carried = f.total_bytes;
    complete_flow(id, now());
  }
  update();
}

std::uint64_t FluidEngine::flow_remaining(FlowId id) const {
  const FlowState& f = flows_[id];
  if (f.total_bytes == 0) return 0;
  return f.total_bytes > f.carried ? f.total_bytes - f.carried : 0;
}

bool FluidEngine::any_running() const {
  for (const FlowState& f : flows_) {
    if (f.in_use && !f.paused && !f.done) return true;
  }
  return false;
}

void FluidEngine::advance_to_now() {
  const Time t = now();
  if (t <= last_advance_) {
    last_advance_ = t;
    return;
  }
  const double dt_ns = double((t - last_advance_).ns());
  for (FlowId id = 0; id < flows_.size(); ++id) {
    FlowState& f = flows_[id];
    if (!f.in_use || f.paused || f.done || f.rate_gbps <= 0) continue;
    if (f.total_bytes > 0 && t >= f.complete_at) {
      // Completion instant reached within this advance: the scheduled
      // completion time already accounts for the exact remaining bytes,
      // so force byte-exactness instead of trusting float accrual.
      const std::uint64_t gained = f.total_bytes - f.carried;
      f.carried = f.total_bytes;
      f.frac = 0;
      fluid_bytes_total_ += gained;
      for (LinkId l : f.route) links_[l].fluid_bytes += gained;
      complete_flow(id, f.complete_at);
      continue;
    }
    // rate [Gbps] = bits/ns, so bytes = rate * dt / 8.
    const double exact = f.rate_gbps * dt_ns / 8.0 + f.frac;
    const auto whole = std::uint64_t(exact);
    f.frac = exact - double(whole);
    f.carried += whole;
    fluid_bytes_total_ += whole;
    for (LinkId l : f.route) links_[l].fluid_bytes += whole;
  }
  last_advance_ = t;
}

void FluidEngine::complete_flow(FlowId id, Time at) {
  FlowState& f = flows_[id];
  f.done = true;
  f.rate_gbps = 0;
  f.complete_at = Time::max();
  ++completions_;
  if (f.on_complete) {
    auto cb = std::move(f.on_complete);
    f.on_complete = nullptr;
    cb(at);
  }
}

void FluidEngine::sample_probes(Time at) {
  if (at <= last_probe_) return;
  const double dt_ns = double((at - last_probe_).ns());
  for (LinkState& l : links_) {
    if (!l.probe) continue;
    const std::uint64_t total = l.probe();
    const std::uint64_t delta =
        total > l.probe_last ? total - l.probe_last : 0;
    l.probe_last = total;
    l.packet_gbps = double(delta) * 8.0 / dt_ns;
  }
  last_probe_ = at;
}

void FluidEngine::recompute_rates() {
  ++updates_;
  // Demand-capped max-min fairness by progressive filling: repeatedly
  // find the bottleneck link (smallest equal-share of its residual
  // capacity among its unfrozen flows), freeze those flows at that
  // share, subtract, and continue. Flows whose demand cap is below every
  // candidate share freeze at their demand. O(flows * links) per round,
  // rounds <= flows; the graphs here are tiny (hosts + trunks).
  struct Work {
    double residual;
    int active = 0;
  };
  std::vector<Work> work(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkState& l = links_[i];
    work[i].residual = std::max(0.0, l.capacity_gbps - l.packet_gbps);
  }
  std::vector<FlowId> unfrozen;
  for (FlowId id = 0; id < flows_.size(); ++id) {
    FlowState& f = flows_[id];
    if (!f.in_use || f.paused || f.done) {
      f.rate_gbps = 0;
      continue;
    }
    if (f.route.empty()) {
      // Routeless flow: only its demand cap limits it (used by tests).
      f.rate_gbps = f.demand_gbps > 0 ? f.demand_gbps : 0;
      continue;
    }
    unfrozen.push_back(id);
    for (LinkId l : f.route) ++work[l].active;
  }

  while (!unfrozen.empty()) {
    // Bottleneck share this round: min over links of residual/active.
    double share = -1;
    for (const Work& w : work) {
      if (w.active == 0) continue;
      const double s = w.residual / w.active;
      if (share < 0 || s < share) share = s;
    }
    if (share < 0) share = 0;

    // Demand-capped flows below the share freeze first; if none, freeze
    // the flows crossing a bottleneck link at the share itself.
    std::vector<FlowId> frozen;
    for (FlowId id : unfrozen) {
      if (flows_[id].demand_gbps > 0 && flows_[id].demand_gbps <= share) {
        flows_[id].rate_gbps = flows_[id].demand_gbps;
        frozen.push_back(id);
      }
    }
    if (frozen.empty()) {
      for (FlowId id : unfrozen) {
        bool bottlenecked = false;
        for (LinkId l : flows_[id].route) {
          const Work& w = work[l];
          if (w.active > 0 && w.residual / w.active <= share + 1e-12) {
            bottlenecked = true;
            break;
          }
        }
        if (bottlenecked) {
          flows_[id].rate_gbps = share;
          frozen.push_back(id);
        }
      }
    }
    if (frozen.empty()) {
      // Numerical corner: freeze everything at the share and stop.
      for (FlowId id : unfrozen) flows_[id].rate_gbps = share;
      frozen = unfrozen;
    }

    for (FlowId id : frozen) {
      for (LinkId l : flows_[id].route) {
        work[l].residual =
            std::max(0.0, work[l].residual - flows_[id].rate_gbps);
        --work[l].active;
      }
    }
    std::vector<FlowId> next;
    next.reserve(unfrozen.size());
    for (FlowId id : unfrozen) {
      if (std::find(frozen.begin(), frozen.end(), id) == frozen.end()) {
        next.push_back(id);
      }
    }
    unfrozen = std::move(next);
  }

  for (LinkState& l : links_) l.fluid_gbps = 0;
  for (const FlowState& f : flows_) {
    if (!f.in_use || f.paused || f.done) continue;
    for (LinkId l : f.route) links_[l].fluid_gbps += f.rate_gbps;
  }
}

void FluidEngine::refresh_completions(Time at) {
  for (FlowState& f : flows_) {
    if (!f.in_use || f.paused || f.done || f.total_bytes == 0) {
      if (f.in_use && !f.done) f.complete_at = Time::max();
      continue;
    }
    if (f.rate_gbps < kMinRateGbps) {
      f.complete_at = Time::max();
      continue;
    }
    const std::uint64_t remaining = f.total_bytes - f.carried;
    const double bits = double(remaining) * 8.0 - f.frac * 8.0;
    const double ns = std::max(0.0, bits) / f.rate_gbps;
    f.complete_at = at + Duration(std::int64_t(std::ceil(ns)));
    if (f.complete_at <= at) f.complete_at = at + Duration(1);
  }
}

void FluidEngine::push_observers() {
  for (LinkState& l : links_) {
    if (l.observer) l.observer(l.fluid_gbps, l.fluid_bytes);
  }
}

void FluidEngine::update() {
  const Time t = now();
  sample_probes(t);
  recompute_rates();
  refresh_completions(t);
  push_observers();
  schedule_wakeup();
}

void FluidEngine::schedule_wakeup() {
  if (stopped_ || !any_running()) return;
  const Time t = now();
  Time want = t + config_.tick;
  for (const FlowState& f : flows_) {
    if (f.in_use && !f.paused && !f.done && f.complete_at < want) {
      want = f.complete_at;
    }
  }
  if (want <= t) want = t + Duration(1);
  // Wakeups are never cancelled (globals can't be); if one is already
  // pending at or before `want` it will re-evaluate then. A stale
  // wakeup after state changed just advances accrual (possibly dt=0)
  // and reschedules — deterministic either way.
  if (next_wake_ != Time::max() && next_wake_ <= want && next_wake_ > t) {
    return;
  }
  next_wake_ = want;
  auto fire = [this] { on_wake(); };
  if (engine_) {
    engine_->schedule_global(want, fire);
  } else {
    sim_.schedule_at(want, fire);
  }
}

void FluidEngine::on_wake() {
  ++wakeups_;
  next_wake_ = Time::max();
  if (stopped_) return;
  advance_to_now();
  update();
}

}  // namespace sim
