// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it up to narrate what the simulated router is doing.
#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace sim {

enum class LogLevel { kOff = 0, kError, kInfo, kDebug, kTrace };

/// Process-wide log threshold. Not thread-safe by design: the simulator is
/// single-threaded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, Time t, const std::string& msg);
}

/// Logs `msg` stamped with simulated time `t` when `level` is enabled.
inline void log(LogLevel level, Time t, const std::string& msg) {
  if (level <= log_level()) detail::log_line(level, t, msg);
}

}  // namespace sim
