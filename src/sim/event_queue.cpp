#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  if (at < last_popped_) {
    throw std::logic_error("EventQueue::schedule: event scheduled in the past");
  }
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  slots_[slot].cb = std::move(cb);
  heap_.push_back(HeapEntry{at, next_seq_++, slot});
  slots_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return EventId(slot, slots_[slot].gen);
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= slots_.size()) return false;
  Slot& s = slots_[id.slot_];
  // A live slot's generation matches the handle; fired/cancelled slots
  // were bumped on release, so stale handles fail here.
  if (s.gen != id.gen_) return false;
  const std::uint32_t pos = s.heap_pos;
  release_slot(id.slot_);
  if (pos & kCohortFlag) {
    // The event left the heap into the running cohort but has not fired
    // yet: destroy its callback in place and mark the entry skipped.
    CohortEntry& e = cohort_[pos & ~kCohortFlag];
    e.cb = Callback{};
    e.slot = EventId::kInvalidSlot;
  } else {
    remove_at(pos);
  }
  return true;
}

Time EventQueue::pop_and_run() {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop_and_run: queue is empty");
  }
  const HeapEntry top = heap_.front();
  Callback cb = std::move(slots_[top.slot].cb);
  release_slot(top.slot);
  remove_at(0);
  last_popped_ = top.at;
  // The entry is fully unlinked before the callback runs, so the callback
  // may freely schedule and cancel (including reentrant pops via nested
  // run loops in tests).
  cb();
  return top.at;
}

std::size_t EventQueue::pop_cohort_and_run() {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop_cohort_and_run: queue is empty");
  }
  const Time t = heap_.front().at;
  // Extract the whole batch before dispatching anything. Members stay
  // addressable for cancel() through the kCohortFlag position encoding.
  cohort_.clear();
  while (!heap_.empty() && heap_.front().at == t) {
    const std::uint32_t slot = heap_.front().slot;
    remove_at(0);
    slots_[slot].heap_pos =
        kCohortFlag | static_cast<std::uint32_t>(cohort_.size());
    cohort_.push_back(CohortEntry{std::move(slots_[slot].cb), slot});
  }
  last_popped_ = t;
  std::size_t ran = 0;
  for (std::size_t i = 0; i < cohort_.size(); ++i) {
    if (cohort_[i].slot == EventId::kInvalidSlot) continue;  // cancelled
    Callback cb = std::move(cohort_[i].cb);
    release_slot(cohort_[i].slot);
    cohort_[i].slot = EventId::kInvalidSlot;
    cb();
    ++ran;
  }
  cohort_.clear();
  // Same-instant follow-ups scheduled by the batch carry later sequence
  // numbers; draining them now reproduces the serial pop order exactly.
  while (!heap_.empty() && heap_.front().at == t) {
    pop_and_run();
    ++ran;
  }
  return ran;
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    put(pos, heap_[parent]);
    pos = parent;
  }
  put(pos, e);
}

void EventQueue::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    put(pos, heap_[best]);
    pos = best;
  }
  put(pos, e);
}

void EventQueue::remove_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    put(pos, heap_[last]);
    heap_.pop_back();
    // The transplanted entry may violate the invariant in either
    // direction (it came from a different subtree).
    if (pos > 0 && before(heap_[pos], heap_[(pos - 1) / kArity])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  } else {
    heap_.pop_back();
  }
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback{};
  ++s.gen;
  free_slots_.push_back(slot);
}

}  // namespace sim
