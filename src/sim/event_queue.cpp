#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  if (at < last_popped_) {
    throw std::logic_error("EventQueue::schedule: event scheduled in the past");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId(seq);
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  return pending_.erase(id.seq_) != 0;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  drop_cancelled_top();
  if (heap_.empty()) return Time::max();
  return heap_.top().at;
}

Time EventQueue::pop_and_run() {
  drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop_and_run: queue is empty");
  }
  Callback cb = std::move(heap_.top().cb);
  const Time at = heap_.top().at;
  pending_.erase(heap_.top().seq);
  heap_.pop();
  last_popped_ = at;
  cb();
  return at;
}

}  // namespace sim
