#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sim {

ShardedSimulator::ShardedSimulator(std::uint32_t num_domains,
                                   std::uint32_t num_shards,
                                   Duration lookahead)
    : num_domains_(num_domains),
      num_shards_(std::max<std::uint32_t>(
          1, std::min(num_shards, std::max<std::uint32_t>(1, num_domains)))),
      lookahead_(lookahead) {
  if (num_shards_ > 1 && lookahead_ <= Duration::zero()) {
    throw std::invalid_argument(
        "ShardedSimulator: parallel execution requires positive lookahead "
        "(the smallest cross-domain link latency)");
  }
  domain_seq_.assign(std::max<std::uint32_t>(1, num_domains_), 0);
  shards_.reserve(num_shards_);
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->outbox.resize(num_shards_);
    sh->sim.set_engine(this);
    shards_.push_back(std::move(sh));
  }
  if (num_shards_ > 1) {
    pre_barrier_.emplace(static_cast<std::ptrdiff_t>(num_shards_));
    compute_barrier_.emplace(static_cast<std::ptrdiff_t>(num_shards_),
                             PlanFn{this});
    threads_.reserve(num_shards_);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      threads_.emplace_back([this, s] { worker_main(s); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_threads_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

void ShardedSimulator::post(std::uint32_t src_domain, std::uint32_t dst_domain,
                            Time at, Callback fn) {
  const std::uint64_t seq = ++domain_seq_[src_domain];
  const std::uint32_t dst_shard = shard_of(dst_domain);
  if (in_global_ || dst_shard == shard_of(src_domain)) {
    // Same thread executes both domains: straight into the band. The
    // (at, src, seq) stamp — not the route taken — decides execution
    // order, so this shortcut cannot perturb digests.
    shards_[dst_shard]->sim.post_delivery(at, src_domain, seq, std::move(fn));
  } else {
    shards_[shard_of(src_domain)]->outbox[dst_shard].push_back(
        Message{at, src_domain, seq, std::move(fn)});
  }
}

void ShardedSimulator::schedule_global(Time at, Callback fn) {
  std::lock_guard<std::mutex> lk(globals_mu_);
  globals_.push_back(GlobalAction{at, ++global_seq_, std::move(fn)});
  std::push_heap(globals_.begin(), globals_.end(), global_after);
}

void ShardedSimulator::run_globals_at(Time tg) {
  // Every shard is parked while a global action runs, so cross-shard
  // post() calls made by the action go straight into the destination band
  // (the outbox would not drain until after the next window).
  in_global_ = true;
  while (true) {
    Callback fn;
    {
      std::lock_guard<std::mutex> lk(globals_mu_);
      if (globals_.empty() || globals_.front().at != tg) break;
      std::pop_heap(globals_.begin(), globals_.end(), global_after);
      fn = std::move(globals_.back().fn);
      globals_.pop_back();
    }
    // Outside the lock: the action may schedule further globals.
    fn();
  }
  in_global_ = false;
}

std::uint64_t ShardedSimulator::run() {
  return run_to(Time::max(), /*advance_to_deadline=*/false);
}

std::uint64_t ShardedSimulator::run_until(Time deadline) {
  return run_to(deadline, /*advance_to_deadline=*/true);
}

std::uint64_t ShardedSimulator::run_to(Time deadline,
                                       bool advance_to_deadline) {
  if (error_) std::rethrow_exception(error_);
  const std::uint64_t before = raw_events_total();
  deadline_ = deadline;
  if (num_shards_ == 1) {
    run_serial(deadline);
  } else {
    std::unique_lock<std::mutex> lk(mu_);
    finished_ = 0;
    ++run_gen_;
    start_cv_.notify_all();
    finish_cv_.wait(lk, [&] { return finished_ == num_shards_; });
    lk.unlock();
    if (error_) std::rethrow_exception(error_);
  }
  if (advance_to_deadline) {
    for (auto& sh : shards_) sh->sim.advance_to(deadline);
  } else {
    Time mx = Time::zero();
    for (auto& sh : shards_) mx = std::max(mx, sh->sim.now());
    for (auto& sh : shards_) sh->sim.advance_to(mx);
  }
  return raw_events_total() - before;
}

std::uint64_t ShardedSimulator::run_serial(Time deadline) {
  Simulator& sim = shards_[0]->sim;
  std::uint64_t n = 0;
  while (true) {
    const Time t = sim.next_event_time();
    const Time tg = next_global_time();
    if (tg != Time::max() && tg <= t && tg <= deadline) {
      sim.advance_to(tg);
      run_globals_at(tg);
      continue;
    }
    if (t == Time::max() || t > deadline) break;
    // Same window formula as the parallel planner so both paths batch the
    // same cohorts (not that order depends on it — the band rule does not
    // care how instants are grouped into windows).
    Time we = lookahead_ > Duration::zero() ? t + lookahead_
                                            : t + Duration::nanos(1);
    if (tg < we) we = tg;
    if (deadline != Time::max() && we > deadline) {
      we = deadline + Duration::nanos(1);
    }
    ++rounds_;
    n += sim.run_window(we);
  }
  return n;
}

void ShardedSimulator::worker_main(std::uint32_t me) {
  std::uint64_t seen_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk,
                     [&] { return stop_threads_ || run_gen_ != seen_gen; });
      if (stop_threads_) return;
      seen_gen = run_gen_;
    }
    round_loop(me);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++finished_;
      if (finished_ == num_shards_) finish_cv_.notify_all();
    }
  }
}

void ShardedSimulator::round_loop(std::uint32_t me) {
  Shard& sh = *shards_[me];
  while (true) {
    // Every shard has finished its previous window; all outbox writes are
    // now visible and no simulator is executing.
    pre_barrier_->arrive_and_wait();
    drain_inbox(me);
    sh.next = sh.sim.next_event_time();
    // Completion (on the last thread to arrive) runs due global actions
    // and plans the next window — or decides to stop.
    compute_barrier_->arrive_and_wait();
    if (stop_round_) break;
    try {
      sh.sim.run_window(window_end_);
    } catch (...) {
      record_error();
    }
  }
}

void ShardedSimulator::drain_inbox(std::uint32_t me) {
  Shard& sh = *shards_[me];
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    if (s == me) continue;
    std::vector<Message>& box = shards_[s]->outbox[me];
    for (Message& m : box) {
      sh.sim.post_delivery(m.at, m.src_domain, m.seq, std::move(m.fn));
    }
    box.clear();
  }
}

void ShardedSimulator::plan_next_window() noexcept {
  try {
    if (abort_.load(std::memory_order_relaxed)) {
      stop_round_ = true;
      return;
    }
    while (true) {
      Time t = Time::max();
      for (auto& sh : shards_) t = std::min(t, sh->next);
      const Time tg = next_global_time();
      if (tg != Time::max() && tg <= t && tg <= deadline_) {
        // All events before tg have executed and every shard is parked:
        // fire the global actions with the clocks reading tg, then re-plan
        // (they may have scheduled new work anywhere).
        for (auto& sh : shards_) sh->sim.advance_to(tg);
        run_globals_at(tg);
        for (auto& sh : shards_) sh->next = sh->sim.next_event_time();
        continue;
      }
      if (t == Time::max() || t > deadline_) {
        stop_round_ = true;
        return;
      }
      Time we = t + lookahead_;
      if (tg < we) we = tg;
      if (deadline_ != Time::max() && we > deadline_) {
        we = deadline_ + Duration::nanos(1);
      }
      window_end_ = we;
      stop_round_ = false;
      ++rounds_;
      return;
    }
  } catch (...) {
    record_error();
    stop_round_ = true;
  }
}

std::uint64_t ShardedSimulator::raw_events_total() const {
  std::uint64_t n = 0;
  // Reads the raw per-shard counters (friend access) — Simulator::
  // events_executed() on an engine shard forwards back here.
  for (const auto& sh : shards_) n += sh->sim.events_executed_;
  return n;
}

void ShardedSimulator::record_error() noexcept {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  abort_.store(true, std::memory_order_relaxed);
}

Time ShardedSimulator::now() const {
  Time mx = Time::zero();
  for (const auto& sh : shards_) mx = std::max(mx, sh->sim.now());
  return mx;
}

bool ShardedSimulator::pending() const {
  for (const auto& sh : shards_) {
    if (sh->sim.pending()) return true;
  }
  return !globals_.empty();
}

std::uint64_t ShardedSimulator::events_executed() const {
  return raw_events_total();
}

}  // namespace sim
