#include "sim/simulator.hpp"

namespace sim {

// The clock must advance to the event's time *before* its callback runs,
// so callbacks observe a consistent now() and may schedule relative work.

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
  }
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && !queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
  }
  events_executed_ += n;
  return n;
}

}  // namespace sim
