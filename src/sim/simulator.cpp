#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/shard.hpp"

namespace sim {

// The clock must advance to the event's time *before* its callback runs,
// so callbacks observe a consistent now() and may schedule relative work.
//
// Ordering rule shared by every loop below (the *band rule*): at each
// instant, local queue events run first (FIFO, including same-instant
// follow-ups they schedule), then boundary deliveries one at a time in
// (at, src, seq) order — re-preferring the queue after each delivery, since
// a delivery may schedule same-instant local work. The serial loops and
// run_window() produce the same total order, which is what the shard-count
// invariance tests pin down.

std::uint64_t Simulator::run() {
  if (engine_ != nullptr) return engine_->run();
  std::uint64_t n = 0;
  while (pending()) {
    const Time tq = queue_.next_time();
    const Time td = next_delivery_time();
    if (tq <= td) {
      now_ = tq;
      queue_.pop_and_run();
    } else {
      now_ = td;
      pop_delivery_and_run();
    }
    ++n;
  }
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  if (engine_ != nullptr) return engine_->run_until(deadline);
  std::uint64_t n = 0;
  while (pending() && next_event_time() <= deadline) {
    const Time tq = queue_.next_time();
    const Time td = next_delivery_time();
    if (tq <= td) {
      now_ = tq;
      queue_.pop_and_run();
    } else {
      now_ = td;
      pop_delivery_and_run();
    }
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  if (engine_ != nullptr) {
    throw std::logic_error(
        "Simulator::run_events: not available on a sharded-engine shard "
        "(per-shard event counts are not globally meaningful)");
  }
  std::uint64_t n = 0;
  while (n < max_events && pending()) {
    const Time tq = queue_.next_time();
    const Time td = next_delivery_time();
    if (tq <= td) {
      now_ = tq;
      queue_.pop_and_run();
    } else {
      now_ = td;
      pop_delivery_and_run();
    }
    ++n;
  }
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::events_executed() const {
  if (engine_ != nullptr) return engine_->events_executed();
  return events_executed_;
}

void Simulator::post_delivery(Time at, std::uint32_t src_domain,
                              std::uint64_t seq, EventQueue::Callback fn) {
  if (at < now_) {
    throw std::logic_error(
        "Simulator::post_delivery: delivery scheduled in the past "
        "(lookahead violated?)");
  }
  deliveries_.push_back(Delivery{at, src_domain, seq, std::move(fn)});
  std::push_heap(deliveries_.begin(), deliveries_.end(), delivery_after);
}

void Simulator::pop_delivery_and_run() {
  std::pop_heap(deliveries_.begin(), deliveries_.end(), delivery_after);
  EventQueue::Callback fn = std::move(deliveries_.back().fn);
  deliveries_.pop_back();
  fn();
}

std::uint64_t Simulator::run_window(Time end) {
  std::uint64_t n = 0;
  while (true) {
    const Time tq = queue_.next_time();
    const Time td = next_delivery_time();
    const Time t = tq <= td ? tq : td;
    if (t >= end) break;
    now_ = t;
    if (tq <= td) {
      // The cohort also drains same-instant follow-ups, so after this call
      // every queue event at t scheduled before the first delivery at t
      // has run — exactly the serial band order.
      n += queue_.pop_cohort_and_run();
    } else {
      pop_delivery_and_run();
      ++n;
    }
  }
  events_executed_ += n;
  return n;
}

}  // namespace sim
