// Discrete-event queue: an indexed 4-ary min-heap of (time, sequence)
// entries with O(log n) push/pop and O(log n) *true* cancellation.
//
// Determinism: two events scheduled for the same instant fire in the order
// they were scheduled (FIFO tie-break on a monotonically increasing
// sequence number), so simulation runs are exactly reproducible for a given
// seed regardless of heap internals.
//
// Layout (docs/performance.md): heap entries are 24-byte PODs that sift
// cheaply; the callbacks live in a side slot table indexed by the entry, so
// reheapification never moves a closure. Each slot carries a generation
// counter and its current heap position: an EventId is (slot, generation),
// cancellation validates the generation and removes the entry from the
// middle of the heap immediately — no tombstones, no per-event hash-set
// traffic, and size() is exact. A 4-ary heap halves the tree depth of a
// binary heap and keeps the children of a node in one cache line.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
/// Generation-tagged: a handle goes stale the moment its event fires or is
/// cancelled, so cancelling twice (or cancelling a fired event) is a safe
/// no-op even after the slot is reused.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return slot_ != kInvalidSlot; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  constexpr EventId(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kInvalidSlot;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Schedules `cb` to fire at absolute time `at`. Scheduling in the past
  /// (before the most recently popped event) is a programming error and
  /// throws std::logic_error.
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was already cancelled. O(log n): the entry leaves the heap now and
  /// its callback (and everything the closure owns) is destroyed now.
  bool cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; Time::max() when empty.
  Time next_time() const {
    return heap_.empty() ? Time::max() : heap_.front().at;
  }

  /// Pops and runs the earliest event. Returns its time. Precondition:
  /// !empty().
  Time pop_and_run();

  /// Pops every event queued for the earliest pending timestamp and runs
  /// them as one batch (a *cohort*): the entries are extracted from the
  /// heap in one pass and their callbacks dispatched back-to-back, so the
  /// per-event heap traffic of a same-instant burst is paid once up
  /// front. Same-instant events a cohort member schedules carry later
  /// sequence numbers and are drained afterwards in FIFO order, and a
  /// member may cancel() a not-yet-run sibling (the sibling's callback is
  /// destroyed and skipped) — the observable execution order is exactly
  /// the serial pop_and_run() loop's. Returns the number of events run.
  /// Precondition: !empty(). Not reentrant: callbacks must not call
  /// pop_and_run()/pop_cohort_and_run() on this queue, and size()/empty()
  /// exclude still-buffered cohort members while the batch runs.
  std::size_t pop_cohort_and_run();

  Time last_popped() const { return last_popped_; }

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = 0;
  };
  /// A member of the cohort currently being dispatched. The callback has
  /// been moved out of the slot table; `slot` goes kInvalidSlot once the
  /// member runs or a sibling cancels it.
  struct CohortEntry {
    Callback cb;
    std::uint32_t slot;
  };
  static constexpr std::size_t kArity = 4;
  /// heap_pos values at or above this flag address the cohort buffer
  /// (index = heap_pos & ~kCohortFlag) instead of the heap, so cancel()
  /// reaches members that left the heap but have not run yet.
  static constexpr std::uint32_t kCohortFlag = 0x80000000u;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void put(std::size_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    slots_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Removes the entry at heap position `pos` (the hole is filled by the
  /// last entry, which is then sifted whichever way restores the
  /// invariant).
  void remove_at(std::size_t pos);
  /// Destroys the slot's callback, bumps its generation (staling every
  /// outstanding EventId) and returns it to the freelist.
  void release_slot(std::uint32_t slot);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<CohortEntry> cohort_;  // reused batch buffer (zero-alloc)
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  Time last_popped_ = Time::zero();
};

}  // namespace sim
