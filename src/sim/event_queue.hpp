// Discrete-event queue: a priority queue of (time, sequence, callback)
// entries with O(log n) push/pop and O(1) lazy cancellation.
//
// Determinism: two events scheduled for the same instant fire in the order
// they were scheduled (FIFO tie-break on a monotonically increasing
// sequence number), so simulation runs are exactly reproducible for a given
// seed regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return seq_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;  // 0 = invalid
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `at`. Scheduling in the past
  /// (before the most recently popped event) is a programming error and
  /// throws std::logic_error.
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was already cancelled. O(1) amortised (lazy deletion).
  bool cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event; Time::max() when empty.
  Time next_time();

  /// Pops and runs the earliest event. Returns its time. Precondition:
  /// !empty().
  Time pop_and_run();

  Time last_popped() const { return last_popped_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    // Mutable so the callback can be moved out of the (const) heap top
    // right before execution.
    mutable Callback cb;
  };
  struct Cmp {
    // std::priority_queue is a max-heap; invert so the earliest
    // (time, seq) pair is on top.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled entries sitting on top of the heap.
  void drop_cancelled_top();

  std::priority_queue<Entry, std::vector<Entry>, Cmp> heap_;
  std::unordered_set<std::uint64_t> pending_;  // live (not fired/cancelled)
  std::uint64_t next_seq_ = 1;
  Time last_popped_ = Time::zero();
};

}  // namespace sim
