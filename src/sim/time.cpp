#include "sim/time.hpp"

#include <cstdio>

namespace sim {

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  if (ns < 0) return "-" + format_ns(-ns);
  if (ns < 1'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_ns(ns_); }
std::string Time::to_string() const { return format_ns(ns_); }

}  // namespace sim
