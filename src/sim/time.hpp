// Simulated time for the Trio discrete-event simulator.
//
// All simulated timestamps and durations are carried as integer nanoseconds
// wrapped in strong types, so wall-clock time, cycle counts, and simulated
// time cannot be mixed up accidentally. One PPE clock cycle at the paper's
// 1 GHz reference clock equals exactly 1 ns, which keeps cycle<->time
// conversions exact.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace sim {

/// A span of simulated time, in nanoseconds. May be negative in
/// intermediate arithmetic but is normally non-negative.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration nanos(std::int64_t v) { return Duration(v); }
  static constexpr Duration micros(std::int64_t v) { return Duration(v * 1000); }
  static constexpr Duration millis(std::int64_t v) { return Duration(v * 1'000'000); }
  static constexpr Duration seconds(std::int64_t v) { return Duration(v * 1'000'000'000); }
  /// Duration of `cycles` ticks of a `hz` clock, rounded up to whole ns.
  static constexpr Duration cycles(std::int64_t n, std::int64_t hz = 1'000'000'000) {
    return Duration((n * 1'000'000'000 + hz - 1) / hz);
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock. Time zero is the start of the
/// simulation run.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Duration d) const { return Time(ns_ + d.ns()); }
  constexpr Time operator-(Duration d) const { return Time(ns_ - d.ns()); }
  constexpr Duration operator-(Time o) const { return Duration(ns_ - o.ns_); }
  constexpr Time& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

}  // namespace sim
