// The simulation kernel: owns the clock and the event queue and drives the
// run loop. Every simulated component holds a Simulator& and schedules its
// future work through it.
//
// A Simulator is either standalone (the classic single-threaded loop) or
// one shard of a sim::ShardedSimulator (docs/performance.md "Parallel
// discrete-event core"). Sharded simulators carry a second event lane, the
// *delivery band*: boundary messages from other simulation domains, ordered
// by (arrival time, source domain, per-domain sequence). At every instant
// the local queue runs first, then deliveries one at a time — a total order
// that does not depend on how domains are packed onto shards, which is what
// keeps golden digests identical at any --shards count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sim {

class ShardedSimulator;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run after `delay` (>= 0) from now.
  EventId schedule_in(Duration delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at an absolute time (>= now).
  EventId schedule_at(Time at, EventQueue::Callback cb) {
    return queue_.schedule(at, std::move(cb));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains. Returns the number of events run.
  /// On an engine-attached shard this drives the whole sharded simulation
  /// (all shards), so existing call sites work unmodified.
  std::uint64_t run();

  /// Runs events with time <= deadline; the clock is advanced to `deadline`
  /// even if the queue drains earlier. Returns the number of events run.
  std::uint64_t run_until(Time deadline);

  /// Runs at most `max_events` events. Returns the number run. Standalone
  /// simulators only (throws std::logic_error on an engine shard, where
  /// event counts are only meaningful globally).
  std::uint64_t run_events(std::uint64_t max_events);

  bool pending() const { return !queue_.empty() || !deliveries_.empty(); }
  std::size_t queue_size() const { return queue_.size(); }
  /// Events executed by this simulator — or, on an engine-attached shard,
  /// the monotonic total summed across every shard of the engine.
  std::uint64_t events_executed() const;

  // --- Delivery band (sim/shard.hpp; docs/performance.md) ----------------
  /// Posts a boundary message: `fn` runs at `at` (>= now), after every
  /// queue event at the same instant, ordered against other deliveries by
  /// (at, src_domain, seq).
  void post_delivery(Time at, std::uint32_t src_domain, std::uint64_t seq,
                     EventQueue::Callback fn);
  /// Earliest pending boundary delivery; Time::max() when none.
  Time next_delivery_time() const {
    return deliveries_.empty() ? Time::max() : deliveries_.front().at;
  }
  std::size_t deliveries_pending() const { return deliveries_.size(); }
  /// Earliest pending work on either lane; Time::max() when drained.
  Time next_event_time() const {
    const Time tq = queue_.next_time();
    const Time td = next_delivery_time();
    return tq <= td ? tq : td;
  }

  // --- Shard-runner hooks (called by ShardedSimulator) -------------------
  /// Runs every queue event and boundary delivery with time < `end`,
  /// batching same-instant queue events as cohorts. The clock is left at
  /// the last executed instant. Returns the number executed. Unlike
  /// run(), never forwards to the engine.
  std::uint64_t run_window(Time end);
  /// Advances the clock without running anything (window bookkeeping;
  /// no-op when `to` <= now).
  void advance_to(Time to) {
    if (to > now_) now_ = to;
  }
  /// Attaches this simulator to a sharded engine: run()/run_until() now
  /// drive the engine, and events_executed() reports the engine total.
  void set_engine(ShardedSimulator* engine) { engine_ = engine; }

 private:
  friend class ShardedSimulator;

  struct Delivery {
    Time at;
    std::uint32_t src;
    std::uint64_t seq;
    EventQueue::Callback fn;
  };
  /// Heap predicate: a sorts after b — the vector is a binary min-heap on
  /// (at, src, seq) under std::push_heap/std::pop_heap.
  static bool delivery_after(const Delivery& a, const Delivery& b) {
    if (a.at != b.at) return a.at > b.at;
    if (a.src != b.src) return a.src > b.src;
    return a.seq > b.seq;
  }
  void pop_delivery_and_run();

  EventQueue queue_;
  std::vector<Delivery> deliveries_;
  Time now_ = Time::zero();
  std::uint64_t events_executed_ = 0;
  ShardedSimulator* engine_ = nullptr;
};

}  // namespace sim
