// The simulation kernel: owns the clock and the event queue and drives the
// run loop. Every simulated component holds a Simulator& and schedules its
// future work through it.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run after `delay` (>= 0) from now.
  EventId schedule_in(Duration delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at an absolute time (>= now).
  EventId schedule_at(Time at, EventQueue::Callback cb) {
    return queue_.schedule(at, std::move(cb));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains. Returns the number of events run.
  std::uint64_t run();

  /// Runs events with time <= deadline; the clock is advanced to `deadline`
  /// even if the queue drains earlier. Returns the number of events run.
  std::uint64_t run_until(Time deadline);

  /// Runs at most `max_events` events. Returns the number run.
  std::uint64_t run_events(std::uint64_t max_events);

  bool pending() const { return !queue_.empty(); }
  std::size_t queue_size() const { return queue_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  std::uint64_t events_executed_ = 0;
};

}  // namespace sim
