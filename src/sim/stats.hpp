// Small statistics helpers used by the benchmark harnesses: streaming
// mean/min/max and percentile extraction over stored samples.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace sim {

/// Streaming summary: count, mean, min, max, variance (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples and answers percentile queries (nearest-rank).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
    summary_.add(x);
  }

  std::size_t count() const { return values_.size(); }
  double mean() const { return summary_.mean(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }
  double stddev() const { return summary_.stddev(); }

  /// Nearest-rank percentile, p in [0, 100]. 0 samples -> 0.
  double percentile(double p);

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  Summary summary_;
  bool sorted_ = false;
};

}  // namespace sim
