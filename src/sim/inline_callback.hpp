// Small-buffer-optimized move-only callables for the simulation hot path.
//
// Every simulated behaviour is a scheduled closure, so the cost of one
// std::function heap allocation per event is the dominant simulator-host
// overhead (see docs/performance.md). InlineFunction stores the callable
// inside the object when it fits the inline budget and is nothrow-move-
// constructible; larger or throwing-move callables fall back to a single
// heap cell, preserving correctness for cold paths. Unlike std::function
// it is move-only, so captures may own resources (PacketPtr, vectors)
// without refcount or clone machinery.
//
// The inline budgets are chosen so the engine's hot captures never
// allocate:
//   * event callbacks (InlineCallback): 88 bytes — enough for an
//     XtxnCallback envelope (48 B) plus a moved-in XtxnReply (40 B), the
//     largest closure the SMS/hash/MQSS reply path schedules;
//   * XTXN reply callbacks: 32 bytes — (this, slot, issued-time, op) from
//     the PPE sync-XTXN path is 24 B.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sim {

template <typename Signature, std::size_t InlineBytes = 88>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (stores_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = &inline_invoke<Fn>;
      manage_ = &inline_manage<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = &heap_invoke<Fn>;
      manage_ = &heap_manage<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  static constexpr std::size_t inline_capacity() { return InlineBytes; }

  /// True when a callable of type F lives in the inline storage (no heap).
  template <typename F>
  static constexpr bool stores_inline() {
    using Fn = std::remove_cvref_t<F>;
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(Op, void* self, void* dest);

  template <typename Fn>
  static R inline_invoke(void* s, Args&&... args) {
    return (*std::launder(reinterpret_cast<Fn*>(s)))(
        std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void inline_manage(Op op, void* self, void* dest) {
    Fn* f = std::launder(reinterpret_cast<Fn*>(self));
    if (op == Op::kMoveTo) {
      ::new (dest) Fn(std::move(*f));
    }
    f->~Fn();
  }

  template <typename Fn>
  static R heap_invoke(void* s, Args&&... args) {
    return (**std::launder(reinterpret_cast<Fn**>(s)))(
        std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void heap_manage(Op op, void* self, void* dest) {
    Fn** slot = std::launder(reinterpret_cast<Fn**>(self));
    if (op == Op::kMoveTo) {
      ::new (dest) Fn*(*slot);  // ownership transfers by pointer copy
    } else {
      delete *slot;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(Op::kMoveTo, other.storage_, storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

/// The event queue's callback type: a nullary inline closure.
using InlineCallback = InlineFunction<void()>;

}  // namespace sim
