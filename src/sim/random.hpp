// Deterministic pseudo-random source for the simulator.
//
// xoshiro256++ seeded through splitmix64, plus the handful of distributions
// the experiments need (uniform, exponential, Bernoulli). Self-contained so
// results are bit-identical across standard libraries, unlike
// std::uniform_real_distribution.
#pragma once

#include <array>
#include <cstdint>

namespace sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  /// the result is unbiased.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Forks an independent stream; deterministic function of this stream's
  /// state. Used to give each simulated worker its own stream.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace sim
