// FluidEngine: flow-level (fluid) traffic modelling for bulk steady-state
// streams (docs/fluid.md).
//
// Packet-level simulation pays one event per frame per hop; a saturating
// background stream on a 100 Gbps link is ~8.5M frames per simulated
// second before it ever reaches a router. The fluid engine advances
// *designated* flows as rate-shared transfers instead: each flow is a
// route (a list of FluidEngine links), a demand cap, and an optional byte
// total. Rates are the demand-capped max-min fair allocation over the
// link graph (progressive filling, the same congestion-aware link sharing
// tt-npe applies to NoC transfers) and are recomputed only at *fluid
// events* — flow arrival, departure, pause/resume at a fidelity boundary,
// a completion, or the periodic tick that re-samples packet occupancy.
// Between events every flow just accrues rate x time bytes; nothing is
// simulated per frame.
//
// Coexistence with packet traffic is two-way (docs/fluid.md "Shared
// capacity"): each link can carry a packet-occupancy probe (cumulative
// bytes transmitted by real frames); the measured packet rate over the
// last tick is subtracted from the capacity the fluid allocation may use,
// and every recomputation pushes the link's total fluid rate to a rate
// observer so the packet side (net::LinkEndpoint::set_fluid_load) can
// stretch its serialization delay by the bandwidth the fluid flows hold.
//
// Determinism (the non-negotiable): all fluid state is global, so on a
// sharded simulation every wakeup runs as a ShardedSimulator *global
// action* — at a deterministic simulated time, with every shard parked
// and every earlier event executed. Nothing in a rate update depends on
// thread timing or shard packing, so golden digests are bit-identical at
// any --shards count. On a standalone Simulator the same wakeups are
// ordinary events. All engine methods must be called from that same
// serialized context: before the run starts, between runs, or from a
// global action / standalone event (never from a shard event handler).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sim {

class ShardedSimulator;

class FluidEngine {
 public:
  using LinkId = std::uint32_t;
  using FlowId = std::uint32_t;
  static constexpr FlowId kInvalidFlow = 0xffffffffu;

  struct Config {
    /// Rate-update cadence while any flow is running: packet-occupancy
    /// probes are re-sampled and rates recomputed every tick. Smaller
    /// ticks track packet bursts more closely and cost more updates.
    Duration tick = Duration::micros(20);
  };

  /// `engine` null = standalone mode (wakeups are plain simulator events
  /// on `simulator`); non-null = sharded mode (wakeups are global actions
  /// and `simulator` must be one of the engine's shard simulators).
  FluidEngine(Simulator& simulator, ShardedSimulator* engine);
  FluidEngine(Simulator& simulator, ShardedSimulator* engine, Config config);
  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  // --- Link graph --------------------------------------------------------
  /// Registers a link of `capacity_gbps` (1 Gbps == 1 bit/ns) and returns
  /// its id. Links are never removed.
  LinkId add_link(double capacity_gbps);
  std::size_t num_links() const { return links_.size(); }

  /// Installs the packet-occupancy probe: sampled at every tick, must
  /// return the cumulative bytes real frames have transmitted on the
  /// link. The delta across the tick window is reserved away from the
  /// fluid capacity.
  void set_packet_probe(LinkId link, std::function<std::uint64_t()> probe);

  /// Observer pushed after every recomputation with the link's new total
  /// fluid rate and cumulative fluid bytes carried — the hook that feeds
  /// net::LinkEndpoint::set_fluid_load.
  void set_rate_observer(
      LinkId link,
      std::function<void(double fluid_gbps, std::uint64_t fluid_bytes)> obs);

  // --- Flows -------------------------------------------------------------
  struct FlowSpec {
    /// Links traversed, in order (order is irrelevant to the allocation).
    std::vector<LinkId> route;
    /// Source pacing cap in Gbps; <= 0 means unbounded (share-limited).
    double demand_gbps = 0.0;
    /// Wire bytes to transfer; 0 = open-ended (runs until removed).
    std::uint64_t total_bytes = 0;
    /// Fired (from the engine's serialized update context) when a finite
    /// flow's last byte is carried.
    std::function<void(Time)> on_complete;
  };

  /// Registers a flow and recomputes rates. The flow starts accruing now.
  FlowId add_flow(FlowSpec spec);
  /// Removes a flow (no completion fires). Safe on completed flows.
  void remove_flow(FlowId id);

  /// Fidelity boundary (docs/fluid.md "Demotion and re-materialisation"):
  /// pause stops accrual and releases the flow's bandwidth — the caller
  /// re-materialises it as real frames; resume returns it to fluid mode.
  void pause_flow(FlowId id);
  void resume_flow(FlowId id);
  /// Credits bytes the re-materialised flow carried as real frames while
  /// paused, so a demote -> re-materialise -> demote round trip stays
  /// byte-exact. May complete a finite flow (fires on_complete).
  void credit_flow(FlowId id, std::uint64_t bytes);

  bool flow_paused(FlowId id) const { return flows_[id].paused; }
  bool flow_done(FlowId id) const { return flows_[id].done; }
  /// Bytes carried so far (fluid accrual + packet credits).
  std::uint64_t flow_bytes(FlowId id) const { return flows_[id].carried; }
  std::uint64_t flow_remaining(FlowId id) const;
  double flow_rate_gbps(FlowId id) const { return flows_[id].rate_gbps; }

  /// Stops scheduling wakeups; a pending wakeup no-ops. Call when the
  /// run is over — open-ended flows would otherwise keep the simulation
  /// ticking forever (pair with run_until, like trace sampling).
  void stop() { stopped_ = true; }

  // --- Introspection / bench counters ------------------------------------
  double link_capacity_gbps(LinkId link) const {
    return links_[link].capacity_gbps;
  }
  double link_fluid_gbps(LinkId link) const { return links_[link].fluid_gbps; }
  double link_packet_gbps(LinkId link) const {
    return links_[link].packet_gbps;
  }
  std::uint64_t link_fluid_bytes(LinkId link) const {
    return links_[link].fluid_bytes;
  }
  /// Total bytes advanced in fluid mode across all flows.
  std::uint64_t fluid_bytes_total() const { return fluid_bytes_total_; }
  /// Rate recomputations / wakeups executed / completions fired.
  std::uint64_t updates() const { return updates_; }
  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t completions() const { return completions_; }
  const Config& config() const { return config_; }

 private:
  struct LinkState {
    double capacity_gbps = 0.0;
    double packet_gbps = 0.0;  // measured over the last probe window
    double fluid_gbps = 0.0;   // sum of current flow rates through it
    std::uint64_t fluid_bytes = 0;
    std::uint64_t probe_last = 0;
    std::function<std::uint64_t()> probe;
    std::function<void(double, std::uint64_t)> observer;
  };
  struct FlowState {
    std::vector<LinkId> route;
    double demand_gbps = 0.0;
    std::uint64_t total_bytes = 0;
    std::function<void(Time)> on_complete;
    double rate_gbps = 0.0;
    std::uint64_t carried = 0;
    double frac = 0.0;  // sub-byte accrual remainder
    Time complete_at = Time::max();
    bool paused = false;
    bool done = false;
    bool in_use = false;
  };

  Time now() const;
  bool any_running() const;
  /// Accrues rate x dt onto every running flow, completing flows whose
  /// completion instant has been reached (byte-exact: `carried` is forced
  /// to `total_bytes` at the completion instant).
  void advance_to_now();
  /// Re-samples packet probes (when a full probe window elapsed),
  /// recomputes the max-min allocation, refreshes per-flow completion
  /// times and pushes rate observers.
  void update();
  void sample_probes(Time at);
  void recompute_rates();
  void refresh_completions(Time at);
  void push_observers();
  void schedule_wakeup();
  void on_wake();
  void complete_flow(FlowId id, Time at);

  Simulator& sim_;
  ShardedSimulator* engine_;
  Config config_;
  std::vector<LinkState> links_;
  std::vector<FlowState> flows_;
  Time last_advance_;
  Time last_probe_;
  Time next_wake_ = Time::max();
  bool stopped_ = false;
  std::uint64_t fluid_bytes_total_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t completions_ = 0;
};

}  // namespace sim
