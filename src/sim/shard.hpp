// Conservative parallel discrete-event engine (time-window PDES with link
// latency as lookahead) — docs/performance.md "Parallel discrete-event
// core".
//
// The simulated world is split into *domains* (one per router together with
// its PFEs/PPEs/SMS/MQSS and host-side endpoints). Domains are packed onto
// *shards* — one OS thread and one sim::Simulator each — round-robin
// (domain % num_shards). Cross-domain traffic is the only coupling, and
// every cross-domain link delay is a known constant >= the engine
// lookahead, so the classic conservative window protocol applies: all
// shards repeatedly execute the half-open window [T, T + lookahead) in
// parallel, where T is the globally earliest pending event, then exchange
// boundary messages at a barrier. A message sent inside a window arrives no
// earlier than the window's end, so no shard ever receives work in its
// past.
//
// Determinism at any shard count: every cross-domain send is stamped
// (arrival time, source domain, per-domain sequence) and executes at its
// destination in that total order, after all locally-queued events at the
// same instant (the *band rule*, see simulator.hpp). The stamp depends only
// on the simulation itself — never on thread timing or on how domains are
// packed — so golden digests are bit-identical for --shards 1 and N.
//
// Global actions (fault injection, failover control) run via
// schedule_global(): at the window-planning barrier, with every shard
// parked and every event before time t already executed, the action fires
// once on the planning thread with all shard clocks advanced to t.
#pragma once

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sim {

class ShardedSimulator {
 public:
  using Callback = EventQueue::Callback;

  /// `lookahead` must be positive when `num_shards` > 1 and no greater
  /// than the smallest cross-domain link latency. `num_shards` is clamped
  /// to [1, num_domains]. Worker threads (one per shard) start here and
  /// park between runs.
  ShardedSimulator(std::uint32_t num_domains, std::uint32_t num_shards,
                   Duration lookahead);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::uint32_t num_domains() const { return num_domains_; }
  std::uint32_t num_shards() const { return num_shards_; }
  Duration lookahead() const { return lookahead_; }

  std::uint32_t shard_of(std::uint32_t domain) const {
    return domain % num_shards_;
  }
  /// The simulator that executes `domain`'s events.
  Simulator& domain_sim(std::uint32_t domain) {
    return shards_[shard_of(domain)]->sim;
  }
  Simulator& shard(std::uint32_t s) { return shards_[s]->sim; }

  /// Posts a cross-domain message: `fn` runs on dst_domain's shard at `at`
  /// in band order. Call only from src_domain's executing thread (or
  /// between runs). `at` must respect the lookahead when the two domains
  /// live on different shards.
  void post(std::uint32_t src_domain, std::uint32_t dst_domain, Time at,
            Callback fn);

  /// Schedules `fn` to run at `at` on the planning thread with every shard
  /// parked: all events before `at` have executed, none at or after `at`
  /// has, and all shard clocks read `at`. FIFO among same-instant actions.
  /// Call from global actions themselves or while no run is in progress.
  void schedule_global(Time at, Callback fn);

  /// Runs until every shard drains and no global action is pending.
  /// Returns the number of events executed (queue pops + deliveries;
  /// global actions are not counted). All shard clocks end at the global
  /// maximum. Rethrows the first exception any shard's event threw.
  std::uint64_t run();

  /// Runs every event and global action with time <= deadline, then
  /// advances all shard clocks to `deadline`.
  std::uint64_t run_until(Time deadline);

  /// Global clock: the maximum of the shard clocks (they agree after run()
  /// / run_until() return).
  Time now() const;
  bool pending() const;
  /// Monotonic events executed, summed across shards. Call between runs.
  std::uint64_t events_executed() const;
  /// Number of synchronisation windows executed so far (one barrier round
  /// each in parallel mode) — a measure of sync overhead for the benches.
  std::uint64_t rounds() const { return rounds_; }

 private:
  struct Message {
    Time at;
    std::uint32_t src_domain;
    std::uint64_t seq;
    Callback fn;
  };
  struct GlobalAction {
    Time at;
    std::uint64_t seq;
    Callback fn;
  };
  /// One shard: a simulator plus its per-destination-shard outboxes.
  /// Cache-line aligned so neighbouring shards' hot state never shares a
  /// line.
  struct alignas(64) Shard {
    Simulator sim;
    std::vector<std::vector<Message>> outbox;  // indexed by dest shard
    Time next = Time::max();  // published at the drain barrier
  };
  /// std::barrier completion: must be a noexcept functor (plan_next_window
  /// traps its own failures into error_).
  struct PlanFn {
    ShardedSimulator* self;
    void operator()() noexcept { self->plan_next_window(); }
  };

  static bool global_after(const GlobalAction& a, const GlobalAction& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
  Time next_global_time() const {
    return globals_.empty() ? Time::max() : globals_.front().at;
  }
  /// Pops and runs every global action scheduled for exactly `tg`
  /// (including ones those actions schedule for `tg` itself).
  void run_globals_at(Time tg);

  std::uint64_t run_to(Time deadline, bool advance_to_deadline);
  std::uint64_t run_serial(Time deadline);
  void worker_main(std::uint32_t me);
  void round_loop(std::uint32_t me);
  /// Moves every message other shards addressed to `me` into the delivery
  /// band. Runs between the two barriers, when no shard is executing.
  void drain_inbox(std::uint32_t me);
  /// Barrier completion: runs due global actions, then either plans the
  /// next window [T, window_end_) or sets stop_round_.
  void plan_next_window() noexcept;
  std::uint64_t raw_events_total() const;
  void record_error() noexcept;

  std::uint32_t num_domains_;
  std::uint32_t num_shards_;
  Duration lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-source-domain message sequence; each entry is written only by the
  /// thread currently executing that domain.
  std::vector<std::uint64_t> domain_seq_;

  std::mutex globals_mu_;
  std::vector<GlobalAction> globals_;  // min-heap on (at, seq)
  std::uint64_t global_seq_ = 0;

  // Round state. window_end_ / stop_round_ / deadline_ are written by the
  // barrier completion (or the control thread between runs) and read by
  // workers after the barrier — the barrier itself orders the accesses.
  Time window_end_ = Time::zero();
  bool stop_round_ = false;
  Time deadline_ = Time::max();
  /// True while a global action runs (all shards parked); makes post()
  /// bypass the outboxes, which would drain too late.
  bool in_global_ = false;
  std::uint64_t rounds_ = 0;
  std::atomic<bool> abort_{false};

  // Worker parking / completion handshake.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable finish_cv_;
  std::uint64_t run_gen_ = 0;
  std::uint32_t finished_ = 0;
  bool stop_threads_ = false;
  std::exception_ptr error_;

  std::optional<std::barrier<>> pre_barrier_;
  std::optional<std::barrier<PlanFn>> compute_barrier_;
  std::vector<std::thread> threads_;
};

}  // namespace sim
