#include "sim/random.hpp"

#include <cmath>

namespace sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire-style rejection: retry while in the biased zone.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork() {
  Rng child(next_u64());
  return child;
}

}  // namespace sim
