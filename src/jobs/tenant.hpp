// Tenant declarations for the multi-tenant job subsystem (docs/jobs.md).
//
// A TenantSpec describes one tenant to be admitted onto a shared Cluster:
// either a Trio-ML allreduce job (its TenantId doubles as the Trio-ML job
// id) or a best-effort background traffic generator. A JobsSpec is an
// ordered list of tenants, built programmatically or parsed from the
// line-oriented spec consumed by `trio-run --jobs FILE`:
//
//   # victim, a second job, an aggressor, and an RPC service
//   tenant 1 allreduce weight=4 grads=8192 window=64 blocks=256 sms=96M
//   tenant 2 allreduce weight=2 grads=8192
//   tenant 3 besteffort weight=1 load=0.9
//   tenant 4 netrpc policy=sum values=8 servers=3 calls=32 gets=64
//
// Parse errors carry the line *and column* of the offending token, in the
// same style as the faults DSL ("jobs DSL line 2 col 20: ... in \"...\"").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netrpc/wire_format.hpp"
#include "trio/router.hpp"

namespace jobs {

/// Tenants are identified by the Trio-ML job id they own: one byte, the
/// top byte of every hash-table key the tenant's blocks occupy.
using TenantId = std::uint8_t;

enum class TenantKind {
  kAllreduce,   // a Trio-ML in-network allreduce job
  kBestEffort,  // background traffic generator (no aggregation state)
  kNetRpc,      // in-network RPC aggregation + hot-key cache (src/netrpc/)
};

struct TenantSpec {
  TenantId id = 1;
  TenantKind kind = TenantKind::kAllreduce;
  /// Relative MQSS WDRR weight (>= 1) — `weight=N`.
  std::uint32_t weight = 1;
  /// Gradients per worker for one allreduce — `grads=N`.
  std::size_t grads = 4096;
  /// Streaming window (outstanding packets per worker) — `window=N`.
  std::uint32_t window = 64;
  /// Concurrent aggregation-block (bucket) quota per aggregator —
  /// `blocks=N`. This is the hash-table/bucket half of the tenant's
  /// admission quota; the datapath enforces it via the job's
  /// active-block counter.
  std::uint16_t block_cnt_max = 256;
  /// SMS byte quota per PFE — `sms=N` (suffixes K/M/G). 0 = unlimited.
  /// Admission reserves the job's worst-case footprint against it and
  /// rejects tenants that do not fit — never a mid-run failure.
  std::uint64_t sms_quota_bytes = 0;
  /// Best-effort offered load as a fraction of each host link — `load=F`.
  double load = 1.0;
  /// Fluid-mode eligibility — `fluid=0|1` (docs/fluid.md). Only
  /// best-effort tenants are demotable (their traffic is pure load with
  /// no aggregation state); `fluid=0` opts an aggressor out so it stays
  /// packet-simulated even under `--fluid`. Ignored for allreduce and
  /// netrpc tenants, whose RMW paths always need packet fidelity.
  bool fluid = true;

  // --- NetRPC tenants (src/netrpc/, docs/netrpc.md) ----------------------
  /// Response merge policy — `policy=sum|min|majority`.
  netrpc::MergePolicy rpc_policy = netrpc::MergePolicy::kSum;
  /// 32-bit value words per RPC — `values=N` (1..24).
  std::uint16_t rpc_value_words = 8;
  /// Replica fan-out — `servers=N`; replicas occupy the last N hosts.
  std::uint8_t rpc_servers = 3;
  /// Client hosts — `clients=N`; clients occupy the first N hosts.
  std::uint8_t rpc_clients = 1;
  /// Outstanding fan-out calls per client — `rpcwindow=N` (1..16, the
  /// PFE's pending-slot bound).
  std::uint32_t rpc_window = 8;
  /// Closed-loop workload per client — `calls=N` fan-out RPCs,
  /// `gets=N` hot-key GETs, `puts=N` writes, over `hotkeys=N` keys.
  std::uint32_t rpc_calls = 32;
  std::uint32_t rpc_gets = 64;
  std::uint32_t rpc_puts = 8;
  std::uint32_t rpc_hot_keys = 4;

  bool is_allreduce() const { return kind == TenantKind::kAllreduce; }
  bool is_netrpc() const { return kind == TenantKind::kNetRpc; }
};

struct JobsSpec {
  std::vector<TenantSpec> tenants;

  bool empty() const { return tenants.empty(); }
  std::size_t size() const { return tenants.size(); }

  /// Parses the tenant spec DSL above. Throws std::invalid_argument with
  /// the offending line and column on any syntax error.
  static JobsSpec parse(const std::string& text);
  /// parse() over a file's contents; throws std::runtime_error when the
  /// file cannot be read.
  static JobsSpec load(const std::string& path);
};

const char* kind_name(TenantKind kind);

/// Per-tenant telemetry scope (docs/telemetry.md): everything a tenant's
/// hosts register carries the "tenant.<id>." metric prefix, so tenancy
/// and netrpc-as-tenant runs expose per-tenant counters side by side
/// ("tenant.4.retransmits", "tenant.4.cached_gets", ...). Trace pids for
/// per-tenant rows sit in a band far above the router scopes.
trio::TelemetryScope tenant_scope(TenantId id);

}  // namespace jobs
