// JobManager: admits N tenants onto one shared Cluster (docs/jobs.md).
//
// Each tenant is either a Trio-ML allreduce job — instantiated as its own
// job record on every aggregator of the physical tree, with its own
// per-host workers multiplexed onto the existing host links — or a
// best-effort background traffic generator. Admission is all-or-nothing:
// the tenant's worst-case SMS footprint is reserved on every aggregating
// PFE against its byte quota *before* any job record is written, so an
// admitted tenant can never be starved of aggregation memory mid-run, and
// a tenant that does not fit is rejected at admission time, never killed
// mid-run.
//
// enable_isolation() turns on the two datapath isolation mechanisms:
// per-tenant hash-table key partitions (HwHashTable::enable_key_partitions
// — an aggressor filling its buckets cannot evict a victim's) and
// MQSS-backed weighted per-tenant egress queueing on every router
// (trio::Router::enable_tenant_qos), with each tenant's WDRR weight taken
// from its TenantSpec. Both are off by default, matching the
// single-tenant Cluster behaviour bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "jobs/best_effort.hpp"
#include "jobs/host_mux.hpp"
#include "jobs/tenant.hpp"
#include "netrpc/app.hpp"
#include "netrpc/host.hpp"

namespace faults {
class FaultInjector;
}

namespace jobs {

class FluidController;

struct AdmissionResult {
  bool admitted = false;
  std::string reason;  // populated on rejection
};

/// A NetRPC tenant's workload outcome (closed-loop driver per client).
struct NetRpcRun {
  std::uint64_t calls = 0;          // fan-out RPCs completed
  std::uint64_t degraded = 0;       // completed partial by the aging scan
  std::uint64_t gets = 0;
  std::uint64_t cached_gets = 0;    // answered by the PFE's hot-key cache
  std::uint64_t puts = 0;
  /// FNV-1a over every completed op's merged/returned values in
  /// completion order — the netrpc golden digest.
  std::uint64_t value_digest = 14695981039346656037ull;
  sim::Samples call_latency_us;
  sim::Samples get_hit_latency_us;
  sim::Samples get_miss_latency_us;
};

/// One tenant's outcome from JobManager::run().
struct TenantRun {
  TenantId id = 0;
  TenantKind kind = TenantKind::kAllreduce;
  /// Per-worker results in rack-major global order; empty grads for
  /// workers that did not finish before the deadline. Empty for
  /// best-effort and netrpc tenants.
  std::vector<trioml::AllreduceResult> results;
  /// Populated for netrpc tenants only.
  NetRpcRun netrpc;
  int finished = 0;
  sim::Time start;
  sim::Time finish;  // last result arrival (or the deadline)

  double duration_us() const { return (finish - start).us(); }
  /// FNV-1a fingerprint: over every worker's result gradients in order
  /// for allreduce tenants, over every op's values in completion order
  /// for netrpc tenants (equal across deterministic replays).
  std::uint64_t digest() const;
};

struct MultiTenantRun {
  std::vector<TenantRun> tenants;  // admission order
  sim::Time finish;

  const TenantRun* tenant(TenantId id) const;
};

class JobManager {
 public:
  /// Installs a HostMux on every host downlink (the Cluster's built-in
  /// workers keep receiving their job's traffic through it). The cluster
  /// must outlive the manager.
  explicit JobManager(cluster::Cluster& cluster);

  /// Admits one tenant. Allreduce tenants get a job record on every
  /// aggregator and a worker per host; best-effort tenants get one paced
  /// traffic source per host. Rejections (duplicate id, SMS quota
  /// exceeded) leave the cluster untouched.
  AdmissionResult admit(const TenantSpec& spec);
  /// admit() for every tenant of `spec`, stopping at the first rejection.
  AdmissionResult admit_all(const JobsSpec& spec);

  /// Turns on per-tenant fabric isolation on every router: hash-table key
  /// partitioning (`partitions` slices; tenants with distinct ids modulo
  /// `partitions` cannot evict each other's buckets) and MQSS weighted
  /// per-tenant egress queues (`queue_frames` per tenant per port).
  /// Admitted tenants' weights are applied; later admissions register
  /// theirs on entry.
  void enable_isolation(std::uint32_t partitions = 8,
                        std::size_t queue_frames = 256);
  bool isolation_enabled() const { return isolation_; }

  /// Runs every admitted tenant concurrently: each allreduce tenant's
  /// workers stream tenant_gradients() for generation `gen_id`, each
  /// best-effort tenant offers its configured load, until every allreduce
  /// finished or `deadline`.
  MultiTenantRun run(std::uint16_t gen_id, sim::Time deadline);

  /// The deterministic per-worker gradients tenant `id` streams — a
  /// tenant-salted variant of cluster::patterned_gradients, identical
  /// between a solo and a multi-tenant run (bit-identity checks).
  static std::vector<std::vector<std::uint32_t>> tenant_gradients(
      TenantId id, int workers, std::size_t grads_per_worker);

  /// Tenant `tenant`'s worker on host `host` (rack-major global index);
  /// null when the tenant has no worker there. The cluster's built-in
  /// workers answer for the cluster's own job id once that tenant is
  /// admitted.
  trioml::TrioMlWorker* tenant_worker(int tenant, int host);

  // --- NetRPC tenants (src/netrpc/, docs/netrpc.md) ----------------------
  /// The NetRpcApp on rack 0's leaf PFE — created by the first netrpc
  /// admission (clients occupy the first hosts, so every request and
  /// every response crosses that PFE exactly once). Null before then.
  netrpc::NetRpcApp* netrpc_app() { return netrpc_app_.get(); }
  /// Tenant `tenant`'s RPC server / client on host `host`; null when the
  /// tenant has no such endpoint there.
  netrpc::RpcServer* tenant_rpc_server(int tenant, int host);
  netrpc::RpcClient* tenant_rpc_client(int tenant, int host);
  /// Aging period of the netrpc pending/cache scans (applied when the
  /// app is created; call before the first netrpc admission to change).
  void set_netrpc_aging(sim::Duration period) { netrpc_aging_ = period; }

  /// Routes `tenant=` qualified crash/restart fault events to this
  /// manager's per-tenant workers (docs/faults.md).
  void bind_fault_injector(faults::FaultInjector& injector);

  /// Adopts `controller` as the fluid fidelity boundary (docs/fluid.md):
  /// run() demotes every eligible best-effort tenant (spec.fluid, the
  /// default) to a fluid background stream per host instead of starting
  /// its packet sources, and stops the controller when the run ends.
  /// Ineligible (`fluid=0`) tenants keep their packet sources. The
  /// controller must outlive the manager's runs.
  void enable_fluid(FluidController& controller);
  bool fluid_enabled() const { return fluid_ != nullptr; }

  /// Tenant-scoped teardown: crashes the tenant's workers, drops its
  /// active blocks and removes its job record on every aggregator, and
  /// releases its SMS reservation. Other tenants are untouched. No-op for
  /// unknown ids.
  void teardown(TenantId id);

  std::vector<TenantId> admitted() const;
  const TenantSpec* tenant_spec(TenantId id) const;
  HostMux& host_mux(int host) { return *muxes_.at(std::size_t(host)); }

 private:
  struct Tenant {
    TenantSpec spec;
    /// Owned per-host workers (empty when the tenant adopted the
    /// cluster's built-in workers or is best-effort).
    std::vector<std::unique_ptr<trioml::TrioMlWorker>> workers;
    std::vector<std::unique_ptr<BestEffortSource>> sources;
    /// NetRPC endpoints: clients on the first hosts, servers on the
    /// last (indexes in client_hosts/server_hosts).
    std::vector<std::unique_ptr<netrpc::RpcClient>> rpc_clients;
    std::vector<std::unique_ptr<netrpc::RpcServer>> rpc_servers;
    std::vector<int> client_hosts;
    std::vector<int> server_hosts;
    /// Bytes reserved per aggregating PFE at admission.
    std::uint64_t reserved_bytes = 0;
    bool adopted_builtin = false;
    /// teardown() leaves the Tenant allocated (simulator callbacks may
    /// still reference its crashed workers) but no longer runnable.
    bool torn_down = false;
  };

  trioml::TrioMlApp::JobSetup leaf_setup(const TenantSpec& spec,
                                         const cluster::RackNode& node) const;
  trioml::TrioMlApp::JobSetup spine_setup(const TenantSpec& spec,
                                          bool backup) const;
  std::vector<trio::SharedMemorySystem*> aggregator_sms();
  std::vector<trio::Router*> routers();
  void apply_weight(TenantId id, std::uint32_t weight);
  AdmissionResult admit_netrpc(const TenantSpec& spec, Tenant& tenant);
  void start_netrpc_tenant(TenantRun& run, Tenant& tenant, int& remaining);

  cluster::Cluster& cluster_;
  sim::Simulator& sim_;
  FluidController* fluid_ = nullptr;
  /// Tenants whose background streams are already registered with the
  /// fluid controller (registration is once, on the first run).
  std::vector<TenantId> fluid_adopted_;
  std::vector<std::unique_ptr<HostMux>> muxes_;  // by global worker
  std::map<TenantId, Tenant> tenants_;           // ordered: admission replay
  std::vector<TenantId> admission_order_;
  bool isolation_ = false;
  std::size_t qos_queue_frames_ = 256;
  std::unique_ptr<netrpc::NetRpcApp> netrpc_app_;
  sim::Duration netrpc_aging_ = sim::Duration::micros(200);
};

}  // namespace jobs
