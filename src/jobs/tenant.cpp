#include "jobs/tenant.hpp"

#include <cctype>

#include "netrpc/layout.hpp"
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace jobs {
namespace {

struct Token {
  std::string text;
  std::size_t col = 1;  // 1-based column of the token's first character
};

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back({line.substr(start, i - start), start + 1});
  }
  return tokens;
}

[[noreturn]] void fail(std::size_t line_no, std::size_t col,
                       const std::string& why, const std::string& line) {
  std::ostringstream out;
  out << "jobs DSL line " << line_no << " col " << col << ": " << why
      << " in \"" << line << "\"";
  throw std::invalid_argument(out.str());
}

std::uint64_t parse_u64(const Token& tok, std::size_t line_no,
                        const std::string& line, std::size_t value_off = 0) {
  const std::string text = tok.text.substr(value_off);
  if (text.empty()) fail(line_no, tok.col + value_off, "missing number", line);
  std::uint64_t value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      fail(line_no, tok.col + value_off, "expected a number, got \"" + text + "\"",
           line);
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Bytes with an optional K/M/G suffix (binary multiples), e.g. `96M`.
std::uint64_t parse_bytes(const Token& tok, std::size_t line_no,
                          const std::string& line, std::size_t value_off) {
  std::string text = tok.text.substr(value_off);
  std::uint64_t mult = 1;
  if (!text.empty()) {
    switch (text.back()) {
      case 'K': case 'k': mult = 1ull << 10; break;
      case 'M': case 'm': mult = 1ull << 20; break;
      case 'G': case 'g': mult = 1ull << 30; break;
      default: break;
    }
    if (mult != 1) text.pop_back();
  }
  if (text.empty()) fail(line_no, tok.col + value_off, "missing number", line);
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      fail(line_no, tok.col + value_off,
           "expected bytes (digits with optional K/M/G), got \"" +
               tok.text.substr(value_off) + "\"",
           line);
    }
  }
  return std::stoull(text) * mult;
}

double parse_fraction(const Token& tok, std::size_t line_no,
                      const std::string& line, std::size_t value_off) {
  const std::string text = tok.text.substr(value_off);
  double value = 0.0;
  bool ok = false;
  try {
    std::size_t used = 0;
    value = std::stod(text, &used);
    ok = used == text.size();
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok) {
    fail(line_no, tok.col + value_off,
         "expected a fraction, got \"" + text + "\"", line);
  }
  if (value <= 0.0 || value > 1.0) {
    fail(line_no, tok.col + value_off, "load must be in (0, 1], got " + text,
         line);
  }
  return value;
}

}  // namespace

const char* kind_name(TenantKind kind) {
  switch (kind) {
    case TenantKind::kAllreduce: return "allreduce";
    case TenantKind::kBestEffort: return "besteffort";
    case TenantKind::kNetRpc: return "netrpc";
  }
  return "?";
}

trio::TelemetryScope tenant_scope(TenantId id) {
  trio::TelemetryScope scope;
  scope.metric_prefix = "tenant." + std::to_string(int(id)) + ".";
  scope.process_prefix = scope.metric_prefix;
  scope.trace_pid_base = 900'000 + int(id) * 16;
  return scope;
}

JobsSpec JobsSpec::parse(const std::string& text) {
  JobsSpec spec;
  std::set<TenantId> seen;
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0].text != "tenant") {
      fail(line_no, tokens[0].col,
           "unknown directive \"" + tokens[0].text + "\" (expected \"tenant\")",
           line);
    }
    if (tokens.size() < 3) {
      fail(line_no, tokens.back().col + tokens.back().text.size(),
           "expected \"tenant <id> <allreduce|besteffort> [key=value...]\"",
           line);
    }

    TenantSpec tenant;
    const std::uint64_t id = parse_u64(tokens[1], line_no, line);
    if (id < 1 || id > 255) {
      fail(line_no, tokens[1].col, "tenant id must be in 1..255", line);
    }
    tenant.id = static_cast<TenantId>(id);
    if (!seen.insert(tenant.id).second) {
      fail(line_no, tokens[1].col,
           "duplicate tenant id " + std::to_string(id), line);
    }

    if (tokens[2].text == "allreduce") {
      tenant.kind = TenantKind::kAllreduce;
    } else if (tokens[2].text == "besteffort") {
      tenant.kind = TenantKind::kBestEffort;
    } else if (tokens[2].text == "netrpc") {
      tenant.kind = TenantKind::kNetRpc;
    } else {
      fail(line_no, tokens[2].col,
           "unknown tenant kind \"" + tokens[2].text +
               "\" (expected allreduce, besteffort or netrpc)",
           line);
    }

    for (std::size_t t = 3; t < tokens.size(); ++t) {
      const Token& tok = tokens[t];
      const auto eq = tok.text.find('=');
      if (eq == std::string::npos) {
        fail(line_no, tok.col, "expected key=value, got \"" + tok.text + "\"",
             line);
      }
      const std::string key = tok.text.substr(0, eq);
      const std::size_t off = eq + 1;
      if (key == "weight") {
        const auto w = parse_u64(tok, line_no, line, off);
        if (w < 1) fail(line_no, tok.col + off, "weight must be >= 1", line);
        tenant.weight = static_cast<std::uint32_t>(w);
      } else if (key == "grads") {
        const auto g = parse_u64(tok, line_no, line, off);
        if (g < 1) fail(line_no, tok.col + off, "grads must be >= 1", line);
        tenant.grads = static_cast<std::size_t>(g);
      } else if (key == "window") {
        const auto w = parse_u64(tok, line_no, line, off);
        if (w < 1) fail(line_no, tok.col + off, "window must be >= 1", line);
        tenant.window = static_cast<std::uint32_t>(w);
      } else if (key == "blocks") {
        const auto b = parse_u64(tok, line_no, line, off);
        if (b < 1 || b > 0xfff) {
          fail(line_no, tok.col + off, "blocks must be in 1..4095", line);
        }
        tenant.block_cnt_max = static_cast<std::uint16_t>(b);
      } else if (key == "sms") {
        tenant.sms_quota_bytes = parse_bytes(tok, line_no, line, off);
      } else if (key == "load") {
        tenant.load = parse_fraction(tok, line_no, line, off);
      } else if (key == "fluid") {
        const auto v = parse_u64(tok, line_no, line, off);
        if (v > 1) fail(line_no, tok.col + off, "fluid must be 0 or 1", line);
        tenant.fluid = v == 1;
      } else if (key == "policy") {
        const std::string v = tok.text.substr(off);
        if (v == "sum") {
          tenant.rpc_policy = netrpc::MergePolicy::kSum;
        } else if (v == "min") {
          tenant.rpc_policy = netrpc::MergePolicy::kMin;
        } else if (v == "majority") {
          tenant.rpc_policy = netrpc::MergePolicy::kMajority;
        } else {
          fail(line_no, tok.col + off,
               "policy must be sum, min or majority", line);
        }
      } else if (key == "values") {
        const auto v = parse_u64(tok, line_no, line, off);
        if (v < 1 || v > netrpc::kMaxValueWords) {
          fail(line_no, tok.col + off, "values must be in 1..24", line);
        }
        tenant.rpc_value_words = static_cast<std::uint16_t>(v);
      } else if (key == "servers") {
        const auto v = parse_u64(tok, line_no, line, off);
        if (v < 1 || v > 255) {
          fail(line_no, tok.col + off, "servers must be in 1..255", line);
        }
        tenant.rpc_servers = static_cast<std::uint8_t>(v);
      } else if (key == "clients") {
        const auto v = parse_u64(tok, line_no, line, off);
        if (v < 1 || v > 255) {
          fail(line_no, tok.col + off, "clients must be in 1..255", line);
        }
        tenant.rpc_clients = static_cast<std::uint8_t>(v);
      } else if (key == "rpcwindow") {
        const auto v = parse_u64(tok, line_no, line, off);
        if (v < 1 || v > netrpc::kPendingSlotsPerClient) {
          fail(line_no, tok.col + off, "rpcwindow must be in 1..16", line);
        }
        tenant.rpc_window = static_cast<std::uint32_t>(v);
      } else if (key == "calls") {
        tenant.rpc_calls =
            static_cast<std::uint32_t>(parse_u64(tok, line_no, line, off));
      } else if (key == "gets") {
        tenant.rpc_gets =
            static_cast<std::uint32_t>(parse_u64(tok, line_no, line, off));
      } else if (key == "puts") {
        tenant.rpc_puts =
            static_cast<std::uint32_t>(parse_u64(tok, line_no, line, off));
      } else if (key == "hotkeys") {
        const auto v = parse_u64(tok, line_no, line, off);
        if (v < 1) fail(line_no, tok.col + off, "hotkeys must be >= 1", line);
        tenant.rpc_hot_keys = static_cast<std::uint32_t>(v);
      } else {
        fail(line_no, tok.col, "unknown key \"" + key + "\"", line);
      }
    }
    spec.tenants.push_back(tenant);
  }
  return spec;
}

JobsSpec JobsSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("jobs spec: cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

}  // namespace jobs
