// BestEffortSource: a tenant that is pure load.
//
// Models a noisy neighbour sharing the fabric with Trio-ML jobs: a
// paced UDP stream injected on one worker's host link, addressed to the
// spine's aggregation IP on a non-Trio-ML port so the spine discards it
// (no route for the re-written destination) after it has burned host-link
// and leaf->spine trunk bandwidth. Source port 30000+tenant makes the
// stream classifiable by trioml::tenant_of_frame, so MQSS tenant QoS can
// confine it to its WDRR share.
#pragma once

#include <cstdint>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace jobs {

class BestEffortSource {
 public:
  struct Config {
    std::uint8_t tenant = 0;
    net::MacAddr eth_src{};
    net::MacAddr eth_dst{};
    net::Ipv4Addr ip_src;
    net::Ipv4Addr ip_dst;
    /// Offered load as a fraction of the injection link's line rate.
    double load = 1.0;
    std::size_t frame_payload_bytes = 1400;
  };

  BestEffortSource(sim::Simulator& simulator, net::LinkEndpoint& tx,
                   Config config);

  /// Starts the paced stream at `at`; runs until stop() or `until`
  /// (Time() = forever).
  void start(sim::Time at, sim::Time until = sim::Time());
  void stop();
  bool running() const { return running_; }

  std::uint64_t frames_offered() const { return frames_offered_; }

 private:
  void emit();

  sim::Simulator& sim_;
  net::LinkEndpoint& tx_;
  Config config_;
  sim::Duration interval_;
  sim::Time until_;
  bool running_ = false;
  sim::EventId next_{};
  std::uint64_t frames_offered_ = 0;
};

}  // namespace jobs
