#include "jobs/host_mux.hpp"

#include "trioml/wire_format.hpp"

namespace jobs {

void HostMux::receive(net::PacketPtr pkt, int port) {
  (void)port;
  const std::uint8_t tenant = trioml::tenant_of_frame(pkt->frame());
  auto it = endpoints_.find(tenant);
  if (it == endpoints_.end()) {
    ++unclaimed_;
    return;
  }
  ++delivered_;
  it->second.node->receive(std::move(pkt), it->second.port);
}

}  // namespace jobs
