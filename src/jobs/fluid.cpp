#include "jobs/fluid.hpp"

#include <stdexcept>
#include <vector>

#include "net/packet.hpp"
#include "trioml/addressing.hpp"

namespace jobs {
namespace {

/// Pacing interval for a re-materialised stream: one frame every
/// wire-time / load, computed from the *line* rate (the fluid demand cap
/// is load * line rate, so the two modes offer identical byte rates).
sim::Duration pace_interval(double line_gbps, std::size_t frame_bytes,
                            double load) {
  const double wire_ns = double(frame_bytes) * 8.0 / line_gbps;
  return sim::Duration(static_cast<std::int64_t>(wire_ns / load + 0.5));
}

}  // namespace

FluidController::FluidController(cluster::Cluster& cluster)
    : FluidController(cluster, Config{}) {}

FluidController::FluidController(cluster::Cluster& cluster, Config config)
    : cluster_(cluster),
      config_(config),
      fluid_(cluster.simulator(), &cluster.engine(), config.engine) {
  host_up_.assign(std::size_t(cluster_.num_workers()), -1);
  host_down_.assign(std::size_t(cluster_.num_workers()), -1);
  trunk_up_.assign(std::size_t(cluster_.num_racks()), -1);
  trunk_down_.assign(std::size_t(cluster_.num_racks()), -1);
}

FluidController::~FluidController() = default;

sim::FluidEngine::LinkId FluidController::map_endpoint(net::LinkEndpoint& ep,
                                                       std::vector<int>& table,
                                                       std::size_t index) {
  if (table[index] < 0) {
    const sim::FluidEngine::LinkId id = fluid_.add_link(ep.gbps());
    fluid_.set_packet_probe(id, [&ep] { return ep.bytes_sent(); });
    fluid_.set_rate_observer(
        id, [&ep](double gbps, std::uint64_t) { ep.set_fluid_load(gbps); });
    table[index] = int(id);
  }
  return sim::FluidEngine::LinkId(table[index]);
}

sim::FluidEngine::LinkId FluidController::host_up(int host) {
  return map_endpoint(cluster_.link(host).a_to_b(), host_up_,
                      std::size_t(host));
}

sim::FluidEngine::LinkId FluidController::host_down(int host) {
  return map_endpoint(cluster_.link(host).b_to_a(), host_down_,
                      std::size_t(host));
}

sim::FluidEngine::LinkId FluidController::trunk_up(int rack) {
  return map_endpoint(cluster_.fabric_link(rack).a_to_b(), trunk_up_,
                      std::size_t(rack));
}

sim::FluidEngine::LinkId FluidController::trunk_down(int rack) {
  return map_endpoint(cluster_.fabric_link(rack).b_to_a(), trunk_down_,
                      std::size_t(rack));
}

int FluidController::add_stream(Stream stream) {
  const int idx = int(streams_.size());
  streams_.push_back(std::move(stream));
  if (packet_depth_ > 0) {
    // Born inside a packet-fidelity region: start re-materialised.
    Stream& s = streams_.back();
    fluid_.pause_flow(s.flow);
    s.emitter->budget = fluid_.flow_remaining(s.flow);
    s.emitter->window_bytes = 0;
    s.emitter->start(cluster_.engine().now());
  }
  return idx;
}

int FluidController::add_background_stream(int host, std::uint8_t tenant,
                                           double load) {
  return add_bulk_transfer(host, tenant, load, /*bytes=*/0, nullptr);
}

int FluidController::add_bulk_transfer(int host, std::uint8_t tenant,
                                       double load, std::uint64_t bytes,
                                       std::function<void(sim::Time)> done) {
  if (load <= 0.0 || load > 1.0) {
    throw std::invalid_argument("fluid stream load must be in (0, 1]");
  }
  const int wpr = cluster_.workers_per_rack();
  const int rack = host / wpr;
  const int local = host % wpr;
  net::LinkEndpoint& tx = cluster_.link(host).a_to_b();
  const std::size_t frame_bytes =
      net::UdpFrameLayout::kPayloadOff + config_.frame_payload_bytes;

  Stream s;
  s.emitter = std::make_unique<Emitter>();
  Emitter& e = *s.emitter;
  e.sim = &cluster_.engine().domain_sim(std::uint32_t(rack));
  e.tx = &tx;
  e.eth_src = trioml::worker_mac(rack, local);
  e.eth_dst = trioml::aggregator_mac(rack);
  e.ip_src = trioml::worker_ip(rack, local);
  e.ip_dst = cluster_.tree().spine_ip;
  e.tenant = tenant;
  e.payload_bytes = config_.frame_payload_bytes;
  e.interval = pace_interval(tx.gbps(), frame_bytes, load);

  sim::FluidEngine::FlowSpec spec;
  spec.route = {host_up(host), trunk_up(rack)};
  spec.demand_gbps = load * tx.gbps();
  spec.total_bytes = bytes;
  spec.on_complete = std::move(done);
  s.flow = fluid_.add_flow(std::move(spec));
  return add_stream(std::move(s));
}

int FluidController::add_response_stream(int host, std::uint8_t tenant,
                                         double load) {
  if (load <= 0.0 || load > 1.0) {
    throw std::invalid_argument("fluid stream load must be in (0, 1]");
  }
  const int wpr = cluster_.workers_per_rack();
  const int rack = host / wpr;
  const int local = host % wpr;
  net::LinkEndpoint& tx = cluster_.fabric_link(rack).b_to_a();
  const std::size_t frame_bytes =
      net::UdpFrameLayout::kPayloadOff + config_.frame_payload_bytes;
  const double host_gbps = cluster_.link(host).b_to_a().gbps();

  Stream s;
  s.emitter = std::make_unique<Emitter>();
  Emitter& e = *s.emitter;
  // The spine end of the trunk transmits, so the emitter runs on the
  // spine's domain; frames reach the host through the leaf's forwarding
  // table (and the delivery band on the way into the leaf's domain).
  e.sim = &cluster_.engine().domain_sim(std::uint32_t(cluster_.num_racks()));
  e.tx = &tx;
  e.eth_src = trioml::spine_mac();
  e.eth_dst = trioml::aggregator_mac(rack);
  e.ip_src = cluster_.tree().spine_ip;
  e.ip_dst = trioml::worker_ip(rack, local);
  e.tenant = tenant;
  e.payload_bytes = config_.frame_payload_bytes;
  // Paced to the host downlink (the model's bottleneck), not the trunk.
  e.interval = pace_interval(host_gbps, frame_bytes, load);

  sim::FluidEngine::FlowSpec spec;
  spec.route = {trunk_down(rack), host_down(host)};
  spec.demand_gbps = load * host_gbps;
  s.flow = fluid_.add_flow(std::move(spec));
  return add_stream(std::move(s));
}

std::uint64_t FluidController::stream_bytes(int s) const {
  return fluid_.flow_bytes(streams_[std::size_t(s)].flow);
}

bool FluidController::stream_done(int s) const {
  return fluid_.flow_done(streams_[std::size_t(s)].flow);
}

void FluidController::enter_packet_mode() {
  if (++packet_depth_ != 1) return;
  ++transitions_;
  const sim::Time at = cluster_.engine().now();
  for (Stream& s : streams_) {
    if (fluid_.flow_done(s.flow)) continue;
    // Pause first: it advances fluid accrual to `at`, so the emitter's
    // byte budget is the exact remainder.
    fluid_.pause_flow(s.flow);
    s.emitter->budget = fluid_.flow_remaining(s.flow);
    s.emitter->window_bytes = 0;
    s.emitter->start(at);
  }
}

void FluidController::exit_packet_mode() {
  if (packet_depth_ == 0 || --packet_depth_ != 0) return;
  ++transitions_;
  for (Stream& s : streams_) {
    s.emitter->stop();
    if (fluid_.flow_done(s.flow)) continue;
    // The frames' wire bytes count as flow progress (byte-exact round
    // trip), then the flow picks its fluid rate back up.
    fluid_.credit_flow(s.flow, s.emitter->window_bytes);
    fluid_.resume_flow(s.flow);
  }
}

void FluidController::observe(const faults::FaultSchedule& schedule) {
  for (const faults::PacketWindow& w : faults::packet_windows(schedule)) {
    ++windows_observed_;
    cluster_.engine().schedule_global(w.start, [this] {
      if (!stopped_) enter_packet_mode();
    });
    if (w.end == sim::Time::max()) continue;  // never clears
    sim::Time end = w.end + config_.window_padding;
    if (end <= w.start) end = w.start + sim::Duration(1);
    cluster_.engine().schedule_global(end, [this] {
      if (!stopped_) exit_packet_mode();
    });
  }
}

void FluidController::set_packet_mode_probe(std::function<bool()> probe) {
  probe_ = std::move(probe);
  if (!probe_ticking_ && !stopped_) {
    probe_ticking_ = true;
    schedule_probe_tick();
  }
}

void FluidController::schedule_probe_tick() {
  cluster_.engine().schedule_global(
      cluster_.engine().now() + config_.probe_period,
      [this] { probe_tick(); });
}

void FluidController::probe_tick() {
  if (stopped_) return;  // no reschedule: lets the run drain
  const bool want = probe_ && probe_();
  if (want && !probe_holds_) {
    probe_holds_ = true;
    enter_packet_mode();
  } else if (!want && probe_holds_) {
    probe_holds_ = false;
    exit_packet_mode();
  }
  schedule_probe_tick();
}

void FluidController::stop() {
  stopped_ = true;
  fluid_.stop();
  for (Stream& s : streams_) s.emitter->stop();
}

std::uint64_t FluidController::packet_frames() const {
  std::uint64_t n = 0;
  for (const Stream& s : streams_) n += s.emitter->frames_total;
  return n;
}

std::uint64_t FluidController::packet_bytes() const {
  std::uint64_t n = 0;
  for (const Stream& s : streams_) n += s.emitter->bytes_total;
  return n;
}

// --- Emitter ---------------------------------------------------------------

void FluidController::Emitter::start(sim::Time at) {
  if (running) return;
  running = true;
  const sim::Time first = at < sim->now() ? sim->now() : at;
  next = sim->schedule_at(first, [this] { emit(); });
}

void FluidController::Emitter::stop() {
  if (!running) return;
  running = false;
  sim->cancel(next);
}

void FluidController::Emitter::emit() {
  if (!running) return;
  const std::size_t frame_bytes =
      net::UdpFrameLayout::kPayloadOff + payload_bytes;
  const bool finite = budget != 0;
  std::vector<std::uint8_t> payload(payload_bytes, 0xbe);
  auto frame = net::build_udp_frame(eth_src, eth_dst, ip_src, ip_dst,
                                    trioml::best_effort_src_port(tenant),
                                    /*udp_dst=*/9, payload);
  tx->send(net::Packet::make(std::move(frame)));
  ++frames_total;
  bytes_total += frame_bytes;
  window_bytes += frame_bytes;
  if (finite) {
    budget -= budget > frame_bytes ? frame_bytes : budget;
    if (budget == 0) {
      // Transfer exhausted mid-window: the credit on window exit will
      // complete the fluid flow at the right byte count.
      running = false;
      return;
    }
  }
  next = sim->schedule_in(interval, [this] { emit(); });
}

}  // namespace jobs
