// FluidController: the fidelity boundary between fluid and packet
// modelling on a Cluster (docs/fluid.md).
//
// The sim::FluidEngine knows nothing about topology; this layer maps the
// cluster's physical links (host access links, leaf->spine trunks) onto
// fluid-engine links — wiring each one's packet-occupancy probe
// (LinkEndpoint::bytes_sent) and rate observer
// (LinkEndpoint::set_fluid_load) — and owns the *streams*: bulk traffic
// that is eligible to run in fluid mode. Three stream shapes cover the
// demotion-eligible traffic classes (docs/fluid.md "Eligibility"):
//
//   background  — a best-effort aggressor: an open-ended paced UDP stream
//                 up one host link and its rack trunk, byte-compatible
//                 with jobs::BestEffortSource.
//   bulk        — the same path, but a finite transfer with a completion
//                 callback (background checkpoint/shuffle traffic).
//   response    — a cache-warm GET response stream flowing *down* from
//                 the spine to one host (NetRPC's steady-state hot-key
//                 hit traffic, which never touches a pending slot).
//
// Packet-fidelity regions demote nothing and re-materialise everything:
// while any region is active (enter_packet_mode/exit_packet_mode nest),
// every stream's fluid flow is paused and a per-stream PacketEmitter
// injects real net::Packet frames — built exactly like the packet-mode
// generators, sent on the stream's real LinkEndpoint, crossing domains
// through the PR 8 ordered delivery band — so losses, QoS and RMW effects
// inside the region are packet-exact. On exit the frames' wire bytes are
// credited back to the fluid flow (byte-exact round trip) and the flow
// resumes. Regions come from two sources:
//
//   observe(FaultSchedule)   — static: every fault's active window is
//                              precomputed and entered/exited via
//                              deterministic global actions, padded by
//                              Config::window_padding for loss tails.
//   set_packet_mode_probe()  — dynamic: a predicate (e.g. "recovery epoch
//                              open", src/recovery/) polled every
//                              Config::probe_period on the global-action
//                              lane; entry latency is at most one period.
//
// Every transition runs as a ShardedSimulator global action, so the
// fluid/packet hand-off happens at a deterministic simulated time with
// all shards parked — digests are bit-identical at any --shards count.
// The controller's wakeups (and any open-ended stream) keep the event
// queue non-empty: drive the run with run_until(deadline) and call
// stop() at the end, like trace sampling and the RecoveryManager.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "faults/schedule.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/fluid.hpp"

namespace jobs {

class FluidController {
 public:
  struct Config {
    sim::FluidEngine::Config engine;
    /// Cadence of the dynamic packet-mode probe (recovery epochs).
    sim::Duration probe_period = sim::Duration::micros(50);
    /// Grace period appended to every fault window before flows demote
    /// back to fluid mode: retransmits and queue drain caused *inside*
    /// the window still see packet fidelity.
    sim::Duration window_padding = sim::Duration::micros(100);
    /// Frame payload of re-materialised streams (matches
    /// BestEffortSource::Config::frame_payload_bytes).
    std::size_t frame_payload_bytes = 1400;
  };

  explicit FluidController(cluster::Cluster& cluster);
  FluidController(cluster::Cluster& cluster, Config config);
  ~FluidController();
  FluidController(const FluidController&) = delete;
  FluidController& operator=(const FluidController&) = delete;

  sim::FluidEngine& engine() { return fluid_; }

  // --- Stream registration (before the run or from global context) -------
  /// Open-ended best-effort aggressor on `host`'s uplink + rack trunk at
  /// `load` (fraction of the host line rate). Returns the stream index.
  int add_background_stream(int host, std::uint8_t tenant, double load);
  /// Finite bulk transfer of `bytes` wire bytes on the same path;
  /// `done` fires at the latency-correct completion instant.
  int add_bulk_transfer(int host, std::uint8_t tenant, double load,
                        std::uint64_t bytes,
                        std::function<void(sim::Time)> done = nullptr);
  /// Open-ended cache-warm GET response stream: spine -> `host`'s rack
  /// trunk (downlink direction) -> host downlink.
  int add_response_stream(int host, std::uint8_t tenant, double load);

  std::size_t num_streams() const { return streams_.size(); }
  /// Total wire bytes stream `s` has carried, fluid accrual + packet
  /// frames combined.
  std::uint64_t stream_bytes(int s) const;
  bool stream_done(int s) const;

  // --- Fidelity regions ---------------------------------------------------
  /// Precomputes every fault's active window (faults::packet_windows) and
  /// schedules the enter/exit transitions as global actions. Call before
  /// the run starts.
  void observe(const faults::FaultSchedule& schedule);
  /// Dynamic region predicate, polled every Config::probe_period: while
  /// it returns true the controller holds packet mode (one extra nesting
  /// level). Starts the polling tick; pair the run with stop().
  void set_packet_mode_probe(std::function<bool()> probe);
  /// Manual region nesting (the observe()/probe transitions use these).
  void enter_packet_mode();
  void exit_packet_mode();
  bool packet_mode() const { return packet_depth_ > 0; }

  /// Stops probe polling and fluid wakeups; pending ticks no-op. The
  /// run cannot drain before this is called.
  void stop();

  // --- Stats --------------------------------------------------------------
  /// Fluid->packet + packet->fluid transitions executed.
  std::uint64_t transitions() const { return transitions_; }
  /// Real frames injected by re-materialised streams.
  std::uint64_t packet_frames() const;
  /// Wire bytes those frames carried.
  std::uint64_t packet_bytes() const;
  /// Bytes advanced in fluid mode across all streams.
  std::uint64_t fluid_bytes() const { return fluid_.fluid_bytes_total(); }
  std::uint64_t windows_observed() const { return windows_observed_; }

 private:
  /// One re-materialisation emitter: a paced frame generator bound to the
  /// stream's injection endpoint, running on that endpoint's domain
  /// simulator (frames then take the normal send path, including the
  /// delivery band on boundary links).
  struct Emitter {
    sim::Simulator* sim = nullptr;
    net::LinkEndpoint* tx = nullptr;
    net::MacAddr eth_src{};
    net::MacAddr eth_dst{};
    net::Ipv4Addr ip_src;
    net::Ipv4Addr ip_dst;
    std::uint8_t tenant = 0;
    std::size_t payload_bytes = 1400;
    sim::Duration interval;  // frame wire time at line rate / load
    bool running = false;
    sim::EventId next{};
    std::uint64_t budget = 0;       // remaining bytes; 0 = unlimited
    std::uint64_t window_bytes = 0; // offered since the last start()
    std::uint64_t frames_total = 0;
    std::uint64_t bytes_total = 0;

    void start(sim::Time at);
    void stop();
    void emit();
  };
  struct Stream {
    sim::FluidEngine::FlowId flow = sim::FluidEngine::kInvalidFlow;
    std::unique_ptr<Emitter> emitter;
  };

  sim::FluidEngine::LinkId host_up(int host);
  sim::FluidEngine::LinkId host_down(int host);
  sim::FluidEngine::LinkId trunk_up(int rack);
  sim::FluidEngine::LinkId trunk_down(int rack);
  sim::FluidEngine::LinkId map_endpoint(net::LinkEndpoint& ep,
                                        std::vector<int>& table,
                                        std::size_t index);
  int add_stream(Stream stream);
  void probe_tick();
  void schedule_probe_tick();

  cluster::Cluster& cluster_;
  Config config_;
  sim::FluidEngine fluid_;
  // Lazily-built physical-endpoint -> fluid-link tables (-1 = unmapped).
  std::vector<int> host_up_;
  std::vector<int> host_down_;
  std::vector<int> trunk_up_;
  std::vector<int> trunk_down_;
  std::vector<Stream> streams_;
  int packet_depth_ = 0;
  bool probe_holds_ = false;
  bool probe_ticking_ = false;
  bool stopped_ = false;
  std::function<bool()> probe_;
  std::uint64_t transitions_ = 0;
  std::uint64_t windows_observed_ = 0;
};

}  // namespace jobs
