// HostMux: fans one host downlink out to per-tenant workers.
//
// A Cluster wires each host link's B→A direction straight into the host's
// single TrioMlWorker. Under multi-tenancy several tenants share that
// physical host, each with its own worker, so the JobManager re-targets
// the downlink at a HostMux and registers one endpoint per tenant. Frames
// are classified statelessly with trioml::tenant_of_frame (the job-id
// byte for Trio-ML traffic, the best-effort source-port band otherwise)
// and forwarded to the owning endpoint; frames for a tenant with no
// endpoint on this host are counted, not delivered.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace jobs {

class HostMux : public net::Node {
 public:
  explicit HostMux(std::string name) : name_(std::move(name)) {}

  /// Registers `node` as tenant `tenant`'s endpoint; arriving frames for
  /// that tenant are delivered via node.receive(pkt, port). Re-registering
  /// a tenant replaces its endpoint.
  void add_endpoint(std::uint8_t tenant, net::Node& node, int port = 0) {
    endpoints_[tenant] = {&node, port};
  }

  void receive(net::PacketPtr pkt, int port) override;
  std::string name() const override { return name_; }

  std::uint64_t delivered() const { return delivered_; }
  /// Frames whose tenant has no endpoint on this host.
  std::uint64_t unclaimed() const { return unclaimed_; }

 private:
  struct Endpoint {
    net::Node* node = nullptr;
    int port = 0;
  };
  std::string name_;
  std::unordered_map<std::uint8_t, Endpoint> endpoints_;
  std::uint64_t delivered_ = 0;
  std::uint64_t unclaimed_ = 0;
};

}  // namespace jobs
