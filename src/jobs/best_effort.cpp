#include "jobs/best_effort.hpp"

#include <stdexcept>
#include <vector>

#include "trioml/addressing.hpp"

namespace jobs {

BestEffortSource::BestEffortSource(sim::Simulator& simulator,
                                   net::LinkEndpoint& tx, Config config)
    : sim_(simulator), tx_(tx), config_(config) {
  if (config_.load <= 0.0 || config_.load > 1.0) {
    throw std::invalid_argument("best-effort load must be in (0, 1]");
  }
  // A frame every wire-time / load: load=1.0 saturates the link.
  const std::size_t frame_bytes =
      net::UdpFrameLayout::kPayloadOff + config_.frame_payload_bytes;
  const auto wire = tx_.serialization_delay(frame_bytes);
  interval_ = sim::Duration(
      static_cast<std::int64_t>(double(wire.ns()) / config_.load + 0.5));
}

void BestEffortSource::start(sim::Time at, sim::Time until) {
  if (running_) return;
  running_ = true;
  until_ = until;
  next_ = sim_.schedule_at(at < sim_.now() ? sim_.now() : at,
                           [this] { emit(); });
}

void BestEffortSource::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(next_);
}

void BestEffortSource::emit() {
  if (!running_) return;
  if (until_ != sim::Time() && sim_.now() >= until_) {
    running_ = false;
    return;
  }
  std::vector<std::uint8_t> payload(config_.frame_payload_bytes, 0xbe);
  auto frame = net::build_udp_frame(
      config_.eth_src, config_.eth_dst, config_.ip_src, config_.ip_dst,
      trioml::best_effort_src_port(config_.tenant), /*udp_dst=*/9, payload);
  tx_.send(net::Packet::make(std::move(frame)));
  ++frames_offered_;
  next_ = sim_.schedule_in(interval_, [this] { emit(); });
}

}  // namespace jobs
