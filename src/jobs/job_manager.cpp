#include "jobs/job_manager.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "faults/injector.hpp"
#include "trioml/addressing.hpp"

namespace jobs {
namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t TenantRun::digest() const {
  std::uint64_t h = kFnvBasis;
  for (const auto& res : results) {
    const std::uint32_t n = std::uint32_t(res.grads.size());
    fnv_bytes(h, &n, sizeof(n));
    if (!res.grads.empty()) {
      fnv_bytes(h, res.grads.data(), res.grads.size() * sizeof(float));
    }
  }
  return h;
}

const TenantRun* MultiTenantRun::tenant(TenantId id) const {
  for (const auto& t : tenants) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

JobManager::JobManager(cluster::Cluster& cluster)
    : cluster_(cluster), sim_(cluster.simulator()) {
  // Re-target every host downlink at a mux; the built-in worker keeps
  // receiving the cluster's own job through it, additional tenants
  // register their workers as they are admitted.
  const int workers = cluster_.num_workers();
  muxes_.reserve(std::size_t(workers));
  for (int g = 0; g < workers; ++g) {
    auto mux = std::make_unique<HostMux>("hostmux-" + std::to_string(g));
    cluster_.link(g).b_to_a().connect(*mux, 0);
    mux->add_endpoint(cluster_.spec().job_id, cluster_.worker(g), 0);
    muxes_.push_back(std::move(mux));
  }
}

std::vector<trio::SharedMemorySystem*> JobManager::aggregator_sms() {
  std::vector<trio::SharedMemorySystem*> out;
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    out.push_back(&cluster_.leaf(r).pfe(0).sms());
  }
  out.push_back(&cluster_.spine().pfe(0).sms());
  if (cluster_.has_backup_spine()) {
    out.push_back(&cluster_.backup_spine().pfe(0).sms());
  }
  return out;
}

std::vector<trio::Router*> JobManager::routers() {
  std::vector<trio::Router*> out;
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    out.push_back(&cluster_.leaf(r));
  }
  out.push_back(&cluster_.spine());
  if (cluster_.has_backup_spine()) out.push_back(&cluster_.backup_spine());
  return out;
}

trioml::TrioMlApp::JobSetup JobManager::leaf_setup(
    const TenantSpec& spec, const cluster::RackNode& node) const {
  trioml::TrioMlApp::JobSetup job;
  job.job_id = spec.id;
  job.src_ids = node.worker_src_ids;
  job.block_grad_max = cluster_.spec().grads_per_packet;
  job.block_cnt_max = spec.block_cnt_max;
  job.block_exp_ms = cluster_.spec().block_exp_ms;
  job.out_src = node.agg_ip;
  job.out_dst = cluster_.tree().spine_ip;
  job.out_nh = cluster_.on_backup_spine()
                   ? cluster_.to_backup_spine_nexthop(node.rack)
                   : cluster_.to_spine_nexthop(node.rack);
  job.out_src_id = node.uplink_src_id;
  return job;
}

trioml::TrioMlApp::JobSetup JobManager::spine_setup(const TenantSpec& spec,
                                                    bool backup) const {
  trioml::TrioMlApp::JobSetup job;
  job.job_id = spec.id;
  job.src_ids = cluster_.tree().spine_src_ids;
  job.block_grad_max = cluster_.spec().grads_per_packet;
  job.block_cnt_max = spec.block_cnt_max;
  job.block_exp_ms = cluster_.spec().block_exp_ms;
  job.out_src = cluster_.tree().spine_ip;
  job.out_dst = cluster_.tree().result_group;
  job.out_nh = backup ? cluster_.backup_spine_result_nexthop()
                      : cluster_.spine_result_nexthop();
  return job;
}

AdmissionResult JobManager::admit(const TenantSpec& spec) {
  if (spec.id == 0) return {false, "tenant id 0 is the untenanted class"};
  if (tenants_.count(spec.id)) {
    return {false,
            "tenant " + std::to_string(int(spec.id)) + " already admitted"};
  }

  Tenant tenant;
  tenant.spec = spec;

  if (spec.is_allreduce()) {
    tenant.adopted_builtin = spec.id == cluster_.spec().job_id;

    // --- Admission-time SMS quota check, all-or-nothing ------------------
    // The worst case is charged on *every* aggregating PFE before any job
    // record is written; a tenant that does not fit is rejected with the
    // cluster untouched.
    const std::uint64_t need = trioml::TrioMlApp::job_worst_case_bytes(
        leaf_setup(spec, cluster_.tree().racks.front()));
    auto sms = aggregator_sms();
    for (auto* s : sms) {
      if (spec.sms_quota_bytes > 0) {
        s->set_tenant_quota(spec.id, spec.sms_quota_bytes);
      }
    }
    for (std::size_t i = 0; i < sms.size(); ++i) {
      if (!sms[i]->reserve_tenant_bytes(spec.id, need)) {
        for (std::size_t j = 0; j < i; ++j) {
          sms[j]->release_tenant_bytes(spec.id, need);
        }
        return {false, "tenant " + std::to_string(int(spec.id)) +
                           ": worst-case footprint " + std::to_string(need) +
                           " B exceeds SMS quota " +
                           std::to_string(spec.sms_quota_bytes) + " B"};
      }
    }
    tenant.reserved_bytes = need;

    // --- Job records over the physical aggregation tree ------------------
    if (!tenant.adopted_builtin) {
      cluster_.spine_app().configure_job(spine_setup(spec, /*backup=*/false));
      if (cluster_.has_backup_spine()) {
        cluster_.backup_spine_app().configure_job(
            spine_setup(spec, /*backup=*/true));
      }
      for (const auto& node : cluster_.tree().racks) {
        cluster_.leaf_app(node.rack).configure_job(leaf_setup(spec, node));
      }

      // --- One worker per host, muxed onto the existing host links -------
      const int wpr = cluster_.workers_per_rack();
      for (const auto& node : cluster_.tree().racks) {
        for (int i = 0; i < wpr; ++i) {
          const int g = node.rack * wpr + i;
          trioml::TrioMlWorker::Config wc;
          wc.job_id = spec.id;
          wc.src_id = node.worker_src_ids[std::size_t(i)];
          wc.ip = trioml::worker_ip(node.rack, i);
          wc.mac = trioml::worker_mac(node.rack, i);
          wc.agg_ip = node.agg_ip;
          wc.agg_mac = trioml::aggregator_mac(node.rack);
          wc.udp_src_port = trioml::worker_udp_src_port(spec.id);
          wc.window = spec.window;
          wc.grads_per_packet = cluster_.spec().grads_per_packet;
          wc.expected_sources = cluster_.tree().expected_sources;
          auto worker = std::make_unique<trioml::TrioMlWorker>(
              sim_, wc, cluster_.link(g).a_to_b());
          muxes_[std::size_t(g)]->add_endpoint(spec.id, *worker, 0);
          tenant.workers.push_back(std::move(worker));
        }
      }
    }
  } else {
    // Best-effort: one paced source per host, addressed up the tree (the
    // spine discards it) so it burns host-link and trunk bandwidth only.
    const int wpr = cluster_.workers_per_rack();
    for (const auto& node : cluster_.tree().racks) {
      for (int i = 0; i < wpr; ++i) {
        const int g = node.rack * wpr + i;
        BestEffortSource::Config bc;
        bc.tenant = spec.id;
        bc.eth_src = trioml::worker_mac(node.rack, i);
        bc.eth_dst = trioml::aggregator_mac(node.rack);
        bc.ip_src = trioml::worker_ip(node.rack, i);
        bc.ip_dst = cluster_.tree().spine_ip;
        bc.load = spec.load;
        tenant.sources.push_back(std::make_unique<BestEffortSource>(
            sim_, cluster_.link(g).a_to_b(), bc));
      }
    }
  }

  tenants_.emplace(spec.id, std::move(tenant));
  admission_order_.push_back(spec.id);
  if (isolation_) apply_weight(spec.id, spec.weight);
  return {true, ""};
}

AdmissionResult JobManager::admit_all(const JobsSpec& spec) {
  for (const auto& tenant : spec.tenants) {
    auto result = admit(tenant);
    if (!result.admitted) return result;
  }
  return {true, ""};
}

void JobManager::apply_weight(TenantId id, std::uint32_t weight) {
  for (auto* router : routers()) router->set_tenant_weight(id, weight);
}

void JobManager::enable_isolation(std::uint32_t partitions,
                                  std::size_t queue_frames) {
  if (isolation_) return;
  isolation_ = true;
  qos_queue_frames_ = queue_frames;
  for (auto* router : routers()) {
    router->pfe(0).hash_table().enable_key_partitions(partitions);
    router->enable_tenant_qos(
        [](const net::Packet& pkt) {
          return trioml::tenant_of_frame(pkt.frame());
        },
        queue_frames);
    // The untenanted class first, then every admitted tenant in admission
    // order: WDRR visit order is registration order, so replays are
    // deterministic.
    router->set_tenant_weight(0, 1);
  }
  for (TenantId id : admission_order_) {
    apply_weight(id, tenants_.at(id).spec.weight);
  }
}

std::vector<std::vector<std::uint32_t>> JobManager::tenant_gradients(
    TenantId id, int workers, std::size_t grads_per_worker) {
  std::vector<std::vector<std::uint32_t>> out(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto& g = out[std::size_t(w)];
    g.resize(grads_per_worker);
    for (std::size_t j = 0; j < grads_per_worker; ++j) {
      // Depends only on (tenant, worker, j): a tenant's stream is the
      // same whether it runs solo or beside neighbours (bit-identity).
      g[j] = std::uint32_t(w * 37 + int(j % 11) + 1 + int(id) * 131);
    }
  }
  return out;
}

trioml::TrioMlWorker* JobManager::tenant_worker(int tenant, int host) {
  if (tenant < 0 || tenant > 255) return nullptr;
  if (host < 0 || host >= cluster_.num_workers()) return nullptr;
  auto it = tenants_.find(TenantId(tenant));
  if (it == tenants_.end() || it->second.torn_down) return nullptr;
  if (!it->second.spec.is_allreduce()) return nullptr;
  if (it->second.adopted_builtin) return &cluster_.worker(host);
  return it->second.workers[std::size_t(host)].get();
}

void JobManager::bind_fault_injector(faults::FaultInjector& injector) {
  injector.set_tenant_worker_resolver(
      [this](int tenant, int host) { return tenant_worker(tenant, host); });
}

MultiTenantRun JobManager::run(std::uint16_t gen_id, sim::Time deadline) {
  MultiTenantRun run;
  run.tenants.reserve(admission_order_.size());
  const int workers = cluster_.num_workers();
  int remaining = 0;

  for (TenantId id : admission_order_) {
    const Tenant& tenant = tenants_.at(id);
    if (tenant.torn_down) continue;
    TenantRun tr;
    tr.id = id;
    tr.kind = tenant.spec.kind;
    tr.start = sim_.now();
    tr.finish = sim_.now();
    if (tenant.spec.is_allreduce()) {
      tr.results.resize(std::size_t(workers));
      remaining += workers;
    }
    run.tenants.push_back(std::move(tr));
  }

  // Start every allreduce after run.tenants is final (the completion
  // callbacks hold references into it).
  for (auto& tr : run.tenants) {
    if (tr.kind != TenantKind::kAllreduce) continue;
    const Tenant& tenant = tenants_.at(tr.id);
    auto grads = tenant_gradients(tr.id, workers, tenant.spec.grads);
    for (int w = 0; w < workers; ++w) {
      trioml::TrioMlWorker* worker = tenant_worker(tr.id, w);
      worker->start_allreduce(
          std::move(grads[std::size_t(w)]), gen_id,
          [this, &tr, &remaining, w](trioml::AllreduceResult res) {
            tr.results[std::size_t(w)] = std::move(res);
            ++tr.finished;
            tr.finish = sim_.now();
            --remaining;
          });
    }
  }
  for (TenantId id : admission_order_) {
    for (auto& source : tenants_.at(id).sources) {
      source->start(sim_.now(), deadline);
    }
  }

  // Chunked run: best-effort sources keep the event queue non-empty, so
  // poll the completion count instead of waiting for a drain.
  const sim::Duration chunk = sim::Duration::millis(1);
  while (remaining > 0 && sim_.now() < deadline) {
    const sim::Time next =
        sim_.now() + chunk < deadline ? sim_.now() + chunk : deadline;
    sim_.run_until(next);
  }
  for (TenantId id : admission_order_) {
    for (auto& source : tenants_.at(id).sources) source->stop();
  }
  for (auto& tr : run.tenants) {
    if (tr.kind == TenantKind::kAllreduce && tr.finished < workers) {
      tr.finish = sim_.now();
    }
  }
  run.finish = sim_.now();
  return run;
}

void JobManager::teardown(TenantId id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end() || it->second.torn_down) return;
  Tenant& tenant = it->second;
  if (tenant.spec.is_allreduce()) {
    for (int h = 0; h < cluster_.num_workers(); ++h) {
      if (auto* w = tenant_worker(id, h)) w->crash();
    }
    for (auto* app : cluster_.apps()) {
      app->drop_active_blocks(id);
      if (!tenant.adopted_builtin && app->has_job(id)) app->remove_job(id);
    }
    for (auto* s : aggregator_sms()) {
      s->release_tenant_bytes(id, tenant.reserved_bytes);
    }
  } else {
    for (auto& source : tenant.sources) source->stop();
  }
  // The Tenant (and its workers) stays allocated: simulator callbacks may
  // still reference the crashed workers. It is simply no longer runnable.
  tenant.torn_down = true;
}

std::vector<TenantId> JobManager::admitted() const {
  std::vector<TenantId> out;
  for (TenantId id : admission_order_) {
    if (!tenants_.at(id).torn_down) out.push_back(id);
  }
  return out;
}

const TenantSpec* JobManager::tenant_spec(TenantId id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second.spec;
}

}  // namespace jobs
