#include "jobs/job_manager.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "faults/injector.hpp"
#include "jobs/fluid.hpp"
#include "trioml/addressing.hpp"

namespace jobs {
namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_values(std::uint64_t& h, const std::vector<std::uint32_t>& values) {
  const std::uint32_t n = std::uint32_t(values.size());
  fnv_bytes(h, &n, sizeof(n));
  if (!values.empty()) {
    fnv_bytes(h, values.data(), values.size() * sizeof(std::uint32_t));
  }
}

/// Deterministic PUT payload: depends only on (tenant, key, sequence, i),
/// so a solo and a co-tenant replay write — and later read back — the
/// same bytes (bit-identity checks, mirroring tenant_gradients).
std::vector<std::uint32_t> netrpc_put_values(TenantId id, std::uint64_t key,
                                             std::uint32_t seq,
                                             std::uint16_t words) {
  std::vector<std::uint32_t> out(words);
  for (std::uint16_t i = 0; i < words; ++i) {
    out[i] = std::uint32_t(key) * 1000003u + seq * 131u + i * 17u +
             std::uint32_t(id) * 7u + 1u;
  }
  return out;
}

}  // namespace

std::uint64_t TenantRun::digest() const {
  if (kind == TenantKind::kNetRpc) return netrpc.value_digest;
  std::uint64_t h = kFnvBasis;
  for (const auto& res : results) {
    const std::uint32_t n = std::uint32_t(res.grads.size());
    fnv_bytes(h, &n, sizeof(n));
    if (!res.grads.empty()) {
      fnv_bytes(h, res.grads.data(), res.grads.size() * sizeof(float));
    }
  }
  return h;
}

const TenantRun* MultiTenantRun::tenant(TenantId id) const {
  for (const auto& t : tenants) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

JobManager::JobManager(cluster::Cluster& cluster)
    : cluster_(cluster), sim_(cluster.simulator()) {
  // Re-target every host downlink at a mux; the built-in worker keeps
  // receiving the cluster's own job through it, additional tenants
  // register their workers as they are admitted.
  const int workers = cluster_.num_workers();
  muxes_.reserve(std::size_t(workers));
  for (int g = 0; g < workers; ++g) {
    auto mux = std::make_unique<HostMux>("hostmux-" + std::to_string(g));
    cluster_.link(g).b_to_a().connect(*mux, 0);
    mux->add_endpoint(cluster_.spec().job_id, cluster_.worker(g), 0);
    muxes_.push_back(std::move(mux));
  }
}

std::vector<trio::SharedMemorySystem*> JobManager::aggregator_sms() {
  std::vector<trio::SharedMemorySystem*> out;
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    out.push_back(&cluster_.leaf(r).pfe(0).sms());
  }
  out.push_back(&cluster_.spine().pfe(0).sms());
  if (cluster_.has_backup_spine()) {
    out.push_back(&cluster_.backup_spine().pfe(0).sms());
  }
  return out;
}

std::vector<trio::Router*> JobManager::routers() {
  std::vector<trio::Router*> out;
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    out.push_back(&cluster_.leaf(r));
  }
  out.push_back(&cluster_.spine());
  if (cluster_.has_backup_spine()) out.push_back(&cluster_.backup_spine());
  return out;
}

trioml::TrioMlApp::JobSetup JobManager::leaf_setup(
    const TenantSpec& spec, const cluster::RackNode& node) const {
  trioml::TrioMlApp::JobSetup job;
  job.job_id = spec.id;
  job.src_ids = node.worker_src_ids;
  job.block_grad_max = cluster_.spec().grads_per_packet;
  job.block_cnt_max = spec.block_cnt_max;
  job.block_exp_ms = cluster_.spec().block_exp_ms;
  job.out_src = node.agg_ip;
  job.out_dst = cluster_.tree().spine_ip;
  job.out_nh = cluster_.on_backup_spine()
                   ? cluster_.to_backup_spine_nexthop(node.rack)
                   : cluster_.to_spine_nexthop(node.rack);
  job.out_src_id = node.uplink_src_id;
  return job;
}

trioml::TrioMlApp::JobSetup JobManager::spine_setup(const TenantSpec& spec,
                                                    bool backup) const {
  trioml::TrioMlApp::JobSetup job;
  job.job_id = spec.id;
  job.src_ids = cluster_.tree().spine_src_ids;
  job.block_grad_max = cluster_.spec().grads_per_packet;
  job.block_cnt_max = spec.block_cnt_max;
  job.block_exp_ms = cluster_.spec().block_exp_ms;
  job.out_src = cluster_.tree().spine_ip;
  job.out_dst = cluster_.tree().result_group;
  job.out_nh = backup ? cluster_.backup_spine_result_nexthop()
                      : cluster_.spine_result_nexthop();
  return job;
}

AdmissionResult JobManager::admit(const TenantSpec& spec) {
  if (spec.id == 0) return {false, "tenant id 0 is the untenanted class"};
  if (tenants_.count(spec.id)) {
    return {false,
            "tenant " + std::to_string(int(spec.id)) + " already admitted"};
  }

  Tenant tenant;
  tenant.spec = spec;

  if (spec.is_allreduce()) {
    tenant.adopted_builtin = spec.id == cluster_.spec().job_id;

    // --- Admission-time SMS quota check, all-or-nothing ------------------
    // The worst case is charged on *every* aggregating PFE before any job
    // record is written; a tenant that does not fit is rejected with the
    // cluster untouched.
    const std::uint64_t need = trioml::TrioMlApp::job_worst_case_bytes(
        leaf_setup(spec, cluster_.tree().racks.front()));
    auto sms = aggregator_sms();
    for (auto* s : sms) {
      if (spec.sms_quota_bytes > 0) {
        s->set_tenant_quota(spec.id, spec.sms_quota_bytes);
      }
    }
    for (std::size_t i = 0; i < sms.size(); ++i) {
      if (!sms[i]->reserve_tenant_bytes(spec.id, need)) {
        for (std::size_t j = 0; j < i; ++j) {
          sms[j]->release_tenant_bytes(spec.id, need);
        }
        return {false, "tenant " + std::to_string(int(spec.id)) +
                           ": worst-case footprint " + std::to_string(need) +
                           " B exceeds SMS quota " +
                           std::to_string(spec.sms_quota_bytes) + " B"};
      }
    }
    tenant.reserved_bytes = need;

    // --- Job records over the physical aggregation tree ------------------
    if (!tenant.adopted_builtin) {
      cluster_.spine_app().configure_job(spine_setup(spec, /*backup=*/false));
      if (cluster_.has_backup_spine()) {
        cluster_.backup_spine_app().configure_job(
            spine_setup(spec, /*backup=*/true));
      }
      for (const auto& node : cluster_.tree().racks) {
        cluster_.leaf_app(node.rack).configure_job(leaf_setup(spec, node));
      }

      // --- One worker per host, muxed onto the existing host links -------
      const int wpr = cluster_.workers_per_rack();
      for (const auto& node : cluster_.tree().racks) {
        for (int i = 0; i < wpr; ++i) {
          const int g = node.rack * wpr + i;
          trioml::TrioMlWorker::Config wc;
          wc.job_id = spec.id;
          wc.src_id = node.worker_src_ids[std::size_t(i)];
          wc.ip = trioml::worker_ip(node.rack, i);
          wc.mac = trioml::worker_mac(node.rack, i);
          wc.agg_ip = node.agg_ip;
          wc.agg_mac = trioml::aggregator_mac(node.rack);
          wc.udp_src_port = trioml::worker_udp_src_port(spec.id);
          wc.window = spec.window;
          wc.grads_per_packet = cluster_.spec().grads_per_packet;
          wc.expected_sources = cluster_.tree().expected_sources;
          auto worker = std::make_unique<trioml::TrioMlWorker>(
              sim_, wc, cluster_.link(g).a_to_b());
          if (cluster_.spec().telemetry) {
            worker->instrument(cluster_.spec().telemetry->metrics,
                               tenant_scope(spec.id).metric_prefix +
                                   "worker" + std::to_string(g) + ".");
          }
          muxes_[std::size_t(g)]->add_endpoint(spec.id, *worker, 0);
          tenant.workers.push_back(std::move(worker));
        }
      }
    }
  } else if (spec.is_netrpc()) {
    auto result = admit_netrpc(spec, tenant);
    if (!result.admitted) return result;
  } else {
    // Best-effort: one paced source per host, addressed up the tree (the
    // spine discards it) so it burns host-link and trunk bandwidth only.
    const int wpr = cluster_.workers_per_rack();
    for (const auto& node : cluster_.tree().racks) {
      for (int i = 0; i < wpr; ++i) {
        const int g = node.rack * wpr + i;
        BestEffortSource::Config bc;
        bc.tenant = spec.id;
        bc.eth_src = trioml::worker_mac(node.rack, i);
        bc.eth_dst = trioml::aggregator_mac(node.rack);
        bc.ip_src = trioml::worker_ip(node.rack, i);
        bc.ip_dst = cluster_.tree().spine_ip;
        bc.load = spec.load;
        tenant.sources.push_back(std::make_unique<BestEffortSource>(
            sim_, cluster_.link(g).a_to_b(), bc));
      }
    }
  }

  tenants_.emplace(spec.id, std::move(tenant));
  admission_order_.push_back(spec.id);
  if (isolation_) apply_weight(spec.id, spec.weight);
  return {true, ""};
}

AdmissionResult JobManager::admit_netrpc(const TenantSpec& spec,
                                         Tenant& tenant) {
  // Placement: clients on the first hosts of rack 0, servers on the last —
  // every request and every response then crosses leaf(0)'s PFE exactly
  // once, which is where the service's datapath and SMS state live. (Leaf
  // routers only hold /32 routes for their own rack's hosts, so a service
  // spanning racks would need spine routes the tree does not install.)
  const int wpr = cluster_.workers_per_rack();
  const int hosts_needed = int(spec.rpc_clients) + int(spec.rpc_servers);
  if (hosts_needed > wpr) {
    return {false, "tenant " + std::to_string(int(spec.id)) + ": " +
                       std::to_string(int(spec.rpc_clients)) + " clients + " +
                       std::to_string(int(spec.rpc_servers)) +
                       " servers exceed rack 0's " + std::to_string(wpr) +
                       " hosts"};
  }

  netrpc::ServiceConfig cfg;
  cfg.tenant = spec.id;
  cfg.policy = spec.rpc_policy;
  cfg.value_words = std::uint8_t(spec.rpc_value_words);
  cfg.server_cnt = spec.rpc_servers;
  cfg.client_cnt = spec.rpc_clients;
  cfg.window = std::uint16_t(spec.rpc_window);

  // Same admission discipline as allreduce: the worst case is reserved
  // against the tenant's quota before any state is written — but only on
  // leaf(0)'s SMS, the one PFE hosting the service.
  trio::SharedMemorySystem& sms = cluster_.leaf(0).pfe(0).sms();
  const std::uint64_t need = netrpc::NetRpcApp::worst_case_bytes(cfg);
  if (spec.sms_quota_bytes > 0) {
    sms.set_tenant_quota(spec.id, spec.sms_quota_bytes);
  }
  if (!sms.reserve_tenant_bytes(spec.id, need)) {
    return {false, "tenant " + std::to_string(int(spec.id)) +
                       ": worst-case footprint " + std::to_string(need) +
                       " B exceeds SMS quota " +
                       std::to_string(spec.sms_quota_bytes) + " B"};
  }
  tenant.reserved_bytes = need;

  if (!netrpc_app_) {
    netrpc_app_ = std::make_unique<netrpc::NetRpcApp>(cluster_.leaf(0).pfe(0));
    netrpc_app_->install();
    netrpc_app_->start_aging(netrpc_aging_);
  }

  const cluster::RackNode& node = cluster_.tree().racks.front();
  trio::ForwardingTable& fwd = cluster_.leaf(0).forwarding();

  netrpc::NetRpcApp::ServiceSetup setup;
  setup.config = cfg;
  setup.service_ip = node.agg_ip;
  setup.service_mac = trioml::aggregator_mac(0);
  for (int c = 0; c < int(spec.rpc_clients); ++c) {
    setup.client_ips.push_back(trioml::worker_ip(0, c));
    setup.client_nh.push_back(*fwd.lookup(trioml::worker_ip(0, c)));
  }
  std::vector<net::Ipv4Addr> server_ips;
  std::vector<net::MacAddr> server_macs;
  for (int s = 0; s < int(spec.rpc_servers); ++s) {
    const int local = wpr - int(spec.rpc_servers) + s;
    server_ips.push_back(trioml::worker_ip(0, local));
    server_macs.push_back(trioml::worker_mac(0, local));
    setup.server_nh.push_back(*fwd.lookup(server_ips.back()));
  }
  try {
    netrpc_app_->configure_service(setup);
  } catch (const std::exception& e) {
    sms.release_tenant_bytes(spec.id, need);
    tenant.reserved_bytes = 0;
    return {false, "tenant " + std::to_string(int(spec.id)) + ": " + e.what()};
  }

  telemetry::Telemetry* telem = cluster_.spec().telemetry;
  const std::string scope = tenant_scope(spec.id).metric_prefix;

  for (int s = 0; s < int(spec.rpc_servers); ++s) {
    const int g = wpr - int(spec.rpc_servers) + s;  // rack 0: local == global
    netrpc::RpcServer::Config sc;
    sc.tenant = spec.id;
    sc.server_id = std::uint8_t(s);
    sc.ip = server_ips[std::size_t(s)];
    sc.mac = server_macs[std::size_t(s)];
    sc.value_words = spec.rpc_value_words;
    auto server = std::make_unique<netrpc::RpcServer>(
        sim_, sc, cluster_.link(g).a_to_b());
    // Seed the hot keys on every replica so first-touch GETs hit real
    // values regardless of which replica is a key's home.
    for (std::uint32_t k = 0; k < spec.rpc_hot_keys; ++k) {
      server->preload(k, netrpc_put_values(spec.id, k, 0,
                                           spec.rpc_value_words));
    }
    muxes_[std::size_t(g)]->add_endpoint(spec.id, *server, 0);
    tenant.server_hosts.push_back(g);
    tenant.rpc_servers.push_back(std::move(server));
  }

  for (int c = 0; c < int(spec.rpc_clients); ++c) {
    netrpc::RpcClient::Config cc;
    cc.tenant = spec.id;
    cc.client_id = std::uint8_t(c);
    cc.ip = trioml::worker_ip(0, c);
    cc.mac = trioml::worker_mac(0, c);
    cc.server_ips = server_ips;
    cc.server_macs = server_macs;
    cc.policy = spec.rpc_policy;
    cc.value_words = spec.rpc_value_words;
    cc.window = spec.rpc_window;
    cc.retransmit = true;
    auto client = std::make_unique<netrpc::RpcClient>(
        sim_, cc, cluster_.link(c).a_to_b());
    if (telem) {
      client->instrument(telem->metrics,
                         scope + "client" + std::to_string(c) + ".");
    }
    muxes_[std::size_t(c)]->add_endpoint(spec.id, *client, 0);
    tenant.client_hosts.push_back(c);
    tenant.rpc_clients.push_back(std::move(client));
  }
  return {true, ""};
}

AdmissionResult JobManager::admit_all(const JobsSpec& spec) {
  for (const auto& tenant : spec.tenants) {
    auto result = admit(tenant);
    if (!result.admitted) return result;
  }
  return {true, ""};
}

void JobManager::apply_weight(TenantId id, std::uint32_t weight) {
  for (auto* router : routers()) router->set_tenant_weight(id, weight);
}

void JobManager::enable_isolation(std::uint32_t partitions,
                                  std::size_t queue_frames) {
  if (isolation_) return;
  isolation_ = true;
  qos_queue_frames_ = queue_frames;
  for (auto* router : routers()) {
    router->pfe(0).hash_table().enable_key_partitions(partitions);
    router->enable_tenant_qos(
        [](const net::Packet& pkt) {
          return trioml::tenant_of_frame(pkt.frame());
        },
        queue_frames);
    // The untenanted class first, then every admitted tenant in admission
    // order: WDRR visit order is registration order, so replays are
    // deterministic.
    router->set_tenant_weight(0, 1);
  }
  for (TenantId id : admission_order_) {
    apply_weight(id, tenants_.at(id).spec.weight);
  }
}

std::vector<std::vector<std::uint32_t>> JobManager::tenant_gradients(
    TenantId id, int workers, std::size_t grads_per_worker) {
  std::vector<std::vector<std::uint32_t>> out(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto& g = out[std::size_t(w)];
    g.resize(grads_per_worker);
    for (std::size_t j = 0; j < grads_per_worker; ++j) {
      // Depends only on (tenant, worker, j): a tenant's stream is the
      // same whether it runs solo or beside neighbours (bit-identity).
      g[j] = std::uint32_t(w * 37 + int(j % 11) + 1 + int(id) * 131);
    }
  }
  return out;
}

trioml::TrioMlWorker* JobManager::tenant_worker(int tenant, int host) {
  if (tenant < 0 || tenant > 255) return nullptr;
  if (host < 0 || host >= cluster_.num_workers()) return nullptr;
  auto it = tenants_.find(TenantId(tenant));
  if (it == tenants_.end() || it->second.torn_down) return nullptr;
  if (!it->second.spec.is_allreduce()) return nullptr;
  if (it->second.adopted_builtin) return &cluster_.worker(host);
  return it->second.workers[std::size_t(host)].get();
}

netrpc::RpcServer* JobManager::tenant_rpc_server(int tenant, int host) {
  if (tenant < 0 || tenant > 255) return nullptr;
  auto it = tenants_.find(TenantId(tenant));
  if (it == tenants_.end() || it->second.torn_down) return nullptr;
  const Tenant& t = it->second;
  for (std::size_t i = 0; i < t.server_hosts.size(); ++i) {
    if (t.server_hosts[i] == host) return t.rpc_servers[i].get();
  }
  return nullptr;
}

netrpc::RpcClient* JobManager::tenant_rpc_client(int tenant, int host) {
  if (tenant < 0 || tenant > 255) return nullptr;
  auto it = tenants_.find(TenantId(tenant));
  if (it == tenants_.end() || it->second.torn_down) return nullptr;
  const Tenant& t = it->second;
  for (std::size_t i = 0; i < t.client_hosts.size(); ++i) {
    if (t.client_hosts[i] == host) return t.rpc_clients[i].get();
  }
  return nullptr;
}

void JobManager::bind_fault_injector(faults::FaultInjector& injector) {
  injector.set_tenant_worker_resolver(
      [this](int tenant, int host) { return tenant_worker(tenant, host); });
  // NetRPC tenants share the same `tenant=` crash/restart syntax; their
  // endpoints are tried first (a host carries at most one endpoint per
  // tenant, so there is no ambiguity with allreduce workers).
  injector.set_tenant_host_handler([this](int tenant, int host, bool restart) {
    if (auto* c = tenant_rpc_client(tenant, host)) {
      restart ? c->restart() : c->crash();
      return true;
    }
    if (auto* s = tenant_rpc_server(tenant, host)) {
      restart ? s->restart() : s->crash();
      return true;
    }
    return false;
  });
  // kBucketDrop aimed at a netrpc tenant destroys its hot-key cache
  // presence entries instead of (nonexistent) aggregation blocks.
  injector.set_cache_dropper([this](std::uint8_t tenant) -> std::size_t {
    if (!netrpc_app_ || !netrpc_app_->has_service(tenant)) return 0;
    return netrpc_app_->drop_cache_entries(tenant);
  });
}

void JobManager::enable_fluid(FluidController& controller) {
  fluid_ = &controller;
}

MultiTenantRun JobManager::run(std::uint16_t gen_id, sim::Time deadline) {
  MultiTenantRun run;
  run.tenants.reserve(admission_order_.size());
  const int workers = cluster_.num_workers();
  int remaining = 0;

  for (TenantId id : admission_order_) {
    const Tenant& tenant = tenants_.at(id);
    if (tenant.torn_down) continue;
    TenantRun tr;
    tr.id = id;
    tr.kind = tenant.spec.kind;
    tr.start = sim_.now();
    tr.finish = sim_.now();
    if (tenant.spec.is_allreduce()) {
      tr.results.resize(std::size_t(workers));
      remaining += workers;
    } else if (tenant.spec.is_netrpc()) {
      remaining += int(tenant.spec.rpc_clients);
    }
    run.tenants.push_back(std::move(tr));
  }

  // Start every tenant after run.tenants is final (the completion
  // callbacks hold references into it).
  for (auto& tr : run.tenants) {
    if (tr.kind == TenantKind::kNetRpc) {
      start_netrpc_tenant(tr, tenants_.at(tr.id), remaining);
      continue;
    }
    if (tr.kind != TenantKind::kAllreduce) continue;
    const Tenant& tenant = tenants_.at(tr.id);
    auto grads = tenant_gradients(tr.id, workers, tenant.spec.grads);
    for (int w = 0; w < workers; ++w) {
      trioml::TrioMlWorker* worker = tenant_worker(tr.id, w);
      worker->start_allreduce(
          std::move(grads[std::size_t(w)]), gen_id,
          [this, &tr, &remaining, w](trioml::AllreduceResult res) {
            tr.results[std::size_t(w)] = std::move(res);
            ++tr.finished;
            tr.finish = sim_.now();
            --remaining;
          });
    }
  }
  for (TenantId id : admission_order_) {
    Tenant& tenant = tenants_.at(id);
    if (tenant.torn_down) continue;
    if (fluid_ && tenant.spec.kind == TenantKind::kBestEffort &&
        tenant.spec.fluid) {
      // Demoted to fluid mode (docs/fluid.md): one background stream per
      // host instead of per-host packet sources. Registration happens
      // once; the controller's fidelity boundaries re-materialise the
      // stream as real frames inside fault/recovery windows.
      if (std::find(fluid_adopted_.begin(), fluid_adopted_.end(), id) ==
          fluid_adopted_.end()) {
        for (int g = 0; g < workers; ++g) {
          fluid_->add_background_stream(g, id, tenant.spec.load);
        }
        fluid_adopted_.push_back(id);
      }
      continue;
    }
    for (auto& source : tenant.sources) {
      source->start(sim_.now(), deadline);
    }
  }

  // Chunked run: best-effort sources (and fluid wakeups) keep the event
  // queue non-empty, so poll the completion count instead of waiting for
  // a drain.
  const sim::Duration chunk = sim::Duration::millis(1);
  while (remaining > 0 && sim_.now() < deadline) {
    const sim::Time next =
        sim_.now() + chunk < deadline ? sim_.now() + chunk : deadline;
    sim_.run_until(next);
  }
  for (TenantId id : admission_order_) {
    for (auto& source : tenants_.at(id).sources) source->stop();
  }
  if (fluid_) fluid_->stop();
  for (auto& tr : run.tenants) {
    const bool incomplete =
        (tr.kind == TenantKind::kAllreduce && tr.finished < workers) ||
        (tr.kind == TenantKind::kNetRpc &&
         tr.finished < int(tenants_.at(tr.id).spec.rpc_clients));
    if (incomplete) tr.finish = sim_.now();
  }
  run.finish = sim_.now();
  return run;
}

void JobManager::start_netrpc_tenant(TenantRun& tr, Tenant& tenant,
                                     int& remaining) {
  const TenantSpec& spec = tenant.spec;
  // Closed-loop per client: PUTs (seed + cache invalidation), then GETs
  // over the hot keys (the cache-hit phase), then `calls` windowed
  // fan-out RPCs. Every completed op folds its returned values into the
  // tenant's digest in completion order.
  for (auto& client_ptr : tenant.rpc_clients) {
    netrpc::RpcClient* client = client_ptr.get();
    struct Drive {
      std::uint32_t put_i = 0, get_i = 0, call_i = 0, inflight = 0;
      std::function<void()> pump;  // cleared at finish (breaks the cycle)
    };
    auto d = std::make_shared<Drive>();
    const std::uint32_t puts = spec.rpc_puts;
    const std::uint32_t gets = spec.rpc_gets;
    const std::uint32_t calls = spec.rpc_calls;
    const std::uint32_t hot = spec.rpc_hot_keys;
    const std::uint16_t words = spec.rpc_value_words;
    const TenantId id = spec.id;
    d->pump = [this, &tr, &remaining, client, d, puts, gets, calls, hot,
               words, id] {
      if (d->put_i < puts) {
        const std::uint32_t seq = d->put_i++;
        const std::uint64_t key = seq % hot;
        client->put(key, netrpc_put_values(id, key, seq + 1, words),
                    [this, &tr, d, key](netrpc::PutResult) {
                      ++tr.netrpc.puts;
                      fnv_bytes(tr.netrpc.value_digest, &key, sizeof(key));
                      d->pump();
                    });
        return;
      }
      if (d->get_i < gets) {
        const std::uint64_t key = d->get_i++ % hot;
        client->get(key, [this, &tr, d](netrpc::GetResult res) {
          ++tr.netrpc.gets;
          if (res.cached) {
            ++tr.netrpc.cached_gets;
            tr.netrpc.get_hit_latency_us.add(res.latency.us());
          } else {
            tr.netrpc.get_miss_latency_us.add(res.latency.us());
          }
          fnv_values(tr.netrpc.value_digest, res.values);
          d->pump();
        });
        return;
      }
      while (d->call_i < calls && client->can_call()) {
        const std::uint32_t seq = d->call_i++;
        ++d->inflight;
        client->call(netrpc_put_values(id, 0x1000 + seq % 16, seq, words),
                     [this, &tr, d](netrpc::CallResult res) {
                       --d->inflight;
                       ++tr.netrpc.calls;
                       if (res.degraded) ++tr.netrpc.degraded;
                       tr.netrpc.call_latency_us.add(res.latency.us());
                       const std::uint8_t meta[2] = {
                           res.server_cnt,
                           std::uint8_t(res.degraded ? 1 : 0)};
                       fnv_bytes(tr.netrpc.value_digest, meta, sizeof(meta));
                       fnv_values(tr.netrpc.value_digest, res.values);
                       d->pump();
                     });
      }
      if (d->call_i >= calls && d->inflight == 0) {
        ++tr.finished;
        tr.finish = sim_.now();
        --remaining;
        // Move the closure out before destroying it: `pump` IS the
        // currently-executing lambda, so it must stay alive to the end
        // of this scope while the shared cycle is broken.
        auto self = std::move(d->pump);
        return;
      }
    };
    // A crash wipes every in-flight op *and its completion callback* —
    // the pump chain is severed. Re-prime it when the client restarts
    // (in-flight calls died with the crash, so the window is empty).
    client->set_restart_hook([d] {
      if (!d->pump) return;  // loop already completed
      d->inflight = 0;
      d->pump();
    });
    d->pump();
  }
}

void JobManager::teardown(TenantId id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end() || it->second.torn_down) return;
  Tenant& tenant = it->second;
  if (tenant.spec.is_allreduce()) {
    for (int h = 0; h < cluster_.num_workers(); ++h) {
      if (auto* w = tenant_worker(id, h)) w->crash();
    }
    for (auto* app : cluster_.apps()) {
      app->drop_active_blocks(id);
      if (!tenant.adopted_builtin && app->has_job(id)) app->remove_job(id);
    }
    for (auto* s : aggregator_sms()) {
      s->release_tenant_bytes(id, tenant.reserved_bytes);
    }
  } else if (tenant.spec.is_netrpc()) {
    for (auto& c : tenant.rpc_clients) c->crash();
    for (auto& s : tenant.rpc_servers) s->crash();
    if (netrpc_app_) netrpc_app_->remove_service(id);
    cluster_.leaf(0).pfe(0).sms().release_tenant_bytes(id,
                                                      tenant.reserved_bytes);
  } else {
    for (auto& source : tenant.sources) source->stop();
  }
  // The Tenant (and its workers) stays allocated: simulator callbacks may
  // still reference the crashed workers. It is simply no longer runnable.
  tenant.torn_down = true;
}

std::vector<TenantId> JobManager::admitted() const {
  std::vector<TenantId> out;
  for (TenantId id : admission_order_) {
    if (!tenants_.at(id).torn_down) out.push_back(id);
  }
  return out;
}

const TenantSpec* JobManager::tenant_spec(TenantId id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second.spec;
}

}  // namespace jobs
