#include "net/packet.hpp"

#include <vector>

namespace net {
namespace detail {
namespace {

/// The freelist itself: one per thread, torn down with the thread. The
/// alive flag (trivially destructible) lets deallocate() run safely from
/// shared_ptr releases during static destruction.
struct CellPoolState {
  std::vector<void*> free;
  std::size_t cell_bytes = 0;
  std::uint64_t reuses = 0;
  CellPoolState() { alive() = true; }
  ~CellPoolState() {
    alive() = false;
    for (void* p : free) ::operator delete(p);
  }
  static bool& alive() {
    static thread_local bool a = false;
    return a;
  }
  static CellPoolState& instance() {
    static thread_local CellPoolState s;
    return s;
  }
  static constexpr std::size_t kMaxEntries = 8192;
};

}  // namespace

void* PacketCellPool::allocate(std::size_t bytes) {
  CellPoolState& s = CellPoolState::instance();
  if (s.cell_bytes == 0) s.cell_bytes = bytes;
  if (bytes == s.cell_bytes && !s.free.empty()) {
    void* p = s.free.back();
    s.free.pop_back();
    ++s.reuses;
    return p;
  }
  return ::operator new(bytes);
}

void PacketCellPool::deallocate(void* p, std::size_t bytes) noexcept {
  if (CellPoolState::alive()) {
    CellPoolState& s = CellPoolState::instance();
    if (bytes == s.cell_bytes && s.free.size() < CellPoolState::kMaxEntries) {
      s.free.push_back(p);
      return;
    }
  }
  ::operator delete(p);
}

std::uint64_t PacketCellPool::reuses() {
  return CellPoolState::instance().reuses;
}

}  // namespace detail

Buffer build_udp_frame(const MacAddr& eth_src, const MacAddr& eth_dst,
                       Ipv4Addr ip_src, Ipv4Addr ip_dst,
                       std::uint16_t udp_src, std::uint16_t udp_dst,
                       std::span<const std::uint8_t> payload) {
  const std::size_t total = UdpFrameLayout::kPayloadOff + payload.size();
  Buffer buf = BufferPool::instance().acquire(total);

  EthernetHeader eth;
  eth.src = eth_src;
  eth.dst = eth_dst;
  eth.ether_type = EthernetHeader::kEtherTypeIpv4;
  eth.write(buf, UdpFrameLayout::kEthOff);

  Ipv4Header ip;
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.protocol = Ipv4Header::kProtoUdp;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  ip.write(buf, UdpFrameLayout::kIpOff);

  UdpHeader udp;
  udp.src_port = udp_src;
  udp.dst_port = udp_dst;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.write(buf, UdpFrameLayout::kUdpOff);

  buf.write(UdpFrameLayout::kPayloadOff, payload);
  return buf;
}

}  // namespace net
