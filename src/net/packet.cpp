#include "net/packet.hpp"

namespace net {

Buffer build_udp_frame(const MacAddr& eth_src, const MacAddr& eth_dst,
                       Ipv4Addr ip_src, Ipv4Addr ip_dst,
                       std::uint16_t udp_src, std::uint16_t udp_dst,
                       std::span<const std::uint8_t> payload) {
  const std::size_t total = UdpFrameLayout::kPayloadOff + payload.size();
  Buffer buf(total);

  EthernetHeader eth;
  eth.src = eth_src;
  eth.dst = eth_dst;
  eth.ether_type = EthernetHeader::kEtherTypeIpv4;
  eth.write(buf, UdpFrameLayout::kEthOff);

  Ipv4Header ip;
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.protocol = Ipv4Header::kProtoUdp;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  ip.write(buf, UdpFrameLayout::kIpOff);

  UdpHeader udp;
  udp.src_port = udp_src;
  udp.dst_port = udp_dst;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.write(buf, UdpFrameLayout::kUdpOff);

  buf.write(UdpFrameLayout::kPayloadOff, payload);
  return buf;
}

}  // namespace net
