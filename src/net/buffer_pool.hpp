// Frame-storage recycling for the packet hot path.
//
// Steady-state packet flow (host -> link -> PFE -> link -> host) used to
// round-trip the allocator twice per packet: once for the frame's byte
// vector and once for the shared_ptr<Packet> control block. BufferPool is
// a bounded freelist of byte vectors: Packet's destructor parks its frame
// storage here and the frame builders (build_udp_frame, pooled copies)
// take it back, so a steady flow reuses the same few buffers forever.
// Acquired buffers are zero-filled, exactly like a fresh Buffer(size).
//
// The pool is per-thread (the simulator is single-threaded; separate
// threads get independent pools) and survives static destruction order:
// releases after the pool is torn down fall through to the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/buffer.hpp"

namespace net {

class BufferPool {
 public:
  /// Freelist bound: beyond this many parked vectors, releases free their
  /// storage instead (keeps a pathological burst from pinning memory).
  static constexpr std::size_t kMaxEntries = 4096;
  /// Storage larger than this is never pooled (jumbo one-offs).
  static constexpr std::size_t kMaxFrameBytes = 64 * 1024;

  BufferPool() { alive_flag() = true; }
  ~BufferPool() { alive_flag() = false; }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The calling thread's pool.
  static BufferPool& instance();

  /// Returns storage to the calling thread's pool if it still exists;
  /// safe to call from destructors running during static teardown.
  static void recycle(std::vector<std::uint8_t>&& storage);

  /// A zero-filled buffer of `size` bytes, reusing pooled storage.
  Buffer acquire(std::size_t size);

  /// A pooled copy of `src` (same bytes, recycled storage).
  Buffer copy(const Buffer& src);

  void release(std::vector<std::uint8_t>&& storage);

  /// Drops all parked storage (tests).
  void clear();

  std::size_t parked() const { return free_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static bool& alive_flag();

  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t hits_ = 0;    // acquires served from the freelist
  std::uint64_t misses_ = 0;  // acquires that hit the allocator
};

}  // namespace net
