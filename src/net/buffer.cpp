#include "net/buffer.hpp"

#include <cstdio>
#include <stdexcept>

namespace net {

void Buffer::check(std::size_t off, std::size_t len, const char* what) const {
  if (off + len > bytes_.size() || off + len < off) {
    throw std::out_of_range(std::string("Buffer::") + what + ": [" +
                            std::to_string(off) + ", " +
                            std::to_string(off + len) + ") exceeds size " +
                            std::to_string(bytes_.size()));
  }
}

std::uint8_t Buffer::u8(std::size_t off) const {
  check(off, 1, "u8");
  return bytes_[off];
}

std::uint16_t Buffer::u16(std::size_t off) const {
  check(off, 2, "u16");
  return static_cast<std::uint16_t>(bytes_[off] << 8 | bytes_[off + 1]);
}

std::uint32_t Buffer::u32(std::size_t off) const {
  check(off, 4, "u32");
  return static_cast<std::uint32_t>(bytes_[off]) << 24 |
         static_cast<std::uint32_t>(bytes_[off + 1]) << 16 |
         static_cast<std::uint32_t>(bytes_[off + 2]) << 8 |
         static_cast<std::uint32_t>(bytes_[off + 3]);
}

std::uint64_t Buffer::u64(std::size_t off) const {
  check(off, 8, "u64");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = v << 8 | bytes_[off + i];
  return v;
}

void Buffer::set_u8(std::size_t off, std::uint8_t v) {
  check(off, 1, "set_u8");
  bytes_[off] = v;
}

void Buffer::set_u16(std::size_t off, std::uint16_t v) {
  check(off, 2, "set_u16");
  bytes_[off] = static_cast<std::uint8_t>(v >> 8);
  bytes_[off + 1] = static_cast<std::uint8_t>(v);
}

void Buffer::set_u32(std::size_t off, std::uint32_t v) {
  check(off, 4, "set_u32");
  bytes_[off] = static_cast<std::uint8_t>(v >> 24);
  bytes_[off + 1] = static_cast<std::uint8_t>(v >> 16);
  bytes_[off + 2] = static_cast<std::uint8_t>(v >> 8);
  bytes_[off + 3] = static_cast<std::uint8_t>(v);
}

void Buffer::set_u64(std::size_t off, std::uint64_t v) {
  check(off, 8, "set_u64");
  for (std::size_t i = 0; i < 8; ++i) {
    bytes_[off + i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  }
}

std::uint32_t Buffer::u32le(std::size_t off) const {
  check(off, 4, "u32le");
  return static_cast<std::uint32_t>(bytes_[off]) |
         static_cast<std::uint32_t>(bytes_[off + 1]) << 8 |
         static_cast<std::uint32_t>(bytes_[off + 2]) << 16 |
         static_cast<std::uint32_t>(bytes_[off + 3]) << 24;
}

void Buffer::set_u32le(std::size_t off, std::uint32_t v) {
  check(off, 4, "set_u32le");
  bytes_[off] = static_cast<std::uint8_t>(v);
  bytes_[off + 1] = static_cast<std::uint8_t>(v >> 8);
  bytes_[off + 2] = static_cast<std::uint8_t>(v >> 16);
  bytes_[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

std::span<const std::uint8_t> Buffer::view(std::size_t off,
                                           std::size_t len) const {
  check(off, len, "view");
  return {bytes_.data() + off, len};
}

void Buffer::write(std::size_t off, std::span<const std::uint8_t> src) {
  check(off, src.size(), "write");
  std::copy(src.begin(), src.end(), bytes_.begin() + static_cast<std::ptrdiff_t>(off));
}

void Buffer::append(std::span<const std::uint8_t> src) {
  bytes_.insert(bytes_.end(), src.begin(), src.end());
}

std::string Buffer::hex() const {
  std::string out;
  out.reserve(bytes_.size() * 2);
  char tmp[3];
  for (std::uint8_t b : bytes_) {
    std::snprintf(tmp, sizeof(tmp), "%02x", b);
    out += tmp;
  }
  return out;
}

}  // namespace net
