// Packet representation with Trio's head/tail split.
//
// Trio's PFE hardware divides every arriving packet into a *head* (the
// first kHeadSize bytes — 192 in the generation the paper's Fig. 10
// describes) that is handed to a PPE thread's local memory, and a *tail*
// (the remainder) parked in the Memory & Queueing Subsystem's packet
// buffer. The Packet type keeps the full frame in one Buffer and exposes
// the split; the Mqss models where the tail bytes physically live.
#pragma once

#include <cstdint>
#include <memory>

#include "net/buffer.hpp"
#include "net/buffer_pool.hpp"
#include "net/headers.hpp"
#include "sim/time.hpp"

namespace net {

class Packet;
using PacketPtr = std::shared_ptr<Packet>;

namespace detail {

/// Thread-local freelist for the allocate_shared<Packet> cell (control
/// block + Packet in one allocation). Every cell has the same size, so a
/// plain pointer stack suffices; mismatched sizes fall through to the
/// global allocator.
class PacketCellPool {
 public:
  static void* allocate(std::size_t bytes);
  static void deallocate(void* p, std::size_t bytes) noexcept;
  /// Cells handed back out of the freelist (allocation-test observability).
  static std::uint64_t reuses();
};

template <typename T>
struct PacketCellAllocator {
  using value_type = T;
  PacketCellAllocator() = default;
  template <typename U>
  PacketCellAllocator(const PacketCellAllocator<U>&) {}  // NOLINT
  T* allocate(std::size_t n) {
    return static_cast<T*>(PacketCellPool::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    PacketCellPool::deallocate(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const PacketCellAllocator<U>&) const {
    return true;
  }
};

}  // namespace detail

class Packet {
 public:
  /// Trio head size used throughout this repo (Fig. 10: "the first 192
  /// bytes of the packet").
  static constexpr std::size_t kHeadSize = 192;

  explicit Packet(Buffer frame) : frame_(std::move(frame)) {}

  /// On destruction the frame's storage is parked in the thread's
  /// BufferPool so the next frame builder reuses it.
  ~Packet() { BufferPool::recycle(frame_.take_storage()); }
  Packet(const Packet&) = default;
  Packet(Packet&&) = default;
  Packet& operator=(const Packet&) = default;
  Packet& operator=(Packet&&) = default;

  /// Pooled allocation: the shared_ptr control block and the Packet live
  /// in one recycled cell, so steady-state packet churn never touches the
  /// allocator (docs/performance.md).
  static PacketPtr make(Buffer&& frame) {
    return std::allocate_shared<Packet>(detail::PacketCellAllocator<Packet>{},
                                        std::move(frame));
  }

  /// Copying overload: the frame bytes are copied into pooled storage.
  static PacketPtr make(const Buffer& frame) {
    return make(BufferPool::instance().copy(frame));
  }

  const Buffer& frame() const { return frame_; }
  Buffer& frame() { return frame_; }

  std::size_t size() const { return frame_.size(); }

  /// Bytes in the head (<= kHeadSize).
  std::size_t head_size() const {
    return frame_.size() < kHeadSize ? frame_.size() : kHeadSize;
  }
  /// Bytes in the tail (0 when the whole packet fits in the head).
  std::size_t tail_size() const { return frame_.size() - head_size(); }
  bool has_tail() const { return tail_size() > 0; }

  // -- Metadata carried alongside the frame (not on the wire) -------------

  std::uint64_t id() const { return id_; }
  void set_id(std::uint64_t id) { id_ = id; }

  int ingress_port() const { return ingress_port_; }
  void set_ingress_port(int p) { ingress_port_ = p; }

  int egress_port() const { return egress_port_; }
  void set_egress_port(int p) { egress_port_ = p; }

  /// Flow hash assigned by the Dispatch module; the Reorder Engine keeps
  /// packets with equal flow hash in arrival order.
  std::uint64_t flow_hash() const { return flow_hash_; }
  void set_flow_hash(std::uint64_t h) { flow_hash_ = h; }

  sim::Time arrival_time() const { return arrival_time_; }
  void set_arrival_time(sim::Time t) { arrival_time_ = t; }

 private:
  Buffer frame_;
  std::uint64_t id_ = 0;
  int ingress_port_ = -1;
  int egress_port_ = -1;
  std::uint64_t flow_hash_ = 0;
  sim::Time arrival_time_;
};

/// Convenience builder for Ethernet+IPv4+UDP frames, used by hosts and
/// tests. `payload` becomes the UDP payload.
Buffer build_udp_frame(const MacAddr& eth_src, const MacAddr& eth_dst,
                       Ipv4Addr ip_src, Ipv4Addr ip_dst,
                       std::uint16_t udp_src, std::uint16_t udp_dst,
                       std::span<const std::uint8_t> payload);

/// Offsets of the standard headers in frames built by build_udp_frame.
struct UdpFrameLayout {
  static constexpr std::size_t kEthOff = 0;
  static constexpr std::size_t kIpOff = EthernetHeader::kSize;
  static constexpr std::size_t kUdpOff = kIpOff + Ipv4Header::kSize;
  static constexpr std::size_t kPayloadOff = kUdpOff + UdpHeader::kSize;  // 42
};

}  // namespace net
