#include "net/buffer_pool.hpp"

#include <utility>

namespace net {

bool& BufferPool::alive_flag() {
  // A trivially-destructible flag outlives the pool object itself, so
  // recycle() stays callable from destructors that run after the pool's.
  static thread_local bool alive = false;
  return alive;
}

BufferPool& BufferPool::instance() {
  static thread_local BufferPool pool;
  return pool;
}

void BufferPool::recycle(std::vector<std::uint8_t>&& storage) {
  if (!alive_flag()) return;  // static teardown: let the allocator free it
  instance().release(std::move(storage));
}

Buffer BufferPool::acquire(std::size_t size) {
  if (free_.empty()) {
    ++misses_;
    return Buffer(size);
  }
  ++hits_;
  std::vector<std::uint8_t> storage = std::move(free_.back());
  free_.pop_back();
  storage.assign(size, 0);  // reuses capacity; matches Buffer(size) zeroing
  return Buffer(std::move(storage));
}

Buffer BufferPool::copy(const Buffer& src) {
  if (free_.empty()) {
    ++misses_;
    return src;
  }
  ++hits_;
  std::vector<std::uint8_t> storage = std::move(free_.back());
  free_.pop_back();
  const auto bytes = src.bytes();
  storage.assign(bytes.begin(), bytes.end());
  return Buffer(std::move(storage));
}

void BufferPool::release(std::vector<std::uint8_t>&& storage) {
  if (storage.capacity() == 0 || storage.capacity() > kMaxFrameBytes ||
      free_.size() >= kMaxEntries) {
    return;  // vector frees itself
  }
  free_.push_back(std::move(storage));
}

void BufferPool::clear() { free_.clear(); }

}  // namespace net
