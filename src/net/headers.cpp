#include "net/headers.hpp"

#include <cstdio>
#include <stdexcept>

namespace net {

std::string mac_to_string(const MacAddr& mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0],
                mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

Ipv4Addr Ipv4Addr::from_string(const std::string& dotted) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("Ipv4Addr::from_string: bad address '" +
                                dotted + "'");
  }
  return from_octets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", v_ >> 24 & 0xff,
                v_ >> 16 & 0xff, v_ >> 8 & 0xff, v_ & 0xff);
  return buf;
}

void EthernetHeader::write(Buffer& buf, std::size_t off) const {
  buf.write(off, dst);
  buf.write(off + 6, src);
  buf.set_u16(off + 12, ether_type);
}

EthernetHeader EthernetHeader::parse(const Buffer& buf, std::size_t off) {
  EthernetHeader h;
  auto d = buf.view(off, 6);
  auto s = buf.view(off + 6, 6);
  std::copy(d.begin(), d.end(), h.dst.begin());
  std::copy(s.begin(), s.end(), h.src.begin());
  h.ether_type = buf.u16(off + 12);
  return h;
}

std::uint16_t internet_checksum(const Buffer& buf, std::size_t off,
                                std::size_t len) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) sum += buf.u16(off + i);
  if (i < len) sum += std::uint32_t(buf.u8(off + i)) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::write(Buffer& buf, std::size_t off) const {
  buf.set_u8(off, static_cast<std::uint8_t>(version << 4 | (ihl & 0xf)));
  buf.set_u8(off + 1, dscp);
  buf.set_u16(off + 2, total_length);
  buf.set_u16(off + 4, identification);
  buf.set_u16(off + 6, 0);  // flags/fragment offset unused in the simulator
  buf.set_u8(off + 8, ttl);
  buf.set_u8(off + 9, protocol);
  buf.set_u16(off + 10, 0);  // checksum placeholder
  buf.set_u32(off + 12, src.value());
  buf.set_u32(off + 16, dst.value());
  buf.set_u16(off + 10, internet_checksum(buf, off, header_bytes()));
}

Ipv4Header Ipv4Header::parse(const Buffer& buf, std::size_t off) {
  Ipv4Header h;
  const std::uint8_t vi = buf.u8(off);
  h.version = vi >> 4;
  h.ihl = vi & 0xf;
  h.dscp = buf.u8(off + 1);
  h.total_length = buf.u16(off + 2);
  h.identification = buf.u16(off + 4);
  h.ttl = buf.u8(off + 8);
  h.protocol = buf.u8(off + 9);
  h.checksum = buf.u16(off + 10);
  h.src = Ipv4Addr(buf.u32(off + 12));
  h.dst = Ipv4Addr(buf.u32(off + 16));
  return h;
}

bool Ipv4Header::checksum_ok(const Buffer& buf, std::size_t off) {
  const std::uint8_t ihl = buf.u8(off) & 0xf;
  if (ihl < 5) return false;
  return internet_checksum(buf, off, std::size_t(ihl) * 4) == 0;
}

void UdpHeader::write(Buffer& buf, std::size_t off) const {
  buf.set_u16(off, src_port);
  buf.set_u16(off + 2, dst_port);
  buf.set_u16(off + 4, length);
  buf.set_u16(off + 6, checksum);
}

UdpHeader UdpHeader::parse(const Buffer& buf, std::size_t off) {
  UdpHeader h;
  h.src_port = buf.u16(off);
  h.dst_port = buf.u16(off + 2);
  h.length = buf.u16(off + 4);
  h.checksum = buf.u16(off + 6);
  return h;
}

}  // namespace net
