#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "sim/shard.hpp"

namespace net {

LinkEndpoint::LinkEndpoint(sim::Simulator& simulator, double gbps,
                           sim::Duration propagation,
                           std::size_t queue_frames)
    : sim_(simulator),
      gbps_(gbps),
      propagation_(propagation),
      queue_frames_(queue_frames) {
  if (gbps <= 0.0) {
    throw std::invalid_argument("LinkEndpoint: bandwidth must be positive");
  }
}

void LinkEndpoint::connect(Node& peer, int port) {
  peer_ = &peer;
  peer_port_ = port;
}

void LinkEndpoint::set_loss(double probability, std::uint64_t seed) {
  loss_probability_ = probability;
  loss_rng_.reseed(seed);
}

void LinkEndpoint::set_burst_loss(const GilbertElliott& model,
                                  std::uint64_t seed) {
  burst_enabled_ = true;
  burst_bad_ = false;
  burst_model_ = model;
  burst_rng_.reseed(seed);
}

void LinkEndpoint::set_corruption(double probability, std::uint64_t seed) {
  corrupt_probability_ = probability;
  corrupt_rng_.reseed(seed);
}

bool LinkEndpoint::send(PacketPtr pkt) {
  if (peer_ == nullptr) {
    throw std::logic_error("LinkEndpoint::send: endpoint not connected");
  }
  if (down_) {
    ++frames_dropped_;
    ++down_drops_;
    drops_ctr_.inc();
    down_drops_ctr_.inc();
    return false;
  }
  if (burst_enabled_) {
    // Step the Gilbert–Elliott chain once per offered frame, then draw
    // the loss in the (possibly new) state.
    if (burst_bad_) {
      if (burst_rng_.bernoulli(burst_model_.p_exit)) burst_bad_ = false;
    } else {
      if (burst_rng_.bernoulli(burst_model_.p_enter)) burst_bad_ = true;
    }
    const double p =
        burst_bad_ ? burst_model_.loss_bad : burst_model_.loss_good;
    if (p > 0.0 && burst_rng_.bernoulli(p)) {
      ++frames_dropped_;
      ++burst_drops_;
      drops_ctr_.inc();
      burst_drops_ctr_.inc();
      return false;
    }
  }
  if (in_flight_ >= queue_frames_ ||
      (loss_probability_ > 0.0 && loss_rng_.bernoulli(loss_probability_))) {
    ++frames_dropped_;
    drops_ctr_.inc();
    return false;
  }
  if (corrupt_probability_ > 0.0 &&
      corrupt_rng_.bernoulli(corrupt_probability_) && pkt->size() > 0) {
    // XOR one byte past the Ethernet header (when the frame has one) with
    // a non-zero mask; the receiver sees a damaged but delivered frame.
    const std::size_t lo =
        pkt->size() > EthernetHeader::kSize ? EthernetHeader::kSize : 0;
    const std::size_t off =
        lo + static_cast<std::size_t>(
                 corrupt_rng_.next_below(pkt->size() - lo));
    const auto mask = static_cast<std::uint8_t>(
        1 + corrupt_rng_.next_below(255));
    pkt->frame().set_u8(off, pkt->frame().u8(off) ^ mask);
    ++frames_corrupted_;
    corrupt_ctr_.inc();
  }
  const sim::Time start =
      busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  const sim::Time tx_end = start + serialization_delay(pkt->size());
  busy_until_ = tx_end;
  ++in_flight_;
  ++frames_sent_;
  bytes_sent_ += pkt->size();
  tx_frames_ctr_.inc();
  tx_bytes_ctr_.inc(pkt->size());

  Node* peer = peer_;
  const int port = peer_port_;
  const sim::Time arrive = tx_end + propagation_;
  const std::uint32_t frame_bytes = std::uint32_t(pkt->size());
  if (engine_ != nullptr) {
    // Domain boundary: the wire bookkeeping stays on the sender's shard;
    // the receive crosses via the engine's delivery band, which totals
    // orders it by (arrival, source domain, sequence) at any shard count.
    sim_.schedule_at(arrive, [this, frame_bytes] {
      --in_flight_;
      ++frames_delivered_;
      bytes_delivered_ += frame_bytes;
      rx_frames_ctr_.inc();
    });
    engine_->post(src_domain_, dst_domain_, arrive,
                  [peer, port, pkt = std::move(pkt)]() mutable {
                    peer->receive(std::move(pkt), port);
                  });
    return true;
  }
  sim_.schedule_at(arrive,
                   [this, peer, port, frame_bytes,
                    pkt = std::move(pkt)]() mutable {
    --in_flight_;
    ++frames_delivered_;
    bytes_delivered_ += frame_bytes;
    rx_frames_ctr_.inc();
    peer->receive(std::move(pkt), port);
  });
  return true;
}

}  // namespace net
