#include "net/link.hpp"

#include <stdexcept>

namespace net {

LinkEndpoint::LinkEndpoint(sim::Simulator& simulator, double gbps,
                           sim::Duration propagation,
                           std::size_t queue_frames)
    : sim_(simulator),
      gbps_(gbps),
      propagation_(propagation),
      queue_frames_(queue_frames) {
  if (gbps <= 0.0) {
    throw std::invalid_argument("LinkEndpoint: bandwidth must be positive");
  }
}

void LinkEndpoint::connect(Node& peer, int port) {
  peer_ = &peer;
  peer_port_ = port;
}

void LinkEndpoint::set_loss(double probability, std::uint64_t seed) {
  loss_probability_ = probability;
  loss_rng_.reseed(seed);
}

bool LinkEndpoint::send(PacketPtr pkt) {
  if (peer_ == nullptr) {
    throw std::logic_error("LinkEndpoint::send: endpoint not connected");
  }
  if (in_flight_ >= queue_frames_ ||
      (loss_probability_ > 0.0 && loss_rng_.bernoulli(loss_probability_))) {
    ++frames_dropped_;
    drops_ctr_.inc();
    return false;
  }
  const sim::Time start =
      busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  const sim::Time tx_end = start + serialization_delay(pkt->size());
  busy_until_ = tx_end;
  ++in_flight_;
  ++frames_sent_;
  bytes_sent_ += pkt->size();
  tx_frames_ctr_.inc();
  tx_bytes_ctr_.inc(pkt->size());

  Node* peer = peer_;
  const int port = peer_port_;
  sim_.schedule_at(tx_end + propagation_,
                   [this, peer, port, pkt = std::move(pkt)]() mutable {
                     --in_flight_;
                     rx_frames_ctr_.inc();
                     peer->receive(std::move(pkt), port);
                   });
  return true;
}

}  // namespace net
