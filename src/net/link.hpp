// Point-to-point full-duplex link with a serialization-rate model.
//
// Each direction is an independent transmit queue: a frame occupies the
// wire for size*8/bandwidth, then arrives after the propagation delay
// (store-and-forward). A finite transmit queue drops excess frames and
// counts them, which is how loss enters the simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace sim {
class ShardedSimulator;
}

namespace net {

/// Anything that can accept a packet on a numbered port: hosts, routers,
/// switches.
class Node {
 public:
  virtual ~Node() = default;
  virtual void receive(PacketPtr pkt, int port) = 0;
  virtual std::string name() const = 0;
};

/// Two-state Markov burst-loss model (Gilbert–Elliott). The chain steps
/// once per offered frame: in the *good* state frames are lost with
/// `loss_good`, in the *bad* state with `loss_bad`; `p_enter` / `p_exit`
/// are the per-frame good→bad / bad→good transition probabilities, so the
/// mean burst length is 1/p_exit frames. Models the correlated loss that
/// i.i.d. drops cannot (docs/faults.md).
struct GilbertElliott {
  double p_enter = 0.001;
  double p_exit = 0.2;
  double loss_good = 0.0;
  double loss_bad = 1.0;
};

/// One direction of a link.
class LinkEndpoint {
 public:
  LinkEndpoint(sim::Simulator& simulator, double gbps,
               sim::Duration propagation, std::size_t queue_frames = 4096);

  /// Attaches the receiving side. `port` is the port number presented to
  /// the peer node's receive().
  void connect(Node& peer, int port);

  /// Marks this direction as a simulation-domain boundary (sim/shard.hpp):
  /// the receive side executes on `dst_domain`'s shard via the engine's
  /// deterministic delivery band; sender-side bookkeeping stays local.
  /// The propagation delay must be >= the engine lookahead. Boundary
  /// binding is a property of the topology, not of the shard count — a
  /// cross-domain link is bound even at 1 shard, so digests match at any
  /// shard count.
  void bind_boundary(sim::ShardedSimulator& engine, std::uint32_t src_domain,
                     std::uint32_t dst_domain) {
    engine_ = &engine;
    src_domain_ = src_domain;
    dst_domain_ = dst_domain;
  }

  /// Queues a frame for transmission. Returns false (and counts a drop)
  /// when the transmit queue is full or the frame is lost to injected
  /// random loss.
  bool send(PacketPtr pkt);

  /// Injects i.i.d. random frame loss (models transient congestion
  /// drops elsewhere in the fabric — §7 "Packet loss in Trio-ML").
  void set_loss(double probability, std::uint64_t seed = 1);

  // --- Fault hooks (src/faults/, docs/faults.md) -------------------------
  /// Administratively downs this direction (link flap): every frame
  /// offered while down is dropped and counted under down_drops().
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Enables Gilbert–Elliott burst loss. Coexists with set_loss(); the
  /// burst chain is consulted first.
  void set_burst_loss(const GilbertElliott& model, std::uint64_t seed = 1);
  void clear_burst_loss() { burst_enabled_ = false; }

  /// Frame corruption: with the given per-frame probability one payload
  /// byte of the transiting frame is XORed with a non-zero mask (drawn
  /// deterministically from `seed`). The frame still arrives — corruption
  /// stresses the receiver's parse/validation path, not delivery.
  void set_corruption(double probability, std::uint64_t seed = 1);

  std::uint64_t down_drops() const { return down_drops_; }
  std::uint64_t burst_drops() const { return burst_drops_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  double gbps() const { return gbps_; }

  // --- Conservation accounting (src/vigil/, docs/vigil.md) ---------------
  /// Frames/bytes handed to the peer's receive(). Together with
  /// frames_in_flight() these satisfy, at every instant,
  ///   frames_sent == frames_delivered + frames_in_flight
  /// which the vigil invariant engine checks on every link — a cheap
  /// always-on detector for lost or duplicated deliveries (e.g. across
  /// shard boundaries).
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  /// Frames serialized or propagating right now (on the wire).
  std::uint64_t frames_in_flight() const { return in_flight_; }

  // --- Fluid-share accounting (sim/fluid.hpp, docs/fluid.md) -------------
  /// Reserves `gbps` of this direction's bandwidth for fluid-modelled
  /// flows: frames serialized after this call see only the residual
  /// bandwidth, so packet latency reflects the bulk traffic that is no
  /// longer simulated frame-by-frame. Called from a FluidEngine rate
  /// observer (global-action context — every shard parked), so the wire
  /// model never changes mid-window. Clamped so at least 1% of the line
  /// rate always remains — fluid flows yield to packets, not the reverse.
  void set_fluid_load(double gbps) {
    fluid_load_gbps_ = gbps < 0 ? 0 : gbps;
  }
  double fluid_load_gbps() const { return fluid_load_gbps_; }
  /// Bandwidth frames actually see: line rate minus the fluid share.
  double effective_gbps() const {
    const double floor = gbps_ * 0.01;
    const double residual = gbps_ - fluid_load_gbps_;
    return residual > floor ? residual : floor;
  }

  /// Time the wire becomes free (>= now when busy).
  sim::Time busy_until() const { return busy_until_; }

  sim::Duration serialization_delay(std::size_t bytes) const {
    // bits / (Gbps) = ns exactly when bandwidth is in bits/ns.
    return sim::Duration(static_cast<std::int64_t>(
        static_cast<double>(bytes) * 8.0 / effective_gbps() + 0.5));
  }

  /// Registers `<prefix>tx_frames`, `<prefix>tx_bytes`, `<prefix>rx_frames`
  /// and `<prefix>drops` for this direction, plus the fault-class
  /// breakdowns `<prefix>fault.down_drops`, `<prefix>fault.burst_drops`
  /// and `<prefix>fault.corrupt_frames`. Un-instrumented endpoints pay
  /// nothing.
  void instrument(telemetry::Registry& registry, const std::string& prefix) {
    tx_frames_ctr_ = registry.counter(prefix + "tx_frames");
    tx_bytes_ctr_ = registry.counter(prefix + "tx_bytes");
    rx_frames_ctr_ = registry.counter(prefix + "rx_frames");
    drops_ctr_ = registry.counter(prefix + "drops");
    down_drops_ctr_ = registry.counter(prefix + "fault.down_drops");
    burst_drops_ctr_ = registry.counter(prefix + "fault.burst_drops");
    corrupt_ctr_ = registry.counter(prefix + "fault.corrupt_frames");
  }

 private:
  sim::Simulator& sim_;
  double gbps_;
  sim::Duration propagation_;
  std::size_t queue_frames_;
  Node* peer_ = nullptr;
  int peer_port_ = -1;
  sim::ShardedSimulator* engine_ = nullptr;
  std::uint32_t src_domain_ = 0;
  std::uint32_t dst_domain_ = 0;
  sim::Time busy_until_;
  double fluid_load_gbps_ = 0.0;
  std::size_t in_flight_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  double loss_probability_ = 0.0;
  sim::Rng loss_rng_{1};
  bool down_ = false;
  bool burst_enabled_ = false;
  bool burst_bad_ = false;
  GilbertElliott burst_model_;
  sim::Rng burst_rng_{1};
  double corrupt_probability_ = 0.0;
  sim::Rng corrupt_rng_{1};
  std::uint64_t down_drops_ = 0;
  std::uint64_t burst_drops_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  telemetry::Counter tx_frames_ctr_;
  telemetry::Counter tx_bytes_ctr_;
  telemetry::Counter rx_frames_ctr_;
  telemetry::Counter drops_ctr_;
  telemetry::Counter down_drops_ctr_;
  telemetry::Counter burst_drops_ctr_;
  telemetry::Counter corrupt_ctr_;
};

/// Full-duplex link: two endpoints wired between nodes a and b.
class Link {
 public:
  Link(sim::Simulator& simulator, double gbps, sim::Duration propagation,
       std::size_t queue_frames = 4096)
      : Link(simulator, simulator, gbps, propagation, queue_frames) {}

  /// A link whose two ends live in different simulation domains: each
  /// direction's transmit machinery runs on its sender's simulator. Pair
  /// with bind_boundary() so receives cross via the engine.
  Link(sim::Simulator& sim_a, sim::Simulator& sim_b, double gbps,
       sim::Duration propagation, std::size_t queue_frames = 4096)
      : a_to_b_(sim_a, gbps, propagation, queue_frames),
        b_to_a_(sim_b, gbps, propagation, queue_frames) {}

  /// Wires node a's view: frames sent via a_to_b() arrive at `b` as `port_b`.
  void attach(Node& a, int port_a, Node& b, int port_b) {
    a_to_b_.connect(b, port_b);
    b_to_a_.connect(a, port_a);
  }

  LinkEndpoint& a_to_b() { return a_to_b_; }
  LinkEndpoint& b_to_a() { return b_to_a_; }

  /// Binds both directions as a domain boundary (a lives in `domain_a`,
  /// b in `domain_b`).
  void bind_boundary(sim::ShardedSimulator& engine, std::uint32_t domain_a,
                     std::uint32_t domain_b) {
    a_to_b_.bind_boundary(engine, domain_a, domain_b);
    b_to_a_.bind_boundary(engine, domain_b, domain_a);
  }

  /// Injects i.i.d. random loss on both directions (decorrelated seeds).
  void set_loss(double probability, std::uint64_t seed = 1) {
    a_to_b_.set_loss(probability, seed);
    b_to_a_.set_loss(probability, seed + 0x9e3779b97f4a7c15ull);
  }

  /// Fault hooks on both directions at once (decorrelated seeds).
  void set_down(bool down) {
    a_to_b_.set_down(down);
    b_to_a_.set_down(down);
  }
  void set_burst_loss(const GilbertElliott& model, std::uint64_t seed = 1) {
    a_to_b_.set_burst_loss(model, seed);
    b_to_a_.set_burst_loss(model, seed + 0x9e3779b97f4a7c15ull);
  }
  void set_corruption(double probability, std::uint64_t seed = 1) {
    a_to_b_.set_corruption(probability, seed);
    b_to_a_.set_corruption(probability, seed + 0x9e3779b97f4a7c15ull);
  }

  /// Instruments both directions: `<prefix>ab.*` and `<prefix>ba.*`.
  void instrument(telemetry::Registry& registry, const std::string& prefix) {
    a_to_b_.instrument(registry, prefix + "ab.");
    b_to_a_.instrument(registry, prefix + "ba.");
  }

 private:
  LinkEndpoint a_to_b_;
  LinkEndpoint b_to_a_;
};

}  // namespace net
