// Bounds-checked byte buffer used for all wire data in the simulator.
//
// Every read/write validates its range and throws std::out_of_range on
// violation — a simulated router should fail loudly on a malformed access,
// not corrupt neighbouring state. Multi-byte integer accessors use network
// byte order (big-endian), matching real packet headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace net {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t size) : bytes_(size, 0) {}
  explicit Buffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  void resize(std::size_t n) { bytes_.resize(n, 0); }

  std::uint8_t u8(std::size_t off) const;
  std::uint16_t u16(std::size_t off) const;  // big-endian
  std::uint32_t u32(std::size_t off) const;  // big-endian
  std::uint64_t u64(std::size_t off) const;  // big-endian

  void set_u8(std::size_t off, std::uint8_t v);
  void set_u16(std::size_t off, std::uint16_t v);
  void set_u32(std::size_t off, std::uint32_t v);
  void set_u64(std::size_t off, std::uint64_t v);

  /// Little-endian 32-bit accessors, used for gradient payloads (hosts
  /// write gradients in native x86 order, as SwitchML/ATP do).
  std::uint32_t u32le(std::size_t off) const;
  void set_u32le(std::size_t off, std::uint32_t v);

  std::span<const std::uint8_t> view(std::size_t off, std::size_t len) const;
  void write(std::size_t off, std::span<const std::uint8_t> src);

  /// Appends bytes to the end.
  void append(std::span<const std::uint8_t> src);

  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::span<std::uint8_t> mutable_bytes() { return bytes_; }

  /// Steals the underlying storage, leaving this buffer empty. Used by the
  /// packet pool to recycle frame memory (see net/buffer_pool.hpp).
  std::vector<std::uint8_t> take_storage() {
    std::vector<std::uint8_t> out = std::move(bytes_);
    bytes_.clear();
    return out;
  }

  bool operator==(const Buffer&) const = default;

  std::string hex() const;

 private:
  void check(std::size_t off, std::size_t len, const char* what) const;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace net
