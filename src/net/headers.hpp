// Ethernet / IPv4 / UDP header types with parse/serialize against Buffer
// and IPv4 & UDP checksum computation. These are the protocols Trio-ML
// packets ride on (Fig 7 of the paper).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "net/buffer.hpp"

namespace net {

using MacAddr = std::array<std::uint8_t, 6>;

std::string mac_to_string(const MacAddr& mac);

/// IPv4 address as a host-order 32-bit value with dotted-quad helpers.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : v_(v) {}
  static Ipv4Addr from_string(const std::string& dotted);
  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr(std::uint32_t(a) << 24 | std::uint32_t(b) << 16 |
                    std::uint32_t(c) << 8 | d);
  }
  constexpr std::uint32_t value() const { return v_; }
  std::string to_string() const;
  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  /// 224.0.0.0/4
  constexpr bool is_multicast() const { return (v_ >> 28) == 0xe; }

 private:
  std::uint32_t v_ = 0;
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  static constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
  static constexpr std::uint16_t kEtherTypeArp = 0x0806;

  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ether_type = kEtherTypeIpv4;

  void write(Buffer& buf, std::size_t off) const;
  static EthernetHeader parse(const Buffer& buf, std::size_t off);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options
  static constexpr std::uint8_t kProtoUdp = 17;
  static constexpr std::uint8_t kProtoTcp = 6;

  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // 32-bit words; 5 = no options
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoUdp;
  std::uint16_t checksum = 0;  // filled by write()
  Ipv4Addr src;
  Ipv4Addr dst;

  std::size_t header_bytes() const { return std::size_t(ihl) * 4; }

  /// Serializes with a freshly computed checksum.
  void write(Buffer& buf, std::size_t off) const;
  static Ipv4Header parse(const Buffer& buf, std::size_t off);

  /// Validates the checksum of the on-wire header at `off`.
  static bool checksum_ok(const Buffer& buf, std::size_t off);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;  // 0 = not computed (legal for UDP/IPv4)

  void write(Buffer& buf, std::size_t off) const;
  static UdpHeader parse(const Buffer& buf, std::size_t off);
};

/// RFC 1071 ones'-complement checksum over `len` bytes at `off`.
std::uint16_t internet_checksum(const Buffer& buf, std::size_t off,
                                std::size_t len);

}  // namespace net
