// The "Slow Worker Pattern" straggler generator (paper §6.1, after
// FlexRR): each iteration has three possible delay points; at each point
// one randomly chosen server decides to slow down with probability p, and
// a straggling server sleeps for a period uniformly random in
// [0.5, 2] x the model's typical (no-straggler) iteration time.
#pragma once

#include <vector>

#include "sim/random.hpp"

namespace mltrain {

struct StragglerEvent {
  int worker = -1;
  double sleep_ms = 0;
};

class SlowWorkerPattern {
 public:
  SlowWorkerPattern(double probability, int num_workers,
                    double typical_iteration_ms, std::uint64_t seed = 1)
      : p_(probability),
        num_workers_(num_workers),
        typical_ms_(typical_iteration_ms),
        rng_(seed) {}

  /// Draws the straggler events for one iteration (0 to 3 events).
  std::vector<StragglerEvent> next_iteration();

  /// Per-worker total sleep for one iteration, ms.
  std::vector<double> next_iteration_delays();

  static constexpr int kDelayPoints = 3;

 private:
  double p_;
  int num_workers_;
  double typical_ms_;
  sim::Rng rng_;
};

}  // namespace mltrain
