#include "mltrain/straggler_gen.hpp"

namespace mltrain {

std::vector<StragglerEvent> SlowWorkerPattern::next_iteration() {
  std::vector<StragglerEvent> events;
  for (int point = 0; point < kDelayPoints; ++point) {
    const int worker =
        static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(num_workers_)));
    if (rng_.bernoulli(p_)) {
      events.push_back(StragglerEvent{
          worker, rng_.uniform(0.5, 2.0) * typical_ms_});
    }
  }
  return events;
}

std::vector<double> SlowWorkerPattern::next_iteration_delays() {
  std::vector<double> delays(static_cast<std::size_t>(num_workers_), 0.0);
  for (const auto& e : next_iteration()) {
    delays[static_cast<std::size_t>(e.worker)] += e.sleep_ms;
  }
  return delays;
}

}  // namespace mltrain
