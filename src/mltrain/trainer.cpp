#include "mltrain/trainer.hpp"

#include <algorithm>
#include <cmath>

namespace mltrain {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kIdeal: return "Ideal";
    case Backend::kSwitchML: return "SwitchML";
    case Backend::kTrioML: return "Trio-ML";
  }
  return "?";
}

double Trainer::ring_allreduce_ms(double bytes, int workers, double gbps) {
  // Ring allreduce moves 2*(N-1)/N of the data over each link.
  const double on_wire =
      2.0 * (workers - 1) / workers * bytes * 8.0;  // bits
  return on_wire / (gbps * 1e9) * 1e3;
}

Trainer::Trainer(const ModelSpec& model, Backend backend, TrainConfig config)
    : model_(model),
      backend_(backend),
      config_(config),
      stragglers_(config.straggle_probability, config.num_workers,
                  /*typical placeholder, set below*/ 1.0, config.seed),
      rng_(config.seed ^ 0x5eedc0ffee) {
  typical_ms_ = model_.compute_ms + comm_ms();
  stragglers_ = SlowWorkerPattern(config_.straggle_probability,
                                  config_.num_workers, typical_ms_,
                                  config_.seed);
}

double Trainer::comm_ms() const {
  const double bytes = model_.size_mb * 1e6;
  switch (backend_) {
    case Backend::kIdeal:
      return ring_allreduce_ms(bytes, config_.num_workers,
                               config_.rdma_ring_gbps);
    case Backend::kSwitchML:
      // Each worker streams the model once up and receives it once down,
      // window-pipelined: the DPDK goodput bounds the rate.
      return bytes * 8.0 / (config_.switchml_goodput_gbps * 1e9) * 1e3;
    case Backend::kTrioML:
      return bytes * 8.0 / (config_.trioml_goodput_gbps * 1e9) * 1e3;
  }
  return 0;
}

IterationOutcome Trainer::step() {
  IterationOutcome out;
  out.contributors = config_.num_workers;

  // The Ideal setup has no stragglers injected (paper §6.1).
  std::vector<StragglerEvent> events;
  if (backend_ != Backend::kIdeal) {
    events = stragglers_.next_iteration();
  }

  switch (backend_) {
    case Backend::kIdeal:
      out.duration_ms = model_.compute_ms + comm_ms();
      break;

    case Backend::kSwitchML: {
      // The aggregation cannot finish before the slowest worker has
      // contributed every block ("its aggregation logic requires all
      // participating workers to contribute before making progress").
      // Sleeps at distinct delay points stall the synchronous pipeline
      // at different phases of the iteration and therefore compose
      // additively; each stall additionally drains the pool and restarts
      // the windowed pipeline cold (stall amplification, [cal]).
      double extra = 0;
      for (const auto& e : events) {
        extra += e.sleep_ms * config_.switchml_stall_amplification;
      }
      out.duration_ms = model_.compute_ms + extra + comm_ms();
      break;
    }

    case Backend::kTrioML: {
      // Timer threads age blocks untouched for one timeout period; the
      // scan that notices lands within [timeout, 2*timeout] (Fig 14).
      // Each straggle event costs at most the detection delay: once the
      // block ages out, a degraded partial result unblocks everyone.
      double extra = 0;
      std::vector<bool> aged(static_cast<std::size_t>(config_.num_workers),
                             false);
      for (const auto& e : events) {
        const double detect_ms =
            config_.straggler_timeout_ms * rng_.uniform(1.0, 2.0);
        if (e.sleep_ms <= detect_ms) {
          extra += e.sleep_ms;  // recovered before any block aged out
        } else {
          extra += detect_ms;
          aged[static_cast<std::size_t>(e.worker)] = true;
        }
      }
      int straggling = 0;
      for (bool a : aged) straggling += a ? 1 : 0;
      if (straggling > 0) {
        out.degraded = true;
        out.contributors = config_.num_workers - straggling;
      }
      out.duration_ms = model_.compute_ms + extra + comm_ms();
      break;
    }
  }

  if (out.degraded) {
    const double frac =
        static_cast<double>(out.contributors) / config_.num_workers;
    out.progress = std::pow(frac, config_.efficiency_alpha);
  }
  effective_iterations_ += out.progress;
  wall_ms_ += out.duration_ms;
  return out;
}

double Trainer::accuracy() const {
  return model_.acc_max -
         (model_.acc_max - model_.acc0) *
             std::exp(-effective_iterations_ / model_.tau_iters);
}

TrainResult Trainer::run_iterations(std::uint64_t n) {
  TrainResult res;
  double total_ms = 0;
  std::uint64_t degraded = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto out = step();
    total_ms += out.duration_ms;
    if (out.degraded) ++degraded;
  }
  res.iterations = n;
  res.mean_iteration_ms = n ? total_ms / static_cast<double>(n) : 0;
  res.degraded_fraction = n ? static_cast<double>(degraded) / n : 0;
  return res;
}

TrainResult Trainer::train_to_accuracy(double target_acc,
                                       double max_minutes) {
  TrainResult res;
  double total_ms = 0;
  std::uint64_t degraded = 0;
  double next_sample_min = 0;
  const double sample_every_min = max_minutes / 200.0;
  while (wall_ms_ < max_minutes * 60e3) {
    const auto out = step();
    total_ms += out.duration_ms;
    ++res.iterations;
    if (out.degraded) ++degraded;
    const double minutes = wall_ms_ / 60e3;
    if (minutes >= next_sample_min) {
      res.curve.emplace_back(minutes, accuracy());
      next_sample_min += sample_every_min;
    }
    if (accuracy() >= target_acc) {
      res.time_to_target_minutes = minutes;
      break;
    }
  }
  res.mean_iteration_ms =
      res.iterations ? total_ms / static_cast<double>(res.iterations) : 0;
  res.degraded_fraction =
      res.iterations ? static_cast<double>(degraded) / res.iterations : 0;
  return res;
}

}  // namespace mltrain
