// Flow-level distributed training simulation for the paper's Figures 12
// and 13: data-parallel training of a model across N workers, with
// allreduce served by one of three backends:
//
//   kIdeal    — PyTorch + NCCL ring-allreduce over RDMA, no stragglers
//               injected (the paper's "Ideal setup");
//   kSwitchML — in-network aggregation that must hear from every worker:
//               the iteration completes only after the slowest worker has
//               contributed (no straggler escape);
//   kTrioML   — Trio in-network aggregation with timer-thread straggler
//               mitigation: blocks touched only by non-stragglers age out
//               within [timeout, 2*timeout] and a *degraded* partial
//               result is returned, so the iteration proceeds at roughly
//               the non-stragglers' pace — at the price of a small
//               statistical-efficiency penalty on degraded iterations.
//
// Why flow level: Figures 12-13 span hours of training; the packet-level
// simulator (trioml/, switchml/) validates the mechanisms and calibrates
// the per-backend communication rates, and this model composes them with
// compute and straggler sleeps per iteration.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mltrain/model.hpp"
#include "mltrain/straggler_gen.hpp"
#include "sim/stats.hpp"

namespace mltrain {

enum class Backend { kIdeal, kSwitchML, kTrioML };

const char* backend_name(Backend backend);

struct TrainConfig {
  int num_workers = 6;
  double straggle_probability = 0.0;  // the paper's p

  // Communication rates (per-worker sustained goodput). The in-network
  // rates come from the packet-level benchmarks (Figure 15/16); the ring
  // rate is RDMA line rate.
  double rdma_ring_gbps = 100.0;
  double trioml_goodput_gbps = 55.0;    // 1024-grad packets + DPDK hosts
  double switchml_goodput_gbps = 45.0;  // 256-grad packets + DPDK hosts

  // Trio straggler mitigation (paper defaults: N=100 threads, 10 ms).
  double straggler_timeout_ms = 10.0;

  /// [cal] When a SwitchML worker stalls mid-allreduce, the whole pool
  /// drains and the windowed pipeline restarts cold once it resumes, so
  /// the wall-clock cost exceeds the raw sleep. Calibrated against the
  /// paper's Fig 13 SwitchML slope (see EXPERIMENTS.md).
  double switchml_stall_amplification = 1.35;

  /// Statistical-efficiency exponent: a degraded iteration aggregated
  /// over k of n workers contributes (k/n)^alpha of a full iteration's
  /// convergence progress. Calibrated so the Fig 12 time-to-accuracy
  /// speedups sit below the Fig 13 iteration-time speedups, as measured
  /// in the paper (see EXPERIMENTS.md).
  double efficiency_alpha = 1.55;

  std::uint64_t seed = 1;
};

struct IterationOutcome {
  double duration_ms = 0;
  bool degraded = false;
  int contributors = 0;   // k of n workers in the aggregation result
  double progress = 1.0;  // effective iterations of convergence progress
};

struct TrainResult {
  double mean_iteration_ms = 0;
  std::uint64_t iterations = 0;
  double degraded_fraction = 0;
  /// (minutes, accuracy) samples of the validation-accuracy curve.
  std::vector<std::pair<double, double>> curve;
  double time_to_target_minutes = -1;  // -1: target not reached
};

class Trainer {
 public:
  Trainer(const ModelSpec& model, Backend backend, TrainConfig config);

  /// Simulates one training iteration.
  IterationOutcome step();

  /// Average iteration time over the first `n` iterations (Figure 13).
  TrainResult run_iterations(std::uint64_t n);

  /// Trains until the target accuracy (or `max_minutes`), sampling the
  /// accuracy curve (Figure 12).
  TrainResult train_to_accuracy(double target_acc, double max_minutes);

  /// Ring-allreduce time for `bytes` over N workers at `gbps`, ms.
  static double ring_allreduce_ms(double bytes, int workers, double gbps);

  double typical_iteration_ms() const { return typical_ms_; }
  double accuracy() const;

 private:
  double comm_ms() const;

  ModelSpec model_;
  Backend backend_;
  TrainConfig config_;
  SlowWorkerPattern stragglers_;
  sim::Rng rng_;
  double typical_ms_;
  double effective_iterations_ = 0;
  double wall_ms_ = 0;
};

}  // namespace mltrain
