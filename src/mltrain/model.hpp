// The DNN model zoo of the paper's evaluation (Table 1) plus the timing
// and convergence calibration used by the training simulation.
//
// Compute times are set so the Ideal (NCCL + RDMA, no stragglers) average
// iteration time matches the paper's Figure 13 baselines; the accuracy
// model is a saturating-exponential fit whose time constants reproduce
// the Figure 12 time scales. See EXPERIMENTS.md for the calibration
// discussion — the *shapes* (who wins, crossover positions, speedup
// ratios) come out of the simulation, not out of these constants alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mltrain {

struct ModelSpec {
  std::string name;
  double size_mb = 0;         // gradient bytes exchanged per iteration
  int batch_size_per_gpu = 0; // Table 1
  std::string dataset;

  /// Per-iteration GPU compute time on the A100 testbed (forward +
  /// backward + optimizer, communication excluded). [cal]
  double compute_ms = 0;

  // --- Convergence model ----------------------------------------------------
  /// top-5 validation accuracy = acc_max - (acc_max - acc0) *
  /// exp(-effective_iterations / tau_iters).
  double acc0 = 20.0;
  double acc_max = 0;
  double tau_iters = 0;
  /// Target validation accuracy used for time-to-accuracy (Fig 12).
  double target_acc = 90.0;

  std::size_t gradient_count() const {
    return static_cast<std::size_t>(size_mb * 1e6 / 4.0);
  }
};

/// ResNet50, DenseNet161, VGG11 with the paper's Table 1 parameters.
const std::vector<ModelSpec>& model_zoo();
const ModelSpec& model_by_name(const std::string& name);

}  // namespace mltrain
