#include "mltrain/model.hpp"

#include <stdexcept>

namespace mltrain {

const std::vector<ModelSpec>& model_zoo() {
  // Table 1 of the paper; compute_ms / tau calibrated per EXPERIMENTS.md.
  static const std::vector<ModelSpec> zoo = {
      {
          .name = "ResNet50",
          .size_mb = 98,
          .batch_size_per_gpu = 64,
          .dataset = "ImageNet",
          .compute_ms = 92.0,
          .acc0 = 20.0,
          .acc_max = 93.0,
          .tau_iters = 36'600,
          .target_acc = 90.0,
      },
      {
          .name = "DenseNet161",
          .size_mb = 109,
          .batch_size_per_gpu = 64,
          .dataset = "ImageNet",
          .compute_ms = 215.0,
          .acc0 = 20.0,
          .acc_max = 93.5,
          .tau_iters = 14'450,
          .target_acc = 90.0,
      },
      {
          .name = "VGG11",
          .size_mb = 507,
          .batch_size_per_gpu = 128,
          .dataset = "ImageNet",
          .compute_ms = 512.0,
          .acc0 = 20.0,
          .acc_max = 85.0,
          .tau_iters = 14'000,
          .target_acc = 80.0,
      },
  };
  return zoo;
}

const ModelSpec& model_by_name(const std::string& name) {
  for (const auto& m : model_zoo()) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown model '" + name + "'");
}

}  // namespace mltrain
