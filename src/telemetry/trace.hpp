// Span/instant/counter tracer exporting Chrome trace_event JSON
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU —
// the format read by chrome://tracing and Perfetto).
//
// Mapping of the simulated chipset onto the trace model (docs/telemetry.md):
// one trace *process* per PFE, one *thread* row per PPE thread slot, plus
// extra rows for the hardware blocks (SMS banks, dispatch, reorder,
// crossbar, MQSS). Simulated nanoseconds are exported as fractional
// microseconds, the unit the viewers expect.
//
// Like the metrics registry, the tracer is zero-overhead when disabled:
// instrumented code keeps a Tracer* that is null when tracing is off, so
// the hot path pays one null check and no argument marshalling.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace telemetry {

class Tracer {
 public:
  explicit Tracer(bool enabled = false) : enabled_(enabled) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// Safety valve for long runs: events beyond the cap are counted and
  /// dropped (metadata is exempt). Default 4M events (~500 MB JSON).
  void set_max_events(std::size_t n) { max_events_ = n; }
  std::uint64_t dropped_events() const { return dropped_; }
  std::size_t event_count() const { return events_.size(); }

  // --- Metadata -----------------------------------------------------------
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  // --- Events -------------------------------------------------------------
  /// A span on row (pid, tid) covering [start, end] ("ph":"X").
  void complete(int pid, int tid, const std::string& name, sim::Time start,
                sim::Time end);
  /// A point event on row (pid, tid) ("ph":"i", thread scope).
  void instant(int pid, int tid, const std::string& name, sim::Time ts);
  /// A sampled counter track ("ph":"C"): `series` is the plotted line's
  /// label within counter `name`.
  void counter(int pid, const std::string& name, const std::string& series,
               sim::Time ts, double value);

  // --- Export -------------------------------------------------------------
  /// Writes {"traceEvents": [...]} — the JSON-object flavour of the
  /// format, which both chrome://tracing and Perfetto load directly.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X', 'i', 'C', 'M'
    int pid;
    int tid;
    std::int64_t ts_ns;
    std::int64_t dur_ns;   // X only
    std::string name;
    std::string arg_key;   // C: series label; M: metadata value
    double arg_value = 0;  // C only
  };

  bool admit();

  bool enabled_;
  std::size_t max_events_ = 4'000'000;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::vector<Event> meta_;
};

}  // namespace telemetry
