// The telemetry bundle threaded through trio::Router construction: the
// metrics registry (counters / gauges / histograms, --metrics-out) and
// the Chrome-trace tracer (--trace-out). Both are independently
// switchable and zero-overhead when off; a default-constructed Telemetry
// is fully disabled, which is what a Router builds for itself when the
// caller does not provide one.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace telemetry {

struct Telemetry {
  /// Both subsystems disabled (the no-observer fast path).
  Telemetry() : metrics(false), tracer(false) {}
  Telemetry(bool metrics_on, bool trace_on)
      : metrics(metrics_on), tracer(trace_on) {}

  Registry metrics;
  Tracer tracer;
};

}  // namespace telemetry
