// The telemetry metrics registry: named counters, gauges and HDR-style
// log-linear histograms, with optional time-series snapshots driven by
// the sim::Simulator clock and a JSON exporter.
//
// Design constraints (ROADMAP: "the observability substrate every later
// perf PR will measure against"):
//
//  * Zero overhead when disabled. Handles (Counter/Gauge/Histogram) are a
//    single pointer into registry-owned storage; a disabled registry hands
//    out null handles, so the hot-path cost of an un-recorded metric is
//    one perfectly-predicted branch and no allocation. Instrumented code
//    never checks an "is telemetry on?" flag itself.
//
//  * Stable addresses. Metric cells are heap-allocated individually and
//    never move, so handles stay valid for the registry's lifetime and
//    may be copied freely (e.g. one shared "instructions" counter handed
//    to every PPE of a PFE).
//
//  * Deterministic export. Metrics are kept in name order so two runs of
//    a deterministic simulation produce byte-identical JSON.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace telemetry {

/// Monotonically increasing event count. Handle; copy freely. Cells are
/// relaxed atomics: tier-level counters are shared across simulation
/// shards (sim/shard.hpp), and a plain add would race. Relaxed suffices —
/// counters carry no synchronisation, and reads happen after the engine's
/// end-of-run barrier.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }
  bool live() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Point-in-time level (queue depth, occupancy). Handle; copy freely.
/// Atomic like Counter; add() is an atomic read-modify-write.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }
  bool live() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// HDR-style log-linear histogram storage for non-negative integer values
/// (latencies in ns, depths, sizes). Values up to 2^kSubBucketBits are
/// recorded exactly; above that, buckets are spaced so the relative
/// quantization error stays below 1/kSubBuckets (~3%).
class HistogramData {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
  // Highest index for a 63-bit value: msb 62 -> bucket 58, sub 31.
  static constexpr std::size_t kNumBuckets =
      (63 - kSubBucketBits) * kSubBuckets + kSubBuckets;

  void record(std::int64_t value, std::uint64_t count = 1);
  void merge(const HistogramData& other);
  void reset();

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ != 0 ? min_ : 0; }
  std::int64_t max() const { return count_ != 0 ? max_ : 0; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ != 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Nearest-rank percentile over the bucketized values, p in [0, 100].
  /// Exact for values < kSubBuckets, <=~3% low otherwise (bucket lower
  /// bound); clamped to the exact observed min/max.
  std::int64_t percentile(double p) const;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const std::size_t bucket = static_cast<std::size_t>(msb - kSubBucketBits + 1);
    const std::size_t sub = static_cast<std::size_t>(
        (v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
    return bucket * kSubBuckets + sub;
  }
  /// Smallest value mapping to bucket `idx` (inverse of bucket_index).
  static std::uint64_t bucket_lower(std::size_t idx) {
    if (idx < kSubBuckets) return idx;
    const std::size_t bucket = idx / kSubBuckets;
    const std::uint64_t sub = idx % kSubBuckets;
    return (kSubBuckets + sub) << (bucket - 1);
  }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

/// Histogram handle; copy freely. Histogram cells are NOT atomic: every
/// histogram is registered under a per-router prefix, so it has exactly
/// one writer shard (asserting this stays cheaper than making the bucket
/// array atomic). Share a histogram across shards only at 1 shard.
class Histogram {
 public:
  Histogram() = default;
  void record(std::int64_t value) {
    if (data_ != nullptr) data_->record(value);
  }
  const HistogramData* data() const { return data_; }
  bool live() const { return data_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_ = nullptr;
};

class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }

  /// Finds or creates the named metric. Same name -> same cell, so
  /// independent components may share an accumulator. On a disabled
  /// registry these return null handles and allocate nothing.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  // --- Read-back (tests, exporters). Unknown names read as zero. --------
  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;
  const HistogramData* find_histogram(const std::string& name) const;

  // --- Time-series snapshots --------------------------------------------
  /// Starts periodic capture of every counter and gauge on the simulated
  /// clock. The recurring event keeps the simulator's queue non-empty, so
  /// pair with run_until() + stop_snapshots() (same discipline as
  /// trio::TimerWheel). No-op on a disabled registry.
  void start_snapshots(sim::Simulator& sim, sim::Duration period);
  void stop_snapshots();
  /// One-shot capture at time `now` (usable without start_snapshots).
  void take_snapshot(sim::Time now);

  struct Snapshot {
    std::int64_t t_ns = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
  };
  const std::vector<Snapshot>& snapshots() const { return snapshots_; }

  // --- Export ------------------------------------------------------------
  /// Writes the full registry (counters, gauges, histogram summaries,
  /// snapshots) as one JSON object. `now` stamps the export time.
  void write_json(std::ostream& os, sim::Time now) const;
  /// Convenience: write_json to `path`. Returns false on I/O failure.
  bool write_json_file(const std::string& path, sim::Time now) const;

  std::size_t metric_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  void arm_snapshot();

  bool enabled_;
  // Name -> individually heap-allocated cell: stable addresses, ordered
  // iteration for deterministic export. The maps are guarded by mu_ —
  // registration and read-back may be called from shard threads (e.g. a
  // worker re-instrumented after a crash/restart fault) while other
  // shards register their own metrics. The cells themselves are not
  // guarded: counters/gauges are atomic, histograms single-writer.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramData>> histograms_;

  std::vector<Snapshot> snapshots_;
  sim::Simulator* snapshot_sim_ = nullptr;
  sim::Duration snapshot_period_ = sim::Duration::zero();
  sim::EventId snapshot_event_;
  bool snapshots_running_ = false;
};

}  // namespace telemetry
