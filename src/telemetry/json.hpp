// Minimal JSON writing helpers shared by the metrics and trace exporters.
// Only what the telemetry layer needs: string escaping and locale-proof
// number formatting (the exporters compose objects/arrays by hand so the
// emitted layout stays diff-friendly).
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace telemetry {

/// Writes `s` as a JSON string literal (with surrounding quotes).
inline void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Writes a double with enough precision for ns-scale timestamps and no
/// locale surprises (snprintf with "%.17g" can emit ',' under some locales;
/// the simulator never changes the C locale, but be explicit anyway).
inline void json_number(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os << buf;
}

inline void json_number(std::ostream& os, std::uint64_t v) { os << v; }
inline void json_number(std::ostream& os, std::int64_t v) { os << v; }

}  // namespace telemetry
