#include "telemetry/trace.hpp"

#include <fstream>

#include "telemetry/json.hpp"

namespace telemetry {

void Tracer::set_process_name(int pid, const std::string& name) {
  if (!enabled_) return;
  meta_.push_back(Event{'M', pid, 0, 0, 0, "process_name", name, 0});
}

void Tracer::set_thread_name(int pid, int tid, const std::string& name) {
  if (!enabled_) return;
  meta_.push_back(Event{'M', pid, tid, 0, 0, "thread_name", name, 0});
}

bool Tracer::admit() {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  return true;
}

void Tracer::complete(int pid, int tid, const std::string& name,
                      sim::Time start, sim::Time end) {
  if (!enabled_ || !admit()) return;
  events_.push_back(
      Event{'X', pid, tid, start.ns(), (end - start).ns(), name, {}, 0});
}

void Tracer::instant(int pid, int tid, const std::string& name, sim::Time ts) {
  if (!enabled_ || !admit()) return;
  events_.push_back(Event{'i', pid, tid, ts.ns(), 0, name, {}, 0});
}

void Tracer::counter(int pid, const std::string& name,
                     const std::string& series, sim::Time ts, double value) {
  if (!enabled_ || !admit()) return;
  events_.push_back(Event{'C', pid, 0, ts.ns(), 0, name, series, value});
}

void Tracer::write_json(std::ostream& os) const {
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const Event& e) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\": ";
    json_string(os, e.name);
    os << ", \"ph\": \"" << e.phase << "\", \"pid\": " << e.pid;
    switch (e.phase) {
      case 'M':
        os << ", \"tid\": " << e.tid << ", \"args\": {\"name\": ";
        json_string(os, e.arg_key);
        os << "}";
        break;
      case 'X':
        os << ", \"tid\": " << e.tid << ", \"ts\": ";
        json_number(os, static_cast<double>(e.ts_ns) / 1000.0);
        os << ", \"dur\": ";
        json_number(os, static_cast<double>(e.dur_ns) / 1000.0);
        break;
      case 'i':
        os << ", \"tid\": " << e.tid << ", \"ts\": ";
        json_number(os, static_cast<double>(e.ts_ns) / 1000.0);
        os << ", \"s\": \"t\"";
        break;
      case 'C':
        os << ", \"ts\": ";
        json_number(os, static_cast<double>(e.ts_ns) / 1000.0);
        os << ", \"args\": {";
        json_string(os, e.arg_key);
        os << ": ";
        json_number(os, e.arg_value);
        os << "}";
        break;
      default:
        break;
    }
    os << "}";
  };
  for (const Event& e : meta_) emit(e);
  for (const Event& e : events_) emit(e);
  os << "\n], \"displayTimeUnit\": \"ns\"}\n";
}

bool Tracer::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace telemetry
