#include "telemetry/metrics.hpp"

#include <algorithm>
#include <fstream>

#include "telemetry/json.hpp"

namespace telemetry {

// ---------------------------------------------------------------------------
// HistogramData

void HistogramData::record(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::uint64_t v =
      value < 0 ? 0 : static_cast<std::uint64_t>(value);  // clamp negatives
  buckets_[bucket_index(v)] += count;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void HistogramData::reset() {
  buckets_.fill(0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

std::int64_t HistogramData::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with rank >= ceil(p/100 * n).
  const double exact = p / 100.0 * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const auto v = static_cast<std::int64_t>(bucket_lower(i));
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

// ---------------------------------------------------------------------------
// Registry

Counter Registry::counter(const std::string& name) {
  if (!enabled_) return Counter{};
  std::lock_guard<std::mutex> lk(mu_);
  auto& cell = counters_[name];
  if (!cell) cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  return Counter{cell.get()};
}

Gauge Registry::gauge(const std::string& name) {
  if (!enabled_) return Gauge{};
  std::lock_guard<std::mutex> lk(mu_);
  auto& cell = gauges_[name];
  if (!cell) cell = std::make_unique<std::atomic<std::int64_t>>(0);
  return Gauge{cell.get()};
}

Histogram Registry::histogram(const std::string& name) {
  if (!enabled_) return Histogram{};
  std::lock_guard<std::mutex> lk(mu_);
  auto& cell = histograms_[name];
  if (!cell) cell = std::make_unique<HistogramData>();
  return Histogram{cell.get()};
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->load(std::memory_order_relaxed)
                               : 0;
}

std::int64_t Registry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->load(std::memory_order_relaxed)
                             : 0;
}

const HistogramData* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

void Registry::take_snapshot(sim::Time now) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  snap.t_ns = now.ns();
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  snapshots_.push_back(std::move(snap));
}

void Registry::start_snapshots(sim::Simulator& sim, sim::Duration period) {
  if (!enabled_ || snapshots_running_) return;
  snapshot_sim_ = &sim;
  snapshot_period_ = period;
  snapshots_running_ = true;
  arm_snapshot();
}

void Registry::arm_snapshot() {
  snapshot_event_ = snapshot_sim_->schedule_in(snapshot_period_, [this] {
    take_snapshot(snapshot_sim_->now());
    if (snapshots_running_) arm_snapshot();
  });
}

void Registry::stop_snapshots() {
  if (!snapshots_running_) return;
  snapshot_sim_->cancel(snapshot_event_);
  snapshots_running_ = false;
}

void Registry::write_json(std::ostream& os, sim::Time now) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\n  \"sim_time_ns\": " << now.ns() << ",\n";
  os << "  \"enabled\": " << (enabled_ ? "true" : "false") << ",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << cell->load(std::memory_order_relaxed);
  }
  os << (first ? "}" : "\n  }") << ",\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << cell->load(std::memory_order_relaxed);
  }
  os << (first ? "}" : "\n  }") << ",\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": {\"count\": " << data->count() << ", \"min\": " << data->min()
       << ", \"max\": " << data->max() << ", \"mean\": ";
    json_number(os, data->mean());
    os << ", \"sum\": ";
    json_number(os, data->sum());
    for (const double p : {50.0, 90.0, 99.0, 99.9}) {
      char label[16];
      std::snprintf(label, sizeof(label), "p%g", p);
      os << ", \"" << label << "\": " << data->percentile(p);
    }
    os << "}";
  }
  os << (first ? "}" : "\n  }") << ",\n";

  os << "  \"snapshots\": [";
  first = true;
  for (const auto& snap : snapshots_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"t_ns\": " << snap.t_ns << ", \"counters\": {";
    bool f2 = true;
    for (const auto& [name, v] : snap.counters) {
      if (!f2) os << ", ";
      f2 = false;
      json_string(os, name);
      os << ": " << v;
    }
    os << "}, \"gauges\": {";
    f2 = true;
    for (const auto& [name, v] : snap.gauges) {
      if (!f2) os << ", ";
      f2 = false;
      json_string(os, name);
      os << ": " << v;
    }
    os << "}}";
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

bool Registry::write_json_file(const std::string& path, sim::Time now) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out, now);
  return static_cast<bool>(out);
}

}  // namespace telemetry
