// SwitchML baseline (Sapio et al., NSDI'21) on the PISA substrate — the
// comparison system of the paper's evaluation (§6.1 "SwitchML setup").
//
// Protocol essentials reproduced here:
//   * a pool of aggregation slots with two shadow sets; a worker's packet
//     addresses slot = block % pool, set = (block / pool) & 1;
//   * per-slot worker bitmap and counter in the first stage; gradient
//     values spread across the remaining stages' register arrays, one
//     register-array access per packet per array (PISA constraint,
//     enforced by pisa::Stage);
//   * the packet that completes a slot reads out + resets the values and
//     is multicast back to all workers as the result;
//   * NO timers in the data plane: a slot with a missing worker waits
//     forever — this is precisely why SwitchML cannot mitigate stragglers
//     (paper §5) and what Figures 12-13 measure.
//
// SwitchML-64 fits one pipeline; SwitchML-256 carries 256 gradients and
// requires the resources of all four pipelines (modelled as all workers
// attached to one pipeline whose stages hold 4x the arrays, matching the
// paper's single-pipeline best-case deployment).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pisa/switch.hpp"
#include "sim/stats.hpp"
#include "trioml/aggregator.hpp"
#include "trioml/wire_format.hpp"

namespace switchml {

struct SwitchMlConfig {
  int num_workers = 6;
  int pool_size = 512;          // slots per set (paper: pool 512)
  int grads_per_packet = 256;   // 64 (one pipeline) or 256 (four pipelines)
  std::uint32_t mcast_group = 1;
  int grad_stages = 8;          // stages carrying gradient arrays
};

/// Installs the SwitchML program on `sw` (parser, stages, deparser) for
/// workers attached to `worker_ports` of pipeline 0, and registers the
/// result multicast group.
class SwitchMlAggregator {
 public:
  SwitchMlAggregator(pisa::Switch& sw, SwitchMlConfig config,
                     std::vector<int> worker_ports);

  std::uint64_t packets() const { return packets_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t duplicates() const { return duplicates_; }
  /// Packets that arrived on a pipeline other than the aggregating one
  /// and had to be recirculated to it (paper §6.1: "If servers are
  /// connected to multiple pipelines, recirculation is required and will
  /// result in performance degradation").
  std::uint64_t cross_pipeline_recirculations() const {
    return cross_pipe_recirc_;
  }

  const SwitchMlConfig& config() const { return config_; }

 private:
  void install();

  pisa::Switch& sw_;
  SwitchMlConfig config_;
  std::vector<int> worker_ports_;
  // Register-array ids: per gradient-stage, the arrays it owns.
  int bitmap_array_ = -1;
  int count_array_ = -1;
  std::vector<std::vector<int>> grad_arrays_;  // [stage][array]
  std::uint64_t packets_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t cross_pipe_recirc_ = 0;
};

/// End-host worker for SwitchML: window == pool semantics (a slot is
/// reusable only after its previous occupant's result returned).
class SwitchMlWorker : public net::Node {
 public:
  struct Config {
    std::uint8_t job_id = 1;
    std::uint8_t worker_id = 0;
    int num_workers = 6;
    net::Ipv4Addr ip;
    net::MacAddr mac{0x02, 0, 0, 0, 2, 1};
    net::Ipv4Addr switch_ip;
    net::MacAddr switch_mac{0x02, 0, 0, 0, 2, 0xfe};
    int pool_size = 512;
    int grads_per_packet = 256;
    bool retransmit = false;  // disabled in the paper's experiments
    sim::Duration retransmit_timeout = sim::Duration::millis(1);
  };

  SwitchMlWorker(sim::Simulator& simulator, Config config,
                 net::LinkEndpoint& tx);

  void start_allreduce(std::vector<std::uint32_t> grads, std::uint16_t gen_id,
                       std::function<void(std::vector<std::uint32_t>)> done);

  void receive(net::PacketPtr pkt, int port) override;
  std::string name() const override {
    return "sml-worker-" + std::to_string(config_.worker_id);
  }

  /// Pause sending (straggler injection).
  void stall_for(sim::Duration d);

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t results_received() const { return results_received_; }
  sim::Samples& block_latency_us() { return block_latency_us_; }

 private:
  void pump();
  void send_block(std::uint32_t block);

  sim::Simulator& sim_;
  Config config_;
  net::LinkEndpoint& tx_;
  std::vector<std::uint32_t> grads_;
  std::vector<std::uint32_t> result_;
  std::uint16_t gen_id_ = 0;
  std::function<void(std::vector<std::uint32_t>)> done_;
  std::uint32_t num_blocks_ = 0;
  std::uint32_t next_block_ = 0;
  std::uint32_t completed_ = 0;
  std::vector<std::int64_t> slot_busy_until_block_;  // -1 = free
  std::vector<sim::Time> slot_sent_;
  sim::Time stalled_until_;
  bool pump_scheduled_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t results_received_ = 0;
  sim::Samples block_latency_us_;
};

}  // namespace switchml
