#include "switchml/switchml.hpp"

#include <bit>
#include <stdexcept>

namespace switchml {

using trioml::TrioMlHeader;

namespace {

// PHV metadata slots used by the SwitchML program.
enum Meta : std::size_t {
  kMetaBlock = 0,
  kMetaWorker = 1,
  kMetaSlot = 2,   // set-qualified slot index
  kMetaLast = 3,   // 1 when this packet completed the slot
  kMetaGrads = 4,
  kMetaDrop = 5,
  kMetaCount = 6,  // meta size
};

}  // namespace

SwitchMlAggregator::SwitchMlAggregator(pisa::Switch& sw,
                                       SwitchMlConfig config,
                                       std::vector<int> worker_ports)
    : sw_(sw), config_(config), worker_ports_(std::move(worker_ports)) {
  if (config_.num_workers > 32) {
    throw std::invalid_argument("SwitchML bitmap is a 32-bit register cell");
  }
  if (config_.grads_per_packet != 64 && config_.grads_per_packet != 256) {
    throw std::invalid_argument("SwitchML supports 64 or 256 grads/packet");
  }
  install();
  sw_.set_mcast_group(config_.mcast_group, worker_ports_);

  // Workers attached to pipelines other than pipeline 0 cannot reach its
  // register state: their packets must be recirculated into pipeline 0,
  // stealing a line-rate slot there and adding a full extra traversal.
  std::vector<bool> relayed(static_cast<std::size_t>(sw_.num_pipelines()),
                            false);
  for (int port : worker_ports_) {
    const int pipe = sw_.pipeline_of_port(port);
    if (pipe == 0 || relayed[static_cast<std::size_t>(pipe)]) continue;
    relayed[static_cast<std::size_t>(pipe)] = true;
    pisa::Pipeline& remote = sw_.pipeline(pipe);
    remote.set_parser([](pisa::Phv& phv) {
      phv.meta.assign(1, 0);
      return true;
    });
    remote.set_deparser([this](pisa::Phv&& phv) {
      ++cross_pipe_recirc_;
      sw_.pipeline(0).inject(std::move(phv.packet));
    });
  }
}

void SwitchMlAggregator::install() {
  pisa::Pipeline& pipe = sw_.pipeline(0);
  const std::size_t cells = std::size_t(config_.pool_size) * 2;  // two sets

  pipe.set_parser([this](pisa::Phv& phv) {
    const net::Buffer& frame = phv.packet->frame();
    if (!trioml::is_aggregation_frame(frame)) {
      phv.drop = true;  // non-aggregation traffic is not modelled here
      return false;
    }
    const TrioMlHeader hdr = TrioMlHeader::parse(frame, trioml::kTrioMlHdrOff);
    phv.meta.assign(kMetaCount, 0);
    phv.meta[kMetaBlock] = hdr.block_id;
    phv.meta[kMetaWorker] = hdr.src_id;
    phv.meta[kMetaSlot] =
        hdr.block_id % (std::uint64_t(config_.pool_size) * 2);
    phv.meta[kMetaGrads] = hdr.grad_cnt;
    ++packets_;
    return true;
  });

  // Stage 0: per-slot worker bitmap. One RMW computes membership,
  // duplicate detection and completion, and self-resets on completion.
  pisa::Stage& st0 = pipe.stage(0);
  bitmap_array_ = st0.add_register_array(cells);
  st0.set_logic([this](pisa::Phv& phv, pisa::Stage& st) {
    const auto slot = static_cast<std::size_t>(phv.meta[kMetaSlot]);
    const auto bit = std::uint32_t(1) << phv.meta[kMetaWorker];
    bool dup = false;
    bool last = false;
    st.stateful_rmw(bitmap_array_, slot, [&](std::uint32_t old) {
      if ((old & bit) != 0) {
        dup = true;
        return old;
      }
      const std::uint32_t nb = old | bit;
      if (std::popcount(nb) == config_.num_workers) {
        last = true;
        return std::uint32_t{0};  // completing packet resets the slot
      }
      return nb;
    });
    if (dup) {
      ++duplicates_;
      phv.drop = true;
      return;
    }
    phv.meta[kMetaLast] = last ? 1 : 0;
  });

  // Gradient stages: gradient i lives in array (i / per_stage) of stage
  // 1 + i % ... — spread evenly so each packet touches each array once.
  const int gps =
      (config_.grads_per_packet + config_.grad_stages - 1) /
      config_.grad_stages;
  grad_arrays_.resize(static_cast<std::size_t>(config_.grad_stages));
  for (int s = 0; s < config_.grad_stages; ++s) {
    pisa::Stage& st = pipe.stage(1 + s);
    auto& arrays = grad_arrays_[static_cast<std::size_t>(s)];
    for (int j = 0; j < gps; ++j) arrays.push_back(st.add_register_array(cells));
    st.set_logic([this, s, gps](pisa::Phv& phv, pisa::Stage& stage) {
      if (phv.drop) return;
      const auto slot = static_cast<std::size_t>(phv.meta[kMetaSlot]);
      const bool last = phv.meta[kMetaLast] != 0;
      const auto grads = static_cast<int>(phv.meta[kMetaGrads]);
      net::Buffer& frame = phv.packet->frame();
      for (int j = 0; j < gps; ++j) {
        const int gi = s * gps + j;
        if (gi >= grads) break;
        const std::uint32_t g =
            trioml::read_gradient(frame, static_cast<std::size_t>(gi));
        std::uint32_t out = 0;
        stage.stateful_rmw(
            grad_arrays_[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(j)],
            slot, [&](std::uint32_t old) {
              out = old + g;
              return last ? std::uint32_t{0} : out;  // read-out + reset
            });
        if (last) {
          trioml::write_gradient(frame, static_cast<std::size_t>(gi), out);
        }
      }
    });
  }

  pipe.set_deparser([this](pisa::Phv&& phv) {
    if (phv.drop) return;
    if (phv.meta[kMetaLast] != 0) {
      // The completing packet becomes the result: stamp the contributor
      // count and multicast to all workers.
      net::Buffer& frame = phv.packet->frame();
      TrioMlHeader hdr = TrioMlHeader::parse(frame, trioml::kTrioMlHdrOff);
      hdr.src_cnt = static_cast<std::uint8_t>(config_.num_workers);
      hdr.write(frame, trioml::kTrioMlHdrOff);
      phv.mcast_group = config_.mcast_group;
      ++completions_;
      sw_.egress(std::move(phv));
    }
    // Non-completing packets are absorbed by the switch (no response --
    // workers learn nothing until the slot completes).
  });
}

// ---------------------------------------------------------------------------
// SwitchMlWorker

SwitchMlWorker::SwitchMlWorker(sim::Simulator& simulator, Config config,
                               net::LinkEndpoint& tx)
    : sim_(simulator), config_(config), tx_(tx) {
  slot_busy_until_block_.assign(std::size_t(config_.pool_size) * 2, -1);
  slot_sent_.assign(std::size_t(config_.pool_size) * 2, sim::Time::zero());
}

void SwitchMlWorker::start_allreduce(
    std::vector<std::uint32_t> grads, std::uint16_t gen_id,
    std::function<void(std::vector<std::uint32_t>)> done) {
  if (done_) {
    throw std::logic_error("SwitchMlWorker: allreduce already in progress");
  }
  grads_ = std::move(grads);
  gen_id_ = gen_id;
  done_ = std::move(done);
  result_.assign(grads_.size(), 0);
  num_blocks_ = static_cast<std::uint32_t>(
      (grads_.size() + config_.grads_per_packet - 1) /
      static_cast<std::size_t>(config_.grads_per_packet));
  next_block_ = 0;
  completed_ = 0;
  std::fill(slot_busy_until_block_.begin(), slot_busy_until_block_.end(), -1);
  pump();
}

void SwitchMlWorker::stall_for(sim::Duration d) {
  const sim::Time until = sim_.now() + d;
  if (until > stalled_until_) stalled_until_ = until;
}

void SwitchMlWorker::pump() {
  if (!done_) return;
  if (sim_.now() < stalled_until_) {
    if (!pump_scheduled_) {
      pump_scheduled_ = true;
      sim_.schedule_at(stalled_until_, [this] {
        pump_scheduled_ = false;
        pump();
      });
    }
    return;
  }
  // SwitchML window: at most pool_size outstanding, and a set-qualified
  // slot must be free before its next occupant may be sent.
  while (next_block_ < num_blocks_) {
    const std::size_t qslot =
        next_block_ % (std::size_t(config_.pool_size) * 2);
    if (slot_busy_until_block_[qslot] >= 0) break;
    if (next_block_ - completed_ >=
        static_cast<std::uint32_t>(config_.pool_size)) {
      break;
    }
    slot_busy_until_block_[qslot] = next_block_;
    slot_sent_[qslot] = sim_.now();
    send_block(next_block_++);
  }
}

void SwitchMlWorker::send_block(std::uint32_t block) {
  const std::size_t begin =
      std::size_t(block) * static_cast<std::size_t>(config_.grads_per_packet);
  const std::size_t count = std::min<std::size_t>(
      static_cast<std::size_t>(config_.grads_per_packet),
      grads_.size() - begin);
  TrioMlHeader hdr;
  hdr.job_id = config_.job_id;
  hdr.block_id = block;
  hdr.gen_id = gen_id_;
  hdr.src_id = config_.worker_id;
  hdr.src_cnt = 1;
  net::Buffer frame = trioml::build_aggregation_frame(
      config_.mac, config_.switch_mac, config_.ip, config_.switch_ip,
      static_cast<std::uint16_t>(21000 + config_.worker_id), hdr,
      std::span<const std::uint32_t>(grads_.data() + begin, count));
  tx_.send(net::Packet::make(std::move(frame)));
  ++packets_sent_;
}

void SwitchMlWorker::receive(net::PacketPtr pkt, int) {
  const net::Buffer& frame = pkt->frame();
  if (!trioml::is_aggregation_frame(frame)) return;
  const TrioMlHeader hdr = TrioMlHeader::parse(frame, trioml::kTrioMlHdrOff);
  if (!done_ || hdr.job_id != config_.job_id || hdr.gen_id != gen_id_) return;
  const std::size_t qslot =
      hdr.block_id % (std::size_t(config_.pool_size) * 2);
  if (slot_busy_until_block_[qslot] !=
      static_cast<std::int64_t>(hdr.block_id)) {
    return;  // stale/duplicate result
  }
  slot_busy_until_block_[qslot] = -1;
  ++results_received_;
  block_latency_us_.add((sim_.now() - slot_sent_[qslot]).us());

  const std::size_t base =
      std::size_t(hdr.block_id) *
      static_cast<std::size_t>(config_.grads_per_packet);
  for (std::size_t i = 0;
       i < hdr.grad_cnt && base + i < result_.size(); ++i) {
    result_[base + i] = trioml::read_gradient(frame, i);
  }
  ++completed_;
  if (completed_ == num_blocks_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done(std::move(result_));
    return;
  }
  pump();
}

}  // namespace switchml
