#include "pisa/switch.hpp"

#include <stdexcept>

namespace pisa {

Switch::Switch(sim::Simulator& simulator, const SwitchConfig& config,
               std::string name)
    : sim_(simulator), config_(config), name_(std::move(name)) {
  if (config.pipelines <= 0 || config.ports_per_pipeline <= 0) {
    throw std::invalid_argument("pisa::Switch: bad geometry");
  }
  for (int i = 0; i < config.pipelines; ++i) {
    pipes_.push_back(std::make_unique<Pipeline>(simulator, config.pipeline));
    pipes_.back()->set_deparser([this](Phv&& phv) { egress(std::move(phv)); });
  }
  port_tx_.resize(static_cast<std::size_t>(num_ports()), nullptr);
  port_sinks_.resize(static_cast<std::size_t>(num_ports()));
}

void Switch::receive(net::PacketPtr pkt, int port) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("pisa::Switch::receive: bad port");
  }
  ++packets_received_;
  pkt->set_ingress_port(port);
  pipes_[static_cast<std::size_t>(pipeline_of_port(port))]->inject(
      std::move(pkt));
}

void Switch::attach_port(int port, net::LinkEndpoint& tx) {
  port_tx_.at(static_cast<std::size_t>(port)) = &tx;
}

void Switch::attach_port_sink(int port,
                              std::function<void(net::PacketPtr)> sink) {
  port_sinks_.at(static_cast<std::size_t>(port)) = std::move(sink);
}

void Switch::set_mcast_group(std::uint32_t group, std::vector<int> ports) {
  if (mcast_groups_.size() <= group) mcast_groups_.resize(group + 1);
  mcast_groups_[group] = std::move(ports);
}

void Switch::egress(Phv&& phv) {
  if (phv.drop) return;
  if (phv.mcast_group != 0) {
    if (phv.mcast_group >= mcast_groups_.size()) return;
    for (int port : mcast_groups_[phv.mcast_group]) {
      port_out(port, net::Packet::make(phv.packet->frame()));
    }
    return;
  }
  if (phv.egress_port >= 0) port_out(phv.egress_port, std::move(phv.packet));
}

void Switch::port_out(int port, net::PacketPtr pkt) {
  if (port < 0 || port >= num_ports()) return;
  ++packets_transmitted_;
  pkt->set_egress_port(port);
  auto* tx = port_tx_[static_cast<std::size_t>(port)];
  if (tx != nullptr) {
    tx->send(std::move(pkt));
    return;
  }
  auto& sink = port_sinks_[static_cast<std::size_t>(port)];
  if (sink) sink(std::move(pkt));
}

}  // namespace pisa
