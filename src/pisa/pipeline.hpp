// A PISA (Protocol Independent Switch Architecture) pipeline model — the
// baseline architecture the paper contrasts Trio against (Fig 1b).
//
// The architectural constraints that matter for the comparison are
// enforced structurally, not just documented:
//   * packets traverse a fixed sequence of match-action stages at line
//     rate — per-packet work is bounded by the stage count;
//   * stateful memory is per-stage register arrays, and one packet may
//     perform at most ONE stateful access per register array per
//     traversal (the RMW-at-stage constraint that makes SwitchML spread a
//     packet's gradients across stages);
//   * stages cannot reach other stages' registers, and pipelines cannot
//     reach other pipelines' registers at all;
//   * there are no data-plane timers — the only way to revisit state is
//     to recirculate a packet, consuming ingress bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pisa {

/// Per-traversal packet context: the PHV (parsed representation plus
/// metadata scratch) handed from stage to stage.
struct Phv {
  net::PacketPtr packet;
  /// Parsed/computed metadata fields, program-defined meaning.
  std::vector<std::uint64_t> meta;
  bool drop = false;
  bool recirculate = false;
  int egress_port = -1;
  /// Multicast group id (0 = none); resolved by the traffic manager.
  std::uint32_t mcast_group = 0;
};

class Stage;

/// A stage's match-action logic, supplied by the application.
using StageLogic = std::function<void(Phv&, Stage&)>;

/// One match-action stage with its register arrays.
class Stage {
 public:
  explicit Stage(int index) : index_(index) {}

  /// Declares a register array of `size` 32-bit cells. Returns its id.
  int add_register_array(std::size_t size);

  /// Stateful read-modify-write: applies `f` to the cell and returns the
  /// cell's new value. Enforces the one-access-per-array-per-traversal
  /// constraint; a second access throws PisaConstraintViolation.
  std::uint32_t stateful_rmw(int array, std::size_t index,
                             const std::function<std::uint32_t(std::uint32_t)>& f);

  /// Plain read (counts as the array's single access too).
  std::uint32_t stateful_read(int array, std::size_t index);

  void set_logic(StageLogic logic) { logic_ = std::move(logic); }

  int index() const { return index_; }
  std::uint64_t accesses() const { return accesses_; }

  /// Resets the per-traversal access budget. Called by the pipeline for
  /// each packet; exposed for direct stage-level testing.
  void begin_traversal() { touched_.assign(arrays_.size(), false); }

 private:
  friend class Pipeline;
  void run(Phv& phv) {
    if (logic_) logic_(phv, *this);
  }

  int index_;
  StageLogic logic_;
  std::vector<std::vector<std::uint32_t>> arrays_;
  std::vector<bool> touched_;
  std::uint64_t accesses_ = 0;
};

class PisaConstraintViolation : public std::logic_error {
 public:
  explicit PisaConstraintViolation(const std::string& what)
      : std::logic_error("PISA constraint violation: " + what) {}
};

struct PipelineConfig {
  int stages = 12;
  /// Per-stage transit latency.
  sim::Duration stage_latency = sim::Duration::nanos(40);
  /// Line-rate packet throughput of the pipeline front end.
  double packets_per_ns = 1.0;  // ~1 packet/cycle
  /// Parser latency before stage 0 and deparser after the last stage.
  sim::Duration parser_latency = sim::Duration::nanos(100);
};

/// Parser logic: fills Phv::meta from the packet; returns false to drop.
using ParserLogic = std::function<bool(Phv&)>;
/// Invoked when the packet leaves the deparser (forward/multicast decided
/// from the Phv by the switch).
using DeparserSink = std::function<void(Phv&&)>;

class Pipeline {
 public:
  Pipeline(sim::Simulator& simulator, const PipelineConfig& config);

  Stage& stage(int i) { return *stages_.at(static_cast<std::size_t>(i)); }
  int num_stages() const { return static_cast<int>(stages_.size()); }

  void set_parser(ParserLogic parser) { parser_ = std::move(parser); }
  void set_deparser(DeparserSink sink) { deparser_ = std::move(sink); }

  /// Injects a packet at the pipeline head. Processing completes after
  /// parser + stages latency; recirculated packets re-enter automatically
  /// (consuming front-end slots, i.e. reducing usable line rate).
  void inject(net::PacketPtr pkt);

  std::uint64_t packets_in() const { return packets_in_; }
  std::uint64_t recirculations() const { return recirculations_; }
  sim::Duration traversal_latency() const;

 private:
  void traverse(Phv phv);

  sim::Simulator& sim_;
  PipelineConfig config_;
  std::vector<std::unique_ptr<Stage>> stages_;
  ParserLogic parser_;
  DeparserSink deparser_;
  sim::Time front_free_;
  std::uint64_t packets_in_ = 0;
  std::uint64_t recirculations_ = 0;
};

}  // namespace pisa
