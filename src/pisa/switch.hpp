// A Tofino-style PISA switch: four independent pipelines, each serving a
// group of front-panel ports; a traffic manager that forwards/multicasts
// between pipelines. Pipelines cannot access each other's register state
// — cross-pipeline stateful applications must recirculate (paper §6.1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "pisa/pipeline.hpp"

namespace pisa {

struct SwitchConfig {
  int pipelines = 4;
  int ports_per_pipeline = 16;
  PipelineConfig pipeline;
};

class Switch : public net::Node {
 public:
  Switch(sim::Simulator& simulator, const SwitchConfig& config,
         std::string name = "tofino");

  // --- net::Node ----------------------------------------------------------
  void receive(net::PacketPtr pkt, int port) override;
  std::string name() const override { return name_; }

  Pipeline& pipeline(int i) { return *pipes_.at(static_cast<std::size_t>(i)); }
  int num_pipelines() const { return static_cast<int>(pipes_.size()); }
  int num_ports() const {
    return num_pipelines() * config_.ports_per_pipeline;
  }
  int pipeline_of_port(int port) const {
    return port / config_.ports_per_pipeline;
  }

  void attach_port(int port, net::LinkEndpoint& tx);
  void attach_port_sink(int port, std::function<void(net::PacketPtr)> sink);

  /// Registers a multicast group: group id -> egress ports.
  void set_mcast_group(std::uint32_t group, std::vector<int> ports);

  /// Egress path used by pipeline deparsers.
  void egress(Phv&& phv);

  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_transmitted() const { return packets_transmitted_; }

 private:
  void port_out(int port, net::PacketPtr pkt);

  sim::Simulator& sim_;
  SwitchConfig config_;
  std::string name_;
  std::vector<std::unique_ptr<Pipeline>> pipes_;
  std::vector<net::LinkEndpoint*> port_tx_;
  std::vector<std::function<void(net::PacketPtr)>> port_sinks_;
  std::vector<std::vector<int>> mcast_groups_;  // indexed by group id

  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_transmitted_ = 0;
};

}  // namespace pisa
