#include "pisa/pipeline.hpp"

namespace pisa {

int Stage::add_register_array(std::size_t size) {
  arrays_.emplace_back(size, 0u);
  touched_.push_back(false);
  return static_cast<int>(arrays_.size() - 1);
}

std::uint32_t Stage::stateful_rmw(
    int array, std::size_t index,
    const std::function<std::uint32_t(std::uint32_t)>& f) {
  auto& arr = arrays_.at(static_cast<std::size_t>(array));
  if (touched_.at(static_cast<std::size_t>(array))) {
    throw PisaConstraintViolation(
        "stage " + std::to_string(index_) + ": second access to register "
        "array " + std::to_string(array) + " in one traversal");
  }
  touched_[static_cast<std::size_t>(array)] = true;
  ++accesses_;
  auto& cell = arr.at(index);
  cell = f(cell);
  return cell;
}

std::uint32_t Stage::stateful_read(int array, std::size_t index) {
  return stateful_rmw(array, index, [](std::uint32_t v) { return v; });
}

Pipeline::Pipeline(sim::Simulator& simulator, const PipelineConfig& config)
    : sim_(simulator), config_(config) {
  for (int i = 0; i < config.stages; ++i) {
    stages_.push_back(std::make_unique<Stage>(i));
  }
}

sim::Duration Pipeline::traversal_latency() const {
  return config_.parser_latency +
         config_.stage_latency * static_cast<std::int64_t>(stages_.size());
}

void Pipeline::inject(net::PacketPtr pkt) {
  ++packets_in_;
  // Line-rate front end: one packet per 1/packets_per_ns.
  const auto slot = sim::Duration(
      static_cast<std::int64_t>(1.0 / config_.packets_per_ns + 0.5));
  const sim::Time start = sim_.now() > front_free_ ? sim_.now() : front_free_;
  front_free_ = start + slot;

  Phv phv;
  phv.packet = std::move(pkt);
  sim_.schedule_at(start + traversal_latency(),
                   [this, phv = std::move(phv)]() mutable {
                     traverse(std::move(phv));
                   });
}

void Pipeline::traverse(Phv phv) {
  if (parser_ && !parser_(phv)) return;  // dropped at parse
  for (auto& st : stages_) {
    st->begin_traversal();
    st->run(phv);
    if (phv.drop) return;
  }
  if (phv.recirculate) {
    ++recirculations_;
    phv.recirculate = false;
    // Recirculation re-enters the front end, stealing a line-rate slot.
    inject(std::move(phv.packet));
    return;
  }
  if (deparser_) deparser_(std::move(phv));
}

}  // namespace pisa
