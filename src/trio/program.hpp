// The programming model for PPE threads.
//
// A PpeProgram is the software that runs on one Trio thread: a
// run-to-completion state machine whose step() returns the next *action*
// — "execute k datapath instructions, then …". The PPE engine charges the
// instruction time (per-thread latency and per-PPE issue bandwidth) and
// performs the action:
//
//   Continue     keep executing; step() is called again
//   SyncXtxn     suspend the thread until the XTXN reply arrives (reply
//                visible in ThreadContext::reply) — paper §3.1
//   AsyncXtxn    issue and keep running (posted ops only)
//   JoinAsync    wait until every outstanding AsyncXtxn has completed
//   EmitPacket   hand a packet to forwarding via a nexthop
//   Exit         destroy the thread (hardware-managed, §2.2)
//
// Microcode programs compiled by src/microcode run through an adapter that
// implements this same interface, so interpreted and native programs share
// the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <variant>
#include <vector>

#include "net/buffer.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "trio/xtxn.hpp"

namespace trio {

/// Per-thread state: the paper's per-thread local storage (§2.2) plus the
/// engine's bookkeeping that programs may read.
struct ThreadContext {
  net::Buffer lmem;                  // 1.25 KB local memory (head preloaded)
  std::vector<std::uint64_t> regs;   // 32 x 64-bit GPRs
  net::PacketPtr packet;             // null for timer/internal threads
  XtxnReply reply;                   // most recent sync-XTXN reply
  std::uint32_t timer_index = 0;     // which timer fired (timer threads)
  std::uint64_t instructions_executed = 0;
  sim::Time spawn_time;
  int ppe_index = -1;
  int thread_slot = -1;
};

struct ActContinue {
  std::uint32_t instructions = 1;
};

struct ActSyncXtxn {
  XtxnRequest req;
  std::uint32_t instructions = 1;
};

struct ActAsyncXtxn {
  XtxnRequest req;  // must satisfy xtxn_is_posted()
  std::uint32_t instructions = 1;
};

struct ActJoinAsync {
  std::uint32_t instructions = 1;
};

struct ActEmitPacket {
  net::PacketPtr pkt;
  std::uint32_t nexthop_id = 0;
  std::uint32_t instructions = 1;
};

struct ActExit {
  std::uint32_t instructions = 1;
};

using Action = std::variant<ActContinue, ActSyncXtxn, ActAsyncXtxn,
                            ActJoinAsync, ActEmitPacket, ActExit>;

inline std::uint32_t action_instructions(const Action& a) {
  return std::visit([](const auto& x) { return x.instructions; }, a);
}

class PpeProgram {
 public:
  virtual ~PpeProgram() = default;
  /// Advances the state machine by one action. Called by the engine after
  /// the previous action's time has been charged (and, for SyncXtxn, after
  /// the reply landed in ctx.reply).
  virtual Action step(ThreadContext& ctx) = 0;
};

/// Factory chosen by the application: given an arriving packet (head
/// already parsed into LMEM), produce the program that will process it.
/// Returning nullptr drops the packet at dispatch.
using ProgramFactory =
    std::function<std::unique_ptr<PpeProgram>(const net::Packet&)>;

}  // namespace trio
