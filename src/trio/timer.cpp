#include "trio/timer.hpp"

#include <stdexcept>

#include "trio/pfe.hpp"

namespace trio {

TimerWheel::TimerWheel(sim::Simulator& simulator, const Calibration& cal,
                       Pfe& pfe)
    : sim_(simulator), cal_(cal), pfe_(pfe) {}

int TimerWheel::start(int count, sim::Duration period,
                      TimerProgramFactory factory) {
  if (count <= 0) throw std::invalid_argument("TimerWheel: count must be > 0");
  if (period < cal_.timer_resolution) {
    throw std::invalid_argument("TimerWheel: period below timer resolution");
  }
  const int group = static_cast<int>(groups_.size());
  groups_.push_back(Group{true, count, period, std::move(factory)});
  // Phase-shift the timers so thread launches are spaced period/count
  // apart (§5 "the interarrival interval between back-to-back threads is
  // 1/N of the desired timeout interval").
  for (int i = 0; i < count; ++i) {
    const sim::Duration phase = period * i / count;
    sim_.schedule_in(phase, [this, group, i] {
      if (groups_[static_cast<std::size_t>(group)].running) {
        fire(group, static_cast<std::uint32_t>(i));
      }
    });
  }
  return group;
}

void TimerWheel::stop_group(int group) {
  if (group < 0 || static_cast<std::size_t>(group) >= groups_.size()) {
    throw std::out_of_range("TimerWheel::stop_group: bad group");
  }
  groups_[static_cast<std::size_t>(group)].running = false;
}

void TimerWheel::stop() {
  for (auto& g : groups_) g.running = false;
}

bool TimerWheel::running() const {
  for (const auto& g : groups_) {
    if (g.running) return true;
  }
  return false;
}

int TimerWheel::count() const {
  int n = 0;
  for (const auto& g : groups_) {
    if (g.running) n += g.count;
  }
  return n;
}

sim::Duration TimerWheel::period() const {
  for (const auto& g : groups_) {
    if (g.running) return g.period;
  }
  return sim::Duration::zero();
}

void TimerWheel::fire(int group, std::uint32_t timer_index) {
  Group& g = groups_[static_cast<std::size_t>(group)];
  ++fires_;
  auto program = g.factory(timer_index);
  if (program) {
    if (!pfe_.spawn_internal(std::move(program), timer_index)) ++skips_;
  }
  sim_.schedule_in(g.period, [this, group, timer_index] {
    if (groups_[static_cast<std::size_t>(group)].running) {
      fire(group, timer_index);
    }
  });
}

}  // namespace trio
