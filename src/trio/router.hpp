// A Trio-based router/switch (paper Fig 1a): one or more PFEs joined by
// the interconnection fabric, front-panel ports mapped onto PFEs, and the
// forwarding state (routes, nexthops, multicast groups) shared by all
// PFEs. Implements net::Node so hosts attach with net::Link.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/calibration.hpp"
#include "trio/fabric.hpp"
#include "trio/forwarding.hpp"
#include "trio/pfe.hpp"

namespace trio {

/// Telemetry namespace for one router inside a shared bundle. A single
/// router leaves the default scope (empty prefixes, pid base 0) and gets
/// the historical names: "router.*", "pfe0.*", trace process "pfe0".
/// Multi-router topologies (src/cluster/) give each router a scope so
/// metric names ("rack0.pfe0.*") and trace process ids never collide.
struct TelemetryScope {
  /// Added to trace_rows::pid_of_pfe(i) for every PFE of the router.
  int trace_pid_base = 0;
  /// Prepended to every metric name the router and its PFEs register.
  std::string metric_prefix;
  /// Prepended to the trace process names ("rack0." -> "rack0.pfe0").
  std::string process_prefix;
};

class Router : public net::Node {
 public:
  /// `ports_per_pfe` front-panel ports are assigned to each PFE in order:
  /// global port p lives on PFE p / ports_per_pfe. This overload owns a
  /// fully disabled telemetry bundle (the no-observer fast path).
  Router(sim::Simulator& simulator, Calibration cal, int num_pfes,
         int ports_per_pfe, std::string name = "trio-router");
  /// Observed router: metrics and trace events flow into `telem`, which
  /// must outlive the router. Tests assert on `telem.metrics` counters;
  /// tools export them via --metrics-out / --trace-out.
  Router(sim::Simulator& simulator, Calibration cal, int num_pfes,
         int ports_per_pfe, telemetry::Telemetry& telem,
         std::string name = "trio-router");
  /// Observed router inside a multi-router topology: like the overload
  /// above, but all telemetry is namespaced by `scope`.
  Router(sim::Simulator& simulator, Calibration cal, int num_pfes,
         int ports_per_pfe, telemetry::Telemetry& telem, TelemetryScope scope,
         std::string name = "trio-router");

  // --- net::Node ----------------------------------------------------------
  void receive(net::PacketPtr pkt, int port) override;
  std::string name() const override { return name_; }

  // --- Topology -----------------------------------------------------------
  int num_pfes() const { return static_cast<int>(pfes_.size()); }
  int ports_per_pfe() const { return ports_per_pfe_; }
  int num_ports() const { return num_pfes() * ports_per_pfe_; }
  Pfe& pfe(int i) { return *pfes_.at(static_cast<std::size_t>(i)); }
  int pfe_of_port(int global_port) const { return global_port / ports_per_pfe_; }
  int local_port(int global_port) const { return global_port % ports_per_pfe_; }

  /// Attaches the transmit side of a port to a link endpoint…
  void attach_port(int global_port, net::LinkEndpoint& tx);
  /// …or to an arbitrary sink (tests, loopbacks).
  void attach_port_sink(int global_port,
                        std::function<void(net::PacketPtr)> sink);

  // --- Forwarding ----------------------------------------------------------
  ForwardingTable& forwarding() { return fwd_; }
  Fabric& fabric() { return fabric_; }

  /// Default per-packet program: parse, TTL, LPM lookup, emit. Used by
  /// PFEs with no application program factory installed.
  std::unique_ptr<PpeProgram> make_forwarding_program(const net::Packet& pkt);

  /// Resolves a nexthop for a packet leaving PFE `src_pfe`. Multicast
  /// fans out here (clone per member); cross-PFE targets transit the
  /// fabric; NexthopToPfe re-enters the target PFE's ingress.
  void transmit(int src_pfe, net::PacketPtr pkt, std::uint32_t nexthop_id);

  sim::Simulator& simulator() { return sim_; }
  const Calibration& cal() const { return cal_; }
  telemetry::Telemetry& telemetry() { return *telem_; }
  const TelemetryScope& telemetry_scope() const { return scope_; }
  telemetry::Registry& metrics() { return telem_->metrics; }
  telemetry::Tracer& tracer() { return telem_->tracer; }

  // --- Per-tenant egress QoS (MQSS WDRR, src/jobs/, docs/jobs.md) --------
  /// Installs `classifier` and routes every front-panel egress frame
  /// through a per-port MqssTenantScheduler (`queue_frames` deep per
  /// tenant per port). Off by default: egress then stays the historical
  /// single link FIFO.
  void enable_tenant_qos(TenantClassifier classifier,
                         std::size_t queue_frames = 256);
  bool tenant_qos_enabled() const { return tenant_qos_; }
  /// Relative WDRR weight for `tenant` on every port (present and
  /// future). Requires >= 1; call in admission order for deterministic
  /// round-robin placement.
  void set_tenant_weight(std::uint8_t tenant, std::uint32_t weight);
  /// Frames dropped (tenant FIFO full) / sent for `tenant`, summed over
  /// all ports.
  std::uint64_t tenant_qos_drops(std::uint8_t tenant) const;
  std::uint64_t tenant_qos_sent(std::uint8_t tenant) const;

  // --- Fault hooks (src/faults/, docs/faults.md) -------------------------
  /// Stalls the whole forwarding plane until `t` (models a PFE
  /// stall-and-resume: microcode reload, control-plane pause). Packets
  /// arriving while stalled are held at ingress and replayed to their
  /// PFEs in arrival order at resume; nothing is lost, latency spikes.
  void stall_until(sim::Time t);
  void stall_for(sim::Duration d) { stall_until(sim_.now() + d); }
  bool stalled() const { return sim_.now() < stalled_until_; }
  std::uint64_t stalls() const { return stalls_; }
  std::uint64_t stall_held_frames() const { return stall_held_frames_; }

  /// Hard power loss: every frame at ingress or egress is dropped (no
  /// stall-and-replay), including any frames a stall was holding. Dataplane
  /// state (aggregation buckets) is *not* cleared here — the fault injector
  /// models state loss explicitly via the hash-table generation bump so the
  /// invalidation is visible in the fault log (docs/recovery.md).
  void kill();
  /// Clears the killed flag; the router forwards again with whatever
  /// state survives (for Trio-ML, an invalidated-generation hash table).
  void revive();
  bool killed() const { return killed_; }
  std::uint64_t kills() const { return kills_; }
  std::uint64_t kill_dropped_frames() const { return kill_dropped_frames_; }

  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_transmitted() const { return packets_transmitted_; }
  std::uint64_t packets_discarded() const { return packets_discarded_; }
  std::uint64_t no_route_drops() const { return no_route_drops_; }
  void count_no_route_drop() {
    ++no_route_drops_;
    no_route_ctr_.inc();
  }

 private:
  void init(int num_pfes);
  void egress_enqueue(int src_pfe, int global_port, net::PacketPtr pkt,
                      const net::MacAddr& dst_mac);
  void port_out(int global_port, net::PacketPtr pkt);
  /// The pre-QoS egress tail: kill check, tx counters, wire/sink handoff.
  void port_out_now(int global_port, net::PacketPtr pkt);
  MqssTenantScheduler* scheduler_for_port(int global_port);
  void resume_from_stall();

  sim::Simulator& sim_;
  Calibration cal_;
  int ports_per_pfe_;
  std::string name_;
  // Telemetry must precede pfes_: Pfe constructors instrument through the
  // router. owned_telem_ backs the unobserved overload only.
  std::unique_ptr<telemetry::Telemetry> owned_telem_;
  telemetry::Telemetry* telem_;
  TelemetryScope scope_;
  ForwardingTable fwd_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Pfe>> pfes_;
  std::vector<net::LinkEndpoint*> port_tx_;
  std::vector<std::function<void(net::PacketPtr)>> port_sinks_;

  bool tenant_qos_ = false;
  TenantClassifier tenant_classifier_;
  std::size_t qos_queue_frames_ = 256;
  // Lazily created per attached port; weights in registration order so
  // every scheduler builds the same round-robin sequence.
  std::vector<std::unique_ptr<MqssTenantScheduler>> port_scheds_;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> tenant_weights_;

  sim::Time stalled_until_;
  struct StalledRx {
    net::PacketPtr pkt;
    int port;
  };
  std::vector<StalledRx> stalled_rx_;
  std::uint64_t stalls_ = 0;
  std::uint64_t stall_held_frames_ = 0;

  bool killed_ = false;
  std::uint64_t kills_ = 0;
  std::uint64_t kill_dropped_frames_ = 0;

  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_transmitted_ = 0;
  std::uint64_t packets_discarded_ = 0;
  std::uint64_t no_route_drops_ = 0;
  telemetry::Counter rx_ctr_;
  telemetry::Counter tx_ctr_;
  telemetry::Counter discard_ctr_;
  telemetry::Counter no_route_ctr_;
  telemetry::Counter stall_ctr_;
  telemetry::Counter stall_held_ctr_;
  telemetry::Counter kill_ctr_;
  telemetry::Counter kill_drop_ctr_;
};

}  // namespace trio
