// A Packet Processing Engine (paper §2.2): a VLIW multi-threaded core.
//
// Timing model. Each thread has at most one datapath instruction in the
// PPE pipeline ("Trio does not dispatch an instruction on the same thread
// until the previous exits the pipeline"), so a thread sees
// `instr_latency` per instruction; across threads the PPE issues one
// instruction per clock, so the core saturates when
// active_threads * instr_latency cycles > 1 cycle/issue. Both limits are
// modelled analytically: a step of k instructions starts at
// max(now, issue_free), advances issue_free by k issue slots, and
// completes for the thread k * instr_latency later.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/calibration.hpp"
#include "trio/program.hpp"

namespace trio {

class Pfe;

class Ppe {
 public:
  Ppe(sim::Simulator& simulator, const Calibration& cal, Pfe& pfe, int index);
  Ppe(const Ppe&) = delete;
  Ppe& operator=(const Ppe&) = delete;

  int free_threads() const { return static_cast<int>(free_slots_.size()); }
  int active_threads() const {
    return static_cast<int>(threads_.size() - free_slots_.size());
  }

  /// Starts a thread running `program`. For packet threads, the packet
  /// head is preloaded into LMEM and `ticket` orders the packet's outputs
  /// through the Reorder Engine. Returns false when no thread slot is
  /// free.
  bool spawn(std::unique_ptr<PpeProgram> program, net::PacketPtr pkt,
             std::optional<std::uint64_t> ticket, std::uint32_t timer_index);

  std::uint64_t instructions_issued() const { return instructions_issued_; }
  std::uint64_t threads_started() const { return threads_started_; }
  int index() const { return index_; }

  /// PFE-wide counters (`<prefix>instructions`, `<prefix>threads_started`
  /// — every PPE of a PFE shares the same cells) and, when tracing, one
  /// named row per thread slot carrying packet/timer lifetime spans and
  /// stall:<op> spans for synchronous XTXN waits. Called by the owning Pfe.
  void instrument(telemetry::Telemetry& telem, int pid,
                  const std::string& prefix);

 private:
  struct Thread {
    ThreadContext ctx;
    std::unique_ptr<PpeProgram> program;
    std::optional<std::uint64_t> ticket;
    sim::Time async_done_at;
    // Sync-XTXN request parked between the action and its issue time, so
    // the scheduled closure stays within the inline-callback budget.
    XtxnRequest pending_sync_req;
    bool active = false;
  };

  void advance(int slot);
  void perform(int slot, Action action, sim::Time done);
  void issue_pending_sync(int slot);
  void finish(int slot);

  /// Trace row id of a thread slot: rows of all PPEs in a PFE interleave
  /// into one contiguous block, ordered (ppe, slot).
  int tid_of(int slot) const { return index_ * cal_.threads_per_ppe + slot; }

  sim::Simulator& sim_;
  const Calibration& cal_;
  Pfe& pfe_;
  int index_;
  std::vector<Thread> threads_;
  std::vector<int> free_slots_;
  sim::Time issue_free_;
  std::uint64_t instructions_issued_ = 0;
  std::uint64_t threads_started_ = 0;
  telemetry::Counter instr_ctr_;
  telemetry::Counter started_ctr_;
  telemetry::Tracer* tracer_ = nullptr;
  int trace_pid_ = 0;
};

}  // namespace trio
