#include "trio/hash_table.hpp"

#include <stdexcept>

#include "trio/hash.hpp"

namespace trio {

HwHashTable::HwHashTable(sim::Simulator& simulator, const Calibration& cal,
                         std::size_t buckets)
    : sim_(simulator), cal_(cal), buckets_(buckets) {
  if (buckets == 0) throw std::invalid_argument("HwHashTable: 0 buckets");
}

std::size_t HwHashTable::bucket_index(std::uint64_t key) const {
  if (partitions_ == 0) return mix64(key) % buckets_.size();
  // Both block and job keys carry the job id in the top byte
  // (trioml/records.hpp), so every record of a job lands in its slice.
  const std::size_t span = buckets_.size() / partitions_;
  const std::size_t slice = std::size_t(key >> 48) % partitions_;
  return slice * span + mix64(key) % span;
}

std::pair<std::size_t, std::size_t> HwHashTable::partition_range(
    std::uint8_t job) const {
  if (partitions_ == 0) return {0, buckets_.size()};
  const std::size_t span = buckets_.size() / partitions_;
  const std::size_t slice = std::size_t(job) % partitions_;
  return {slice * span, slice * span + span};
}

void HwHashTable::enable_key_partitions(std::uint32_t partitions) {
  if (partitions > buckets_.size()) {
    throw std::invalid_argument("HwHashTable: more partitions than buckets");
  }
  if (partitions == partitions_) return;
  // Rehash in place: pull every record (live or stale, preserving flags
  // and generations) and redistribute under the new placement.
  std::vector<Record> records;
  records.reserve(size_);
  for (auto& bucket : buckets_) {
    records.insert(records.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  partitions_ = partitions;
  for (const Record& r : records) {
    buckets_[bucket_index(r.key)].push_back(r);
  }
}

std::vector<HwHashTable::Record>& HwHashTable::bucket_for(std::uint64_t key) {
  return buckets_[bucket_index(key)];
}

void HwHashTable::drop_record(std::vector<Record>& bucket, std::size_t i) {
  bucket[i] = bucket.back();
  bucket.pop_back();
  --size_;
}

bool HwHashTable::insert(std::uint64_t key, std::uint64_t value, bool pinned) {
  auto& b = bucket_for(key);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i].key != key) continue;
    if (!stale(b[i])) return false;
    // A stale record does not block re-insertion under the new generation.
    ++stale_reclaimed_;
    drop_record(b, i);
    break;
  }
  b.push_back(Record{key, value, /*ref=*/true, pinned, generation_});
  ++size_;
  return true;
}

std::optional<std::uint64_t> HwHashTable::lookup(std::uint64_t key) {
  auto& b = bucket_for(key);
  for (std::size_t i = 0; i < b.size(); ++i) {
    auto& r = b[i];
    if (r.key != key) continue;
    if (stale(r)) {
      ++stale_reclaimed_;
      drop_record(b, i);
      return std::nullopt;
    }
    r.ref = true;  // REF set on every reference
    return r.value;
  }
  return std::nullopt;
}

bool HwHashTable::erase(std::uint64_t key) {
  auto& b = bucket_for(key);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i].key != key) continue;
    const bool was_stale = stale(b[i]);
    if (was_stale) ++stale_reclaimed_;
    drop_record(b, i);
    return !was_stale;  // stale records read as already-absent
  }
  return false;
}

bool HwHashTable::contains(std::uint64_t key) const {
  const auto& b = buckets_[bucket_index(key)];
  for (const auto& r : b) {
    if (r.key == key) return !stale(r);
  }
  return false;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> HwHashTable::entries()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(size_);
  for (const auto& bucket : buckets_) {
    for (const auto& r : bucket) {
      if (!stale(r)) out.emplace_back(r.key, r.value);
    }
  }
  return out;
}

std::size_t HwHashTable::sweep_stale(
    const std::function<void(std::uint64_t, std::uint64_t)>& reclaim) {
  std::size_t swept = 0;
  for (auto& bucket : buckets_) {
    for (std::size_t i = 0; i < bucket.size();) {
      if (stale(bucket[i])) {
        if (reclaim) reclaim(bucket[i].key, bucket[i].value);
        ++stale_reclaimed_;
        ++swept;
        drop_record(bucket, i);
      } else {
        ++i;
      }
    }
  }
  return swept;
}

std::vector<std::uint64_t> HwHashTable::scan_partition(std::uint32_t part,
                                                       std::uint32_t parts,
                                                       std::size_t max_out) {
  if (parts == 0 || part >= parts) {
    throw std::invalid_argument("HwHashTable::scan_partition: bad partition");
  }
  const std::size_t span = partition_buckets(parts);
  const std::size_t begin = static_cast<std::size_t>(part) * span;
  const std::size_t end =
      begin + span < buckets_.size() ? begin + span : buckets_.size();
  std::vector<std::uint64_t> aged;
  for (std::size_t i = begin; i < end; ++i) {
    auto& bucket = buckets_[i];
    for (std::size_t j = 0; j < bucket.size();) {
      auto& r = bucket[j];
      if (stale(r)) {
        // Invalidated generation: reclaim silently, never report as aged
        // (the owner already handed the paired storage off at bump time).
        ++stale_reclaimed_;
        drop_record(bucket, j);
        continue;
      }
      if (!r.ref) {
        if (aged.size() < max_out) aged.push_back(r.key);
      } else {
        r.ref = false;
      }
      ++j;
    }
  }
  return aged;
}

sim::Time HwHashTable::issue(const XtxnRequest& req, XtxnCallback cb) {
  ++ops_;
  XtxnReply reply;
  int service_cycles = 8;  // bucket walk
  switch (req.op) {
    case XtxnOp::kHashLookup: {
      auto v = lookup(req.arg0);
      reply.ok = v.has_value();
      reply.value = v.value_or(0);
      break;
    }
    case XtxnOp::kHashInsert:
      reply.ok = insert(req.arg0, req.arg1);
      break;
    case XtxnOp::kHashDelete: {
      // The delete reply carries the deleted record's value so a claiming
      // thread (e.g. the straggler scan) learns the record address. Stale
      // records read as absent, so a scan thread racing a generation bump
      // cannot claim an invalidated bucket. A nonzero arg1 makes the
      // delete conditional on the stored value: a thread deleting "its"
      // record cannot take out a record re-created under the same key
      // after its own was dropped.
      auto& b = bucket_for(req.arg0);
      reply.ok = false;
      for (auto& r : b) {
        if (r.key == req.arg0 && !stale(r) &&
            (req.arg1 == 0 || r.value == req.arg1)) {
          reply.ok = true;
          reply.value = r.value;
          break;
        }
      }
      if (reply.ok) erase(req.arg0);
      break;
    }
    case XtxnOp::kHashScanStep: {
      const auto parts = static_cast<std::uint32_t>(req.arg0 >> 32);
      const auto part = static_cast<std::uint32_t>(req.arg0);
      auto aged = scan_partition(part, parts == 0 ? 1 : parts,
                                 req.arg1 == 0 ? 64 : req.arg1);
      reply.value = aged.size();
      reply.data.reserve(aged.size() * 8);
      for (std::uint64_t k : aged) {
        for (int i = 0; i < 8; ++i) {
          reply.data.push_back(static_cast<std::uint8_t>(k >> (8 * i)));
        }
      }
      // A scan touches a whole partition slice; charge proportional time.
      service_cycles = static_cast<int>(
          partition_buckets(parts == 0 ? 1 : parts) * 2);
      break;
    }
    default:
      throw std::logic_error("HwHashTable: unsupported XTXN op");
  }

  const sim::Time arrive = sim_.now() + cal_.crossbar_latency;
  const sim::Time start = arrive > engine_free_ ? arrive : engine_free_;
  engine_free_ = start + sim::Duration::cycles(service_cycles, cal_.clock_hz);
  const sim::Time reply_at = engine_free_ + cal_.hash_op_latency;
  if (cb) {
    sim_.schedule_at(reply_at,
                     [cb = std::move(cb), reply = std::move(reply)]() mutable {
                       cb(std::move(reply));
                     });
  }
  return reply_at;
}

}  // namespace trio
