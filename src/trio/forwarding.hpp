// Forwarding state shared by all PFEs of a router: a longest-prefix-match
// route table resolving destination IPv4 addresses to nexthops, a nexthop
// table (the paper's "forwarding path graph" nodes, referenced by address
// — Trio-ML job records carry an out_nh_addr pointing here), and multicast
// group membership (IGMP-style joins or static configuration, §4
// "Hierarchical aggregation").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "net/headers.hpp"

namespace trio {

/// Deliver out of a (global) router port with the given destination MAC.
struct NexthopUnicast {
  int port = -1;
  net::MacAddr mac{};
};

/// Replicate to each member nexthop (members are nexthop ids, normally
/// unicast — multicast replication happens at transmit).
struct NexthopMulticast {
  std::vector<std::uint32_t> members;
};

/// Hand the packet to another PFE for *processing* (not egress). Used by
/// hierarchical aggregation: first-level PFEs feed the top-level PFE
/// directly across the fabric, bypassing IP forwarding (paper §4).
struct NexthopToPfe {
  int pfe = -1;
};

/// Drop (a hole in the forwarding graph; also the default route's target
/// when nothing matches).
struct NexthopDiscard {};

using Nexthop = std::variant<NexthopUnicast, NexthopMulticast, NexthopToPfe,
                             NexthopDiscard>;

class ForwardingTable {
 public:
  /// Adds a nexthop; returns its id ("address in the forwarding graph").
  std::uint32_t add_nexthop(Nexthop nh);
  const Nexthop& nexthop(std::uint32_t id) const;
  std::size_t nexthop_count() const { return nexthops_.size(); }

  /// Installs prefix/len -> nexthop id.
  void add_route(net::Ipv4Addr prefix, int prefix_len, std::uint32_t nh_id);

  /// Longest-prefix match.
  std::optional<std::uint32_t> lookup(net::Ipv4Addr dst) const;

  /// Adds `member` (a nexthop id) to multicast group `group`, creating the
  /// group nexthop and its /32 route on first join. Returns the group's
  /// nexthop id.
  std::uint32_t join_group(net::Ipv4Addr group, std::uint32_t member);

 private:
  static std::uint32_t mask_prefix(net::Ipv4Addr a, int len);

  std::vector<Nexthop> nexthops_;
  // prefix_len -> (masked prefix -> nexthop id). Iterated longest-first.
  std::map<int, std::unordered_map<std::uint32_t, std::uint32_t>,
           std::greater<>> routes_;
  std::unordered_map<std::uint32_t, std::uint32_t> groups_;  // group IP -> nh id
};

}  // namespace trio
