// Advanced Forwarding Interface (AFI) — paper §3.1.
//
// "Packet forwarding is a sequence of operations executed by a PFE. Each
// operation can be represented by a node on a graph of potential packet
// forwarding operations. [AFI] provides partial programmability by
// allowing third-party developers to control and manage a section of this
// forwarding path graph via a small virtual container called a sandbox.
// The sandbox enables developers to add, remove and change the order of
// operations for specific packets."
//
// The sandbox here is an ordered list of forwarding-path operations that
// matching packets traverse before (or instead of) the default IP
// forwarding path. Operations are small declarative nodes — counters,
// policers, header rewrites, filters, nexthop overrides — executed by the
// PPE thread with their natural XTXN costs. Third-party code manipulates
// the operation list at runtime (add / remove / reorder) without touching
// the router's own Microcode image, which is exactly AFI's deployment
// model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "trio/pfe.hpp"
#include "trio/program.hpp"

namespace trio {

class Router;

namespace afi {

/// Increment a Packet/Byte counter in shared memory.
struct CountOp {
  std::uint64_t counter_addr = 0;
};

/// Charge the packet against a token-bucket policer; non-conforming
/// packets are dropped (and counted if drop_counter_addr != 0).
struct PoliceOp {
  std::uint64_t policer_addr = 0;
  std::uint64_t drop_counter_addr = 0;
};

/// Drop packets matching a predicate evaluated on the packet head.
struct FilterOp {
  std::function<bool(const net::Buffer& head)> drop_if;
};

/// Overwrite the IPv4 DSCP field (remark traffic class).
struct SetDscpOp {
  std::uint8_t dscp = 0;
};

/// Leave the sandbox and emit via a fixed nexthop.
struct NexthopOp {
  std::uint32_t nexthop_id = 0;
};

/// Leave the sandbox and continue on the router's default IP forwarding
/// path.
struct DefaultForwardOp {};

using Operation = std::variant<CountOp, PoliceOp, FilterOp, SetDscpOp,
                               NexthopOp, DefaultForwardOp>;

/// Which packets enter the sandbox.
using Match = std::function<bool(const net::Packet&)>;

/// A named handle for one installed operation, usable to remove or
/// reorder it later.
using OpId = std::uint64_t;

class Sandbox {
 public:
  explicit Sandbox(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends an operation; returns its handle.
  OpId add(Operation op);
  /// Inserts before the operation `before`.
  OpId insert_before(OpId before, Operation op);
  /// Removes an operation. Returns false if the handle is unknown.
  bool remove(OpId id);
  /// Moves `id` to position `index` in the chain.
  bool reorder(OpId id, std::size_t index);

  std::size_t size() const { return chain_.size(); }
  std::vector<OpId> op_ids() const;

  /// Packets processed / dropped inside this sandbox.
  std::uint64_t packets() const { return packets_; }
  std::uint64_t drops() const { return drops_; }

  // --- Execution interface (used by the sandbox program) -----------------
  const Operation& op_at(std::size_t index) const {
    return chain_.at(index).op;
  }
  void note_packet() { ++packets_; }
  void note_drop() { ++drops_; }

 private:
  struct Entry {
    OpId id;
    Operation op;
  };
  std::string name_;
  std::vector<Entry> chain_;
  OpId next_id_ = 1;
  std::uint64_t packets_ = 0;
  std::uint64_t drops_ = 0;
};

/// Hosts sandboxes on a PFE: packets matching a sandbox's Match traverse
/// its operation chain; everything else takes the default forwarding
/// path. Install with attach().
class AfiHost {
 public:
  explicit AfiHost(Pfe& pfe) : pfe_(pfe) {}

  /// Creates a sandbox bound to `match`. The returned pointer stays valid
  /// for the host's lifetime.
  Sandbox* create_sandbox(std::string name, Match match);

  /// Installs the AFI program factory on the PFE (sandboxes first, then
  /// the default forwarding program).
  void attach();

  Pfe& pfe() { return pfe_; }

 private:
  struct Binding {
    Match match;
    std::unique_ptr<Sandbox> sandbox;
  };
  Pfe& pfe_;
  std::vector<Binding> bindings_;
};

}  // namespace afi
}  // namespace trio
