#include "trio/calibration.hpp"

#include <stdexcept>

namespace trio {

namespace {
// {ppes, threads/ppe, sms banks, nominal per-PFE Gbps}. PPE counts at the
// endpoints are the paper's (16 -> 160); intermediate generations are
// interpolated, and the engine/bank counts scale with the bandwidth.
struct GenSpec {
  int ppes;
  int threads;
  int banks;
  double gbps;
};
constexpr GenSpec kGens[6] = {
    {16, 8, 2, 40},     {24, 10, 4, 130},  {40, 12, 6, 260},
    {64, 16, 8, 400},   {96, 20, 12, 500}, {160, 24, 16, 1600},
};
}  // namespace

Calibration Calibration::generation(int gen) {
  if (gen < 1 || gen > 6) {
    throw std::invalid_argument("Calibration::generation: 1..6");
  }
  const GenSpec& spec = kGens[gen - 1];
  Calibration c;
  // The testbed model (defaults) reflects an *effective* gen-5 PFE whose
  // parallelism was fitted to Figure 16; generation presets scale that
  // effective parallelism by the architectural ratios.
  c.ppes_per_pfe = spec.ppes / 6 > 1 ? spec.ppes / 6 : 2;
  c.threads_per_ppe = spec.threads;
  c.sms_banks = spec.banks;
  return c;
}

double Calibration::generation_bandwidth_gbps(int gen) {
  if (gen < 1 || gen > 6) {
    throw std::invalid_argument("Calibration::generation_bandwidth_gbps");
  }
  return kGens[gen - 1].gbps;
}

}  // namespace trio
