// The hardware hash block (paper §3.1 "Hash lookup/insert/delete" XTXN
// target, and §5's straggler-detection substrate).
//
// Stores 64-bit key -> 64-bit value records in fixed buckets with chained
// overflow. Every record carries a 'Recently Referenced' (REF) flag that
// is set on insert and on every lookup hit; timer threads age records by
// scanning a partition of the bucket array, reporting records whose REF
// flag was already clear and clearing the rest (check-then-clear, exactly
// the paper's aging scheme).
//
// Like the SMS, operations are applied functionally at arrival and timed
// analytically through a single service engine per table.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "trio/calibration.hpp"
#include "trio/xtxn.hpp"

namespace trio {

class HwHashTable {
 public:
  HwHashTable(sim::Simulator& simulator, const Calibration& cal,
              std::size_t buckets = 1 << 14);

  /// Handles kHashLookup / kHashInsert / kHashDelete / kHashScanStep.
  /// Returns the reply time; invokes `cb` then if non-null.
  sim::Time issue(const XtxnRequest& req, XtxnCallback cb);

  // Functional (zero-time) API used by the control plane and tests.
  bool insert(std::uint64_t key, std::uint64_t value);
  std::optional<std::uint64_t> lookup(std::uint64_t key);  // sets REF
  bool erase(std::uint64_t key);
  bool contains(std::uint64_t key) const;

  /// Every (key, value) record in deterministic bucket/chain order.
  /// Control-plane / fault-injection use (zero simulated time); REF flags
  /// are untouched.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries() const;

  /// Check-and-clear REF over partition `part` of `parts`: records whose
  /// REF flag was already clear are returned (aged out); all visited flags
  /// are cleared. `max_out` bounds the report size.
  std::vector<std::uint64_t> scan_partition(std::uint32_t part,
                                            std::uint32_t parts,
                                            std::size_t max_out = 64);

  /// Number of buckets a single partition scan visits (for timing).
  std::size_t partition_buckets(std::uint32_t parts) const {
    return (buckets_.size() + parts - 1) / parts;
  }

  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t ops_processed() const { return ops_; }

 private:
  struct Record {
    std::uint64_t key;
    std::uint64_t value;
    bool ref;
  };

  std::vector<Record>& bucket_for(std::uint64_t key);

  sim::Simulator& sim_;
  Calibration cal_;
  std::vector<std::vector<Record>> buckets_;
  std::size_t size_ = 0;
  sim::Time engine_free_;
  std::uint64_t ops_ = 0;
};

}  // namespace trio
