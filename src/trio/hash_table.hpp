// The hardware hash block (paper §3.1 "Hash lookup/insert/delete" XTXN
// target, and §5's straggler-detection substrate).
//
// Stores 64-bit key -> 64-bit value records in fixed buckets with chained
// overflow. Every record carries a 'Recently Referenced' (REF) flag that
// is set on insert and on every lookup hit; timer threads age records by
// scanning a partition of the bucket array, reporting records whose REF
// flag was already clear and clearing the rest (check-then-clear, exactly
// the paper's aging scheme).
//
// Records are also tagged with the table's *generation* at insert time.
// bump_generation() is the O(1) invalidation point the recovery control
// plane uses after a router failure (docs/recovery.md): every non-pinned
// record inserted under an older generation becomes invisible to lookups,
// deletes, scans and entries() from that instant, and is reclaimed lazily
// (or eagerly via sweep_stale(), which hands each stale record back so the
// owner can free its slab). Pinned records — control-plane state such as
// Trio-ML job records — survive generation bumps.
//
// Like the SMS, operations are applied functionally at arrival and timed
// analytically through a single service engine per table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "trio/calibration.hpp"
#include "trio/xtxn.hpp"

namespace trio {

class HwHashTable {
 public:
  HwHashTable(sim::Simulator& simulator, const Calibration& cal,
              std::size_t buckets = 1 << 14);

  /// Handles kHashLookup / kHashInsert / kHashDelete / kHashScanStep.
  /// Returns the reply time; invokes `cb` then if non-null.
  sim::Time issue(const XtxnRequest& req, XtxnCallback cb);

  // Functional (zero-time) API used by the control plane and tests.
  /// `pinned` records ignore generation bumps (job records, not blocks).
  bool insert(std::uint64_t key, std::uint64_t value, bool pinned = false);
  std::optional<std::uint64_t> lookup(std::uint64_t key);  // sets REF
  bool erase(std::uint64_t key);
  bool contains(std::uint64_t key) const;

  /// Every *live* (key, value) record in deterministic bucket/chain order.
  /// Control-plane / fault-injection use (zero simulated time); REF flags
  /// are untouched and stale records are skipped.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries() const;

  /// Check-and-clear REF over partition `part` of `parts`: records whose
  /// REF flag was already clear are returned (aged out); all visited flags
  /// are cleared. `max_out` bounds the report size. Stale records are
  /// erased in passing, never reported.
  std::vector<std::uint64_t> scan_partition(std::uint32_t part,
                                            std::uint32_t parts,
                                            std::size_t max_out = 64);

  // --- Generation epochs (self-healing control plane, docs/recovery.md) ---
  std::uint32_t generation() const { return generation_; }
  /// Invalidates every non-pinned record inserted before this call: they
  /// become invisible immediately and are reclaimed lazily. Returns the
  /// new generation.
  std::uint32_t bump_generation() { return ++generation_; }
  /// Eagerly erases every stale record, invoking `reclaim(key, value)` for
  /// each so the owner can free paired storage. Returns the number erased.
  std::size_t sweep_stale(
      const std::function<void(std::uint64_t, std::uint64_t)>& reclaim);
  /// Stale records dropped so far (lazily on access or via sweep_stale).
  std::uint64_t stale_reclaimed() const { return stale_reclaimed_; }

  /// Number of buckets a single partition scan visits (for timing).
  std::size_t partition_buckets(std::uint32_t parts) const {
    return (buckets_.size() + parts - 1) / parts;
  }

  // --- Per-job key partitions (multi-tenant isolation, docs/jobs.md) -----
  /// Splits the bucket array into `partitions` equal slices and confines
  /// every key of job j (the top key byte — trioml/records.hpp layout for
  /// both block and job keys) to slice j % partitions. One tenant filling
  /// its slice can lengthen only its own chains; other tenants' lookup
  /// and aging costs are untouched. Existing records are rehashed into
  /// the new placement, so this may be enabled on a table that already
  /// holds control-plane records. `partitions` 0 restores the unsliced
  /// whole-table hash.
  void enable_key_partitions(std::uint32_t partitions);
  std::uint32_t key_partitions() const { return partitions_; }
  /// Bucket the key lives in under the current partitioning.
  std::size_t bucket_index(std::uint64_t key) const;
  /// [first, last) bucket range job `job` is confined to. The whole table
  /// when partitioning is off.
  std::pair<std::size_t, std::size_t> partition_range(std::uint8_t job) const;

  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t ops_processed() const { return ops_; }

 private:
  struct Record {
    std::uint64_t key;
    std::uint64_t value;
    bool ref;
    bool pinned;
    std::uint32_t gen;
  };

  bool stale(const Record& r) const {
    return !r.pinned && r.gen != generation_;
  }
  std::vector<Record>& bucket_for(std::uint64_t key);
  void drop_record(std::vector<Record>& bucket, std::size_t i);

  sim::Simulator& sim_;
  Calibration cal_;
  std::vector<std::vector<Record>> buckets_;
  std::size_t size_ = 0;
  std::uint32_t partitions_ = 0;  // 0 = whole-table hashing
  std::uint32_t generation_ = 0;
  std::uint64_t stale_reclaimed_ = 0;
  sim::Time engine_free_;
  std::uint64_t ops_ = 0;
};

}  // namespace trio
