// Timer threads (paper §5): tens of high-resolution hardware timers that
// launch Microcode threads periodically. Starting N timers with period P
// at phase offsets i*P/N gives back-to-back thread launches every P/N —
// the paper's trick for scanning 1/N of a large hash table per thread.
//
// Multiple independent timer *groups* can run concurrently — §5's
// advanced mitigation uses a frequent group for straggler detection and
// an infrequent group for temporary/permanent classification.
//
// No PPE is reserved: each firing spawns on whichever PPE has a free
// thread (queued briefly when none has; counted as skipped only if even
// the internal launch queue is full).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "trio/calibration.hpp"
#include "trio/program.hpp"

namespace trio {

class Pfe;

class TimerWheel {
 public:
  /// Builds the program run when timer `timer_index` of a group fires.
  using TimerProgramFactory =
      std::function<std::unique_ptr<PpeProgram>(std::uint32_t timer_index)>;

  TimerWheel(sim::Simulator& simulator, const Calibration& cal, Pfe& pfe);

  /// Starts a group of `count` periodic timers with period `period`,
  /// phase-shifted by period/count. Returns the group id. Other groups
  /// keep running.
  int start(int count, sim::Duration period, TimerProgramFactory factory);

  /// Stops one timer group / every group.
  void stop_group(int group);
  void stop();

  bool running() const;
  int count() const;               // timers across all running groups
  sim::Duration period() const;    // period of the first running group
  std::uint64_t fires() const { return fires_; }
  std::uint64_t skips() const { return skips_; }

 private:
  struct Group {
    bool running = false;
    int count = 0;
    sim::Duration period;
    TimerProgramFactory factory;
  };

  void fire(int group, std::uint32_t timer_index);

  sim::Simulator& sim_;
  const Calibration& cal_;
  Pfe& pfe_;
  std::vector<Group> groups_;
  std::uint64_t fires_ = 0;
  std::uint64_t skips_ = 0;
};

}  // namespace trio
