// The interconnection fabric (paper §2.1): any-to-any connectivity between
// PFEs of one chassis. Modelled as per-source injection rate limiting plus
// a fixed transit latency; delivery invokes a caller-supplied sink (either
// the destination PFE's ingress path — hierarchical aggregation — or its
// egress queue).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "trio/calibration.hpp"

namespace trio {

class Fabric {
 public:
  using Deliver = std::function<void(net::PacketPtr)>;

  Fabric(sim::Simulator& simulator, const Calibration& cal, int num_pfes);

  /// Sends `pkt` from PFE `src` across the fabric; `deliver` runs at the
  /// destination when the packet arrives.
  void send(int src, net::PacketPtr pkt, Deliver deliver);

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  sim::Simulator& sim_;
  const Calibration cal_;
  std::vector<sim::Time> injection_free_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace trio
