#include "trio/afi.hpp"

#include <algorithm>

#include "trio/router.hpp"

namespace trio {
namespace afi {

OpId Sandbox::add(Operation op) {
  const OpId id = next_id_++;
  chain_.push_back(Entry{id, std::move(op)});
  return id;
}

OpId Sandbox::insert_before(OpId before, Operation op) {
  const OpId id = next_id_++;
  auto it = std::find_if(chain_.begin(), chain_.end(),
                         [&](const Entry& e) { return e.id == before; });
  chain_.insert(it, Entry{id, std::move(op)});
  return id;
}

bool Sandbox::remove(OpId id) {
  auto it = std::find_if(chain_.begin(), chain_.end(),
                         [&](const Entry& e) { return e.id == id; });
  if (it == chain_.end()) return false;
  chain_.erase(it);
  return true;
}

bool Sandbox::reorder(OpId id, std::size_t index) {
  auto it = std::find_if(chain_.begin(), chain_.end(),
                         [&](const Entry& e) { return e.id == id; });
  if (it == chain_.end() || index >= chain_.size()) return false;
  Entry e = std::move(*it);
  chain_.erase(it);
  chain_.insert(chain_.begin() + static_cast<std::ptrdiff_t>(index),
                std::move(e));
  return true;
}

std::vector<OpId> Sandbox::op_ids() const {
  std::vector<OpId> out;
  out.reserve(chain_.size());
  for (const auto& e : chain_) out.push_back(e.id);
  return out;
}

namespace {

/// Executes a sandbox's operation chain on one packet, then (unless a
/// filter/policer dropped it or a NexthopOp emitted it) falls through to
/// the router's default forwarding program.
class SandboxProgram : public PpeProgram {
 public:
  SandboxProgram(Sandbox& sandbox, Router& router)
      : sandbox_(sandbox), router_(router) {}

  Action step(ThreadContext& ctx) override {
    // Resolve a pending policer verdict first.
    if (awaiting_policer_) {
      awaiting_policer_ = false;
      if (ctx.reply.value == 0) {
        sandbox_.note_drop();
        const auto* pol = std::get_if<PoliceOp>(&sandbox_.op_at(idx_));
        if (pol != nullptr && pol->drop_counter_addr != 0) {
          ActAsyncXtxn cnt;
          cnt.req.op = XtxnOp::kCounterInc;
          cnt.req.addr = pol->drop_counter_addr;
          cnt.req.arg0 = ctx.packet->size();
          cnt.instructions = 2;
          dropping_ = true;
          return cnt;
        }
        return ActExit{2};
      }
      ++idx_;
    }
    if (dropping_) return ActExit{1};
    if (delegate_) return delegate_->step(ctx);

    if (!counted_) {
      counted_ = true;
      sandbox_.note_packet();
    }
    while (idx_ < sandbox_.size()) {
      const Operation& op = sandbox_.op_at(idx_);
      if (const auto* c = std::get_if<CountOp>(&op)) {
        ActAsyncXtxn cnt;
        cnt.req.op = XtxnOp::kCounterInc;
        cnt.req.addr = c->counter_addr;
        cnt.req.arg0 = ctx.packet->size();
        cnt.instructions = 2;
        ++idx_;
        return cnt;
      }
      if (const auto* p = std::get_if<PoliceOp>(&op)) {
        ActSyncXtxn pol;
        pol.req.op = XtxnOp::kPolicerCheck;
        pol.req.addr = p->policer_addr;
        pol.req.arg0 = ctx.packet->size();
        pol.instructions = 4;
        awaiting_policer_ = true;
        return pol;
      }
      if (const auto* f = std::get_if<FilterOp>(&op)) {
        if (f->drop_if && f->drop_if(ctx.lmem)) {
          sandbox_.note_drop();
          return ActExit{3};
        }
        ++idx_;
        continue;  // pure head inspection: folded into the next action
      }
      if (const auto* d = std::get_if<SetDscpOp>(&op)) {
        // Rewrite in LMEM and in the frame head (the head is unloaded on
        // emit by the default path, which reads the frame).
        ctx.lmem.set_u8(net::UdpFrameLayout::kIpOff + 1, d->dscp);
        ctx.packet->frame().set_u8(net::UdpFrameLayout::kIpOff + 1, d->dscp);
        ++idx_;
        return ActContinue{3};
      }
      if (const auto* nh = std::get_if<NexthopOp>(&op)) {
        emitted_ = true;
        ActEmitPacket emit;
        emit.pkt = ctx.packet;
        emit.nexthop_id = nh->nexthop_id;
        emit.instructions = 4;
        ++idx_;
        return emit;
      }
      if (std::holds_alternative<DefaultForwardOp>(op)) {
        delegate_ = router_.make_forwarding_program(*ctx.packet);
        return delegate_->step(ctx);
      }
      ++idx_;
    }
    // Chain exhausted: if nothing emitted the packet, take the default
    // forwarding path (a sandbox augments forwarding, §3.1).
    if (emitted_) return ActExit{1};
    delegate_ = router_.make_forwarding_program(*ctx.packet);
    return delegate_->step(ctx);
  }

 private:
  Sandbox& sandbox_;
  Router& router_;
  std::size_t idx_ = 0;
  bool counted_ = false;
  bool awaiting_policer_ = false;
  bool dropping_ = false;
  bool emitted_ = false;
  std::unique_ptr<PpeProgram> delegate_;
};

}  // namespace

Sandbox* AfiHost::create_sandbox(std::string name, Match match) {
  bindings_.push_back(
      Binding{std::move(match), std::make_unique<Sandbox>(std::move(name))});
  return bindings_.back().sandbox.get();
}

void AfiHost::attach() {
  pfe_.set_program_factory(
      [this](const net::Packet& pkt) -> std::unique_ptr<PpeProgram> {
        for (auto& b : bindings_) {
          if (b.match(pkt)) {
            return std::make_unique<SandboxProgram>(*b.sandbox,
                                                    pfe_.router());
          }
        }
        return pfe_.router().make_forwarding_program(pkt);
      });
}

}  // namespace afi
}  // namespace trio
