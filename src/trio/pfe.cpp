#include "trio/pfe.hpp"

#include <stdexcept>

#include "trio/hash.hpp"
#include "trio/router.hpp"
#include "trio/trace_rows.hpp"

namespace trio {

// ---------------------------------------------------------------------------
// Mqss

Mqss::Mqss(sim::Simulator& simulator, const Calibration& cal)
    : sim_(simulator), cal_(cal) {}

void Mqss::instrument(telemetry::Telemetry& telem, int pid,
                      const std::string& prefix) {
  tail_bytes_ctr_ = telem.metrics.counter(prefix + "tail_bytes_read");
  pmem_bytes_ctr_ = telem.metrics.counter(prefix + "pmem_bytes_written");
  if (telem.tracer.enabled()) {
    tracer_ = &telem.tracer;
    trace_pid_ = pid;
    telem.tracer.set_thread_name(pid, trace_rows::kMqss, "mqss");
  }
}

sim::Time Mqss::service(std::size_t len, sim::Duration latency,
                        const char* op_name) {
  // The packet buffer moves 64 B per cycle; the single engine's occupancy
  // provides backpressure under heavy tail traffic.
  const auto cycles = static_cast<std::int64_t>((len + 63) / 64);
  const sim::Time arrive = sim_.now() + cal_.crossbar_latency;
  const sim::Time start = arrive > engine_free_ ? arrive : engine_free_;
  engine_free_ = start + sim::Duration::cycles(cycles, cal_.clock_hz);
  if (tracer_ != nullptr) {
    tracer_->complete(trace_pid_, trace_rows::kMqss, op_name, start,
                      engine_free_);
  }
  return engine_free_ + latency;
}

sim::Time Mqss::tail_read(const net::Packet& pkt, std::uint64_t offset,
                          std::uint32_t len, XtxnCallback cb) {
  if (len > cal_.tail_chunk_bytes) {
    throw std::invalid_argument("Mqss::tail_read: chunk exceeds 64 bytes");
  }
  const std::size_t head = pkt.head_size();
  if (offset + len > pkt.tail_size()) {
    throw std::out_of_range("Mqss::tail_read: beyond tail");
  }
  tail_bytes_read_ += len;
  tail_bytes_ctr_.inc(len);
  XtxnReply reply;
  const auto view = pkt.frame().view(head + offset, len);
  reply.data.assign(view.begin(), view.end());
  const sim::Time at = service(len, cal_.tail_read_latency, "tail_read");
  if (cb) {
    sim_.schedule_at(at, [cb = std::move(cb), reply = std::move(reply)]() mutable {
      cb(std::move(reply));
    });
  }
  return at;
}

sim::Time Mqss::pmem_write(std::size_t len, XtxnCallback cb) {
  if (len > cal_.pmem_chunk_bytes) {
    throw std::invalid_argument("Mqss::pmem_write: chunk exceeds 256 bytes");
  }
  pmem_bytes_written_ += len;
  pmem_bytes_ctr_.inc(len);
  const sim::Time at = service(len, cal_.pmem_write_latency, "pmem_write");
  if (cb) {
    sim_.schedule_at(at, [cb = std::move(cb)]() mutable { cb(XtxnReply{}); });
  }
  return at;
}

// ---------------------------------------------------------------------------
// MqssTenantScheduler

MqssTenantScheduler::MqssTenantScheduler(sim::Simulator& simulator,
                                         net::LinkEndpoint& tx, SendFn send,
                                         std::size_t queue_frames)
    : sim_(simulator),
      tx_(tx),
      send_(std::move(send)),
      queue_frames_(queue_frames) {
  if (queue_frames_ == 0) {
    throw std::invalid_argument("MqssTenantScheduler: zero queue depth");
  }
}

MqssTenantScheduler::TenantQueue& MqssTenantScheduler::queue_of(
    std::uint8_t tenant) {
  for (auto& q : queues_) {
    if (q.tenant == tenant) return q;
  }
  queues_.push_back(TenantQueue{tenant, 1, 0, {}, 0, 0});
  return queues_.back();
}

const MqssTenantScheduler::TenantQueue* MqssTenantScheduler::find_queue(
    std::uint8_t tenant) const {
  for (const auto& q : queues_) {
    if (q.tenant == tenant) return &q;
  }
  return nullptr;
}

void MqssTenantScheduler::set_weight(std::uint8_t tenant,
                                     std::uint32_t weight) {
  if (weight == 0) {
    throw std::invalid_argument("MqssTenantScheduler: zero weight");
  }
  queue_of(tenant).weight = weight;
}

std::uint32_t MqssTenantScheduler::weight(std::uint8_t tenant) const {
  const TenantQueue* q = find_queue(tenant);
  return q == nullptr ? 1 : q->weight;
}

std::uint64_t MqssTenantScheduler::drops(std::uint8_t tenant) const {
  const TenantQueue* q = find_queue(tenant);
  return q == nullptr ? 0 : q->drops;
}

std::uint64_t MqssTenantScheduler::sent(std::uint8_t tenant) const {
  const TenantQueue* q = find_queue(tenant);
  return q == nullptr ? 0 : q->sent;
}

bool MqssTenantScheduler::enqueue(std::uint8_t tenant, net::PacketPtr pkt) {
  TenantQueue& q = queue_of(tenant);
  if (q.fifo.size() >= queue_frames_) {
    ++q.drops;
    return false;
  }
  q.fifo.push_back(std::move(pkt));
  ++backlog_;
  if (!armed_) {
    const sim::Time free = tx_.busy_until();
    arm(free > sim_.now() ? free : sim_.now());
  }
  return true;
}

void MqssTenantScheduler::arm(sim::Time at) {
  armed_ = true;
  sim_.schedule_at(at, [this] {
    armed_ = false;
    drain();
  });
}

void MqssTenantScheduler::drain() {
  if (backlog_ == 0) return;
  const sim::Time free = tx_.busy_until();
  if (free > sim_.now()) {  // wire grabbed since this event was armed
    arm(free);
    return;
  }
  // Weighted deficit round robin, one frame per wire-free event: visit
  // queues in fixed order, crediting weight*quantum per visit; the first
  // queue whose head fits its deficit transmits.
  while (true) {
    TenantQueue& q = queues_[rr_];
    if (q.fifo.empty()) {
      q.deficit = 0;  // idle tenants bank no credit
      rr_ = (rr_ + 1) % queues_.size();
      continue;
    }
    const auto head_bytes =
        static_cast<std::int64_t>(q.fifo.front()->frame().size());
    if (q.deficit < head_bytes) {
      q.deficit += static_cast<std::int64_t>(q.weight) * kQuantumBytes;
      rr_ = (rr_ + 1) % queues_.size();
      continue;
    }
    q.deficit -= head_bytes;
    net::PacketPtr pkt = std::move(q.fifo.front());
    q.fifo.pop_front();
    ++q.sent;
    --backlog_;
    if (q.fifo.empty()) q.deficit = 0;
    send_(std::move(pkt));  // advances tx_.busy_until() on success
    break;
  }
  if (backlog_ > 0) {
    const sim::Time free_next = tx_.busy_until();
    arm(free_next > sim_.now() ? free_next : sim_.now());
  }
}

// ---------------------------------------------------------------------------
// Pfe

Pfe::Pfe(sim::Simulator& simulator, const Calibration& cal, Router& router,
         int index)
    : sim_(simulator),
      cal_(cal),
      router_(router),
      index_(index),
      sms_(simulator, cal),
      hash_(simulator, cal),
      mqss_(simulator, cal),
      reorder_([this](ReorderEngine::Output out) {
        router_.transmit(index_, std::move(out.pkt), out.nexthop_id);
      }) {
  telemetry::Telemetry& telem = router.telemetry();
  const TelemetryScope& scope = router.telemetry_scope();
  metric_prefix_ = scope.metric_prefix + "pfe" + std::to_string(index) + ".";
  trace_pid_ = scope.trace_pid_base + trace_rows::pid_of_pfe(index);
  if (telem.tracer.enabled()) {
    tracer_ = &telem.tracer;
    tracer_->set_process_name(
        trace_pid_, scope.process_prefix + "pfe" + std::to_string(index));
    tracer_->set_thread_name(trace_pid_, trace_rows::kDispatch, "dispatch");
    tracer_->set_thread_name(trace_pid_, trace_rows::kReorder, "reorder");
    tracer_->set_thread_name(trace_pid_, trace_rows::kCrossbar, "crossbar");
  }
  packets_in_ctr_ = telem.metrics.counter(metric_prefix_ + "packets_in");
  packets_dispatched_ctr_ =
      telem.metrics.counter(metric_prefix_ + "packets_dispatched");
  dispatch_drops_ctr_ = telem.metrics.counter(metric_prefix_ + "dispatch_drops");
  dispatch_depth_gauge_ =
      telem.metrics.gauge(metric_prefix_ + "dispatch_queue_depth");
  sms_.instrument(telem, trace_pid_, metric_prefix_ + "sms.");
  mqss_.instrument(telem, trace_pid_, metric_prefix_ + "mqss.");
  reorder_.instrument(telem.metrics, metric_prefix_ + "reorder.");
  ppes_.reserve(static_cast<std::size_t>(cal_.ppes_per_pfe));
  for (int i = 0; i < cal_.ppes_per_pfe; ++i) {
    ppes_.push_back(std::make_unique<Ppe>(simulator, cal_, *this, i));
    ppes_.back()->instrument(telem, trace_pid_, metric_prefix_);
  }
  timers_ = std::make_unique<TimerWheel>(simulator, cal_, *this);
}

std::uint64_t compute_flow_hash(const net::Buffer& frame) {
  if (frame.size() < net::UdpFrameLayout::kIpOff + net::Ipv4Header::kSize) {
    return 1;
  }
  const auto eth = net::EthernetHeader::parse(frame, 0);
  if (eth.ether_type != net::EthernetHeader::kEtherTypeIpv4) return 1;
  const auto ip = net::Ipv4Header::parse(frame, net::UdpFrameLayout::kIpOff);
  std::uint64_t h =
      hash_pair(std::uint64_t(ip.src.value()) << 32 | ip.dst.value(),
                ip.protocol);
  if ((ip.protocol == net::Ipv4Header::kProtoUdp ||
       ip.protocol == net::Ipv4Header::kProtoTcp) &&
      frame.size() >= net::UdpFrameLayout::kUdpOff + 4) {
    const std::size_t l4 = net::UdpFrameLayout::kIpOff + ip.header_bytes();
    if (frame.size() >= l4 + 4) {
      h = hash_pair(h, std::uint64_t(frame.u16(l4)) << 16 | frame.u16(l4 + 2));
    }
  }
  return h == 0 ? 1 : h;
}

void Pfe::ingress(net::PacketPtr pkt) {
  ++packets_in_;
  packets_in_ctr_.inc();
  pkt->set_arrival_time(sim_.now());
  pkt->set_flow_hash(compute_flow_hash(pkt->frame()));
  // Open the reorder ticket in arrival order, before any queueing.
  const std::uint64_t ticket = reorder_.open(pkt->flow_hash());
  note_reorder_depth();
  if (dispatch_queue_.size() >= cal_.dispatch_queue_limit) {
    ++dispatch_drops_;
    dispatch_drops_ctr_.inc();
    reorder_.close(ticket);  // consumed with no output
    note_reorder_depth();
    return;
  }
  dispatch_queue_.push_back(Pending{std::move(pkt), ticket});
  note_dispatch_depth();
  try_dispatch();
}

Ppe* Pfe::pick_ppe() {
  // The Dispatch module sends the head to a PPE "based on availability":
  // choose the PPE with the most free thread slots.
  Ppe* best = nullptr;
  int best_free = 0;
  for (auto& p : ppes_) {
    const int f = p->free_threads();
    if (f > best_free) {
      best_free = f;
      best = p.get();
    }
  }
  return best;
}

void Pfe::try_dispatch() {
  // Internal (timer/event) launches take the freed slot first.
  while (!internal_queue_.empty()) {
    Ppe* ppe = pick_ppe();
    if (ppe == nullptr) return;
    PendingInternal pi = std::move(internal_queue_.front());
    internal_queue_.pop_front();
    ppe->spawn(std::move(pi.program), nullptr, std::nullopt, pi.timer_index);
  }
  while (!dispatch_queue_.empty()) {
    Ppe* ppe = pick_ppe();
    if (ppe == nullptr) return;  // all threads busy; wait for a free slot
    Pending pending = std::move(dispatch_queue_.front());
    dispatch_queue_.pop_front();
    note_dispatch_depth();
    std::unique_ptr<PpeProgram> program;
    if (program_factory_) {
      program = program_factory_(*pending.pkt);
    } else {
      program = router_.make_forwarding_program(*pending.pkt);
    }
    if (!program) {
      ++dispatch_drops_;
      dispatch_drops_ctr_.inc();
      reorder_.close(pending.ticket);
      note_reorder_depth();
      continue;
    }
    packets_dispatched_ctr_.inc();
    ppe->spawn(std::move(program), std::move(pending.pkt), pending.ticket, 0);
  }
}

bool Pfe::spawn_internal(std::unique_ptr<PpeProgram> program,
                         std::uint32_t timer_index) {
  Ppe* ppe = pick_ppe();
  if (ppe != nullptr) {
    return ppe->spawn(std::move(program), nullptr, std::nullopt, timer_index);
  }
  if (internal_queue_.size() >= kInternalQueueLimit) return false;
  internal_queue_.push_back(PendingInternal{std::move(program), timer_index});
  return true;
}

sim::Time Pfe::issue_xtxn(const XtxnRequest& req, const net::PacketPtr& pkt,
                          XtxnCallback cb) {
  if (tracer_ != nullptr) {
    // Every XTXN crosses the PPE<->memory crossbar on its way to a block.
    tracer_->instant(trace_pid_, trace_rows::kCrossbar, xtxn_op_name(req.op),
                     sim_.now());
  }
  switch (req.op) {
    case XtxnOp::kHashLookup:
    case XtxnOp::kHashInsert:
    case XtxnOp::kHashDelete:
    case XtxnOp::kHashScanStep:
      return hash_.issue(req, std::move(cb));
    case XtxnOp::kTailRead:
      if (!pkt) {
        throw std::logic_error("kTailRead issued by a packet-less thread");
      }
      return mqss_.tail_read(*pkt, req.addr, req.len, std::move(cb));
    case XtxnOp::kPmemWrite:
      return mqss_.pmem_write(req.data.size(), std::move(cb));
    default:
      return sms_.issue(req, std::move(cb));
  }
}

void Pfe::emit(std::optional<std::uint64_t> ticket, ReorderEngine::Output out) {
  if (ticket) {
    reorder_.attach(*ticket, std::move(out));
  } else {
    // Internally generated packet (timer thread): no ordering constraint.
    router_.transmit(index_, std::move(out.pkt), out.nexthop_id);
  }
}

void Pfe::close_ticket(std::uint64_t ticket) {
  reorder_.close(ticket);
  note_reorder_depth();
}

void Pfe::note_dispatch_depth() {
  const auto depth = dispatch_queue_.size();
  dispatch_depth_gauge_.set(static_cast<std::int64_t>(depth));
  if (tracer_ != nullptr) {
    tracer_->counter(trace_pid_, "dispatch", "queue_depth", sim_.now(),
                     static_cast<double>(depth));
  }
}

void Pfe::note_reorder_depth() {
  if (tracer_ != nullptr) {
    tracer_->counter(trace_pid_, "reorder", "pending", sim_.now(),
                     static_cast<double>(reorder_.pending()));
  }
}

void Pfe::on_thread_free() { try_dispatch(); }

int Pfe::free_threads() const {
  int n = 0;
  for (const auto& p : ppes_) n += p->free_threads();
  return n;
}

int Pfe::active_threads() const {
  int n = 0;
  for (const auto& p : ppes_) n += p->active_threads();
  return n;
}

std::uint64_t Pfe::instructions_issued() const {
  std::uint64_t n = 0;
  for (const auto& p : ppes_) n += p->instructions_issued();
  return n;
}

}  // namespace trio
