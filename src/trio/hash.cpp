#include "trio/hash.hpp"

namespace trio {

std::uint64_t mix64(std::uint64_t x) {
  // Stafford's Mix13 finalizer — excellent avalanche, cheap.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_bytes(std::span<const std::uint8_t> data,
                         std::uint64_t seed) {
  std::uint64_t h = mix64(seed ^ (0x9e3779b97f4a7c15ull + data.size()));
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t lane = 0;
    for (int b = 7; b >= 0; --b) lane = lane << 8 | data[i + static_cast<std::size_t>(b)];
    h = mix64(h ^ lane * 0xff51afd7ed558ccdull);
  }
  std::uint64_t tail = 0;
  for (; i < data.size(); ++i) tail = tail << 8 | data[i];
  return mix64(h ^ tail);
}

std::uint64_t hash_pair(std::uint64_t a, std::uint64_t b) {
  return mix64(mix64(a) ^ b * 0xc2b2ae3d27d4eb4full);
}

}  // namespace trio
