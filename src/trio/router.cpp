#include "trio/router.hpp"

#include <stdexcept>

namespace trio {

namespace {

/// The default IP forwarding Microcode path, as a native program: parse
/// the Ethernet and IPv4 headers out of LMEM, decrement TTL, consult the
/// FIB (one shared-memory access models the lookup walk), emit via the
/// resolved nexthop. Non-IP and routeless packets are dropped.
class ForwardingProgram : public PpeProgram {
 public:
  explicit ForwardingProgram(Router& router) : router_(router) {}

  Action step(ThreadContext& ctx) override {
    switch (state_) {
      case State::kParse: {
        const auto eth = net::EthernetHeader::parse(ctx.lmem, 0);
        if (eth.ether_type != net::EthernetHeader::kEtherTypeIpv4) {
          state_ = State::kDone;
          return ActExit{6};
        }
        auto ip = net::Ipv4Header::parse(ctx.lmem, net::UdpFrameLayout::kIpOff);
        if (ip.ttl <= 1) {
          state_ = State::kDone;
          return ActExit{8};
        }
        dst_ = ip.dst;
        // Rewrite TTL in the packet head (LMEM and the frame copy).
        ctx.lmem.set_u8(net::UdpFrameLayout::kIpOff + 8,
                        static_cast<std::uint8_t>(ip.ttl - 1));
        ctx.packet->frame().set_u8(net::UdpFrameLayout::kIpOff + 8,
                                   static_cast<std::uint8_t>(ip.ttl - 1));
        state_ = State::kLookup;
        // Route lookup: the table walk is a shared-memory transaction.
        XtxnRequest req;
        req.op = XtxnOp::kRead;
        req.addr = 0;  // FIB root (timing model; resolution is functional)
        req.len = 8;
        return ActSyncXtxn{std::move(req), 14};
      }
      case State::kLookup: {
        const auto nh = router_.forwarding().lookup(dst_);
        if (!nh) {
          router_.count_no_route_drop();
          state_ = State::kDone;
          return ActExit{4};
        }
        state_ = State::kDone;
        return ActEmitPacket{ctx.packet, *nh, 8};
      }
      case State::kDone:
      default:
        return ActExit{1};
    }
  }

 private:
  enum class State { kParse, kLookup, kDone };
  Router& router_;
  State state_ = State::kParse;
  net::Ipv4Addr dst_;
};

}  // namespace

Router::Router(sim::Simulator& simulator, Calibration cal, int num_pfes,
               int ports_per_pfe, std::string name)
    : sim_(simulator),
      cal_(cal),
      ports_per_pfe_(ports_per_pfe),
      name_(std::move(name)),
      owned_telem_(std::make_unique<telemetry::Telemetry>()),
      telem_(owned_telem_.get()),
      fabric_(simulator, cal_, num_pfes) {
  init(num_pfes);
}

Router::Router(sim::Simulator& simulator, Calibration cal, int num_pfes,
               int ports_per_pfe, telemetry::Telemetry& telem,
               std::string name)
    : sim_(simulator),
      cal_(cal),
      ports_per_pfe_(ports_per_pfe),
      name_(std::move(name)),
      telem_(&telem),
      fabric_(simulator, cal_, num_pfes) {
  init(num_pfes);
}

Router::Router(sim::Simulator& simulator, Calibration cal, int num_pfes,
               int ports_per_pfe, telemetry::Telemetry& telem,
               TelemetryScope scope, std::string name)
    : sim_(simulator),
      cal_(cal),
      ports_per_pfe_(ports_per_pfe),
      name_(std::move(name)),
      telem_(&telem),
      scope_(std::move(scope)),
      fabric_(simulator, cal_, num_pfes) {
  init(num_pfes);
}

void Router::init(int num_pfes) {
  if (num_pfes <= 0 || ports_per_pfe_ <= 0) {
    throw std::invalid_argument("Router: need at least one PFE and port");
  }
  rx_ctr_ = telem_->metrics.counter(scope_.metric_prefix +
                                    "router.packets_received");
  tx_ctr_ = telem_->metrics.counter(scope_.metric_prefix +
                                    "router.packets_transmitted");
  discard_ctr_ = telem_->metrics.counter(scope_.metric_prefix +
                                         "router.packets_discarded");
  no_route_ctr_ =
      telem_->metrics.counter(scope_.metric_prefix + "router.no_route_drops");
  stall_ctr_ = telem_->metrics.counter(scope_.metric_prefix + "router.stalls");
  stall_held_ctr_ = telem_->metrics.counter(scope_.metric_prefix +
                                            "router.stall_held_frames");
  kill_ctr_ = telem_->metrics.counter(scope_.metric_prefix + "router.kills");
  kill_drop_ctr_ = telem_->metrics.counter(scope_.metric_prefix +
                                           "router.kill_dropped_frames");
  for (int i = 0; i < num_pfes; ++i) {
    pfes_.push_back(std::make_unique<Pfe>(sim_, cal_, *this, i));
  }
  port_tx_.resize(static_cast<std::size_t>(num_ports()), nullptr);
  port_sinks_.resize(static_cast<std::size_t>(num_ports()));
}

void Router::receive(net::PacketPtr pkt, int port) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("Router::receive: bad port");
  }
  if (killed_) {
    ++kill_dropped_frames_;
    kill_drop_ctr_.inc();
    return;
  }
  ++packets_received_;
  rx_ctr_.inc();
  pkt->set_ingress_port(port);
  if (sim_.now() < stalled_until_) {
    ++stall_held_frames_;
    stall_held_ctr_.inc();
    stalled_rx_.push_back(StalledRx{std::move(pkt), port});
    return;
  }
  pfe(pfe_of_port(port)).ingress(std::move(pkt));
}

void Router::stall_until(sim::Time t) {
  if (t <= stalled_until_ || t <= sim_.now()) return;
  const bool was_stalled = sim_.now() < stalled_until_;
  stalled_until_ = t;
  ++stalls_;
  stall_ctr_.inc();
  if (!was_stalled) {
    sim_.schedule_at(t, [this] { resume_from_stall(); });
  }
}

void Router::resume_from_stall() {
  if (sim_.now() < stalled_until_) {
    // The stall was extended after this resume event was armed.
    sim_.schedule_at(stalled_until_, [this] { resume_from_stall(); });
    return;
  }
  std::vector<StalledRx> held;
  held.swap(stalled_rx_);
  for (StalledRx& rx : held) {
    pfe(pfe_of_port(rx.port)).ingress(std::move(rx.pkt));
  }
}

void Router::kill() {
  if (killed_) return;
  killed_ = true;
  ++kills_;
  kill_ctr_.inc();
  // Frames a stall was holding for replay die with the router.
  kill_dropped_frames_ += stalled_rx_.size();
  kill_drop_ctr_.inc(stalled_rx_.size());
  stalled_rx_.clear();
}

void Router::revive() { killed_ = false; }

void Router::attach_port(int global_port, net::LinkEndpoint& tx) {
  port_tx_.at(static_cast<std::size_t>(global_port)) = &tx;
}

void Router::attach_port_sink(int global_port,
                              std::function<void(net::PacketPtr)> sink) {
  port_sinks_.at(static_cast<std::size_t>(global_port)) = std::move(sink);
}

std::unique_ptr<PpeProgram> Router::make_forwarding_program(
    const net::Packet&) {
  return std::make_unique<ForwardingProgram>(*this);
}

void Router::transmit(int src_pfe, net::PacketPtr pkt,
                      std::uint32_t nexthop_id) {
  const Nexthop& nh = fwd_.nexthop(nexthop_id);
  if (const auto* uc = std::get_if<NexthopUnicast>(&nh)) {
    egress_enqueue(src_pfe, uc->port, std::move(pkt), uc->mac);
  } else if (const auto* mc = std::get_if<NexthopMulticast>(&nh)) {
    // Replication: each member gets its own copy of the frame.
    for (std::uint32_t member : mc->members) {
      auto clone = net::Packet::make(pkt->frame());
      clone->set_ingress_port(pkt->ingress_port());
      transmit(src_pfe, std::move(clone), member);
    }
  } else if (const auto* tp = std::get_if<NexthopToPfe>(&nh)) {
    // Hierarchical aggregation: hand the packet to the target PFE for
    // *processing*, bypassing IP forwarding (paper §4).
    Pfe& dst = pfe(tp->pfe);
    fabric_.send(src_pfe, std::move(pkt),
                 [&dst](net::PacketPtr p) { dst.ingress(std::move(p)); });
  } else {
    ++packets_discarded_;
    discard_ctr_.inc();
  }
}

void Router::egress_enqueue(int src_pfe, int global_port, net::PacketPtr pkt,
                            const net::MacAddr& dst_mac) {
  if (global_port < 0 || global_port >= num_ports()) {
    ++packets_discarded_;
    discard_ctr_.inc();
    return;
  }
  // Egress rewrite: destination MAC from the nexthop.
  net::EthernetHeader eth = net::EthernetHeader::parse(pkt->frame(), 0);
  eth.dst = dst_mac;
  eth.write(pkt->frame(), 0);

  const int dst_pfe = pfe_of_port(global_port);
  if (dst_pfe == src_pfe) {
    port_out(global_port, std::move(pkt));
  } else {
    fabric_.send(src_pfe, std::move(pkt),
                 [this, global_port](net::PacketPtr p) {
                   port_out(global_port, std::move(p));
                 });
  }
}

void Router::enable_tenant_qos(TenantClassifier classifier,
                               std::size_t queue_frames) {
  if (!classifier) {
    throw std::invalid_argument("Router::enable_tenant_qos: null classifier");
  }
  tenant_qos_ = true;
  tenant_classifier_ = std::move(classifier);
  qos_queue_frames_ = queue_frames;
  port_scheds_.resize(static_cast<std::size_t>(num_ports()));
}

void Router::set_tenant_weight(std::uint8_t tenant, std::uint32_t weight) {
  if (weight == 0) {
    throw std::invalid_argument("Router::set_tenant_weight: zero weight");
  }
  bool found = false;
  for (auto& [t, w] : tenant_weights_) {
    if (t == tenant) {
      w = weight;
      found = true;
      break;
    }
  }
  if (!found) tenant_weights_.emplace_back(tenant, weight);
  for (auto& sched : port_scheds_) {
    if (sched) sched->set_weight(tenant, weight);
  }
}

std::uint64_t Router::tenant_qos_drops(std::uint8_t tenant) const {
  std::uint64_t n = 0;
  for (const auto& sched : port_scheds_) {
    if (sched) n += sched->drops(tenant);
  }
  return n;
}

std::uint64_t Router::tenant_qos_sent(std::uint8_t tenant) const {
  std::uint64_t n = 0;
  for (const auto& sched : port_scheds_) {
    if (sched) n += sched->sent(tenant);
  }
  return n;
}

MqssTenantScheduler* Router::scheduler_for_port(int global_port) {
  const auto p = static_cast<std::size_t>(global_port);
  if (port_scheds_[p]) return port_scheds_[p].get();
  auto* tx = port_tx_[p];
  if (tx == nullptr) return nullptr;  // sinks are zero-time: no contention
  port_scheds_[p] = std::make_unique<MqssTenantScheduler>(
      sim_, *tx,
      [this, global_port](net::PacketPtr pkt) {
        port_out_now(global_port, std::move(pkt));
      },
      qos_queue_frames_);
  for (const auto& [t, w] : tenant_weights_) {
    port_scheds_[p]->set_weight(t, w);
  }
  return port_scheds_[p].get();
}

void Router::port_out(int global_port, net::PacketPtr pkt) {
  if (tenant_qos_) {
    MqssTenantScheduler* sched = scheduler_for_port(global_port);
    if (sched != nullptr) {
      const std::uint8_t tenant = tenant_classifier_(*pkt);
      if (!sched->enqueue(tenant, std::move(pkt))) {
        ++packets_discarded_;
        discard_ctr_.inc();
      }
      return;
    }
  }
  port_out_now(global_port, std::move(pkt));
}

void Router::port_out_now(int global_port, net::PacketPtr pkt) {
  if (killed_) {
    // In-flight work (fabric transits, PPE emits) racing the kill instant
    // is dropped at the egress point, like a pulled line card.
    ++kill_dropped_frames_;
    kill_drop_ctr_.inc();
    (void)pkt;
    return;
  }
  ++packets_transmitted_;
  tx_ctr_.inc();
  pkt->set_egress_port(global_port);
  auto* tx = port_tx_[static_cast<std::size_t>(global_port)];
  if (tx != nullptr) {
    tx->send(std::move(pkt));
    return;
  }
  auto& sink = port_sinks_[static_cast<std::size_t>(global_port)];
  if (sink) {
    sink(std::move(pkt));
    return;
  }
  ++packets_discarded_;  // unattached port
  discard_ctr_.inc();
}

}  // namespace trio
