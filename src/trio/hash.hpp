// Trio's hardwired hash function (paper §2.2, "Efficient hash
// calculation"): the Microcode program selects which bytes feed the hash;
// the mixing itself is dedicated logic. We model the dedicated logic with
// a strong 64-bit mixer (xxh3-style avalanche over 8-byte lanes), which
// the Dispatch module uses for flow hashing and the hash block uses for
// bucket selection.
#pragma once

#include <cstdint>
#include <span>

namespace trio {

/// Mixes a 64-bit value to avalanche all bits.
std::uint64_t mix64(std::uint64_t x);

/// Hashes an arbitrary byte string (the program-selected fields).
std::uint64_t hash_bytes(std::span<const std::uint8_t> data,
                         std::uint64_t seed = 0);

/// Convenience: hash of two 64-bit words (e.g. a (job_id, block_id) key).
std::uint64_t hash_pair(std::uint64_t a, std::uint64_t b);

}  // namespace trio
