// Trace-row conventions for the simulated chipset (docs/telemetry.md).
//
// Each PFE is one trace *process* (pid = PFE index + 1; pid 0 is reserved
// for viewers' idle row). Within a PFE, PPE thread slots occupy the low
// tid range (ppe_index * threads_per_ppe + slot) and the hardware blocks
// get fixed high tids so they can never collide with thread rows even on
// hypothetical large-generation calibrations.
#pragma once

namespace trio::trace_rows {

constexpr int pid_of_pfe(int pfe_index) { return pfe_index + 1; }

constexpr int kDispatch = 1'000'000;
constexpr int kReorder = 1'000'001;
constexpr int kCrossbar = 1'000'002;
constexpr int kMqss = 1'000'003;
/// SMS bank `k` renders on tid kSmsBankBase + k.
constexpr int kSmsBankBase = 1'000'100;

}  // namespace trio::trace_rows
