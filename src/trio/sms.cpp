#include "trio/sms.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "trio/trace_rows.hpp"

namespace trio {

namespace {

std::uint64_t load_le(const std::uint8_t* p, int n) {
  std::uint64_t v = 0;
  for (int i = n - 1; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

// Policer record layout (32 bytes, little-endian u64s):
//   +0  rate (bytes/sec)   +8  burst (bytes)
//   +16 tokens (bytes)     +24 last refill time (ns)
constexpr std::size_t kPolicerBytes = 32;

}  // namespace

SharedMemorySystem::SharedMemorySystem(sim::Simulator& simulator,
                                       const Calibration& cal)
    : sim_(simulator), cal_(cal) {
  banks_.resize(static_cast<std::size_t>(cal_.sms_banks));
  // One tag entry per cache line of the DRAM cache.
  dram_cache_tags_.assign(cal_.dram_cache_bytes / cal_.bank_interleave,
                          ~0ull);
  dram_brk_ = dram_base() + 64;
}

void SharedMemorySystem::instrument(telemetry::Telemetry& telem, int pid,
                                    const std::string& prefix) {
  ops_ctr_ = telem.metrics.counter(prefix + "ops");
  contended_ctr_ = telem.metrics.counter(prefix + "rmw_contended");
  queue_delay_hist_ = telem.metrics.histogram(prefix + "queue_delay_ns");
  char label[32];
  for (std::size_t k = 0; k < banks_.size(); ++k) {
    std::snprintf(label, sizeof(label), "bank%02zu", k);
    banks_[k].busy_ctr =
        telem.metrics.counter(prefix + label + ".busy_cycles");
  }
  if (telem.tracer.enabled()) {
    tracer_ = &telem.tracer;
    trace_pid_ = pid;
    for (std::size_t k = 0; k < banks_.size(); ++k) {
      std::snprintf(label, sizeof(label), "sms.bank%02zu", k);
      banks_[k].trace_name = label;
      telem.tracer.set_thread_name(
          pid, trace_rows::kSmsBankBase + static_cast<int>(k), label);
    }
  }
}

std::vector<std::uint8_t>& SharedMemorySystem::page(std::uint64_t addr) {
  auto& p = pages_[addr / kPageBytes];
  if (p.empty()) p.assign(kPageBytes, 0);
  return p;
}

const std::vector<std::uint8_t>* SharedMemorySystem::page_if_present(
    std::uint64_t addr) const {
  auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : &it->second;
}

void SharedMemorySystem::check_addr(std::uint64_t addr,
                                    std::size_t len) const {
  const std::uint64_t end = dram_base() + cal_.dram_bytes;
  if (addr + len > end) {
    throw std::out_of_range("SMS access beyond address space: addr=" +
                            std::to_string(addr) +
                            " len=" + std::to_string(len));
  }
}

std::uint8_t SharedMemorySystem::peek_u8(std::uint64_t addr) const {
  const auto* p = page_if_present(addr);
  return p ? (*p)[addr % kPageBytes] : 0;
}

std::uint32_t SharedMemorySystem::peek_u32(std::uint64_t addr) const {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = v << 8 | peek_u8(addr + static_cast<std::uint64_t>(i));
  }
  return v;
}

std::uint64_t SharedMemorySystem::peek_u64(std::uint64_t addr) const {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | peek_u8(addr + static_cast<std::uint64_t>(i));
  }
  return v;
}

void SharedMemorySystem::poke_u8(std::uint64_t addr, std::uint8_t v) {
  check_addr(addr, 1);
  page(addr)[addr % kPageBytes] = v;
}

void SharedMemorySystem::poke_u32(std::uint64_t addr, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    poke_u8(addr + static_cast<std::uint64_t>(i),
            static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void SharedMemorySystem::poke_u64(std::uint64_t addr, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    poke_u8(addr + static_cast<std::uint64_t>(i),
            static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void SharedMemorySystem::poke_bytes(std::uint64_t addr,
                                    const std::vector<std::uint8_t>& data) {
  for (std::size_t i = 0; i < data.size(); ++i) poke_u8(addr + i, data[i]);
}

std::vector<std::uint8_t> SharedMemorySystem::peek_bytes(
    std::uint64_t addr, std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = peek_u8(addr + i);
  return out;
}

void SharedMemorySystem::configure_policer(std::uint64_t addr,
                                           const PolicerConfig& config) {
  poke_u64(addr, config.rate_bytes_per_sec);
  poke_u64(addr + 8, config.burst_bytes);
  poke_u64(addr + 16, config.burst_bytes);  // bucket starts full
  poke_u64(addr + 24, static_cast<std::uint64_t>(sim_.now().ns()));
}

std::uint64_t SharedMemorySystem::alloc_sram(std::size_t bytes,
                                             std::size_t align) {
  std::uint64_t addr = (sram_brk_ + align - 1) / align * align;
  if (addr + bytes > cal_.sram_bytes) {
    throw std::runtime_error("SMS: on-chip SRAM exhausted");
  }
  sram_brk_ = addr + bytes;
  return addr;
}

std::uint64_t SharedMemorySystem::alloc_dram(std::size_t bytes,
                                             std::size_t align) {
  std::uint64_t addr = (dram_brk_ + align - 1) / align * align;
  if (addr + bytes > dram_base() + cal_.dram_bytes) {
    throw std::runtime_error("SMS: DRAM exhausted");
  }
  dram_brk_ = addr + bytes;
  return addr;
}

void SharedMemorySystem::set_tenant_quota(std::uint8_t tenant,
                                          std::uint64_t bytes) {
  tenant_accounts_[tenant].quota = bytes;
}

bool SharedMemorySystem::reserve_tenant_bytes(std::uint8_t tenant,
                                              std::uint64_t bytes) {
  TenantAccount& acct = tenant_accounts_[tenant];
  if (acct.used + bytes > acct.quota) return false;
  acct.used += bytes;
  return true;
}

void SharedMemorySystem::release_tenant_bytes(std::uint8_t tenant,
                                              std::uint64_t bytes) {
  TenantAccount& acct = tenant_accounts_[tenant];
  acct.used = bytes > acct.used ? 0 : acct.used - bytes;
}

std::uint64_t SharedMemorySystem::tenant_bytes_used(
    std::uint8_t tenant) const {
  auto it = tenant_accounts_.find(tenant);
  return it == tenant_accounts_.end() ? 0 : it->second.used;
}

std::uint64_t SharedMemorySystem::tenant_quota(std::uint8_t tenant) const {
  auto it = tenant_accounts_.find(tenant);
  return it == tenant_accounts_.end() ? ~0ull : it->second.quota;
}

sim::Duration SharedMemorySystem::tier_latency(std::uint64_t addr,
                                               std::size_t touched_bytes) {
  if (addr < cal_.sram_bytes) return cal_.sram_latency;
  // DRAM region: consult the direct-mapped on-chip cache model.
  const std::uint64_t line = addr / cal_.bank_interleave;
  const std::uint64_t slot = line % dram_cache_tags_.size();
  (void)touched_bytes;
  if (dram_cache_tags_[slot] == line) {
    ++cache_hits_;
    return cal_.dram_cache_latency;
  }
  ++cache_misses_;
  dram_cache_tags_[slot] = line;
  return cal_.dram_latency;
}

int SharedMemorySystem::service_cycles(const XtxnRequest& req) const {
  const auto bytes_cycles = [&](std::size_t n) {
    return static_cast<int>((n + cal_.rmw_bytes_per_cycle - 1) /
                            cal_.rmw_bytes_per_cycle);
  };
  switch (req.op) {
    case XtxnOp::kRead:
      return bytes_cycles(req.len);
    case XtxnOp::kWrite:
      return bytes_cycles(req.data.size());
    case XtxnOp::kCounterInc:
      return 2 * cal_.rmw_add_cycles;  // packet half + byte half
    case XtxnOp::kPolicerCheck:
      return 4;
    case XtxnOp::kFetchAdd32:
    case XtxnOp::kFetchAnd64:
    case XtxnOp::kFetchOr64:
    case XtxnOp::kFetchXor64:
    case XtxnOp::kFetchClear64:
    case XtxnOp::kFetchSwap64:
    case XtxnOp::kMaskedWrite64:
      return cal_.rmw_add_cycles;
    case XtxnOp::kAddVec32:
    case XtxnOp::kMinVec32:
    case XtxnOp::kVoteVec32:
      return cal_.rmw_add_cycles *
             static_cast<int>(req.data.size() / 4);
    default:
      throw std::logic_error("SMS: unsupported XTXN op");
  }
}

void SharedMemorySystem::apply(const XtxnRequest& req, XtxnReply& reply) {
  switch (req.op) {
    case XtxnOp::kRead: {
      check_addr(req.addr, req.len);
      reply.data = peek_bytes(req.addr, req.len);
      break;
    }
    case XtxnOp::kWrite: {
      check_addr(req.addr, req.data.size());
      poke_bytes(req.addr, req.data);
      break;
    }
    case XtxnOp::kCounterInc: {
      // 16-byte Packet/Byte counter (Fig 6): packets += 1, bytes += arg0.
      check_addr(req.addr, 16);
      poke_u64(req.addr, peek_u64(req.addr) + 1);
      poke_u64(req.addr + 8, peek_u64(req.addr + 8) + req.arg0);
      break;
    }
    case XtxnOp::kPolicerCheck: {
      check_addr(req.addr, kPolicerBytes);
      const std::uint64_t rate = peek_u64(req.addr);
      const std::uint64_t burst = peek_u64(req.addr + 8);
      std::uint64_t tokens = peek_u64(req.addr + 16);
      const std::uint64_t last = peek_u64(req.addr + 24);
      const auto now_ns = static_cast<std::uint64_t>(sim_.now().ns());
      if (now_ns > last) {
        const double refill =
            static_cast<double>(now_ns - last) * 1e-9 * static_cast<double>(rate);
        const std::uint64_t filled =
            tokens + static_cast<std::uint64_t>(refill);
        tokens = filled > burst ? burst : filled;
        poke_u64(req.addr + 24, now_ns);
      }
      if (tokens >= req.arg0) {
        tokens -= req.arg0;
        reply.value = 1;  // conform
      } else {
        reply.value = 0;  // exceed
      }
      poke_u64(req.addr + 16, tokens);
      break;
    }
    case XtxnOp::kFetchAdd32: {
      check_addr(req.addr, 4);
      const std::uint32_t old = peek_u32(req.addr);
      poke_u32(req.addr, old + static_cast<std::uint32_t>(req.arg0));
      reply.value = old;
      break;
    }
    case XtxnOp::kFetchAnd64:
    case XtxnOp::kFetchOr64:
    case XtxnOp::kFetchXor64:
    case XtxnOp::kFetchClear64:
    case XtxnOp::kFetchSwap64: {
      check_addr(req.addr, 8);
      const std::uint64_t old = peek_u64(req.addr);
      std::uint64_t next = old;
      switch (req.op) {
        case XtxnOp::kFetchAnd64: next = old & req.arg0; break;
        case XtxnOp::kFetchOr64: next = old | req.arg0; break;
        case XtxnOp::kFetchXor64: next = old ^ req.arg0; break;
        case XtxnOp::kFetchClear64: next = old & ~req.arg0; break;
        case XtxnOp::kFetchSwap64: next = req.arg0; break;
        default: break;
      }
      poke_u64(req.addr, next);
      reply.value = old;
      break;
    }
    case XtxnOp::kMaskedWrite64: {
      check_addr(req.addr, 8);
      const std::uint64_t old = peek_u64(req.addr);
      poke_u64(req.addr, (old & ~req.arg1) | (req.arg0 & req.arg1));
      break;
    }
    case XtxnOp::kAddVec32: {
      // The RMW engine sums packed 32-bit integers into memory — this is
      // the heart of Trio-ML's in-network aggregation (§6.3).
      check_addr(req.addr, req.data.size());
      const std::size_t n = req.data.size() / 4;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t a = req.addr + i * 4;
        const std::uint32_t addend = static_cast<std::uint32_t>(
            load_le(req.data.data() + i * 4, 4));
        poke_u32(a, peek_u32(a) + addend);
      }
      add32_ops_ += n;
      break;
    }
    case XtxnOp::kMinVec32: {
      // Element-wise unsigned minimum of packed 32-bit integers — the
      // second RMW merge mode, used by netrpc's `min` response policy.
      check_addr(req.addr, req.data.size());
      const std::size_t n = req.data.size() / 4;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t a = req.addr + i * 4;
        const std::uint32_t incoming = static_cast<std::uint32_t>(
            load_le(req.data.data() + i * 4, 4));
        if (incoming < peek_u32(a)) poke_u32(a, incoming);
      }
      add32_ops_ += n;
      break;
    }
    case XtxnOp::kVoteVec32: {
      // Streaming Boyer-Moore majority per element. The merge buffer is
      // split-plane: candidates live at addr[0 .. len), counts at
      // addr[len .. 2*len), so the candidate plane is a plain packed
      // u32 vector a single kRead can fetch as the merged result —
      // netrpc's `majority` response policy.
      check_addr(req.addr, req.data.size() * 2);
      const std::size_t n = req.data.size() / 4;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t a = req.addr + i * 4;
        const std::uint64_t c = req.addr + req.data.size() + i * 4;
        const std::uint32_t incoming = static_cast<std::uint32_t>(
            load_le(req.data.data() + i * 4, 4));
        const std::uint32_t candidate = peek_u32(a);
        const std::uint32_t count = peek_u32(c);
        if (count == 0) {
          poke_u32(a, incoming);
          poke_u32(c, 1);
        } else if (candidate == incoming) {
          poke_u32(c, count + 1);
        } else {
          poke_u32(c, count - 1);
        }
      }
      add32_ops_ += n;
      break;
    }
    default:
      throw std::logic_error("SMS: unsupported XTXN op");
  }
}

sim::Time SharedMemorySystem::issue(const XtxnRequest& req, XtxnCallback cb) {
  ++ops_;
  ops_ctr_.inc();
  XtxnReply reply;
  apply(req, reply);

  const int bank_idx = bank_of(req.addr);
  Bank& bank = banks_[static_cast<std::size_t>(bank_idx)];
  int cycles = service_cycles(req);
  if (line_ownership_mode_ && req.op != XtxnOp::kRead &&
      req.op != XtxnOp::kWrite) {
    // Ablation: conventional line-ownership RMW — fetch the line to the
    // thread, operate, write it back. The bank is occupied for the full
    // round trip instead of just the operation.
    cycles = cycles * 3 + static_cast<int>(2 * cal_.crossbar_latency.ns());
  }
  const sim::Duration service = sim::Duration::cycles(cycles, cal_.clock_hz);
  const sim::Time arrive = sim_.now() + cal_.crossbar_latency;
  const sim::Time start = arrive > bank.free_at ? arrive : bank.free_at;
  if (start > arrive) contended_ctr_.inc();
  queue_delay_hist_.record((start - arrive).ns());
  bank.free_at = start + service;
  bank.busy_cycles += static_cast<std::uint64_t>(cycles);
  bank.busy_ctr.inc(static_cast<std::uint64_t>(cycles));
  if (tracer_ != nullptr) {
    // Service span on the bank's row: queueing behind the RMW engine is
    // visible as the gap between arrival and the span's start.
    tracer_->complete(trace_pid_, trace_rows::kSmsBankBase + bank_idx,
                      xtxn_op_name(req.op), start, bank.free_at);
    tracer_->counter(trace_pid_, bank.trace_name, "busy_cycles", sim_.now(),
                     static_cast<double>(bank.busy_cycles));
  }

  const std::size_t touched =
      req.len != 0 ? req.len : (req.data.empty() ? 8 : req.data.size());
  const sim::Time reply_at = bank.free_at + tier_latency(req.addr, touched);
  if (cb) {
    sim_.schedule_at(reply_at,
                     [cb = std::move(cb), reply = std::move(reply)]() mutable {
                       cb(std::move(reply));
                     });
  }
  return reply_at;
}

}  // namespace trio
