// External transactions (XTXNs): requests a PPE thread issues over the
// crossbar to other blocks — the Shared Memory System, the hardware hash
// block, the Memory & Queueing Subsystem (packet tails) — and their
// replies (paper §3.1 "External transaction").
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_callback.hpp"

namespace trio {

enum class XtxnOp : std::uint8_t {
  // Shared Memory System (read-modify-write engines, §2.3).
  kRead,          // addr, len (8..64 B, 8 B steps) -> data
  kWrite,         // addr, data
  kCounterInc,    // addr (16 B Packet/Byte counter), arg0 = packet bytes
  kPolicerCheck,  // addr (policer record), arg0 = packet bytes -> value: 1 conform / 0 exceed
  kFetchAdd32,    // addr, arg0 = addend -> value: previous 32-bit value
  kFetchAnd64,    // addr, arg0 = mask   -> value: previous value
  kFetchOr64,     // addr, arg0 = mask   -> value: previous value
  kFetchXor64,    // addr, arg0 = mask   -> value: previous value
  kFetchClear64,  // addr, arg0 = mask   -> value: previous value (clears bits)
  kFetchSwap64,   // addr, arg0 = new    -> value: previous value
  kMaskedWrite64, // addr, arg0 = value, arg1 = mask
  kAddVec32,      // addr, data = packed 32-bit little-endian addends
  kMinVec32,      // addr, data = packed 32-bit words; element-wise unsigned min
  kVoteVec32,     // addr = split-plane majority buffer (candidates at
                  // addr[0..len), counts at addr[len..2*len)), data = packed
                  // 32-bit words; streaming Boyer-Moore majority per element
  // Hardware hash block (§5): 64-bit key -> 64-bit value records with a
  // 'Recently Referenced' flag.
  kHashLookup,    // arg0 = key -> ok, value
  kHashInsert,    // arg0 = key, arg1 = value -> ok (false if key exists)
  kHashDelete,    // arg0 = key, arg1 = expected value (0 = any) -> ok
  kHashScanStep,  // arg0 = partition, arg1 = max records; check-and-clear
                  // REF over one partition slice; reply data = aged keys
  // Memory & Queueing Subsystem.
  kTailRead,      // addr = offset into this thread's packet tail, len <= 64
  kPmemWrite,     // append chunk to the tail under construction; data
};

/// True for ops whose reply carries no payload the issuing program needs,
/// so they may be issued fire-and-forget (async without a reply event).
constexpr bool xtxn_is_posted(XtxnOp op) {
  switch (op) {
    case XtxnOp::kWrite:
    case XtxnOp::kCounterInc:
    case XtxnOp::kAddVec32:
    case XtxnOp::kMinVec32:
    case XtxnOp::kVoteVec32:
    case XtxnOp::kMaskedWrite64:
    case XtxnOp::kPmemWrite:
      return true;
    default:
      return false;
  }
}

/// Stable lower-case name for telemetry (trace span / counter labels).
constexpr const char* xtxn_op_name(XtxnOp op) {
  switch (op) {
    case XtxnOp::kRead: return "read";
    case XtxnOp::kWrite: return "write";
    case XtxnOp::kCounterInc: return "counter_inc";
    case XtxnOp::kPolicerCheck: return "policer_check";
    case XtxnOp::kFetchAdd32: return "fetch_add32";
    case XtxnOp::kFetchAnd64: return "fetch_and64";
    case XtxnOp::kFetchOr64: return "fetch_or64";
    case XtxnOp::kFetchXor64: return "fetch_xor64";
    case XtxnOp::kFetchClear64: return "fetch_clear64";
    case XtxnOp::kFetchSwap64: return "fetch_swap64";
    case XtxnOp::kMaskedWrite64: return "masked_write64";
    case XtxnOp::kAddVec32: return "add_vec32";
    case XtxnOp::kMinVec32: return "min_vec32";
    case XtxnOp::kVoteVec32: return "vote_vec32";
    case XtxnOp::kHashLookup: return "hash_lookup";
    case XtxnOp::kHashInsert: return "hash_insert";
    case XtxnOp::kHashDelete: return "hash_delete";
    case XtxnOp::kHashScanStep: return "hash_scan_step";
    case XtxnOp::kTailRead: return "tail_read";
    case XtxnOp::kPmemWrite: return "pmem_write";
  }
  return "unknown";
}

struct XtxnRequest {
  XtxnOp op{};
  std::uint64_t addr = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t len = 0;
  std::vector<std::uint8_t> data;
};

struct XtxnReply {
  bool ok = true;
  std::uint64_t value = 0;
  std::vector<std::uint8_t> data;
};

// Move-only with 32 bytes of inline storage: the engine's reply closures
// (this, slot, issue-time, op) fit without touching the allocator; larger
// captures from tests or applications fall back to one heap cell.
using XtxnCallback = sim::InlineFunction<void(XtxnReply), 32>;

}  // namespace trio
