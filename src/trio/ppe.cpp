#include "trio/ppe.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "trio/pfe.hpp"
#include "trio/router.hpp"
#include "trio/xtxn.hpp"

namespace trio {

Ppe::Ppe(sim::Simulator& simulator, const Calibration& cal, Pfe& pfe,
         int index)
    : sim_(simulator), cal_(cal), pfe_(pfe), index_(index) {
  threads_.resize(static_cast<std::size_t>(cal_.threads_per_ppe));
  free_slots_.reserve(threads_.size());
  for (int i = static_cast<int>(threads_.size()) - 1; i >= 0; --i) {
    free_slots_.push_back(i);
  }
}

void Ppe::instrument(telemetry::Telemetry& telem, int pid,
                     const std::string& prefix) {
  instr_ctr_ = telem.metrics.counter(prefix + "instructions");
  started_ctr_ = telem.metrics.counter(prefix + "threads_started");
  if (telem.tracer.enabled()) {
    tracer_ = &telem.tracer;
    trace_pid_ = pid;
    for (int slot = 0; slot < cal_.threads_per_ppe; ++slot) {
      char label[32];
      std::snprintf(label, sizeof(label), "ppe%02d.t%02d", index_, slot);
      telem.tracer.set_thread_name(pid, tid_of(slot), label);
    }
  }
}

bool Ppe::spawn(std::unique_ptr<PpeProgram> program, net::PacketPtr pkt,
                std::optional<std::uint64_t> ticket,
                std::uint32_t timer_index) {
  if (free_slots_.empty()) return false;
  const int slot = free_slots_.back();
  free_slots_.pop_back();

  Thread& th = threads_[static_cast<std::size_t>(slot)];
  // Reset in place rather than assigning a fresh ThreadContext: the LMEM
  // and register vectors keep their capacity across thread lifetimes, so
  // steady-state dispatch does not touch the allocator.
  th.ctx.lmem.resize(cal_.lmem_bytes);
  std::ranges::fill(th.ctx.lmem.mutable_bytes(), 0);
  th.ctx.regs.assign(static_cast<std::size_t>(cal_.gprs_per_thread), 0);
  th.ctx.packet = std::move(pkt);
  th.ctx.reply = XtxnReply{};
  th.ctx.instructions_executed = 0;
  th.ctx.timer_index = timer_index;
  th.ctx.spawn_time = sim_.now();
  th.ctx.ppe_index = index_;
  th.ctx.thread_slot = slot;
  if (th.ctx.packet) {
    // The Dispatch module DMAs the packet head into thread LMEM (§2.2
    // "Before a PPE thread is initiated, the packet head is loaded into
    // the local memory of that thread").
    const auto head = th.ctx.packet->frame().view(0, th.ctx.packet->head_size());
    th.ctx.lmem.write(0, head);
  }
  th.program = std::move(program);
  th.ticket = ticket;
  th.async_done_at = sim_.now();
  th.active = true;
  ++threads_started_;
  started_ctr_.inc();

  sim_.schedule_in(cal_.dispatch_overhead, [this, slot] { advance(slot); });
  return true;
}

void Ppe::advance(int slot) {
  Thread& th = threads_[static_cast<std::size_t>(slot)];
  if (!th.active) {
    throw std::logic_error("Ppe::advance on inactive thread");
  }
  if (pfe_.router().killed()) {
    // Power loss (Router::kill) destroys in-flight threads: unwind
    // through finish() at the next scheduled step, with no further
    // program steps — a dead chip must not keep mutating SMS/hash state
    // that the recovery control plane already invalidated.
    finish(slot);
    return;
  }
  Action action = th.program->step(th.ctx);
  const std::uint32_t k = action_instructions(action);
  th.ctx.instructions_executed += k;
  instructions_issued_ += k;
  instr_ctr_.inc(k);

  const sim::Time start = sim_.now() > issue_free_ ? sim_.now() : issue_free_;
  issue_free_ = start + cal_.issue_interval * k;
  const sim::Time done = start + cal_.instr_latency * k;
  perform(slot, std::move(action), done);
}

void Ppe::perform(int slot, Action action, sim::Time done) {
  Thread& th = threads_[static_cast<std::size_t>(slot)];
  if (std::holds_alternative<ActContinue>(action)) {
    sim_.schedule_at(done, [this, slot] { advance(slot); });
  } else if (auto* sx = std::get_if<ActSyncXtxn>(&action)) {
    // The thread suspends until the reply returns (§3.1 synchronous XTXN).
    // The request is parked in the thread record so the scheduled closure
    // captures only (this, slot) — moving the request's data vector into
    // the closure would blow the inline-callback budget.
    th.pending_sync_req = std::move(sx->req);
    sim_.schedule_at(done, [this, slot] { issue_pending_sync(slot); });
  } else if (auto* ax = std::get_if<ActAsyncXtxn>(&action)) {
    if (!xtxn_is_posted(ax->req.op)) {
      throw std::logic_error("Ppe: async XTXN must be a posted operation");
    }
    // Posted: apply and account bank occupancy now (the skew versus `done`
    // is at most one step), no reply event.
    const sim::Time reply_at = pfe_.issue_xtxn(ax->req, th.ctx.packet, {});
    if (reply_at > th.async_done_at) th.async_done_at = reply_at;
    sim_.schedule_at(done, [this, slot] { advance(slot); });
  } else if (std::holds_alternative<ActJoinAsync>(action)) {
    const sim::Time resume =
        th.async_done_at > done ? th.async_done_at : done;
    sim_.schedule_at(resume, [this, slot] { advance(slot); });
  } else if (auto* em = std::get_if<ActEmitPacket>(&action)) {
    sim_.schedule_at(done, [this, slot, pkt = std::move(em->pkt),
                            nh = em->nexthop_id]() mutable {
      Thread& t = threads_[static_cast<std::size_t>(slot)];
      pfe_.emit(t.ticket, ReorderEngine::Output{std::move(pkt), nh});
      advance(slot);
    });
  } else if (std::holds_alternative<ActExit>(action)) {
    sim_.schedule_at(done, [this, slot] { finish(slot); });
  } else {
    throw std::logic_error("Ppe: unknown action");
  }
}

void Ppe::issue_pending_sync(int slot) {
  if (pfe_.router().killed()) {
    // The XTXN would otherwise still be applied by a powered-off chip.
    finish(slot);
    return;
  }
  Thread& t = threads_[static_cast<std::size_t>(slot)];
  const sim::Time issued = sim_.now();
  const XtxnRequest req = std::move(t.pending_sync_req);
  const XtxnOp op = req.op;
  pfe_.issue_xtxn(req, t.ctx.packet, [this, slot, issued, op](XtxnReply reply) {
    Thread& t2 = threads_[static_cast<std::size_t>(slot)];
    t2.ctx.reply = std::move(reply);
    if (tracer_ != nullptr) {
      tracer_->complete(trace_pid_, tid_of(slot),
                        std::string("stall:") + xtxn_op_name(op), issued,
                        sim_.now());
    }
    advance(slot);
  });
}

void Ppe::finish(int slot) {
  Thread& th = threads_[static_cast<std::size_t>(slot)];
  const auto ticket = th.ticket;
  if (tracer_ != nullptr) {
    // One span per thread lifetime: dispatch-to-destruction.
    tracer_->complete(trace_pid_, tid_of(slot),
                      th.ctx.packet ? "packet" : "timer", th.ctx.spawn_time,
                      sim_.now());
  }
  th.program.reset();
  th.ctx.packet.reset();
  th.active = false;
  free_slots_.push_back(slot);
  // Thread destruction is hardware-managed (§2.2): close the reorder
  // ticket and let Dispatch hand a queued packet to the freed slot.
  if (ticket) pfe_.close_ticket(*ticket);
  pfe_.on_thread_free();
}

}  // namespace trio
