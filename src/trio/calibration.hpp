// Calibration constants for the cycle-approximate Trio model.
//
// Values marked [paper] are stated in the SIGCOMM'22 paper; values marked
// [cal] are free parameters of the software model, set so that the
// packet-level simulator reproduces the paper's measured curves (Figures
// 14-16). See EXPERIMENTS.md for the calibration discussion.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace trio {

struct Calibration {
  // --- Clocks -------------------------------------------------------------
  /// [paper §6.3] "a 1 GHz clock speed". With 1 GHz, 1 cycle == 1 ns.
  std::int64_t clock_hz = 1'000'000'000;

  // --- PPE ----------------------------------------------------------------
  /// [cal] PPEs per PFE. The paper quotes 160 PPEs for generation 6; the
  /// MPC10E line card in the testbed is generation 5. The effective
  /// parallelism here is set so that the per-PFE aggregation throughput
  /// plateau lands where Figure 16(b) measured it (~150 Gbps).
  int ppes_per_pfe = 16;
  /// [paper §2.2] "each PPE supports tens of threads".
  int threads_per_ppe = 20;
  /// [paper §2.2] "each instruction takes multiple clock cycles". [cal]
  /// Effective per-instruction latency seen by one thread, including
  /// operand fetch and average memory-wait; tuned against Figure 15.
  sim::Duration instr_latency = sim::Duration::nanos(24);
  /// One instruction issued per PPE per cycle (threads interleave).
  sim::Duration issue_interval = sim::Duration::nanos(1);
  /// [paper §2.2] local memory per thread: 1.25 KBytes.
  std::size_t lmem_bytes = 1280;
  /// [paper §2.2] 32 general-purpose 64-bit registers per thread.
  int gprs_per_thread = 32;
  /// [paper §2.2] call-return nesting depth.
  int max_call_depth = 8;

  // --- Dispatch / head-tail split ------------------------------------------
  /// [paper Fig 10] head = first 192 bytes.
  std::size_t head_bytes = 192;
  /// [cal] Fixed per-packet cost between arrival at the PFE and the
  /// thread's first instruction: the ingress MAC/pre-classifier path,
  /// the hardware dispatch decision, and the DMA of the head into thread
  /// LMEM. Calibrated against the fixed component of Figure 15 (the
  /// paper's latency is measured from PFE arrival, so it includes this
  /// whole path).
  sim::Duration dispatch_overhead = sim::Duration::nanos(5000);
  /// Packets the Dispatch module can hold while all threads are busy;
  /// overflow is dropped (ingress backpressure boundary).
  std::size_t dispatch_queue_limit = 65536;

  // --- Shared Memory System -------------------------------------------------
  /// [paper §2.3] on-chip SRAM: ~70 ns access latency from the PPE.
  sim::Duration sram_latency = sim::Duration::nanos(70);
  /// [cal] off-chip DRAM cache: on-chip SRAM-like banks in front of DRAM.
  sim::Duration dram_cache_latency = sim::Duration::nanos(120);
  /// [paper §2.3] off-chip DRAM: ~300-400 ns from the PPE.
  sim::Duration dram_latency = sim::Duration::nanos(350);
  /// [paper §6.3] Trio-ML uses 12 read-modify-write engines; we give the
  /// SMS 12 banks, one engine each.
  int sms_banks = 12;
  /// [paper §2.3] each RMW engine processes 8 bytes per clock cycle.
  std::size_t rmw_bytes_per_cycle = 8;
  /// [paper §6.3] "each add operation takes two cycles".
  int rmw_add_cycles = 2;
  /// Bank interleave granule; a 64-byte request touches one bank.
  std::size_t bank_interleave = 64;
  /// [paper §2.3] software-configurable region sizes.
  std::size_t sram_bytes = 4u << 20;          // 2-8 MB typical -> 4 MB
  std::size_t dram_cache_bytes = 16u << 20;   // 8-24 MB typical -> 16 MB
  std::uint64_t dram_bytes = 4ull << 30;      // several GB -> 4 GB

  // --- Crossbar -------------------------------------------------------------
  /// [cal] crossbar transit latency, each direction. The paper states the
  /// crossbar itself never limits memory performance, so no contention is
  /// modelled here; backpressure comes from the bank engines.
  sim::Duration crossbar_latency = sim::Duration::nanos(25);

  // --- Memory & Queueing Subsystem -------------------------------------------
  /// [cal] latency of a tail-chunk read (request across the crossbar,
  /// packet-buffer access, data return). Max chunk is 64 B [paper Fig 10].
  sim::Duration tail_read_latency = sim::Duration::nanos(400);
  std::size_t tail_chunk_bytes = 64;
  /// [cal] latency of writing a 256 B chunk of a new packet's tail into
  /// the packet buffer (result-generation loop, Fig 10).
  sim::Duration pmem_write_latency = sim::Duration::nanos(300);
  std::size_t pmem_chunk_bytes = 256;

  // --- Hash block -------------------------------------------------------------
  /// [cal] hardware hash lookup/insert/delete service latency (bucket walk
  /// in SRAM-class memory), excluding crossbar transit.
  sim::Duration hash_op_latency = sim::Duration::nanos(90);

  // --- Fabric -------------------------------------------------------------
  /// [cal] PFE-to-PFE one-way latency through the interconnection fabric.
  sim::Duration fabric_latency = sim::Duration::micros(1);
  /// Fabric per-PFE injection bandwidth, Gbps.
  double fabric_gbps = 400.0;

  // --- Timers -------------------------------------------------------------
  /// [paper §5] "tens of high-resolution timers"; resolution allows
  /// hundreds of phase-offset threads.
  sim::Duration timer_resolution = sim::Duration::micros(1);

  /// Per-generation presets (paper §2.1/§8: the first generation had 16
  /// PPEs and 40 Gbps per PFE across multiple chips; the sixth has 160
  /// PPEs and 1.6 Tbps in a single chip; RMW engines "increased in each
  /// generation ... so that the memory bandwidth increases with the
  /// packet processing bandwidth"). The default-constructed Calibration
  /// corresponds to the testbed's generation-5 MPC10E model.
  static Calibration generation(int gen);
  /// Nominal per-PFE packet-processing bandwidth for `gen`, Gbps.
  static double generation_bandwidth_gbps(int gen);
};

}  // namespace trio
