// Trio's Shared Memory System (paper §2.3).
//
// A single unified byte-address space backed by three physical tiers —
// on-chip SRAM, off-chip DRAM behind an on-chip cache, and raw off-chip
// DRAM capacity — that differ only in latency. The space is interleaved
// across banks at 64-byte granularity; each bank has its own
// read-modify-write engine that serialises every access to its address
// range, which is what gives Trio consistent high-rate updates without
// cache-coherence traffic.
//
// Timing model: requests are applied *functionally* in arrival order (the
// engines are FIFO per bank, and simulation arrival order is the bank
// arrival order), while the reply time is computed analytically:
//
//   reply_at = max(arrive, bank_free) + service_cycles + tier_latency
//
// so queueing delay (backpressure through the crossbar) emerges when a
// bank is oversubscribed. Posted operations (writes, counter increments,
// vector adds) need no reply event at all, keeping the event count low.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/calibration.hpp"
#include "trio/xtxn.hpp"

namespace trio {

/// Layout of a policer record in shared memory (32 bytes): a token bucket
/// updated by the RMW engine on each PolicerCheck.
struct PolicerConfig {
  std::uint64_t rate_bytes_per_sec = 0;
  std::uint64_t burst_bytes = 0;
};

class SharedMemorySystem {
 public:
  SharedMemorySystem(sim::Simulator& simulator, const Calibration& cal);

  /// Issues a request arriving at the SMS now. The state change is applied
  /// immediately (arrival order == engine order); `cb`, if non-null, fires
  /// at the computed reply time. Returns the reply time.
  sim::Time issue(const XtxnRequest& req, XtxnCallback cb);

  // --- Direct (zero-time) access for control-plane setup and tests -------
  std::uint8_t peek_u8(std::uint64_t addr) const;
  std::uint64_t peek_u64(std::uint64_t addr) const;   // little-endian
  std::uint32_t peek_u32(std::uint64_t addr) const;   // little-endian
  void poke_u8(std::uint64_t addr, std::uint8_t v);
  void poke_u32(std::uint64_t addr, std::uint32_t v);
  void poke_u64(std::uint64_t addr, std::uint64_t v);
  void poke_bytes(std::uint64_t addr, const std::vector<std::uint8_t>& data);
  std::vector<std::uint8_t> peek_bytes(std::uint64_t addr,
                                       std::size_t len) const;

  /// Initialises a policer record at `addr` (32 bytes).
  void configure_policer(std::uint64_t addr, const PolicerConfig& config);

  // --- Region allocation (control plane) ---------------------------------
  /// Bump-allocates from on-chip SRAM / from DRAM. Throws when exhausted.
  std::uint64_t alloc_sram(std::size_t bytes, std::size_t align = 8);
  std::uint64_t alloc_dram(std::size_t bytes, std::size_t align = 8);

  std::uint64_t sram_base() const { return 0; }
  std::uint64_t dram_base() const { return cal_.sram_bytes; }

  // --- Per-tenant byte accounting (multi-tenant admission, docs/jobs.md) --
  // The SMS is the scarce shared resource tenants compete for: every slab,
  // job record and working buffer a tenant's aggregation state occupies is
  // charged against its account. Quotas are enforced at *reservation* time
  // (the JobManager reserves a tenant's worst-case footprint at admission),
  // never mid-run, so an admitted job can always finish.
  /// Sets tenant's byte quota (default: unlimited). Lowering a quota below
  /// current usage only affects future reservations.
  void set_tenant_quota(std::uint8_t tenant, std::uint64_t bytes);
  /// Charges `bytes` to the tenant; false (and no charge) if it would
  /// exceed the tenant's quota.
  bool reserve_tenant_bytes(std::uint8_t tenant, std::uint64_t bytes);
  /// Returns `bytes` to the tenant's account (clamped at zero).
  void release_tenant_bytes(std::uint8_t tenant, std::uint64_t bytes);
  std::uint64_t tenant_bytes_used(std::uint8_t tenant) const;
  std::uint64_t tenant_quota(std::uint8_t tenant) const;

  // --- Introspection ------------------------------------------------------
  std::uint64_t ops_processed() const { return ops_; }
  std::uint64_t add32_ops() const { return add32_ops_; }
  std::uint64_t busy_cycles(int bank) const { return banks_.at(bank).busy_cycles; }
  int bank_count() const { return static_cast<int>(banks_.size()); }
  int bank_of(std::uint64_t addr) const {
    return static_cast<int>((addr / cal_.bank_interleave) % banks_.size());
  }
  /// Earliest time a new request to `addr`'s bank would start service.
  sim::Time bank_free_at(std::uint64_t addr) const {
    return banks_[static_cast<std::size_t>(bank_of(addr))].free_at;
  }
  std::uint64_t dram_cache_hits() const { return cache_hits_; }
  std::uint64_t dram_cache_misses() const { return cache_misses_; }

  /// Hooks this SMS into a telemetry bundle (normally called by the owning
  /// Pfe). Registers `<prefix>ops`, `<prefix>rmw_contended`, the
  /// `<prefix>queue_delay_ns` histogram and one busy-cycle counter per
  /// bank; when tracing, each request becomes a service span on its
  /// bank's row of trace process `pid` plus a bank busy-cycles counter
  /// sample. Standalone (un-instrumented) construction stays zero-cost.
  void instrument(telemetry::Telemetry& telem, int pid,
                  const std::string& prefix);

  /// Alternative access discipline for the ablation benchmark: when true,
  /// RMW ops behave like a conventional lock-the-cache-line protocol — the
  /// requester must first *move* the line to itself (round trip), operate,
  /// and write back, tripling the bank occupancy (§2.3's "naive approach").
  void set_line_ownership_mode(bool on) { line_ownership_mode_ = on; }

 private:
  struct Bank {
    sim::Time free_at;
    std::uint64_t busy_cycles = 0;
    telemetry::Counter busy_ctr;
    std::string trace_name;  // set when tracing ("sms.bank03")
  };

  sim::Duration tier_latency(std::uint64_t addr, std::size_t touched_bytes);
  int service_cycles(const XtxnRequest& req) const;
  void apply(const XtxnRequest& req, XtxnReply& reply);
  void check_addr(std::uint64_t addr, std::size_t len) const;

  // Sparse backing store: 4 KiB pages allocated on first touch.
  static constexpr std::size_t kPageBytes = 4096;
  std::vector<std::uint8_t>& page(std::uint64_t addr);
  const std::vector<std::uint8_t>* page_if_present(std::uint64_t addr) const;

  struct TenantAccount {
    std::uint64_t quota = ~0ull;  // unlimited until set
    std::uint64_t used = 0;
  };

  sim::Simulator& sim_;
  Calibration cal_;
  std::vector<Bank> banks_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
  std::unordered_map<std::uint8_t, TenantAccount> tenant_accounts_;

  // Direct-mapped model of the off-chip DRAM's on-chip cache: line address
  // -> tag, used only to pick between cache and DRAM latency.
  std::vector<std::uint64_t> dram_cache_tags_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  std::uint64_t sram_brk_ = 64;  // keep address 0 unused
  std::uint64_t dram_brk_;
  std::uint64_t ops_ = 0;
  std::uint64_t add32_ops_ = 0;
  bool line_ownership_mode_ = false;

  telemetry::Counter ops_ctr_;
  telemetry::Counter contended_ctr_;
  telemetry::Histogram queue_delay_hist_;
  telemetry::Tracer* tracer_ = nullptr;  // null unless tracing enabled
  int trace_pid_ = 0;
};

}  // namespace trio
