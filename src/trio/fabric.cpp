#include "trio/fabric.hpp"

#include <stdexcept>

namespace trio {

Fabric::Fabric(sim::Simulator& simulator, const Calibration& cal,
               int num_pfes)
    : sim_(simulator), cal_(cal) {
  injection_free_.resize(static_cast<std::size_t>(num_pfes));
}

void Fabric::send(int src, net::PacketPtr pkt, Deliver deliver) {
  if (src < 0 || static_cast<std::size_t>(src) >= injection_free_.size()) {
    throw std::out_of_range("Fabric::send: bad source PFE");
  }
  ++packets_;
  bytes_ += pkt->size();
  auto& free_at = injection_free_[static_cast<std::size_t>(src)];
  const sim::Time start = sim_.now() > free_at ? sim_.now() : free_at;
  const auto ser_ns = static_cast<std::int64_t>(
      static_cast<double>(pkt->size()) * 8.0 / cal_.fabric_gbps + 0.5);
  free_at = start + sim::Duration(ser_ns);
  sim_.schedule_at(free_at + cal_.fabric_latency,
                   [deliver = std::move(deliver), pkt = std::move(pkt)]() mutable {
                     deliver(std::move(pkt));
                   });
}

}  // namespace trio
