#include "trio/reorder.hpp"

#include <stdexcept>

namespace trio {

std::uint64_t ReorderEngine::open(std::uint64_t flow) {
  const std::uint64_t id = next_ticket_++;
  tickets_.emplace(id, Ticket{flow, false, {}});
  flows_[flow].push_back(id);
  pending_gauge_.set(static_cast<std::int64_t>(tickets_.size()));
  return id;
}

void ReorderEngine::attach(std::uint64_t ticket, Output out) {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    throw std::logic_error("ReorderEngine::attach: unknown ticket");
  }
  if (it->second.closed) {
    throw std::logic_error("ReorderEngine::attach: ticket already closed");
  }
  it->second.outputs.push_back(std::move(out));
}

void ReorderEngine::close(std::uint64_t ticket) {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    throw std::logic_error("ReorderEngine::close: unknown ticket");
  }
  if (it->second.closed) {
    throw std::logic_error("ReorderEngine::close: ticket closed twice");
  }
  it->second.closed = true;
  flush(it->second.flow);
}

void ReorderEngine::flush(std::uint64_t flow) {
  auto fit = flows_.find(flow);
  if (fit == flows_.end()) return;
  auto& q = fit->second;
  while (!q.empty()) {
    auto tit = tickets_.find(q.front());
    if (!tit->second.closed) break;
    for (auto& out : tit->second.outputs) {
      ++released_;
      released_ctr_.inc();
      release_(std::move(out));
    }
    tickets_.erase(tit);
    q.pop_front();
  }
  if (q.empty()) flows_.erase(fit);
  pending_gauge_.set(static_cast<std::int64_t>(tickets_.size()));
}

}  // namespace trio
