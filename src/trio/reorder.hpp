// The Reorder Engine (paper §2.1): packets of the same flow must leave in
// arrival order even though their threads run to completion independently
// and may finish out of order.
//
// Each dispatched packet opens a *ticket* on its flow. A thread attaches
// zero or more output packets to its ticket (zero = packet consumed, e.g.
// an aggregation packet absorbed into a block; more than one = locally
// generated packets such as aggregation results). When the ticket at the
// front of the flow queue closes, its outputs — and those of any
// subsequently contiguous closed tickets — are released downstream.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "telemetry/metrics.hpp"

namespace trio {

class ReorderEngine {
 public:
  struct Output {
    net::PacketPtr pkt;
    std::uint32_t nexthop_id;
  };
  /// Downstream sink: the PFE's transmit path.
  using Release = std::function<void(Output)>;

  explicit ReorderEngine(Release release) : release_(std::move(release)) {}

  /// Opens a ticket on `flow`. Tickets on one flow release in open order.
  std::uint64_t open(std::uint64_t flow);

  /// Attaches an output to an open ticket.
  void attach(std::uint64_t ticket, Output out);

  /// Marks the ticket's processing complete; releases any now-unblocked
  /// contiguous outputs.
  void close(std::uint64_t ticket);

  std::size_t pending() const { return tickets_.size(); }
  std::uint64_t released() const { return released_; }

  /// Registers `<prefix>pending` (open-ticket gauge) and
  /// `<prefix>released` (released-output counter). Normally called by the
  /// owning Pfe; un-instrumented engines pay nothing.
  void instrument(telemetry::Registry& registry, const std::string& prefix) {
    pending_gauge_ = registry.gauge(prefix + "pending");
    released_ctr_ = registry.counter(prefix + "released");
  }

 private:
  struct Ticket {
    std::uint64_t flow;
    bool closed = false;
    std::vector<Output> outputs;
  };

  void flush(std::uint64_t flow);

  Release release_;
  std::unordered_map<std::uint64_t, Ticket> tickets_;
  std::unordered_map<std::uint64_t, std::deque<std::uint64_t>> flows_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t released_ = 0;
  telemetry::Gauge pending_gauge_;
  telemetry::Counter released_ctr_;
};

}  // namespace trio
