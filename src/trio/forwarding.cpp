#include "trio/forwarding.hpp"

#include <stdexcept>

namespace trio {

std::uint32_t ForwardingTable::add_nexthop(Nexthop nh) {
  nexthops_.push_back(std::move(nh));
  return static_cast<std::uint32_t>(nexthops_.size() - 1);
}

const Nexthop& ForwardingTable::nexthop(std::uint32_t id) const {
  if (id >= nexthops_.size()) {
    throw std::out_of_range("ForwardingTable::nexthop: bad id " +
                            std::to_string(id));
  }
  return nexthops_[id];
}

std::uint32_t ForwardingTable::mask_prefix(net::Ipv4Addr a, int len) {
  if (len <= 0) return 0;
  const std::uint32_t mask =
      len >= 32 ? ~0u : ~((1u << (32 - len)) - 1);
  return a.value() & mask;
}

void ForwardingTable::add_route(net::Ipv4Addr prefix, int prefix_len,
                                std::uint32_t nh_id) {
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("ForwardingTable::add_route: bad prefix len");
  }
  if (nh_id >= nexthops_.size()) {
    throw std::invalid_argument("ForwardingTable::add_route: bad nexthop");
  }
  routes_[prefix_len][mask_prefix(prefix, prefix_len)] = nh_id;
}

std::optional<std::uint32_t> ForwardingTable::lookup(net::Ipv4Addr dst) const {
  for (const auto& [len, table] : routes_) {
    auto it = table.find(mask_prefix(dst, len));
    if (it != table.end()) return it->second;
  }
  return std::nullopt;
}

std::uint32_t ForwardingTable::join_group(net::Ipv4Addr group,
                                          std::uint32_t member) {
  auto it = groups_.find(group.value());
  if (it == groups_.end()) {
    const std::uint32_t id = add_nexthop(NexthopMulticast{{member}});
    groups_.emplace(group.value(), id);
    add_route(group, 32, id);
    return id;
  }
  auto& mc = std::get<NexthopMulticast>(nexthops_[it->second]);
  mc.members.push_back(member);
  return it->second;
}

}  // namespace trio
