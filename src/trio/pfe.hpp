// A Packet Forwarding Engine (paper §2.1, Fig 2): the central processing
// element of the forwarding plane. Owns its PPEs, the Dispatch module
// (availability-based packet-to-PPE assignment), the Reorder Engine, the
// Shared Memory System, the hardware hash block, and the Memory &
// Queueing Subsystem's packet-tail store.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/calibration.hpp"
#include "trio/hash_table.hpp"
#include "trio/ppe.hpp"
#include "trio/program.hpp"
#include "trio/reorder.hpp"
#include "trio/sms.hpp"
#include "trio/timer.hpp"

namespace trio {

class Router;

/// Lightweight model of the Memory & Queueing Subsystem's packet buffer:
/// tails are read in <=64 B chunks and new tails written in <=256 B chunks
/// through a single service engine whose occupancy creates backpressure.
class Mqss {
 public:
  Mqss(sim::Simulator& simulator, const Calibration& cal);

  /// Read `len` bytes at `offset` within the packet's tail.
  sim::Time tail_read(const net::Packet& pkt, std::uint64_t offset,
                      std::uint32_t len, XtxnCallback cb);

  /// Timed write of a chunk of a new packet's tail (the data itself stays
  /// with the emitting program).
  sim::Time pmem_write(std::size_t len, XtxnCallback cb);

  std::uint64_t tail_bytes_read() const { return tail_bytes_read_; }
  std::uint64_t pmem_bytes_written() const { return pmem_bytes_written_; }

  /// Byte counters under `<prefix>`; when tracing, each chunk becomes a
  /// service span on the PFE's "mqss" row. Called by the owning Pfe.
  void instrument(telemetry::Telemetry& telem, int pid,
                  const std::string& prefix);

 private:
  sim::Time service(std::size_t len, sim::Duration latency,
                    const char* op_name);

  sim::Simulator& sim_;
  const Calibration& cal_;
  sim::Time engine_free_;
  std::uint64_t tail_bytes_read_ = 0;
  std::uint64_t pmem_bytes_written_ = 0;
  telemetry::Counter tail_bytes_ctr_;
  telemetry::Counter pmem_bytes_ctr_;
  telemetry::Tracer* tracer_ = nullptr;
  int trace_pid_ = 0;
};

/// Maps an egress frame to the tenant class it belongs to (0 = the
/// default / untenanted class). Installed by the jobs layer
/// (src/jobs/, docs/jobs.md).
using TenantClassifier = std::function<std::uint8_t(const net::Packet&)>;

/// MQSS per-tenant weighted egress scheduler (paper §2.2's shaped queues,
/// put to work for multi-tenant isolation — docs/jobs.md).
///
/// One instance guards one front-panel port. Each tenant gets its own
/// FIFO of bounded depth; the scheduler drains them with weighted deficit
/// round robin, one frame per wire-free event, so a bursting tenant can
/// delay a competitor by at most one frame plus its own weighted share.
/// With the scheduler absent (the default), egress is the historical
/// single FIFO of the attached link.
class MqssTenantScheduler {
 public:
  using SendFn = std::function<void(net::PacketPtr)>;

  /// `tx` is the port's wire (consulted for busy_until()); `send` performs
  /// the actual transmit (the router's egress path, so kill semantics and
  /// tx counters apply at true send time, not enqueue time).
  MqssTenantScheduler(sim::Simulator& simulator, net::LinkEndpoint& tx,
                      SendFn send, std::size_t queue_frames = 256);

  /// Relative drain weight (>=1; default 1). Creates the tenant's queue,
  /// fixing its round-robin position — register tenants in admission
  /// order for deterministic schedules.
  void set_weight(std::uint8_t tenant, std::uint32_t weight);
  std::uint32_t weight(std::uint8_t tenant) const;

  /// Queues a frame on `tenant`'s FIFO. False (frame dropped, counted
  /// against the tenant) when that FIFO is full.
  bool enqueue(std::uint8_t tenant, net::PacketPtr pkt);

  std::uint64_t drops(std::uint8_t tenant) const;
  std::uint64_t sent(std::uint8_t tenant) const;
  std::size_t backlog() const { return backlog_; }

 private:
  struct TenantQueue {
    std::uint8_t tenant;
    std::uint32_t weight = 1;
    std::int64_t deficit = 0;
    std::deque<net::PacketPtr> fifo;
    std::uint64_t drops = 0;
    std::uint64_t sent = 0;
  };

  // One DRR quantum per weight unit: enough for a full-size frame so a
  // weight-1 tenant still progresses one frame per round.
  static constexpr std::int64_t kQuantumBytes = 2048;

  TenantQueue& queue_of(std::uint8_t tenant);
  const TenantQueue* find_queue(std::uint8_t tenant) const;
  void arm(sim::Time at);
  void drain();

  sim::Simulator& sim_;
  net::LinkEndpoint& tx_;
  SendFn send_;
  std::size_t queue_frames_;
  std::vector<TenantQueue> queues_;  // round-robin order = creation order
  std::size_t rr_ = 0;
  std::size_t backlog_ = 0;
  bool armed_ = false;
};

class Pfe {
 public:
  Pfe(sim::Simulator& simulator, const Calibration& cal, Router& router,
      int index);

  /// Packet entering this PFE for processing (from a front-panel port or
  /// from the fabric in hierarchical-aggregation mode).
  void ingress(net::PacketPtr pkt);

  /// Program selection. The factory sees the arriving packet; returning
  /// nullptr drops it. Defaults to the router's IP forwarding program.
  void set_program_factory(ProgramFactory factory) {
    program_factory_ = std::move(factory);
  }
  /// The currently installed factory (empty before any install). Apps that
  /// stack on one PFE capture this and fall through to it for packets they
  /// don't claim (netrpc ahead of trioml ahead of plain forwarding).
  const ProgramFactory& program_factory() const { return program_factory_; }

  /// Spawns an internal (timer / event) thread on any available PPE.
  /// When every thread is busy the launch is queued and served ahead of
  /// the packet dispatch queue at the next thread-free event (timer
  /// threads must make progress on a saturated PFE — §5 relies on it).
  /// Returns false only when the internal queue overflows.
  bool spawn_internal(std::unique_ptr<PpeProgram> program,
                      std::uint32_t timer_index);

  /// Routes an XTXN to its target block (SMS, hash, MQSS). `pkt` supplies
  /// the tail for kTailRead. Returns the reply time; `cb` (optional) runs
  /// then.
  sim::Time issue_xtxn(const XtxnRequest& req, const net::PacketPtr& pkt,
                       XtxnCallback cb);

  /// Called by PPE threads: attach an output to a reorder ticket, or send
  /// directly when the thread has no ticket (internally generated packet).
  void emit(std::optional<std::uint64_t> ticket, ReorderEngine::Output out);
  void close_ticket(std::uint64_t ticket);
  void on_thread_free();

  SharedMemorySystem& sms() { return sms_; }
  HwHashTable& hash_table() { return hash_; }
  Mqss& mqss() { return mqss_; }
  TimerWheel& timers() { return *timers_; }
  Router& router() { return router_; }
  const Calibration& cal() const { return cal_; }
  int index() const { return index_; }

  int free_threads() const;
  int active_threads() const;
  std::uint64_t packets_in() const { return packets_in_; }
  std::uint64_t packets_dropped_dispatch() const { return dispatch_drops_; }
  std::uint64_t instructions_issued() const;
  std::size_t dispatch_queue_depth() const { return dispatch_queue_.size(); }

  /// This PFE's trace process id and tracer (null when tracing is off);
  /// used by the PPEs and by applications that add their own rows.
  int trace_pid() const { return trace_pid_; }
  telemetry::Tracer* tracer() { return tracer_; }
  /// Metric name prefix for this PFE ("pfe0.").
  const std::string& metric_prefix() const { return metric_prefix_; }

 private:
  void try_dispatch();
  Ppe* pick_ppe();
  void note_dispatch_depth();
  void note_reorder_depth();

  sim::Simulator& sim_;
  Calibration cal_;
  Router& router_;
  int index_;
  SharedMemorySystem sms_;
  HwHashTable hash_;
  Mqss mqss_;
  ReorderEngine reorder_;
  std::vector<std::unique_ptr<Ppe>> ppes_;
  std::unique_ptr<TimerWheel> timers_;
  ProgramFactory program_factory_;

  struct Pending {
    net::PacketPtr pkt;
    std::uint64_t ticket;
  };
  std::deque<Pending> dispatch_queue_;

  struct PendingInternal {
    std::unique_ptr<PpeProgram> program;
    std::uint32_t timer_index;
  };
  std::deque<PendingInternal> internal_queue_;
  static constexpr std::size_t kInternalQueueLimit = 512;

  std::uint64_t packets_in_ = 0;
  std::uint64_t dispatch_drops_ = 0;

  std::string metric_prefix_;
  telemetry::Counter packets_in_ctr_;
  telemetry::Counter packets_dispatched_ctr_;
  telemetry::Counter dispatch_drops_ctr_;
  telemetry::Gauge dispatch_depth_gauge_;
  telemetry::Tracer* tracer_ = nullptr;
  int trace_pid_ = 0;
};

/// Flow hash for the Dispatch module / Reorder Engine: IPv4 5-tuple when
/// the frame is IPv4 (plus ports for UDP/TCP), else a constant flow.
std::uint64_t compute_flow_hash(const net::Buffer& frame);

}  // namespace trio
