#include "netrpc/wire_format.hpp"

#include <stdexcept>
#include <vector>

namespace netrpc {

void NetRpcHeader::write(net::Buffer& buf, std::size_t off) const {
  buf.set_u8(off, static_cast<std::uint8_t>(op));
  buf.set_u8(off + 1, tenant);
  buf.set_u8(off + 2, client_id);
  buf.set_u8(off + 3, server_id);
  buf.set_u8(off + 4, static_cast<std::uint8_t>(policy));
  buf.set_u8(off + 5, flags);
  buf.set_u8(off + 6, value_cnt);
  buf.set_u8(off + 7, server_cnt);
  buf.set_u32(off + 8, rpc_id);
  buf.set_u64(off + 12, key);
}

NetRpcHeader NetRpcHeader::parse(const net::Buffer& buf, std::size_t off) {
  NetRpcHeader h;
  h.op = static_cast<Op>(buf.u8(off));
  h.tenant = buf.u8(off + 1);
  h.client_id = buf.u8(off + 2);
  h.server_id = buf.u8(off + 3);
  h.policy = static_cast<MergePolicy>(buf.u8(off + 4));
  h.flags = buf.u8(off + 5);
  h.value_cnt = buf.u8(off + 6);
  h.server_cnt = buf.u8(off + 7);
  h.rpc_id = buf.u32(off + 8);
  h.key = buf.u64(off + 12);
  return h;
}

net::Buffer build_netrpc_frame(const net::MacAddr& eth_src,
                               const net::MacAddr& eth_dst,
                               net::Ipv4Addr ip_src, net::Ipv4Addr ip_dst,
                               std::uint16_t udp_src, std::uint16_t udp_dst,
                               const NetRpcHeader& hdr,
                               std::span<const std::uint32_t> values,
                               std::uint16_t value_words) {
  if (value_words > kMaxValueWords || values.size() > value_words) {
    throw std::invalid_argument("netrpc frame: too many value words");
  }
  std::vector<std::uint8_t> payload(NetRpcHeader::kSize + value_words * 4);
  net::Buffer frame = net::build_udp_frame(eth_src, eth_dst, ip_src, ip_dst,
                                           udp_src, udp_dst, payload);
  NetRpcHeader h = hdr;
  h.value_cnt = static_cast<std::uint8_t>(value_words);
  h.write(frame, kNetRpcHdrOff);
  for (std::size_t i = 0; i < values.size(); ++i) {
    frame.set_u32le(kValueOff + i * 4, values[i]);
  }
  return frame;
}

std::uint32_t read_value(const net::Buffer& frame, std::size_t i) {
  return frame.u32le(kValueOff + i * 4);
}

void write_value(net::Buffer& frame, std::size_t i, std::uint32_t v) {
  frame.set_u32le(kValueOff + i * 4, v);
}

bool is_netrpc_frame(const net::Buffer& frame) {
  if (frame.size() < kValueOff) return false;
  const auto eth = net::EthernetHeader::parse(frame, 0);
  if (eth.ether_type != net::EthernetHeader::kEtherTypeIpv4) return false;
  const auto ip = net::Ipv4Header::parse(frame, net::UdpFrameLayout::kIpOff);
  if (ip.protocol != net::Ipv4Header::kProtoUdp) return false;
  const auto udp = net::UdpHeader::parse(frame, net::UdpFrameLayout::kUdpOff);
  return udp.dst_port == kRequestUdpPort || udp.dst_port == kResponseUdpPort;
}

}  // namespace netrpc
