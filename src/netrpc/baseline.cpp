#include "netrpc/baseline.hpp"

#include <algorithm>
#include <stdexcept>

namespace netrpc {

namespace {

// PHV metadata slots used by the RPC merge program.
enum Meta : std::size_t {
  kMetaOp = 0,
  kMetaSlot = 1,   // client_id * slots_per_client + (rpc_id & 15)
  kMetaLast = 2,   // 1 when this response completed its fan-out
  kMetaEgress = 3,
  kMetaCount = 4,  // meta size
};

}  // namespace

PisaRpcSwitch::PisaRpcSwitch(pisa::Switch& sw, PisaRpcConfig config,
                             std::vector<int> client_ports,
                             std::vector<int> server_ports)
    : sw_(sw),
      config_(config),
      client_ports_(std::move(client_ports)),
      server_ports_(std::move(server_ports)) {
  if (config_.policy == MergePolicy::kMajority) {
    throw std::invalid_argument(
        "PisaRpcSwitch: majority merge needs two dependent stateful "
        "accesses per word per packet — impossible in one PISA traversal "
        "(requires recirculation); use the Trio datapath");
  }
  if (config_.value_words == 0 || config_.value_words > kMaxValueWords) {
    throw std::invalid_argument("PisaRpcSwitch: value_words out of range");
  }
  if (client_ports_.size() != config_.client_cnt) {
    throw std::invalid_argument("PisaRpcSwitch: client port table mismatch");
  }
  install();
}

void PisaRpcSwitch::install() {
  pisa::Pipeline& pipe = sw_.pipeline(0);
  const std::size_t cells =
      std::size_t(config_.client_cnt) * config_.slots_per_client;

  pipe.set_parser([this](pisa::Phv& phv) {
    const net::Buffer& frame = phv.packet->frame();
    if (!is_netrpc_frame(frame)) {
      phv.drop = true;  // only RPC traffic is modelled on the baseline
      return false;
    }
    const NetRpcHeader hdr = NetRpcHeader::parse(frame, kNetRpcHdrOff);
    if (hdr.tenant != config_.tenant) {
      phv.drop = true;
      return false;
    }
    ++packets_;
    phv.meta.assign(kMetaCount, 0);
    phv.meta[kMetaOp] = static_cast<std::uint64_t>(hdr.op);
    phv.meta[kMetaSlot] =
        std::uint64_t(hdr.client_id) * config_.slots_per_client +
        (hdr.rpc_id & (config_.slots_per_client - 1));
    switch (hdr.op) {
      case Op::kGetReq:
      case Op::kPutReq:
      case Op::kRpcReq:
        phv.meta[kMetaEgress] =
            std::uint64_t(server_ports_.at(hdr.server_id));
        return true;
      case Op::kGetResp:
      case Op::kPutResp:
      case Op::kMergedResp:
        phv.meta[kMetaEgress] =
            std::uint64_t(client_ports_.at(hdr.client_id));
        return true;
      case Op::kRpcResp:  // the merge path; egress decided at the deparser
        phv.meta[kMetaEgress] =
            std::uint64_t(client_ports_.at(hdr.client_id));
        return true;
    }
    phv.drop = true;
    return false;
  });

  // Stage 0: per-slot fan-in counter. The completing response reads the
  // count and self-resets the cell (SwitchML's bitmap idiom).
  pisa::Stage& st0 = pipe.stage(0);
  count_array_ = st0.add_register_array(cells);
  st0.set_logic([this](pisa::Phv& phv, pisa::Stage& st) {
    if (phv.meta[kMetaOp] != std::uint64_t(Op::kRpcResp)) return;
    const auto slot = static_cast<std::size_t>(phv.meta[kMetaSlot]);
    const NetRpcHeader hdr =
        NetRpcHeader::parse(phv.packet->frame(), kNetRpcHdrOff);
    bool last = false;
    st.stateful_rmw(count_array_, slot, [&](std::uint32_t old) {
      if (old + 1 >= hdr.server_cnt) {
        last = true;
        return std::uint32_t{0};
      }
      return old + 1;
    });
    phv.meta[kMetaLast] = last ? 1 : 0;
  });

  // Value stages: word i lives in array (i % per_stage) of stage
  // 1 + i / per_stage — each packet touches each array at most once.
  const int wps = (config_.value_words + config_.value_stages - 1) /
                  config_.value_stages;
  value_arrays_.resize(static_cast<std::size_t>(config_.value_stages));
  for (int s = 0; s < config_.value_stages; ++s) {
    pisa::Stage& st = pipe.stage(1 + s);
    auto& arrays = value_arrays_[static_cast<std::size_t>(s)];
    for (int j = 0; j < wps; ++j) {
      arrays.push_back(st.add_register_array(cells));
    }
    st.set_logic([this, s, wps](pisa::Phv& phv, pisa::Stage& stage) {
      if (phv.drop || phv.meta[kMetaOp] != std::uint64_t(Op::kRpcResp)) {
        return;
      }
      const auto slot = static_cast<std::size_t>(phv.meta[kMetaSlot]);
      const bool last = phv.meta[kMetaLast] != 0;
      net::Buffer& frame = phv.packet->frame();
      for (int j = 0; j < wps; ++j) {
        const int wi = s * wps + j;
        if (wi >= config_.value_words) break;
        const std::uint32_t v =
            read_value(frame, static_cast<std::size_t>(wi));
        std::uint32_t out = 0;
        stage.stateful_rmw(
            value_arrays_[static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(j)],
            slot, [&](std::uint32_t old) {
              // The cell's rest state is 0; min folds the first arrival
              // in via the count==implicit "is this the first" trick:
              // old==0 on first touch only if values are nonzero, so
              // min seeds with the arriving value when the cell is 0.
              // (Documented limit: an all-zero min input is indistinct
              // from an empty cell — the Trio datapath presets 0xff.)
              std::uint32_t merged;
              if (config_.policy == MergePolicy::kMin) {
                merged = old == 0 ? v : std::min(old, v);
              } else {
                merged = old + v;
              }
              out = merged;
              return last ? std::uint32_t{0} : merged;  // read-out + reset
            });
        if (last) {
          write_value(frame, static_cast<std::size_t>(wi), out);
        }
      }
    });
  }

  pipe.set_deparser([this](pisa::Phv&& phv) {
    if (phv.drop) return;
    if (phv.meta[kMetaOp] == std::uint64_t(Op::kRpcResp)) {
      if (phv.meta[kMetaLast] == 0) {
        // Absorbed into the registers; the client hears nothing until
        // the fan-out completes — and never does if a replica is down.
        ++absorbed_;
        return;
      }
      net::Buffer& frame = phv.packet->frame();
      NetRpcHeader hdr = NetRpcHeader::parse(frame, kNetRpcHdrOff);
      hdr.op = Op::kMergedResp;
      hdr.write(frame, kNetRpcHdrOff);
      ++merges_completed_;
    }
    phv.egress_port = static_cast<int>(phv.meta[kMetaEgress]);
    sw_.egress(std::move(phv));
  });
}

}  // namespace netrpc
