// Shared-memory layout of one tenant's NetRPC service state.
//
// Everything the datapath touches is *fixed geometry* decided at service
// setup — direct-mapped tables the microcode indexes with shifts and
// masks — because a PPE thread can address memory but cannot run an
// allocator. Nothing is ever reclaimed by the datapath; slots are reused
// in place (pending slots reset on completion, cache slots overwritten on
// eviction), so the control plane's one-time allocation is the service's
// worst case footprint.
#pragma once

#include <cstddef>
#include <cstdint>

#include "netrpc/wire_format.hpp"

namespace netrpc {

// --- Pending-merge slots (one per outstanding fan-out RPC) ---------------
// Slot for (client, rpc) = P_BASE + (client_id * kPendingSlotsPerClient +
// rpc_id % kPendingSlotsPerClient) * kPendingSlotBytes. The owner word is
// (rpc_id << 1) | done. The client never has two live calls congruent mod
// kPendingSlotsPerClient (RpcClient's id allocator skips occupied slots),
// and call ids are monotone per client, so the datapath classifies every
// RPC_RESP against the owner: the live call merges, a response for a
// completed call (done set, or a larger id owning the slot) drops without
// writing, and a newer call claims a finished slot by overwriting the
// owner alone — every done transition restores the preset arrived/merge
// state, so claims need no reset and cannot race.
constexpr std::size_t kPendingSlotsPerClient = 16;  // power of two
constexpr std::size_t kPendingSlotBytes = 256;
constexpr std::size_t kPendingOwnerOff = 0;    // u64: (rpc_id << 1) | done
constexpr std::size_t kPendingArrivedOff = 8;  // u32: responses merged so far
constexpr std::size_t kPendingMergeOff = 16;   // merge buffer (see below)

// Merge buffer widths: sum and min need one value plane; majority needs
// the split-plane Boyer-Moore buffer (candidates + counts).
constexpr std::size_t merge_buffer_bytes(MergePolicy policy,
                                         std::size_t value_words) {
  return value_words * 4 * (policy == MergePolicy::kMajority ? 2 : 1);
}

// --- Hot-key cache slots (direct-mapped by key hash) ---------------------
// Slot for key = C_BASE + (key % kCacheSlots) * kCacheSlotBytes. Presence
// (and LRU reference bits) live in the hardware hash table: key -> value
// address; the slot itself holds the owning key so fills can evict the
// previous occupant's hash entry.
constexpr std::size_t kCacheSlots = 64;  // power of two
constexpr std::size_t kCacheSlotBytes = 128;
constexpr std::size_t kCacheOwnerOff = 0;  // u64: key occupying the slot
constexpr std::size_t kCacheValueOff = 8;  // value_words * 4 bytes

static_assert(kCacheValueOff + kMaxValueWords * 4 <= kCacheSlotBytes);
static_assert(kPendingMergeOff + 2 * kMaxValueWords * 4 <= kPendingSlotBytes);

// --- Datapath Packet/Byte counters (16 B each; CounterIncPhys word
// addressing — adjacent counters are 2 words apart) -----------------------
enum CounterIdx : std::size_t {
  kCtrCacheHit = 0,    // GETs answered from the SMS cache
  kCtrCacheMiss = 1,   // GETs passed through to the home server
  kCtrCacheFill = 2,   // GET responses absorbed into the cache in transit
  kCtrInvalidate = 3,  // PUTs that actually removed a cache entry
  kCtrMerged = 4,      // fan-out responses consumed by an in-flight merge
  kCtrCompleted = 5,   // merges that reached full fan-in and emitted
  kCtrRelayed = 6,     // responses relayed to clients unmodified
  kCtrToServer = 7,    // requests forwarded toward a server
  kCtrBad = 8,         // malformed / mis-tenanted packets dropped
  kCtrDegraded = 9,    // aged merges emitted degraded (scan thread)
  kCtrCacheAged = 10,  // cache entries aged out by the REF scan
  kCtrStale = 11,      // responses that lost the pending-slot ownership
                       // race (displaced stragglers dropped, residue
                       // reclaimed by a newer call)
  kCounterCount = 12,
};
constexpr std::size_t kCounterBytes = 16;

/// One tenant's RPC service, fixed at admission (like a trioml JobSetup):
/// a single merge policy and value width per service keeps every SMS slot
/// the same shape, which is what lets the aging scan and the datapath
/// address state without per-request metadata.
struct ServiceConfig {
  std::uint8_t tenant = 1;
  MergePolicy policy = MergePolicy::kSum;
  std::uint8_t value_words = 8;  // <= kMaxValueWords
  std::uint8_t server_cnt = 3;   // fan-out width N (merge completes at N)
  std::uint8_t client_cnt = 1;
  std::uint16_t window = 8;      // per-client outstanding cap
};

/// SMS addresses of one configured service (control-plane bookkeeping).
struct ServiceLayout {
  std::uint64_t pending_base = 0;  // client_cnt * 16 slots * 256 B
  std::uint64_t cache_base = 0;    // kCacheSlots * kCacheSlotBytes
  std::uint64_t client_nh_base = 0;  // client_cnt u64 nexthop ids
  std::uint64_t server_nh_base = 0;  // server_cnt u64 nexthop ids
  std::uint64_t counter_base = 0;    // kCounterCount 16-byte counters

  std::uint64_t pending_slot(std::uint8_t client, std::uint32_t rpc_id) const {
    return pending_base +
           (std::uint64_t(client) * kPendingSlotsPerClient +
            rpc_id % kPendingSlotsPerClient) *
               kPendingSlotBytes;
  }
  std::uint64_t cache_slot(std::uint64_t key) const {
    return cache_base + key % kCacheSlots * kCacheSlotBytes;
  }
  std::uint64_t counter_addr(CounterIdx idx) const {
    return counter_base + idx * kCounterBytes;
  }
};

constexpr std::uint64_t pending_bytes(const ServiceConfig& cfg) {
  return std::uint64_t(cfg.client_cnt) * kPendingSlotsPerClient *
         kPendingSlotBytes;
}

/// Worst-case SMS bytes the service occupies on the aggregation PFE —
/// charged against the tenant's quota at admission (docs/jobs.md
/// discipline: reserve up front, never starve mid-run).
constexpr std::uint64_t service_worst_case_bytes(const ServiceConfig& cfg) {
  return pending_bytes(cfg) + kCacheSlots * kCacheSlotBytes +
         std::uint64_t(cfg.client_cnt + cfg.server_cnt) * 8 +
         kCounterCount * kCounterBytes;
}

}  // namespace netrpc
