#include "netrpc/app.hpp"

#include <deque>
#include <stdexcept>

#include "telemetry/trace.hpp"
#include "trio/router.hpp"

namespace netrpc {

namespace {

std::uint64_t le64(const std::vector<std::uint8_t>& v, std::size_t off) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= std::uint64_t(v[off + i]) << (8 * i);
  return x;
}

std::uint32_t le32(const std::vector<std::uint8_t>& v, std::size_t off) {
  return std::uint32_t(v[off]) | std::uint32_t(v[off + 1]) << 8 |
         std::uint32_t(v[off + 2]) << 16 | std::uint32_t(v[off + 3]) << 24;
}

/// The merge buffer's identity element, policy-dependent: what the control
/// plane presets at setup and every reset restores (the datapath's
/// SmsFill32 arms mirror this exactly).
std::vector<std::uint8_t> merge_preset_bytes(const ServiceConfig& cfg) {
  const std::size_t val_bytes = std::size_t(cfg.value_words) * 4;
  switch (cfg.policy) {
    case MergePolicy::kMin:
      return std::vector<std::uint8_t>(val_bytes, 0xff);
    case MergePolicy::kMajority:
      return std::vector<std::uint8_t>(2 * val_bytes, 0);
    case MergePolicy::kSum:
    default:
      return std::vector<std::uint8_t>(val_bytes, 0);
  }
}

/// Wraps the tenant's compiled datapath to record per-packet latency when
/// the thread ends (the microcode itself has no notion of wall time).
class NetRpcThread : public microcode::MicrocodeThread {
 public:
  NetRpcThread(NetRpcApp& app,
               std::shared_ptr<const microcode::CompiledProgram> program)
      : MicrocodeThread(std::move(program)), app_(app) {}

  trio::Action step(trio::ThreadContext& ctx) override {
    trio::Action a = MicrocodeThread::step(ctx);
    if (std::holds_alternative<trio::ActExit>(a) && !done_ &&
        ctx.packet != nullptr) {
      done_ = true;
      const sim::Time now = app_.pfe().router().simulator().now();
      const sim::Duration in_trio = now - ctx.packet->arrival_time();
      app_.stats().pfe_latency_us.add(in_trio.us());
      app_.pfe_latency_hist().record(in_trio.ns());
    }
    return a;
  }

 private:
  NetRpcApp& app_;
  bool done_ = false;
};

/// Walks every tenant's pending-merge slots; a slot whose arrival count
/// is nonzero and unchanged since the previous pass has stalled (server
/// crash, straggler past patience) — the partial merge is completed
/// *degraded*: emitted to the client with server_cnt = contributors and
/// the degraded flag, and the slot reset for reuse. This is the
/// run-to-completion capability the PISA baseline cannot express (no
/// timer-spawned threads), and the core of the fig_netrpc tail argument.
class PendingScanProgram : public trio::PpeProgram {
 public:
  explicit PendingScanProgram(NetRpcApp& app) : app_(app) {
    tenants_ = app.configured_tenants();
  }

  trio::Action step(trio::ThreadContext& ctx) override {
    if (!pending_.empty()) {
      trio::Action a = std::move(pending_.front());
      pending_.pop_front();
      return a;
    }
    return do_step(ctx);
  }

 private:
  enum class State { kNextSlot, kMeta, kMerge };

  trio::Action do_step(trio::ThreadContext& ctx) {
    switch (state_) {
      case State::kNextSlot: {
        while (true) {
          if (ti_ >= tenants_.size()) return trio::ActExit{1};
          NetRpcApp::Service* svc = app_.service_mut(tenants_[ti_]);
          if (svc == nullptr) {  // removed since the pass began
            ++ti_;
            slot_ = 0;
            continue;
          }
          const std::size_t slots = svc->arrived_snapshot.size();
          if (slot_ >= slots) {
            ++ti_;
            slot_ = 0;
            continue;
          }
          trio::ActSyncXtxn rd;
          rd.req.op = trio::XtxnOp::kRead;
          rd.req.addr = svc->layout.pending_base + slot_ * kPendingSlotBytes;
          rd.req.len = 16;  // owner u64 + arrived u32 (+ pad)
          rd.instructions = 4;
          state_ = State::kMeta;
          return rd;
        }
      }

      case State::kMeta: {
        NetRpcApp::Service* svc = app_.service_mut(tenants_[ti_]);
        if (svc == nullptr) {  // torn down while the slot read was in flight
          ++ti_;
          slot_ = 0;
          state_ = State::kNextSlot;
          return trio::ActContinue{1};
        }
        owner_ = le64(ctx.reply.data, 0);
        arrived_ = le32(ctx.reply.data, 8);
        std::uint32_t& snap = svc->arrived_snapshot[slot_];
        state_ = State::kNextSlot;
        if (arrived_ == 0 || (owner_ & 1) != 0) {
          // Idle, or a done-marked slot mid-reset (the completing
          // thread's posted writes race this read): nothing to age.
          snap = 0;
          ++slot_;
          return trio::ActContinue{1};
        }
        if (arrived_ != snap) {  // still making progress; note and move on
          snap = arrived_;
          ++slot_;
          return trio::ActContinue{1};
        }
        if (arrived_ >= svc->config.server_cnt) {
          // A completed merge left a stale count behind (should not
          // happen — the datapath resets on completion); reclaim.
          queue_reset(*svc);
          ++app_.stats().pending_reset;
          snap = 0;
          ++slot_;
          return trio::ActContinue{1};
        }
        // Stalled partial merge: fetch the candidates plane and give up
        // on the missing servers.
        trio::ActSyncXtxn rd;
        rd.req.op = trio::XtxnOp::kRead;
        rd.req.addr = svc->layout.pending_base + slot_ * kPendingSlotBytes +
                      kPendingMergeOff;
        rd.req.len = std::size_t(svc->config.value_words) * 4;
        rd.instructions = 4;
        state_ = State::kMerge;
        return rd;
      }

      case State::kMerge: {
        NetRpcApp::Service* svc = app_.service_mut(tenants_[ti_]);
        if (svc == nullptr) {  // torn down between the meta and merge reads
          ++ti_;
          slot_ = 0;
          state_ = State::kNextSlot;
          return trio::ActContinue{1};
        }
        const ServiceConfig& cfg = svc->config;
        const auto client =
            static_cast<std::uint8_t>(slot_ / kPendingSlotsPerClient);

        std::vector<std::uint32_t> values(cfg.value_words);
        for (std::size_t i = 0; i < values.size(); ++i) {
          values[i] = le32(ctx.reply.data, i * 4);
        }
        NetRpcHeader hdr;
        hdr.op = Op::kMergedResp;
        hdr.tenant = cfg.tenant;
        hdr.client_id = client;
        hdr.policy = cfg.policy;
        hdr.flags = kFlagDegraded;
        hdr.server_cnt = static_cast<std::uint8_t>(arrived_);
        hdr.rpc_id = static_cast<std::uint32_t>(owner_ >> 1);
        net::MacAddr dst_mac = svc->service_mac;
        dst_mac[5] = static_cast<std::uint8_t>(client + 1);
        net::Buffer frame = build_netrpc_frame(
            svc->service_mac, dst_mac, svc->service_ip,
            svc->client_ips[client], kRequestUdpPort, kResponseUdpPort, hdr,
            values, cfg.value_words);

        queue_reset(*svc);
        trio::ActAsyncXtxn ctr;
        ctr.req.op = trio::XtxnOp::kCounterInc;
        ctr.req.addr = svc->layout.counter_addr(kCtrDegraded);
        ctr.req.arg0 = frame.size();
        ctr.instructions = 0;
        pending_.push_back(ctr);

        trio::ActEmitPacket emit;
        emit.pkt = net::Packet::make(std::move(frame));
        emit.nexthop_id = svc->client_nh[client];
        emit.instructions = 2;
        pending_.push_back(emit);

        ++app_.stats().degraded_emitted;
        svc->arrived_snapshot[slot_] = 0;
        ++slot_;
        state_ = State::kNextSlot;
        // The meta/merge reads and frame build: charged as one composite
        // step, the queued resets/emit follow as the engine drains them.
        return trio::ActContinue{10};
      }
    }
    return trio::ActExit{1};
  }

  /// Posted writes restoring the slot to its preset (identity) state.
  /// The owner word keeps the call id and gains the done marker, so the
  /// call's stragglers — which stall_for delays but never drops — read
  /// their own id as completed and drop instead of re-claiming the slot.
  void queue_reset(const NetRpcApp::Service& svc) {
    const std::uint64_t slot_addr =
        svc.layout.pending_base + slot_ * kPendingSlotBytes;
    trio::ActAsyncXtxn meta;
    meta.req.op = trio::XtxnOp::kWrite;
    meta.req.addr = slot_addr;
    meta.req.data.assign(16, 0);  // owner (done-marked) + arrived
    const std::uint64_t done = owner_ | 1;
    for (int i = 0; i < 8; ++i) {
      meta.req.data[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(done >> (8 * i));
    }
    meta.instructions = 1;
    pending_.push_back(meta);

    trio::ActAsyncXtxn buf;
    buf.req.op = trio::XtxnOp::kWrite;
    buf.req.addr = slot_addr + kPendingMergeOff;
    buf.req.data = merge_preset_bytes(svc.config);
    buf.instructions = 1;
    pending_.push_back(buf);
  }

  NetRpcApp& app_;
  std::vector<std::uint8_t> tenants_;
  std::size_t ti_ = 0;
  std::size_t slot_ = 0;
  State state_ = State::kNextSlot;
  std::uint64_t owner_ = 0;
  std::uint32_t arrived_ = 0;
  std::deque<trio::Action> pending_;
};

/// Ages the hot-key cache: a check-and-clear REF scan per tenant (keys
/// looked up since the last pass keep their entry — the hash block's REF
/// bit is the cache's LRU approximation), then one HashDelete per aged
/// key and a zeroed slot owner so the slot reads as empty to fills. When
/// the jobs layer has key partitions enabled, the scan covers exactly the
/// tenant's slice, leaving other tenants' REF state untouched.
class CacheScanProgram : public trio::PpeProgram {
 public:
  explicit CacheScanProgram(NetRpcApp& app) : app_(app) {
    tenants_ = app.configured_tenants();
  }

  trio::Action step(trio::ThreadContext& ctx) override {
    if (!pending_.empty()) {
      trio::Action a = std::move(pending_.front());
      pending_.pop_front();
      return a;
    }
    return do_step(ctx);
  }

 private:
  enum class State { kScan, kScanReply, kDeleteReply };

  trio::Action do_step(trio::ThreadContext& ctx) {
    switch (state_) {
      case State::kScan: {
        if (ti_ >= tenants_.size()) return trio::ActExit{1};
        const NetRpcApp::Service* svc = app_.service(tenants_[ti_]);
        if (svc == nullptr) {
          ++ti_;
          return trio::ActContinue{1};
        }
        const std::uint32_t parts =
            std::max<std::uint32_t>(1, pfe().hash_table().key_partitions());
        const std::uint32_t part = tenants_[ti_] % parts;
        trio::ActSyncXtxn scan;
        scan.req.op = trio::XtxnOp::kHashScanStep;
        scan.req.arg0 = std::uint64_t(parts) << 32 | part;
        scan.req.arg1 = 64;
        scan.instructions = 4;
        state_ = State::kScanReply;
        return scan;
      }

      case State::kScanReply: {
        aged_.clear();
        for (std::size_t off = 0; off + 8 <= ctx.reply.data.size(); off += 8) {
          const std::uint64_t key = le64(ctx.reply.data, off);
          // Foreign keys (co-tenant jobs, other tenants when partitions
          // are off) are not ours to age.
          if (tenant_of_key(key) == tenants_[ti_]) {
            aged_.push_back(key);
          }
        }
        next_ = 0;
        trace_occupancy();
        return next_delete(ctx);
      }

      case State::kDeleteReply: {
        const NetRpcApp::Service* svc = app_.service(tenants_[ti_]);
        if (ctx.reply.ok && svc != nullptr) {
          const std::uint64_t key = aged_[next_ - 1];
          trio::ActAsyncXtxn clear;
          clear.req.op = trio::XtxnOp::kWrite;
          clear.req.addr = svc->layout.cache_slot(key) + kCacheOwnerOff;
          clear.req.data.assign(8, 0);
          clear.instructions = 0;
          pending_.push_back(clear);
          trio::ActAsyncXtxn ctr;
          ctr.req.op = trio::XtxnOp::kCounterInc;
          ctr.req.addr = svc->layout.counter_addr(kCtrCacheAged);
          ctr.req.arg0 = 0;
          ctr.instructions = 0;
          pending_.push_back(ctr);
          ++app_.stats().cache_aged;
        }
        return next_delete(ctx);
      }
    }
    return trio::ActExit{1};
  }

  trio::Action next_delete(trio::ThreadContext&) {
    if (next_ >= aged_.size()) {
      ++ti_;
      state_ = State::kScan;
      return trio::ActContinue{1};
    }
    trio::ActSyncXtxn del;
    del.req.op = trio::XtxnOp::kHashDelete;
    del.req.arg0 = aged_[next_++];
    del.instructions = 2;
    state_ = State::kDeleteReply;
    return del;
  }

  /// Trace row: sampled cache occupancy per tenant on the PFE's process.
  void trace_occupancy() {
    telemetry::Tracer* tracer = pfe().tracer();
    if (tracer == nullptr || !tracer->enabled()) return;
    tracer->counter(pfe().trace_pid(), "netrpc.cache_entries",
                    "tenant" + std::to_string(int(tenants_[ti_])),
                    pfe().router().simulator().now(),
                    static_cast<double>(app_.cache_entries(tenants_[ti_])));
  }

  trio::Pfe& pfe() { return app_.pfe(); }

  NetRpcApp& app_;
  std::vector<std::uint8_t> tenants_;
  std::size_t ti_ = 0;
  State state_ = State::kScan;
  std::vector<std::uint64_t> aged_;
  std::size_t next_ = 0;
  std::deque<trio::Action> pending_;
};

}  // namespace

NetRpcApp::NetRpcApp(trio::Pfe& pfe) : pfe_(pfe) {
  auto& registry = pfe_.router().telemetry().metrics;
  pfe_latency_hist_ =
      registry.histogram(pfe_.metric_prefix() + "netrpc.pfe_latency_ns");
}

void NetRpcApp::configure_service(const ServiceSetup& setup) {
  const ServiceConfig& cfg = setup.config;
  if (services_.count(cfg.tenant) != 0) {
    throw std::invalid_argument("NetRpcApp: tenant already configured");
  }
  if (cfg.value_words == 0 || cfg.value_words > kMaxValueWords) {
    throw std::invalid_argument("NetRpcApp: value_words out of range");
  }
  if (cfg.server_cnt == 0 || cfg.client_cnt == 0) {
    throw std::invalid_argument("NetRpcApp: need >=1 server and client");
  }
  if (cfg.window > kPendingSlotsPerClient) {
    throw std::invalid_argument(
        "NetRpcApp: window exceeds pending slots per client");
  }
  if (setup.client_nh.size() != cfg.client_cnt ||
      setup.server_nh.size() != cfg.server_cnt ||
      setup.client_ips.size() != cfg.client_cnt) {
    throw std::invalid_argument("NetRpcApp: nexthop/ip table size mismatch");
  }

  auto& sms = pfe_.sms();
  Service svc;
  svc.config = cfg;
  svc.layout.pending_base = sms.alloc_sram(pending_bytes(cfg), 64);
  svc.layout.cache_base = sms.alloc_sram(kCacheSlots * kCacheSlotBytes, 64);
  svc.layout.client_nh_base = sms.alloc_sram(cfg.client_cnt * 8, 8);
  svc.layout.server_nh_base = sms.alloc_sram(cfg.server_cnt * 8, 8);
  svc.layout.counter_base =
      sms.alloc_sram(kCounterCount * kCounterBytes, 16);
  for (std::size_t i = 0; i < setup.client_nh.size(); ++i) {
    sms.poke_u64(svc.layout.client_nh_base + i * 8, setup.client_nh[i]);
  }
  for (std::size_t i = 0; i < setup.server_nh.size(); ++i) {
    sms.poke_u64(svc.layout.server_nh_base + i * 8, setup.server_nh[i]);
  }
  svc.client_nh = setup.client_nh;
  svc.client_ips = setup.client_ips;
  svc.service_ip = setup.service_ip;
  svc.service_mac = setup.service_mac;
  svc.arrived_snapshot.assign(
      std::size_t(cfg.client_cnt) * kPendingSlotsPerClient, 0);
  preset_pending_slots(svc);
  svc.program = compile_datapath(cfg, svc.layout);
  services_.emplace(cfg.tenant, std::move(svc));
}

void NetRpcApp::preset_pending_slots(const Service& svc) {
  const std::vector<std::uint8_t> preset = merge_preset_bytes(svc.config);
  auto& sms = pfe_.sms();
  for (std::size_t s = 0; s < svc.arrived_snapshot.size(); ++s) {
    sms.poke_bytes(
        svc.layout.pending_base + s * kPendingSlotBytes + kPendingMergeOff,
        preset);
  }
}

void NetRpcApp::remove_service(std::uint8_t tenant) {
  if (services_.count(tenant) == 0) return;
  drop_cache_entries(tenant);
  services_.erase(tenant);
}

std::vector<std::uint8_t> NetRpcApp::configured_tenants() const {
  std::vector<std::uint8_t> out;
  out.reserve(services_.size());
  for (const auto& [tenant, svc] : services_) out.push_back(tenant);
  return out;
}

void NetRpcApp::install() {
  if (installed_) return;
  installed_ = true;
  trio::ProgramFactory fallback = pfe_.program_factory();
  pfe_.set_program_factory(
      [this, fallback](const net::Packet& pkt)
          -> std::unique_ptr<trio::PpeProgram> {
        if (is_netrpc_frame(pkt.frame())) {
          const std::uint8_t tenant = pkt.frame().u8(kNetRpcHdrOff + 1);
          auto it = services_.find(tenant);
          if (it != services_.end()) {
            if (it->second.bypass) {
              // In-network assist off: the frame is ordinary IP traffic.
              if (fallback) return fallback(pkt);
              return pfe_.router().make_forwarding_program(pkt);
            }
            ++stats_.packets;
            return std::make_unique<NetRpcThread>(*this, it->second.program);
          }
          ++stats_.dropped_no_service;
          return nullptr;  // NetRPC frame for a tenant we don't serve
        }
        if (fallback) return fallback(pkt);
        return pfe_.router().make_forwarding_program(pkt);
      });
}

void NetRpcApp::set_bypass(std::uint8_t tenant, bool on) {
  services_.at(tenant).bypass = on;
}

void NetRpcApp::start_aging(sim::Duration period) {
  if (aging_group_ >= 0) return;
  aging_period_ = period;
  // Two phase-shifted timers: index 0 walks the pending-merge slots
  // (degraded completion), index 1 ages the cache (REF scan).
  aging_group_ = pfe_.timers().start(
      2, period,
      [this](std::uint32_t timer_index) -> std::unique_ptr<trio::PpeProgram> {
        if (timer_index == 0) {
          return std::make_unique<PendingScanProgram>(*this);
        }
        return std::make_unique<CacheScanProgram>(*this);
      });
}

void NetRpcApp::stop_aging() {
  if (aging_group_ < 0) return;
  pfe_.timers().stop_group(aging_group_);
  aging_group_ = -1;
}

std::size_t NetRpcApp::drop_cache_entries(std::uint8_t tenant) {
  auto it = services_.find(tenant);
  if (it == services_.end()) return 0;
  const Service& svc = it->second;
  auto& hash = pfe_.hash_table();
  auto& sms = pfe_.sms();
  const std::uint64_t lo = svc.layout.cache_base;
  const std::uint64_t hi = lo + kCacheSlots * kCacheSlotBytes;
  std::size_t dropped = 0;
  for (const auto& [key, value] : hash.entries()) {
    // Match on both the tenant byte and the value landing in this
    // tenant's cache region — co-tenant jobs may reuse the id space.
    if (tenant_of_key(key) != tenant) continue;
    if (value < lo || value >= hi) continue;
    hash.erase(key);
    sms.poke_u64(svc.layout.cache_slot(key) + kCacheOwnerOff, 0);
    ++dropped;
  }
  return dropped;
}

std::uint64_t NetRpcApp::counter_packets(std::uint8_t tenant,
                                         CounterIdx idx) const {
  auto it = services_.find(tenant);
  if (it == services_.end()) return 0;
  return pfe_.sms().peek_u64(it->second.layout.counter_addr(idx));
}

std::uint64_t NetRpcApp::counter_bytes(std::uint8_t tenant,
                                       CounterIdx idx) const {
  auto it = services_.find(tenant);
  if (it == services_.end()) return 0;
  return pfe_.sms().peek_u64(it->second.layout.counter_addr(idx) + 8);
}

std::size_t NetRpcApp::cache_entries(std::uint8_t tenant) const {
  auto it = services_.find(tenant);
  if (it == services_.end()) return 0;
  const std::uint64_t lo = it->second.layout.cache_base;
  const std::uint64_t hi = lo + kCacheSlots * kCacheSlotBytes;
  std::size_t n = 0;
  for (const auto& [key, value] : pfe_.hash_table().entries()) {
    if (tenant_of_key(key) == tenant && value >= lo &&
        value < hi) {
      ++n;
    }
  }
  return n;
}

const NetRpcApp::Service* NetRpcApp::service(std::uint8_t tenant) const {
  auto it = services_.find(tenant);
  return it != services_.end() ? &it->second : nullptr;
}

NetRpcApp::Service* NetRpcApp::service_mut(std::uint8_t tenant) {
  auto it = services_.find(tenant);
  return it != services_.end() ? &it->second : nullptr;
}

bool claims_frame(const NetRpcApp& app, const net::Buffer& frame) {
  return is_netrpc_frame(frame) &&
         app.has_service(frame.u8(kNetRpcHdrOff + 1));
}

}  // namespace netrpc
