// NetRPC end hosts: the client library and the replicated RPC server.
//
// The client issues three verbs. `call()` fans one request out to every
// replica; in a Trio deployment the aggregating PFE merges the replies
// in-flight and the client sees exactly one MERGED_RESP — but the same
// client also works with no in-network support (each RPC_RESP arrives
// individually and is merged host-side), which is itself the
// "end-host-only" baseline fig_netrpc compares against. `get()` goes to
// the key's home replica and may come back flagged kFlagCached when the
// PFE answered it without the server ever seeing it. `put()` writes the
// home replica; the PFE invalidates its cached copy in transit.
//
// The server is deliberately simple — a key/value map plus a
// deterministic compute function for fan-out RPCs — with the same fault
// surface as TrioMlWorker (crash/restart, configurable service time,
// stall_for-based straggling) so the existing chaos DSL drives it.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "telemetry/metrics.hpp"
#include "netrpc/wire_format.hpp"

namespace netrpc {

struct GetResult {
  std::uint64_t key = 0;
  std::vector<std::uint32_t> values;
  bool cached = false;  // answered by the PFE's hot-key cache
  bool lost = false;    // retry budget exhausted; values are zero
  sim::Duration latency;
};

struct PutResult {
  std::uint64_t key = 0;
  bool lost = false;  // retry budget exhausted; the write may not have landed
  sim::Duration latency;
};

struct CallResult {
  std::uint32_t rpc_id = 0;
  std::vector<std::uint32_t> values;  // merged under the service's policy
  std::uint8_t server_cnt = 0;        // replicas that contributed
  bool degraded = false;              // merged before full fan-in (aging)
  bool host_merged = false;           // no in-network merge; client reduced
  sim::Duration latency;
};

class RpcClient : public net::Node {
 public:
  struct Config {
    std::uint8_t tenant = 1;
    std::uint8_t client_id = 0;
    net::Ipv4Addr ip;
    net::MacAddr mac{0x02, 0, 0, 0, 0, 1};
    std::vector<net::Ipv4Addr> server_ips;  // indexed by server_id
    std::vector<net::MacAddr> server_macs;
    MergePolicy policy = MergePolicy::kSum;
    std::uint16_t value_words = 8;
    /// Outstanding fan-out calls; must stay within the PFE's per-client
    /// pending slots (rpc_id & 15 indexes the slot — the client skips
    /// call ids whose slot is still held by a live call, so two live
    /// calls never merge into each other).
    std::uint32_t window = 8;
    std::uint16_t udp_src_port = 12100;
    /// GET/PUT loss recovery (fan-out calls are never retransmitted —
    /// a duplicate would double-merge; the PFE's aging scan completes
    /// stalled calls degraded instead).
    bool retransmit = false;
    sim::Duration retransmit_timeout = sim::Duration::millis(1);
    std::uint32_t retry_budget = 4;
    /// Fan-out call give-up: a call whose merged response never arrives
    /// (calls are not retransmitted, and a lost MERGED_RESP is not
    /// resent) completes locally after this deadline — degraded, with
    /// whatever replica replies did arrive. Zero disables.
    sim::Duration call_timeout = sim::Duration::millis(5);
  };

  RpcClient(sim::Simulator& simulator, Config config, net::LinkEndpoint& tx);

  /// Fan-out RPC: one request per replica, one merged response back.
  /// Throws if the window is full (poll `can_call()` first).
  void call(const std::vector<std::uint32_t>& args,
            std::function<void(CallResult)> done);
  bool can_call() const { return calls_.size() < config_.window; }

  void get(std::uint64_t user_key, std::function<void(GetResult)> done);
  void put(std::uint64_t user_key, const std::vector<std::uint32_t>& values,
           std::function<void(PutResult)> done);

  // --- net::Node ----------------------------------------------------------
  void receive(net::PacketPtr pkt, int port) override;
  std::string name() const override {
    return "rpc-client-" + std::to_string(config_.client_id);
  }

  // --- Fault hooks (src/faults/) ------------------------------------------
  /// All in-flight operations and their callbacks vanish; received
  /// frames are ignored until restart().
  void crash();
  void restart() {
    if (!crashed_) return;
    crashed_ = false;
    if (on_restart_) on_restart_();
  }
  bool crashed() const { return crashed_; }
  std::uint64_t epoch() const { return epoch_; }
  /// Invoked from restart(): a crash wiped every in-flight operation and
  /// its callback, so a callback-chained driver must re-prime its loop
  /// here or stall forever.
  void set_restart_hook(std::function<void()> hook) {
    on_restart_ = std::move(hook);
  }

  void instrument(telemetry::Registry& registry, const std::string& prefix) {
    retransmits_ctr_ = registry.counter(prefix + "retransmits");
    degraded_ctr_ = registry.counter(prefix + "degraded_calls");
    cached_ctr_ = registry.counter(prefix + "cached_gets");
    crash_ctr_ = registry.counter(prefix + "crashes");
  }

  // --- Statistics ---------------------------------------------------------
  sim::Samples& call_latency_us() { return call_latency_us_; }
  sim::Samples& get_hit_latency_us() { return get_hit_latency_us_; }
  sim::Samples& get_miss_latency_us() { return get_miss_latency_us_; }
  sim::Samples& put_latency_us() { return put_latency_us_; }
  std::uint64_t calls_completed() const { return calls_completed_; }
  std::uint64_t degraded_calls() const { return degraded_calls_; }
  std::uint64_t host_merged_calls() const { return host_merged_calls_; }
  std::uint64_t cached_gets() const { return cached_gets_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  const Config& config() const { return config_; }

 private:
  struct PendingCall {
    sim::Time start;
    std::function<void(CallResult)> done;
    // Host-side merge state, used only when raw RPC_RESPs arrive
    // (no in-network merge on the path).
    std::vector<std::uint32_t> acc;
    std::vector<std::uint32_t> counts;  // majority: candidate counts
    std::uint8_t arrived = 0;
    sim::EventId timer;  // give-up deadline (config_.call_timeout)
  };
  struct PendingKeyOp {
    sim::Time start;
    std::uint64_t user_key = 0;
    std::function<void(GetResult)> get_done;
    std::function<void(PutResult)> put_done;
    std::vector<std::uint32_t> put_values;  // retransmit payload
    std::uint32_t retries = 0;
    sim::EventId timer;
  };

  void send_request(Op op, std::uint8_t server_id, std::uint32_t rpc_id,
                    std::uint64_t key, const std::vector<std::uint32_t>& vals);
  bool call_timeout_enabled() const { return config_.call_timeout.ns() > 0; }
  /// call_timeout fired: complete the call locally, degraded.
  void give_up_call(std::uint32_t rpc_id, std::uint64_t epoch);
  /// Next fan-out call id: monotone, and never congruent mod the PFE's
  /// pending slots with any live call (the slot the id hashes to must be
  /// free, or the aggregating PFE would merge two calls into each other).
  std::uint32_t alloc_call_id();
  void arm_retransmit(std::uint32_t rpc_id);
  void host_merge(PendingCall& call, const NetRpcHeader& hdr,
                  const net::Buffer& frame);
  std::uint8_t home_server(std::uint64_t user_key) const {
    return static_cast<std::uint8_t>(user_key % config_.server_ips.size());
  }

  sim::Simulator& sim_;
  Config config_;
  net::LinkEndpoint& tx_;
  // Fan-out calls and GET/PUT key ops draw from separate id sequences:
  // only call ids index the PFE's pending-merge slots (mod 16), so a
  // burst of key ops between two call()s must not advance the call ids
  // onto an occupied slot. Responses demux by opcode, so overlap between
  // the two sequences is harmless.
  std::uint32_t next_call_id_ = 1;
  std::uint32_t next_key_id_ = 1;
  std::unordered_map<std::uint32_t, PendingCall> calls_;
  std::unordered_map<std::uint32_t, PendingKeyOp> key_ops_;
  bool crashed_ = false;
  std::uint64_t epoch_ = 0;
  std::function<void()> on_restart_;

  sim::Samples call_latency_us_;
  sim::Samples get_hit_latency_us_;
  sim::Samples get_miss_latency_us_;
  sim::Samples put_latency_us_;
  std::uint64_t calls_completed_ = 0;
  std::uint64_t degraded_calls_ = 0;
  std::uint64_t host_merged_calls_ = 0;
  std::uint64_t cached_gets_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t packets_sent_ = 0;
  telemetry::Counter retransmits_ctr_;
  telemetry::Counter degraded_ctr_;
  telemetry::Counter cached_ctr_;
  telemetry::Counter crash_ctr_;
};

class RpcServer : public net::Node {
 public:
  struct Config {
    std::uint8_t tenant = 1;
    std::uint8_t server_id = 0;
    net::Ipv4Addr ip;
    net::MacAddr mac{0x02, 0, 0, 0, 0, 0x10};
    std::uint16_t value_words = 8;
    /// Base service time applied to every response (request processing).
    sim::Duration service_time = sim::Duration::micros(2);
  };

  RpcServer(sim::Simulator& simulator, Config config, net::LinkEndpoint& tx);

  /// Seeds/overwrites a key host-side (no packets).
  void preload(std::uint64_t user_key, std::vector<std::uint32_t> values);
  bool has_key(std::uint64_t user_key) const {
    return store_.count(user_key) != 0;
  }

  // --- net::Node ----------------------------------------------------------
  void receive(net::PacketPtr pkt, int port) override;
  std::string name() const override {
    return "rpc-server-" + std::to_string(config_.server_id);
  }

  /// Straggling: responses scheduled while stalled are delayed until the
  /// stall lifts (in-flight responses still fly).
  void stall_for(sim::Duration d);
  void set_service_time(sim::Duration d) { config_.service_time = d; }

  // --- Fault hooks (src/faults/) ------------------------------------------
  /// The server goes silent: requests are dropped, scheduled responses
  /// from before the crash are suppressed. State (the store) survives —
  /// this models a process hang / link partition, the case the PFE's
  /// degraded merge completion exists for.
  void crash();
  void restart() { crashed_ = false; }
  bool crashed() const { return crashed_; }

  // --- Statistics ---------------------------------------------------------
  std::uint64_t gets_served() const { return gets_served_; }
  std::uint64_t puts_served() const { return puts_served_; }
  std::uint64_t calls_served() const { return calls_served_; }
  const Config& config() const { return config_; }

 private:
  void respond(const NetRpcHeader& req_hdr, const net::Buffer& req_frame,
               Op op, const std::vector<std::uint32_t>& values);
  /// Deterministic per-replica RPC work function: what this replica
  /// contributes to the merge for a given rpc_id and argument vector.
  std::vector<std::uint32_t> compute(std::uint32_t rpc_id,
                                     const NetRpcHeader& hdr,
                                     const net::Buffer& frame) const;

  sim::Simulator& sim_;
  Config config_;
  net::LinkEndpoint& tx_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> store_;
  sim::Time stalled_until_;
  bool crashed_ = false;
  std::uint64_t crash_epoch_ = 0;

  std::uint64_t gets_served_ = 0;
  std::uint64_t puts_served_ = 0;
  std::uint64_t calls_served_ = 0;
};

}  // namespace netrpc
