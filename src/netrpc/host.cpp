#include "netrpc/host.hpp"

#include <algorithm>
#include <stdexcept>

#include "netrpc/layout.hpp"

namespace netrpc {

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(sim::Simulator& simulator, Config config,
                     net::LinkEndpoint& tx)
    : sim_(simulator), config_(std::move(config)), tx_(tx) {
  if (config_.server_ips.empty() ||
      config_.server_ips.size() != config_.server_macs.size()) {
    throw std::invalid_argument("RpcClient: bad server address tables");
  }
  if (config_.value_words == 0 || config_.value_words > kMaxValueWords) {
    throw std::invalid_argument("RpcClient: value_words out of range");
  }
  if (config_.window == 0 || config_.window > 16) {
    throw std::invalid_argument(
        "RpcClient: window must be 1..16 (PFE pending slots)");
  }
}

void RpcClient::send_request(Op op, std::uint8_t server_id,
                             std::uint32_t rpc_id, std::uint64_t key,
                             const std::vector<std::uint32_t>& vals) {
  NetRpcHeader hdr;
  hdr.op = op;
  hdr.tenant = config_.tenant;
  hdr.client_id = config_.client_id;
  hdr.server_id = server_id;
  hdr.policy = config_.policy;
  hdr.server_cnt = static_cast<std::uint8_t>(config_.server_ips.size());
  hdr.rpc_id = rpc_id;
  hdr.key = key;
  net::Buffer frame = build_netrpc_frame(
      config_.mac, config_.server_macs[server_id], config_.ip,
      config_.server_ips[server_id], config_.udp_src_port, kRequestUdpPort,
      hdr, vals, config_.value_words);
  ++packets_sent_;
  tx_.send(net::Packet::make(std::move(frame)));
}

std::uint32_t RpcClient::alloc_call_id() {
  // With window <= kPendingSlotsPerClient, at most window-1 slots are
  // held when a call is admitted, so a free slot exists within the next
  // kPendingSlotsPerClient consecutive ids. Skipped ids are simply never
  // used; the sequence stays monotone (the datapath's stale-owner test
  // relies on that).
  for (std::size_t tries = 0; tries < kPendingSlotsPerClient; ++tries) {
    const std::uint32_t id = next_call_id_++;
    const std::uint32_t slot = id % kPendingSlotsPerClient;
    bool busy = false;
    for (const auto& [live_id, call] : calls_) {
      if (live_id % kPendingSlotsPerClient == slot) {
        busy = true;
        break;
      }
    }
    if (!busy) return id;
  }
  throw std::logic_error("RpcClient: no free pending slot");  // unreachable
}

void RpcClient::call(const std::vector<std::uint32_t>& args,
                     std::function<void(CallResult)> done) {
  if (crashed_) throw std::logic_error("RpcClient: crashed");
  if (!can_call()) throw std::logic_error("RpcClient: call window full");
  const std::uint32_t rpc_id = alloc_call_id();
  PendingCall& call = calls_[rpc_id];
  call.start = sim_.now();
  call.done = std::move(done);
  if (call_timeout_enabled()) {
    call.timer = sim_.schedule_in(
        config_.call_timeout,
        [this, rpc_id, epoch = epoch_] { give_up_call(rpc_id, epoch); });
  }
  for (std::uint8_t s = 0; s < config_.server_ips.size(); ++s) {
    send_request(Op::kRpcReq, s, rpc_id,
                 make_key(config_.tenant, rpc_id), args);
  }
}

void RpcClient::give_up_call(std::uint32_t rpc_id, std::uint64_t epoch) {
  if (epoch != epoch_) return;  // a crash wiped this call
  auto it = calls_.find(rpc_id);
  if (it == calls_.end()) return;
  // The merged response is gone for good — fan-out calls are never
  // retransmitted, and the PFE sends its (possibly aged/degraded) merge
  // exactly once. Complete locally with whatever replica replies did
  // arrive so the caller's closed loop keeps making progress.
  CallResult res;
  res.rpc_id = rpc_id;
  res.server_cnt = it->second.arrived;
  res.degraded = true;
  res.host_merged = it->second.arrived > 0;
  res.latency = sim_.now() - it->second.start;
  res.values = std::move(it->second.acc);
  res.values.resize(config_.value_words);
  auto done = std::move(it->second.done);
  calls_.erase(it);
  ++calls_completed_;
  ++degraded_calls_;
  degraded_ctr_.inc();
  call_latency_us_.add(res.latency.us());
  if (done) done(std::move(res));
}

void RpcClient::get(std::uint64_t user_key,
                    std::function<void(GetResult)> done) {
  if (crashed_) throw std::logic_error("RpcClient: crashed");
  const std::uint32_t rpc_id = next_key_id_++;
  PendingKeyOp& op = key_ops_[rpc_id];
  op.start = sim_.now();
  op.user_key = user_key;
  op.get_done = std::move(done);
  send_request(Op::kGetReq, home_server(user_key), rpc_id,
               make_key(config_.tenant, user_key), {});
  if (config_.retransmit) arm_retransmit(rpc_id);
}

void RpcClient::put(std::uint64_t user_key,
                    const std::vector<std::uint32_t>& values,
                    std::function<void(PutResult)> done) {
  if (crashed_) throw std::logic_error("RpcClient: crashed");
  const std::uint32_t rpc_id = next_key_id_++;
  PendingKeyOp& op = key_ops_[rpc_id];
  op.start = sim_.now();
  op.user_key = user_key;
  op.put_done = std::move(done);
  op.put_values = values;
  send_request(Op::kPutReq, home_server(user_key), rpc_id,
               make_key(config_.tenant, user_key), values);
  if (config_.retransmit) arm_retransmit(rpc_id);
}

void RpcClient::arm_retransmit(std::uint32_t rpc_id) {
  auto it = key_ops_.find(rpc_id);
  if (it == key_ops_.end()) return;
  it->second.timer = sim_.schedule_in(
      config_.retransmit_timeout, [this, rpc_id, epoch = epoch_] {
        if (epoch != epoch_) return;
        auto it = key_ops_.find(rpc_id);
        if (it == key_ops_.end()) return;
        PendingKeyOp& op = it->second;
        if (++op.retries > config_.retry_budget) {
          // Out of retries: complete the op as lost (zero values) rather
          // than vanishing — a caller chaining its next op off the
          // callback would otherwise stall forever.
          if (op.get_done) {
            GetResult res;
            res.key = op.user_key;
            res.lost = true;
            res.latency = sim_.now() - op.start;
            res.values.resize(config_.value_words);
            auto done = std::move(op.get_done);
            key_ops_.erase(it);
            get_miss_latency_us_.add(res.latency.us());
            done(std::move(res));
          } else {
            PutResult res;
            res.key = op.user_key;
            res.lost = true;
            res.latency = sim_.now() - op.start;
            auto done = std::move(op.put_done);
            key_ops_.erase(it);
            put_latency_us_.add(res.latency.us());
            done(std::move(res));
          }
          return;
        }
        ++retransmissions_;
        retransmits_ctr_.inc();
        const std::uint64_t key = make_key(config_.tenant, op.user_key);
        if (op.get_done) {
          send_request(Op::kGetReq, home_server(op.user_key), rpc_id, key, {});
        } else {
          send_request(Op::kPutReq, home_server(op.user_key), rpc_id, key,
                       op.put_values);
        }
        arm_retransmit(rpc_id);
      });
}

void RpcClient::host_merge(PendingCall& call, const NetRpcHeader& hdr,
                           const net::Buffer& frame) {
  const std::size_t n = config_.value_words;
  if (call.acc.empty()) {
    call.acc.assign(n, config_.policy == MergePolicy::kMin ? 0xffffffffu : 0u);
    if (config_.policy == MergePolicy::kMajority) call.counts.assign(n, 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = read_value(frame, i);
    switch (config_.policy) {
      case MergePolicy::kSum:
        call.acc[i] += v;
        break;
      case MergePolicy::kMin:
        call.acc[i] = std::min(call.acc[i], v);
        break;
      case MergePolicy::kMajority:  // Boyer-Moore, same as kVoteVec32
        if (call.counts[i] == 0) {
          call.acc[i] = v;
          call.counts[i] = 1;
        } else if (call.acc[i] == v) {
          ++call.counts[i];
        } else {
          --call.counts[i];
        }
        break;
    }
  }
  ++call.arrived;
}

void RpcClient::receive(net::PacketPtr pkt, int /*port*/) {
  if (crashed_) return;
  const net::Buffer& frame = pkt->frame();
  if (!is_netrpc_frame(frame)) return;
  const NetRpcHeader hdr = NetRpcHeader::parse(frame, kNetRpcHdrOff);
  if (hdr.tenant != config_.tenant) return;

  switch (hdr.op) {
    case Op::kMergedResp: {
      auto it = calls_.find(hdr.rpc_id);
      if (it == calls_.end()) return;  // duplicate / stale
      CallResult res;
      res.rpc_id = hdr.rpc_id;
      res.server_cnt = hdr.server_cnt;
      res.degraded = (hdr.flags & kFlagDegraded) != 0;
      res.latency = sim_.now() - it->second.start;
      res.values.resize(config_.value_words);
      for (std::size_t i = 0; i < res.values.size(); ++i) {
        res.values[i] = read_value(frame, i);
      }
      sim_.cancel(it->second.timer);
      auto done = std::move(it->second.done);
      calls_.erase(it);
      ++calls_completed_;
      if (res.degraded) {
        ++degraded_calls_;
        degraded_ctr_.inc();
      }
      call_latency_us_.add(res.latency.us());
      if (done) done(std::move(res));
      return;
    }

    case Op::kRpcResp: {
      // No merge on the path: reduce host-side, complete at full fan-in.
      auto it = calls_.find(hdr.rpc_id);
      if (it == calls_.end()) return;
      host_merge(it->second, hdr, frame);
      if (it->second.arrived < config_.server_ips.size()) return;
      CallResult res;
      res.rpc_id = hdr.rpc_id;
      res.server_cnt = it->second.arrived;
      res.host_merged = true;
      res.latency = sim_.now() - it->second.start;
      res.values = std::move(it->second.acc);
      sim_.cancel(it->second.timer);
      auto done = std::move(it->second.done);
      calls_.erase(it);
      ++calls_completed_;
      ++host_merged_calls_;
      call_latency_us_.add(res.latency.us());
      if (done) done(std::move(res));
      return;
    }

    case Op::kGetResp: {
      auto it = key_ops_.find(hdr.rpc_id);
      if (it == key_ops_.end() || !it->second.get_done) return;
      GetResult res;
      res.key = it->second.user_key;
      res.cached = (hdr.flags & kFlagCached) != 0;
      res.latency = sim_.now() - it->second.start;
      res.values.resize(config_.value_words);
      for (std::size_t i = 0; i < res.values.size(); ++i) {
        res.values[i] = read_value(frame, i);
      }
      sim_.cancel(it->second.timer);
      auto done = std::move(it->second.get_done);
      key_ops_.erase(it);
      if (res.cached) {
        ++cached_gets_;
        cached_ctr_.inc();
        get_hit_latency_us_.add(res.latency.us());
      } else {
        get_miss_latency_us_.add(res.latency.us());
      }
      if (done) done(std::move(res));
      return;
    }

    case Op::kPutResp: {
      auto it = key_ops_.find(hdr.rpc_id);
      if (it == key_ops_.end() || !it->second.put_done) return;
      PutResult res;
      res.key = it->second.user_key;
      res.latency = sim_.now() - it->second.start;
      sim_.cancel(it->second.timer);
      auto done = std::move(it->second.put_done);
      key_ops_.erase(it);
      put_latency_us_.add(res.latency.us());
      if (done) done(std::move(res));
      return;
    }

    default:
      return;  // requests are never addressed to a client
  }
}

void RpcClient::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;  // strands every armed retransmit timer
  crash_ctr_.inc();
  for (auto& [id, op] : key_ops_) sim_.cancel(op.timer);
  for (auto& [id, call] : calls_) sim_.cancel(call.timer);
  calls_.clear();
  key_ops_.clear();
}

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(sim::Simulator& simulator, Config config,
                     net::LinkEndpoint& tx)
    : sim_(simulator), config_(config), tx_(tx) {}

void RpcServer::preload(std::uint64_t user_key,
                        std::vector<std::uint32_t> values) {
  values.resize(config_.value_words);
  store_[user_key] = std::move(values);
}

void RpcServer::stall_for(sim::Duration d) {
  const sim::Time until = sim_.now() + d;
  if (until > stalled_until_) stalled_until_ = until;
}

void RpcServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crash_epoch_;  // suppresses responses scheduled before the crash
}

std::vector<std::uint32_t> RpcServer::compute(
    std::uint32_t rpc_id, const NetRpcHeader& hdr,
    const net::Buffer& frame) const {
  // Deterministic replica contribution: a mix of the request arguments,
  // the rpc id and this replica's id. Reproducible across runs, distinct
  // across replicas — exactly what sum/min/majority merges need to show
  // observable (and goldenable) results.
  std::vector<std::uint32_t> out(config_.value_words);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint32_t arg = read_value(frame, i);
    switch (hdr.policy) {
      case MergePolicy::kMajority:
        // Replicas agree unless their id differs in the low bit — a
        // majority of identical answers with a dissenting minority.
        out[i] = arg + std::uint32_t(rpc_id % 7) +
                 ((config_.server_id & 1u) != 0 ? 1000000u : 0u);
        break;
      default:
        out[i] = arg + std::uint32_t(i) + rpc_id % 97 +
                 std::uint32_t(config_.server_id) * 13;
        break;
    }
  }
  return out;
}

void RpcServer::respond(const NetRpcHeader& req_hdr,
                        const net::Buffer& req_frame, Op op,
                        const std::vector<std::uint32_t>& values) {
  const net::EthernetHeader eth = net::EthernetHeader::parse(req_frame, 0);
  const net::Ipv4Header ip =
      net::Ipv4Header::parse(req_frame, net::EthernetHeader::kSize);

  NetRpcHeader hdr = req_hdr;
  hdr.op = op;
  hdr.server_id = config_.server_id;
  net::Buffer frame =
      build_netrpc_frame(config_.mac, eth.src, config_.ip, ip.src,
                         kRequestUdpPort, kResponseUdpPort, hdr, values,
                         config_.value_words);

  sim::Time at = sim_.now() + config_.service_time;
  if (stalled_until_ > at) at = stalled_until_;
  sim_.schedule_at(at, [this, f = std::move(frame),
                        epoch = crash_epoch_]() mutable {
    if (crashed_ || epoch != crash_epoch_) return;
    tx_.send(net::Packet::make(std::move(f)));
  });
}

void RpcServer::receive(net::PacketPtr pkt, int /*port*/) {
  if (crashed_) return;
  const net::Buffer& frame = pkt->frame();
  if (!is_netrpc_frame(frame)) return;
  const NetRpcHeader hdr = NetRpcHeader::parse(frame, kNetRpcHdrOff);
  if (hdr.tenant != config_.tenant) return;
  const std::uint64_t user_key = user_key_of(hdr.key);

  switch (hdr.op) {
    case Op::kGetReq: {
      ++gets_served_;
      auto it = store_.find(user_key);
      static const std::vector<std::uint32_t> kEmpty;
      respond(hdr, frame, Op::kGetResp,
              it != store_.end() ? it->second : kEmpty);
      return;
    }
    case Op::kPutReq: {
      ++puts_served_;
      std::vector<std::uint32_t> values(config_.value_words);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = read_value(frame, i);
      }
      store_[user_key] = values;
      respond(hdr, frame, Op::kPutResp, values);
      return;
    }
    case Op::kRpcReq: {
      ++calls_served_;
      respond(hdr, frame, Op::kRpcResp, compute(hdr.rpc_id, hdr, frame));
      return;
    }
    default:
      return;  // responses are never addressed to a server
  }
}

}  // namespace netrpc
