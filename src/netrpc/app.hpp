// NetRpcApp: the per-PFE in-network RPC application (second tenant of the
// microcode substrate, alongside trioml's native aggregation app).
//
// Owns the control-plane side — per-tenant service records (pending-merge
// slot tables, the direct-mapped hot-key cache, nexthop tables, datapath
// counters) written into the Shared Memory System, the per-tenant
// *generated* Microcode datapath binary, and the aging timer threads —
// and chains itself onto the PFE's program factory: NetRPC frames of a
// configured tenant run the tenant's compiled datapath; everything else
// falls through to whatever factory was installed before (trioml, plain
// forwarding).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "microcode/interpreter.hpp"
#include "net/headers.hpp"
#include "netrpc/datapath.hpp"
#include "netrpc/layout.hpp"
#include "sim/stats.hpp"
#include "telemetry/metrics.hpp"
#include "trio/pfe.hpp"

namespace netrpc {

class NetRpcApp {
 public:
  explicit NetRpcApp(trio::Pfe& pfe);

  /// One tenant's service: geometry plus the egress plumbing the
  /// control plane resolved (nexthop ids per client/server) and the
  /// addressing the aging scan stamps on degraded responses it emits.
  struct ServiceSetup {
    ServiceConfig config;
    std::vector<std::uint32_t> client_nh;  // nexthop id per client_id
    std::vector<std::uint32_t> server_nh;  // nexthop id per server_id
    std::vector<net::Ipv4Addr> client_ips;
    net::Ipv4Addr service_ip;  // source IP of scan-emitted responses
    net::MacAddr service_mac{0x02, 0, 0, 0, 0, 0xee};
  };

  /// Allocates and presets the tenant's SMS state, generates and compiles
  /// its datapath program. Call before traffic; throws if the tenant is
  /// already configured or the setup is inconsistent.
  void configure_service(const ServiceSetup& setup);
  /// Removes the tenant: its cache presence entries are erased and its
  /// datapath stops matching. SMS regions are not reclaimed (bump
  /// allocator) — teardown accounting is the JobManager's release.
  void remove_service(std::uint8_t tenant);
  bool has_service(std::uint8_t tenant) const {
    return services_.count(tenant) != 0;
  }
  /// In-network assist on/off for one tenant: while bypassed, the
  /// tenant's frames take the plain forwarding path — no merge, no cache,
  /// every RPC_RESP rides to the client for a host-side reduce. This is
  /// the end-host-only deployment fig_netrpc compares against. Service
  /// state stays allocated; throws for unknown tenants.
  void set_bypass(std::uint8_t tenant, bool on);
  std::vector<std::uint8_t> configured_tenants() const;

  /// Worst-case SMS bytes the service occupies (admission charge).
  static std::uint64_t worst_case_bytes(const ServiceConfig& cfg) {
    return service_worst_case_bytes(cfg);
  }

  /// Chains the NetRPC program factory in front of the PFE's current one.
  void install();

  /// Starts the two aging timer threads (period each): one walks the
  /// pending-merge slots and completes stalled merges *degraded* (the
  /// run-to-completion answer to straggling servers — a partial merge is
  /// emitted with server_cnt = contributors and the degraded flag), the
  /// other ages the hot-key cache by check-and-clear REF scanning.
  void start_aging(sim::Duration period);
  void stop_aging();
  sim::Duration aging_period() const { return aging_period_; }

  // --- Fault hooks (src/faults/, docs/faults.md) -------------------------
  /// Models loss of the cache tier's state for one tenant: every presence
  /// entry is dropped from the hash table and the slot owners zeroed, so
  /// subsequent GETs miss (and refill) instead of reading stale slots.
  /// Returns the number of entries dropped.
  std::size_t drop_cache_entries(std::uint8_t tenant);

  // --- Datapath counters (SMS-resident, written by the microcode) --------
  std::uint64_t counter_packets(std::uint8_t tenant, CounterIdx idx) const;
  std::uint64_t counter_bytes(std::uint8_t tenant, CounterIdx idx) const;
  /// Live cache presence entries of the tenant (control-plane walk).
  std::size_t cache_entries(std::uint8_t tenant) const;

  struct Stats {
    std::uint64_t packets = 0;             // frames claimed by the datapath
    std::uint64_t dropped_no_service = 0;  // NetRPC frames, unknown tenant
    std::uint64_t degraded_emitted = 0;    // aged merges completed partial
    std::uint64_t pending_reset = 0;       // stale slots reclaimed by scan
    std::uint64_t cache_aged = 0;          // cache entries aged out
    sim::Samples pfe_latency_us;  // per-packet time in the datapath
  };
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// Registry histogram mirroring pfe_latency_us
  /// (`pfe<N>.netrpc.pfe_latency_ns`); live only when telemetry is on.
  telemetry::Histogram pfe_latency_hist() { return pfe_latency_hist_; }

  trio::Pfe& pfe() { return pfe_; }

  // --- Introspection shared with the aging scan programs ------------------
  struct Service {
    ServiceConfig config;
    ServiceLayout layout;
    bool bypass = false;  // set_bypass: plain forwarding, no datapath
    std::shared_ptr<const microcode::CompiledProgram> program;
    std::vector<std::uint32_t> client_nh;
    std::vector<net::Ipv4Addr> client_ips;
    net::Ipv4Addr service_ip;
    net::MacAddr service_mac;
    /// Aging scan state: last observed arrived count per pending slot. A
    /// slot that holds the same nonzero count across two passes has
    /// stalled — its merge is completed degraded.
    std::vector<std::uint32_t> arrived_snapshot;
  };
  const Service* service(std::uint8_t tenant) const;
  Service* service_mut(std::uint8_t tenant);
  const std::map<std::uint8_t, Service>& services() const {
    return services_;
  }

 private:
  void preset_pending_slots(const Service& svc);

  trio::Pfe& pfe_;
  std::map<std::uint8_t, Service> services_;  // ordered: deterministic scans
  bool installed_ = false;
  int aging_group_ = -1;
  sim::Duration aging_period_;
  Stats stats_;
  telemetry::Histogram pfe_latency_hist_;
};

/// True when `frame` is a NetRPC frame whose tenant is configured on
/// `app` (the claim test of the chained program factory).
bool claims_frame(const NetRpcApp& app, const net::Buffer& frame);

}  // namespace netrpc
