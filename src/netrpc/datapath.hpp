// Generates the per-tenant NetRPC datapath Microcode program.
//
// This is the second application on the microcode substrate (after the
// §3.2 filter example) and the first at production scale: ~44 VLIW
// instruction blocks against the filter's five, covering an 8-way opcode
// classify, the cache hit/miss/fill/invalidate paths, the three-policy
// in-flight merge and an address-swap subroutine. The program is
// *generated* rather than hand-written because every tenant gets its own
// binary with the service geometry (slot bases, fan-out width, value
// width, nexthop tables) folded into virtual constants — exactly how the
// Trio Compiler turns per-deployment configuration into immediates.
#pragma once

#include <memory>
#include <string>

#include "microcode/compiler.hpp"
#include "netrpc/layout.hpp"

namespace netrpc {

/// Microcode source for one tenant's service (see docs/netrpc.md for the
/// walk-through of the program's paths).
std::string generate_datapath_source(const ServiceConfig& cfg,
                                     const ServiceLayout& layout);

/// Convenience: generate + compile.
std::shared_ptr<const microcode::CompiledProgram> compile_datapath(
    const ServiceConfig& cfg, const ServiceLayout& layout);

}  // namespace netrpc
