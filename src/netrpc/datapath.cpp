#include "netrpc/datapath.hpp"

#include <sstream>

namespace netrpc {

std::string generate_datapath_source(const ServiceConfig& cfg,
                                     const ServiceLayout& layout) {
  std::ostringstream src;
  const auto ctr_word = [&](CounterIdx idx) {
    // CounterIncPhys addresses 8-byte words (Fig 6): adjacent 16-byte
    // counters are two words apart.
    return layout.counter_addr(idx) / 8;
  };

  src << "// NetRPC datapath — generated for tenant "
      << int(cfg.tenant) << " (do not edit; see src/netrpc/datapath.cpp)\n"
      << "struct ether_t {\n"
         "  dmac : 48;\n"
         "  smac : 48;\n"
         "  etype : 16;\n"
         "};\n"
         "\n"
         "struct ipv4_t {\n"
         "  ver : 4;\n"
         "  ihl : 4;\n"
         "  tos : 8;\n"
         "  len : 16;\n"
         "  id : 16;\n"
         "  frag : 16;\n"
         "  ttl : 8;\n"
         "  proto : 8;\n"
         "  csum : 16;\n"
         "  src : 32;\n"
         "  dst : 32;\n"
         "};\n"
         "\n"
         "struct udp_t {\n"
         "  sport : 16;\n"
         "  dport : 16;\n"
         "  len : 16;\n"
         "  csum : 16;\n"
         "};\n"
         "\n"
         "struct netrpc_t {\n"
         "  op : 8;\n"
         "  tenant : 8;\n"
         "  client_id : 8;\n"
         "  server_id : 8;\n"
         "  policy : 8;\n"
         "  flags : 8;\n"
         "  value_cnt : 8;\n"
         "  server_cnt : 8;\n"
         "  rpc_id : 32;\n"
         "  key : 64;\n"
         "};\n"
         "\n";

  // Service geometry as virtual constants — the "binary image" of this
  // tenant's configuration.
  const std::size_t val_bytes = std::size_t(cfg.value_words) * 4;
  src << "virtual const TENANT = " << int(cfg.tenant) << ";\n"
      << "virtual const POLICY = " << int(cfg.policy) << ";\n"
      << "virtual const N_SERVERS = " << int(cfg.server_cnt) << ";\n"
      << "virtual const N_CLIENTS = " << int(cfg.client_cnt) << ";\n"
      << "virtual const VAL_WORDS = " << int(cfg.value_words) << ";\n"
      << "virtual const VAL_BYTES = " << val_bytes << ";\n"
      << "virtual const VAL2_BYTES = " << 2 * val_bytes << ";\n"
      << "virtual const VAL_OFF = " << kValueOff << ";\n"
      << "virtual const P_BASE = " << layout.pending_base << ";\n"
      << "virtual const P_SLOT = " << kPendingSlotBytes << ";\n"
      << "virtual const P_SLOTS = " << kPendingSlotsPerClient << ";\n"
      << "virtual const P_MASK = " << kPendingSlotsPerClient - 1 << ";\n"
      << "virtual const P_ARRIVED = " << kPendingArrivedOff << ";\n"
      << "virtual const P_MERGE = " << kPendingMergeOff << ";\n"
      << "virtual const C_BASE = " << layout.cache_base << ";\n"
      << "virtual const C_SLOT = " << kCacheSlotBytes << ";\n"
      << "virtual const C_MASK = " << kCacheSlots - 1 << ";\n"
      << "virtual const C_VAL = " << kCacheValueOff << ";\n"
      << "virtual const CLIENT_NH = " << layout.client_nh_base << ";\n"
      << "virtual const SERVER_NH = " << layout.server_nh_base << ";\n"
      << "virtual const REQ_PORT = " << kRequestUdpPort << ";\n"
      << "virtual const RESP_PORT = " << kResponseUdpPort << ";\n"
      << "virtual const MIN_PRESET = 4294967295;\n"
      << "virtual const CTR_HIT = " << ctr_word(kCtrCacheHit) << ";\n"
      << "virtual const CTR_MISS = " << ctr_word(kCtrCacheMiss) << ";\n"
      << "virtual const CTR_FILL = " << ctr_word(kCtrCacheFill) << ";\n"
      << "virtual const CTR_INVAL = " << ctr_word(kCtrInvalidate) << ";\n"
      << "virtual const CTR_MERGED = " << ctr_word(kCtrMerged) << ";\n"
      << "virtual const CTR_DONE = " << ctr_word(kCtrCompleted) << ";\n"
      << "virtual const CTR_RELAY = " << ctr_word(kCtrRelayed) << ";\n"
      << "virtual const CTR_TO_SRV = " << ctr_word(kCtrToServer) << ";\n"
      << "virtual const CTR_BAD = " << ctr_word(kCtrBad) << ";\n"
      << "virtual const CTR_STALE = " << ctr_word(kCtrStale) << ";\n"
      << "\n"
         "memory ether_t *eth_p = 0;\n"
         "memory ipv4_t *ip_p = 14;\n"
         "memory udp_t *udp_p = 34;\n"
         "memory netrpc_t *rpc_p = 42;\n"
         "bus swp_a;\n"
         "bus swp_b;\n"
         "\n";

  // ---------------------------------------------------------------------
  // Entry: tenant check, then the 8-way opcode classify (the full width
  // of one instruction's multi-way branch).
  src <<
      "check_tenant:\n"
      "begin\n"
      "  if (rpc_p->tenant != TENANT) { goto bad_packet; }\n"
      "  goto classify;\n"
      "end\n"
      "\n"
      "classify:\n"
      "begin\n"
      "  switch (rpc_p->op) {\n"
      "    case 1: { goto get_req; }\n"        // GET_REQ
      "    case 2: { goto fill_check; }\n"     // GET_RESP: fill in transit
      "    case 3: { goto put_req; }\n"        // PUT_REQ: invalidate
      "    case 4: { goto relay_client; }\n"   // PUT_RESP
      "    case 5: { goto to_server; }\n"      // RPC_REQ
      "    case 6: { goto merge_check_hdr; }\n"// RPC_RESP: in-flight merge
      "    case 7: { goto relay_client; }\n"   // MERGED_RESP (transit)
      "    default: { goto bad_packet; }\n"
      "  }\n"
      "end\n"
      "\n";

  // ---------------------------------------------------------------------
  // GET: hot-key cache. Hit -> answer from SMS, swapping the packet's own
  // addresses; miss -> count and pass through to the home server.
  src <<
      "get_req:\n"
      "begin\n"
      "  if (rpc_p->client_id >= N_CLIENTS) { goto bad_packet; }\n"
      "  if (rpc_p->key >> 48 != TENANT) { goto bad_packet; }\n"
      "end\n"
      "\n"
      "get_lookup:\n"
      "begin\n"
      "  ir1 = HashLookup(rpc_p->key);\n"  // sets REF: the cache's LRU bit
      "end\n"
      "\n"
      "get_decide:\n"
      "begin\n"
      "  if (ir1 == 0) { goto get_miss; }\n"
      "  goto get_hit;\n"
      "end\n"
      "\n"
      "get_hit:\n"
      "begin\n"
      "  CounterIncPhys(CTR_HIT, r_work.pkt_len);\n"
      "  ir2 = SmsReadVec(ir1, VAL_OFF, VAL_BYTES);\n"  // value -> packet
      "end\n"
      "\n"
      "get_hit_hdr:\n"
      "begin\n"
      "  rpc_p->op = 2;\n"     // GET_RESP
      "  rpc_p->flags = 2;\n"  // from_cache
      "  call swap_addrs;\n"
      "end\n"
      "\n"
      "get_hit_nh:\n"
      "begin\n"
      "  ir3 = SmsRead64(CLIENT_NH + rpc_p->client_id * 8);\n"
      "end\n"
      "\n"
      "get_hit_fwd:\n"
      "begin\n"
      "  Forward(ir3);\n"
      "  Exit();\n"
      "end\n"
      "\n"
      "get_miss:\n"
      "begin\n"
      "  CounterIncPhys(CTR_MISS, r_work.pkt_len);\n"
      "  goto to_server;\n"
      "end\n"
      "\n";

  // ---------------------------------------------------------------------
  // PUT: explicit invalidation in transit, then on to the replica.
  src <<
      "put_req:\n"
      "begin\n"
      "  if (rpc_p->key >> 48 != TENANT) { goto bad_packet; }\n"
      "end\n"
      "\n"
      "put_inval:\n"
      "begin\n"
      "  ir6 = HashDelete(rpc_p->key);\n"
      "end\n"
      "\n"
      "put_count:\n"
      "begin\n"
      "  if (ir6 == 1) { CounterIncPhys(CTR_INVAL, r_work.pkt_len); }\n"
      "  goto to_server;\n"
      "end\n"
      "\n";

  // ---------------------------------------------------------------------
  // Request egress (GET miss / PUT / RPC_REQ fan-out leg).
  src <<
      "to_server:\n"
      "begin\n"
      "  if (rpc_p->server_id >= N_SERVERS) { goto bad_packet; }\n"
      "end\n"
      "\n"
      "to_server_nh:\n"
      "begin\n"
      "  ir3 = SmsRead64(SERVER_NH + rpc_p->server_id * 8);\n"
      "end\n"
      "\n"
      "to_server_fwd:\n"
      "begin\n"
      "  CounterIncPhys(CTR_TO_SRV, r_work.pkt_len);\n"
      "  Forward(ir3);\n"
      "  Exit();\n"
      "end\n"
      "\n";

  // ---------------------------------------------------------------------
  // GET_RESP transit: absorb the value into the direct-mapped cache slot,
  // evicting the previous occupant's presence entry if the slot is taken.
  src <<
      "fill_check:\n"
      "begin\n"
      "  if (rpc_p->value_cnt != VAL_WORDS) { goto bad_packet; }\n"
      "  if (rpc_p->client_id >= N_CLIENTS) { goto bad_packet; }\n"
      "end\n"
      "\n"
      "fill_keycheck:\n"
      "begin\n"
      "  if (rpc_p->key >> 48 != TENANT) { goto bad_packet; }\n"
      "  ir0 = rpc_p->key;\n"
      "end\n"
      "\n"
      "fill_slot:\n"
      "begin\n"
      "  ir4 = C_BASE + (ir0 & C_MASK) * C_SLOT;\n"
      "end\n"
      "\n"
      "fill_owner:\n"
      "begin\n"
      "  ir5 = SmsRead64(ir4);\n"  // key currently owning the slot
      "end\n"
      "\n"
      "fill_decide:\n"
      "begin\n"
      "  if (ir5 == ir0) { goto fill_refresh; }\n"
      "  if (ir5 == 0) { goto fill_new; }\n"
      "  goto fill_evict;\n"
      "end\n"
      "\n"
      "fill_evict:\n"
      "begin\n"
      "  ir7 = HashDelete(ir5);\n"  // previous occupant loses presence
      "end\n"
      "\n"
      "fill_new:\n"
      "begin\n"
      // Value lands before the presence entry appears (next block), so a
      // concurrent GET can miss during a fill but never hit a torn value.
      "  SmsWrite64(ir4, ir0);\n"
      "  SmsWriteVec(ir4 + C_VAL, VAL_OFF, VAL_BYTES);\n"
      "end\n"
      "\n"
      "fill_insert:\n"
      "begin\n"
      "  ir7 = HashInsert(ir0, ir4 + C_VAL);\n"
      "end\n"
      "\n"
      "fill_count:\n"
      "begin\n"
      "  CounterIncPhys(CTR_FILL, r_work.pkt_len);\n"
      "  goto relay_client;\n"
      "end\n"
      "\n"
      "fill_refresh:\n"
      "begin\n"
      "  SmsWriteVec(ir4 + C_VAL, VAL_OFF, VAL_BYTES);\n"
      "end\n"
      "\n"
      "fill_represent:\n"
      "begin\n"
      // A PUT's invalidation deletes the presence entry but leaves the
      // slot owner in place, so owner == key does NOT imply presence:
      // restore it (insert is a refused no-op while the entry lives).
      "  ir7 = HashInsert(ir0, ir4 + C_VAL);\n"
      "end\n"
      "\n"
      "fill_refresh_count:\n"
      "begin\n"
      "  CounterIncPhys(CTR_FILL, r_work.pkt_len);\n"
      "  goto relay_client;\n"
      "end\n"
      "\n";

  // ---------------------------------------------------------------------
  // RPC_RESP: the in-flight merge. The RMW engine applies the policy's
  // vector op into the pending slot's merge buffer *before* the arrival
  // counter ticks (both resolve at SMS issue order), so the thread that
  // sees old+1 == N can read a complete merge.
  //
  // Ownership: the slot's owner word is (rpc_id << 1) | done. Per-client
  // call ids are monotone and never congruent mod P_SLOTS while live
  // (RpcClient enforces both), so the owner classifies a response:
  // exactly our id with done clear -> the live call, merge; our id with
  // done set -> our call already completed (the aging scan gave up on
  // us), drop; a larger id -> the slot moved on to a newer call, drop;
  // a smaller id -> that call is finished, claim the slot by overwriting
  // the owner. Stale responses never write, and every done transition
  // (full fan-in below, degraded completion in the scan) restores the
  // preset arrived/merge state — so a claim needs no reset, and
  // concurrent claims by responses of one call write identical owner
  // words. Without the done marker, a straggler arriving after its call
  // was degraded re-pollutes the reset slot and the next call on the
  // slot completes one response early with the stale value folded in.
  src <<
      "merge_check_hdr:\n"
      "begin\n"
      "  if (rpc_p->client_id >= N_CLIENTS) { goto bad_packet; }\n"
      "  if (rpc_p->value_cnt != VAL_WORDS) { goto bad_packet; }\n"
      "end\n"
      "\n"
      "merge_check_policy:\n"
      "begin\n"
      "  if (rpc_p->policy != POLICY) { goto bad_packet; }\n"
      "  ir6 = rpc_p->rpc_id;\n"
      "end\n"
      "\n"
      "merge_slot:\n"
      "begin\n"
      "  ir4 = P_BASE + (rpc_p->client_id * P_SLOTS\n"
      "                  + (ir6 & P_MASK)) * P_SLOT;\n"
      "end\n"
      "\n"
      "merge_owner_rd:\n"
      "begin\n"
      "  ir5 = SmsRead64(ir4);\n"
      "end\n"
      "\n"
      "merge_owner_decide:\n"
      "begin\n"
      "  if (ir5 == (ir6 << 1)) { goto merge_do; }\n"  // live occupant
      "  goto merge_owner_order;\n"
      "end\n"
      "\n"
      "merge_owner_order:\n"
      "begin\n"
      "  if ((ir5 >> 1) < ir6) { goto merge_claim; }\n"  // finished: take it
      "  goto merge_stale;\n"  // our call completed, or a newer call owns
      "end\n"
      "\n"
      "merge_claim:\n"
      "begin\n"
      "  SmsWrite64(ir4, ir6 << 1);\n"  // aging scan reads this back
      "end\n"
      "\n"
      "merge_do:\n"
      "begin\n"
      "  switch (rpc_p->policy) {\n"
      "    case 0: { AddVec32(ir4 + P_MERGE, VAL_OFF, VAL_BYTES); }\n"
      "    case 1: { MinVec32(ir4 + P_MERGE, VAL_OFF, VAL_BYTES); }\n"
      "    case 2: { VoteVec32(ir4 + P_MERGE, VAL_OFF, VAL_BYTES); }\n"
      "    default: { goto bad_packet; }\n"
      "  }\n"
      "  ir5 = FetchAdd32(ir4 + P_ARRIVED, 1);\n"
      "end\n"
      "\n"
      "merge_count:\n"
      "begin\n"
      "  if (ir5 + 1 < N_SERVERS) { goto merge_partial; }\n"
      "  goto merge_complete;\n"
      "end\n"
      "\n"
      "merge_partial:\n"
      "begin\n"
      "  CounterIncPhys(CTR_MERGED, r_work.pkt_len);\n"
      "  Drop();\n"  // response absorbed into the merge buffer
      "end\n"
      "\n"
      "merge_complete:\n"
      "begin\n"
      // Candidates plane doubles as the result for all three policies
      // (split-plane majority buffer).
      "  ir2 = SmsReadVec(ir4 + P_MERGE, VAL_OFF, VAL_BYTES);\n"
      "end\n"
      "\n"
      "merge_hdr:\n"
      "begin\n"
      "  rpc_p->op = 7;\n"  // MERGED_RESP
      "  rpc_p->server_cnt = N_SERVERS;\n"
      "end\n"
      "\n"
      "merge_reset_meta:\n"
      "begin\n"
      "  SmsWrite64(ir4, (ir6 << 1) | 1);\n"  // owner: done, id kept
      "  SmsWrite64(ir4 + 8, 0);\n"           // arrived counter (+ padding)
      "end\n"
      "\n"
      "merge_reset_buf:\n"
      "begin\n"
      "  switch (rpc_p->policy) {\n"
      "    case 0: { SmsFill32(ir4 + P_MERGE, 0, VAL_BYTES); }\n"
      "    case 1: { SmsFill32(ir4 + P_MERGE, MIN_PRESET, VAL_BYTES); }\n"
      "    case 2: { SmsFill32(ir4 + P_MERGE, 0, VAL2_BYTES); }\n"
      "    default: { }\n"
      "  }\n"
      "  CounterIncPhys(CTR_DONE, r_work.pkt_len);\n"
      "  goto to_client;\n"
      "end\n"
      "\n"
      "merge_stale:\n"
      "begin\n"
      "  CounterIncPhys(CTR_STALE, r_work.pkt_len);\n"
      "  Drop();\n"  // displaced straggler: absorbed without a trace
      "end\n"
      "\n";

  // ---------------------------------------------------------------------
  // Response egress toward the client.
  src <<
      "relay_client:\n"
      "begin\n"
      "  if (rpc_p->client_id >= N_CLIENTS) { goto bad_packet; }\n"
      "  CounterIncPhys(CTR_RELAY, r_work.pkt_len);\n"
      "end\n"
      "\n"
      "to_client:\n"
      "begin\n"
      "  ir3 = SmsRead64(CLIENT_NH + rpc_p->client_id * 8);\n"
      "end\n"
      "\n"
      "to_client_fwd:\n"
      "begin\n"
      "  Forward(ir3);\n"
      "  Exit();\n"
      "end\n"
      "\n"
      "bad_packet:\n"
      "begin\n"
      "  CounterIncPhys(CTR_BAD, r_work.pkt_len);\n"
      "  Drop();\n"
      "end\n"
      "\n";

  // ---------------------------------------------------------------------
  // swap_addrs: turn the request the thread holds into its own response
  // (cache hit path). One swap per instruction — two LMEM reads and two
  // writes is exactly one block's budget; the bus variables carry the
  // values across the exchange without burning ports.
  src <<
      "swap_addrs:\n"
      "begin\n"
      "  swp_a = eth_p->dmac;\n"
      "  swp_b = eth_p->smac;\n"
      "  eth_p->dmac = swp_b;\n"
      "  eth_p->smac = swp_a;\n"
      "end\n"
      "\n"
      "swap_ip:\n"
      "begin\n"
      "  swp_a = ip_p->src;\n"
      "  swp_b = ip_p->dst;\n"
      "  ip_p->src = swp_b;\n"
      "  ip_p->dst = swp_a;\n"
      "end\n"
      "\n"
      "swap_udp:\n"
      "begin\n"
      "  udp_p->sport = REQ_PORT;\n"
      "  udp_p->dport = RESP_PORT;\n"
      "  return;\n"
      "end\n";

  return src.str();
}

std::shared_ptr<const microcode::CompiledProgram> compile_datapath(
    const ServiceConfig& cfg, const ServiceLayout& layout) {
  return microcode::compile(generate_datapath_source(cfg, layout));
}

}  // namespace netrpc
