// PISA baseline for in-network RPC merging (fig_netrpc's comparison
// system): the same protocol on a Tofino-style pipeline.
//
// What the architecture can and cannot express is the point of the
// baseline, so the limits are structural, not simulated:
//   * response merging works — per-slot count in one stage, value words
//     spread across the later stages' register arrays (one access per
//     array per traversal, exactly like SwitchML's gradient spread);
//   * NO data-plane timers — a fan-out with a crashed or straggling
//     replica holds its slot forever and the client never hears back;
//     Trio's aged degraded completion has no PISA equivalent, which is
//     what the p99-under-stragglers comparison measures;
//   * majority (Boyer-Moore) merge is REJECTED at install: the candidate
//     update depends on the count read and vice versa, two dependent
//     stateful accesses one traversal cannot make — on PISA that vote
//     needs recirculation per response. configure() throws.
//   * no hot-key cache: GETs traverse to the server and back at full
//     RTT every time.
#pragma once

#include <cstdint>
#include <vector>

#include "netrpc/wire_format.hpp"
#include "pisa/switch.hpp"

namespace netrpc {

struct PisaRpcConfig {
  std::uint8_t tenant = 1;
  std::uint16_t value_words = 8;
  MergePolicy policy = MergePolicy::kSum;
  std::uint8_t client_cnt = 1;
  /// Pending fan-out slots per client (rpc_id & 15, like the Trio app).
  std::uint32_t slots_per_client = 16;
  int value_stages = 8;  // stages carrying value register arrays
};

/// Installs the RPC merge/forward program on pipeline 0 of `sw`. Clients
/// and servers attach to the given ports (indexed by client_id /
/// server_id); requests forward to their server port, responses merge in
/// the register arrays and the completing response egresses to the
/// client port rewritten as a MERGED_RESP.
class PisaRpcSwitch {
 public:
  PisaRpcSwitch(pisa::Switch& sw, PisaRpcConfig config,
                std::vector<int> client_ports, std::vector<int> server_ports);

  std::uint64_t packets() const { return packets_; }
  std::uint64_t merges_completed() const { return merges_completed_; }
  /// Non-completing responses absorbed into the register state.
  std::uint64_t absorbed() const { return absorbed_; }

  const PisaRpcConfig& config() const { return config_; }

 private:
  void install();

  pisa::Switch& sw_;
  PisaRpcConfig config_;
  std::vector<int> client_ports_;
  std::vector<int> server_ports_;
  int count_array_ = -1;
  std::vector<std::vector<int>> value_arrays_;  // [stage][array]
  std::uint64_t packets_ = 0;
  std::uint64_t merges_completed_ = 0;
  std::uint64_t absorbed_ = 0;
};

}  // namespace netrpc
