// NetRPC packet wire format (docs/netrpc.md).
//
// A NetRPC packet is Ethernet / IPv4 / UDP followed by the 20-byte NetRPC
// header and a fixed-size value area of `value_words` 32-bit little-endian
// words. Requests are sent *pre-sized* for their response (the value area
// is present but zero on GETs), so the datapath can rewrite a request or
// a response into the packet it already holds — the PPE never grows a
// frame. Requests ride UDP dst port 12100 (toward servers), responses
// ride 12101 (toward clients); both carry the tenant id in the header so
// the egress classifier and HostMux stay stateless.
#pragma once

#include <cstdint>
#include <span>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace netrpc {

/// UDP destination port of client->server traffic (requests).
constexpr std::uint16_t kRequestUdpPort = 12100;
/// UDP destination port of server->client traffic (responses).
constexpr std::uint16_t kResponseUdpPort = 12101;

/// Value area ceiling: 24 words keeps the whole frame inside the 192-byte
/// packet head the Dispatch module loads into thread LMEM, so the
/// microcode datapath rewrites packets without MQSS tail reads.
constexpr std::uint16_t kMaxValueWords = 24;

/// Offset of the NetRPC header within a frame (after Eth/IP/UDP).
constexpr std::size_t kNetRpcHdrOff = net::UdpFrameLayout::kPayloadOff;  // 42
/// Offset of the first value word.
constexpr std::size_t kValueOff = kNetRpcHdrOff + 20;

enum class Op : std::uint8_t {
  kGetReq = 1,     // client -> home server; answered from cache on a hit
  kGetResp = 2,    // server -> client; fills the cache in transit
  kPutReq = 3,     // client -> replica; invalidates the cache in transit
  kPutResp = 4,    // replica -> client ack
  kRpcReq = 5,     // client -> one replica of the fan-out
  kRpcResp = 6,    // replica -> client; merged in-flight at the PFE
  kMergedResp = 7, // the PFE's reduced response (or a degraded aged one)
};

enum class MergePolicy : std::uint8_t {
  kSum = 0,       // element-wise 32-bit sum (kAddVec32)
  kMin = 1,       // element-wise unsigned min (kMinVec32)
  kMajority = 2,  // element-wise Boyer-Moore majority (kVoteVec32)
};

constexpr std::uint8_t kFlagDegraded = 0x01;  // merged before full fan-in
constexpr std::uint8_t kFlagCached = 0x02;    // GET answered by the PFE

/// Bit-exact 20-byte layout (fields MSB-first):
///   op:8 tenant:8 client_id:8 server_id:8
///   policy:8 flags:8 value_cnt:8 server_cnt:8
///   rpc_id:32  key:64
struct NetRpcHeader {
  static constexpr std::size_t kSize = 20;

  Op op = Op::kGetReq;
  std::uint8_t tenant = 0;
  std::uint8_t client_id = 0;
  std::uint8_t server_id = 0;
  MergePolicy policy = MergePolicy::kSum;
  std::uint8_t flags = 0;
  std::uint8_t value_cnt = 0;   // valid 32-bit words in the value area
  std::uint8_t server_cnt = 0;  // fan-out width / responders contributing
  std::uint32_t rpc_id = 0;
  std::uint64_t key = 0;        // bits 48..55 MUST equal `tenant` (make_key)

  void write(net::Buffer& buf, std::size_t off) const;
  static NetRpcHeader parse(const net::Buffer& buf, std::size_t off);
};

/// Tenant-partitioned key: the tenant id lives at bits 48..55 — exactly
/// where trioml/records.hpp puts the job id, because HwHashTable key
/// partitions slice on `key >> 48` (trio/hash_table.cpp). User keys are
/// 48-bit; the top byte stays zero so `key >> 48` IS the tenant id.
constexpr std::uint64_t make_key(std::uint8_t tenant, std::uint64_t user_key) {
  return std::uint64_t(tenant) << 48 | (user_key & 0x0000'ffff'ffff'ffffull);
}

/// The tenant a partitioned key belongs to (inverse of make_key).
constexpr std::uint8_t tenant_of_key(std::uint64_t key) {
  return static_cast<std::uint8_t>(key >> 48);
}

/// make_key's user-key half.
constexpr std::uint64_t user_key_of(std::uint64_t key) {
  return key & 0x0000'ffff'ffff'ffffull;
}

/// Builds a complete NetRPC frame: Eth/IP/UDP + header + `value_words`
/// value slots (those beyond `values.size()` are zero).
net::Buffer build_netrpc_frame(const net::MacAddr& eth_src,
                               const net::MacAddr& eth_dst,
                               net::Ipv4Addr ip_src, net::Ipv4Addr ip_dst,
                               std::uint16_t udp_src, std::uint16_t udp_dst,
                               const NetRpcHeader& hdr,
                               std::span<const std::uint32_t> values,
                               std::uint16_t value_words);

std::uint32_t read_value(const net::Buffer& frame, std::size_t i);
void write_value(net::Buffer& frame, std::size_t i, std::uint32_t v);

/// True when the frame is NetRPC traffic (either UDP port).
bool is_netrpc_frame(const net::Buffer& frame);

}  // namespace netrpc
