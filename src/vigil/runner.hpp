// Scenario runner: builds a profile's topology + workload, arms a fault
// schedule, executes with a simulated-time progress watchdog, drains, and
// runs the full invariant catalogue (docs/vigil.md "The runner").
//
// Convergence contract (mirrors `trio-run`): crashed participants are
// expected casualties; abandoned (give-up) completions are *degraded but
// converged*; every other survivor must finish. Golden-digest
// convergence — the faulted run's results must be bit-identical to the
// fault-free baseline — is asserted only when the run is provably
// lossless in value space: every worker finished, nothing crashed, no
// degraded or abandoned blocks, and no frame was corrupted (corruption
// silently changes sums; everything else only delays or re-sends exact
// integer contributions).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "faults/schedule.hpp"
#include "sim/time.hpp"
#include "vigil/generator.hpp"
#include "vigil/invariants.hpp"

namespace vigil {

struct RunConfig {
  Profile profile = Profile::kFailover;
  std::uint64_t seed = 1;
  /// Gradient blocks per worker per allreduce (small keeps fuzz fast).
  int blocks_per_worker = 2;
  /// Hard simulated-time bound on the run.
  sim::Time deadline = sim::Time() + sim::Duration::millis(120);
  /// Watchdog: sampling cadence and the no-progress window that trips it.
  /// The window must exceed every legitimate quiet period (retransmit
  /// backoff max, give-up grace, stall windows).
  sim::Duration watchdog_step = sim::Duration::millis(2);
  sim::Duration watchdog_window = sim::Duration::millis(40);
  /// Extra simulated time granted after the deadline for the drain phase
  /// (timers stopped, queue runs dry) before quiescence checks.
  sim::Duration drain_grace = sim::Duration::millis(60);
  /// Re-introduces the pre-give-up wedge (Config::give_up_grace = 0):
  /// workers whose aggregation path died permanently stall forever
  /// instead of completing degraded. The planted bug the watchdog must
  /// catch and the shrinker must reduce (docs/vigil.md "Worked repro").
  bool plant_wedge_bug = false;
};

struct RunReport {
  Profile profile = Profile::kFailover;
  std::uint64_t seed = 0;
  faults::FaultSchedule schedule;
  std::vector<Violation> violations;

  /// Every surviving participant finished before the deadline.
  bool converged = false;
  int finished = 0;
  int expected = 0;
  int crashed = 0;  // participants that crashed at least once
  std::uint64_t degraded_blocks = 0;
  std::uint64_t abandoned_blocks = 0;
  std::uint64_t corrupted_frames = 0;
  std::uint64_t retransmissions = 0;
  /// FNV-1a fingerprint of the injector's executed-action log.
  std::uint64_t fault_digest = 0;
  /// (participant id, result digest) for every participant that finished
  /// *clean* — no crash, nothing degraded or abandoned. Id 0 is the
  /// failover profile's single job; otherwise the allreduce tenant id.
  /// These are what the golden-digest check compares to the fault-free
  /// baseline.
  std::vector<std::pair<int, std::uint64_t>> digests;
  sim::Time finish;

  bool ok() const { return converged && violations.empty(); }
};

/// Replays `schedule` against the profile's canonical topology/workload.
/// Fresh topology per call — the shrinker re-runs this dozens of times.
RunReport run_schedule(const RunConfig& config,
                       const faults::FaultSchedule& schedule);

/// generate(seed, profile) + run_schedule.
RunReport run_scenario(const RunConfig& config);

}  // namespace vigil
