#include "vigil/runner.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "jobs/fluid.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/tenant.hpp"
#include "netrpc/app.hpp"
#include "netrpc/host.hpp"
#include "recovery/recovery.hpp"

namespace vigil {
namespace {

std::uint64_t fnv_fold(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t digest_results(
    const std::vector<std::optional<trioml::AllreduceResult>>& results) {
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& res : results) {
    if (!res) continue;
    for (float g : res->grads) {
      std::uint32_t bits;
      std::memcpy(&bits, &g, sizeof(bits));
      h = fnv_fold(h, bits);
    }
  }
  return h;
}

/// Simulated-time progress watchdog (docs/vigil.md): samples a "useful
/// work" counter every `step`; no change for longer than `window` while
/// participants are still busy trips it — as a livelock when raw frame
/// churn kept flowing (futile retransmit storm), as a deadlock when
/// nothing moved at all.
struct Watchdog {
  sim::Simulator& sim;
  std::function<std::uint64_t()> useful;
  std::function<std::uint64_t()> churn;
  std::function<bool()> busy;
  sim::Duration step;
  sim::Duration window;
  sim::Time deadline;
  std::vector<Violation>* out;

  bool stopped = false;
  bool tripped = false;
  sim::Time last_useful_at{};
  std::uint64_t last_useful = 0;
  std::uint64_t churn_at_useful = 0;

  void start() {
    last_useful_at = sim.now();
    last_useful = useful();
    churn_at_useful = churn();
    arm();
  }
  void arm() {
    sim.schedule_in(step, [this] { tick(); });
  }
  void tick() {
    if (stopped) return;
    const std::uint64_t u = useful();
    const std::uint64_t c = churn();
    if (u != last_useful) {
      last_useful = u;
      last_useful_at = sim.now();
      churn_at_useful = c;
    }
    if (!tripped && busy() && sim.now() - last_useful_at > window) {
      tripped = true;
      const bool live = c != churn_at_useful;
      std::ostringstream os;
      os << "no useful progress for "
         << (sim.now() - last_useful_at).us() << " us with participants "
         << "still busy (" << (c - churn_at_useful)
         << " frame(s) of futile churn since)";
      out->push_back(Violation{live ? "watchdog-livelock"
                                    : "watchdog-deadlock",
                               os.str(), sim.now()});
    }
    if (sim.now() + step <= deadline) arm();
  }
};

struct Baseline {
  bool valid = false;
  /// Participant id -> fault-free digest (0 = the failover single job,
  /// otherwise the allreduce tenant id).
  std::map<int, std::uint64_t> digests;
};

RunReport run_impl(const RunConfig& config,
                   const faults::FaultSchedule& schedule, bool check_golden);

const Baseline& baseline_for(const RunConfig& config) {
  static std::map<std::pair<int, int>, Baseline> cache;
  const auto key = std::make_pair(int(config.profile),
                                  config.blocks_per_worker);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  RunConfig base = config;
  base.plant_wedge_bug = false;
  const RunReport rep = run_impl(base, faults::FaultSchedule(), false);
  Baseline b;
  b.valid = rep.converged && rep.violations.empty() && rep.crashed == 0 &&
            rep.degraded_blocks == 0 && rep.abandoned_blocks == 0;
  for (const auto& [id, digest] : rep.digests) b.digests[id] = digest;
  return cache.emplace(key, std::move(b)).first->second;
}

void harden(trioml::TrioMlWorker& worker, const RunConfig& config) {
  worker.enable_hardened_retransmit(sim::Duration::millis(1),
                                    /*retry_budget=*/6,
                                    sim::Duration::millis(8));
  if (!config.plant_wedge_bug) {
    worker.enable_give_up(sim::Duration::millis(10));
  }
}

RunReport run_impl(const RunConfig& config,
                   const faults::FaultSchedule& schedule,
                   bool check_golden) {
  RunReport report;
  report.profile = config.profile;
  report.seed = config.seed;
  report.schedule = schedule;

  const ScenarioShape shape = profile_shape(config.profile);
  cluster::ClusterSpec spec;
  spec.racks = shape.racks;
  spec.workers_per_rack = shape.workers_per_rack;
  spec.backup_spine = shape.has_backup_spine;
  spec.shards = 1;  // recovery + jobs need the single-shard engine
  spec.validate();
  cluster::Cluster cl(spec);
  sim::Simulator& s = cl.simulator();

  // --- Profile workload -------------------------------------------------
  std::unique_ptr<jobs::JobManager> mgr;
  std::unique_ptr<jobs::FluidController> fluidc;
  std::unique_ptr<recovery::RecoveryManager> recov;
  jobs::JobsSpec jobs_spec;
  const std::size_t grads_per_worker =
      std::size_t(config.blocks_per_worker) * spec.grads_per_packet;
  switch (config.profile) {
    case Profile::kFailover:
      recov = std::make_unique<recovery::RecoveryManager>(cl);
      break;
    case Profile::kJobs: {
      jobs::TenantSpec t1;
      t1.id = 1;
      t1.grads = grads_per_worker;
      t1.window = 64;
      jobs::TenantSpec t2 = t1;
      t2.id = 2;
      jobs::TenantSpec t3;
      t3.id = 3;
      t3.kind = jobs::TenantKind::kBestEffort;
      t3.load = 0.5;
      jobs_spec.tenants = {t1, t2, t3};
      break;
    }
    case Profile::kNetRpc: {
      jobs::TenantSpec t1;
      t1.id = 1;
      t1.grads = grads_per_worker;
      t1.window = 64;
      jobs::TenantSpec t4;
      t4.id = 4;
      t4.kind = jobs::TenantKind::kNetRpc;
      jobs_spec.tenants = {t1, t4};
      break;
    }
    case Profile::kFluid: {
      jobs::TenantSpec t1;
      t1.id = 1;
      t1.grads = grads_per_worker;
      t1.window = 64;
      jobs::TenantSpec t3;
      t3.id = 3;
      t3.kind = jobs::TenantKind::kBestEffort;
      t3.load = 0.5;
      jobs_spec.tenants = {t1, t3};
      break;
    }
  }
  if (!jobs_spec.empty()) {
    mgr = std::make_unique<jobs::JobManager>(cl);
    mgr->enable_isolation();
    const jobs::AdmissionResult adm = mgr->admit_all(jobs_spec);
    if (!adm.admitted) {
      report.violations.push_back(Violation{
          "runner", "admission rejected: " + adm.reason, s.now()});
      return report;
    }
    if (config.profile == Profile::kFluid) {
      fluidc = std::make_unique<jobs::FluidController>(cl);
      mgr->enable_fluid(*fluidc);
    }
  }

  InvariantEngine inv(cl);
  if (mgr) inv.attach_jobs(*mgr, jobs_spec);

  // --- Faults + recovery machinery --------------------------------------
  faults::FaultInjector injector(s, nullptr);
  if (!schedule.empty()) {
    injector.bind(cl);
    if (mgr) mgr->bind_fault_injector(injector);
    injector.set_base_seed(config.seed);
    injector.arm(schedule);
    if (fluidc) fluidc->observe(schedule);
  }
  for (int w = 0; w < spec.total_workers(); ++w) {
    harden(cl.worker(w), config);
  }
  if (mgr) {
    for (jobs::TenantId t : mgr->admitted()) {
      for (int w = 0; w < spec.total_workers(); ++w) {
        if (trioml::TrioMlWorker* tw = mgr->tenant_worker(t, w)) {
          harden(*tw, config);
        }
      }
    }
  }
  cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));
  if (recov) recov->start();

  // --- Progress watchdog -------------------------------------------------
  const auto sum_useful = [&] {
    std::uint64_t u = 0;
    for (trioml::TrioMlApp* app : cl.apps()) {
      u += app->stats().blocks_completed + app->stats().blocks_aged +
           app->stats().blocks_lost_fault + app->stats().results_emitted;
    }
    for (int w = 0; w < spec.total_workers(); ++w) {
      u += cl.worker(w).results_received();
    }
    if (mgr) {
      for (jobs::TenantId t : mgr->admitted()) {
        for (int w = 0; w < spec.total_workers(); ++w) {
          if (trioml::TrioMlWorker* tw = mgr->tenant_worker(t, w)) {
            u += tw->results_received();
          }
          if (netrpc::RpcClient* c = mgr->tenant_rpc_client(int(t), w)) {
            u += c->calls_completed();
          }
        }
      }
    }
    return u;
  };
  const auto sum_churn = [&] {
    std::uint64_t c = 0;
    for (int w = 0; w < spec.total_workers(); ++w) {
      c += cl.link(w).a_to_b().frames_delivered() +
           cl.link(w).b_to_a().frames_delivered();
    }
    for (int r = 0; r < spec.racks; ++r) {
      c += cl.fabric_link(r).a_to_b().frames_delivered() +
           cl.fabric_link(r).b_to_a().frames_delivered();
      if (cl.has_backup_spine()) {
        c += cl.backup_fabric_link(r).a_to_b().frames_delivered() +
             cl.backup_fabric_link(r).b_to_a().frames_delivered();
      }
    }
    return c;
  };
  const auto any_busy = [&] {
    for (int w = 0; w < spec.total_workers(); ++w) {
      if (cl.worker(w).busy()) return true;
    }
    if (mgr) {
      for (jobs::TenantId t : mgr->admitted()) {
        for (int w = 0; w < spec.total_workers(); ++w) {
          trioml::TrioMlWorker* tw = mgr->tenant_worker(t, w);
          if (tw != nullptr && tw->busy()) return true;
        }
      }
    }
    return false;
  };
  Watchdog wd{s,
              sum_useful,
              sum_churn,
              any_busy,
              config.watchdog_step,
              config.watchdog_window,
              config.deadline,
              &report.violations};
  wd.start();

  // --- Run ---------------------------------------------------------------
  std::optional<jobs::MultiTenantRun> mrun;
  std::vector<std::optional<trioml::AllreduceResult>> results;
  if (mgr) {
    mrun = mgr->run(/*gen_id=*/1, config.deadline);
  } else {
    const auto grads =
        cluster::patterned_gradients(spec.total_workers(), grads_per_worker);
    results.resize(std::size_t(spec.total_workers()));
    int remaining = spec.total_workers();
    for (int w = 0; w < spec.total_workers(); ++w) {
      cl.worker(w).start_allreduce(
          grads[std::size_t(w)], /*gen_id=*/1,
          [&results, &remaining, w](trioml::AllreduceResult res) {
            results[std::size_t(w)] = std::move(res);
            --remaining;
          });
    }
    const sim::Duration chunk = sim::Duration::millis(1);
    while (remaining > 0 && s.now() < config.deadline) {
      const sim::Time next = s.now() + chunk < config.deadline
                                 ? s.now() + chunk
                                 : config.deadline;
      s.run_until(next);
    }
  }

  // --- Drain to quiescence ----------------------------------------------
  wd.stopped = true;
  cl.stop_straggler_detection();
  if (recov) recov->stop();
  if (mgr && mgr->netrpc_app()) mgr->netrpc_app()->stop_aging();
  s.run_until(s.now() + config.drain_grace);
  const bool quiescent = !s.pending();
  report.finish = s.now();
  report.fault_digest = injector.digest();

  // --- Outcome accounting ------------------------------------------------
  const auto count_worker = [&](trioml::TrioMlWorker& w, bool finished) {
    ++report.expected;
    if (finished) ++report.finished;
    if (w.crashes() > 0) ++report.crashed;
    report.abandoned_blocks += w.abandoned_blocks();
    report.retransmissions += w.retransmissions();
  };
  if (mrun) {
    for (const jobs::TenantRun& tr : mrun->tenants) {
      if (tr.kind == jobs::TenantKind::kAllreduce) {
        bool clean = true;
        for (int w = 0; w < spec.total_workers(); ++w) {
          trioml::TrioMlWorker* tw = mgr->tenant_worker(tr.id, w);
          if (tw == nullptr) continue;
          const bool finished =
              std::size_t(w) < tr.results.size() &&
              !tr.results[std::size_t(w)].grads.empty();
          count_worker(*tw, finished);
          report.degraded_blocks +=
              std::size_t(w) < tr.results.size()
                  ? tr.results[std::size_t(w)].degraded_blocks +
                        tr.results[std::size_t(w)].abandoned_blocks
                  : 0;
          if (!finished || tw->crashes() > 0 ||
              (std::size_t(w) < tr.results.size() &&
               (tr.results[std::size_t(w)].degraded_blocks != 0 ||
                tr.results[std::size_t(w)].abandoned_blocks != 0))) {
            clean = false;
          }
        }
        if (clean) report.digests.emplace_back(int(tr.id), tr.digest());
      } else if (tr.kind == jobs::TenantKind::kNetRpc) {
        const jobs::TenantSpec* ts = mgr->tenant_spec(tr.id);
        const int clients = ts != nullptr ? int(ts->rpc_clients) : 0;
        report.expected += clients;
        report.finished += tr.finished;
        for (int w = 0; w < spec.total_workers(); ++w) {
          const netrpc::RpcClient* c =
              mgr->tenant_rpc_client(int(tr.id), w);
          if (c != nullptr && c->crashed()) ++report.crashed;
        }
      }
    }
  } else {
    std::uint64_t degraded = 0;
    for (int w = 0; w < spec.total_workers(); ++w) {
      const bool finished = results[std::size_t(w)].has_value();
      count_worker(cl.worker(w), finished);
      if (finished) {
        degraded += results[std::size_t(w)]->degraded_blocks +
                    results[std::size_t(w)]->abandoned_blocks;
      }
    }
    report.degraded_blocks = degraded;
    if (report.finished == report.expected && report.crashed == 0 &&
        degraded == 0) {
      report.digests.emplace_back(0, digest_results(results));
    }
  }
  report.converged = report.finished >= report.expected - report.crashed;

  for (int w = 0; w < spec.total_workers(); ++w) {
    report.corrupted_frames += cl.link(w).a_to_b().frames_corrupted() +
                               cl.link(w).b_to_a().frames_corrupted();
  }
  for (int r = 0; r < spec.racks; ++r) {
    report.corrupted_frames +=
        cl.fabric_link(r).a_to_b().frames_corrupted() +
        cl.fabric_link(r).b_to_a().frames_corrupted();
  }

  // --- Invariants --------------------------------------------------------
  if (quiescent) {
    inv.check_quiescent();
  } else {
    // Timers (or a wedged retransmit path) kept the queue alive; the
    // anytime checks still hold at any parked instant.
    inv.check_conservation();
  }
  for (const Violation& v : inv.violations()) report.violations.push_back(v);

  // Golden-digest convergence (header contract: only for provably
  // value-lossless runs).
  if (check_golden && !report.digests.empty() &&
      report.corrupted_frames == 0) {
    const Baseline& base = baseline_for(config);
    if (base.valid) {
      for (const auto& [id, digest] : report.digests) {
        const auto it = base.digests.find(id);
        if (it != base.digests.end() && it->second != digest) {
          std::ostringstream os;
          os << (id == 0 ? "job" : "tenant") << " " << id
             << ": post-recovery digest " << std::hex << digest
             << " != fault-free baseline " << it->second;
          report.violations.push_back(
              Violation{"golden-digest", os.str(), s.now()});
        }
      }
    }
  }
  return report;
}

}  // namespace

RunReport run_schedule(const RunConfig& config,
                       const faults::FaultSchedule& schedule) {
  return run_impl(config, schedule, /*check_golden=*/true);
}

RunReport run_scenario(const RunConfig& config) {
  return run_schedule(config, generate(config.seed, config.profile));
}

}  // namespace vigil
