// Seeded random fault-scenario generator (docs/vigil.md).
//
// One 64-bit seed expands — through a weighted grammar — into an
// arbitrary, *valid* FaultSchedule program: link flaps, down/up windows,
// burst and i.i.d. loss, corruption, router stalls, kill/revive windows,
// permanent kills, host crash/restart windows, tenant-scoped crashes and
// bucket drops. Generation is fully reproducible: the same (seed,
// grammar, shape) triple always yields the same schedule, and every
// loss/corruption event carries an explicit 32-bit `seed=` so the
// schedule replays bit-identically even through a `.faults` round trip
// (the DSL's numbers pass through a double; 32-bit seeds never lose
// precision — see FaultSchedule::to_dsl).
//
// Generated schedules always pass FaultSchedule::validate(): kill/revive
// windows never overlap per router, crash/restart windows never overlap
// per (worker, tenant), and tenant qualifiers only name declared tenants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/schedule.hpp"
#include "sim/time.hpp"

namespace vigil {

/// Workload profile a scenario is generated for / replayed against
/// (docs/vigil.md "Profiles"). Each fixes one topology + workload and a
/// grammar tuned to the subsystems it exercises.
enum class Profile {
  kFailover,  // 2x2 + backup spine + RecoveryManager; spine/leaf kills
  kJobs,      // multi-tenant allreduce + best-effort, tenant crashes
  kNetRpc,    // allreduce + canned netrpc tenant, cache/bucket drops
  kFluid,     // best-effort fluid streams + fault-window rematerialise
};

const char* profile_name(Profile profile);
/// Parses "failover" / "jobs" / "netrpc" / "fluid"; throws
/// std::invalid_argument on anything else.
Profile parse_profile(const std::string& name);

/// What the generator may target: the topology's extents plus the tenant
/// ids that `tenant=` qualifiers may name (empty = untenanted run).
struct ScenarioShape {
  int racks = 2;
  int workers_per_rack = 2;
  bool has_backup_spine = false;
  std::vector<int> tenants;

  int total_workers() const { return racks * workers_per_rack; }
};

/// Event-family weights and intensity bounds. A weight of 0 disables the
/// family; weights are relative (they need not sum to anything).
struct Grammar {
  double w_flap = 1.0;
  double w_down_up = 1.0;      // paired down ... up window
  double w_burst = 1.0;        // Gilbert–Elliott window
  double w_loss = 1.0;         // i.i.d. loss window
  double w_corrupt = 0.0;      // byte corruption (off by default: silent
                               // payload damage voids golden digests)
  double w_stall = 1.0;        // router ingress stall
  double w_kill_revive = 0.0;  // paired router kill ... revive
  double w_kill_perm = 0.0;    // permanent router kill (no revive)
  double w_crash_restart = 1.0;
  double w_crash_perm = 0.5;   // permanent host crash
  double w_bucket_drop = 1.0;
  double w_tenant_crash = 0.0; // tenant-scoped crash/restart window

  int min_events = 2;
  int max_events = 8;
  /// Fault start times are drawn in [0, horizon). Matched to the
  /// runner's workloads, which complete in ~1ms fault-free: a horizon
  /// much past that mostly hits an idle cluster.
  sim::Duration horizon = sim::Duration::millis(2);
  /// Windowed faults last [min_window, max_window].
  sim::Duration min_window = sim::Duration::micros(50);
  sim::Duration max_window = sim::Duration::millis(4);
  double max_loss = 0.2;      // i.i.d. loss probability cap
  double max_corrupt = 0.01;  // corruption probability cap

  bool allow_spine_kill = false;  // only sane with a standby spine
  bool allow_leaf_kill = false;   // leaf death = degraded completion path
};

/// The grammar each profile fuzzes with (docs/vigil.md lists them).
Grammar profile_grammar(Profile profile);
/// The topology/tenant shape each profile's runner builds.
ScenarioShape profile_shape(Profile profile);

/// Expands `seed` into a FaultSchedule under `grammar` and `shape`.
/// Deterministic; the result always passes validate(&shape.tenants).
faults::FaultSchedule generate(std::uint64_t seed, const Grammar& grammar,
                               const ScenarioShape& shape);

/// generate() with the profile's canonical grammar and shape.
faults::FaultSchedule generate(std::uint64_t seed, Profile profile);

}  // namespace vigil
