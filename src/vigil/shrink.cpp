#include "vigil/shrink.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace vigil {
namespace {

using faults::FaultEvent;
using faults::FaultKind;
using faults::FaultSchedule;
using faults::Target;

bool targets_match(const Target& open, const Target& close) {
  if (open.kind != close.kind) return false;
  return open.index == Target::kAll || close.index == Target::kAll ||
         open.index == close.index;
}

/// Drops closing events (revive/restart/link-up) whose opener is absent
/// from the subset, so every candidate passes validate() and never asks
/// the topology to revive something that was never taken down.
std::vector<FaultEvent> repair(std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  std::vector<FaultEvent> kept;
  std::vector<std::pair<Target, int>> kills;    // open (target, unused)
  std::vector<std::pair<Target, int>> crashes;  // open (target, tenant)
  std::vector<std::pair<Target, int>> downs;
  const auto take = [](std::vector<std::pair<Target, int>>& open,
                       const Target& t, int tenant) {
    for (auto it = open.begin(); it != open.end(); ++it) {
      if (targets_match(it->first, t) && it->second == tenant) {
        open.erase(it);
        return true;
      }
    }
    return false;
  };
  for (FaultEvent& e : events) {
    switch (e.kind) {
      case FaultKind::kRouterKill:
        kills.emplace_back(e.target, 0);
        break;
      case FaultKind::kRouterRevive:
        if (!take(kills, e.target, 0)) continue;
        break;
      case FaultKind::kHostCrash:
        crashes.emplace_back(e.target, e.tenant);
        break;
      case FaultKind::kHostRestart:
        if (!take(crashes, e.target, e.tenant)) continue;
        break;
      case FaultKind::kLinkDown:
        downs.emplace_back(e.target, 0);
        break;
      case FaultKind::kLinkUp:
        if (!take(downs, e.target, 0)) continue;
        break;
      default:
        break;
    }
    kept.push_back(std::move(e));
  }
  return kept;
}

FaultSchedule to_schedule(const std::vector<FaultEvent>& events) {
  FaultSchedule s;
  for (const FaultEvent& e : events) s.add(e);
  return s;
}

struct Budget {
  const Oracle& oracle;
  int calls = 0;
  int max_calls = 0;

  bool spent() const { return calls >= max_calls; }
  /// Runs the oracle on the repaired candidate; false when out of budget
  /// (conservative: an unexplored candidate is never kept).
  bool violates(const std::vector<FaultEvent>& events) {
    if (spent()) return false;
    ++calls;
    return oracle(to_schedule(repair(events)));
  }
};

/// Classic ddmin: partitions `events` into n chunks, tries each chunk and
/// each complement, recursing on whichever still violates with finer
/// granularity, until 1-minimal (no single event can be removed).
std::vector<FaultEvent> ddmin(std::vector<FaultEvent> events, Budget& budget) {
  std::size_t n = 2;
  while (events.size() >= 2 && !budget.spent()) {
    n = std::min(n, events.size());
    const std::size_t chunk = (events.size() + n - 1) / n;
    bool progressed = false;
    for (std::size_t i = 0; i < n && !progressed; ++i) {
      const std::size_t lo = std::min(i * chunk, events.size());
      const std::size_t hi = std::min(lo + chunk, events.size());
      if (lo >= hi) continue;
      // Try the chunk alone (fast path when one event suffices)...
      std::vector<FaultEvent> subset(events.begin() + std::ptrdiff_t(lo),
                                     events.begin() + std::ptrdiff_t(hi));
      if (subset.size() < events.size() && budget.violates(subset)) {
        events = std::move(subset);
        n = 2;
        progressed = true;
        break;
      }
      // ...then its complement.
      std::vector<FaultEvent> rest;
      rest.reserve(events.size() - (hi - lo));
      rest.insert(rest.end(), events.begin(), events.begin() + std::ptrdiff_t(lo));
      rest.insert(rest.end(), events.begin() + std::ptrdiff_t(hi), events.end());
      if (!rest.empty() && rest.size() < events.size() &&
          budget.violates(rest)) {
        events = std::move(rest);
        n = std::max<std::size_t>(2, n - 1);
        progressed = true;
      }
    }
    if (!progressed) {
      if (n >= events.size()) break;  // 1-minimal
      n = std::min(events.size(), n * 2);
    }
  }
  return events;
}

bool has_window(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kLinkFlap:
    case FaultKind::kBurstLoss:
    case FaultKind::kIidLoss:
    case FaultKind::kCorrupt:
    case FaultKind::kRouterStall:
      return e.duration > sim::Duration::zero();
    default:
      return false;
  }
}

void narrow_windows(std::vector<FaultEvent>& events, Budget& budget,
                    const ShrinkConfig& config) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    while (has_window(events[i]) &&
           events[i].duration > config.min_window && !budget.spent()) {
      std::vector<FaultEvent> candidate = events;
      candidate[i].duration = std::max(
          config.min_window, sim::Duration(candidate[i].duration.ns() / 2));
      if (!budget.violates(candidate)) break;
      events = std::move(candidate);
    }
  }
}

void lower_intensity(std::vector<FaultEvent>& events, Budget& budget,
                     const ShrinkConfig& config) {
  const auto try_halve = [&](std::size_t i, auto get, auto set) {
    while (get(events[i]) > config.min_probability && !budget.spent()) {
      std::vector<FaultEvent> candidate = events;
      set(candidate[i],
          std::max(config.min_probability, get(candidate[i]) / 2));
      if (!budget.violates(candidate)) break;
      events = std::move(candidate);
    }
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    switch (events[i].kind) {
      case FaultKind::kIidLoss:
      case FaultKind::kCorrupt:
        try_halve(
            i, [](const FaultEvent& e) { return e.probability; },
            [](FaultEvent& e, double v) { e.probability = v; });
        break;
      case FaultKind::kBurstLoss:
        try_halve(
            i, [](const FaultEvent& e) { return e.burst.loss_bad; },
            [](FaultEvent& e, double v) { e.burst.loss_bad = v; });
        break;
      default:
        break;
    }
  }
}

}  // namespace

ShrinkResult shrink(const faults::FaultSchedule& schedule,
                    const Oracle& oracle, const ShrinkConfig& config) {
  Budget budget{oracle, 0, config.max_oracle_calls};
  std::vector<FaultEvent> events = repair(schedule.events());

  events = ddmin(std::move(events), budget);
  narrow_windows(events, budget, config);
  lower_intensity(events, budget, config);

  ShrinkResult result;
  result.schedule = to_schedule(events);
  result.oracle_calls = budget.calls;
  result.reduced = result.schedule.size() < schedule.size() ||
                   result.schedule.to_dsl() != schedule.to_dsl();
  return result;
}

}  // namespace vigil
