#include "vigil/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/random.hpp"

namespace vigil {

const char* profile_name(Profile profile) {
  switch (profile) {
    case Profile::kFailover: return "failover";
    case Profile::kJobs: return "jobs";
    case Profile::kNetRpc: return "netrpc";
    case Profile::kFluid: return "fluid";
  }
  return "?";
}

Profile parse_profile(const std::string& name) {
  if (name == "failover") return Profile::kFailover;
  if (name == "jobs") return Profile::kJobs;
  if (name == "netrpc") return Profile::kNetRpc;
  if (name == "fluid") return Profile::kFluid;
  throw std::invalid_argument("unknown profile `" + name +
                              "` (failover|jobs|netrpc|fluid)");
}

Grammar profile_grammar(Profile profile) {
  Grammar g;
  switch (profile) {
    case Profile::kFailover:
      // Exercise detect -> failover -> recover: router deaths dominate,
      // link chaos keeps heartbeats and retransmits honest.
      g.w_kill_revive = 2.0;
      g.w_kill_perm = 1.0;
      g.allow_spine_kill = true;
      g.allow_leaf_kill = true;
      g.w_crash_restart = 0.5;
      g.w_crash_perm = 0.5;
      g.w_bucket_drop = 0.5;
      g.max_events = 6;
      break;
    case Profile::kJobs:
      // Multi-tenant: tenant-scoped crashes and bucket drops against the
      // admission/quota accounting.
      g.w_tenant_crash = 2.0;
      g.w_bucket_drop = 2.0;
      g.w_crash_perm = 0.5;
      break;
    case Profile::kNetRpc:
      // Stalls and drops against the pending-merge slots and hot-key
      // cache; bucket drops double as cache wipes (cache_dropper hook).
      g.w_stall = 2.0;
      g.w_bucket_drop = 2.0;
      g.w_tenant_crash = 1.0;
      g.w_crash_restart = 0.5;
      g.w_crash_perm = 0.0;  // a dead client would stall the closed loop
      break;
    case Profile::kFluid:
      // Fault windows are what demote/re-materialise fluid streams: lean
      // on windowed link faults.
      g.w_flap = 2.0;
      g.w_down_up = 2.0;
      g.w_loss = 2.0;
      g.w_burst = 2.0;
      g.w_crash_restart = 0.5;
      g.w_crash_perm = 0.0;
      g.w_bucket_drop = 0.5;
      break;
  }
  return g;
}

ScenarioShape profile_shape(Profile profile) {
  ScenarioShape s;
  s.racks = 2;
  s.workers_per_rack = 2;
  switch (profile) {
    case Profile::kFailover:
      s.has_backup_spine = true;
      break;
    case Profile::kJobs:
      s.tenants = {1, 2};  // the runner admits allreduce tenants 1 and 2
      break;
    case Profile::kNetRpc:
      s.tenants = {1, 4};  // allreduce 1 + canned netrpc tenant 4
      // The canned tenant (1 client + 3 servers) places within one rack;
      // 2 hosts per rack cannot seat it.
      s.workers_per_rack = 4;
      break;
    case Profile::kFluid:
      s.tenants = {1};  // allreduce 1 (+ best-effort 3, not crashable)
      break;
  }
  return s;
}

namespace {

/// The event families the grammar weights. Order is the draw order —
/// part of the generator's determinism contract.
enum class Family {
  kFlap,
  kDownUp,
  kBurst,
  kLoss,
  kCorrupt,
  kStall,
  kKillRevive,
  kKillPerm,
  kCrashRestart,
  kCrashPerm,
  kBucketDrop,
  kTenantCrash,
};

struct Weighted {
  Family family;
  double weight;
};

sim::Duration draw_window(sim::Rng& rng, const Grammar& g) {
  const std::int64_t lo = g.min_window.ns();
  const std::int64_t hi = std::max(lo + 1, g.max_window.ns());
  return sim::Duration(
      lo + std::int64_t(rng.next_below(std::uint64_t(hi - lo))));
}

sim::Time draw_at(sim::Rng& rng, const Grammar& g) {
  return sim::Time() +
         sim::Duration(std::int64_t(
             rng.next_below(std::uint64_t(std::max<std::int64_t>(
                 1, g.horizon.ns())))));
}

/// Explicit 32-bit stream seed (never 0 = "derive one").
std::uint64_t draw_seed(sim::Rng& rng) { return 1 + rng.next_below(0xffffffffull); }

faults::Target draw_link(sim::Rng& rng, const ScenarioShape& shape) {
  // 3:1 host links over fabric trunks (there are more of them).
  if (rng.next_below(4) < 3) {
    return faults::FaultSchedule::host_link(
        int(rng.next_below(std::uint64_t(shape.total_workers()))));
  }
  return faults::FaultSchedule::fabric_link(
      int(rng.next_below(std::uint64_t(shape.racks))));
}

}  // namespace

faults::FaultSchedule generate(std::uint64_t seed, const Grammar& g,
                               const ScenarioShape& shape) {
  sim::Rng rng(seed ^ 0x7669676967656eull);  // "vigilgen" salt
  faults::FaultSchedule out;

  std::vector<Weighted> families;
  const auto add = [&](Family f, double w) {
    if (w > 0.0) families.push_back({f, w});
  };
  add(Family::kFlap, g.w_flap);
  add(Family::kDownUp, g.w_down_up);
  add(Family::kBurst, g.w_burst);
  add(Family::kLoss, g.w_loss);
  add(Family::kCorrupt, g.w_corrupt);
  add(Family::kStall, g.w_stall);
  if (g.allow_spine_kill || g.allow_leaf_kill) {
    add(Family::kKillRevive, g.w_kill_revive);
    add(Family::kKillPerm, g.w_kill_perm);
  }
  add(Family::kCrashRestart, g.w_crash_restart);
  add(Family::kCrashPerm, g.w_crash_perm);
  add(Family::kBucketDrop, g.w_bucket_drop);
  if (!shape.tenants.empty()) add(Family::kTenantCrash, g.w_tenant_crash);
  if (families.empty()) return out;

  double total = 0;
  for (const Weighted& w : families) total += w.weight;

  const auto draw_family = [&] {
    double x = rng.next_double() * total;
    for (const Weighted& w : families) {
      if ((x -= w.weight) <= 0.0) return w.family;
    }
    return families.back().family;
  };

  // Validity bookkeeping: at most one kill window per router and one
  // crash window per (worker, tenant) per scenario keeps the schedule
  // trivially free of overlapping windows (validate() rejects those).
  bool spine_killed = false;
  std::vector<bool> leaf_killed(std::size_t(shape.racks), false);
  std::vector<std::pair<int, int>> crashed;  // (worker, tenant)
  const auto crash_free = [&](int w, int t) {
    return std::find(crashed.begin(), crashed.end(), std::make_pair(w, t)) ==
           crashed.end();
  };

  const int events =
      g.min_events +
      int(rng.next_below(std::uint64_t(
          std::max(1, g.max_events - g.min_events + 1))));
  for (int i = 0; i < events; ++i) {
    const Family family = draw_family();
    const sim::Time at = draw_at(rng, g);
    const sim::Duration window = draw_window(rng, g);
    switch (family) {
      case Family::kFlap:
        out.flap(at, draw_link(rng, shape), window);
        break;
      case Family::kDownUp: {
        const faults::Target link = draw_link(rng, shape);
        out.link_down(at, link);
        out.link_up(at + window, link);
        break;
      }
      case Family::kBurst: {
        net::GilbertElliott model;
        model.p_enter = 0.01 + 0.09 * rng.next_double();
        model.p_exit = 0.2 + 0.5 * rng.next_double();
        model.loss_good = 0.0;
        model.loss_bad = 0.5 + 0.5 * rng.next_double();
        out.burst_loss(at, draw_link(rng, shape), model, window,
                       draw_seed(rng));
        break;
      }
      case Family::kLoss:
        out.iid_loss(at, draw_link(rng, shape),
                     0.01 + (g.max_loss - 0.01) * rng.next_double(), window,
                     draw_seed(rng));
        break;
      case Family::kCorrupt:
        out.corrupt(at, draw_link(rng, shape),
                    g.max_corrupt * rng.next_double(), window,
                    draw_seed(rng));
        break;
      case Family::kStall: {
        const bool spine = shape.racks > 0 && rng.next_below(4) == 0;
        const faults::Target router =
            spine ? faults::FaultSchedule::spine_router()
                  : faults::FaultSchedule::leaf_router(
                        int(rng.next_below(std::uint64_t(shape.racks))));
        out.stall(at, router, window);
        break;
      }
      case Family::kKillRevive:
      case Family::kKillPerm: {
        // Prefer the spine (failover is the interesting path); fall back
        // to a leaf; give up (skip the event) when all targets are used.
        const bool want_spine =
            g.allow_spine_kill && (!g.allow_leaf_kill || rng.next_below(2) == 0);
        faults::Target router;
        if (want_spine && !spine_killed) {
          router = faults::FaultSchedule::spine_router();
          spine_killed = true;
        } else if (g.allow_leaf_kill) {
          const int rack = int(rng.next_below(std::uint64_t(shape.racks)));
          if (leaf_killed[std::size_t(rack)]) continue;
          leaf_killed[std::size_t(rack)] = true;
          router = faults::FaultSchedule::leaf_router(rack);
        } else {
          continue;
        }
        out.kill(at, router);
        if (family == Family::kKillRevive) out.revive(at + window, router);
        break;
      }
      case Family::kCrashRestart:
      case Family::kCrashPerm: {
        const int w = int(rng.next_below(std::uint64_t(shape.total_workers())));
        if (!crash_free(w, -1)) continue;
        crashed.emplace_back(w, -1);
        out.crash(at, w);
        if (family == Family::kCrashRestart) out.restart(at + window, w);
        break;
      }
      case Family::kBucketDrop: {
        const bool spine = rng.next_below(2) == 0;
        const faults::Target agg =
            spine ? faults::FaultSchedule::spine_agg()
                  : faults::FaultSchedule::leaf_agg(
                        int(rng.next_below(std::uint64_t(shape.racks))));
        const std::uint8_t job =
            shape.tenants.empty()
                ? std::uint8_t(1)
                : std::uint8_t(shape.tenants[rng.next_below(
                      shape.tenants.size())]);
        out.drop_buckets(at, agg, job);
        break;
      }
      case Family::kTenantCrash: {
        const int tenant =
            shape.tenants[rng.next_below(shape.tenants.size())];
        const int w = int(rng.next_below(std::uint64_t(shape.total_workers())));
        if (!crash_free(w, tenant)) continue;
        crashed.emplace_back(w, tenant);
        out.crash(at, w, tenant);
        out.restart(at + window, w, tenant);
        break;
      }
    }
  }
  return out;
}

faults::FaultSchedule generate(std::uint64_t seed, Profile profile) {
  return generate(seed, profile_grammar(profile), profile_shape(profile));
}

}  // namespace vigil
