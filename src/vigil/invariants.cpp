#include "vigil/invariants.hpp"

#include <sstream>

#include "jobs/job_manager.hpp"
#include "netrpc/app.hpp"
#include "netrpc/host.hpp"
#include "trio/sms.hpp"
#include "trioml/app.hpp"

namespace vigil {
namespace {

std::string endpoint_name(const std::string& link, bool forward) {
  return link + (forward ? ".up" : ".down");
}

}  // namespace

InvariantEngine::InvariantEngine(cluster::Cluster& cluster)
    : cluster_(cluster) {}

void InvariantEngine::attach_jobs(jobs::JobManager& manager,
                                  const jobs::JobsSpec& spec) {
  jobs_ = &manager;
  jobs_spec_ = &spec;
}

void InvariantEngine::report(const std::string& invariant,
                             const std::string& detail) {
  violations_.push_back(
      Violation{invariant, detail, cluster_.simulator().now()});
}

void InvariantEngine::check_conservation() {
  const auto check_endpoint = [&](net::LinkEndpoint& ep,
                                  const std::string& name) {
    if (ep.frames_sent() != ep.frames_delivered() + ep.frames_in_flight()) {
      std::ostringstream os;
      os << name << ": frames_sent " << ep.frames_sent()
         << " != delivered " << ep.frames_delivered() << " + in_flight "
         << ep.frames_in_flight();
      report("link-conservation", os.str());
    }
  };
  const auto check_link = [&](net::Link& link, const std::string& name) {
    check_endpoint(link.a_to_b(), endpoint_name(name, true));
    check_endpoint(link.b_to_a(), endpoint_name(name, false));
  };
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    check_link(cluster_.link(w), "host:" + std::to_string(w));
  }
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    check_link(cluster_.fabric_link(r), "fabric:" + std::to_string(r));
    if (cluster_.has_backup_spine()) {
      check_link(cluster_.backup_fabric_link(r),
                 "backup-fabric:" + std::to_string(r));
    }
  }
}

void InvariantEngine::check_conservation_quiescent() {
  check_conservation();
  const auto check_endpoint = [&](net::LinkEndpoint& ep,
                                  const std::string& name) {
    if (ep.frames_in_flight() != 0) {
      report("link-conservation",
             name + ": " + std::to_string(ep.frames_in_flight()) +
                 " frame(s) still in flight at quiescence");
    }
    if (ep.bytes_sent() != ep.bytes_delivered() &&
        ep.frames_in_flight() == 0) {
      std::ostringstream os;
      os << name << ": bytes_sent " << ep.bytes_sent()
         << " != bytes_delivered " << ep.bytes_delivered()
         << " with no frames in flight";
      report("link-conservation", os.str());
    }
  };
  const auto check_link = [&](net::Link& link, const std::string& name) {
    check_endpoint(link.a_to_b(), endpoint_name(name, true));
    check_endpoint(link.b_to_a(), endpoint_name(name, false));
  };
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    check_link(cluster_.link(w), "host:" + std::to_string(w));
  }
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    check_link(cluster_.fabric_link(r), "fabric:" + std::to_string(r));
    if (cluster_.has_backup_spine()) {
      check_link(cluster_.backup_fabric_link(r),
                 "backup-fabric:" + std::to_string(r));
    }
  }
}

void InvariantEngine::check_slab_accounting() {
  int app_idx = 0;
  for (trioml::TrioMlApp* app : cluster_.apps()) {
    const std::string name = "app" + std::to_string(app_idx++);
    // A permanently killed router freezes mid-operation — e.g. between
    // the active-counter FetchAdd32 and the slab allocation it was
    // paying for. Its frozen books are not a leak; skip it.
    if (app->pfe().router().killed()) continue;
    const std::size_t in_use =
        app->slab_pool_size() - app->free_slab_count();
    std::uint64_t active_total = 0;
    for (std::uint8_t job : app->configured_jobs()) {
      const std::uint64_t active =
          app->pfe().sms().peek_u32(app->job_active_counter_addr(job));
      active_total += active;
      // Per-tenant block quota (docs/jobs.md): the datapath's FetchAdd32
      // cap must never be exceeded in steady state.
      if (jobs_spec_ != nullptr) {
        for (const jobs::TenantSpec& t : jobs_spec_->tenants) {
          if (t.id == job && t.is_allreduce() && active > t.block_cnt_max) {
            std::ostringstream os;
            os << name << " job " << int(job) << ": " << active
               << " active blocks > quota " << t.block_cnt_max;
            report("sms-quota", os.str());
          }
        }
      }
    }
    if (in_use != active_total) {
      std::ostringstream os;
      os << name << ": " << in_use << " slab(s) in use but job active "
         << "counters sum to " << active_total;
      report("slab-accounting", os.str());
    }
  }
}

void InvariantEngine::check_no_stuck_threads() {
  const auto check_router = [&](trio::Router& router,
                                const std::string& name) {
    for (int i = 0; i < router.num_pfes(); ++i) {
      const int n = router.pfe(i).active_threads();
      if (n != 0) {
        report("stuck-xtxn", name + " pfe" + std::to_string(i) + ": " +
                                 std::to_string(n) +
                                 " PPE thread(s) still occupied at "
                                 "quiescence");
      }
    }
  };
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    check_router(cluster_.leaf(r), "leaf" + std::to_string(r));
  }
  check_router(cluster_.spine(), "spine");
  if (cluster_.has_backup_spine()) {
    check_router(cluster_.backup_spine(), "spine-b");
  }
}

void InvariantEngine::check_worker_quiescence() {
  const auto check_worker = [&](trioml::TrioMlWorker& w,
                                const std::string& name) {
    if (!w.busy() && w.outstanding_blocks() != 0) {
      report("orphan-timer",
             name + ": idle worker holds " +
                 std::to_string(w.outstanding_blocks()) +
                 " outstanding block(s)");
    }
  };
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    check_worker(cluster_.worker(w), "worker:" + std::to_string(w));
  }
  if (jobs_ != nullptr) {
    for (jobs::TenantId t : jobs_->admitted()) {
      for (int w = 0; w < cluster_.num_workers(); ++w) {
        if (trioml::TrioMlWorker* tw = jobs_->tenant_worker(t, w)) {
          check_worker(*tw, "tenant:" + std::to_string(int(t)) +
                                ".worker:" + std::to_string(w));
        }
      }
    }
  }
}

void InvariantEngine::check_netrpc_accounting() {
  if (jobs_ == nullptr) return;
  netrpc::NetRpcApp* app = jobs_->netrpc_app();
  if (app == nullptr) return;
  for (std::uint8_t tenant : app->configured_tenants()) {
    const std::uint64_t merged =
        app->counter_packets(tenant, netrpc::kCtrMerged);
    const std::uint64_t completed =
        app->counter_packets(tenant, netrpc::kCtrCompleted);
    const std::uint64_t degraded =
        app->counter_packets(tenant, netrpc::kCtrDegraded);
    const std::uint64_t relayed =
        app->counter_packets(tenant, netrpc::kCtrRelayed);
    if (merged < completed) {
      std::ostringstream os;
      os << "tenant " << int(tenant) << ": completed " << completed
         << " merges but only " << merged << " responses were merged";
      report("netrpc-accounting", os.str());
    }
    // Every fan-out call a client saw complete was emitted by the
    // datapath (full merge), the aging scan (degraded) or the relay
    // path (bypass) — clients cannot invent completions.
    std::uint64_t client_calls = 0;
    for (int w = 0; w < cluster_.num_workers(); ++w) {
      if (netrpc::RpcClient* c = jobs_->tenant_rpc_client(int(tenant), w)) {
        client_calls += c->calls_completed();
      }
    }
    if (client_calls > completed + degraded + relayed) {
      std::ostringstream os;
      os << "tenant " << int(tenant) << ": clients completed "
         << client_calls << " calls but the PFE only emitted "
         << completed << " full + " << degraded << " degraded + "
         << relayed << " relayed";
      report("netrpc-accounting", os.str());
    }
  }
}

void InvariantEngine::check_quiescent() {
  check_conservation_quiescent();
  check_slab_accounting();
  check_no_stuck_threads();
  check_worker_quiescence();
  check_netrpc_accounting();
}

}  // namespace vigil
