// Automatic repro shrinking (docs/vigil.md "Shrinking"): given a fault
// schedule that makes an oracle report "still violating", delta-debug it
// down to a minimal replayable repro.
//
// Three passes, each oracle-driven and deterministic:
//   1. ddmin over the event list — find a 1-minimal subset of events
//      that still violates (Zeller/Hildebrandt delta debugging);
//   2. window narrowing — halve each surviving event's duration while
//      the violation persists (floor 1us);
//   3. intensity lowering — halve loss/corruption probabilities and the
//      burst model's bad-state loss (floor 0.01).
//
// Every candidate subset is *repaired* before the oracle sees it:
// revive/restart events whose opening kill/crash was dropped are removed
// too, so each candidate (and the final repro) passes
// FaultSchedule::validate() and replays cleanly.
#pragma once

#include <cstdint>
#include <functional>

#include "faults/schedule.hpp"

namespace vigil {

/// Returns true when the candidate schedule still reproduces the
/// violation. The shrinker only ever *keeps* a candidate the oracle
/// confirmed, so a flaky oracle can slow shrinking but never produce a
/// non-violating repro.
using Oracle = std::function<bool(const faults::FaultSchedule&)>;

struct ShrinkConfig {
  /// Hard cap on oracle invocations (each is a full scenario replay).
  int max_oracle_calls = 200;
  sim::Duration min_window = sim::Duration::micros(1);
  double min_probability = 0.01;
};

struct ShrinkResult {
  faults::FaultSchedule schedule;  // the minimal repro
  int oracle_calls = 0;
  bool reduced = false;  // any pass made the schedule strictly smaller
};

/// Precondition: oracle(schedule) is true (the caller already saw the
/// violation). If the budget runs out mid-pass the best repro so far is
/// returned — it always still violates.
ShrinkResult shrink(const faults::FaultSchedule& schedule,
                    const Oracle& oracle, const ShrinkConfig& config = {});

}  // namespace vigil
