// Runtime invariant engine (docs/vigil.md "Invariant catalogue").
//
// Cheap, always-on checkers over a live Cluster (and optionally its
// JobManager): frame/byte conservation on every link, slab-pool and SMS
// active-block accounting, no-stuck-XTXN (idle PPEs at quiescence),
// no-orphan-timer (idle workers hold no outstanding blocks), and netrpc
// slot/cache accounting. Violations are recorded, not thrown — a fuzz
// run collects everything it tripped, and the shrinker replays against
// the set.
//
// Checkers come in two flavours: *anytime* checks hold at every instant
// the simulator is parked between events (conservation), while
// *quiescence* checks additionally require the event queue to be fully
// drained (stuck threads, worker quiescence, byte totals). The runner
// calls check_quiescent() after its drain phase; callers stepping the
// clock mid-run may call check_conservation() as often as they like.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "jobs/tenant.hpp"
#include "sim/time.hpp"

namespace jobs {
class JobManager;
}

namespace vigil {

struct Violation {
  std::string invariant;  // catalogue name, e.g. "link-conservation"
  std::string detail;     // what went wrong, with the numbers
  sim::Time at;           // simulated time the check tripped
};

class InvariantEngine {
 public:
  explicit InvariantEngine(cluster::Cluster& cluster);

  /// Extends the checkers over a JobManager's tenants: per-tenant worker
  /// quiescence, per-tenant block quotas (from `spec`), and netrpc slot
  /// accounting. The manager and spec must outlive the engine.
  void attach_jobs(jobs::JobManager& manager, const jobs::JobsSpec& spec);

  // --- Anytime checks ----------------------------------------------------
  /// Frame/byte conservation per link endpoint:
  ///   frames_sent == frames_delivered + frames_in_flight
  /// (drops are rejected *before* frames_sent counts them; a frame once
  /// on the wire is delivered, never lost silently).
  void check_conservation();

  // --- Quiescence checks (event queue drained) ---------------------------
  /// Conservation with in_flight == 0: every accepted frame was
  /// delivered, and byte totals match exactly.
  void check_conservation_quiescent();
  /// Slab-pool accounting on every aggregation app: slabs in use ==
  /// sum of the per-job SMS active-block counters, and each job's active
  /// count respects its block_cnt_max quota.
  void check_slab_accounting();
  /// No PPE thread is still occupied — a non-zero count at quiescence is
  /// a stuck XTXN (a thread parked forever on a reply that cannot come).
  void check_no_stuck_threads();
  /// An idle (not busy, not crashed) worker holds no outstanding blocks
  /// and therefore no armed retransmit timer (the orphan-timer check).
  void check_worker_quiescence();
  /// NetRPC accounting: merged >= completed per tenant, and no client
  /// completed more calls than the datapath + aging scan emitted.
  void check_netrpc_accounting();

  /// Every quiescence check plus conservation, in catalogue order.
  void check_quiescent();

  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  void clear() { violations_.clear(); }

 private:
  void report(const std::string& invariant, const std::string& detail);

  cluster::Cluster& cluster_;
  jobs::JobManager* jobs_ = nullptr;
  const jobs::JobsSpec* jobs_spec_ = nullptr;
  std::vector<Violation> violations_;
};

}  // namespace vigil
