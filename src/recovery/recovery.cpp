#include "recovery/recovery.hpp"

#include <stdexcept>

namespace recovery {

RecoveryManager::RecoveryManager(cluster::Cluster& cluster,
                                 RecoveryConfig config)
    : cluster_(cluster),
      config_(config),
      monitor_(cluster.simulator(), cluster.spec().telemetry,
               config.heartbeat) {
  telemetry::Telemetry* telem = cluster_.spec().telemetry;
  if (telem != nullptr) {
    failover_ctr_ = telem->metrics.counter("recovery.failovers");
    rejoin_ctr_ = telem->metrics.counter("recovery.rejoins");
    detach_ctr_ = telem->metrics.counter("recovery.subtree_detachments");
    invalidated_ctr_ = telem->metrics.counter("recovery.blocks_invalidated");
  }
  spine_idx_ = monitor_.watch("spine", cluster_.spine());
  for (int r = 0; r < cluster_.num_racks(); ++r) {
    leaf_idx_.push_back(
        monitor_.watch("rack" + std::to_string(r), cluster_.leaf(r)));
  }
  // The backup spine is deliberately unwatched: it is the failover
  // *target*, and losing both spines has no further re-homing to do.
  monitor_.set_transition_hook(
      [this](int idx, bool dead) { on_transition(idx, dead); });
}

void RecoveryManager::start() {
  // The heartbeat programs report from every watched router's shard into
  // the one monitor, and the phi check reads their estimators from shard
  // 0 — an inherently cross-shard dataflow. Liveness detection therefore
  // requires the serial engine (docs/performance.md "when --shards 1 is
  // required"); scripted failover via FaultInjector global actions works
  // at any shard count.
  if (cluster_.num_shards() > 1) {
    throw std::logic_error(
        "RecoveryManager: heartbeat liveness detection requires --shards 1");
  }
  monitor_.start();
}
void RecoveryManager::stop() { monitor_.stop(); }

void RecoveryManager::on_transition(int idx, bool dead) {
  const sim::Time now = cluster_.simulator().now();
  if (idx == spine_idx_) {
    if (dead) {
      last_death_at_ = now;
      if (config_.auto_failover && cluster_.has_backup_spine() &&
          !cluster_.on_backup_spine()) {
        // Belt and braces: the injector's `kill` already bumped the
        // spine's generation at power-loss time; a second bump on an
        // empty table is a counted no-op, but covers schedules that
        // kill without the injector (direct Router::kill()).
        const std::size_t inv =
            cluster_.spine_app().invalidate_active_blocks();
        blocks_invalidated_ += inv;
        invalidated_ctr_.inc(inv);
        cluster_.fail_over_to_backup();
        ++failovers_;
        failover_ctr_.inc();
        last_failover_at_ = now;
        record("failover spine->spine-b (" + std::to_string(inv) +
                   " blocks invalidated)",
               /*recovery=*/true);
      } else {
        record("spine dead (no failover target)", /*recovery=*/false);
      }
    } else if (config_.auto_rejoin && cluster_.has_backup_spine() &&
               cluster_.on_backup_spine()) {
      // The primary rebooted empty-handed; anything it absorbed before
      // dying was invalidated, so rejoin is just pointing the leaves back.
      const std::size_t inv = cluster_.spine_app().invalidate_active_blocks();
      blocks_invalidated_ += inv;
      invalidated_ctr_.inc(inv);
      cluster_.restore_primary_spine();
      ++rejoins_;
      rejoin_ctr_.inc();
      record("rejoin spine-b->spine", /*recovery=*/true);
    }
    return;
  }
  // Leaf transitions. Workers are single-homed behind their leaf, so
  // there is no alternate path to fail over to; the spine's aging path
  // degrades the affected blocks instead. We account for the detachment
  // so operators see the blast radius.
  for (std::size_t r = 0; r < leaf_idx_.size(); ++r) {
    if (leaf_idx_[r] != idx) continue;
    if (dead) {
      ++subtree_detachments_;
      detach_ctr_.inc();
      record("subtree detached rack" + std::to_string(r) + " (" +
                 std::to_string(cluster_.workers_per_rack()) + " workers)",
             /*recovery=*/false);
    } else {
      record("subtree reattached rack" + std::to_string(r),
             /*recovery=*/true);
    }
    return;
  }
}

void RecoveryManager::record(const std::string& what, bool recovery) {
  const sim::Time now = cluster_.simulator().now();
  log_.push_back(LogEntry{now, what});
  telemetry::Telemetry* telem = cluster_.spec().telemetry;
  if (telem != nullptr) {
    telem->tracer.instant(HeartbeatMonitor::kTracePid, recovery ? 3 : 2, what,
                          now);
  }
}

std::uint64_t RecoveryManager::digest() const {
  // Fold the liveness log and the action log into one fingerprint, the
  // same FNV-1a idiom as FaultInjector::digest().
  std::uint64_t h = monitor_.digest();
  const auto eat = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const LogEntry& entry : log_) {
    eat(std::uint64_t(entry.at.ns()));
    for (char c : entry.what) {
      h ^= std::uint8_t(c);
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace recovery
