// Timer-thread liveness detection (docs/recovery.md).
//
// The paper's §5 timer threads scan hash tables for straggling *blocks*;
// the same hardware mechanism naturally yields router *liveness*: a
// heartbeat timer group on each watched router's PFE spawns a tiny
// program every period, and each execution reports to a central
// HeartbeatMonitor. A killed router stops producing heartbeats (its
// heartbeat program factory refuses to spawn, like every other thread on
// a powered-off chip), and the monitor's phi-style accrual estimator
// turns the growing silence into a suspicion level: with exponentially
// distributed inter-arrivals of estimated mean m, the probability that a
// live router stays silent for t is e^(-t/m), so
//
//     phi(t) = -log10 P(silence >= t) = (t / m) * log10(e).
//
// Crossing phi_threshold declares the router dead; a later heartbeat
// (after `revive`) is detected as a revival. All transitions land in a
// deterministic event log with an FNV-1a digest, mirroring the fault
// injector's replay fingerprint.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/router.hpp"

namespace recovery {

/// Phi-accrual suspicion over heartbeat inter-arrival times: an EWMA of
/// the observed intervals plus the log-scale silence probability above.
class PhiEstimator {
 public:
  explicit PhiEstimator(double alpha = 0.125) : alpha_(alpha) {}

  /// Records a heartbeat arrival.
  void observe(sim::Time now);
  /// Suspicion level at `now`; 0 until primed (two heartbeats seen).
  double phi(sim::Time now) const;
  bool primed() const { return samples_ >= 2; }
  double mean_interval_ns() const { return mean_ns_; }
  std::uint64_t samples() const { return samples_; }
  sim::Time last_heartbeat() const { return last_; }

 private:
  double alpha_;
  double mean_ns_ = 0.0;
  sim::Time last_;
  std::uint64_t samples_ = 0;
};

struct HeartbeatConfig {
  /// Heartbeat period per watched router (one timer group each).
  sim::Duration period = sim::Duration::micros(100);
  /// Phase-shifted timers per group (1 is enough; more tightens jitter).
  int timers = 1;
  /// How often the monitor re-evaluates every router's phi.
  sim::Duration check_period = sim::Duration::micros(50);
  /// Death threshold: phi 8 == P(still alive) < 1e-8, ~18.4 quiet
  /// periods under the exponential model.
  double phi_threshold = 8.0;
  double ewma_alpha = 0.125;
};

class HeartbeatMonitor {
 public:
  /// `telem` may be null (no counters / trace rows).
  HeartbeatMonitor(sim::Simulator& simulator, telemetry::Telemetry* telem,
                   HeartbeatConfig config);

  /// Registers a router to watch. Call before start(); returns the
  /// router's watch index.
  int watch(const std::string& name, trio::Router& router);

  /// Starts the heartbeat timer group on every watched router's PFE 0
  /// and the monitor's periodic phi check. The check event keeps the
  /// simulator's queue non-empty — pair with run_until() + stop().
  void start();
  void stop();
  bool running() const { return running_; }

  int watched() const { return static_cast<int>(watched_.size()); }
  const std::string& name(int idx) const;
  bool dead(int idx) const;
  double phi_now(int idx) const;
  const PhiEstimator& estimator(int idx) const;

  /// Fires on every liveness transition: (watch index, now dead?).
  /// Declared-dead fires from the phi check; revival fires from the first
  /// heartbeat a dead-marked router produces.
  using TransitionHook = std::function<void(int idx, bool dead)>;
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Called by the in-router heartbeat program on each execution.
  void on_heartbeat(int idx);

  struct LogEntry {
    sim::Time at;
    std::string what;
  };
  /// Every liveness transition in execution order.
  const std::vector<LogEntry>& log() const { return log_; }
  /// FNV-1a fingerprint of the log — equal across deterministic replays.
  std::uint64_t digest() const;

  std::uint64_t heartbeats() const { return heartbeats_; }
  std::uint64_t deaths_declared() const { return deaths_; }
  std::uint64_t revivals_detected() const { return revivals_; }

  /// Trace pid for liveness instant rows (below the injector's 999'000).
  static constexpr int kTracePid = 998'000;

 private:
  struct Watched {
    std::string name;
    trio::Router* router = nullptr;
    PhiEstimator estimator;
    bool dead = false;
    int timer_group = -1;
  };

  void check();
  void record(const std::string& what, bool recovery);

  sim::Simulator& sim_;
  telemetry::Telemetry* telem_;
  HeartbeatConfig config_;
  std::vector<Watched> watched_;
  TransitionHook hook_;
  bool running_ = false;
  sim::EventId check_event_{};

  std::vector<LogEntry> log_;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t deaths_ = 0;
  std::uint64_t revivals_ = 0;
  telemetry::Counter heartbeat_ctr_;
  telemetry::Counter death_ctr_;
  telemetry::Counter revival_ctr_;
};

}  // namespace recovery
