#include "recovery/heartbeat.hpp"

#include <stdexcept>

#include "trio/pfe.hpp"
#include "trio/program.hpp"

namespace recovery {
namespace {

constexpr double kLog10E = 0.4342944819032518;

/// The per-fire heartbeat program: a few bookkeeping instructions, one
/// report to the monitor, exit. It runs on the watched router's PPEs, so
/// heartbeat timing inherits real thread-scheduling jitter — which is
/// exactly what the phi estimator smooths over.
class HeartbeatProgram : public trio::PpeProgram {
 public:
  HeartbeatProgram(HeartbeatMonitor& monitor, int idx)
      : monitor_(monitor), idx_(idx) {}

  trio::Action step(trio::ThreadContext&) override {
    if (!reported_) {
      reported_ = true;
      monitor_.on_heartbeat(idx_);
      return trio::ActContinue{4};
    }
    return trio::ActExit{2};
  }

 private:
  HeartbeatMonitor& monitor_;
  int idx_;
  bool reported_ = false;
};

}  // namespace

void PhiEstimator::observe(sim::Time now) {
  if (samples_ > 0) {
    const double interval = double((now - last_).ns());
    mean_ns_ = samples_ == 1
                   ? interval
                   : (1.0 - alpha_) * mean_ns_ + alpha_ * interval;
  }
  last_ = now;
  ++samples_;
}

double PhiEstimator::phi(sim::Time now) const {
  if (!primed() || mean_ns_ <= 0.0) return 0.0;
  const double elapsed = double((now - last_).ns());
  if (elapsed <= 0.0) return 0.0;
  return kLog10E * elapsed / mean_ns_;
}

HeartbeatMonitor::HeartbeatMonitor(sim::Simulator& simulator,
                                   telemetry::Telemetry* telem,
                                   HeartbeatConfig config)
    : sim_(simulator), telem_(telem), config_(config) {
  if (config_.period.ns() <= 0 || config_.check_period.ns() <= 0 ||
      config_.timers <= 0 || config_.phi_threshold <= 0) {
    throw std::invalid_argument("HeartbeatMonitor: bad config");
  }
  if (telem_ != nullptr) {
    heartbeat_ctr_ = telem_->metrics.counter("recovery.heartbeats");
    death_ctr_ = telem_->metrics.counter("recovery.deaths_declared");
    revival_ctr_ = telem_->metrics.counter("recovery.revivals_detected");
    if (telem_->tracer.enabled()) {
      telem_->tracer.set_process_name(kTracePid, "recovery");
    }
  }
}

int HeartbeatMonitor::watch(const std::string& name, trio::Router& router) {
  if (running_) {
    throw std::logic_error("HeartbeatMonitor: watch() before start()");
  }
  Watched w;
  w.name = name;
  w.router = &router;
  w.estimator = PhiEstimator(config_.ewma_alpha);
  watched_.push_back(std::move(w));
  return static_cast<int>(watched_.size()) - 1;
}

void HeartbeatMonitor::start() {
  if (running_) return;
  running_ = true;
  for (int i = 0; i < watched(); ++i) {
    Watched& w = watched_[std::size_t(i)];
    // The factory runs at every timer fire *on the watched router*: a
    // powered-off chip spawns nothing, so death is observed as silence,
    // not reported by the dying node.
    w.timer_group = w.router->pfe(0).timers().start(
        config_.timers, config_.period,
        [this, i](std::uint32_t) -> std::unique_ptr<trio::PpeProgram> {
          if (watched_[std::size_t(i)].router->killed()) return nullptr;
          return std::make_unique<HeartbeatProgram>(*this, i);
        });
  }
  check_event_ = sim_.schedule_in(config_.check_period, [this] { check(); });
}

void HeartbeatMonitor::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(check_event_);
  for (Watched& w : watched_) {
    if (w.timer_group >= 0) {
      w.router->pfe(0).timers().stop_group(w.timer_group);
      w.timer_group = -1;
    }
  }
}

const std::string& HeartbeatMonitor::name(int idx) const {
  return watched_.at(std::size_t(idx)).name;
}

bool HeartbeatMonitor::dead(int idx) const {
  return watched_.at(std::size_t(idx)).dead;
}

double HeartbeatMonitor::phi_now(int idx) const {
  return watched_.at(std::size_t(idx)).estimator.phi(sim_.now());
}

const PhiEstimator& HeartbeatMonitor::estimator(int idx) const {
  return watched_.at(std::size_t(idx)).estimator;
}

void HeartbeatMonitor::on_heartbeat(int idx) {
  Watched& w = watched_.at(std::size_t(idx));
  ++heartbeats_;
  heartbeat_ctr_.inc();
  w.estimator.observe(sim_.now());
  if (w.dead) {
    // First heartbeat after a death declaration: the router is back.
    w.dead = false;
    ++revivals_;
    revival_ctr_.inc();
    record("revival " + w.name, /*recovery=*/true);
    if (hook_) hook_(idx, /*dead=*/false);
  }
}

void HeartbeatMonitor::check() {
  if (!running_) return;
  for (int i = 0; i < watched(); ++i) {
    Watched& w = watched_[std::size_t(i)];
    if (w.dead || !w.estimator.primed()) continue;
    if (w.estimator.phi(sim_.now()) >= config_.phi_threshold) {
      w.dead = true;
      ++deaths_;
      death_ctr_.inc();
      record("dead " + w.name, /*recovery=*/false);
      if (hook_) hook_(i, /*dead=*/true);
    }
  }
  check_event_ = sim_.schedule_in(config_.check_period, [this] { check(); });
}

void HeartbeatMonitor::record(const std::string& what, bool recovery) {
  log_.push_back(LogEntry{sim_.now(), what});
  if (telem_ != nullptr) {
    telem_->tracer.instant(kTracePid, recovery ? 1 : 0, what, sim_.now());
  }
}

std::uint64_t HeartbeatMonitor::digest() const {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto eat = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const LogEntry& entry : log_) {
    eat(std::uint64_t(entry.at.ns()));
    for (char c : entry.what) {
      h ^= std::uint8_t(c);
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace recovery
