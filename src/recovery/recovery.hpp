// RecoveryManager: the self-healing control plane for Cluster allreduce
// jobs (docs/recovery.md). Closes the detect -> failover -> recover loop:
//
//   * detect   — a HeartbeatMonitor watches the spine and every leaf via
//                timer-thread heartbeats + phi accrual;
//   * failover — a dead spine triggers Cluster::fail_over_to_backup():
//                every leaf's spine route and job-record egress nexthop
//                re-home onto the standby spine (spec.backup_spine), no
//                job restart;
//   * recover  — the dead router's aggregation buckets were invalidated
//                by generation bump (power-loss model); contributions
//                absorbed into them are re-contributed by the workers'
//                retransmit path and re-aggregated on the standby, so the
//                allreduce result stays bit-identical to the fault-free
//                run. A dead *leaf* detaches its whole subtree instead —
//                workers behind it are single-homed, so the spine's aging
//                path degrades results rather than re-homing.
//
// Every transition is appended to a deterministic log; digest() folds the
// monitor's liveness log and the manager's action log into one FNV-1a
// replay fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "recovery/heartbeat.hpp"

namespace recovery {

struct RecoveryConfig {
  HeartbeatConfig heartbeat;
  /// Re-home onto the backup spine when the primary is declared dead
  /// (requires ClusterSpec::backup_spine; ignored without one).
  bool auto_failover = true;
  /// Restore the primary spine when its heartbeats resume. Off by
  /// default: rejoin mid-allreduce is safe (the primary's state was
  /// invalidated) but usually wanted only between jobs.
  bool auto_rejoin = false;
};

class RecoveryManager {
 public:
  RecoveryManager(cluster::Cluster& cluster, RecoveryConfig config = {});

  /// Starts liveness detection (heartbeat groups + phi checks). The
  /// check event keeps the simulator's queue non-empty — pair with
  /// run_until() + stop(), like trace sampling.
  void start();
  void stop();

  HeartbeatMonitor& monitor() { return monitor_; }
  const HeartbeatMonitor& monitor() const { return monitor_; }

  bool spine_dead() const { return monitor_.dead(spine_idx_); }
  bool failed_over() const { return cluster_.on_backup_spine(); }
  /// True while any watched router is declared dead — the "recovery
  /// epoch" predicate the fluid fidelity boundary polls (docs/fluid.md):
  /// re-homing, retransmit storms and re-aggregation all need packet
  /// fidelity, so fluid flows re-materialise for the whole epoch.
  bool recovery_epoch_open() const {
    for (int i = 0; i < monitor_.watched(); ++i) {
      if (monitor_.dead(i)) return true;
    }
    return false;
  }

  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t rejoins() const { return rejoins_; }
  std::uint64_t subtree_detachments() const { return subtree_detachments_; }
  /// Blocks invalidated by this manager's generation bumps (on failover
  /// and rejoin; the fault injector's kill-time bump counts separately).
  std::uint64_t blocks_invalidated() const { return blocks_invalidated_; }

  /// Recovery-time instrumentation for bench/fig_failover.
  sim::Time last_death_at() const { return last_death_at_; }
  sim::Time last_failover_at() const { return last_failover_at_; }

  struct LogEntry {
    sim::Time at;
    std::string what;
  };
  const std::vector<LogEntry>& log() const { return log_; }
  /// Combined replay fingerprint: the monitor's liveness log folded with
  /// the manager's failover/rejoin actions.
  std::uint64_t digest() const;

 private:
  void on_transition(int idx, bool dead);
  void record(const std::string& what, bool recovery);

  cluster::Cluster& cluster_;
  RecoveryConfig config_;
  HeartbeatMonitor monitor_;
  int spine_idx_ = -1;
  std::vector<int> leaf_idx_;  // watch index per rack

  std::vector<LogEntry> log_;
  std::uint64_t failovers_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t subtree_detachments_ = 0;
  std::uint64_t blocks_invalidated_ = 0;
  sim::Time last_death_at_;
  sim::Time last_failover_at_;
  telemetry::Counter failover_ctr_;
  telemetry::Counter rejoin_ctr_;
  telemetry::Counter detach_ctr_;
  telemetry::Counter invalidated_ctr_;
};

}  // namespace recovery
