// Bit-granular access into a byte buffer, MSB-first within each byte —
// the packing rule for Microcode struct fields (paper §3.2: "each header
// is defined by an ordered list of field names with the corresponding
// field widths", same convention as P4).
#pragma once

#include <cstdint>

#include "net/buffer.hpp"

namespace microcode {

/// Reads `width` bits (1..64) starting at absolute bit offset `bit_off`.
std::uint64_t read_bits(const net::Buffer& buf, std::size_t bit_off,
                        unsigned width);

/// Writes the low `width` bits of `value` at absolute bit offset `bit_off`.
void write_bits(net::Buffer& buf, std::size_t bit_off, unsigned width,
                std::uint64_t value);

}  // namespace microcode
