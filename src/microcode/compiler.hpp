// The Trio Compiler (TC) analogue (paper §3.1).
//
// Like TC, this stage has characteristics of both a compiler and an
// assembler: it translates C-style expressions, maps every variable to its
// underlying storage (thread registers, thread local memory, or virtual
// constants), and — because the programmer delineates instructions with
// begin/end — *fails compilation* when a block needs more reads, writes,
// or ALU operations than a single VLIW micro-instruction provides
// ("Typically, a single Microcode instruction can perform four registers
// or two local memory reads, and two registers or two local memory
// writes").
//
// There is no separate linking phase: compile() takes the complete source
// and produces a self-contained binary image (CompiledProgram) that the
// interpreter executes on a PPE thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "microcode/ast.hpp"

namespace microcode {

/// Hardware resource budget of one micro-instruction.
struct InstructionLimits {
  int max_reg_reads = 4;
  int max_lmem_reads = 2;
  int max_writes = 2;
  int max_alu_ops = 8;
  int max_xtxns = 2;
};

/// Where a variable lives after storage mapping.
struct Location {
  enum class Kind { kReg, kLmem, kConst, kBuiltin, kBus };
  Kind kind{};
  int reg = -1;                 // kReg
  std::size_t lmem_offset = 0;  // kLmem (bytes)
  std::size_t size_bytes = 8;   // kLmem extent
  std::uint64_t const_value = 0;  // kConst
  const StructDef* type = nullptr;  // struct type (if any)
  bool is_pointer = false;
  bool is_array = false;          // LMEM array of 64-bit elements
  std::size_t array_len = 0;
  int bus_slot = -1;              // kBus: operand-bus lane index
};

/// What kind of engine interaction an intrinsic performs.
enum class IntrinsicKind {
  kPosted,  // fire-and-forget XTXN (CounterIncPhys, SmsWrite64)
  kSync,    // suspends the thread for the reply (SmsRead64, ...)
  kAction,  // packet action (Forward, Drop, Exit)
};

struct IntrinsicInfo {
  IntrinsicKind kind;
  int arity;
};

/// Looks up a known intrinsic; nullptr when unknown.
const IntrinsicInfo* intrinsic_info(const std::string& name);

/// Per-block resource usage, reported for introspection and enforced
/// against InstructionLimits.
struct BlockResources {
  int reg_reads = 0;
  int lmem_reads = 0;
  int writes = 0;
  int alu_ops = 0;
  int xtxns = 0;
};

struct CompiledProgram {
  Module module;  // owns the AST the interpreter walks
  std::unordered_map<std::string, const StructDef*> structs;
  std::unordered_map<std::string, Location> vars;
  std::unordered_map<std::string, std::size_t> labels;  // block label -> idx
  std::vector<BlockResources> resources;  // parallel to module.blocks
  /// Register/LMEM initial values applied when a thread starts
  /// (compile-time-constant global initializers).
  std::vector<std::pair<std::string, std::uint64_t>> initial_values;
  /// First LMEM byte available to variables (after the packet-head area —
  /// the binary "defines required symbols, such as the address in local
  /// memory where the packet header starts").
  std::size_t lmem_vars_base = 0;
  std::size_t lmem_used = 0;
  /// Operand-bus lanes used by 'bus'-class variables (§3.1): values that
  /// feed the ALUs directly and do not persist across instructions.
  int bus_slots = 0;

  std::size_t instruction_count() const { return module.blocks.size(); }
  const Location& location(const std::string& name) const;
};

/// Compiles complete Microcode source. Throws CompileError on any error.
std::shared_ptr<const CompiledProgram> compile(
    const std::string& source, const InstructionLimits& limits = {},
    std::size_t lmem_bytes = 1280, std::size_t head_bytes = 192,
    int gpr_count = 32);

}  // namespace microcode
