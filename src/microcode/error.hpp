// Compilation diagnostics for the Microcode toolchain. The Trio Compiler
// fails hard when a program is malformed or an instruction block exceeds
// the hardware's per-instruction resources (paper §3.1: "TC fails the
// compilation because it cannot implement the requested actions across
// multiple instructions").
#pragma once

#include <stdexcept>
#include <string>

namespace microcode {

class CompileError : public std::runtime_error {
 public:
  CompileError(std::string message, int line, int col)
      : std::runtime_error("microcode:" + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + message),
        line_(line),
        col_(col) {}

  int line() const { return line_; }
  int col() const { return col_; }

 private:
  int line_;
  int col_;
};

}  // namespace microcode
