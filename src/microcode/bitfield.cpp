#include "microcode/bitfield.hpp"

#include <stdexcept>

namespace microcode {

std::uint64_t read_bits(const net::Buffer& buf, std::size_t bit_off,
                        unsigned width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("read_bits: width must be 1..64");
  }
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    const std::size_t bit = bit_off + i;
    const std::uint8_t byte = buf.u8(bit / 8);
    const unsigned shift = 7 - bit % 8;  // MSB-first
    v = v << 1 | ((byte >> shift) & 1u);
  }
  return v;
}

void write_bits(net::Buffer& buf, std::size_t bit_off, unsigned width,
                std::uint64_t value) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("write_bits: width must be 1..64");
  }
  for (unsigned i = 0; i < width; ++i) {
    const std::size_t bit = bit_off + i;
    const unsigned shift = 7 - bit % 8;
    const std::uint64_t b = (value >> (width - 1 - i)) & 1u;
    std::uint8_t byte = buf.u8(bit / 8);
    byte = static_cast<std::uint8_t>((byte & ~(1u << shift)) |
                                     (static_cast<unsigned>(b) << shift));
    buf.set_u8(bit / 8, byte);
  }
}

}  // namespace microcode
