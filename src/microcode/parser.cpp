#include "microcode/parser.hpp"

#include "microcode/error.hpp"
#include "microcode/lexer.hpp"

namespace microcode {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Module parse_module() {
    Module m;
    while (!at(TokKind::kEof)) {
      if (at(TokKind::kStruct)) {
        m.structs.push_back(parse_struct());
      } else if (at(TokKind::kMemory) || at(TokKind::kRegister) ||
                 at(TokKind::kVirtual) || at(TokKind::kBus)) {
        m.globals.push_back(parse_global());
      } else if (at(TokKind::kIdent) && at(TokKind::kColon, 1)) {
        m.blocks.push_back(parse_block());
      } else {
        fail("expected struct definition, global declaration, or "
             "instruction block");
      }
    }
    return m;
  }

 private:
  const Token& cur(std::size_t k = 0) const {
    const std::size_t i = pos_ + k;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(TokKind kind, std::size_t k = 0) const { return cur(k).kind == kind; }
  Token eat() { return toks_[pos_++]; }
  Token expect(TokKind kind, const char* what) {
    if (!at(kind)) {
      fail(std::string("expected ") + what + ", got " + tok_name(cur().kind));
    }
    return eat();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw CompileError(msg, cur().line, cur().col);
  }

  StructDef parse_struct() {
    StructDef def;
    const Token kw = expect(TokKind::kStruct, "'struct'");
    def.line = kw.line;
    def.col = kw.col;
    def.name = expect(TokKind::kIdent, "struct name").text;
    expect(TokKind::kLBrace, "'{'");
    while (!at(TokKind::kRBrace)) {
      StructField f;
      if (at(TokKind::kIdent)) f.name = eat().text;
      expect(TokKind::kColon, "':' in field definition");
      const Token w = expect(TokKind::kNumber, "field width");
      if (w.number == 0 || w.number > 64) {
        throw CompileError("field width must be 1..64 bits", w.line, w.col);
      }
      f.width = static_cast<unsigned>(w.number);
      expect(TokKind::kSemi, "';'");
      def.fields.push_back(std::move(f));
    }
    expect(TokKind::kRBrace, "'}'");
    expect(TokKind::kSemi, "';' after struct definition");
    return def;
  }

  GlobalDecl parse_global() {
    GlobalDecl g;
    const Token sc = eat();
    g.line = sc.line;
    g.col = sc.col;
    switch (sc.kind) {
      case TokKind::kMemory: g.storage = StorageClass::kMemory; break;
      case TokKind::kRegister: g.storage = StorageClass::kRegister; break;
      case TokKind::kBus: g.storage = StorageClass::kBus; break;
      default: g.storage = StorageClass::kVirtual; break;
    }
    if (at(TokKind::kConst)) {
      eat();
      g.is_const = true;
    }
    // Either `name = init` (untyped) or `type [*] name [= init]`.
    std::string first = expect(TokKind::kIdent, "type or variable name").text;
    if (at(TokKind::kStar) || at(TokKind::kIdent)) {
      g.type_name = std::move(first);
      if (at(TokKind::kStar)) {
        eat();
        g.is_pointer = true;
      }
      g.name = expect(TokKind::kIdent, "variable name").text;
    } else {
      g.name = std::move(first);
    }
    if (at(TokKind::kLBracket)) {
      eat();
      const Token len = expect(TokKind::kNumber, "array length");
      if (len.number == 0) {
        throw CompileError("array length must be positive", len.line,
                           len.col);
      }
      g.array_len = len.number;
      expect(TokKind::kRBracket, "']'");
    }
    if (at(TokKind::kAssign)) {
      eat();
      g.init = parse_expr();
    }
    expect(TokKind::kSemi, "';'");
    return g;
  }

  InstrBlock parse_block() {
    InstrBlock b;
    const Token label = expect(TokKind::kIdent, "label");
    b.label = label.text;
    b.line = label.line;
    b.col = label.col;
    expect(TokKind::kColon, "':'");
    expect(TokKind::kBegin, "'begin'");
    while (!at(TokKind::kEnd)) b.stmts.push_back(parse_stmt());
    expect(TokKind::kEnd, "'end'");
    return b;
  }

  std::vector<StmtPtr> parse_braced_stmts() {
    expect(TokKind::kLBrace, "'{'");
    std::vector<StmtPtr> out;
    while (!at(TokKind::kRBrace)) out.push_back(parse_stmt());
    expect(TokKind::kRBrace, "'}'");
    return out;
  }

  StmtPtr parse_stmt() {
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    s->col = cur().col;
    if (at(TokKind::kIf)) {
      eat();
      s->kind = Stmt::Kind::kIf;
      expect(TokKind::kLParen, "'('");
      s->cond = parse_expr();
      expect(TokKind::kRParen, "')'");
      s->then_body = parse_braced_stmts();
      if (at(TokKind::kElse)) {
        eat();
        s->else_body = parse_braced_stmts();
      }
      return s;
    }
    if (at(TokKind::kSwitch)) {
      eat();
      s->kind = Stmt::Kind::kSwitch;
      expect(TokKind::kLParen, "'('");
      s->cond = parse_expr();
      expect(TokKind::kRParen, "')'");
      expect(TokKind::kLBrace, "'{'");
      bool saw_default = false;
      while (!at(TokKind::kRBrace)) {
        if (at(TokKind::kCase)) {
          eat();
          SwitchCase arm;
          arm.value = expect(TokKind::kNumber, "case value").number;
          expect(TokKind::kColon, "':'");
          arm.body = parse_braced_stmts();
          s->cases.push_back(std::move(arm));
        } else if (at(TokKind::kDefault)) {
          if (saw_default) fail("duplicate 'default' arm");
          saw_default = true;
          eat();
          expect(TokKind::kColon, "':'");
          s->default_body = parse_braced_stmts();
        } else {
          fail("expected 'case' or 'default' in switch");
        }
      }
      expect(TokKind::kRBrace, "'}'");
      return s;
    }
    if (at(TokKind::kGoto)) {
      eat();
      s->kind = Stmt::Kind::kGoto;
      s->label = expect(TokKind::kIdent, "label").text;
      expect(TokKind::kSemi, "';'");
      return s;
    }
    if (at(TokKind::kCall)) {
      eat();
      s->kind = Stmt::Kind::kCall;
      s->label = expect(TokKind::kIdent, "label").text;
      expect(TokKind::kSemi, "';'");
      return s;
    }
    if (at(TokKind::kReturn)) {
      eat();
      s->kind = Stmt::Kind::kReturn;
      expect(TokKind::kSemi, "';'");
      return s;
    }
    if (at(TokKind::kConst)) {
      // Local declaration:  const [:]? [type] [*] name = expr ;
      eat();
      s->kind = Stmt::Kind::kLocalDecl;
      if (at(TokKind::kColon)) eat();  // paper spelling: `const : addr = ...`
      std::string first = expect(TokKind::kIdent, "name or type").text;
      if (at(TokKind::kStar) || at(TokKind::kIdent)) {
        s->type_name = std::move(first);
        if (at(TokKind::kStar)) {
          eat();
          s->is_pointer = true;
        }
        s->name = expect(TokKind::kIdent, "variable name").text;
      } else {
        s->name = std::move(first);
      }
      expect(TokKind::kAssign, "'='");
      s->value = parse_expr();
      expect(TokKind::kSemi, "';'");
      return s;
    }
    // Intrinsic call statement: Name(args);
    if (at(TokKind::kIdent) && at(TokKind::kLParen, 1)) {
      s->kind = Stmt::Kind::kIntrinsic;
      s->name = eat().text;
      eat();  // '('
      if (!at(TokKind::kRParen)) {
        s->args.push_back(parse_expr());
        while (at(TokKind::kComma)) {
          eat();
          s->args.push_back(parse_expr());
        }
      }
      expect(TokKind::kRParen, "')'");
      expect(TokKind::kSemi, "';'");
      return s;
    }
    // Assignment: lvalue = expr;
    s->kind = Stmt::Kind::kAssign;
    s->target = parse_lvalue();
    expect(TokKind::kAssign, "'='");
    s->value = parse_expr();
    expect(TokKind::kSemi, "';'");
    return s;
  }

  ExprPtr parse_lvalue() {
    auto e = std::make_unique<Expr>();
    const Token id = expect(TokKind::kIdent, "lvalue");
    e->line = id.line;
    e->col = id.col;
    if (at(TokKind::kLBracket)) {
      eat();
      e->kind = Expr::Kind::kIndex;
      e->name = id.text;
      e->lhs = parse_expr();
      expect(TokKind::kRBracket, "']'");
      return e;
    }
    if (at(TokKind::kArrow) || at(TokKind::kDot)) {
      e->kind = Expr::Kind::kField;
      e->arrow = at(TokKind::kArrow);
      eat();
      e->name = id.text;
      e->field = expect(TokKind::kIdent, "field name").text;
    } else {
      e->kind = Expr::Kind::kVar;
      e->name = id.text;
    }
    return e;
  }

  // Precedence climbing: || < && < | < ^ < & < == != < relational <
  // shifts < + - < * / % < unary < primary.
  ExprPtr parse_expr() { return parse_lor(); }

  ExprPtr binary(ExprPtr lhs, BinOp op, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin = op;
    e->line = lhs->line;
    e->col = lhs->col;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  ExprPtr parse_lor() {
    auto e = parse_land();
    while (at(TokKind::kOrOr)) {
      eat();
      e = binary(std::move(e), BinOp::kLOr, parse_land());
    }
    return e;
  }
  ExprPtr parse_land() {
    auto e = parse_bor();
    while (at(TokKind::kAndAnd)) {
      eat();
      e = binary(std::move(e), BinOp::kLAnd, parse_bor());
    }
    return e;
  }
  ExprPtr parse_bor() {
    auto e = parse_bxor();
    while (at(TokKind::kPipe)) {
      eat();
      e = binary(std::move(e), BinOp::kOr, parse_bxor());
    }
    return e;
  }
  ExprPtr parse_bxor() {
    auto e = parse_band();
    while (at(TokKind::kCaret)) {
      eat();
      e = binary(std::move(e), BinOp::kXor, parse_band());
    }
    return e;
  }
  ExprPtr parse_band() {
    auto e = parse_equality();
    while (at(TokKind::kAmp)) {
      eat();
      e = binary(std::move(e), BinOp::kAnd, parse_equality());
    }
    return e;
  }
  ExprPtr parse_equality() {
    auto e = parse_rel();
    while (at(TokKind::kEq) || at(TokKind::kNe)) {
      const BinOp op = at(TokKind::kEq) ? BinOp::kEq : BinOp::kNe;
      eat();
      e = binary(std::move(e), op, parse_rel());
    }
    return e;
  }
  ExprPtr parse_rel() {
    auto e = parse_shift();
    for (;;) {
      BinOp op;
      if (at(TokKind::kLt)) op = BinOp::kLt;
      else if (at(TokKind::kLe)) op = BinOp::kLe;
      else if (at(TokKind::kGt)) op = BinOp::kGt;
      else if (at(TokKind::kGe)) op = BinOp::kGe;
      else break;
      eat();
      e = binary(std::move(e), op, parse_shift());
    }
    return e;
  }
  ExprPtr parse_shift() {
    auto e = parse_add();
    while (at(TokKind::kShl) || at(TokKind::kShr)) {
      const BinOp op = at(TokKind::kShl) ? BinOp::kShl : BinOp::kShr;
      eat();
      e = binary(std::move(e), op, parse_add());
    }
    return e;
  }
  ExprPtr parse_add() {
    auto e = parse_mul();
    while (at(TokKind::kPlus) || at(TokKind::kMinus)) {
      const BinOp op = at(TokKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      eat();
      e = binary(std::move(e), op, parse_mul());
    }
    return e;
  }
  ExprPtr parse_mul() {
    auto e = parse_unary();
    while (at(TokKind::kStar) || at(TokKind::kSlash) || at(TokKind::kPercent)) {
      BinOp op = BinOp::kMul;
      if (at(TokKind::kSlash)) op = BinOp::kDiv;
      if (at(TokKind::kPercent)) op = BinOp::kMod;
      eat();
      e = binary(std::move(e), op, parse_unary());
    }
    return e;
  }
  ExprPtr parse_unary() {
    if (at(TokKind::kMinus) || at(TokKind::kBang) || at(TokKind::kTilde)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->line = cur().line;
      e->col = cur().col;
      if (at(TokKind::kMinus)) e->un = UnOp::kNeg;
      else if (at(TokKind::kBang)) e->un = UnOp::kLNot;
      else e->un = UnOp::kBitNot;
      eat();
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }
  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    e->col = cur().col;
    if (at(TokKind::kNumber)) {
      e->kind = Expr::Kind::kNumber;
      e->number = eat().number;
      return e;
    }
    if (at(TokKind::kSizeof)) {
      eat();
      expect(TokKind::kLParen, "'('");
      e->kind = Expr::Kind::kSizeof;
      e->name = expect(TokKind::kIdent, "type name").text;
      expect(TokKind::kRParen, "')'");
      return e;
    }
    if (at(TokKind::kLParen)) {
      eat();
      auto inner = parse_expr();
      expect(TokKind::kRParen, "')'");
      return inner;
    }
    if (at(TokKind::kIdent)) {
      std::string name = eat().text;
      if (at(TokKind::kLParen)) {
        eat();
        e->kind = Expr::Kind::kIntrinsic;
        e->name = std::move(name);
        if (!at(TokKind::kRParen)) {
          e->args.push_back(parse_expr());
          while (at(TokKind::kComma)) {
            eat();
            e->args.push_back(parse_expr());
          }
        }
        expect(TokKind::kRParen, "')'");
        return e;
      }
      if (at(TokKind::kLBracket)) {
        eat();
        e->kind = Expr::Kind::kIndex;
        e->name = std::move(name);
        e->lhs = parse_expr();
        expect(TokKind::kRBracket, "']'");
        return e;
      }
      if (at(TokKind::kArrow)) {
        eat();
        e->kind = Expr::Kind::kField;
        e->arrow = true;
        e->name = std::move(name);
        e->field = expect(TokKind::kIdent, "field name").text;
        return e;
      }
      if (at(TokKind::kDot)) {
        // Either struct-var field access or a dotted builtin
        // (r_work.pkt_len); the compiler disambiguates.
        eat();
        e->kind = Expr::Kind::kField;
        e->arrow = false;
        e->name = std::move(name);
        e->field = expect(TokKind::kIdent, "field name").text;
        return e;
      }
      e->kind = Expr::Kind::kVar;
      e->name = std::move(name);
      return e;
    }
    fail(std::string("expected expression, got ") + tok_name(cur().kind));
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Module parse(const std::string& source) {
  Parser p(lex(source));
  return p.parse_module();
}

}  // namespace microcode
