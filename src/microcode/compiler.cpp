#include "microcode/compiler.hpp"

#include <algorithm>
#include <unordered_set>

#include "microcode/error.hpp"
#include "microcode/parser.hpp"

namespace microcode {

const IntrinsicInfo* intrinsic_info(const std::string& name) {
  static const std::unordered_map<std::string, IntrinsicInfo> table = {
      {"CounterIncPhys", {IntrinsicKind::kPosted, 2}},
      {"SmsWrite64", {IntrinsicKind::kPosted, 2}},
      {"SmsRead64", {IntrinsicKind::kSync, 1}},
      {"FetchAdd32", {IntrinsicKind::kSync, 2}},
      {"FetchOr64", {IntrinsicKind::kSync, 2}},
      {"FetchSwap64", {IntrinsicKind::kSync, 2}},
      {"HashLookup", {IntrinsicKind::kSync, 1}},
      {"HashInsert", {IntrinsicKind::kSync, 2}},
      {"HashDelete", {IntrinsicKind::kSync, 1}},
      {"PolicerCheck", {IntrinsicKind::kSync, 2}},
      // Vector forms move (addr, lmem_off, len_bytes) between SMS and the
      // thread's LMEM; the RMW variants merge in place (netrpc §merge).
      {"SmsReadVec", {IntrinsicKind::kSync, 3}},
      {"SmsWriteVec", {IntrinsicKind::kPosted, 3}},
      {"SmsFill32", {IntrinsicKind::kPosted, 3}},
      {"AddVec32", {IntrinsicKind::kPosted, 3}},
      {"MinVec32", {IntrinsicKind::kPosted, 3}},
      {"VoteVec32", {IntrinsicKind::kPosted, 3}},
      {"Forward", {IntrinsicKind::kAction, 1}},
      {"Drop", {IntrinsicKind::kAction, 0}},
      {"Exit", {IntrinsicKind::kAction, 0}},
  };
  auto it = table.find(name);
  return it == table.end() ? nullptr : &it->second;
}

const Location& CompiledProgram::location(const std::string& name) const {
  auto it = vars.find(name);
  if (it == vars.end()) {
    throw std::logic_error("CompiledProgram: unknown variable " + name);
  }
  return it->second;
}

namespace {

class Compiler {
 public:
  Compiler(const InstructionLimits& limits, std::size_t lmem_bytes,
           std::size_t head_bytes, int gpr_count)
      : limits_(limits),
        lmem_bytes_(lmem_bytes),
        head_bytes_(head_bytes),
        gpr_count_(gpr_count) {}

  std::shared_ptr<const CompiledProgram> run(Module module) {
    auto out = std::make_shared<CompiledProgram>();
    prog_ = out.get();
    prog_->module = std::move(module);
    prog_->lmem_vars_base = head_bytes_;
    lmem_brk_ = head_bytes_;

    layout_structs();
    bind_builtins();
    bind_globals();
    index_labels();
    for (std::size_t i = 0; i < prog_->module.blocks.size(); ++i) {
      check_block(prog_->module.blocks[i], i);
    }
    prog_->lmem_used = lmem_brk_ - head_bytes_;
    return out;
  }

 private:
  void layout_structs() {
    for (auto& def : prog_->module.structs) {
      if (prog_->structs.contains(def.name)) {
        throw CompileError("duplicate struct '" + def.name + "'", def.line,
                           def.col);
      }
      unsigned off = 0;
      for (auto& f : def.fields) {
        f.bit_offset = off;
        off += f.width;
        if (!f.name.empty()) {
          for (const auto& g : def.fields) {
            if (&g != &f && g.name == f.name) {
              throw CompileError(
                  "duplicate field '" + f.name + "' in struct " + def.name,
                  def.line, def.col);
            }
          }
        }
      }
      def.total_bits = off;
      prog_->structs.emplace(def.name, &def);
    }
  }

  void bind_builtins() {
    // Intermediate registers ir0..ir7 map to GPRs 0..7 (the remaining
    // GPRs are the allocation pool for program variables).
    for (int i = 0; i < 8; ++i) {
      Location loc;
      loc.kind = Location::Kind::kReg;
      loc.reg = i;
      prog_->vars.emplace("ir" + std::to_string(i), loc);
    }
    Location pkt_len;
    pkt_len.kind = Location::Kind::kBuiltin;
    prog_->vars.emplace("r_work.pkt_len", pkt_len);
    next_reg_ = 8;
  }

  const StructDef* resolve_type(const std::string& name, int line, int col) {
    if (name.empty()) return nullptr;
    auto it = prog_->structs.find(name);
    if (it == prog_->structs.end()) {
      throw CompileError("unknown type '" + name + "'", line, col);
    }
    return it->second;
  }

  std::uint64_t const_eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return e.number;
      case Expr::Kind::kSizeof: {
        const StructDef* t = resolve_type(e.name, e.line, e.col);
        return t->size_bytes();
      }
      case Expr::Kind::kVar: {
        auto it = prog_->vars.find(e.name);
        if (it != prog_->vars.end() &&
            it->second.kind == Location::Kind::kConst) {
          return it->second.const_value;
        }
        throw CompileError("initializer is not a compile-time constant",
                           e.line, e.col);
      }
      case Expr::Kind::kUnary: {
        const std::uint64_t v = const_eval(*e.lhs);
        switch (e.un) {
          case UnOp::kNeg: return ~v + 1;
          case UnOp::kLNot: return v == 0 ? 1 : 0;
          case UnOp::kBitNot: return ~v;
        }
        break;
      }
      case Expr::Kind::kBinary: {
        const std::uint64_t a = const_eval(*e.lhs);
        const std::uint64_t b = const_eval(*e.rhs);
        switch (e.bin) {
          case BinOp::kAdd: return a + b;
          case BinOp::kSub: return a - b;
          case BinOp::kMul: return a * b;
          case BinOp::kDiv:
            if (b == 0) throw CompileError("division by zero", e.line, e.col);
            return a / b;
          case BinOp::kMod:
            if (b == 0) throw CompileError("division by zero", e.line, e.col);
            return a % b;
          case BinOp::kAnd: return a & b;
          case BinOp::kOr: return a | b;
          case BinOp::kXor: return a ^ b;
          case BinOp::kShl: return b >= 64 ? 0 : a << b;
          case BinOp::kShr: return b >= 64 ? 0 : a >> b;
          case BinOp::kEq: return a == b;
          case BinOp::kNe: return a != b;
          case BinOp::kLt: return a < b;
          case BinOp::kLe: return a <= b;
          case BinOp::kGt: return a > b;
          case BinOp::kGe: return a >= b;
          case BinOp::kLAnd: return (a != 0 && b != 0) ? 1 : 0;
          case BinOp::kLOr: return (a != 0 || b != 0) ? 1 : 0;
        }
        break;
      }
      default:
        break;
    }
    throw CompileError("initializer is not a compile-time constant", e.line,
                       e.col);
  }

  Location allocate_scalar(const StructDef* type, bool is_pointer,
                           StorageClass storage, int line, int col) {
    Location loc;
    loc.type = type;
    loc.is_pointer = is_pointer;
    if (type != nullptr && !is_pointer) {
      // Struct values live in LMEM regardless of storage class.
      loc.kind = Location::Kind::kLmem;
      loc.lmem_offset = lmem_alloc(type->size_bytes(), line, col);
      loc.size_bytes = type->size_bytes();
      return loc;
    }
    // Scalars and pointers: registers first (the 'memory' class covers
    // both registers and LMEM, §3.1), spilling to LMEM when the pool is
    // exhausted.
    if (storage != StorageClass::kVirtual && next_reg_ < gpr_count_) {
      loc.kind = Location::Kind::kReg;
      loc.reg = next_reg_++;
      return loc;
    }
    loc.kind = Location::Kind::kLmem;
    loc.lmem_offset = lmem_alloc(8, line, col);
    return loc;
  }

  std::size_t lmem_alloc(std::size_t bytes, int line, int col) {
    const std::size_t at = (lmem_brk_ + 7) / 8 * 8;
    if (at + bytes > lmem_bytes_) {
      throw CompileError("thread local memory exhausted (1.25 KB)", line, col);
    }
    lmem_brk_ = at + bytes;
    return at;
  }

  void define_var(const std::string& name, Location loc, int line, int col) {
    if (prog_->vars.contains(name)) {
      throw CompileError("redefinition of '" + name + "'", line, col);
    }
    prog_->vars.emplace(name, loc);
  }

  void bind_globals() {
    for (const auto& g : prog_->module.globals) {
      const StructDef* type = resolve_type(g.type_name, g.line, g.col);
      if (g.storage == StorageClass::kVirtual) {
        if (!g.init) {
          throw CompileError("virtual variable '" + g.name +
                                 "' requires a constant initializer",
                             g.line, g.col);
        }
        Location loc;
        loc.kind = Location::Kind::kConst;
        loc.const_value = const_eval(*g.init);
        loc.type = type;
        loc.is_pointer = g.is_pointer;
        define_var(g.name, loc, g.line, g.col);
        continue;
      }
      if (g.storage == StorageClass::kBus) {
        if (type != nullptr || g.is_pointer || g.array_len > 0 || g.init) {
          throw CompileError(
              "bus variables are plain scalars without initializers "
              "(they only exist within one instruction)",
              g.line, g.col);
        }
        Location loc;
        loc.kind = Location::Kind::kBus;
        loc.bus_slot = prog_->bus_slots++;
        define_var(g.name, loc, g.line, g.col);
        continue;
      }
      if (g.array_len > 0) {
        if (type != nullptr || g.is_pointer) {
          throw CompileError(
              "arrays hold 64-bit scalars (no struct/pointer arrays)",
              g.line, g.col);
        }
        Location loc;
        loc.kind = Location::Kind::kLmem;
        loc.lmem_offset = lmem_alloc(g.array_len * 8, g.line, g.col);
        loc.size_bytes = g.array_len * 8;
        loc.is_array = true;
        loc.array_len = g.array_len;
        define_var(g.name, loc, g.line, g.col);
        continue;
      }
      Location loc =
          allocate_scalar(type, g.is_pointer, g.storage, g.line, g.col);
      define_var(g.name, loc, g.line, g.col);
      if (g.init) {
        prog_->initial_values.emplace_back(g.name, const_eval(*g.init));
      }
    }
  }

  void index_labels() {
    for (std::size_t i = 0; i < prog_->module.blocks.size(); ++i) {
      const auto& b = prog_->module.blocks[i];
      if (prog_->labels.contains(b.label)) {
        throw CompileError("duplicate instruction label '" + b.label + "'",
                           b.line, b.col);
      }
      prog_->labels.emplace(b.label, i);
    }
    if (prog_->module.blocks.empty()) {
      throw CompileError("program has no instruction blocks", 1, 1);
    }
  }

  // --- Per-block binding, validation, resource accounting -----------------

  /// Adds the element-wise max of two exclusive arms' usage into `r`.
  static void merge_max(BlockResources& r, const BlockResources& a,
                        const BlockResources& b) {
    r.reg_reads += std::max(a.reg_reads, b.reg_reads);
    r.lmem_reads += std::max(a.lmem_reads, b.lmem_reads);
    r.writes += std::max(a.writes, b.writes);
    r.alu_ops += std::max(a.alu_ops, b.alu_ops);
    r.xtxns += std::max(a.xtxns, b.xtxns);
  }

  /// Element-wise max accumulator (for >2 exclusive arms).
  static void max_into(BlockResources& w, const BlockResources& a) {
    w.reg_reads = std::max(w.reg_reads, a.reg_reads);
    w.lmem_reads = std::max(w.lmem_reads, a.lmem_reads);
    w.writes = std::max(w.writes, a.writes);
    w.alu_ops = std::max(w.alu_ops, a.alu_ops);
    w.xtxns = std::max(w.xtxns, a.xtxns);
  }

  void count_read(const Location& loc, BlockResources& r) {
    switch (loc.kind) {
      case Location::Kind::kReg: ++r.reg_reads; break;
      case Location::Kind::kLmem: ++r.lmem_reads; break;
      // Constants/builtins are immediate operands; bus values ride the
      // operand bus straight into the ALUs (§3.1) and cost no read port.
      default: break;
    }
  }

  void check_expr(const Expr& e, BlockResources& r, bool allow_sync) {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return;
      case Expr::Kind::kSizeof:
        resolve_type(e.name, e.line, e.col);
        return;
      case Expr::Kind::kVar: {
        auto it = prog_->vars.find(e.name);
        if (it == prog_->vars.end()) {
          throw CompileError("use of undeclared variable '" + e.name + "'",
                             e.line, e.col);
        }
        if (it->second.kind == Location::Kind::kBus &&
            !bus_defined_.contains(e.name)) {
          throw CompileError(
              "bus variable '" + e.name +
                  "' read before being assigned in this instruction (bus "
                  "values do not persist across instructions)",
              e.line, e.col);
        }
        count_read(it->second, r);
        return;
      }
      case Expr::Kind::kField: {
        // Dotted builtins (r_work.pkt_len) parse as kField with '.'.
        if (!e.arrow && prog_->vars.contains(e.name + "." + e.field)) return;
        auto it = prog_->vars.find(e.name);
        if (it == prog_->vars.end()) {
          throw CompileError("use of undeclared variable '" + e.name + "'",
                             e.line, e.col);
        }
        const Location& base = it->second;
        if (base.type == nullptr) {
          throw CompileError("'" + e.name + "' has no struct type", e.line,
                             e.col);
        }
        if (e.arrow && !base.is_pointer) {
          throw CompileError("'->' applied to non-pointer '" + e.name + "'",
                             e.line, e.col);
        }
        if (!e.arrow && base.is_pointer) {
          throw CompileError("'.' applied to pointer '" + e.name +
                                 "' (use '->')",
                             e.line, e.col);
        }
        if (base.type->find_field(e.field) == nullptr) {
          throw CompileError("struct " + base.type->name + " has no field '" +
                                 e.field + "'",
                             e.line, e.col);
        }
        if (e.arrow) count_read(base, r);  // pointer operand
        ++r.lmem_reads;                    // the field itself
        return;
      }
      case Expr::Kind::kUnary:
        ++r.alu_ops;
        check_expr(*e.lhs, r, false);
        return;
      case Expr::Kind::kBinary:
        ++r.alu_ops;
        check_expr(*e.lhs, r, false);
        check_expr(*e.rhs, r, false);
        return;
      case Expr::Kind::kIndex: {
        auto it = prog_->vars.find(e.name);
        if (it == prog_->vars.end()) {
          throw CompileError("use of undeclared array '" + e.name + "'",
                             e.line, e.col);
        }
        if (!it->second.is_array) {
          throw CompileError("'" + e.name + "' is not an array", e.line,
                             e.col);
        }
        ++r.lmem_reads;
        check_expr(*e.lhs, r, false);
        return;
      }
      case Expr::Kind::kIntrinsic: {
        const IntrinsicInfo* info = intrinsic_info(e.name);
        if (info == nullptr) {
          throw CompileError("unknown intrinsic '" + e.name + "'", e.line,
                             e.col);
        }
        if (info->kind != IntrinsicKind::kSync) {
          throw CompileError("intrinsic '" + e.name +
                                 "' cannot be used in an expression",
                             e.line, e.col);
        }
        if (!allow_sync) {
          throw CompileError(
              "synchronous intrinsic '" + e.name +
                  "' only allowed as the entire right-hand side of a "
                  "top-level assignment",
              e.line, e.col);
        }
        if (static_cast<int>(e.args.size()) != info->arity) {
          throw CompileError("intrinsic '" + e.name + "' expects " +
                                 std::to_string(info->arity) + " argument(s)",
                             e.line, e.col);
        }
        ++r.xtxns;
        for (const auto& a : e.args) check_expr(*a, r, false);
        return;
      }
    }
  }

  void check_lvalue(const Expr& e, BlockResources& r) {
    if (e.kind == Expr::Kind::kVar) {
      auto it = prog_->vars.find(e.name);
      if (it == prog_->vars.end()) {
        throw CompileError("assignment to undeclared variable '" + e.name +
                               "'",
                           e.line, e.col);
      }
      if (it->second.kind == Location::Kind::kConst ||
          it->second.kind == Location::Kind::kBuiltin) {
        throw CompileError("cannot assign to constant '" + e.name + "'",
                           e.line, e.col);
      }
      if (it->second.kind == Location::Kind::kBus) {
        // Routing an ALU result onto the operand bus: no write port.
        bus_defined_.insert(e.name);
        return;
      }
      ++r.writes;
      return;
    }
    if (e.kind == Expr::Kind::kIndex) {
      auto it = prog_->vars.find(e.name);
      if (it == prog_->vars.end() || !it->second.is_array) {
        throw CompileError("assignment to non-array '" + e.name + "'",
                           e.line, e.col);
      }
      check_expr(*e.lhs, r, false);
      ++r.writes;
      return;
    }
    if (e.kind == Expr::Kind::kField) {
      BlockResources scratch;  // reads of the base pointer count as reads
      check_expr(e, scratch, false);
      r.reg_reads += scratch.reg_reads;
      // The field write is a write, not a read.
      r.lmem_reads += scratch.lmem_reads - 1;
      ++r.writes;
      return;
    }
    throw CompileError("invalid assignment target", e.line, e.col);
  }

  void check_stmt(const Stmt& s, BlockResources& r, bool top_level) {
    switch (s.kind) {
      case Stmt::Kind::kAssign:
        check_lvalue(*s.target, r);
        check_expr(*s.value, r, top_level);
        return;
      case Stmt::Kind::kLocalDecl: {
        const StructDef* type = resolve_type(s.type_name, s.line, s.col);
        if (!prog_->vars.contains(s.name)) {
          // Program-scoped: first declaration allocates the storage; later
          // blocks may re-initialize the same name.
          Location loc = allocate_scalar(type, s.is_pointer,
                                         StorageClass::kRegister, s.line,
                                         s.col);
          define_var(s.name, loc, s.line, s.col);
        }
        ++r.writes;
        check_expr(*s.value, r, top_level);
        return;
      }
      case Stmt::Kind::kIf: {
        ++r.alu_ops;  // the condition feeds the sequencing logic
        check_expr(*s.cond, r, false);
        // The arms are mutually exclusive: one instruction provisions the
        // *widest* arm, not the sum (the sequencing logic selects which
        // operations fire).
        BlockResources then_r, else_r;
        for (const auto& t : s.then_body) check_stmt(*t, then_r, false);
        for (const auto& t : s.else_body) check_stmt(*t, else_r, false);
        merge_max(r, then_r, else_r);
        return;
      }
      case Stmt::Kind::kSwitch: {
        // Multi-way branch: the sequencing logic selects among at most
        // eight targets per instruction (§2.2).
        const std::size_t targets =
            s.cases.size() + (s.default_body.empty() ? 1 : 1);
        if (s.cases.size() + 1 > 8) {
          throw CompileError(
              "switch has more than 8 targets (one instruction's "
              "multi-way branch limit)",
              s.line, s.col);
        }
        (void)targets;
        for (std::size_t i = 0; i < s.cases.size(); ++i) {
          for (std::size_t j = i + 1; j < s.cases.size(); ++j) {
            if (s.cases[i].value == s.cases[j].value) {
              throw CompileError("duplicate case value " +
                                     std::to_string(s.cases[i].value),
                                 s.line, s.col);
            }
          }
        }
        ++r.alu_ops;
        check_expr(*s.cond, r, false);
        BlockResources widest;
        for (const auto& arm : s.cases) {
          BlockResources arm_r;
          for (const auto& t : arm.body) check_stmt(*t, arm_r, false);
          max_into(widest, arm_r);
        }
        BlockResources def_r;
        for (const auto& t : s.default_body) check_stmt(*t, def_r, false);
        max_into(widest, def_r);
        merge_max(r, widest, BlockResources{});
        return;
      }
      case Stmt::Kind::kGoto:
      case Stmt::Kind::kCall:
        if (!prog_->labels.contains(s.label)) {
          throw CompileError("undefined label '" + s.label + "'", s.line,
                             s.col);
        }
        return;
      case Stmt::Kind::kReturn:
        return;
      case Stmt::Kind::kIntrinsic: {
        const IntrinsicInfo* info = intrinsic_info(s.name);
        if (info == nullptr) {
          throw CompileError("unknown intrinsic '" + s.name + "'", s.line,
                             s.col);
        }
        if (info->kind == IntrinsicKind::kSync) {
          throw CompileError("synchronous intrinsic '" + s.name +
                                 "' returns a value; assign it",
                             s.line, s.col);
        }
        if (static_cast<int>(s.args.size()) != info->arity) {
          throw CompileError("intrinsic '" + s.name + "' expects " +
                                 std::to_string(info->arity) + " argument(s)",
                             s.line, s.col);
        }
        if (info->kind == IntrinsicKind::kPosted) ++r.xtxns;
        for (const auto& a : s.args) check_expr(*a, r, false);
        return;
      }
    }
  }

  void check_block(const InstrBlock& b, std::size_t index) {
    bus_defined_.clear();  // bus values die at the instruction boundary
    BlockResources r;
    for (const auto& s : b.stmts) check_stmt(*s, r, /*top_level=*/true);
    const auto over = [&](const char* what, int used, int limit) {
      throw CompileError(
          "instruction '" + b.label + "' does not fit: " + what + " used " +
              std::to_string(used) + ", limit " + std::to_string(limit) +
              " (split the work across instructions)",
          b.line, b.col);
    };
    if (r.reg_reads > limits_.max_reg_reads) {
      over("register reads", r.reg_reads, limits_.max_reg_reads);
    }
    if (r.lmem_reads > limits_.max_lmem_reads) {
      over("local-memory reads", r.lmem_reads, limits_.max_lmem_reads);
    }
    if (r.writes > limits_.max_writes) {
      over("writes", r.writes, limits_.max_writes);
    }
    if (r.alu_ops > limits_.max_alu_ops) {
      over("ALU operations", r.alu_ops, limits_.max_alu_ops);
    }
    if (r.xtxns > limits_.max_xtxns) {
      over("external transactions", r.xtxns, limits_.max_xtxns);
    }
    prog_->resources.resize(index + 1);
    prog_->resources[index] = r;
  }

  InstructionLimits limits_;
  std::size_t lmem_bytes_;
  std::size_t head_bytes_;
  int gpr_count_;
  CompiledProgram* prog_ = nullptr;
  std::size_t lmem_brk_ = 0;
  int next_reg_ = 8;
  std::unordered_set<std::string> bus_defined_;
};

}  // namespace

std::shared_ptr<const CompiledProgram> compile(const std::string& source,
                                               const InstructionLimits& limits,
                                               std::size_t lmem_bytes,
                                               std::size_t head_bytes,
                                               int gpr_count) {
  Compiler c(limits, lmem_bytes, head_bytes, gpr_count);
  return c.run(parse(source));
}

}  // namespace microcode
