#include "microcode/interpreter.hpp"

#include <stdexcept>

#include "microcode/bitfield.hpp"

namespace microcode {

namespace {

/// Runtime faults are programming errors in the Microcode program; the
/// simulated hardware traps loudly instead of corrupting state.
[[noreturn]] void trap(const std::string& msg, int line, int col) {
  throw std::runtime_error("microcode runtime trap at " +
                           std::to_string(line) + ":" + std::to_string(col) +
                           ": " + msg);
}

}  // namespace

MicrocodeThread::MicrocodeThread(
    std::shared_ptr<const CompiledProgram> program)
    : prog_(std::move(program)) {
  bus_.assign(static_cast<std::size_t>(prog_->bus_slots), 0);
}

std::uint64_t MicrocodeThread::load(const Location& loc,
                                    trio::ThreadContext& ctx) const {
  switch (loc.kind) {
    case Location::Kind::kReg:
      return ctx.regs[static_cast<std::size_t>(loc.reg)];
    case Location::Kind::kLmem:
      return ctx.lmem.u64(loc.lmem_offset);
    case Location::Kind::kConst:
      return loc.const_value;
    case Location::Kind::kBuiltin:
      return ctx.packet ? ctx.packet->size() : 0;  // r_work.pkt_len
    case Location::Kind::kBus:
      return bus_[static_cast<std::size_t>(loc.bus_slot)];
  }
  return 0;
}

void MicrocodeThread::store(const Location& loc, std::uint64_t v,
                            trio::ThreadContext& ctx) const {
  switch (loc.kind) {
    case Location::Kind::kReg:
      ctx.regs[static_cast<std::size_t>(loc.reg)] = v;
      return;
    case Location::Kind::kLmem:
      ctx.lmem.set_u64(loc.lmem_offset, v);
      return;
    case Location::Kind::kBus:
      bus_[static_cast<std::size_t>(loc.bus_slot)] = v;
      return;
    default:
      throw std::logic_error("store to non-writable location");
  }
}

std::uint64_t MicrocodeThread::eval(const Expr& e, trio::ThreadContext& ctx) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.number;
    case Expr::Kind::kSizeof:
      return prog_->structs.at(e.name)->size_bytes();
    case Expr::Kind::kVar:
      return load(prog_->location(e.name), ctx);
    case Expr::Kind::kField: {
      if (!e.arrow) {
        auto dotted = prog_->vars.find(e.name + "." + e.field);
        if (dotted != prog_->vars.end()) return load(dotted->second, ctx);
      }
      const Location& base = prog_->location(e.name);
      const StructField* f = base.type->find_field(e.field);
      const std::size_t base_bytes =
          e.arrow ? load(base, ctx) : base.lmem_offset;
      return read_bits(ctx.lmem, base_bytes * 8 + f->bit_offset, f->width);
    }
    case Expr::Kind::kUnary: {
      const std::uint64_t v = eval(*e.lhs, ctx);
      switch (e.un) {
        case UnOp::kNeg: return ~v + 1;
        case UnOp::kLNot: return v == 0 ? 1 : 0;
        case UnOp::kBitNot: return ~v;
      }
      return 0;
    }
    case Expr::Kind::kBinary: {
      // Short-circuit forms first.
      if (e.bin == BinOp::kLAnd) {
        return eval(*e.lhs, ctx) != 0 && eval(*e.rhs, ctx) != 0 ? 1 : 0;
      }
      if (e.bin == BinOp::kLOr) {
        return eval(*e.lhs, ctx) != 0 || eval(*e.rhs, ctx) != 0 ? 1 : 0;
      }
      const std::uint64_t a = eval(*e.lhs, ctx);
      const std::uint64_t b = eval(*e.rhs, ctx);
      switch (e.bin) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv:
          if (b == 0) trap("division by zero", e.line, e.col);
          return a / b;
        case BinOp::kMod:
          if (b == 0) trap("modulo by zero", e.line, e.col);
          return a % b;
        case BinOp::kAnd: return a & b;
        case BinOp::kOr: return a | b;
        case BinOp::kXor: return a ^ b;
        case BinOp::kShl: return b >= 64 ? 0 : a << b;
        case BinOp::kShr: return b >= 64 ? 0 : a >> b;
        case BinOp::kEq: return a == b;
        case BinOp::kNe: return a != b;
        case BinOp::kLt: return a < b;
        case BinOp::kLe: return a <= b;
        case BinOp::kGt: return a > b;
        case BinOp::kGe: return a >= b;
        default: return 0;
      }
    }
    case Expr::Kind::kIndex: {
      const Location& base = prog_->location(e.name);
      const std::uint64_t idx = eval(*e.lhs, ctx);
      if (idx >= base.array_len) {
        trap("array index " + std::to_string(idx) + " out of bounds (len " +
                 std::to_string(base.array_len) + ")",
             e.line, e.col);
      }
      return ctx.lmem.u64(base.lmem_offset + idx * 8);
    }
    case Expr::Kind::kIntrinsic:
      throw std::logic_error(
          "sync intrinsic evaluated outside assignment (compiler bug)");
  }
  return 0;
}

void MicrocodeThread::assign(const Expr& target, std::uint64_t v,
                             trio::ThreadContext& ctx) {
  if (target.kind == Expr::Kind::kVar) {
    store(prog_->location(target.name), v, ctx);
    return;
  }
  if (target.kind == Expr::Kind::kIndex) {
    const Location& base = prog_->location(target.name);
    const std::uint64_t idx = eval(*target.lhs, ctx);
    if (idx >= base.array_len) {
      trap("array index " + std::to_string(idx) + " out of bounds (len " +
               std::to_string(base.array_len) + ")",
           target.line, target.col);
    }
    ctx.lmem.set_u64(base.lmem_offset + idx * 8, v);
    return;
  }
  const Location& base = prog_->location(target.name);
  const StructField* f = base.type->find_field(target.field);
  const std::size_t base_bytes =
      target.arrow ? load(base, ctx) : base.lmem_offset;
  write_bits(ctx.lmem, base_bytes * 8 + f->bit_offset, f->width, v);
}

trio::XtxnRequest MicrocodeThread::build_request(
    const std::string& name, const std::vector<std::uint64_t>& args, int line,
    int col, trio::ThreadContext& ctx) {
  // (addr, lmem_off, len_bytes) vector forms: the payload is read out of
  // the thread's LMEM at issue time, like the hardware's operand fetch.
  const auto lmem_payload = [&](trio::XtxnRequest& r) {
    const std::uint64_t off = args[1];
    const std::uint64_t len = args[2];
    if (off + len > ctx.lmem.size()) {
      trap("vector intrinsic LMEM range [" + std::to_string(off) + ", " +
               std::to_string(off + len) + ") exceeds LMEM size " +
               std::to_string(ctx.lmem.size()),
           line, col);
    }
    r.addr = args[0];
    const auto src = ctx.lmem.view(off, len);
    r.data.assign(src.begin(), src.end());
  };
  trio::XtxnRequest req;
  if (name == "CounterIncPhys") {
    // Counter addresses are in 8-byte words (Fig 6: adjacent 16-byte
    // counters are 2 words apart).
    req.op = trio::XtxnOp::kCounterInc;
    req.addr = args[0] * 8;
    req.arg0 = args[1];
  } else if (name == "SmsWrite64") {
    req.op = trio::XtxnOp::kWrite;
    req.addr = args[0];
    req.data.resize(8);
    for (int i = 0; i < 8; ++i) {
      req.data[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(args[1] >> (8 * i));
    }
  } else if (name == "SmsRead64") {
    req.op = trio::XtxnOp::kRead;
    req.addr = args[0];
    req.len = 8;
  } else if (name == "FetchAdd32") {
    req.op = trio::XtxnOp::kFetchAdd32;
    req.addr = args[0];
    req.arg0 = args[1];
  } else if (name == "FetchOr64") {
    req.op = trio::XtxnOp::kFetchOr64;
    req.addr = args[0];
    req.arg0 = args[1];
  } else if (name == "FetchSwap64") {
    req.op = trio::XtxnOp::kFetchSwap64;
    req.addr = args[0];
    req.arg0 = args[1];
  } else if (name == "HashLookup") {
    req.op = trio::XtxnOp::kHashLookup;
    req.arg0 = args[0];
  } else if (name == "HashInsert") {
    req.op = trio::XtxnOp::kHashInsert;
    req.arg0 = args[0];
    req.arg1 = args[1];
  } else if (name == "HashDelete") {
    req.op = trio::XtxnOp::kHashDelete;
    req.arg0 = args[0];
  } else if (name == "SmsReadVec") {
    req.op = trio::XtxnOp::kRead;
    req.addr = args[0];
    req.len = static_cast<std::uint32_t>(args[2]);
    if (args[1] + args[2] > ctx.lmem.size()) {
      trap("SmsReadVec LMEM range exceeds LMEM size", line, col);
    }
    pending_vec_off_ = static_cast<std::size_t>(args[1]);
  } else if (name == "SmsWriteVec") {
    req.op = trio::XtxnOp::kWrite;
    lmem_payload(req);
  } else if (name == "SmsFill32") {
    // (addr, word32, len_bytes): write `word32` repeated — the datapath's
    // buffer-reset primitive (0 for sum/majority, ~0 for min presets).
    req.op = trio::XtxnOp::kWrite;
    req.addr = args[0];
    req.data.resize(args[2]);
    for (std::size_t i = 0; i < req.data.size(); ++i) {
      req.data[i] = static_cast<std::uint8_t>(args[1] >> (8 * (i % 4)));
    }
  } else if (name == "AddVec32") {
    req.op = trio::XtxnOp::kAddVec32;
    lmem_payload(req);
  } else if (name == "MinVec32") {
    req.op = trio::XtxnOp::kMinVec32;
    lmem_payload(req);
  } else if (name == "VoteVec32") {
    req.op = trio::XtxnOp::kVoteVec32;
    lmem_payload(req);
  } else if (name == "PolicerCheck") {
    req.op = trio::XtxnOp::kPolicerCheck;
    req.addr = args[0];
    req.arg0 = args[1];
  } else {
    trap("unknown XTXN intrinsic '" + name + "'", line, col);
  }
  return req;
}

std::uint64_t MicrocodeThread::reply_value(
    const trio::XtxnReply& reply, trio::ThreadContext& ctx) const {
  if (pending_intrinsic_ == "SmsRead64") {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = v << 8 |
          (static_cast<std::size_t>(i) < reply.data.size()
               ? reply.data[static_cast<std::size_t>(i)]
               : 0);
    }
    return v;
  }
  if (pending_intrinsic_ == "SmsReadVec") {
    // Land the payload in LMEM at the offset captured at issue time; the
    // assignment target receives the byte count moved.
    ctx.lmem.write(pending_vec_off_, reply.data);
    return reply.data.size();
  }
  if (pending_intrinsic_ == "HashInsert" ||
      pending_intrinsic_ == "HashDelete") {
    return reply.ok ? 1 : 0;
  }
  return reply.value;
}

MicrocodeThread::Control MicrocodeThread::exec_stmt(
    const Stmt& s, bool top_level, trio::ThreadContext& ctx) {
  switch (s.kind) {
    case Stmt::Kind::kAssign:
    case Stmt::Kind::kLocalDecl: {
      const Expr* value = s.value.get();
      if (value->kind == Expr::Kind::kIntrinsic) {
        // Synchronous XTXN: suspend; the assignment completes on resume.
        std::vector<std::uint64_t> args;
        args.reserve(value->args.size());
        for (const auto& a : value->args) args.push_back(eval(*a, ctx));
        Control c;
        c.kind = Control::Kind::kSync;
        c.sync_req =
            build_request(value->name, args, value->line, value->col, ctx);
        pending_intrinsic_ = value->name;
        if (s.kind == Stmt::Kind::kAssign) {
          pending_target_ = s.target.get();
        } else {
          pending_local_ = &s;
        }
        return c;
      }
      const std::uint64_t v = eval(*value, ctx);
      if (s.kind == Stmt::Kind::kAssign) {
        assign(*s.target, v, ctx);
      } else {
        store(prog_->location(s.name), v, ctx);
      }
      return {};
    }
    case Stmt::Kind::kIf: {
      const auto& body =
          eval(*s.cond, ctx) != 0 ? s.then_body : s.else_body;
      return exec_stmts(body, 0, false, ctx);
    }
    case Stmt::Kind::kSwitch: {
      const std::uint64_t v = eval(*s.cond, ctx);
      for (const auto& arm : s.cases) {
        if (arm.value == v) return exec_stmts(arm.body, 0, false, ctx);
      }
      return exec_stmts(s.default_body, 0, false, ctx);
    }
    case Stmt::Kind::kGoto: {
      Control c;
      c.kind = Control::Kind::kGoto;
      c.target = prog_->labels.at(s.label);
      return c;
    }
    case Stmt::Kind::kCall: {
      if (call_stack_.size() >= 8) {
        trap("call depth exceeds 8 (hardware limit)", s.line, s.col);
      }
      Control c;
      c.kind = Control::Kind::kCallXfer;
      c.target = prog_->labels.at(s.label);
      return c;
    }
    case Stmt::Kind::kReturn: {
      if (call_stack_.empty()) {
        trap("return without call", s.line, s.col);
      }
      Control c;
      c.kind = Control::Kind::kReturnXfer;
      return c;
    }
    case Stmt::Kind::kIntrinsic: {
      if (s.name == "Exit" || s.name == "Drop") {
        Control c;
        c.kind = Control::Kind::kExit;
        return c;
      }
      std::vector<std::uint64_t> args;
      args.reserve(s.args.size());
      for (const auto& a : s.args) args.push_back(eval(*a, ctx));
      if (s.name == "Forward") {
        // Unload the modified head from LMEM back into the frame (§2.2)
        // and hand the packet to forwarding.
        if (!ctx.packet) trap("Forward() on a packet-less thread", s.line, s.col);
        const std::size_t head = ctx.packet->head_size();
        ctx.packet->frame().write(0, ctx.lmem.view(0, head));
        trio::ActEmitPacket emit;
        emit.pkt = ctx.packet;
        emit.nexthop_id = static_cast<std::uint32_t>(args[0]);
        emit.instructions = 0;
        drained_.push_back(std::move(emit));
        return {};
      }
      trio::ActAsyncXtxn ax;
      ax.req = build_request(s.name, args, s.line, s.col, ctx);
      ax.instructions = 0;
      drained_.push_back(std::move(ax));
      return {};
    }
  }
  (void)top_level;
  return {};
}

MicrocodeThread::Control MicrocodeThread::exec_stmts(
    const std::vector<StmtPtr>& stmts, std::size_t from, bool top_level,
    trio::ThreadContext& ctx) {
  for (std::size_t i = from; i < stmts.size(); ++i) {
    if (top_level) stmt_idx_ = i;
    Control c = exec_stmt(*stmts[i], top_level, ctx);
    if (c.kind != Control::Kind::kFallthrough) return c;
  }
  return {};
}

MicrocodeThread::Control MicrocodeThread::exec_block(
    trio::ThreadContext& ctx) {
  const auto& block = prog_->module.blocks[pc_];
  return exec_stmts(block.stmts, stmt_idx_, true, ctx);
}

trio::Action MicrocodeThread::step(trio::ThreadContext& ctx) {
  if (!drained_.empty()) {
    trio::Action a = std::move(drained_.front());
    drained_.erase(drained_.begin());
    return a;
  }
  if (exited_) return trio::ActExit{0};
  if (!started_) {
    started_ = true;
    for (const auto& [name, value] : prog_->initial_values) {
      store(prog_->location(name), value, ctx);
    }
  }
  if (pending_target_ != nullptr || pending_local_ != nullptr) {
    const std::uint64_t v = reply_value(ctx.reply, ctx);
    if (pending_target_ != nullptr) {
      assign(*pending_target_, v, ctx);
      pending_target_ = nullptr;
    } else {
      store(prog_->location(pending_local_->name), v, ctx);
      pending_local_ = nullptr;
    }
    ++stmt_idx_;  // the assignment's statement is complete
  }

  Control c = exec_block(ctx);

  // Translate the block's control transfer into the primary action; any
  // posted XTXNs / emits collected in drained_ follow as zero-instruction
  // actions (they belong to this same micro-instruction).
  trio::Action primary;
  switch (c.kind) {
    case Control::Kind::kFallthrough:
      ++pc_;
      stmt_idx_ = 0;
      if (pc_ >= prog_->module.blocks.size()) {
        exited_ = true;
        primary = trio::ActExit{1};
      } else {
        primary = trio::ActContinue{1};
      }
      break;
    case Control::Kind::kGoto:
      pc_ = c.target;
      stmt_idx_ = 0;
      primary = trio::ActContinue{1};
      break;
    case Control::Kind::kCallXfer:
      call_stack_.emplace_back(pc_, stmt_idx_ + 1);
      pc_ = c.target;
      stmt_idx_ = 0;
      primary = trio::ActContinue{1};
      break;
    case Control::Kind::kReturnXfer: {
      auto [rp, ri] = call_stack_.back();
      call_stack_.pop_back();
      pc_ = rp;
      stmt_idx_ = ri;
      primary = trio::ActContinue{1};
      break;
    }
    case Control::Kind::kSync: {
      trio::ActSyncXtxn sx;
      sx.req = std::move(c.sync_req);
      sx.instructions = 1;
      primary = std::move(sx);
      break;
    }
    case Control::Kind::kExit:
      exited_ = true;
      primary = trio::ActExit{1};
      break;
  }

  if (!drained_.empty()) {
    // Emit/posted actions first (they happen inside the instruction),
    // then the control action. Charge the single instruction on the first
    // action returned.
    drained_.push_back(std::move(primary));
    trio::Action first = std::move(drained_.front());
    drained_.erase(drained_.begin());
    std::visit([](auto& a) { a.instructions = 1; }, first);
    for (auto& rest : drained_) {
      std::visit([](auto& a) { a.instructions = 0; }, rest);
    }
    return first;
  }
  return primary;
}

trio::ProgramFactory make_program_factory(
    std::shared_ptr<const CompiledProgram> program) {
  return [program](const net::Packet&) -> std::unique_ptr<trio::PpeProgram> {
    return std::make_unique<MicrocodeThread>(program);
  };
}

}  // namespace microcode
