#include "microcode/vmx.hpp"

namespace microcode {
namespace vmx {

VirtualForwardingPlane::VirtualForwardingPlane(
    std::shared_ptr<const CompiledProgram> program)
    : VirtualForwardingPlane(std::move(program), Config{}) {}

VirtualForwardingPlane::VirtualForwardingPlane(
    std::shared_ptr<const CompiledProgram> program, Config config)
    : program_(std::move(program)) {
  router_ = std::make_unique<trio::Router>(sim_, config.cal, 1, config.ports,
                                           "vmx-vfp");
  // Default nexthop table: nexthop id N egresses port N+1 (port 0 is the
  // injection port), so simple programs can Forward(0) out of the box.
  for (int p = 1; p < config.ports; ++p) {
    router_->forwarding().add_nexthop(trio::NexthopUnicast{p, {}});
  }
  router_->pfe(0).set_program_factory(make_program_factory(program_));
  for (int p = 0; p < config.ports; ++p) {
    router_->attach_port_sink(p, [this, p](net::PacketPtr pkt) {
      if (last_) {
        last_->forwarded = true;
        last_->egress_port = p;
        last_->packet = std::move(pkt);
      }
    });
  }
}

VirtualForwardingPlane::Verdict VirtualForwardingPlane::process(
    net::Buffer frame, int ingress_port) {
  last_.emplace();
  const sim::Time start = sim_.now();
  const std::uint64_t instr_before =
      router_->pfe(0).instructions_issued();
  router_->receive(net::Packet::make(std::move(frame)), ingress_port);
  sim_.run();  // drive this packet to completion, x86-synchronously
  Verdict v = std::move(*last_);
  last_.reset();
  v.instructions = router_->pfe(0).instructions_issued() - instr_before;
  v.simulated_time = sim_.now() - start;
  ++packets_;
  return v;
}

}  // namespace vmx
}  // namespace microcode
