// Executes a CompiledProgram on a simulated PPE thread.
//
// Each begin/end block is one VLIW micro-instruction: executing it charges
// one instruction of engine time, and its external transactions become
// thread actions (posted XTXNs continue, synchronous XTXNs suspend the
// thread until the reply). Control transfers follow the paper's model —
// goto selects the next instruction, call/return nests up to eight levels,
// falling off the end of an instruction block falls through to the next
// one, and Exit()/Drop() destroy the thread.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "microcode/compiler.hpp"
#include "trio/program.hpp"

namespace microcode {

class MicrocodeThread : public trio::PpeProgram {
 public:
  explicit MicrocodeThread(std::shared_ptr<const CompiledProgram> program);

  trio::Action step(trio::ThreadContext& ctx) override;

  std::size_t pc() const { return pc_; }

 private:
  // Result of running one block to its control transfer.
  struct Control {
    enum class Kind {
      kFallthrough, kGoto, kCallXfer, kReturnXfer, kSync, kExit
    };
    Kind kind = Kind::kFallthrough;
    std::size_t target = 0;          // kGoto / kCallXfer
    trio::XtxnRequest sync_req;      // kSync
  };

  Control exec_block(trio::ThreadContext& ctx);
  Control exec_stmts(const std::vector<StmtPtr>& stmts, std::size_t from,
                     bool top_level, trio::ThreadContext& ctx);
  Control exec_stmt(const Stmt& s, bool top_level, trio::ThreadContext& ctx);

  std::uint64_t eval(const Expr& e, trio::ThreadContext& ctx);
  std::uint64_t load(const Location& loc, trio::ThreadContext& ctx) const;
  void store(const Location& loc, std::uint64_t v,
             trio::ThreadContext& ctx) const;
  void assign(const Expr& target, std::uint64_t v, trio::ThreadContext& ctx);
  trio::XtxnRequest build_request(const std::string& name,
                                  const std::vector<std::uint64_t>& args,
                                  int line, int col,
                                  trio::ThreadContext& ctx);
  std::uint64_t reply_value(const trio::XtxnReply& reply,
                            trio::ThreadContext& ctx) const;

  std::shared_ptr<const CompiledProgram> prog_;
  std::size_t pc_ = 0;
  std::size_t stmt_idx_ = 0;
  bool started_ = false;
  bool exited_ = false;

  // Synchronous-XTXN continuation: either an assignment target expression
  // or a local declaration awaiting the reply value.
  const Expr* pending_target_ = nullptr;
  const Stmt* pending_local_ = nullptr;
  std::string pending_intrinsic_;
  // SmsReadVec continuation: LMEM offset the reply payload lands at.
  std::size_t pending_vec_off_ = 0;

  // Posted XTXNs / emits produced by the current block, drained as
  // zero-instruction actions after the block's own instruction charge.
  std::vector<trio::Action> drained_;

  std::vector<std::pair<std::size_t, std::size_t>> call_stack_;

  // Operand-bus lanes for 'bus'-class variables (one instruction's
  // lifetime; the compiler enforces no cross-instruction reads).
  mutable std::vector<std::uint64_t> bus_;
};

/// Wraps a compiled program as a per-packet program factory for
/// trio::Pfe::set_program_factory.
trio::ProgramFactory make_program_factory(
    std::shared_ptr<const CompiledProgram> program);

}  // namespace microcode
