// vMX-style Virtual Forwarding Plane (paper §3.1).
//
// "Juniper Networks developed the vMX Virtual Router [...] consists of a
// virtual control plane (VCP) and a virtual forwarding plane (VFP). [...]
// the VFP runs the Microcode engine optimized for x86 environments."
//
// VirtualForwardingPlane runs a compiled Microcode program on an
// in-process simulated PFE and drives each packet to completion
// synchronously — the development/validation environment a Microcode
// programmer uses before deploying the image to hardware. Verdicts
// (forwarded/dropped, nexthop, instruction count) come back per packet,
// and the shared-memory state (counters, tables) is inspectable between
// packets.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "microcode/compiler.hpp"
#include "microcode/interpreter.hpp"
#include "trio/router.hpp"

namespace microcode {
namespace vmx {

class VirtualForwardingPlane {
 public:
  struct Config {
    int ports = 4;
    trio::Calibration cal;
  };

  explicit VirtualForwardingPlane(
      std::shared_ptr<const CompiledProgram> program);
  VirtualForwardingPlane(std::shared_ptr<const CompiledProgram> program,
                         Config config);

  struct Verdict {
    bool forwarded = false;
    int egress_port = -1;
    std::uint64_t instructions = 0;  // executed for this packet
    sim::Duration simulated_time;    // what the hardware model charged
    net::PacketPtr packet;           // the (possibly rewritten) frame
  };

  /// Processes one frame to completion and returns what happened.
  Verdict process(net::Buffer frame, int ingress_port = 0);

  /// Maps Microcode nexthop id N to egress port N+1 by default; override
  /// with explicit nexthops for richer topologies.
  trio::ForwardingTable& forwarding() { return router_->forwarding(); }

  /// The VFP's shared memory, for inspecting counters and tables the
  /// program maintains.
  trio::SharedMemorySystem& sms() { return router_->pfe(0).sms(); }
  trio::HwHashTable& hash_table() { return router_->pfe(0).hash_table(); }

  const CompiledProgram& program() const { return *program_; }
  std::uint64_t packets_processed() const { return packets_; }

 private:
  std::shared_ptr<const CompiledProgram> program_;
  sim::Simulator sim_;
  std::unique_ptr<trio::Router> router_;
  std::optional<Verdict> last_;
  std::uint64_t packets_ = 0;
};

}  // namespace vmx
}  // namespace microcode
