// Abstract syntax for the Microcode language (paper §3).
//
// A module is a list of struct definitions (bit-field packet header
// layouts), storage-class-qualified global variables, and labelled
// instruction blocks delimited by begin/end. Instruction delineation is
// explicit, exactly as in the Trio Compiler: one begin/end block is one
// VLIW micro-instruction, and the compiler *fails* if the block needs
// more resources than one instruction provides.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace microcode {

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLAnd, kLOr,
};

enum class UnOp { kNeg, kLNot, kBitNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kNumber,     // literal
    kVar,        // identifier (possibly dotted builtin like r_work.pkt_len)
    kField,      // name->field (pointer deref) or name.field (struct var)
    kBinary,
    kUnary,
    kSizeof,     // sizeof(type) in bytes
    kIntrinsic,  // Name(args) in expression position (sync XTXNs)
    kIndex,      // name[expr]: 64-bit array element in local memory
  };

  Kind kind{};
  std::uint64_t number = 0;
  std::string name;    // var / pointer / intrinsic / sizeof type
  std::string field;   // kField
  bool arrow = false;  // kField: true for '->', false for '.'
  BinOp bin{};
  UnOp un{};
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;
  int line = 0;
  int col = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct SwitchCase;

struct Stmt {
  enum class Kind {
    kAssign,     // lvalue = expr;
    kLocalDecl,  // [const] type [*] name = expr;
    kIf,         // if (cond) { ... } [else { ... }]
    kSwitch,     // switch (expr) { case N: {...} ... default: {...} }
    kGoto,
    kCall,
    kReturn,
    kIntrinsic,  // Name(args);
  };

  Kind kind{};
  ExprPtr target;  // kAssign: kVar or kField expression
  ExprPtr value;   // kAssign / kLocalDecl initializer
  ExprPtr cond;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
  std::string label;      // kGoto / kCall
  std::string name;       // kIntrinsic / kLocalDecl variable name
  std::string type_name;  // kLocalDecl ("" = untyped scalar)
  bool is_pointer = false;
  std::vector<ExprPtr> args;
  std::vector<SwitchCase> cases;       // kSwitch arms
  std::vector<StmtPtr> default_body;   // kSwitch default arm (may be empty)
  int line = 0;
  int col = 0;
};

/// One `case N: { ... }` arm. The sequencing logic selects among up to
/// eight targets per instruction (paper §2.2), which bounds the arm count.
struct SwitchCase {
  std::uint64_t value = 0;
  std::vector<StmtPtr> body;
};

struct StructField {
  std::string name;  // empty = anonymous padding (paper: unused bits)
  unsigned width = 0;
  unsigned bit_offset = 0;  // filled by layout
};

struct StructDef {
  std::string name;
  std::vector<StructField> fields;
  unsigned total_bits = 0;
  int line = 0;
  int col = 0;

  std::size_t size_bytes() const { return (total_bits + 7) / 8; }
  const StructField* find_field(const std::string& field) const {
    for (const auto& f : fields) {
      if (!f.name.empty() && f.name == field) return &f;
    }
    return nullptr;
  }
};

enum class StorageClass { kMemory, kRegister, kVirtual, kBus };

struct GlobalDecl {
  StorageClass storage{};
  bool is_const = false;
  std::string type_name;  // "" = untyped scalar
  bool is_pointer = false;
  std::size_t array_len = 0;  // > 0: array of 64-bit elements in LMEM
  std::string name;
  ExprPtr init;  // may be null
  int line = 0;
  int col = 0;
};

struct InstrBlock {
  std::string label;
  std::vector<StmtPtr> stmts;
  int line = 0;
  int col = 0;
};

struct Module {
  std::vector<StructDef> structs;
  std::vector<GlobalDecl> globals;
  std::vector<InstrBlock> blocks;
};

}  // namespace microcode
