#include "microcode/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "microcode/error.hpp"

namespace microcode {

namespace {

const std::unordered_map<std::string, TokKind>& keywords() {
  static const std::unordered_map<std::string, TokKind> kw = {
      {"struct", TokKind::kStruct},   {"memory", TokKind::kMemory},
      {"register", TokKind::kRegister}, {"virtual", TokKind::kVirtual},
      {"const", TokKind::kConst},     {"if", TokKind::kIf},
      {"else", TokKind::kElse},       {"goto", TokKind::kGoto},
      {"call", TokKind::kCall},       {"return", TokKind::kReturn},
      {"begin", TokKind::kBegin},     {"end", TokKind::kEnd},
      {"sizeof", TokKind::kSizeof},  {"switch", TokKind::kSwitch},
      {"case", TokKind::kCase},       {"default", TokKind::kDefault},
      {"bus", TokKind::kBus},
  };
  return kw;
}

}  // namespace

const char* tok_name(TokKind kind) {
  switch (kind) {
    case TokKind::kEof: return "end of input";
    case TokKind::kIdent: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kStruct: return "'struct'";
    case TokKind::kMemory: return "'memory'";
    case TokKind::kRegister: return "'register'";
    case TokKind::kVirtual: return "'virtual'";
    case TokKind::kConst: return "'const'";
    case TokKind::kIf: return "'if'";
    case TokKind::kElse: return "'else'";
    case TokKind::kGoto: return "'goto'";
    case TokKind::kCall: return "'call'";
    case TokKind::kReturn: return "'return'";
    case TokKind::kBegin: return "'begin'";
    case TokKind::kEnd: return "'end'";
    case TokKind::kSizeof: return "'sizeof'";
    case TokKind::kSwitch: return "'switch'";
    case TokKind::kCase: return "'case'";
    case TokKind::kDefault: return "'default'";
    case TokKind::kBus: return "'bus'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kSemi: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kComma: return "','";
    case TokKind::kStar: return "'*'";
    case TokKind::kAssign: return "'='";
    case TokKind::kArrow: return "'->'";
    case TokKind::kDot: return "'.'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kAmp: return "'&'";
    case TokKind::kPipe: return "'|'";
    case TokKind::kCaret: return "'^'";
    case TokKind::kTilde: return "'~'";
    case TokKind::kBang: return "'!'";
    case TokKind::kShl: return "'<<'";
    case TokKind::kShr: return "'>>'";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
  }
  return "?";
}

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k = 0) -> char {
    return i + k < n ? src[i + k] : '\0';
  };
  auto advance = [&]() {
    if (src[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto push = [&](TokKind kind, int l, int c, std::string text = {},
                  std::uint64_t num = 0) {
    out.push_back(Token{kind, std::move(text), num, l, c});
  };

  while (i < n) {
    const char c = peek();
    const int l = line, cl = col;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < n && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= n) throw CompileError("unterminated block comment", l, cl);
      advance();
      advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
        word += peek();
        advance();
      }
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, l, cl, word);
      } else {
        push(TokKind::kIdent, l, cl, word);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t v = 0;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
          throw CompileError("expected hex digits after 0x", l, cl);
        }
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
          const char d = peek();
          v = v * 16 + static_cast<std::uint64_t>(
                           std::isdigit(static_cast<unsigned char>(d))
                               ? d - '0'
                               : std::tolower(d) - 'a' + 10);
          advance();
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          v = v * 10 + static_cast<std::uint64_t>(peek() - '0');
          advance();
        }
      }
      push(TokKind::kNumber, l, cl, {}, v);
      continue;
    }
    // Punctuation / operators.
    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('-', '>')) { advance(); advance(); push(TokKind::kArrow, l, cl); continue; }
    if (two('<', '<')) { advance(); advance(); push(TokKind::kShl, l, cl); continue; }
    if (two('>', '>')) { advance(); advance(); push(TokKind::kShr, l, cl); continue; }
    if (two('=', '=')) { advance(); advance(); push(TokKind::kEq, l, cl); continue; }
    if (two('!', '=')) { advance(); advance(); push(TokKind::kNe, l, cl); continue; }
    if (two('<', '=')) { advance(); advance(); push(TokKind::kLe, l, cl); continue; }
    if (two('>', '=')) { advance(); advance(); push(TokKind::kGe, l, cl); continue; }
    if (two('&', '&')) { advance(); advance(); push(TokKind::kAndAnd, l, cl); continue; }
    if (two('|', '|')) { advance(); advance(); push(TokKind::kOrOr, l, cl); continue; }
    TokKind kind;
    switch (c) {
      case '{': kind = TokKind::kLBrace; break;
      case '[': kind = TokKind::kLBracket; break;
      case ']': kind = TokKind::kRBracket; break;
      case '}': kind = TokKind::kRBrace; break;
      case '(': kind = TokKind::kLParen; break;
      case ')': kind = TokKind::kRParen; break;
      case ';': kind = TokKind::kSemi; break;
      case ':': kind = TokKind::kColon; break;
      case ',': kind = TokKind::kComma; break;
      case '*': kind = TokKind::kStar; break;
      case '=': kind = TokKind::kAssign; break;
      case '.': kind = TokKind::kDot; break;
      case '+': kind = TokKind::kPlus; break;
      case '-': kind = TokKind::kMinus; break;
      case '/': kind = TokKind::kSlash; break;
      case '%': kind = TokKind::kPercent; break;
      case '&': kind = TokKind::kAmp; break;
      case '|': kind = TokKind::kPipe; break;
      case '^': kind = TokKind::kCaret; break;
      case '~': kind = TokKind::kTilde; break;
      case '!': kind = TokKind::kBang; break;
      case '<': kind = TokKind::kLt; break;
      case '>': kind = TokKind::kGt; break;
      default:
        throw CompileError(std::string("unexpected character '") + c + "'", l,
                           cl);
    }
    advance();
    push(kind, l, cl);
  }
  push(TokKind::kEof, line, col);
  return out;
}

}  // namespace microcode
