// Recursive-descent parser for the Microcode language. Produces the AST
// consumed by the compiler (compiler.hpp). Throws CompileError with
// line/column on any syntax error.
#pragma once

#include <string>

#include "microcode/ast.hpp"

namespace microcode {

Module parse(const std::string& source);

}  // namespace microcode
