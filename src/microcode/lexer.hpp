// Lexer for the Microcode language (paper §3): a C-like surface syntax
// with struct bit-field declarations, storage-class variable definitions,
// and explicitly delimited instruction blocks (label: begin ... end).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace microcode {

enum class TokKind {
  kEof,
  kIdent,
  kNumber,
  // keywords
  kStruct, kMemory, kRegister, kVirtual, kConst, kIf, kElse, kGoto, kCall,
  kReturn, kBegin, kEnd, kSizeof, kSwitch, kCase, kDefault, kBus,
  // punctuation / operators
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket, kSemi, kColon,
  kComma, kStar,
  kAssign, kArrow, kDot,
  kPlus, kMinus, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr,
};

struct Token {
  TokKind kind;
  std::string text;       // identifier spelling
  std::uint64_t number = 0;
  int line = 0;
  int col = 0;
};

/// Tokenizes `source`. Throws CompileError (see compiler.hpp) on bad input.
std::vector<Token> lex(const std::string& source);

/// Human-readable token kind, for diagnostics.
const char* tok_name(TokKind kind);

}  // namespace microcode
